package rxl_test

import (
	"fmt"

	"repro"
)

// Running the paper's headline comparison: the same silent-drop script
// under baseline CXL and under RXL.
func ExampleRunFig4() {
	cxl := rxl.RunFig4(rxl.CXL)
	rxlRep := rxl.RunFig4(rxl.RXL)
	fmt.Println("CXL misordered:", cxl.Misordered)
	fmt.Println("RXL misordered:", rxlRep.Misordered)
	fmt.Println("RXL detected drops via ISN:", rxlRep.CrcErrors > 0)
	// Output:
	// CXL misordered: true
	// RXL misordered: false
	// RXL detected drops via ISN: true
}

// Evaluating the analytic model at the paper's parameters.
func ExampleReliability() {
	r := rxl.DefaultReliability()
	fmt.Printf("FER            %.2g\n", r.FER())
	fmt.Printf("FIT direct     %.2g\n", r.FITDirect())
	fmt.Printf("FIT CXL 1-sw   %.2g\n", r.FITCXL(1))
	fmt.Printf("FIT RXL 1-sw   %.2g\n", r.FITRXL(1))
	// Output:
	// FER            0.002
	// FIT direct     0.0029
	// FIT CXL 1-sw   5.4e+15
	// FIT RXL 1-sw   0.0059
}

// A complete simulation: RXL across two switching levels with live error
// injection, verified exactly-once in-order delivery.
func ExampleExperiment() {
	fabric := rxl.MustNewFabric(rxl.Config{
		Protocol: rxl.RXL,
		Levels:   2,
		BER:      1e-5,
		Seed:     1,
	})
	exp := rxl.Experiment{Fabric: fabric, N: 1000}
	res := exp.Run()
	fmt.Println("delivered:", res.Failures.Delivered)
	fmt.Println("clean:", res.Failures.Clean())
	// Output:
	// delivered: 1000
	// clean: true
}

// The Section 7.2 bandwidth table.
func ExamplePerformance() {
	p := rxl.DefaultPerformance()
	fmt.Printf("direct:       %.2f%%\n", 100*p.BWLossDirect())
	fmt.Printf("switched:     %.2f%%\n", 100*p.BWLossSwitched(1))
	fmt.Printf("no piggyback: %.0f%%\n", 100*p.BWLossNoPiggyback())
	// Output:
	// direct:       0.15%
	// switched:     0.30%
	// no piggyback: 10%
}

// The Section 7.3 hardware pricing.
func ExampleHardwareReport() {
	hw := rxl.DefaultHardwareReport()
	fmt.Println("extra XOR gates per fold:", hw.ISNExtraXORs)
	fmt.Println("extra logic depth:", hw.ISNExtraDepth)
	fmt.Println("comparator gates removed:", hw.ComparatorRemoved.Gates())
	// Output:
	// extra XOR gates per fold: 10
	// extra logic depth: 1
	// comparator gates removed: 19
}
