// Package rxl is a simulation and analysis library reproducing "Scaling
// Out Chip Interconnect Networks with Implicit Sequence Numbers" (SC 2025).
//
// The paper proposes ISN — embedding the link sequence number in the CRC
// instead of the flit header — and RXL, a CXL 3.0 extension that elevates
// the 64-bit CRC to an end-to-end transport check while FEC stays per-hop.
// This package exposes the reproduction's three toolkits:
//
//   - Simulation: build a Fabric (endpoints, switches, BER channels), push
//     traffic through it, and account failures exactly as Section 7.1
//     defines them (Fail_data, Fail_order). The deterministic Fig. 4 and
//     Fig. 5 failure scenarios are packaged as one-call functions.
//
//   - Analysis: the closed-form reliability model (Eq. 1–10, Fig. 8) and
//     bandwidth model (Eq. 11–14), with Monte-Carlo estimators validating
//     each conditional stage.
//
//   - Hardware: the gate-level cost model behind Section 7.3's "10 XOR
//     gates" claim, derived symbolically from the repository's own CRC.
//
// # Quick start
//
//	fabric := rxl.MustNewFabric(rxl.Config{
//		Protocol: rxl.RXL,
//		Levels:   2,    // two switching levels
//		BER:      1e-6, // CXL 3.0 bit error rate
//		Seed:     1,
//	})
//	exp := rxl.Experiment{Fabric: fabric, N: 10000}
//	res := exp.Run()
//	fmt.Println(res)
//
// The three protocol variants are Protocol values: CXL (baseline, ACK
// piggybacking on the multiplexed FSN field), CXLNoPiggyback (explicit
// sequence numbers, standalone ACK flits), and RXL (implicit sequence
// numbers in the CRC).
package rxl

import (
	"context"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hwcost"
	"repro/internal/link"
	"repro/internal/perf"
	"repro/internal/reliability"
	"repro/internal/reliability/rarevent"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/switchfab"
	"repro/internal/workload"
)

// Protocol selects the sequence-integrity scheme of a fabric.
type Protocol = link.Protocol

// Protocol variants compared throughout the paper.
const (
	// CXL is baseline CXL 3.0: the 10-bit FSN header field is multiplexed
	// between sequence numbers and piggybacked acknowledgments.
	CXL = link.ProtocolCXL
	// CXLNoPiggyback always sends explicit sequence numbers and pays for
	// standalone ACK flits (Section 7.2.2, option 2).
	CXLNoPiggyback = link.ProtocolCXLNoPiggyback
	// RXL embeds the sequence number in the end-to-end CRC (ISN).
	RXL = link.ProtocolRXL
)

// Config describes an end-to-end fabric: protocol, switching depth, error
// injection, and timing.
type Config = core.Config

// LinkConfig parameterizes the link-layer peers (replay window, ACK
// coalescing, timeouts).
type LinkConfig = link.Config

// LinkStats is the per-peer statistics block exposed by Peer.Stats —
// transmit/receive counters, FEC corrections, CRC errors, retries.
type LinkStats = link.Stats

// DefaultLinkConfig returns the link parameters used by the paper's
// analysis (p_coalescing = 0.1, 128-flit replay window).
func DefaultLinkConfig(p Protocol) LinkConfig { return link.DefaultConfig(p) }

// Fabric is a live end-to-end stack driven by the discrete-event engine.
type Fabric = core.Fabric

// NewFabric builds a fabric from the configuration.
func NewFabric(cfg Config) (*Fabric, error) { return core.NewFabric(cfg) }

// MustNewFabric is NewFabric panicking on error.
func MustNewFabric(cfg Config) *Fabric { return core.MustNewFabric(cfg) }

// Experiment drives a line-rate workload through a fabric and accounts
// failures per the paper's taxonomy.
type Experiment = core.Experiment

// Result is the outcome of one experiment.
type Result = core.Result

// FailureCounts is the Section 7.1 failure taxonomy measured at the
// application boundary.
type FailureCounts = core.FailureCounts

// RunComparison runs the same workload across all three protocol variants.
func RunComparison(base Config, n int) map[Protocol]Result {
	return core.RunComparison(base, n)
}

// Runner is the parallel sharded experiment pool. It shards a job set —
// a SweepGrid or N Monte-Carlo trials — across Workers goroutines with
// deterministic per-shard RNG derivation from BaseSeed, so any worker
// count reproduces bit-identical merged results. The zero value runs with
// GOMAXPROCS workers and base seed 0.
type Runner = runner.Pool

// SweepGrid enumerates a protocol × levels × BER × seed experiment job
// set. Empty axes inherit the single value from Base.
type SweepGrid = core.Grid

// Sweep runs every cell of the grid across the pool's workers, each on
// its own single-threaded engine, and returns results in cell order.
// Results are bit-identical at any worker count for a fixed BaseSeed.
func Sweep(ctx context.Context, pool Runner, grid SweepGrid) ([]Result, error) {
	return core.RunGrid(ctx, pool, grid)
}

// Fig4Report is the outcome of the Fig. 4 link-layer drop scenario.
type Fig4Report = core.Fig4Report

// RunFig4 reproduces the paper's Fig. 4: a silent switch drop followed by
// an AckNum-carrying flit. Under CXL it yields out-of-order delivery;
// under RXL the ISN check detects the drop.
func RunFig4(p Protocol) Fig4Report { return core.RunFig4(p) }

// Fig5Report is the outcome of the Fig. 5 transaction-layer scenarios.
type Fig5Report = core.Fig5Report

// RunFig5a reproduces Fig. 5a (duplicate request execution).
func RunFig5a(p Protocol) Fig5Report { return core.RunFig5a(p) }

// RunFig5b reproduces Fig. 5b (out-of-order data within a CQID).
func RunFig5b(p Protocol) Fig5Report { return core.RunFig5b(p) }

// Reliability is the closed-form failure-rate model of Section 7.1
// (Eq. 1–10 and Fig. 8).
type Reliability = reliability.Params

// DefaultReliability returns the paper's parameter set (BER 1e-6, 256B
// flits, FER_UC 3e-5, p_coalescing 0.1, 500M flits/s).
func DefaultReliability() Reliability { return reliability.DefaultParams() }

// PathFERSample is a multi-hop Monte-Carlo flit error rate measurement:
// the probability that a flit is struck on any crossing of an H-hop
// mesh/chain path, measured on the shared error-event schedule.
type PathFERSample = reliability.PathFERSample

// MeasurePathFER estimates the H-hop path flit error rate on the shared
// error-event schedule, bulk-advancing whole clean traversals — the
// mesh-aware generalization of the single-link schedule Monte Carlo,
// bit-identical to the per-hop byte-level reference for equal seeds.
func MeasurePathFER(ber float64, hops, flits int, seed uint64) PathFERSample {
	return reliability.MeasureFERPathSchedule(ber, hops, flits, seed)
}

// Fig8Point is one switching level of the Fig. 8 FIT comparison.
type Fig8Point = reliability.Point

// Fig8 returns the CXL-vs-RXL FIT series for switching levels 0..max.
func Fig8(max int) []Fig8Point { return reliability.DefaultParams().Fig8(max) }

// RareEstimate is a rare-event probability estimate: point value,
// variance of the mean, relative error, and the raw trial/hit counts,
// from the importance-sampling / multilevel-splitting estimators in
// internal/reliability/rarevent.
type RareEstimate = rarevent.Estimate

// RarePoint is one BER of a deep-tail sweep: importance-sampled FER
// (with Eq. 1 in its Analytic field), FER_UC from real FEC decodes, and
// FER_UD composed with the analytic 2^-64 CRC escape.
type RarePoint = reliability.RarePoint

// RareCheckPoint is one BER of the self-validation sweep: the IS
// estimate against naive schedule Monte-Carlo, with their distance in
// combined standard errors.
type RareCheckPoint = reliability.RareCheckPoint

// RareSweep estimates the deep-tail failure chain (FER, FER_UC, FER_UD)
// at each BER on the sharded runner with importance sampling on the
// tilted error-event schedule. relErr is the target relative error of
// each estimate (adaptive trial budget up to maxTrials per quantity);
// relErr <= 0 spends exactly maxTrials. Estimates are bit-identical at
// any worker count for a fixed pool BaseSeed.
func RareSweep(ctx context.Context, pool Runner, bers []float64, relErr float64, maxTrials int) ([]RarePoint, error) {
	return reliability.RareSweep(ctx, pool, bers, 0, relErr, maxTrials, reliability.DefaultShards)
}

// RareSelfCheck cross-validates the importance-sampling machinery
// against naive schedule Monte-Carlo at BERs where both converge
// (1e-6..1e-7); a Sigma within ±3 on every point licenses the deep-tail
// numbers RareSweep reports where no naive cross-check is possible.
func RareSelfCheck(ctx context.Context, pool Runner, bers []float64, flits int) ([]RareCheckPoint, error) {
	return reliability.RareSelfCheck(ctx, pool, bers, flits, reliability.DefaultShards)
}

// Service is the experiment-serving daemon (internal/service): a
// content-addressed result cache in front of an admission-controlled job
// scheduler, exposed over HTTP (see cmd/rxld) and as an http.Handler for
// in-process use. Identical specs are answered from the cache with
// byte-identical results; distinct jobs share the machine under a fixed
// shard-concurrency budget.
type Service = service.Server

// ServiceConfig parameterizes Serve: shard budget, queue depth, cache
// size, optional disk spill. The zero value is production-usable.
type ServiceConfig = service.Config

// JobSpec is the wire form of a serving job: kind ("grid", "sweep",
// "rare"), seed, scheduling hints, and exactly one payload.
type JobSpec = service.JobSpec

// JobView is a job's externally visible state: status, cache provenance,
// result document, and timing.
type JobView = service.JobView

// ServiceStats is the /v1/statsz document: queue depth, shard budget
// utilization, cache hit rate, jobs served.
type ServiceStats = service.Stats

// ServiceEvent is one entry of a job's SSE progress stream.
type ServiceEvent = service.Event

// Serve starts an in-process serving daemon. The returned Service is an
// http.Handler ready to mount on any listener (cmd/rxld does exactly
// that); close it to cancel live jobs and stop admission.
func Serve(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// Client is the typed serving client: Submit/Wait/Stream/Cancel/Run
// against a daemon, over TCP or in-process. Both paths traverse the same
// HTTP handlers, so tests and examples exercise what production serves.
type Client = service.Client

// NewClient returns a client for a daemon at base, e.g.
// "http://127.0.0.1:8080".
func NewClient(base string) *Client { return service.NewClient(base) }

// InProcessClient returns a client wired straight into an in-process
// Service — no socket, same handlers, SSE streaming included.
func InProcessClient(s *Service) *Client { return service.NewInProcessClient(s) }

// FleetRing is the consistent-hash ring placing cache keys on fleet
// daemons (internal/fleet): an immutable vnode ring where placement is a
// pure function of (key, peer set) and adding a peer moves ~1/(N+1) of
// the key space. Routing never changes result bytes — every daemon
// computes the same bytes for a key, so the ring only decides who.
type FleetRing = fleet.Ring

// NewFleetRing builds a ring over the given peer base URLs; vnodes 0
// means the default (128 per peer). The peer list is deduplicated and
// sorted, so any ordering yields the same placement.
func NewFleetRing(peers []string, vnodes int) (*FleetRing, error) {
	return fleet.NewRing(peers, vnodes)
}

// FleetFetchConfig parameterizes a fleet member's peer fetch: its own
// URL, the full peer list, and how long a fetch may join the owner's
// in-flight computation. Wire the fetcher's Fetch into
// ServiceConfig.PeerFetch (cmd/rxld does this under -fleet-self).
type FleetFetchConfig = fleet.FetchConfig

// NewFleetFetcher returns the miss-path peer fetcher for one daemon of a
// fleet.
func NewFleetFetcher(cfg FleetFetchConfig) (*fleet.Fetcher, error) {
	return fleet.NewFetcher(cfg)
}

// FrontConfig parameterizes a fleet front: the peer list plus hot-key
// promotion policy (threshold, replica count, decay epoch).
type FrontConfig = fleet.FrontConfig

// Front is the stateless fleet router: it normalizes and keys each
// submission, forwards it to the key's ring owner (spreading hot keys
// over a replica set, failing over past dead peers), and rewrites job
// handles so GET/DELETE/events find the daemon that issued them. It is
// an http.Handler; cmd/rxld serves one under -fleet.
type Front = fleet.Front

// NewFront builds a fleet front over the given daemons.
func NewFront(cfg FrontConfig) (*Front, error) { return fleet.NewFront(cfg) }

// Performance is the bandwidth-loss model of Section 7.2 (Eq. 11–14).
type Performance = perf.Params

// DefaultPerformance returns the paper's timing (2 ns flits, 100 ns retry,
// FER_UC 3e-5).
func DefaultPerformance() Performance { return perf.DefaultParams() }

// HardwareReport prices the ISN retrofit at the gate level (Section 7.3).
type HardwareReport = hwcost.Report

// DefaultHardwareReport models the paper's configuration: a 242-byte CRC
// input and a 10-bit sequence number.
func DefaultHardwareReport() HardwareReport { return hwcost.DefaultReport() }

// MeshNode is one endpoint of a NoC, managing a link peer per remote node.
type MeshNode = switchfab.MeshNode

// MeshFlow is one unidirectional stream of a mesh workload, identified by
// source and destination node coordinates.
type MeshFlow = core.MeshFlow

// MeshResult is the accounting of a mesh workload run: per-flow failure
// taxonomy, endpoint link statistics, router totals, and per-path channel
// accounting.
type MeshResult = core.MeshResult

// NoC is a W×H 2D-mesh Network-on-Chip with XY routing — the paper's
// future-work extension of ISN beyond scale-out fabrics (Section 8).
// Every router terminates FEC per hop; under RXL the ISN-bearing CRC
// passes through end to end. Error injection is schedule-driven per
// source→destination path (one shared error-event schedule consumed
// end-to-end, whole-path grants at the injection wire), so clean
// multi-hop traversals cost one schedule consultation instead of one per
// hop.
type NoC struct {
	// Eng is the discrete-event engine driving the mesh.
	Eng *sim.Engine
	// Mesh exposes the routers and wires for fault injection.
	Mesh *switchfab.Mesh

	fab *core.MeshFabric
}

// NewNoC builds a w×h mesh NoC. The Config supplies protocol, BER/burst,
// seed, timing overrides, and NoFastPath; Levels and switch-specific
// fields are ignored.
func NewNoC(w, h int, cfg Config) (*NoC, error) {
	return newNoC(cfg, Topology{Kind: core.TopoMesh, W: w, H: h})
}

// NewTorus builds a w×h 2D-torus NoC: wraparound row/column rings with
// minimal-direction routing, everything else as NewNoC.
func NewTorus(w, h int, cfg Config) (*NoC, error) {
	return newNoC(cfg, Topology{Kind: core.TopoTorus, W: w, H: h})
}

func newNoC(cfg Config, topo Topology) (*NoC, error) {
	fab, err := core.NewTopologyFabric(cfg, topo)
	if err != nil {
		return nil, err
	}
	return &NoC{Eng: fab.Eng, Mesh: fab.Mesh, fab: fab}, nil
}

// Node returns (creating on first use) the endpoint at mesh position
// (x,y).
func (n *NoC) Node(x, y int) *MeshNode { return n.fab.Node(x, y) }

// Run drains the event queue.
func (n *NoC) Run() { n.fab.Run() }

// RunWorkload drives nPayloads through each flow simultaneously and
// returns the full accounting — the one-call mesh experiment behind the
// multi-hop benchmarks and differential tests.
func (n *NoC) RunWorkload(flows []MeshFlow, nPayloads int) MeshResult {
	return n.fab.RunWorkload(flows, nPayloads)
}

// Topology selects the fabric shape of a scenario cell: a 2D mesh or a
// 2D torus (wraparound rings, minimal-direction routing).
type Topology = core.Topology

// Topology kinds.
const (
	TopoMesh  = core.TopoMesh
	TopoTorus = core.TopoTorus
)

// WorkloadSpec selects and parameterizes a spatial traffic generator:
// uniform random, zipf hot-spot, transpose/bit-reverse permutation,
// single-sink incast, or trace-driven replay. Generation is a pure
// function of (spec, geometry, seed).
type WorkloadSpec = workload.Spec

// Workload kinds.
const (
	WorkloadUniform    = workload.KindUniform
	WorkloadZipf       = workload.KindZipf
	WorkloadTranspose  = workload.KindTranspose
	WorkloadBitReverse = workload.KindBitReverse
	WorkloadSingleSink = workload.KindSingleSink
	WorkloadReplay     = workload.KindReplay
)

// FaultScript is a deterministic scripted fault campaign — lane degrade,
// transient BER storm, or link flap — applied to a fabric as seed-derived
// engine events, identically on the fast and byte-level paths.
type FaultScript = core.FaultScript

// Fault-campaign kinds.
const (
	FaultNone    = core.FaultNone
	FaultDegrade = core.FaultDegrade
	FaultStorm   = core.FaultStorm
	FaultFlap    = core.FaultFlap
)

// ScenarioGrid enumerates a scenario job set: protocol × topology ×
// workload × fault-campaign × BER × seed. Incompatible (topology,
// workload) pairings are skipped deterministically.
type ScenarioGrid = core.ScenarioGrid

// ScenarioResult is the accounting of one scenario cell.
type ScenarioResult = core.ScenarioResult

// RunScenarios runs every compatible cell of the grid across the pool's
// workers and returns results in cell order, bit-identical at any worker
// count.
func RunScenarios(ctx context.Context, pool Runner, grid ScenarioGrid) ([]ScenarioResult, error) {
	return core.RunScenarioGrid(ctx, pool, grid)
}

// Engine is the discrete-event scheduler driving every fabric: a
// two-lane queue (monotone FIFO ring + out-of-order heap) drained by a
// bulk-advance pump that jumps the clock across stretches with no
// pending events. Fabrics build their own; expose it here for custom
// scenario scripting and engine-level benchmarks.
type Engine = sim.Engine

// NewEngine returns an engine at time 0 with an empty queue.
func NewEngine() *Engine { return sim.NewEngine() }

// Time is a simulation timestamp in picoseconds.
type Time = sim.Time

// Convenient duration units for Config timing fields.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	// FlitTime is the 2 ns serialization time of a 256B flit on a
	// full-speed ×16 CXL 3.0 link.
	FlitTime = sim.FlitTime
)
