// Coherence: the transaction-layer consequences of silent flit drops
// (Fig. 5a and Fig. 5b).
//
// A device issues cache-line reads to a host across one switch. One
// request- or data-carrying flit is dropped in the switch while its
// successor carries a piggybacked acknowledgment:
//
//   - Fig. 5a: under CXL the go-back-N replay re-delivers a request the
//     host already executed — duplicate execution, the "A, C, B, C"
//     inconsistency.
//   - Fig. 5b: under CXL data sharing a command queue (CQID) arrives out
//     of order, which applications observe as misaligned data.
//
// RXL runs the identical scripts without any transaction-layer anomaly.
//
// Run with:
//
//	go run ./examples/coherence
package main

import (
	"fmt"

	"repro"
)

func main() {
	fmt.Println("Fig. 5a: duplicate request execution")
	fmt.Println("------------------------------------")
	for _, p := range []rxl.Protocol{rxl.CXL, rxl.RXL} {
		rep := rxl.RunFig5a(p)
		fmt.Printf("%-9v issued=%d completed=%d duplicate_executions=%d duplicate_data=%d\n",
			p, rep.Issued, rep.Completed, rep.DuplicateExecutions, rep.DuplicateData)
	}
	fmt.Println()

	fmt.Println("Fig. 5b: out-of-order data within one CQID")
	fmt.Println("------------------------------------------")
	for _, p := range []rxl.Protocol{rxl.CXL, rxl.RXL} {
		rep := rxl.RunFig5b(p)
		fmt.Printf("%-9v issued=%d completed=%d out_of_order_data=%d\n",
			p, rep.Issued, rep.Completed, rep.OutOfOrderData)
	}
	fmt.Println()

	fmt.Println("Under CXL the failures escape the link layer: the host executes a")
	fmt.Println("request twice, and same-queue data arrives misordered. Under RXL the")
	fmt.Println("ISN-bearing end-to-end CRC catches the drop before any message is")
	fmt.Println("handed to the transaction layer.")
}
