// Serving: the experiment daemon driven in-process through the facade.
//
// It starts rxl.Serve (the same server cmd/rxld mounts on a TCP
// listener), submits a protocol-comparison grid job through the typed
// client, follows the SSE progress stream, then submits the identical
// spec again and shows the second answer coming from the
// content-addressed cache — byte-identical, without touching a core.
//
// Run with:
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the example body, exercised by `go test ./examples/...`.
func run(w *os.File) error {
	srv, err := rxl.Serve(rxl.ServiceConfig{})
	if err != nil {
		return err
	}
	defer srv.Close()
	client := rxl.InProcessClient(srv)
	ctx := context.Background()

	grid := rxl.SweepGrid{
		Base:      rxl.Config{BER: 1e-5, BurstProb: 0.4, Seed: 7},
		Protocols: []rxl.Protocol{rxl.CXL, rxl.CXLNoPiggyback, rxl.RXL},
		Levels:    []int{1},
		N:         2000,
	}
	spec := rxl.JobSpec{Kind: "grid", Seed: 1, Grid: &grid}

	// First submission: a miss — the scheduler grants workers and the
	// grid runs, streaming shard progress.
	first, err := client.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "submitted %s (%s)\n", first.ID, first.Status)
	var computed []byte
	err = client.Stream(ctx, first.ID, func(e rxl.ServiceEvent) error {
		switch e.Type {
		case "progress":
			fmt.Fprintf(w, "  progress: %d/%d cells\n", e.Done, e.Total)
		case "result":
			computed = e.Result
		case "error":
			return fmt.Errorf("job failed: %s", e.Error)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "computed %d result bytes\n", len(computed))

	// Identical spec again: answered from the content-addressed cache at
	// submit time, byte-identical to the computed run.
	second, err := client.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "repeat submission: status=%s cached=%v identical=%v\n",
		second.Status, second.Cached, bytes.Equal(second.Result, computed))

	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "daemon: %d jobs completed, cache hit rate %.0f%%, shard budget %d\n",
		stats.JobsCompleted, 100*stats.Cache.HitRate, stats.ShardBudget)

	if !second.Cached || !bytes.Equal(second.Result, computed) {
		return fmt.Errorf("cache did not serve the repeat byte-identically")
	}
	return nil
}
