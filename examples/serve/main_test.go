package main

import (
	"os"
	"testing"
)

// TestServeExample keeps the documented facade path runnable: the
// example must complete — compute, stream, cache-hit byte-identically —
// under `go test ./examples/...`.
func TestServeExample(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run(devnull); err != nil {
		t.Fatal(err)
	}
}
