// NoC: the paper's future-work direction — ISN on a Network-on-Chip.
//
// A 4x4 2D mesh of FEC-terminating routers carries a flow across the full
// diagonal (six hops). One hop corrupts a flit beyond FEC repair, so the
// router silently drops it, exactly like the scale-out switch case — but
// now the drop can happen at any of six places. The end-to-end ISN check
// detects it regardless of where it happened, because no router on the
// path touches the CRC.
//
// Run with:
//
//	go run ./examples/noc
package main

import (
	"encoding/binary"
	"fmt"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/switchfab"
)

func main() {
	eng := sim.NewEngine()
	mesh := switchfab.NewMesh(eng, 4, 4, switchfab.DefaultMeshConfig(switchfab.ModeRXL))

	src := switchfab.NewMeshNode(mesh, 0, 0, link.DefaultConfig(link.ProtocolRXL))
	dst := switchfab.NewMeshNode(mesh, 3, 3, link.DefaultConfig(link.ProtocolRXL))

	tx := src.PeerTo(dst.ID)
	rx := dst.PeerTo(src.ID)
	var got []uint64
	rx.Deliver = func(p []byte) { got = append(got, binary.BigEndian.Uint64(p)) }

	// Corrupt the 5th data flit beyond FEC repair on the hop into router
	// (2,0): that router drops it silently.
	seen := 0
	mesh.InterRouterWire(1, 0, 2, 0).FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			if seen == 5 {
				f.Raw[30] ^= 0xFF
				f.Raw[33] ^= 0xFF
				fmt.Println("hop (1,0)->(2,0): flit corrupted beyond FEC repair")
			}
		}
		return false
	}

	const n = 12
	for i := uint64(0); i < n; i++ {
		p := make([]byte, 16)
		binary.BigEndian.PutUint64(p, i)
		tx.Submit(p)
	}
	eng.Run()

	st := mesh.TotalStats()
	fmt.Printf("\nnode (0,0) -> node (3,3), 6 hops across a 4x4 RXL mesh\n")
	fmt.Printf("delivered %d of %d, order: %v\n", len(got), n, got)
	fmt.Printf("router drops: %d (silent)\n", st.DroppedUncorrectable)
	fmt.Printf("endpoint ISN detections: %d, retransmissions: %d\n",
		rx.Stats.CrcErrors, tx.Stats.Retransmissions)
	fmt.Printf("simulated time: %d ns\n", eng.Now()/sim.Nanosecond)
}
