// Fitsweep: regenerate the Fig. 8 reliability comparison programmatically.
//
// It evaluates the closed-form FIT model (Eq. 1-10) across switching
// levels and renders the CXL-vs-RXL series as a log-scale ASCII chart —
// the shape of the paper's Fig. 8: CXL collapses by ~18 orders of
// magnitude at the first switching level while RXL stays flat.
//
// Run with:
//
//	go run ./examples/fitsweep
package main

import (
	"fmt"
	"math"
	"strings"

	"repro"
)

func bar(fit float64) string {
	// Map log10(FIT) from [-3, +16] onto 0..60 characters.
	l := math.Log10(fit)
	n := int((l + 3) / 19 * 60)
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}

func main() {
	pts := rxl.Fig8(8)

	fmt.Println("Fig. 8: FIT_device vs switching levels (log scale)")
	fmt.Println()
	fmt.Printf("%-7s %-13s %s\n", "levels", "FIT", "")
	for _, pt := range pts {
		fmt.Printf("L%-2d CXL %12.3g %s\n", pt.Levels, pt.FITCXL, bar(pt.FITCXL))
		fmt.Printf("    RXL %12.3g %s\n", pt.FITRXL, bar(pt.FITRXL))
	}

	r := rxl.DefaultReliability()
	fmt.Println()
	fmt.Printf("At one switching level CXL's FIT is %.3g — %.1g times RXL's %.3g.\n",
		r.FITCXL(1), r.Improvement(1), r.FITRXL(1))
	fmt.Println("A server-grade FIT budget is a few hundred: CXL exceeds it by 13")
	fmt.Println("orders of magnitude the moment a switch is introduced; RXL never does.")
}
