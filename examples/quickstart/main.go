// Quickstart: two endpoints over an RXL link with a noisy channel.
//
// It builds a direct connection (no switches), injects bit errors at an
// accelerated rate so retries actually happen during the short run, sends
// ten thousand payloads, and shows that delivery is exactly-once and
// in-order while the link-layer statistics expose the FEC corrections and
// go-back-N retries that made it so.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fabric, err := rxl.NewFabric(rxl.Config{
		Protocol:  rxl.RXL,
		Levels:    0,    // direct connection
		BER:       1e-5, // accelerated vs CXL 3.0's 1e-6 so errors occur quickly
		BurstProb: 0.4,  // DFE burst extension
		Seed:      2024,
	})
	if err != nil {
		log.Fatal(err)
	}

	exp := rxl.Experiment{Fabric: fabric, N: 10000}
	res := exp.Run()

	fmt.Println("RXL direct connection, 10k flits at BER 1e-5")
	fmt.Println(res)
	fmt.Printf("\ndelivery:   %d payloads, clean=%v\n", res.Failures.Delivered, res.Failures.Clean())
	fmt.Printf("FEC:        corrected %d flits (%d symbols) at the endpoint\n",
		res.LinkB.FecCorrectedFlits, res.LinkB.FecCorrectedSymbols)
	fmt.Printf("ISN:        flagged %d drops/corruptions via CRC mismatch\n", res.LinkB.CrcErrors)
	fmt.Printf("retry:      %d go-back-N retransmissions, %d NAK rounds\n",
		res.LinkA.Retransmissions, res.LinkA.NaksReceived)
	fmt.Printf("bandwidth:  %.4f%% goodput loss (paper Eq. 11 predicts ~%.4f%% at this error rate)\n",
		100*res.Goodput.BWLoss, 100*rxl.DefaultPerformance().BWLossDirect())
}
