// Switched: the paper's core failure demonstration (Fig. 4).
//
// A host and device communicate through one switch. The switch silently
// drops a flit whose successor carries a piggybacked acknowledgment
// instead of its own sequence number. Under baseline CXL the endpoint
// forwards the successor unverified — out-of-order delivery reaches the
// application. Under RXL the same drop trips the implicit-sequence-number
// CRC check and the go-back-N replay restores perfect order.
//
// Run with:
//
//	go run ./examples/switched
package main

import (
	"fmt"

	"repro"
)

func show(name string, rep rxl.Fig4Report) {
	fmt.Printf("%s\n", name)
	fmt.Printf("  delivery order:        %v\n", rep.Tags)
	fmt.Printf("  switch drops:          %d\n", rep.SwitchDrops)
	fmt.Printf("  unverified forwards:   %d (the piggyback blind spot)\n", rep.UnverifiedDelivered)
	fmt.Printf("  ISN/CRC detections:    %d\n", rep.CrcErrors)
	fmt.Printf("  misordered:            %v\n", rep.Misordered)
	fmt.Println()
}

func main() {
	fmt.Println("Fig. 4: a switch silently drops flit #1; flit #2 carries an AckNum.")
	fmt.Println("Expected clean order: [0 1 2 3] (tag 100 travels upstream).")
	fmt.Println()

	show("CXL (ACK piggybacking)", rxl.RunFig4(rxl.CXL))
	show("CXL without piggybacking (explicit FSNs, costly ACK flits)", rxl.RunFig4(rxl.CXLNoPiggyback))
	show("RXL (implicit sequence numbers)", rxl.RunFig4(rxl.RXL))

	fmt.Println("CXL delivers tag 2 before tag 1 — the paper's A, C, B, C sequence.")
	fmt.Println("RXL detects the drop at the very next flit and replays; order holds.")
}
