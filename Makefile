# Operator entry points. Every target shells into the same commands CI
# runs (scripts/verify.sh rungs), so `make verify` locally is the CI
# gate, not an approximation of it. See OPERATIONS.md for the runbook.

GO ?= go

.PHONY: build test vet verify unit race differential smoke metrics fleet compose bench \
        fleet-up fleet-down fleet-bench docker clean

build: ## Build all binaries into ./bin
	$(GO) build -o bin/ ./cmd/...

test: ## Unit tests
	$(GO) test ./...

vet: ## go vet
	$(GO) vet ./...

verify: ## The whole verification ladder, bottom to top
	scripts/verify.sh --level=all

unit race differential smoke metrics fleet compose bench: ## Individual verify rungs
	scripts/verify.sh --level=$@

fleet-up: ## Start the docker-compose fleet (3 daemons + front on :17080)
	docker compose up --build -d --wait

fleet-down: ## Stop the docker-compose fleet and drop its state
	docker compose down -v --remove-orphans

fleet-bench: ## Measure the 1..3-daemon scaling curve (process fleets)
	scripts/fleet_bench.sh

docker: ## Build the rxld image
	docker build -t rxld .

clean:
	rm -rf bin rxld rxld.addr bench.txt baseline.txt statsz.json r1.json r2.json
