package main

import (
	"testing"

	"repro/internal/link"
)

func TestParseProto(t *testing.T) {
	cases := []struct {
		in   string
		want link.Protocol
		ok   bool
	}{
		{"cxl", link.ProtocolCXL, true},
		{"cxl-nopb", link.ProtocolCXLNoPiggyback, true},
		{"rxl", link.ProtocolRXL, true},
		{"tcp", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseProto(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseProto(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseProto(%q) accepted", c.in)
		}
	}
}
