package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/runner"
	"repro/internal/workload"
)

func TestParseProto(t *testing.T) {
	cases := []struct {
		in   string
		want link.Protocol
		ok   bool
	}{
		{"cxl", link.ProtocolCXL, true},
		{"cxl-nopb", link.ProtocolCXLNoPiggyback, true},
		{"rxl", link.ProtocolRXL, true},
		{"tcp", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseProto(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseProto(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseProto(%q) accepted", c.in)
		}
	}
}

// TestRunScanTinyGrid drives the scan verb over a reduced grid: every
// cell must come back OK (the differential suite pins these operating
// points), the report must cover the full enumeration, and the output
// must be identical at any worker count.
func TestRunScanTinyGrid(t *testing.T) {
	g := core.ScenarioGrid{
		Base:      core.Config{BER: 1e-5, BurstProb: 0.4, Seed: 3},
		Protocols: []link.Protocol{link.ProtocolRXL},
		Topologies: []core.Topology{
			{Kind: core.TopoMesh, W: 2, H: 2},
			{Kind: core.TopoTorus, W: 3, H: 3},
		},
		Workloads: []workload.Spec{
			{Kind: workload.KindUniform, Flows: 3},
			{Kind: workload.KindTranspose},
		},
		Faults: []core.FaultScript{
			{Kind: core.FaultNone},
			{Kind: core.FaultFlap, StartNS: 150, DurationNS: 120, Flaps: 2, PeriodNS: 400},
		},
		N: 30,
	}
	var out strings.Builder
	regressions, err := runScan(context.Background(), runner.Pool{Workers: 2, BaseSeed: 3}, g, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("tiny scan grid regressed:\n%s", out.String())
	}
	// 1 protocol × 2 topologies × 2 workloads × 2 faults.
	if want := "scan: 8/8 cells OK, 0 regressions"; !strings.Contains(out.String(), want) {
		t.Fatalf("scan summary missing %q:\n%s", want, out.String())
	}

	var other strings.Builder
	if _, err := runScan(context.Background(), runner.Pool{Workers: 1, BaseSeed: 3}, g, &other); err != nil {
		t.Fatal(err)
	}
	if other.String() != out.String() {
		t.Fatal("scan report depends on worker count")
	}
}

// TestRunScanRejectsBadGrid: grid validation surfaces as an error, not a
// partial report.
func TestRunScanRejectsBadGrid(t *testing.T) {
	if _, err := runScan(context.Background(), runner.Pool{}, core.ScenarioGrid{N: 5}, &strings.Builder{}); err == nil {
		t.Fatal("axis-less grid scanned without error")
	}
	// A grid whose cells all fail to build (BER 2 is not a probability)
	// reports every cell as a regression rather than aborting the sweep.
	g := scanGrid(2, 0.4, 1, 10)
	var out strings.Builder
	regressions, err := runScan(context.Background(), runner.Pool{}, g, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressions == 0 {
		t.Fatalf("invalid-BER grid scanned clean:\n%s", out.String())
	}
}
