package main

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/runner"
	"repro/internal/workload"
)

// scanGrid is the built-in regression grid of the -scan verb: every
// protocol stack × mesh and two torus sizes × random, hot-spot, and
// permutation traffic × a fault campaign of each scripted kind. The
// campaigns mirror the differential suite's proven-clean operating
// points; -ber, -burst, and -seed parameterize the whole grid.
func scanGrid(ber, burst float64, seed uint64, n int) core.ScenarioGrid {
	return core.ScenarioGrid{
		Base:      core.Config{BER: ber, BurstProb: burst, Seed: seed},
		Protocols: core.Protocols,
		Topologies: []core.Topology{
			{Kind: core.TopoMesh, W: 3, H: 3},
			{Kind: core.TopoTorus, W: 3, H: 3},
			{Kind: core.TopoTorus, W: 4, H: 4},
		},
		Workloads: []workload.Spec{
			{Kind: workload.KindUniform, Flows: 4},
			{Kind: workload.KindZipf},
			{Kind: workload.KindTranspose},
		},
		Faults: []core.FaultScript{
			{Kind: core.FaultNone},
			{Kind: core.FaultDegrade, StartNS: 150, Factor: 10},
			{Kind: core.FaultStorm, StartNS: 150, DurationNS: 250, Factor: 20},
			{Kind: core.FaultFlap, StartNS: 150, DurationNS: 120, Flaps: 2, PeriodNS: 400},
		},
		N: n,
	}
}

// scanOutcome is one cell's verdict: the differential ran fast==slow,
// and — for RXL, whose whole point is exactly-once delivery — the run
// was clean. CXL-variant cells may legitimately fail payloads under
// faults; only divergence regresses them.
type scanOutcome struct {
	cell      core.ScenarioCell
	fast      core.ScenarioResult
	identical bool
	err       error
}

func (o scanOutcome) regressed() bool {
	if o.err != nil || !o.identical {
		return true
	}
	return o.cell.Cfg.Protocol == link.ProtocolRXL && !o.fast.Clean()
}

func (o scanOutcome) reason() string {
	switch {
	case o.err != nil:
		return "error: " + o.err.Error()
	case !o.identical:
		return "fast path diverges from byte-level reference"
	case o.regressed():
		return "RXL delivery not exactly-once"
	default:
		return ""
	}
}

// runScan sweeps the built-in scenario grid, running every cell through
// the fast-path/byte-level differential on the worker pool, and reports
// which configurations regress. Returns the regression count; per-cell
// errors are reported as regressions rather than aborting the sweep.
func runScan(ctx context.Context, pool runner.Pool, g core.ScenarioGrid, w io.Writer) (int, error) {
	ng, err := g.Normalized()
	if err != nil {
		return 0, err
	}
	cells, err := ng.Cells()
	if err != nil {
		return 0, err
	}
	outcomes, err := runner.Map(ctx, pool, len(cells), func(ctx context.Context, s runner.Shard) (scanOutcome, error) {
		cell := cells[s.Index]
		if cell.Cfg.Seed == 0 {
			cell.Cfg.Seed = s.Seed
		}
		fast, _, identical, err := cell.RunDifferential(ng.N)
		return scanOutcome{cell: cell, fast: fast, identical: identical, err: err}, nil
	})
	if err != nil {
		return 0, err
	}

	fmt.Fprintf(w, "scan: %d cells × 2 runs (fast path vs byte-level reference), %d payloads/flow\n", len(cells), ng.N)
	regressions := 0
	for _, o := range outcomes {
		status := "OK     "
		if o.regressed() {
			status = "REGRESS"
			regressions++
		}
		var del, missing int
		for _, fc := range o.fast.Result.PerFlow {
			del += fc.Delivered
			missing += fc.Missing
		}
		fmt.Fprintf(w, "%s  %-60s delivered=%d missing=%d drops=%d hook_drops=%d",
			status, o.cell.Name(), del, missing,
			o.fast.Result.Routers.DroppedUncorrectable, o.fast.Result.HookDropped)
		if r := o.reason(); r != "" {
			fmt.Fprintf(w, "  [%s]", r)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "scan: %d/%d cells OK, %d regressions\n", len(cells)-regressions, len(cells), regressions)
	return regressions, nil
}
