// Command rxlsim runs one end-to-end interconnect simulation: a chosen
// protocol variant across a multi-level switched fabric with BER-driven
// error injection, reporting delivery integrity, retries, switch drops,
// and bandwidth accounting.
//
// With -reps R the workload is replicated R times with deterministic
// per-replica seeds derived from -seed, sharded across the runner's
// worker pool (-workers), and reported per replica plus merged — the
// Monte-Carlo form of the experiment. Results are bit-identical at any
// worker count.
//
// With -rare the live simulation is replaced by the rare-event deep-tail
// estimation at the configured -ber: importance sampling on the tilted
// error-event schedule reports FER, FER_UC, and FER_UD with relative-
// error control (-rel-err), at operating points (BER ≤ 1e-9) where the
// live simulator could never observe a single event. Rare mode models
// the per-link iid channel (burst-free, no fabric), so the simulation
// flags (-proto, -levels, -burst, -internal, -n, -compare, -reps, -csv)
// conflict with it and are rejected.
//
// With -scan the single experiment is replaced by a scenario regression
// sweep: a built-in grid of protocol × topology (mesh and torus) ×
// workload (uniform, zipf hot-spot, transpose) × scripted fault campaign
// (none, lane degrade, BER storm, link flap) is run cell by cell through
// the fast-path/byte-level differential, and every configuration whose
// two runs diverge — or whose RXL delivery is not exactly-once — is
// reported as a regression (non-zero exit). -ber, -burst, -seed, and
// -scan-n parameterize the grid; the single-experiment flags conflict.
//
// Usage:
//
//	rxlsim [-proto rxl|cxl|cxl-nopb] [-levels 1] [-ber 1e-6] [-n 100000]
//	       [-seed 1] [-burst 0.4] [-internal 0] [-compare]
//	       [-reps 1] [-workers 0] [-csv out.csv]
//	       [-rare] [-proposal-ber 0] [-rel-err 0.1]
//	       [-scan] [-scan-n 60]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/reliability"
	"repro/internal/runner"
)

func parseProto(s string) (link.Protocol, error) {
	switch s {
	case "cxl":
		return link.ProtocolCXL, nil
	case "cxl-nopb":
		return link.ProtocolCXLNoPiggyback, nil
	case "rxl":
		return link.ProtocolRXL, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (want cxl, cxl-nopb, or rxl)", s)
	}
}

func main() {
	proto := flag.String("proto", "rxl", "protocol: cxl, cxl-nopb, or rxl")
	levels := flag.Int("levels", 1, "switching levels (0 = direct connection)")
	ber := flag.Float64("ber", 1e-6, "per-link bit error rate")
	burst := flag.Float64("burst", 0.4, "DFE burst extension probability")
	internal := flag.Float64("internal", 0, "per-flit switch-internal corruption probability")
	n := flag.Int("n", 100000, "payloads to transfer")
	seed := flag.Uint64("seed", 1, "RNG seed (equal seeds reproduce runs exactly)")
	compare := flag.Bool("compare", false, "run all three protocols on the same workload")
	reps := flag.Int("reps", 1, "independent replicas with derived seeds, run on the worker pool")
	workers := flag.Int("workers", 0, "runner worker pool size (0 = GOMAXPROCS)")
	csvPath := flag.String("csv", "", "export replica results as CSV to this path")
	rare := flag.Bool("rare", false, "estimate rare-event deep tails at -ber instead of running the live simulation")
	proposal := flag.Float64("proposal-ber", 0, "importance-sampling proposal BER (0 = variance-optimal auto)")
	relErr := flag.Float64("rel-err", 0.1, "target relative error for the rare-event estimates")
	scan := flag.Bool("scan", false, "sweep the built-in scenario grid (topologies × workloads × fault campaigns) through the fast/byte-level differential and report regressions")
	scanN := flag.Int("scan-n", 60, "payloads per flow for each -scan cell")
	flag.Parse()

	ctx := context.Background()
	pool := runner.Pool{Workers: *workers, BaseSeed: *seed}

	if *scan {
		// Scan mode runs the built-in scenario grid differentially: the
		// single-experiment flags select things the grid enumerates for
		// itself, and -csv is unsupported (the sweep tool's -scenarios
		// stage exports scenario CSV), so setting one is a contradiction.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "proto", "levels", "internal", "n", "compare", "reps", "csv",
				"rare", "proposal-ber", "rel-err":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			fmt.Fprintf(os.Stderr, "rxlsim: %s do(es) not apply with -scan: the scan verb enumerates protocols, topologies, workloads, and fault campaigns itself\n",
				strings.Join(conflict, ", "))
			os.Exit(2)
		}
		regressions, err := runScan(ctx, pool, scanGrid(*ber, *burst, *seed, *scanN), os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *rare {
		// Rare mode estimates the per-link iid error process analytically
		// rather than simulating the fabric: protocol, topology, workload,
		// and DFE-burst flags have no effect here, so explicitly setting
		// one is a contradiction, not something to silently discard.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "proto", "levels", "burst", "internal", "n", "compare", "reps", "csv",
				"scan-n":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			fmt.Fprintf(os.Stderr, "rxlsim: %s do(es) not apply with -rare: the rare estimators model the per-link iid channel (burst-free) without a fabric\n",
				strings.Join(conflict, ", "))
			os.Exit(2)
		}
		if err := runRare(ctx, pool, *ber, *proposal, *relErr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	base := core.Config{
		Levels:           *levels,
		BER:              *ber,
		BurstProb:        *burst,
		InternalFlipProb: *internal,
		Seed:             *seed,
	}

	if *compare {
		results, err := core.RunComparisonPool(ctx, pool, base, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ordered := make([]core.Result, 0, len(core.Protocols))
		for _, p := range core.Protocols {
			fmt.Println(results[p])
			ordered = append(ordered, results[p])
		}
		exportCSV(*csvPath, ordered)
		return
	}

	p, err := parseProto(*proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base.Protocol = p

	if *reps > 1 {
		runReplicas(ctx, pool, base, *n, *reps, *csvPath)
		return
	}
	fabric, err := core.NewFabric(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	exp := core.Experiment{Fabric: fabric, N: *n}
	res := exp.Run()
	fmt.Println(res)
	exportCSV(*csvPath, []core.Result{res})

	fc := res.Failures
	fmt.Printf("failure taxonomy: Fail_data=%d Fail_order=%d duplicates=%d missing=%d\n",
		fc.FailData, fc.FailOrder, fc.Duplicates, fc.Missing)
	fmt.Printf("link A: sent=%d data=%d retx=%d acks_rx=%d naks_rx=%d\n",
		res.LinkA.FlitsSent, res.LinkA.DataFlitsSent, res.LinkA.Retransmissions,
		res.LinkA.AcksReceived, res.LinkA.NaksReceived)
	fmt.Printf("link B: rx=%d fec_corrected=%d crc_errors=%d unverified=%d\n",
		res.LinkB.FlitsReceived, res.LinkB.FecCorrectedFlits, res.LinkB.CrcErrors,
		res.LinkB.UnverifiedDelivered)
	fmt.Printf("switches: in=%d fwd=%d dropped_uc=%d dropped_crc=%d corrected=%d internal=%d\n",
		res.Switches.FlitsIn, res.Switches.Forwarded, res.Switches.DroppedUncorrectable,
		res.Switches.DroppedCRC, res.Switches.CorrectedFlits, res.Switches.InternalCorruptions)
	fmt.Printf("bandwidth: goodput_loss=%.4f%% ack_overhead=%.4f retry_overhead=%.4f utilization=%.3f\n",
		100*res.Goodput.BWLoss, res.Goodput.AckOverhead, res.Goodput.RetryOverhead,
		res.ForwardUtilization)

	if !fc.Clean() {
		os.Exit(1)
	}
}

// runReplicas runs `reps` independent copies of the configured experiment
// with per-replica seeds derived from the base seed (replica seed 0 means
// "derive"; runner.ShardSeed supplies it), reports each replica, and
// merges the failure taxonomy — exactly-once semantics hold only if every
// replica is clean.
func runReplicas(ctx context.Context, pool runner.Pool, base core.Config, n, reps int, csvPath string) {
	g := core.Grid{
		Base:  base,
		Seeds: make([]uint64, reps), // zeros: derived per cell from the pool seed
		N:     n,
	}
	results, err := core.RunGrid(ctx, pool, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var merged core.FailureCounts
	var retx, drops uint64
	clean := true
	for i, r := range results {
		fmt.Printf("rep %2d  %s\n", i, r)
		merged.Delivered += r.Failures.Delivered
		merged.FailData += r.Failures.FailData
		merged.FailOrder += r.Failures.FailOrder
		merged.Duplicates += r.Failures.Duplicates
		merged.Missing += r.Failures.Missing
		retx += r.LinkA.Retransmissions
		drops += r.Switches.DroppedUncorrectable
		clean = clean && r.Failures.Clean()
	}
	fmt.Printf("merged %d reps × %d payloads: delivered=%d dup=%d ooo=%d corrupt=%d missing=%d retx=%d drops=%d\n",
		reps, n, merged.Delivered, merged.Duplicates, merged.FailOrder,
		merged.FailData, merged.Missing, retx, drops)

	exportCSV(csvPath, results)
	if !clean {
		os.Exit(1)
	}
}

// runRare prints the importance-sampled deep-tail estimates at the
// link's BER: flit error rate against Eq. 1, uncorrectable-after-FEC
// rate from real RS decodes, and the undetected rate composed with the
// analytic 2^-64 CRC escape. Any shard error aborts with a non-zero
// exit.
func runRare(ctx context.Context, pool runner.Pool, ber, proposal, relErr float64) error {
	pts, err := reliability.RareSweep(ctx, pool, []float64{ber}, proposal, relErr, 1<<24, reliability.DefaultShards)
	if err != nil {
		return err
	}
	pt := pts[0]
	fmt.Printf("rare-event estimation at BER %g (per-link iid channel, rel-err target %.2f, %d shards):\n",
		ber, relErr, reliability.DefaultShards)
	fmt.Printf("  FER     %12.4g ±%.1f%%   (Eq. 1: %.4g, %.2f sigma; %d hits / %d trials)\n",
		pt.FER.Value, 100*pt.FER.RelErr, pt.FER.Analytic, pt.FER.Sigma(pt.FER.Analytic),
		pt.FER.Hits, pt.FER.Trials)
	fmt.Printf("  FER_UC  %12.4g ±%.1f%%   (real FEC decodes; %d hits / %d trials)\n",
		pt.FERUC.Value, 100*pt.FERUC.RelErr, pt.FERUC.Hits, pt.FERUC.Trials)
	fmt.Printf("  FER_UD  %12.4g ±%.1f%%   (FEC-miss mass × 2^-64 CRC escape)\n",
		pt.Undetected.Value, 100*pt.Undetected.RelErr)
	return nil
}

// exportCSV writes results to path when one was requested; every mode
// (single run, -compare, -reps) honors the -csv flag through it.
func exportCSV(path string, results []core.Result) {
	if path == "" {
		return
	}
	if err := runner.SaveCSV(path, core.GridCSVHeader(), core.ResultRows(results)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "result CSV written to %s\n", path)
}
