// Command rxlsim runs one end-to-end interconnect simulation: a chosen
// protocol variant across a multi-level switched fabric with BER-driven
// error injection, reporting delivery integrity, retries, switch drops,
// and bandwidth accounting.
//
// Usage:
//
//	rxlsim [-proto rxl|cxl|cxl-nopb] [-levels 1] [-ber 1e-6] [-n 100000]
//	       [-seed 1] [-burst 0.4] [-internal 0] [-compare]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/link"
)

func parseProto(s string) (link.Protocol, error) {
	switch s {
	case "cxl":
		return link.ProtocolCXL, nil
	case "cxl-nopb":
		return link.ProtocolCXLNoPiggyback, nil
	case "rxl":
		return link.ProtocolRXL, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (want cxl, cxl-nopb, or rxl)", s)
	}
}

func main() {
	proto := flag.String("proto", "rxl", "protocol: cxl, cxl-nopb, or rxl")
	levels := flag.Int("levels", 1, "switching levels (0 = direct connection)")
	ber := flag.Float64("ber", 1e-6, "per-link bit error rate")
	burst := flag.Float64("burst", 0.4, "DFE burst extension probability")
	internal := flag.Float64("internal", 0, "per-flit switch-internal corruption probability")
	n := flag.Int("n", 100000, "payloads to transfer")
	seed := flag.Uint64("seed", 1, "RNG seed (equal seeds reproduce runs exactly)")
	compare := flag.Bool("compare", false, "run all three protocols on the same workload")
	flag.Parse()

	base := core.Config{
		Levels:           *levels,
		BER:              *ber,
		BurstProb:        *burst,
		InternalFlipProb: *internal,
		Seed:             *seed,
	}

	if *compare {
		results := core.RunComparison(base, *n)
		for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback, link.ProtocolRXL} {
			fmt.Println(results[p])
		}
		return
	}

	p, err := parseProto(*proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base.Protocol = p
	fabric, err := core.NewFabric(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	exp := core.Experiment{Fabric: fabric, N: *n}
	res := exp.Run()
	fmt.Println(res)

	fc := res.Failures
	fmt.Printf("failure taxonomy: Fail_data=%d Fail_order=%d duplicates=%d missing=%d\n",
		fc.FailData, fc.FailOrder, fc.Duplicates, fc.Missing)
	fmt.Printf("link A: sent=%d data=%d retx=%d acks_rx=%d naks_rx=%d\n",
		res.LinkA.FlitsSent, res.LinkA.DataFlitsSent, res.LinkA.Retransmissions,
		res.LinkA.AcksReceived, res.LinkA.NaksReceived)
	fmt.Printf("link B: rx=%d fec_corrected=%d crc_errors=%d unverified=%d\n",
		res.LinkB.FlitsReceived, res.LinkB.FecCorrectedFlits, res.LinkB.CrcErrors,
		res.LinkB.UnverifiedDelivered)
	fmt.Printf("switches: in=%d fwd=%d dropped_uc=%d dropped_crc=%d corrected=%d internal=%d\n",
		res.Switches.FlitsIn, res.Switches.Forwarded, res.Switches.DroppedUncorrectable,
		res.Switches.DroppedCRC, res.Switches.CorrectedFlits, res.Switches.InternalCorruptions)
	fmt.Printf("bandwidth: goodput_loss=%.4f%% ack_overhead=%.4f retry_overhead=%.4f utilization=%.3f\n",
		100*res.Goodput.BWLoss, res.Goodput.AckOverhead, res.Goodput.RetryOverhead,
		res.ForwardUtilization)

	if !fc.Clean() {
		os.Exit(1)
	}
}
