// Command bwloss prints the paper's bandwidth-loss analysis (Section 7.2):
// the Eq. 11–14 comparison table and the ACK-coalescing sweep for the
// no-piggybacking alternative.
//
// Usage:
//
//	bwloss [-feruc 3e-5] [-retry 100] [-pcoalescing 0.1] [-levels 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perf"
	"repro/internal/sim"
)

func main() {
	feruc := flag.Float64("feruc", 3e-5, "uncorrectable flit error rate per link")
	retry := flag.Int64("retry", 100, "go-back-N retry latency in nanoseconds")
	pc := flag.Float64("pcoalescing", 0.1, "ACK coalescing level for the no-piggyback option")
	levels := flag.Int("levels", 4, "maximum switching levels for the sweep")
	flag.Parse()

	p := perf.DefaultParams()
	p.FERUC = *feruc
	p.RetryLatency = sim.Time(*retry) * sim.Nanosecond
	p.PCoalescing = *pc
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Println("Section 7.2 bandwidth loss (Eq. 11-14)")
	fmt.Println("--------------------------------------")
	fmt.Printf("%-30s %8s %8s\n", "scheme", "BW loss", "ordered")
	for _, r := range p.Table() {
		fmt.Printf("%-30s %7.4f%% %8v\n", r.Scheme, 100*r.BWLoss, r.Ordered)
	}
	fmt.Println()

	fmt.Println("Retry-occupancy loss vs switching levels (Eq. 12/14)")
	fmt.Println("levels   BW loss")
	for l := 0; l <= *levels; l++ {
		fmt.Printf("%6d  %7.4f%%\n", l, 100*p.BWLossSwitched(l))
	}
	fmt.Println()

	fmt.Println("No-piggyback ACK overhead vs coalescing (Eq. 13)")
	fmt.Println("p_coalescing   BW loss")
	for _, r := range perf.CoalescingSweep([]float64{1, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01}) {
		fmt.Printf("%12s  %7.2f%%\n", r.Scheme[len("no-piggyback p="):], 100*r.BWLoss)
	}
}
