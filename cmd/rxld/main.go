// Command rxld is the experiment-serving daemon: a long-running HTTP
// server that accepts sweep, grid, rare-event, protocol-comparison,
// rare-selfcheck, and scenario jobs as JSON — every workload the
// one-shot CLIs run — deduplicates them through a content-addressed
// result cache, and runs misses on an admission-controlled scheduler
// whose total shard concurrency never exceeds the configured budget.
//
// Usage:
//
//	rxld [-addr 127.0.0.1:8080] [-budget 0] [-queue 64] [-cache 256]
//	     [-spill DIR] [-job-workers 0] [-addr-file PATH]
//	     [-fleet-self URL -fleet-peers URL,URL,...]     # fleet member
//	rxld -fleet URL,URL,... [-addr ...] [-addr-file ...] # fleet front
//
// The bound address is printed on startup (and written to -addr-file when
// given), so -addr 127.0.0.1:0 picks a free port scriptably — the CI
// smoke job starts the daemon exactly that way.
//
// Fleet modes (see DESIGN.md §14 and OPERATIONS.md):
//
//   - Member: -fleet-self/-fleet-peers make this daemon part of a
//     consistent-hash fleet. On a cache miss it first asks the key's
//     ring owner for the bytes (GET /v1/cache/{key}, joining the
//     owner's in-flight computation when there is one) and only
//     computes when no peer has them. /v1/statsz grows a "fleet"
//     section (ring size, peer hits/misses/served).
//
//   - Front: -fleet runs a stateless router instead of a daemon. Every
//     submission is normalized, keyed, and forwarded to its owner —
//     hot keys are spread over a replica set — and job handles carry a
//     peer prefix ("p1~j000042-...") so GET/DELETE/events find the
//     daemon that issued them. No engines, no cache, restartable at
//     will.
//
// Observability (see OPERATIONS.md for the full family reference):
//
//   - GET /metrics on every daemon and front serves Prometheus text —
//     request latency histograms split by cache outcome, queue depth,
//     shard-budget utilization, cache bytes/entries, peer traffic, and
//     (front) per-peer health from the active prober. cmd/rxltop renders
//     a live fleet map from these.
//
//   - Every request gets (or propagates) an X-Rxl-Request-Id, and GET
//     /v1/jobs/{id}/trace returns the job's span log. Asked of a front,
//     the trace is assembled fleet-wide: front forwarding spans, the
//     owner's lifecycle spans, and any peer's cache-serve spans merge
//     under the one propagated ID.
//
//   - The front actively probes every member's /v1/healthz in the
//     background (-fleet-probe-interval) and routes around peers whose
//     probes fail; passive forward-failure marks remain as the fast path.
//
// API quickstart:
//
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{
//	  "kind": "grid", "seed": 1,
//	  "grid": {"Base": {"Protocol": 2, "Levels": 1, "BER": 1e-6}, "N": 5000}
//	}'
//	curl -s localhost:8080/v1/jobs/<id>?wait=30000
//	curl -N localhost:8080/v1/jobs/<id>/events
//	curl -s localhost:8080/v1/statsz
//
// Repeating the POST answers from the cache ("cached": true) with
// byte-identical results — every engine is deterministic per (spec,
// seed), so the cache can never serve a stale answer, and in a fleet
// every daemon computes the same bytes, so routing can never change a
// result. Finished job fetches carry an ETag (the job's content
// address); repeat GETs with If-None-Match are answered 304.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
		budget     = flag.Int("budget", 0, "total shard concurrency across all jobs (0 = GOMAXPROCS)")
		jobWorkers = flag.Int("job-workers", 0, "default per-job worker request (0 = full budget)")
		queue      = flag.Int("queue", 64, "bounded job queue depth (admission control)")
		cacheSize  = flag.Int("cache", 256, "in-memory result cache entries (LRU)")
		spillDir   = flag.String("spill", "", "directory for cache disk spill (empty = memory only)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")

		front      = flag.String("fleet", "", "run as fleet front: comma-separated daemon base URLs to route over (no local engines)")
		fleetSelf  = flag.String("fleet-self", "", "this daemon's base URL within the fleet (member mode; requires -fleet-peers)")
		peersCSV   = flag.String("fleet-peers", "", "comma-separated base URLs of every fleet daemon, self included (member mode)")
		vnodes     = flag.Int("fleet-vnodes", 0, "virtual nodes per peer on the consistent-hash ring (0 = 128; must match fleet-wide)")
		hotThresh  = flag.Int("fleet-hot-threshold", 0, "front: decayed repeat count that promotes a key to its replica set (0 = 32, negative disables)")
		hotRepl    = flag.Int("fleet-hot-replicas", 0, "front: distinct owners a hot key spreads over (0 = 2)")
		fetchWait  = flag.Duration("fleet-fetch-wait", 0, "member: how long a peer fetch may join the owner's in-flight computation (0 = 10s)")
		probeEvery = flag.Duration("fleet-probe-interval", 0, "front: background /v1/healthz probe period per peer (0 = 2s, negative disables)")
		probeTO    = flag.Duration("fleet-probe-timeout", 0, "front: per-probe timeout (0 = 1s)")
	)
	flag.Parse()

	if *front != "" && (*fleetSelf != "" || *peersCSV != "") {
		fmt.Fprintln(os.Stderr, "rxld: -fleet (front mode) and -fleet-self/-fleet-peers (member mode) are mutually exclusive")
		os.Exit(2)
	}
	if (*fleetSelf == "") != (*peersCSV == "") {
		fmt.Fprintln(os.Stderr, "rxld: member mode needs both -fleet-self and -fleet-peers")
		os.Exit(2)
	}

	var err error
	if *front != "" {
		err = runFront(*addr, *addrFile, fleet.FrontConfig{
			Peers:         splitCSV(*front),
			VNodes:        *vnodes,
			HotThreshold:  *hotThresh,
			HotReplicas:   *hotRepl,
			ProbeInterval: *probeEvery,
			ProbeTimeout:  *probeTO,
		})
	} else {
		cfg := service.Config{
			ShardBudget:       *budget,
			DefaultJobWorkers: *jobWorkers,
			QueueDepth:        *queue,
			CacheEntries:      *cacheSize,
			SpillDir:          *spillDir,
		}
		if *fleetSelf != "" {
			peers := splitCSV(*peersCSV)
			fetcher, ferr := fleet.NewFetcher(fleet.FetchConfig{
				Self:   *fleetSelf,
				Peers:  peers,
				VNodes: *vnodes,
				Wait:   *fetchWait,
			})
			if ferr != nil {
				fmt.Fprintln(os.Stderr, ferr)
				os.Exit(1)
			}
			cfg.PeerFetch = fetcher.Fetch
			cfg.FleetInfo = &service.FleetInfo{
				Self:     *fleetSelf,
				Peers:    len(fetcher.Ring().Peers()),
				RingSize: fetcher.Ring().Size(),
				Replicas: fetcher.Candidates(),
			}
		}
		err = run(*addr, *addrFile, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// splitCSV splits a comma-separated flag, trimming blanks.
func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// serve binds addr, announces it, and runs handler until SIGINT/SIGTERM,
// then drains connections and calls shutdown. Shared by both modes so a
// front and a member behave identically as processes.
func serve(addr, addrFile, role string, handler http.Handler, shutdown func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	log.Printf("rxld %s listening on %s", role, bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		shutdown()
		return err
	case s := <-sig:
		log.Printf("rxld %s: %v — draining", role, s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rxld %s: shutdown: %v", role, err)
	}
	shutdown()
	return nil
}

func run(addr, addrFile string, cfg service.Config) error {
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	return serve(addr, addrFile, "daemon", srv, func() {
		srv.Close()
		st := srv.Stats()
		if st.Fleet != nil {
			log.Printf("rxld: fleet peer_hits=%d peer_misses=%d peer_served=%d",
				st.Fleet.PeerHits, st.Fleet.PeerMisses, st.Fleet.PeerServed)
		}
		log.Printf("rxld: served %d jobs (%d dedup), cache %d/%d hit rate %.1f%%",
			st.JobsCompleted, st.DedupHits, st.Cache.Hits+st.Cache.DiskHits,
			st.Cache.Hits+st.Cache.DiskHits+st.Cache.Misses, 100*st.Cache.HitRate)
	})
}

func runFront(addr, addrFile string, cfg fleet.FrontConfig) error {
	f, err := fleet.NewFront(cfg)
	if err != nil {
		return err
	}
	return serve(addr, addrFile, "front", f, func() {
		f.Close()
		st := f.Stats()
		log.Printf("rxld front: forwarded %d (failovers %d, hot promotions %d) over %d peers",
			st.Forwards, st.Failovers, st.HotPromotions, len(st.Peers))
	})
}
