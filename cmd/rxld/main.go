// Command rxld is the experiment-serving daemon: a long-running HTTP
// server that accepts sweep, grid, rare-event, protocol-comparison, and
// rare-selfcheck jobs as JSON — every workload the one-shot CLIs run —
// deduplicates them through a content-addressed result cache, and runs
// misses on an admission-controlled scheduler whose total shard
// concurrency never exceeds the configured budget.
//
// Usage:
//
//	rxld [-addr 127.0.0.1:8080] [-budget 0] [-queue 64] [-cache 256]
//	     [-spill DIR] [-job-workers 0] [-addr-file PATH]
//
// The bound address is printed on startup (and written to -addr-file when
// given), so -addr 127.0.0.1:0 picks a free port scriptably — the CI
// smoke job starts the daemon exactly that way.
//
// API quickstart:
//
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{
//	  "kind": "grid", "seed": 1,
//	  "grid": {"Base": {"Protocol": 2, "Levels": 1, "BER": 1e-6}, "N": 5000}
//	}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{
//	  "kind": "comparison", "seed": 1,
//	  "comparison": {"base": {"Levels": 1, "BER": 1e-6}, "n": 5000}
//	}'
//	curl -s localhost:8080/v1/jobs/<id>?wait=30000
//	curl -N localhost:8080/v1/jobs/<id>/events
//	curl -s localhost:8080/v1/statsz
//
// Repeating the POST answers from the cache ("cached": true) with
// byte-identical results — every engine is deterministic per (spec,
// seed), so the cache can never serve a stale answer. Finished job
// fetches carry an ETag (the job's content address); repeat GETs with
// If-None-Match are answered 304 without re-sending the result document.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
		budget     = flag.Int("budget", 0, "total shard concurrency across all jobs (0 = GOMAXPROCS)")
		jobWorkers = flag.Int("job-workers", 0, "default per-job worker request (0 = full budget)")
		queue      = flag.Int("queue", 64, "bounded job queue depth (admission control)")
		cacheSize  = flag.Int("cache", 256, "in-memory result cache entries (LRU)")
		spillDir   = flag.String("spill", "", "directory for cache disk spill (empty = memory only)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
	)
	flag.Parse()

	if err := run(*addr, *addrFile, service.Config{
		ShardBudget:       *budget,
		DefaultJobWorkers: *jobWorkers,
		QueueDepth:        *queue,
		CacheEntries:      *cacheSize,
		SpillDir:          *spillDir,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, cfg service.Config) error {
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	log.Printf("rxld listening on %s", bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		srv.Close()
		return err
	case s := <-sig:
		log.Printf("rxld: %v — draining", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rxld: shutdown: %v", err)
	}
	srv.Close()
	st := srv.Stats()
	log.Printf("rxld: served %d jobs (%d dedup), cache %d/%d hit rate %.1f%%",
		st.JobsCompleted, st.DedupHits, st.Cache.Hits+st.Cache.DiskHits,
		st.Cache.Hits+st.Cache.DiskHits+st.Cache.Misses, 100*st.Cache.HitRate)
	return nil
}
