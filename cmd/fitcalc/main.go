// Command fitcalc prints the paper's analytic reliability results
// (Section 7.1): the per-equation headline numbers and the Fig. 8
// FIT-versus-switching-levels comparison of CXL and RXL.
//
// Usage:
//
//	fitcalc [-ber 1e-6] [-feruc 3e-5] [-pcoalescing 0.1] [-levels 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/reliability"
)

func main() {
	ber := flag.Float64("ber", reliability.DefaultBER, "physical-layer bit error rate")
	feruc := flag.Float64("feruc", reliability.DefaultFERUC, "uncorrectable flit error rate after FEC")
	pc := flag.Float64("pcoalescing", reliability.DefaultPCoalescing, "fraction of flits carrying an AckNum")
	levels := flag.Int("levels", 8, "maximum switching levels for the Fig. 8 sweep")
	flag.Parse()

	p := reliability.DefaultParams()
	p.BER = *ber
	p.FERUC = *feruc
	p.PCoalescing = *pc
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Println("Section 7.1 headline numbers")
	fmt.Println("----------------------------")
	fmt.Printf("Eq. 1  FER (flit error rate)            %.3g\n", p.FER())
	fmt.Printf("       erroneous flits per second       %.3g\n", p.ExpectedErroneousFlitsPerSecond())
	fmt.Printf("Eq. 2  FER_UC (PCIe 6.0 bound)          %.3g\n", p.FERUC)
	fmt.Printf("Eq. 3  p_correct                        %.4f\n", p.PCorrect())
	fmt.Printf("Eq. 4  FER_UD direct                    %.3g\n", p.FERUndetectedDirect())
	fmt.Printf("Eq. 5  FIT direct                       %.3g\n", p.FITDirect())
	fmt.Printf("Eq. 6  FER_drop (1 switch)              %.3g\n", p.FERDrop(1))
	fmt.Printf("Eq. 7  FER_order (1 switch)             %.3g\n", p.FEROrder(1))
	fmt.Printf("Eq. 8  FIT CXL (1 switch)               %.3g\n", p.FITCXL(1))
	fmt.Printf("Eq. 9  FER_UD RXL (1 switch)            %.3g\n", p.FERUndetectedRXL(1))
	fmt.Printf("Eq. 10 FIT RXL (1 switch)               %.3g\n", p.FITRXL(1))
	fmt.Printf("       CXL/RXL FIT ratio (1 switch)     %.3g\n", p.Improvement(1))
	fmt.Println()

	fmt.Printf("Fig. 8: FIT_device vs switching levels (BER=%g, p_coalescing=%g)\n", p.BER, p.PCoalescing)
	fmt.Println("levels       FIT_CXL       FIT_RXL")
	for _, pt := range p.Fig8(*levels) {
		fmt.Printf("%6d  %12.3g  %12.3g\n", pt.Levels, pt.FITCXL, pt.FITRXL)
	}
	fmt.Println()

	fmt.Printf("BER sweep at 1 switching level (budget: %g FIT, server-grade)\n", reliability.ServerFITBudget)
	fmt.Println("      BER           FER       FER_UC      FIT_CXL      FIT_RXL")
	bers := []float64{1e-12, 1e-10, 1e-8, 1e-6, 1e-5, 1e-4}
	for _, pt := range p.BERSweep(bers, 1) {
		fmt.Printf("%9.0e  %12.3g %12.3g %12.3g %12.3g\n", pt.BER, pt.FER, pt.FERUC, pt.FITCXL, pt.FITRXL)
	}
	if l := p.CXLBudgetCrossing(reliability.ServerFITBudget, 16); l >= 0 {
		fmt.Printf("CXL exceeds the budget at %d switching level(s); RXL: ", l)
	} else {
		fmt.Printf("CXL stays within budget to 16 levels; RXL: ")
	}
	if l := p.RXLBudgetCrossing(reliability.ServerFITBudget, 16); l >= 0 {
		fmt.Printf("exceeds at %d.\n", l)
	} else {
		fmt.Println("never (through 16 levels).")
	}
}
