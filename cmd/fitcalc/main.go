// Command fitcalc prints the paper's analytic reliability results
// (Section 7.1): the per-equation headline numbers and the Fig. 8
// FIT-versus-switching-levels comparison of CXL and RXL.
//
// With -mc it additionally validates the analytic chain by Monte-Carlo on
// the sharded runner: stage-by-stage measurements (accelerated-BER flit
// error rate, FEC burst outcomes) composed into the staged estimate, plus
// a measured-vs-analytic BER sweep. -workers bounds concurrency without
// changing any number.
//
// Usage:
//
//	fitcalc [-ber 1e-6] [-feruc 3e-5] [-pcoalescing 0.1] [-levels 8]
//	        [-mc] [-mcflits 20000] [-workers 0] [-mcseed 42]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/reliability"
	"repro/internal/runner"
)

func main() {
	ber := flag.Float64("ber", reliability.DefaultBER, "physical-layer bit error rate")
	feruc := flag.Float64("feruc", reliability.DefaultFERUC, "uncorrectable flit error rate after FEC")
	pc := flag.Float64("pcoalescing", reliability.DefaultPCoalescing, "fraction of flits carrying an AckNum")
	levels := flag.Int("levels", 8, "maximum switching levels for the Fig. 8 sweep")
	mc := flag.Bool("mc", false, "run the parallel Monte-Carlo validation of the model")
	mcflits := flag.Int("mcflits", 20000, "Monte-Carlo flits/trials per stage")
	workers := flag.Int("workers", 0, "runner worker pool size (0 = GOMAXPROCS)")
	mcseed := flag.Uint64("mcseed", 42, "Monte-Carlo base seed")
	flag.Parse()

	p := reliability.DefaultParams()
	p.BER = *ber
	p.FERUC = *feruc
	p.PCoalescing = *pc
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Println("Section 7.1 headline numbers")
	fmt.Println("----------------------------")
	fmt.Printf("Eq. 1  FER (flit error rate)            %.3g\n", p.FER())
	fmt.Printf("       erroneous flits per second       %.3g\n", p.ExpectedErroneousFlitsPerSecond())
	fmt.Printf("Eq. 2  FER_UC (PCIe 6.0 bound)          %.3g\n", p.FERUC)
	fmt.Printf("Eq. 3  p_correct                        %.4f\n", p.PCorrect())
	fmt.Printf("Eq. 4  FER_UD direct                    %.3g\n", p.FERUndetectedDirect())
	fmt.Printf("Eq. 5  FIT direct                       %.3g\n", p.FITDirect())
	fmt.Printf("Eq. 6  FER_drop (1 switch)              %.3g\n", p.FERDrop(1))
	fmt.Printf("Eq. 7  FER_order (1 switch)             %.3g\n", p.FEROrder(1))
	fmt.Printf("Eq. 8  FIT CXL (1 switch)               %.3g\n", p.FITCXL(1))
	fmt.Printf("Eq. 9  FER_UD RXL (1 switch)            %.3g\n", p.FERUndetectedRXL(1))
	fmt.Printf("Eq. 10 FIT RXL (1 switch)               %.3g\n", p.FITRXL(1))
	fmt.Printf("       CXL/RXL FIT ratio (1 switch)     %.3g\n", p.Improvement(1))
	fmt.Println()

	fmt.Printf("Fig. 8: FIT_device vs switching levels (BER=%g, p_coalescing=%g)\n", p.BER, p.PCoalescing)
	fmt.Println("levels       FIT_CXL       FIT_RXL")
	for _, pt := range p.Fig8(*levels) {
		fmt.Printf("%6d  %12.3g  %12.3g\n", pt.Levels, pt.FITCXL, pt.FITRXL)
	}
	fmt.Println()

	fmt.Printf("BER sweep at 1 switching level (budget: %g FIT, server-grade)\n", reliability.ServerFITBudget)
	fmt.Println("      BER           FER       FER_UC      FIT_CXL      FIT_RXL")
	bers := []float64{1e-12, 1e-10, 1e-8, 1e-6, 1e-5, 1e-4}
	for _, pt := range p.BERSweep(bers, 1) {
		fmt.Printf("%9.0e  %12.3g %12.3g %12.3g %12.3g\n", pt.BER, pt.FER, pt.FERUC, pt.FITCXL, pt.FITRXL)
	}
	if l := p.CXLBudgetCrossing(reliability.ServerFITBudget, 16); l >= 0 {
		fmt.Printf("CXL exceeds the budget at %d switching level(s); RXL: ", l)
	} else {
		fmt.Printf("CXL stays within budget to 16 levels; RXL: ")
	}
	if l := p.RXLBudgetCrossing(reliability.ServerFITBudget, 16); l >= 0 {
		fmt.Printf("exceeds at %d.\n", l)
	} else {
		fmt.Println("never (through 16 levels).")
	}

	if *mc {
		ctx := context.Background()
		pool := runner.Pool{Workers: *workers, BaseSeed: *mcseed}
		fmt.Println()
		fmt.Printf("Monte-Carlo validation (sharded runner, %d shards)\n", reliability.DefaultShards)
		fmt.Println("--------------------------------------------------")
		est, err := reliability.StagedSharded(ctx, pool, 5e-4, *mcflits, 4, *mcflits, reliability.DefaultShards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(est)

		accel := []float64{1e-4, 2e-4, 5e-4, 1e-3}
		pts, err := reliability.MCBERSweep(ctx, pool, accel, *mcflits, reliability.DefaultShards/4)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("accelerated-BER cross-check (measured vs Eq. 1):")
		fmt.Println("      BER     measured     analytic")
		for _, pt := range pts {
			fmt.Printf("%9.0e  %11.5f  %11.5f\n", pt.BER, pt.Sample.FER, pt.Sample.Analytic)
		}
	}
}
