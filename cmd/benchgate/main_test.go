package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseBench = `
goos: linux
BenchmarkFlitTransfer/fastpath-4     1000    880.0 ns/op   290.44 MB/s
BenchmarkFlitTransfer/fastpath-4     1000    920.0 ns/op   280.00 MB/s
BenchmarkFlitTransfer/bytelevel-4     100   9900.0 ns/op
BenchmarkMCInnerLoopFastPath-4         10   8.3e+06 ns/op   14567 Mflits_per_s
PASS
`

func TestGatePassesOnParity(t *testing.T) {
	base := writeTemp(t, "base.txt", baseBench)
	cur := writeTemp(t, "cur.txt", strings.ReplaceAll(baseBench, "-4 ", "-8 "))
	var out strings.Builder
	code, err := gate(&out, base, cur, 0.15, "")
	if err != nil || code != 0 {
		t.Fatalf("code %d, err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("missing PASS:\n%s", out.String())
	}
}

// TestGateAveragesCountRepetitions: the two fastpath lines must average
// to 900 ns/op before comparison.
func TestGateAveragesCountRepetitions(t *testing.T) {
	base := writeTemp(t, "base.txt", baseBench)
	cur := writeTemp(t, "cur.txt", `
BenchmarkFlitTransfer/fastpath-4  1000  900.0 ns/op
`)
	var out strings.Builder
	code, err := gate(&out, base, cur, 0.01, "fastpath")
	if err != nil || code != 0 {
		t.Fatalf("averaged baseline should match 900 ns/op exactly: code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "(+0.0%)") {
		t.Fatalf("expected a 0.0%% delta:\n%s", out.String())
	}
}

func TestGateFailsPastThreshold(t *testing.T) {
	base := writeTemp(t, "base.txt", baseBench)
	// Every benchmark 30% slower: geomean 1.30 > 1.15.
	cur := writeTemp(t, "cur.txt", `
BenchmarkFlitTransfer/fastpath-4      1000   1170.0 ns/op
BenchmarkFlitTransfer/bytelevel-4      100  12870.0 ns/op
BenchmarkMCInnerLoopFastPath-4          10  1.079e+07 ns/op
`)
	var out strings.Builder
	code, err := gate(&out, base, cur, 0.15, "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("30%% regression passed the 15%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL:\n%s", out.String())
	}
}

// TestGateGeomeanNotWorstCase: one slow benchmark among fast ones gates
// on the geometric mean, not the worst case.
func TestGateGeomeanNotWorstCase(t *testing.T) {
	base := writeTemp(t, "base.txt", `
BenchmarkA-4  100  1000 ns/op
BenchmarkB-4  100  1000 ns/op
BenchmarkC-4  100  1000 ns/op
`)
	cur := writeTemp(t, "cur.txt", `
BenchmarkA-4  100  1300 ns/op
BenchmarkB-4  100  1000 ns/op
BenchmarkC-4  100  1000 ns/op
`)
	var out strings.Builder
	code, err := gate(&out, base, cur, 0.15, "")
	if err != nil || code != 0 {
		t.Fatalf("geomean 1.3^(1/3)=%.3f should pass a 15%% gate: code %d err %v\n%s",
			math.Cbrt(1.3), code, err, out.String())
	}
	if !strings.Contains(out.String(), "worst BenchmarkA") {
		t.Fatalf("worst offender not reported:\n%s", out.String())
	}
}

func TestGateSkipsUnmatchedAndFilter(t *testing.T) {
	base := writeTemp(t, "base.txt", baseBench)
	cur := writeTemp(t, "cur.txt", `
BenchmarkFlitTransfer/fastpath-4  1000  900.0 ns/op
BenchmarkBrandNew-4               1000  100.0 ns/op
`)
	var out strings.Builder
	code, err := gate(&out, base, cur, 0.15, "")
	if err != nil || code != 0 {
		t.Fatalf("code %d err %v\n%s", code, err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "BenchmarkBrandNew only in current") ||
		!strings.Contains(s, "BenchmarkMCInnerLoopFastPath only in baseline") {
		t.Fatalf("unmatched benchmarks not reported:\n%s", s)
	}

	// A filter excluding everything common is an error, not a pass.
	if _, err := gate(&out, base, cur, 0.15, "NoSuchBench"); err == nil {
		t.Fatal("empty intersection accepted")
	}
}

// TestGateRatio: the within-run ratio floor passes when the fast path
// holds its multiple and fails when it collapses, independent of the
// machine's absolute speed.
func TestGateRatio(t *testing.T) {
	cur := writeTemp(t, "cur.txt", `
BenchmarkFlitTransfer/fastpath-4   1000    900.0 ns/op
BenchmarkFlitTransfer/bytelevel-4   100   9000.0 ns/op
`)
	var out strings.Builder
	code, err := gateRatio(&out, cur, "BenchmarkFlitTransfer/bytelevel,BenchmarkFlitTransfer/fastpath,5")
	if err != nil || code != 0 {
		t.Fatalf("10x ratio failed a 5x floor: code %d err %v\n%s", code, err, out.String())
	}
	code, err = gateRatio(&out, cur, "BenchmarkFlitTransfer/bytelevel,BenchmarkFlitTransfer/fastpath,12")
	if err != nil || code != 1 {
		t.Fatalf("10x ratio passed a 12x floor: code %d err %v\n%s", code, err, out.String())
	}
	for _, bad := range []string{"onlyone", "a,b,notanumber", "missing,BenchmarkFlitTransfer/fastpath,2"} {
		if _, err := gateRatio(&out, cur, bad); err == nil {
			t.Errorf("bad -min-ratio %q accepted", bad)
		}
	}
}

func TestParseBenchErrors(t *testing.T) {
	if _, err := parseBench(filepath.Join(t.TempDir(), "missing.txt"), nil); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := writeTemp(t, "empty.txt", "no benchmarks here\n")
	if _, err := parseBench(empty, nil); err == nil {
		t.Fatal("file without bench lines accepted")
	}
}
