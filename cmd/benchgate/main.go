// Command benchgate is the CI benchmark-regression gate: it compares two
// Go benchmark output files (baseline vs current, as produced by
// `go test -bench`) and exits non-zero when the geometric mean of the
// per-benchmark time ratios regresses past a threshold.
//
// benchstat renders the human-readable comparison in the same CI job;
// benchgate exists so the *gate* parses the stable `BenchmarkX ... N
// ns/op` line format rather than benchstat's display tables. Multiple
// `-count` repetitions of a benchmark are averaged; benchmarks present
// on only one side are reported and skipped.
//
// Because hosted CI runners are a heterogeneous fleet, absolute ns/op
// comparisons against a committed baseline carry machine noise. The
// -min-ratio flag adds a machine-invariant leg: a floor on the ratio of
// two benchmarks *within the current run* (e.g. the byte-level/fast-path
// ratio, which measures the optimization itself rather than the
// hardware). Format: "numeratorBench,denominatorBench,floor"; repeatable,
// every given invariant must hold.
//
// Usage:
//
//	benchgate -baseline old.txt -current new.txt [-max-regress 0.15]
//	          [-filter regexp] [-min-ratio numer,denom,floor]...
//
// Exit codes: 0 pass, 1 regression past threshold, 2 usage/parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line of go-test bench output:
//
//	BenchmarkFlitTransfer/fastpath-4   1000   881.4 ns/op   290.44 MB/s ...
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines
// with different core counts compare by benchmark identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// ratioFlags collects repeated -min-ratio specs.
type ratioFlags []string

func (r *ratioFlags) String() string { return strings.Join(*r, "; ") }
func (r *ratioFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline benchmark output file")
	current := flag.String("current", "", "current benchmark output file")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum tolerated geomean slowdown (0.15 = +15%)")
	filter := flag.String("filter", "", "only gate benchmarks matching this regexp")
	var minRatios ratioFlags
	flag.Var(&minRatios, "min-ratio", "within-current-run invariant: \"numerBench,denomBench,floor\" (repeatable)")
	flag.Parse()

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	code, err := gate(os.Stdout, *baseline, *current, *maxRegress, *filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	for _, spec := range minRatios {
		rcode, err := gateRatio(os.Stdout, *current, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if rcode > code {
			code = rcode
		}
	}
	os.Exit(code)
}

// gateRatio enforces a floor on the ns/op ratio of two benchmarks inside
// the current run — machine-invariant, so it holds across heterogeneous
// CI hardware where absolute baselines drift.
func gateRatio(w io.Writer, currentPath, spec string) (int, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return 0, fmt.Errorf("bad -min-ratio %q: want \"numerBench,denomBench,floor\"", spec)
	}
	floor, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || floor <= 0 {
		return 0, fmt.Errorf("bad -min-ratio floor %q", parts[2])
	}
	cur, err := parseBench(currentPath, nil)
	if err != nil {
		return 0, err
	}
	numer, ok := cur[parts[0]]
	if !ok {
		return 0, fmt.Errorf("-min-ratio benchmark %q not in %s", parts[0], currentPath)
	}
	denom, ok := cur[parts[1]]
	if !ok {
		return 0, fmt.Errorf("-min-ratio benchmark %q not in %s", parts[1], currentPath)
	}
	ratio := numer / denom
	fmt.Fprintf(w, "within-run ratio %s / %s = %.2f (floor %.2f)\n", parts[0], parts[1], ratio, floor)
	if ratio < floor {
		fmt.Fprintf(w, "FAIL: within-run ratio %.2f below the %.2f floor\n", ratio, floor)
		return 1, nil
	}
	fmt.Fprintln(w, "PASS")
	return 0, nil
}

// gate compares the two files and returns the process exit code.
func gate(w io.Writer, baselinePath, currentPath string, maxRegress float64, filter string) (int, error) {
	var keep *regexp.Regexp
	if filter != "" {
		var err error
		if keep, err = regexp.Compile(filter); err != nil {
			return 0, fmt.Errorf("bad -filter: %w", err)
		}
	}
	base, err := parseBench(baselinePath, keep)
	if err != nil {
		return 0, err
	}
	cur, err := parseBench(currentPath, keep)
	if err != nil {
		return 0, err
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		} else {
			fmt.Fprintf(w, "benchgate: %s only in baseline; skipped\n", name)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(w, "benchgate: %s only in current; skipped\n", name)
		}
	}
	if len(names) == 0 {
		return 0, fmt.Errorf("no common benchmarks between %s and %s", baselinePath, currentPath)
	}
	sort.Strings(names)

	logSum := 0.0
	worstName, worstRatio := "", 0.0
	for _, name := range names {
		ratio := cur[name] / base[name]
		logSum += math.Log(ratio)
		fmt.Fprintf(w, "%-60s %12.1f -> %12.1f ns/op  (%+.1f%%)\n",
			name, base[name], cur[name], 100*(ratio-1))
		if ratio > worstRatio {
			worstName, worstRatio = name, ratio
		}
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Fprintf(w, "geomean time ratio over %d benchmark(s): %.3f (threshold %.3f); worst %s at %.3f\n",
		len(names), geomean, 1+maxRegress, worstName, worstRatio)
	if geomean > 1+maxRegress {
		fmt.Fprintf(w, "FAIL: geomean slowdown %+.1f%% exceeds the %.0f%% gate\n",
			100*(geomean-1), 100*maxRegress)
		return 1, nil
	}
	fmt.Fprintln(w, "PASS")
	return 0, nil
}

// parseBench reads one bench output file into mean ns/op per benchmark
// name, averaging -count repetitions.
func parseBench(path string, keep *regexp.Regexp) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sums := map[string]float64{}
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		if keep != nil && !keep.MatchString(name) {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			return nil, fmt.Errorf("%s: bad ns/op in %q", path, sc.Text())
		}
		sums[name] += ns
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	for name := range sums {
		sums[name] /= float64(counts[name])
	}
	return sums, nil
}
