// Command rxlbench is a closed-loop load generator for a running rxld
// daemon or fleet: N concurrent clients hammer POST /v1/jobs with a
// configurable mix of repeated (cache-hittable) and unique
// (must-compute) jobs, and the tool reports request throughput,
// p50/p95/p99 latency split by cache outcome, and the daemon's own
// statsz counters.
//
// Usage:
//
//	rxlbench -addr http://127.0.0.1:8080 [-duration 10s] [-concurrency 16]
//	         [-repeat 0.9] [-hot 4] [-kind grid] [-n 2000] [-flits 1000000]
//	         [-dist uniform|zipf] [-zipf-s 1.2] [-fleet URL,URL,...] [-json]
//
// The hot set (-hot distinct configs) is primed once before timing
// starts, so the repeated fraction measures pure cache-hit serving. With
// -repeat 1 the run is a cache-only stress test; with -repeat 0 every
// request computes. Unique jobs vary only the pool seed, so they cost
// one full engine run each — the honest "requests served per second"
// number for the README comes from the mixed default.
//
// Fleet benchmarking: -dist zipf draws hot-set members with the skewed
// popularity real caches see (rank-1 config dominates), and -fleet
// routes each request client-side over the same consistent-hash ring
// the daemons use — measuring pure daemon scale-out with no front hop.
// -json appends a single machine-readable "RESULT {...}" line, which
// scripts/fleet_bench.sh aggregates into the 1→N scaling curve.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/link"
	"repro/internal/service"
)

type options struct {
	addr        string
	fleetCSV    string
	duration    time.Duration
	concurrency int
	repeat      float64
	hot         int
	dist        string
	zipfS       float64
	kind        string
	n           int
	flits       int
	seed        uint64
	jsonOut     bool
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", "http://127.0.0.1:8080", "rxld base URL (daemon or front)")
	flag.StringVar(&opt.fleetCSV, "fleet", "", "comma-separated daemon URLs: route client-side over the fleet ring instead of -addr")
	flag.DurationVar(&opt.duration, "duration", 10*time.Second, "measurement window")
	flag.IntVar(&opt.concurrency, "concurrency", 16, "closed-loop client count")
	flag.Float64Var(&opt.repeat, "repeat", 0.9, "fraction of requests drawn from the hot (repeated) config set")
	flag.IntVar(&opt.hot, "hot", 4, "distinct configs in the hot set")
	flag.StringVar(&opt.dist, "dist", "uniform", "hot-set popularity: uniform or zipf")
	flag.Float64Var(&opt.zipfS, "zipf-s", 1.2, "zipf skew exponent (>1; larger = more skewed)")
	flag.StringVar(&opt.kind, "kind", "grid", "job kind: grid or sweep")
	flag.IntVar(&opt.n, "n", 2000, "payloads per grid cell (grid kind)")
	flag.IntVar(&opt.flits, "flits", 1_000_000, "flit budget per point (sweep kind)")
	flag.Uint64Var(&opt.seed, "seed", 1, "base seed of the hot set")
	flag.BoolVar(&opt.jsonOut, "json", false, "append a machine-readable RESULT line")
	flag.Parse()

	if err := run(opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// spec builds the job for a given seed slot.
func (o options) spec(seed uint64) (service.JobSpec, error) {
	switch o.kind {
	case "grid":
		return service.JobSpec{
			Kind: service.KindGrid,
			Seed: seed,
			Grid: &core.Grid{
				Base: core.Config{Protocol: link.ProtocolRXL, Levels: 1, BER: 1e-6, BurstProb: 0.4, Seed: 7},
				N:    o.n,
			},
		}, nil
	case "sweep":
		return service.JobSpec{
			Kind:  service.KindSweep,
			Seed:  seed,
			Sweep: &service.SweepSpec{BERs: []float64{1e-6}, FlitsPerPoint: o.flits},
		}, nil
	default:
		return service.JobSpec{}, fmt.Errorf("rxlbench: unknown kind %q (want grid or sweep)", o.kind)
	}
}

// router picks the client a given spec should be submitted to. With a
// single -addr every spec maps to the one client; with -fleet it is the
// same owner the daemons' own ring would choose, so the bench exercises
// exactly the placement a front would produce — minus the extra hop.
type router struct {
	clients map[string]*service.Client
	ring    *fleet.Ring
	single  *service.Client
}

func newRouter(opt options) (*router, error) {
	if opt.fleetCSV == "" {
		return &router{single: service.NewClient(opt.addr)}, nil
	}
	var peers []string
	for _, p := range strings.Split(opt.fleetCSV, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	ring, err := fleet.NewRing(peers, 0)
	if err != nil {
		return nil, err
	}
	r := &router{ring: ring, clients: make(map[string]*service.Client, len(peers))}
	for _, p := range ring.Peers() {
		r.clients[p] = service.NewClient(p)
	}
	return r, nil
}

func (r *router) pick(spec service.JobSpec) (*service.Client, error) {
	if r.single != nil {
		return r.single, nil
	}
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	return r.clients[r.ring.Owner(norm.Key())], nil
}

// each runs fn once per distinct backend.
func (r *router) each(fn func(url string, c *service.Client)) {
	if r.single != nil {
		fn("", r.single)
		return
	}
	for _, p := range r.ring.Peers() {
		fn(p, r.clients[p])
	}
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	cached  bool
}

// drawSeed picks the next request's seed slot: hot-set member (uniform
// or zipf rank) with probability repeat, otherwise a fresh unique seed.
func drawSeed(opt options, rng *rand.Rand, zipf *rand.Zipf, uniqueID *atomic.Uint64) uint64 {
	if rng.Float64() >= opt.repeat {
		return uniqueID.Add(1)
	}
	if zipf != nil {
		return opt.seed + zipf.Uint64()
	}
	return opt.seed + uint64(rng.Intn(opt.hot))
}

func run(opt options, w *os.File) error {
	if opt.repeat < 0 || opt.repeat > 1 {
		return fmt.Errorf("rxlbench: -repeat %g out of [0,1]", opt.repeat)
	}
	if opt.hot < 1 || opt.concurrency < 1 {
		return fmt.Errorf("rxlbench: need -hot >= 1 and -concurrency >= 1")
	}
	switch opt.dist {
	case "uniform", "zipf":
	default:
		return fmt.Errorf("rxlbench: unknown -dist %q (want uniform or zipf)", opt.dist)
	}
	if opt.dist == "zipf" && opt.zipfS <= 1 {
		return fmt.Errorf("rxlbench: -zipf-s must be > 1, got %g", opt.zipfS)
	}
	if _, err := opt.spec(0); err != nil {
		return err
	}
	rt, err := newRouter(opt)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var unreachable error
	rt.each(func(url string, c *service.Client) {
		if err := c.Health(ctx); err != nil && unreachable == nil {
			unreachable = fmt.Errorf("rxlbench: daemon unreachable at %s: %w", url, err)
		}
	})
	if unreachable != nil {
		return unreachable
	}

	// Prime the hot set so the repeated fraction measures cache serving,
	// not the first computations.
	fmt.Fprintf(w, "priming %d hot config(s)...\n", opt.hot)
	for i := 0; i < opt.hot; i++ {
		spec, _ := opt.spec(opt.seed + uint64(i))
		c, err := rt.pick(spec)
		if err != nil {
			return err
		}
		if _, err := c.Run(ctx, spec); err != nil {
			return fmt.Errorf("rxlbench: priming hot config %d: %w", i, err)
		}
	}

	var (
		wg       sync.WaitGroup
		uniqueID atomic.Uint64
		stop     = time.Now().Add(opt.duration)
		results  = make([][]sample, opt.concurrency)
		errCount atomic.Uint64
		firstErr atomic.Value
	)
	uniqueID.Store(1 << 32) // unique seeds far from the hot set
	fmt.Fprintf(w, "running %d closed-loop clients for %s (repeat %.2f, dist %s)...\n",
		opt.concurrency, opt.duration, opt.repeat, opt.dist)

	start := time.Now()
	for wkr := 0; wkr < opt.concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wkr) + 1))
			var zipf *rand.Zipf
			if opt.dist == "zipf" {
				zipf = rand.NewZipf(rng, opt.zipfS, 1, uint64(opt.hot-1))
			}
			for time.Now().Before(stop) {
				spec, _ := opt.spec(drawSeed(opt, rng, zipf, &uniqueID))
				c, err := rt.pick(spec)
				if err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				t0 := time.Now()
				v, err := c.Submit(ctx, spec)
				if err != nil && service.IsQueueFull(err) {
					time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
					continue
				}
				if err == nil && !v.Status.Terminal() {
					v, err = c.Wait(ctx, v.ID)
				}
				if err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				if v.Status != service.StatusDone {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("job %s: %s %s", v.ID, v.Status, v.Error))
					continue
				}
				results[wkr] = append(results[wkr], sample{latency: time.Since(t0), cached: v.Cached})
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all, hits, misses []sample
	for _, rs := range results {
		for _, s := range rs {
			all = append(all, s)
			if s.cached {
				hits = append(hits, s)
			} else {
				misses = append(misses, s)
			}
		}
	}
	if len(all) == 0 {
		if e, ok := firstErr.Load().(error); ok {
			return fmt.Errorf("rxlbench: no requests completed; first error: %w", e)
		}
		return fmt.Errorf("rxlbench: no requests completed")
	}

	fmt.Fprintf(w, "\n%d requests in %s — %.0f req/s (%d clients, closed loop)\n",
		len(all), elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds(), opt.concurrency)
	fmt.Fprintf(w, "cache hits %d (%.1f%%), computed %d, errors %d\n",
		len(hits), 100*float64(len(hits))/float64(len(all)), len(misses), errCount.Load())
	printLatency(w, "all     ", all)
	printLatency(w, "cached  ", hits)
	printLatency(w, "computed", misses)
	if e, ok := firstErr.Load().(error); ok {
		fmt.Fprintf(w, "first error: %v\n", e)
	}

	peerHits := 0
	rt.each(func(url string, c *service.Client) {
		st, err := c.Stats(ctx)
		if err != nil {
			return
		}
		label := "daemon"
		if url != "" {
			label = url
		}
		fmt.Fprintf(w, "\n%s: completed=%d dedup=%d queue=%d/%d budget=%d peak=%d cache-hit-rate=%.1f%%",
			label, st.JobsCompleted, st.DedupHits, st.QueueDepth, st.QueueCapacity,
			st.ShardBudget, st.PeakShardsInUse, 100*st.Cache.HitRate)
		if st.Fleet != nil {
			fmt.Fprintf(w, " peer-hits=%d peer-served=%d", st.Fleet.PeerHits, st.Fleet.PeerServed)
			peerHits += int(st.Fleet.PeerHits)
		}
		fmt.Fprintln(w)
	})

	if opt.jsonOut {
		pct := percentiler(all)
		line, _ := json.Marshal(map[string]any{
			"requests":    len(all),
			"elapsed_s":   elapsed.Seconds(),
			"rps":         float64(len(all)) / elapsed.Seconds(),
			"hit_rate":    float64(len(hits)) / float64(len(all)),
			"errors":      errCount.Load(),
			"p50_us":      pct(0.50).Microseconds(),
			"p95_us":      pct(0.95).Microseconds(),
			"p99_us":      pct(0.99).Microseconds(),
			"concurrency": opt.concurrency,
			"dist":        opt.dist,
			"peers":       len(rt.clients),
			"peer_hits":   peerHits,
		})
		fmt.Fprintf(w, "RESULT %s\n", line)
	}
	return nil
}

// percentiler returns a closure over the sorted latencies of ss.
func percentiler(ss []sample) func(p float64) time.Duration {
	ds := make([]time.Duration, len(ss))
	for i, s := range ss {
		ds[i] = s.latency
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return func(p float64) time.Duration {
		if len(ds) == 0 {
			return 0
		}
		return ds[int(p*float64(len(ds)-1))]
	}
}

// printLatency reports count, mean, and the standard percentiles.
func printLatency(w *os.File, label string, ss []sample) {
	if len(ss) == 0 {
		fmt.Fprintf(w, "%s  (none)\n", label)
		return
	}
	var sum time.Duration
	for _, s := range ss {
		sum += s.latency
	}
	pct := percentiler(ss)
	fmt.Fprintf(w, "%s  n=%-6d mean=%-10s p50=%-10s p95=%-10s p99=%-10s max=%s\n",
		label, len(ss), (sum / time.Duration(len(ss))).Round(time.Microsecond),
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
}
