// Command rxlbench is a closed-loop load generator for a running rxld
// daemon: N concurrent clients hammer POST /v1/jobs with a configurable
// mix of repeated (cache-hittable) and unique (must-compute) jobs, and
// the tool reports request throughput, p50/p95/p99 latency split by
// cache outcome, and the daemon's own statsz counters.
//
// Usage:
//
//	rxlbench -addr http://127.0.0.1:8080 [-duration 10s] [-concurrency 16]
//	         [-repeat 0.9] [-hot 4] [-kind grid] [-n 2000] [-flits 1000000]
//
// The hot set (-hot distinct configs) is primed once before timing
// starts, so the repeated fraction measures pure cache-hit serving. With
// -repeat 1 the run is a cache-only stress test; with -repeat 0 every
// request computes. Unique jobs vary only the pool seed, so they cost
// one full engine run each — the honest "requests served per second"
// number for the README comes from the mixed default.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/service"
)

type options struct {
	addr        string
	duration    time.Duration
	concurrency int
	repeat      float64
	hot         int
	kind        string
	n           int
	flits       int
	seed        uint64
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", "http://127.0.0.1:8080", "rxld base URL")
	flag.DurationVar(&opt.duration, "duration", 10*time.Second, "measurement window")
	flag.IntVar(&opt.concurrency, "concurrency", 16, "closed-loop client count")
	flag.Float64Var(&opt.repeat, "repeat", 0.9, "fraction of requests drawn from the hot (repeated) config set")
	flag.IntVar(&opt.hot, "hot", 4, "distinct configs in the hot set")
	flag.StringVar(&opt.kind, "kind", "grid", "job kind: grid or sweep")
	flag.IntVar(&opt.n, "n", 2000, "payloads per grid cell (grid kind)")
	flag.IntVar(&opt.flits, "flits", 1_000_000, "flit budget per point (sweep kind)")
	flag.Uint64Var(&opt.seed, "seed", 1, "base seed of the hot set")
	flag.Parse()

	if err := run(opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// spec builds the job for a given seed slot.
func (o options) spec(seed uint64) (service.JobSpec, error) {
	switch o.kind {
	case "grid":
		return service.JobSpec{
			Kind: service.KindGrid,
			Seed: seed,
			Grid: &core.Grid{
				Base: core.Config{Protocol: link.ProtocolRXL, Levels: 1, BER: 1e-6, BurstProb: 0.4, Seed: 7},
				N:    o.n,
			},
		}, nil
	case "sweep":
		return service.JobSpec{
			Kind:  service.KindSweep,
			Seed:  seed,
			Sweep: &service.SweepSpec{BERs: []float64{1e-6}, FlitsPerPoint: o.flits},
		}, nil
	default:
		return service.JobSpec{}, fmt.Errorf("rxlbench: unknown kind %q (want grid or sweep)", o.kind)
	}
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	cached  bool
}

func run(opt options, w *os.File) error {
	if opt.repeat < 0 || opt.repeat > 1 {
		return fmt.Errorf("rxlbench: -repeat %g out of [0,1]", opt.repeat)
	}
	if opt.hot < 1 || opt.concurrency < 1 {
		return fmt.Errorf("rxlbench: need -hot >= 1 and -concurrency >= 1")
	}
	if _, err := opt.spec(0); err != nil {
		return err
	}
	c := service.NewClient(opt.addr)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("rxlbench: daemon unreachable at %s: %w", opt.addr, err)
	}

	// Prime the hot set so the repeated fraction measures cache serving,
	// not the first computations.
	fmt.Fprintf(w, "priming %d hot config(s)...\n", opt.hot)
	for i := 0; i < opt.hot; i++ {
		spec, _ := opt.spec(opt.seed + uint64(i))
		if _, err := c.Run(ctx, spec); err != nil {
			return fmt.Errorf("rxlbench: priming hot config %d: %w", i, err)
		}
	}

	var (
		wg       sync.WaitGroup
		uniqueID atomic.Uint64
		stop     = time.Now().Add(opt.duration)
		results  = make([][]sample, opt.concurrency)
		errCount atomic.Uint64
		firstErr atomic.Value
	)
	uniqueID.Store(1 << 32) // unique seeds far from the hot set
	fmt.Fprintf(w, "running %d closed-loop clients for %s (repeat fraction %.2f)...\n",
		opt.concurrency, opt.duration, opt.repeat)

	start := time.Now()
	for wkr := 0; wkr < opt.concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wkr) + 1))
			for time.Now().Before(stop) {
				var seed uint64
				if rng.Float64() < opt.repeat {
					seed = opt.seed + uint64(rng.Intn(opt.hot))
				} else {
					seed = uniqueID.Add(1)
				}
				spec, _ := opt.spec(seed)
				t0 := time.Now()
				v, err := c.Submit(ctx, spec)
				if err != nil && service.IsQueueFull(err) {
					time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
					continue
				}
				if err == nil && !v.Status.Terminal() {
					v, err = c.Wait(ctx, v.ID)
				}
				if err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				if v.Status != service.StatusDone {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("job %s: %s %s", v.ID, v.Status, v.Error))
					continue
				}
				results[wkr] = append(results[wkr], sample{latency: time.Since(t0), cached: v.Cached})
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all, hits, misses []sample
	for _, rs := range results {
		for _, s := range rs {
			all = append(all, s)
			if s.cached {
				hits = append(hits, s)
			} else {
				misses = append(misses, s)
			}
		}
	}
	if len(all) == 0 {
		if e, ok := firstErr.Load().(error); ok {
			return fmt.Errorf("rxlbench: no requests completed; first error: %w", e)
		}
		return fmt.Errorf("rxlbench: no requests completed")
	}

	fmt.Fprintf(w, "\n%d requests in %s — %.0f req/s (%d clients, closed loop)\n",
		len(all), elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds(), opt.concurrency)
	fmt.Fprintf(w, "cache hits %d (%.1f%%), computed %d, errors %d\n",
		len(hits), 100*float64(len(hits))/float64(len(all)), len(misses), errCount.Load())
	printLatency(w, "all     ", all)
	printLatency(w, "cached  ", hits)
	printLatency(w, "computed", misses)
	if e, ok := firstErr.Load().(error); ok {
		fmt.Fprintf(w, "first error: %v\n", e)
	}

	if st, err := c.Stats(ctx); err == nil {
		fmt.Fprintf(w, "\ndaemon: completed=%d dedup=%d queue=%d/%d budget=%d peak=%d cache-hit-rate=%.1f%%\n",
			st.JobsCompleted, st.DedupHits, st.QueueDepth, st.QueueCapacity,
			st.ShardBudget, st.PeakShardsInUse, 100*st.Cache.HitRate)
	}
	return nil
}

// printLatency reports count, mean, and the standard percentiles.
func printLatency(w *os.File, label string, ss []sample) {
	if len(ss) == 0 {
		fmt.Fprintf(w, "%s  (none)\n", label)
		return
	}
	ds := make([]time.Duration, len(ss))
	var sum time.Duration
	for i, s := range ss {
		ds[i] = s.latency
		sum += s.latency
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(ds)-1))
		return ds[i]
	}
	fmt.Fprintf(w, "%s  n=%-6d mean=%-10s p50=%-10s p95=%-10s p99=%-10s max=%s\n",
		label, len(ds), (sum / time.Duration(len(ds))).Round(time.Microsecond),
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), ds[len(ds)-1].Round(time.Microsecond))
}
