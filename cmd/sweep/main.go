// Command sweep regenerates every table and figure of the paper's
// evaluation in one run: the Section 7.1 reliability numbers, the Fig. 8
// FIT sweep, the Section 7.2 bandwidth table, the Section 7.3 hardware
// cost, the deterministic Fig. 4/5 failure scenarios, the Monte-Carlo
// cross-checks backing the analytic model, a parallel protocol ×
// levels × BER grid of live simulations, (with -scenarios) a scenario
// grid spanning mesh/torus topologies, workload generators, and scripted
// fault campaigns, and (with -rare) the rare-event deep-tail estimation
// with importance sampling and multilevel splitting.
// Its output is the source of EXPERIMENTS.md:
//
//	go run ./cmd/sweep -rare > EXPERIMENTS.md
//
// Simulations and Monte-Carlo stages run on the sharded runner
// (internal/runner): -workers bounds concurrency but never changes any
// number — per-shard RNG seeds derive from the base seed and shard index,
// so every worker count reproduces the same output bit for bit.
//
// Every stage's error propagates to a non-zero exit code: a failing
// shard aborts the run (the runner cancels its siblings) rather than
// leaving a silently truncated report behind.
//
// Usage:
//
//	sweep [-mc] [-n 20000] [-workers 0] [-grid] [-csv grid.csv] [-json grid.json]
//	      [-scenarios] [-scenario-csv scenarios.csv]
//	      [-rare] [-proposal-ber 0] [-rel-err 0.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/hwcost"
	"repro/internal/link"
	"repro/internal/perf"
	"repro/internal/reliability"
	"repro/internal/runner"
	"repro/internal/workload"
)

// options collects the flag values so run stays a pure function of its
// inputs — testable, and with a single error path to the exit code.
type options struct {
	mc        bool
	grid      bool
	rare      bool
	scenarios bool
	n         int
	workers   int
	csvPath   string
	jsonPath  string
	scenCSV   string
	proposal  float64
	relErr    float64
}

func main() {
	var opt options
	flag.BoolVar(&opt.mc, "mc", true, "run the Monte-Carlo cross-checks")
	flag.BoolVar(&opt.grid, "grid", true, "run the parallel protocol × levels × BER grid")
	flag.BoolVar(&opt.rare, "rare", false, "run the rare-event deep-tail estimation (IS + splitting)")
	flag.BoolVar(&opt.scenarios, "scenarios", false, "run the scenario grid: topology × workload × fault campaigns")
	flag.StringVar(&opt.scenCSV, "scenario-csv", "", "export the scenario results as CSV to this path")
	flag.IntVar(&opt.n, "n", 20000, "payloads per live simulation")
	flag.IntVar(&opt.workers, "workers", 0, "runner worker pool size (0 = GOMAXPROCS)")
	flag.StringVar(&opt.csvPath, "csv", "", "export the grid results as CSV to this path")
	flag.StringVar(&opt.jsonPath, "json", "", "export the grid results as JSON to this path")
	flag.Float64Var(&opt.proposal, "proposal-ber", 0, "importance-sampling proposal BER (0 = variance-optimal auto)")
	flag.Float64Var(&opt.relErr, "rel-err", 0.1, "target relative error for the rare-event estimates")
	flag.Parse()

	if err := run(context.Background(), opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func header(w io.Writer, title string) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}

func run(ctx context.Context, opt options, w io.Writer) error {
	pool := runner.Pool{Workers: opt.workers, BaseSeed: 1}
	rel := reliability.DefaultParams()
	pf := perf.DefaultParams()

	header(w, "Section 7.1 — reliability (Eq. 1-10)")
	fmt.Fprintf(w, "Eq. 1  FER                 %.3g   (paper: 2.0e-3)\n", rel.FER())
	fmt.Fprintf(w, "Eq. 3  p_correct           %.4f   (paper: >0.985)\n", rel.PCorrect())
	fmt.Fprintf(w, "Eq. 4  FER_UD direct       %.3g   (paper: 1.6e-24)\n", rel.FERUndetectedDirect())
	fmt.Fprintf(w, "Eq. 5  FIT direct          %.3g   (paper: 2.9e-3)\n", rel.FITDirect())
	fmt.Fprintf(w, "Eq. 7  FER_order 1-switch  %.3g   (paper: 3.0e-6)\n", rel.FEROrder(1))
	fmt.Fprintf(w, "Eq. 8  FIT CXL 1-switch    %.3g   (paper: 5.4e15)\n", rel.FITCXL(1))
	fmt.Fprintf(w, "Eq. 10 FIT RXL 1-switch    %.3g   (paper: 2.9e-3)\n", rel.FITRXL(1))
	fmt.Fprintf(w, "       improvement         %.3g   (paper: >1e18)\n", rel.Improvement(1))

	header(w, "Fig. 8 — FIT vs switching levels")
	fmt.Fprintln(w, "levels       FIT_CXL       FIT_RXL")
	for _, pt := range rel.Fig8(8) {
		fmt.Fprintf(w, "%6d  %12.3g  %12.3g\n", pt.Levels, pt.FITCXL, pt.FITRXL)
	}

	header(w, "Section 7.2 — bandwidth loss (Eq. 11-14)")
	fmt.Fprintf(w, "%-30s %9s %8s\n", "scheme", "BW loss", "ordered")
	for _, r := range pf.Table() {
		fmt.Fprintf(w, "%-30s %8.4f%% %8v\n", r.Scheme, 100*r.BWLoss, r.Ordered)
	}

	header(w, "Section 7.3 — ISN hardware cost")
	fmt.Fprintln(w, hwcost.DefaultReport())

	header(w, "Fig. 4 — link-layer drop scenario (deterministic)")
	for _, p := range core.Protocols {
		rep := core.RunFig4(p)
		fmt.Fprintf(w, "%-9s misordered=%-5v unverified=%d isn_detects=%d drops=%d tags=%v\n",
			p, rep.Misordered, rep.UnverifiedDelivered, rep.CrcErrors, rep.SwitchDrops, rep.Tags)
	}

	header(w, "Fig. 5a — duplicate request execution (deterministic)")
	for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolRXL} {
		rep := core.RunFig5a(p)
		fmt.Fprintf(w, "%-9s dup_exec=%d dup_data=%d completed=%d/%d isn_detects=%d\n",
			p, rep.DuplicateExecutions, rep.DuplicateData, rep.Completed, rep.Issued, rep.LinkCrcErrors)
	}

	header(w, "Fig. 5b — out-of-order data within a CQID (deterministic)")
	for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolRXL} {
		rep := core.RunFig5b(p)
		fmt.Fprintf(w, "%-9s out_of_order=%d completed=%d/%d isn_detects=%d\n",
			p, rep.OutOfOrderData, rep.Completed, rep.Issued, rep.LinkCrcErrors)
	}

	header(w, "Live simulation — protocol comparison under BER")
	fmt.Fprintf(w, "(n=%d payloads, 1 switching level, accelerated BER 1e-5)\n", opt.n)
	results, err := core.RunComparisonPool(ctx, pool, core.Config{Levels: 1, BER: 1e-5, BurstProb: 0.4, Seed: 7}, opt.n)
	if err != nil {
		return err
	}
	for _, p := range core.Protocols {
		fmt.Fprintln(w, results[p])
	}

	if opt.grid {
		if err := runGrid(ctx, pool, opt, w); err != nil {
			return err
		}
	}
	if opt.mc {
		if err := runMC(ctx, pool, opt, w); err != nil {
			return err
		}
	}
	if opt.scenarios {
		if err := runScenarios(ctx, pool, opt, w); err != nil {
			return err
		}
	}
	if opt.rare {
		if err := runRare(ctx, pool, opt, w); err != nil {
			return err
		}
	}
	return nil
}

// runScenarios runs the scenario grid — protocol × topology (mesh and
// torus) × workload generator × scripted fault campaign — on the worker
// pool and reports per-cell delivery accounting. The grid mirrors the
// differential suite's operating points, so every line it prints is a
// configuration the fast/byte-level equivalence tests pin.
func runScenarios(ctx context.Context, pool runner.Pool, opt options, w io.Writer) error {
	header(w, "Scenario grid — topology × workload × fault campaigns")
	g := core.ScenarioGrid{
		Base:      core.Config{BER: 1e-5, BurstProb: 0.4, Seed: 7},
		Protocols: core.Protocols,
		Topologies: []core.Topology{
			{Kind: core.TopoMesh, W: 4, H: 4},
			{Kind: core.TopoTorus, W: 4, H: 4},
		},
		Workloads: []workload.Spec{
			{Kind: workload.KindUniform, Flows: 6},
			{Kind: workload.KindZipf, Flows: 6, Skew: 1.5},
			{Kind: workload.KindTranspose},
			{Kind: workload.KindSingleSink, SinkX: 1, SinkY: 1, Flows: 5},
		},
		Faults: []core.FaultScript{
			{Kind: core.FaultNone},
			{Kind: core.FaultStorm, StartNS: 150, DurationNS: 250, Factor: 20},
			{Kind: core.FaultFlap, StartNS: 150, DurationNS: 120, Flaps: 2, PeriodNS: 400},
		},
		N: max(1, opt.n/100),
	}
	res, err := core.RunScenarioGrid(ctx, pool, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "(%d cells × %d payloads/flow, sharded across the worker pool)\n", len(res), g.N)
	fmt.Fprintf(w, "%-9s %-9s %-22s %-22s %9s %9s %7s %6s %10s\n",
		"protocol", "topology", "workload", "fault", "offered", "delivered", "missing", "drops", "hook_drops")
	for _, r := range res {
		var del, missing, offered int
		for i, fc := range r.Result.PerFlow {
			del += fc.Delivered
			missing += fc.Missing
			if r.Result.PerFlowOffered != nil {
				offered += r.Result.PerFlowOffered[i]
			} else {
				offered += r.Result.Offered
			}
		}
		fmt.Fprintf(w, "%-9s %-9s %-22s %-22s %9d %9d %7d %6d %10d\n",
			r.Result.Cfg.Protocol, r.Topology.Name(), r.Workload.Name(), r.Fault.Name(),
			offered, del, missing, r.Result.Routers.DroppedUncorrectable, r.Result.HookDropped)
	}
	if opt.scenCSV != "" {
		if err := runner.SaveCSV(opt.scenCSV, core.ScenarioCSVHeader(), core.ScenarioResultRows(res)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scenario CSV written to %s\n", opt.scenCSV)
	}
	return nil
}

func runGrid(ctx context.Context, pool runner.Pool, opt options, w io.Writer) error {
	header(w, "Scale-out grid — protocol × levels × BER (parallel runner)")
	g := core.Grid{
		Base:      core.Config{BurstProb: 0.4},
		Protocols: core.Protocols,
		Levels:    []int{0, 1, 2},
		BERs:      []float64{1e-6, 1e-5},
		Seeds:     []uint64{7},
		N:         max(1, opt.n/4),
	}
	fmt.Fprintf(w, "(%d cells × %d payloads, sharded across the worker pool)\n", g.Size(), g.N)
	res, err := core.RunGrid(ctx, pool, g)
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Fprintln(w, r)
	}
	if opt.csvPath != "" {
		if err := runner.SaveCSV(opt.csvPath, core.GridCSVHeader(), core.ResultRows(res)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "grid CSV written to %s\n", opt.csvPath)
	}
	if opt.jsonPath != "" {
		if err := runner.SaveJSON(opt.jsonPath, res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "grid JSON written to %s\n", opt.jsonPath)
	}
	return nil
}

func runMC(ctx context.Context, pool runner.Pool, opt options, w io.Writer) error {
	header(w, "Monte-Carlo cross-checks (sharded runner)")
	s, err := reliability.MeasureFERSharded(ctx, pool, 5e-4, 20000, reliability.DefaultShards)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Eq. 1 at BER=5e-4: measured FER %.4f vs analytic %.4f (%d flits, %d shards)\n",
		s.FER, s.Analytic, s.Flits, reliability.DefaultShards)
	for _, b := range []int{3, 4, 5, 6} {
		o, err := reliability.MeasureFECBurstSharded(ctx, runner.Pool{Workers: opt.workers, BaseSeed: uint64(b) * 977}, b, 20000, reliability.DefaultShards)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "FEC %dB bursts: corrected=%d detected=%d miscorrected=%d detection=%.4f\n",
			b, o.Corrected, o.Detected, o.Miscorrected, o.DetectionRate())
	}
	fmt.Fprintln(w, "(paper Section 2.5: detection 2/3 at 4B, 8/9 at 5B, 26/27 at >=6B)")

	est, err := reliability.StagedSharded(ctx, pool, 5e-4, 20000, 4, 20000, reliability.DefaultShards)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, est)
	return nil
}

// runRare prints the deep-tail estimation: the importance-sampled FER /
// FER_UC / FER_UD sweep at BERs no naive run can reach, the multilevel
// splitting cross-check of the symbol pile-up tail, and the
// self-validation of IS against naive schedule Monte-Carlo at overlap
// BERs where both converge.
func runRare(ctx context.Context, pool runner.Pool, opt options, w io.Writer) error {
	header(w, "Rare-event deep tails — importance sampling + multilevel splitting")
	fmt.Fprintf(w, "(tilted error-event schedule, rel-err target %.2f, %d shards; proposal %s)\n",
		opt.relErr, reliability.DefaultShards, describeProposal(opt.proposal))

	bers := []float64{1e-8, 1e-9, 1e-10}
	pts, err := reliability.RareSweep(ctx, pool, bers, opt.proposal, opt.relErr, 1<<24, reliability.DefaultShards)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "      BER       FER(IS)    ±rel     Eq.1   sigma    FER_UC(IS)    ±rel    FER_UD(IS)    ±rel")
	for _, pt := range pts {
		fmt.Fprintf(w, "%9.0e  %12.4g  %5.1f%%  %7.3g  %6.2f  %12.4g  %5.1f%%  %12.4g  %5.1f%%\n",
			pt.BER, pt.FER.Value, 100*pt.FER.RelErr, pt.FER.Analytic, pt.FER.Sigma(pt.FER.Analytic),
			pt.FERUC.Value, 100*pt.FERUC.RelErr, pt.Undetected.Value, 100*pt.Undetected.RelErr)
	}

	split, err := reliability.MeasureSplitRare(ctx, pool, reliability.DefaultBER, 4, 50000, 16)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "splitting P(>=4 symbol errors/flit) at BER %g: %.4g ±%.1f%% vs exact binomial %.4g (%d final-level hits)\n",
		reliability.DefaultBER, split.Value, 100*split.RelErr, split.Analytic, split.Hits)

	checks, err := reliability.RareSelfCheck(ctx, pool, []float64{1e-6, 1e-7}, 2_000_000, 32)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "self-validation (IS vs naive schedule MC at overlap BERs; acceptance: <= 3 sigma):")
	for _, c := range checks {
		fmt.Fprintf(w, "  BER %g: IS %.4g ±%.1f%% vs naive %.4g (%d/%d events) — %.2f sigma\n",
			c.BER, c.IS.Value, 100*c.IS.RelErr, c.Naive.FER, c.Naive.Erroneous, c.Naive.Flits, c.Sigma)
	}
	return nil
}

func describeProposal(p float64) string {
	if p <= 0 {
		return "auto"
	}
	return fmt.Sprintf("%g", p)
}
