// Command sweep regenerates every table and figure of the paper's
// evaluation in one run: the Section 7.1 reliability numbers, the Fig. 8
// FIT sweep, the Section 7.2 bandwidth table, the Section 7.3 hardware
// cost, the deterministic Fig. 4/5 failure scenarios, and the Monte-Carlo
// cross-checks backing the analytic model. Its output is the source of
// EXPERIMENTS.md.
//
// Usage:
//
//	sweep [-mc] [-n 20000]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/hwcost"
	"repro/internal/link"
	"repro/internal/perf"
	"repro/internal/reliability"
)

func header(title string) {
	fmt.Println()
	fmt.Println(title)
	for range title {
		fmt.Print("=")
	}
	fmt.Println()
}

func main() {
	mc := flag.Bool("mc", true, "run the Monte-Carlo cross-checks")
	n := flag.Int("n", 20000, "payloads per live simulation")
	flag.Parse()

	rel := reliability.DefaultParams()
	pf := perf.DefaultParams()

	header("Section 7.1 — reliability (Eq. 1-10)")
	fmt.Printf("Eq. 1  FER                 %.3g   (paper: 2.0e-3)\n", rel.FER())
	fmt.Printf("Eq. 3  p_correct           %.4f   (paper: >0.985)\n", rel.PCorrect())
	fmt.Printf("Eq. 4  FER_UD direct       %.3g   (paper: 1.6e-24)\n", rel.FERUndetectedDirect())
	fmt.Printf("Eq. 5  FIT direct          %.3g   (paper: 2.9e-3)\n", rel.FITDirect())
	fmt.Printf("Eq. 7  FER_order 1-switch  %.3g   (paper: 3.0e-6)\n", rel.FEROrder(1))
	fmt.Printf("Eq. 8  FIT CXL 1-switch    %.3g   (paper: 5.4e15)\n", rel.FITCXL(1))
	fmt.Printf("Eq. 10 FIT RXL 1-switch    %.3g   (paper: 2.9e-3)\n", rel.FITRXL(1))
	fmt.Printf("       improvement         %.3g   (paper: >1e18)\n", rel.Improvement(1))

	header("Fig. 8 — FIT vs switching levels")
	fmt.Println("levels       FIT_CXL       FIT_RXL")
	for _, pt := range rel.Fig8(8) {
		fmt.Printf("%6d  %12.3g  %12.3g\n", pt.Levels, pt.FITCXL, pt.FITRXL)
	}

	header("Section 7.2 — bandwidth loss (Eq. 11-14)")
	fmt.Printf("%-30s %9s %8s\n", "scheme", "BW loss", "ordered")
	for _, r := range pf.Table() {
		fmt.Printf("%-30s %8.4f%% %8v\n", r.Scheme, 100*r.BWLoss, r.Ordered)
	}

	header("Section 7.3 — ISN hardware cost")
	fmt.Println(hwcost.DefaultReport())

	header("Fig. 4 — link-layer drop scenario (deterministic)")
	for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback, link.ProtocolRXL} {
		rep := core.RunFig4(p)
		fmt.Printf("%-9s misordered=%-5v unverified=%d isn_detects=%d drops=%d tags=%v\n",
			p, rep.Misordered, rep.UnverifiedDelivered, rep.CrcErrors, rep.SwitchDrops, rep.Tags)
	}

	header("Fig. 5a — duplicate request execution (deterministic)")
	for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolRXL} {
		rep := core.RunFig5a(p)
		fmt.Printf("%-9s dup_exec=%d dup_data=%d completed=%d/%d isn_detects=%d\n",
			p, rep.DuplicateExecutions, rep.DuplicateData, rep.Completed, rep.Issued, rep.LinkCrcErrors)
	}

	header("Fig. 5b — out-of-order data within a CQID (deterministic)")
	for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolRXL} {
		rep := core.RunFig5b(p)
		fmt.Printf("%-9s out_of_order=%d completed=%d/%d isn_detects=%d\n",
			p, rep.OutOfOrderData, rep.Completed, rep.Issued, rep.LinkCrcErrors)
	}

	header("Live simulation — protocol comparison under BER")
	fmt.Printf("(n=%d payloads, 1 switching level, accelerated BER 1e-5)\n", *n)
	results := core.RunComparison(core.Config{Levels: 1, BER: 1e-5, BurstProb: 0.4, Seed: 7}, *n)
	for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback, link.ProtocolRXL} {
		fmt.Println(results[p])
	}

	if *mc {
		header("Monte-Carlo cross-checks")
		s := reliability.MeasureFER(5e-4, 20000, 42)
		fmt.Printf("Eq. 1 at BER=5e-4: measured FER %.4f vs analytic %.4f\n", s.FER, s.Analytic)
		for _, b := range []int{3, 4, 5, 6} {
			o := reliability.MeasureFECBurst(b, 20000, uint64(b)*977)
			fmt.Printf("FEC %dB bursts: corrected=%d detected=%d miscorrected=%d detection=%.4f\n",
				b, o.Corrected, o.Detected, o.Miscorrected, o.DetectionRate())
		}
		fmt.Println("(paper Section 2.5: detection 2/3 at 4B, 8/9 at 5B, 26/27 at >=6B)")
	}
}
