// Command sweep regenerates every table and figure of the paper's
// evaluation in one run: the Section 7.1 reliability numbers, the Fig. 8
// FIT sweep, the Section 7.2 bandwidth table, the Section 7.3 hardware
// cost, the deterministic Fig. 4/5 failure scenarios, the Monte-Carlo
// cross-checks backing the analytic model, and a parallel protocol ×
// levels × BER grid of live simulations. Its output is the source of
// EXPERIMENTS.md:
//
//	go run ./cmd/sweep > EXPERIMENTS.md
//
// Simulations and Monte-Carlo stages run on the sharded runner
// (internal/runner): -workers bounds concurrency but never changes any
// number — per-shard RNG seeds derive from the base seed and shard index,
// so every worker count reproduces the same output bit for bit.
//
// Usage:
//
//	sweep [-mc] [-n 20000] [-workers 0] [-grid] [-csv grid.csv] [-json grid.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hwcost"
	"repro/internal/link"
	"repro/internal/perf"
	"repro/internal/reliability"
	"repro/internal/runner"
)

func header(title string) {
	fmt.Println()
	fmt.Println(title)
	for range title {
		fmt.Print("=")
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	mc := flag.Bool("mc", true, "run the Monte-Carlo cross-checks")
	grid := flag.Bool("grid", true, "run the parallel protocol × levels × BER grid")
	n := flag.Int("n", 20000, "payloads per live simulation")
	workers := flag.Int("workers", 0, "runner worker pool size (0 = GOMAXPROCS)")
	csvPath := flag.String("csv", "", "export the grid results as CSV to this path")
	jsonPath := flag.String("json", "", "export the grid results as JSON to this path")
	flag.Parse()

	ctx := context.Background()
	pool := runner.Pool{Workers: *workers, BaseSeed: 1}
	rel := reliability.DefaultParams()
	pf := perf.DefaultParams()

	header("Section 7.1 — reliability (Eq. 1-10)")
	fmt.Printf("Eq. 1  FER                 %.3g   (paper: 2.0e-3)\n", rel.FER())
	fmt.Printf("Eq. 3  p_correct           %.4f   (paper: >0.985)\n", rel.PCorrect())
	fmt.Printf("Eq. 4  FER_UD direct       %.3g   (paper: 1.6e-24)\n", rel.FERUndetectedDirect())
	fmt.Printf("Eq. 5  FIT direct          %.3g   (paper: 2.9e-3)\n", rel.FITDirect())
	fmt.Printf("Eq. 7  FER_order 1-switch  %.3g   (paper: 3.0e-6)\n", rel.FEROrder(1))
	fmt.Printf("Eq. 8  FIT CXL 1-switch    %.3g   (paper: 5.4e15)\n", rel.FITCXL(1))
	fmt.Printf("Eq. 10 FIT RXL 1-switch    %.3g   (paper: 2.9e-3)\n", rel.FITRXL(1))
	fmt.Printf("       improvement         %.3g   (paper: >1e18)\n", rel.Improvement(1))

	header("Fig. 8 — FIT vs switching levels")
	fmt.Println("levels       FIT_CXL       FIT_RXL")
	for _, pt := range rel.Fig8(8) {
		fmt.Printf("%6d  %12.3g  %12.3g\n", pt.Levels, pt.FITCXL, pt.FITRXL)
	}

	header("Section 7.2 — bandwidth loss (Eq. 11-14)")
	fmt.Printf("%-30s %9s %8s\n", "scheme", "BW loss", "ordered")
	for _, r := range pf.Table() {
		fmt.Printf("%-30s %8.4f%% %8v\n", r.Scheme, 100*r.BWLoss, r.Ordered)
	}

	header("Section 7.3 — ISN hardware cost")
	fmt.Println(hwcost.DefaultReport())

	header("Fig. 4 — link-layer drop scenario (deterministic)")
	for _, p := range core.Protocols {
		rep := core.RunFig4(p)
		fmt.Printf("%-9s misordered=%-5v unverified=%d isn_detects=%d drops=%d tags=%v\n",
			p, rep.Misordered, rep.UnverifiedDelivered, rep.CrcErrors, rep.SwitchDrops, rep.Tags)
	}

	header("Fig. 5a — duplicate request execution (deterministic)")
	for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolRXL} {
		rep := core.RunFig5a(p)
		fmt.Printf("%-9s dup_exec=%d dup_data=%d completed=%d/%d isn_detects=%d\n",
			p, rep.DuplicateExecutions, rep.DuplicateData, rep.Completed, rep.Issued, rep.LinkCrcErrors)
	}

	header("Fig. 5b — out-of-order data within a CQID (deterministic)")
	for _, p := range []link.Protocol{link.ProtocolCXL, link.ProtocolRXL} {
		rep := core.RunFig5b(p)
		fmt.Printf("%-9s out_of_order=%d completed=%d/%d isn_detects=%d\n",
			p, rep.OutOfOrderData, rep.Completed, rep.Issued, rep.LinkCrcErrors)
	}

	header("Live simulation — protocol comparison under BER")
	fmt.Printf("(n=%d payloads, 1 switching level, accelerated BER 1e-5)\n", *n)
	results, err := core.RunComparisonPool(ctx, pool, core.Config{Levels: 1, BER: 1e-5, BurstProb: 0.4, Seed: 7}, *n)
	if err != nil {
		fatal(err)
	}
	for _, p := range core.Protocols {
		fmt.Println(results[p])
	}

	if *grid {
		header("Scale-out grid — protocol × levels × BER (parallel runner)")
		g := core.Grid{
			Base:      core.Config{BurstProb: 0.4},
			Protocols: core.Protocols,
			Levels:    []int{0, 1, 2},
			BERs:      []float64{1e-6, 1e-5},
			Seeds:     []uint64{7},
			N:         max(1, *n/4),
		}
		fmt.Printf("(%d cells × %d payloads, sharded across the worker pool)\n", g.Size(), g.N)
		res, err := core.RunGrid(ctx, pool, g)
		if err != nil {
			fatal(err)
		}
		for _, r := range res {
			fmt.Println(r)
		}
		if *csvPath != "" {
			if err := runner.SaveCSV(*csvPath, core.GridCSVHeader(), core.ResultRows(res)); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "grid CSV written to %s\n", *csvPath)
		}
		if *jsonPath != "" {
			if err := runner.SaveJSON(*jsonPath, res); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "grid JSON written to %s\n", *jsonPath)
		}
	}

	if *mc {
		header("Monte-Carlo cross-checks (sharded runner)")
		s, err := reliability.MeasureFERSharded(ctx, pool, 5e-4, 20000, reliability.DefaultShards)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Eq. 1 at BER=5e-4: measured FER %.4f vs analytic %.4f (%d flits, %d shards)\n",
			s.FER, s.Analytic, s.Flits, reliability.DefaultShards)
		for _, b := range []int{3, 4, 5, 6} {
			o, err := reliability.MeasureFECBurstSharded(ctx, runner.Pool{Workers: *workers, BaseSeed: uint64(b) * 977}, b, 20000, reliability.DefaultShards)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("FEC %dB bursts: corrected=%d detected=%d miscorrected=%d detection=%.4f\n",
				b, o.Corrected, o.Detected, o.Miscorrected, o.DetectionRate())
		}
		fmt.Println("(paper Section 2.5: detection 2/3 at 4B, 8/9 at 5B, 26/27 at >=6B)")

		est, err := reliability.StagedSharded(ctx, pool, 5e-4, 20000, 4, 20000, reliability.DefaultShards)
		if err != nil {
			fatal(err)
		}
		fmt.Println(est)
	}
}
