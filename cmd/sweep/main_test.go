package main

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestRunPropagatesShardErrors: a failing runner stage (here: canceled
// context) must surface as an error from run — and therefore a non-zero
// exit from main — instead of printing and continuing with a truncated
// report.
func TestRunPropagatesShardErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, options{n: 100, mc: true, grid: true}, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run on canceled context: %v, want context.Canceled", err)
	}
}

// TestRunRareSectionOptIn: -rare adds the deep-tail section; without it
// the report stays the classic set.
func TestRunRareSectionOptIn(t *testing.T) {
	var plain strings.Builder
	if err := run(context.Background(), options{n: 200}, &plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "Rare-event deep tails") {
		t.Fatal("rare section printed without -rare")
	}
	if !strings.Contains(plain.String(), "Section 7.1") {
		t.Fatal("report missing the Section 7.1 header")
	}
}
