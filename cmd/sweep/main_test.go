package main

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestRunPropagatesShardErrors: a failing runner stage (here: canceled
// context) must surface as an error from run — and therefore a non-zero
// exit from main — instead of printing and continuing with a truncated
// report.
func TestRunPropagatesShardErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, options{n: 100, mc: true, grid: true}, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run on canceled context: %v, want context.Canceled", err)
	}
}

// TestRunRareSectionOptIn: -rare adds the deep-tail section; without it
// the report stays the classic set.
func TestRunRareSectionOptIn(t *testing.T) {
	var plain strings.Builder
	if err := run(context.Background(), options{n: 200}, &plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "Rare-event deep tails") {
		t.Fatal("rare section printed without -rare")
	}
	if !strings.Contains(plain.String(), "Section 7.1") {
		t.Fatal("report missing the Section 7.1 header")
	}
	if strings.Contains(plain.String(), "Scenario grid") {
		t.Fatal("scenario section printed without -scenarios")
	}
}

// TestRunScenariosSectionOptIn: -scenarios adds the scenario-grid
// section covering both topologies and every fault-campaign kind.
func TestRunScenariosSectionOptIn(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), options{n: 2000, scenarios: true}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"Scenario grid", "mesh4x4", "torus4x4",
		"storm(x20@150+250ns)", "flap(2x120ns/400ns)", "zipf(s=1.5,n=6)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("scenario report missing %q", want)
		}
	}
}
