package rxl_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro"
)

// The public-API tests exercise the library exactly as README consumers
// would, keeping the documented entry points honest.

func TestQuickstartFlow(t *testing.T) {
	fabric := rxl.MustNewFabric(rxl.Config{
		Protocol: rxl.RXL,
		Levels:   2,
		BER:      1e-6,
		Seed:     1,
	})
	exp := rxl.Experiment{Fabric: fabric, N: 2000}
	res := exp.Run()
	if !res.Failures.Clean() {
		t.Fatalf("quickstart not clean: %+v", res.Failures)
	}
	if res.Failures.Delivered != 2000 {
		t.Fatalf("delivered %d", res.Failures.Delivered)
	}
}

func TestNewFabricError(t *testing.T) {
	if _, err := rxl.NewFabric(rxl.Config{Levels: -1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestProtocolConstantsDistinct(t *testing.T) {
	if rxl.CXL == rxl.RXL || rxl.CXL == rxl.CXLNoPiggyback || rxl.RXL == rxl.CXLNoPiggyback {
		t.Fatal("protocol constants collide")
	}
}

func TestScenarioWrappers(t *testing.T) {
	if rep := rxl.RunFig4(rxl.CXL); !rep.Misordered {
		t.Error("Fig4 CXL must misorder")
	}
	if rep := rxl.RunFig4(rxl.RXL); rep.Misordered {
		t.Error("Fig4 RXL must stay ordered")
	}
	if rep := rxl.RunFig5a(rxl.CXL); rep.DuplicateExecutions == 0 {
		t.Error("Fig5a CXL must duplicate")
	}
	if rep := rxl.RunFig5b(rxl.CXL); rep.OutOfOrderData == 0 {
		t.Error("Fig5b CXL must misorder data")
	}
}

func TestAnalyticWrappers(t *testing.T) {
	r := rxl.DefaultReliability()
	if fit := r.FITCXL(1); fit < 1e15 {
		t.Errorf("FIT_CXL(1) = %g", fit)
	}
	pts := rxl.Fig8(4)
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	p := rxl.DefaultPerformance()
	if loss := p.BWLossSwitched(1); loss < 0.002 || loss > 0.004 {
		t.Errorf("BW loss = %g", loss)
	}
	hw := rxl.DefaultHardwareReport()
	if hw.ISNExtraXORs != 10 {
		t.Errorf("extra XORs = %d", hw.ISNExtraXORs)
	}
}

func TestRunComparisonWrapper(t *testing.T) {
	res := rxl.RunComparison(rxl.Config{Levels: 1}, 100)
	for _, proto := range []rxl.Protocol{rxl.CXL, rxl.CXLNoPiggyback, rxl.RXL} {
		if res[proto].Failures.Delivered == 0 {
			t.Errorf("%v delivered nothing", proto)
		}
	}
}

// TestSweepFacade drives the parallel sharded runner exactly as README
// documents: a protocol × levels grid on an explicit pool, deterministic
// across worker counts.
func TestSweepFacade(t *testing.T) {
	grid := rxl.SweepGrid{
		Base:      rxl.Config{BurstProb: 0.4},
		Protocols: []rxl.Protocol{rxl.CXL, rxl.RXL},
		Levels:    []int{0, 1},
		BERs:      []float64{1e-5},
		Seeds:     []uint64{7},
		N:         1000,
	}
	ctx := context.Background()
	one, err := rxl.Sweep(ctx, rxl.Runner{Workers: 1, BaseSeed: 2}, grid)
	if err != nil {
		t.Fatal(err)
	}
	many, err := rxl.Sweep(ctx, rxl.Runner{Workers: 8, BaseSeed: 2}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != grid.Size() || !reflect.DeepEqual(one, many) {
		t.Fatalf("sweep results differ across worker counts (%d cells)", len(one))
	}
	for _, r := range one {
		if r.Failures.Delivered != grid.N {
			t.Fatalf("%s delivered %d of %d", r.Cfg.Protocol, r.Failures.Delivered, grid.N)
		}
	}
}

func TestNoCQuickstart(t *testing.T) {
	noc, err := rxl.NewNoC(3, 3, rxl.Config{Protocol: rxl.RXL, BER: 1e-5, BurstProb: 0.4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := noc.Node(0, 0)
	dst := noc.Node(2, 2)
	tx := src.PeerTo(dst.ID)
	delivered := 0
	dst.PeerTo(src.ID).Deliver = func([]byte) { delivered++ }
	payload := make([]byte, 16)
	const n = 500
	for i := 0; i < n; i++ {
		tx.Submit(payload)
	}
	noc.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	if noc.Node(0, 0) != src {
		t.Fatal("Node not memoized")
	}
}

func TestNoCRejectsInvalidConfig(t *testing.T) {
	if _, err := rxl.NewNoC(2, 2, rxl.Config{BER: -1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDefaultLinkConfigOverride(t *testing.T) {
	lc := rxl.DefaultLinkConfig(rxl.RXL)
	lc.CoalesceCount = 4
	fabric := rxl.MustNewFabric(rxl.Config{Protocol: rxl.RXL, LinkConfig: &lc})
	exp := rxl.Experiment{Fabric: fabric, N: 100}
	if res := exp.Run(); !res.Failures.Clean() {
		t.Fatalf("custom link config broke delivery: %+v", res.Failures)
	}
}

// runNoCOnce drives one corner-to-corner stream across a 3x3 mesh and
// returns the observable outcome: delivery count, both endpoints' link
// statistics, router totals, and the simulated end time.
func runNoCOnce(t *testing.T, cfg rxl.Config, n int) (int, [2]rxl.LinkStats, interface{}, rxl.Time) {
	t.Helper()
	noc, err := rxl.NewNoC(3, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := noc.Node(0, 0)
	dst := noc.Node(2, 2)
	tx := src.PeerTo(dst.ID)
	rx := dst.PeerTo(src.ID)
	delivered := 0
	rx.Deliver = func([]byte) { delivered++ }
	payload := make([]byte, 16)
	for i := 0; i < n; i++ {
		tx.Submit(payload)
	}
	noc.Run()
	return delivered, [2]rxl.LinkStats{tx.Stats, rx.Stats}, noc.Mesh.TotalStats(), noc.Eng.Now()
}

// TestNoCFastPathDifferential pins Config.NoFastPath on the mesh NoC: the
// byte-level reference path and the error-event fast path must agree on
// delivery, link statistics, router totals, and timing for the same seed.
func TestNoCFastPathDifferential(t *testing.T) {
	for _, proto := range []rxl.Protocol{rxl.CXL, rxl.RXL} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := rxl.Config{Protocol: proto, BER: 1e-5, BurstProb: 0.4, Seed: 4}
			slow := cfg
			slow.NoFastPath = true
			fd, fs, fm, ft := runNoCOnce(t, cfg, 500)
			sd, ss, sm, st := runNoCOnce(t, slow, 500)
			if fd != sd || ft != st || !reflect.DeepEqual(fs, ss) || !reflect.DeepEqual(fm, sm) {
				t.Errorf("NoC fast/slow diverge:\nfast: d=%d t=%d %+v %+v\nslow: d=%d t=%d %+v %+v",
					fd, ft, fs, fm, sd, st, ss, sm)
			}
		})
	}
}

// TestServeFacade drives the serving daemon through the public facade:
// rxl.Serve + rxl.InProcessClient must answer a grid job with bytes
// identical to a direct rxl.Sweep of the same grid, and a repeat
// submission must be a cache hit carrying the same bytes.
func TestServeFacade(t *testing.T) {
	srv, err := rxl.Serve(rxl.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := rxl.InProcessClient(srv)
	ctx := context.Background()

	grid := rxl.SweepGrid{
		Base:      rxl.Config{BER: 1e-5, BurstProb: 0.4, Seed: 3},
		Protocols: []rxl.Protocol{rxl.CXL, rxl.RXL},
		Levels:    []int{1},
		N:         500,
	}
	spec := rxl.JobSpec{Kind: "grid", Seed: 11, Grid: &grid}

	served, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := rxl.Sweep(ctx, rxl.Runner{Workers: 2, BaseSeed: 11}, grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served result differs from direct rxl.Sweep:\n got %s\nwant %s", served, want)
	}

	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached {
		t.Fatal("repeat submission missed the cache")
	}
	if !bytes.Equal(v.Result, want) {
		t.Fatal("cached bytes differ from direct run")
	}

	// Stream: the event log of a finished job replays to its result.
	sawResult := false
	if err := c.Stream(ctx, v.ID, func(e rxl.ServiceEvent) error {
		sawResult = sawResult || e.Type == "result"
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawResult {
		t.Fatal("stream carried no result event")
	}
}
