#!/usr/bin/env bash
# Tiered verification ladder. Every CI job calls one rung of this script,
# so the exact commands CI enforces are runnable (and debuggable) locally:
#
#   scripts/verify.sh --level=unit          # vet + build (incl. purego) + tests + bench smoke
#   scripts/verify.sh --level=race          # race-detector subset + fuzz corpus
#   scripts/verify.sh --level=kernels       # coding-kernel differential: default vs -tags purego
#   scripts/verify.sh --level=differential  # scenario-grid fast/slow scan
#   scripts/verify.sh --level=smoke         # rxld HTTP serving-contract drill
#   scripts/verify.sh --level=metrics       # /metrics + trace contract + rxltop drill
#   scripts/verify.sh --level=fleet         # 3-daemon fleet + front byte-identity e2e
#   scripts/verify.sh --level=compose       # same drill via docker compose (skips w/o docker)
#   scripts/verify.sh --level=bench         # gated benchmark suite + benchgate
#   scripts/verify.sh --level=all           # the whole ladder, bottom to top
#
# The bench rung leaves its raw output in bench.txt so CI can package it
# as the commit-keyed artifact that becomes the next BENCH_baseline.json.
set -euo pipefail
cd "$(dirname "$0")/.."

level=unit
for arg in "$@"; do
  case "$arg" in
    --level=*) level="${arg#--level=}" ;;
    *)
      echo "usage: $0 [--level=unit|race|kernels|differential|smoke|metrics|fleet|compose|bench|all]" >&2
      exit 2
      ;;
  esac
done

run() {
  echo "+ $*" >&2
  "$@"
}

rung_unit() {
  run go vet ./...
  run go build ./...
  # The purego build is the pinned reference for every SIMD-dispatched
  # kernel; it must always compile even when only the asm path changed.
  run go build -tags purego ./...
  run go test ./...
  # Benchmark smoke: one iteration of everything, so a benchmark that no
  # longer compiles or trips its own assertions fails fast here rather
  # than in the (slow) bench rung.
  run go test -run '^$' -bench . -benchtime 1x ./...
}

rung_race() {
  run go test -race ./internal/runner/ ./internal/core/ ./internal/reliability/... \
    ./internal/service/ ./internal/fleet/ ./internal/obs/ ./internal/workload/ \
    ./internal/trace/ ./cmd/rxlsim/ .
  # Fuzz seed corpus (replay parsing only, no long fuzzing).
  run go test -run 'Fuzz.*' ./internal/trace/
}

rung_kernels() {
  # Coding-kernel differential: the exact same test and fuzz-corpus suite
  # twice — once on the dispatched build (CLMUL CRC folding and
  # word-parallel RS syndromes where the CPU has them) and once under
  # -tags purego (the pinned byte-level reference). Every differential
  # test in these packages cross-checks fast against reference, so the
  # two runs together pin the asm and vectored paths bit-for-bit.
  run go test -count=1 ./internal/cpu/ ./internal/crc/ ./internal/rs/ ./internal/flit/
  run go test -count=1 -tags purego ./internal/cpu/ ./internal/crc/ ./internal/rs/ ./internal/flit/
  # The RXL_PUREGO escape hatch must force the reference kernels at
  # runtime without a rebuild.
  RXL_PUREGO=1 run go test -count=1 -run 'CLMUL|Dispatch|Flags' ./internal/cpu/ ./internal/crc/
  # Kernel fuzz corpora, replayed on both builds.
  run go test -count=1 -run 'Fuzz.*' ./internal/crc/ ./internal/rs/
  run go test -count=1 -tags purego -run 'Fuzz.*' ./internal/crc/ ./internal/rs/
}

rung_differential() {
  # Sweep the built-in topology x workload x fault grid through the
  # fast-path/byte-level differential; any diverging cell (or
  # non-exactly-once RXL delivery) exits non-zero.
  run go run ./cmd/rxlsim -scan -scan-n 25 -ber 1e-5
}

rung_smoke() {
  # Boot the real daemon on a random port, drive the HTTP API the way an
  # operator would, and assert the serving contract — the repeat of an
  # identical job must be a cache hit with a byte-identical result.
  run go build -o rxld ./cmd/rxld
  rm -f rxld.addr
  ./rxld -addr 127.0.0.1:0 -addr-file rxld.addr &
  RXLD_PID=$!
  trap 'kill "$RXLD_PID" 2>/dev/null || true' EXIT
  for _ in $(seq 50); do [ -s rxld.addr ] && break; sleep 0.2; done
  ADDR=$(cat rxld.addr)
  echo "daemon at $ADDR"

  curl -fsS "http://$ADDR/v1/healthz" | jq -e '.ok == true'

  SPEC='{"kind":"grid","seed":1,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":2000}}'
  FIRST=$(curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$SPEC")
  echo "$FIRST" | jq '{id, status, cached}'
  ID=$(echo "$FIRST" | jq -r .id)

  DONE=$(curl -fsS "http://$ADDR/v1/jobs/$ID?wait=60000")
  test "$(echo "$DONE" | jq -r .status)" = done

  SECOND=$(curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$SPEC")
  echo "$SECOND" | jq '{id, status, cached}'
  test "$(echo "$SECOND" | jq -r .cached)" = true
  test "$(echo "$SECOND" | jq -r .status)" = done

  # Byte-identical result documents between the computed first run and
  # the cached repeat.
  echo "$DONE" | jq -cS .result >r1.json
  echo "$SECOND" | jq -cS .result >r2.json
  cmp r1.json r2.json

  curl -fsS "http://$ADDR/v1/statsz" | tee statsz.json | jq .
  jq -e '.cache.hits >= 1 and .jobs_completed >= 2' statsz.json

  kill "$RXLD_PID"
  trap - EXIT
}

rung_metrics() {
  # Observability contract: the daemon exposes valid Prometheus text with
  # the documented families and outcome-split latency histograms, a
  # client-sent request id resolves to a lifecycle trace, and rxltop
  # renders a 3-member fleet map from nothing but /metrics endpoints.
  run go build -o rxld ./cmd/rxld
  BASE=$(mktemp -d)
  run go build -o "$BASE/rxltop" ./cmd/rxltop

  rm -f rxld.addr
  ./rxld -addr 127.0.0.1:0 -addr-file rxld.addr &
  RXLD_PID=$!
  trap 'kill "$RXLD_PID" 2>/dev/null || true' EXIT
  for _ in $(seq 50); do [ -s rxld.addr ] && break; sleep 0.2; done
  ADDR=$(cat rxld.addr)
  echo "daemon at $ADDR"

  SPEC='{"kind":"grid","seed":11,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":2000}}'
  RID=feedfacecafe0001
  FIRST=$(curl -fsS -X POST -H "X-Rxl-Request-Id: $RID" "http://$ADDR/v1/jobs" -d "$SPEC")
  ID=$(echo "$FIRST" | jq -r .id)
  test "$(echo "$FIRST" | jq -r .request_id)" = "$RID"
  DONE=$(curl -fsS "http://$ADDR/v1/jobs/$ID?wait=60000")
  test "$(echo "$DONE" | jq -r .status)" = done
  SECOND=$(curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$SPEC")
  test "$(echo "$SECOND" | jq -r .cached)" = true

  # Every documented family is present, and the outcome split advanced:
  # exactly one miss (the compute) and one hit (the repeat) so far.
  curl -fsS "http://$ADDR/metrics" >"$BASE/metrics.txt"
  for fam in rxld_uptime_seconds rxld_queue_depth rxld_shard_utilization \
             rxld_jobs_submitted_total rxld_jobs_completed_total \
             rxld_cache_entries rxld_cache_bytes rxld_cache_hits_total \
             rxld_request_seconds_bucket rxld_request_seconds_count; do
    grep -q "^$fam" "$BASE/metrics.txt" || { echo "missing family $fam" >&2; return 1; }
  done
  grep -q 'rxld_request_seconds_count{outcome="miss"} 1$' "$BASE/metrics.txt"
  grep -q 'rxld_request_seconds_count{outcome="hit"} 1$' "$BASE/metrics.txt"

  # The propagated request id resolves to the job's lifecycle trace.
  TRACE=$(curl -fsS "http://$ADDR/v1/jobs/$ID/trace")
  echo "$TRACE" | jq -e --arg rid "$RID" '.request_id == $rid'
  echo "$TRACE" | jq -e '[.spans[].name] | contains(["submit", "run", "finish"])'
  curl -fsS "http://$ADDR/v1/trace/$RID" | jq -e '.spans | length > 0'

  kill "$RXLD_PID"
  trap - EXIT

  # 3-member fleet + front with active probing: the front's per-peer
  # families render, and rxltop folds the whole fleet into one map.
  P1=17091 P2=17092 P3=17093 PF=17090
  PEERS="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"
  PIDS=()
  for p in $P1 $P2 $P3; do
    ./rxld -addr "127.0.0.1:$p" -fleet-self "http://127.0.0.1:$p" -fleet-peers "$PEERS" &
    PIDS+=($!)
  done
  ./rxld -addr "127.0.0.1:$PF" -fleet "$PEERS" -fleet-probe-interval 250ms &
  PIDS+=($!)
  trap 'kill "${PIDS[@]}" 2>/dev/null || true' EXIT
  for p in $P1 $P2 $P3 $PF; do
    for _ in $(seq 50); do
      curl -fsS "http://127.0.0.1:$p/v1/healthz" >/dev/null 2>&1 && break
      sleep 0.2
    done
  done
  curl -fsS -X POST "http://127.0.0.1:$PF/v1/jobs" -d "$SPEC" >/dev/null
  sleep 1 # let a probe round land
  curl -fsS "http://127.0.0.1:$PF/metrics" | grep -q '^rxlfront_peer_up'

  "$BASE/rxltop" -once -front "http://127.0.0.1:$PF" | tee "$BASE/top.txt"
  grep -q "FRONT http://127.0.0.1:$PF" "$BASE/top.txt"
  grep -q '^MEMBER' "$BASE/top.txt"
  for p in $P1 $P2 $P3; do
    grep "127.0.0.1:$p" "$BASE/top.txt" | grep -qv DOWN
  done

  kill "${PIDS[@]}" 2>/dev/null || true
  trap - EXIT
  rm -rf "$BASE"
}

# fleet_drill BASE FRONT D1 D2 D3 — the shared fleet serving-contract
# checks, parameterized on URLs so the process rung and the compose rung
# assert exactly the same things. BASE is a scratch directory for the
# result files.
fleet_drill() {
  local base=$1 front=$2 d1=$3 d2=$4 d3=$5

  SPEC='{"kind":"grid","seed":41,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":2000}}'

  curl -fsS "$front/v1/healthz" | jq -e '.ok == true and .role == "front"'

  # Submit through the front, wait, repeat: the repeat must be answered
  # from the owner's cache, through the front, byte-identically.
  FIRST=$(curl -fsS -X POST "$front/v1/jobs" -d "$SPEC")
  ID=$(echo "$FIRST" | jq -r .id)
  echo "front issued job $ID"
  case "$ID" in p[0-9]*~*) ;; *) echo "front job id lacks peer prefix: $ID" >&2; return 1 ;; esac
  DONE=$(curl -fsS "$front/v1/jobs/$ID?wait=60000")
  test "$(echo "$DONE" | jq -r .status)" = done
  SECOND=$(curl -fsS -X POST "$front/v1/jobs" -d "$SPEC")
  test "$(echo "$SECOND" | jq -r .cached)" = true
  echo "$DONE"   | jq -cS .result >"$base/front1.json"
  echo "$SECOND" | jq -cS .result >"$base/front2.json"
  cmp "$base/front1.json" "$base/front2.json"

  # Submit the same spec directly to every daemon: the non-owners must
  # peer-fetch the owner's bytes instead of recomputing, and all three
  # answers must be byte-identical.
  i=0
  for d in "$d1" "$d2" "$d3"; do
    i=$((i + 1))
    V=$(curl -fsS -X POST "$d/v1/jobs" -d "$SPEC")
    VID=$(echo "$V" | jq -r .id)
    curl -fsS "$d/v1/jobs/$VID?wait=60000" | jq -cS .result >"$base/direct$i.json"
    cmp "$base/front1.json" "$base/direct$i.json"
  done
  PEER_HITS=0
  for d in "$d1" "$d2" "$d3"; do
    ST=$(curl -fsS "$d/v1/statsz")
    echo "$ST" | jq -e '.fleet.ring_size > 0'
    PEER_HITS=$((PEER_HITS + $(echo "$ST" | jq '.fleet.peer_hits // 0')))
  done
  echo "fleet-wide peer_hits=$PEER_HITS"
  test "$PEER_HITS" -ge 2 # the two non-owners fetched instead of computing

  curl -fsS "$front/v1/statsz" | jq -e '.forwards >= 2 and .ring_size > 0'
}

rung_fleet() {
  # Boot a real 3-daemon fleet plus a front as separate processes, drive
  # the fleet serving contract, and diff every byte against a standalone
  # (fleet-less) daemon — routing must never change a result.
  run go build -o rxld ./cmd/rxld
  BASE=$(mktemp -d)
  P1=17081 P2=17082 P3=17083 PF=17080 PS=17089
  PEERS="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"
  PIDS=()
  for p in $P1 $P2 $P3; do
    ./rxld -addr "127.0.0.1:$p" -fleet-self "http://127.0.0.1:$p" -fleet-peers "$PEERS" &
    PIDS+=($!)
  done
  ./rxld -addr "127.0.0.1:$PF" -fleet "$PEERS" &
  PIDS+=($!)
  ./rxld -addr "127.0.0.1:$PS" &
  PIDS+=($!)
  trap 'kill "${PIDS[@]}" 2>/dev/null || true' EXIT
  for p in $P1 $P2 $P3 $PF $PS; do
    for _ in $(seq 50); do
      curl -fsS "http://127.0.0.1:$p/v1/healthz" >/dev/null 2>&1 && break
      sleep 0.2
    done
  done

  fleet_drill "$BASE" "http://127.0.0.1:$PF" \
    "http://127.0.0.1:$P1" "http://127.0.0.1:$P2" "http://127.0.0.1:$P3"

  # Differential leg: the same spec on a standalone daemon must produce
  # the exact bytes the fleet served.
  SPEC='{"kind":"grid","seed":41,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":2000}}'
  V=$(curl -fsS -X POST "http://127.0.0.1:$PS/v1/jobs" -d "$SPEC")
  VID=$(echo "$V" | jq -r .id)
  curl -fsS "http://127.0.0.1:$PS/v1/jobs/$VID?wait=60000" | jq -cS .result >"$BASE/standalone.json"
  cmp "$BASE/front1.json" "$BASE/standalone.json"
  echo "fleet bytes == standalone bytes"

  kill "${PIDS[@]}" 2>/dev/null || true
  trap - EXIT
  rm -rf "$BASE"
}

rung_compose() {
  # The same drill against the docker-compose fleet fixture. Skips (exit
  # 0) when no usable docker daemon or compose plugin is present, so the
  # rung is safe in 'all' on docker-less dev boxes; CI runs it for real.
  if ! command -v docker >/dev/null || ! docker info >/dev/null 2>&1; then
    echo "verify: compose rung skipped (no docker daemon)" >&2
    return 0
  fi
  if ! docker compose version >/dev/null 2>&1; then
    echo "verify: compose rung skipped (no docker compose plugin)" >&2
    return 0
  fi
  BASE=$(mktemp -d)
  run docker compose up --build -d --wait
  trap 'docker compose down -v --remove-orphans >/dev/null 2>&1 || true' EXIT
  fleet_drill "$BASE" "http://127.0.0.1:17080" \
    "http://127.0.0.1:17081" "http://127.0.0.1:17082" "http://127.0.0.1:17083"
  run docker compose down -v --remove-orphans
  trap - EXIT
  rm -rf "$BASE"
}

rung_bench() {
  # Separate invocations so each benchmark gets enough wall time per rep:
  # FlitTransfer/MeshTransfer/MeshExpress ops are ~0.3-20µs (20000x), the
  # MC inner loop is ~8ms/op (100x is already ~1s/rep), the MC epoch-skip
  # legs span 300ns-350µs/op (2000x keeps the slow leg ~0.7s/rep), the
  # engine pump is ~20ns/op (2000000x), the CRC kernels are 0.1-2.5µs
  # (200000x).
  run go test -run '^$' -bench 'FlitTransfer' \
    -count 5 -benchtime 20000x -benchmem . | tee bench.txt
  run go test -run '^$' -bench 'MeshTransferFastPath' \
    -count 5 -benchtime 20000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'MeshExpressTraversal' \
    -count 5 -benchtime 20000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'EngineBulkAdvance' \
    -count 5 -benchtime 2000000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'MCInnerLoopFastPath' \
    -count 5 -benchtime 100x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'MCEpochSkip' \
    -count 5 -benchtime 2000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'CRCSlicing' \
    -count 5 -benchtime 200000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'CRCCLMUL' \
    -count 5 -benchtime 1000000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'RSSyndromeVectored' \
    -count 5 -benchtime 200000x -benchmem . | tee -a bench.txt

  jq -r '.output' BENCH_baseline.json >baseline.txt
  if command -v benchstat >/dev/null; then
    benchstat baseline.txt bench.txt || true
  fi

  # Two legs: geomean ns/op vs the committed baseline (absolute, carries
  # runner-fleet noise — hence geomean over count=5 averages), plus
  # machine-invariant within-run ratio floors so the fast-path, express,
  # and epoch-skip wins are gated even when absolute timings drift with
  # the runner's CPU model.
  # The CLMUL gate only applies where the host actually ran the kernel:
  # the benchmark self-skips (emitting nothing) on CPUs or builds without
  # PCLMULQDQ, and a missing benchmark would otherwise fail the gate.
  CLMUL_GATE=()
  if grep -q '^BenchmarkCRCCLMUL/clmul' bench.txt; then
    CLMUL_GATE=(-min-ratio 'BenchmarkCRCSlicing/by16,BenchmarkCRCCLMUL/clmul,4')
  else
    echo "verify: no CLMUL on this host, skipping clmul ratio gate" >&2
  fi
  run go run ./cmd/benchgate -baseline baseline.txt -current bench.txt \
    -max-regress 0.15 \
    -min-ratio 'BenchmarkFlitTransfer/bytelevel,BenchmarkFlitTransfer/fastpath,5' \
    -min-ratio 'BenchmarkMeshTransferFastPath/bytelevel,BenchmarkMeshTransferFastPath/fastpath,5' \
    -min-ratio 'BenchmarkMeshExpressTraversal/fastpath,BenchmarkMeshExpressTraversal/express,1.05' \
    -min-ratio 'BenchmarkMCEpochSkip/pr5-ber1e6,BenchmarkMCEpochSkip/epoch-ber1e9,5' \
    -min-ratio 'BenchmarkCRCSlicing/table,BenchmarkCRCSlicing/by16,4' \
    -min-ratio 'BenchmarkRSSyndromeVectored/bytelevel,BenchmarkRSSyndromeVectored/vectored,3' \
    "${CLMUL_GATE[@]}"
}

case "$level" in
unit) rung_unit ;;
race) rung_race ;;
kernels) rung_kernels ;;
differential) rung_differential ;;
smoke) rung_smoke ;;
metrics) rung_metrics ;;
fleet) rung_fleet ;;
compose) rung_compose ;;
bench) rung_bench ;;
all)
  rung_unit
  rung_race
  rung_kernels
  rung_differential
  rung_smoke
  rung_metrics
  rung_fleet
  rung_compose
  rung_bench
  ;;
*)
  echo "unknown level '$level' (want unit|race|kernels|differential|smoke|metrics|fleet|compose|bench|all)" >&2
  exit 2
  ;;
esac

echo "verify: level '$level' passed" >&2
