#!/usr/bin/env bash
# Tiered verification ladder. Every CI job calls one rung of this script,
# so the exact commands CI enforces are runnable (and debuggable) locally:
#
#   scripts/verify.sh --level=unit          # vet + build + tests + bench smoke
#   scripts/verify.sh --level=race          # race-detector subset + fuzz corpus
#   scripts/verify.sh --level=differential  # scenario-grid fast/slow scan
#   scripts/verify.sh --level=smoke         # rxld HTTP serving-contract drill
#   scripts/verify.sh --level=bench         # gated benchmark suite + benchgate
#   scripts/verify.sh --level=all           # the whole ladder, bottom to top
#
# The bench rung leaves its raw output in bench.txt so CI can package it
# as the commit-keyed artifact that becomes the next BENCH_baseline.json.
set -euo pipefail
cd "$(dirname "$0")/.."

level=unit
for arg in "$@"; do
  case "$arg" in
    --level=*) level="${arg#--level=}" ;;
    *)
      echo "usage: $0 [--level=unit|race|differential|smoke|bench|all]" >&2
      exit 2
      ;;
  esac
done

run() {
  echo "+ $*" >&2
  "$@"
}

rung_unit() {
  run go vet ./...
  run go build ./...
  run go test ./...
  # Benchmark smoke: one iteration of everything, so a benchmark that no
  # longer compiles or trips its own assertions fails fast here rather
  # than in the (slow) bench rung.
  run go test -run '^$' -bench . -benchtime 1x ./...
}

rung_race() {
  run go test -race ./internal/runner/ ./internal/core/ ./internal/reliability/... \
    ./internal/service/ ./internal/workload/ ./internal/trace/ ./cmd/rxlsim/ .
  # Fuzz seed corpus (replay parsing only, no long fuzzing).
  run go test -run 'Fuzz.*' ./internal/trace/
}

rung_differential() {
  # Sweep the built-in topology x workload x fault grid through the
  # fast-path/byte-level differential; any diverging cell (or
  # non-exactly-once RXL delivery) exits non-zero.
  run go run ./cmd/rxlsim -scan -scan-n 25 -ber 1e-5
}

rung_smoke() {
  # Boot the real daemon on a random port, drive the HTTP API the way an
  # operator would, and assert the serving contract — the repeat of an
  # identical job must be a cache hit with a byte-identical result.
  run go build -o rxld ./cmd/rxld
  ./rxld -addr 127.0.0.1:0 -addr-file rxld.addr &
  RXLD_PID=$!
  trap 'kill "$RXLD_PID" 2>/dev/null || true' EXIT
  for _ in $(seq 50); do [ -s rxld.addr ] && break; sleep 0.2; done
  ADDR=$(cat rxld.addr)
  echo "daemon at $ADDR"

  curl -fsS "http://$ADDR/v1/healthz" | jq -e '.ok == true'

  SPEC='{"kind":"grid","seed":1,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":2000}}'
  FIRST=$(curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$SPEC")
  echo "$FIRST" | jq '{id, status, cached}'
  ID=$(echo "$FIRST" | jq -r .id)

  DONE=$(curl -fsS "http://$ADDR/v1/jobs/$ID?wait=60000")
  test "$(echo "$DONE" | jq -r .status)" = done

  SECOND=$(curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$SPEC")
  echo "$SECOND" | jq '{id, status, cached}'
  test "$(echo "$SECOND" | jq -r .cached)" = true
  test "$(echo "$SECOND" | jq -r .status)" = done

  # Byte-identical result documents between the computed first run and
  # the cached repeat.
  echo "$DONE" | jq -cS .result >r1.json
  echo "$SECOND" | jq -cS .result >r2.json
  cmp r1.json r2.json

  curl -fsS "http://$ADDR/v1/statsz" | tee statsz.json | jq .
  jq -e '.cache.hits >= 1 and .jobs_completed >= 2' statsz.json

  kill "$RXLD_PID"
  trap - EXIT
}

rung_bench() {
  # Separate invocations so each benchmark gets enough wall time per rep:
  # FlitTransfer/MeshTransfer/MeshExpress ops are ~0.3-20µs (20000x), the
  # MC inner loop is ~8ms/op (100x is already ~1s/rep), the MC epoch-skip
  # legs span 300ns-350µs/op (2000x keeps the slow leg ~0.7s/rep), the
  # engine pump is ~20ns/op (2000000x), the CRC kernels are 0.1-2.5µs
  # (200000x).
  run go test -run '^$' -bench 'FlitTransfer' \
    -count 5 -benchtime 20000x -benchmem . | tee bench.txt
  run go test -run '^$' -bench 'MeshTransferFastPath' \
    -count 5 -benchtime 20000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'MeshExpressTraversal' \
    -count 5 -benchtime 20000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'EngineBulkAdvance' \
    -count 5 -benchtime 2000000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'MCInnerLoopFastPath' \
    -count 5 -benchtime 100x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'MCEpochSkip' \
    -count 5 -benchtime 2000x -benchmem . | tee -a bench.txt
  run go test -run '^$' -bench 'CRCSlicing' \
    -count 5 -benchtime 200000x -benchmem . | tee -a bench.txt

  jq -r '.output' BENCH_baseline.json >baseline.txt
  if command -v benchstat >/dev/null; then
    benchstat baseline.txt bench.txt || true
  fi

  # Two legs: geomean ns/op vs the committed baseline (absolute, carries
  # runner-fleet noise — hence geomean over count=5 averages), plus
  # machine-invariant within-run ratio floors so the fast-path, express,
  # and epoch-skip wins are gated even when absolute timings drift with
  # the runner's CPU model.
  run go run ./cmd/benchgate -baseline baseline.txt -current bench.txt \
    -max-regress 0.15 \
    -min-ratio 'BenchmarkFlitTransfer/bytelevel,BenchmarkFlitTransfer/fastpath,5' \
    -min-ratio 'BenchmarkMeshTransferFastPath/bytelevel,BenchmarkMeshTransferFastPath/fastpath,5' \
    -min-ratio 'BenchmarkMeshExpressTraversal/fastpath,BenchmarkMeshExpressTraversal/express,1.05' \
    -min-ratio 'BenchmarkMCEpochSkip/pr5-ber1e6,BenchmarkMCEpochSkip/epoch-ber1e9,5' \
    -min-ratio 'BenchmarkCRCSlicing/table,BenchmarkCRCSlicing/by16,4'
}

case "$level" in
unit) rung_unit ;;
race) rung_race ;;
differential) rung_differential ;;
smoke) rung_smoke ;;
bench) rung_bench ;;
all)
  rung_unit
  rung_race
  rung_differential
  rung_smoke
  rung_bench
  ;;
*)
  echo "unknown level '$level' (want unit|race|differential|smoke|bench|all)" >&2
  exit 2
  ;;
esac

echo "verify: level '$level' passed" >&2
