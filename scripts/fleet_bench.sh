#!/usr/bin/env bash
# Fleet scaling curve: boot a fresh N-daemon fleet for each N, drive it
# with rxlbench (zipf-skewed hot set, client-side ring routing), and
# print the 1→N throughput table the README's Fleet section quotes.
#
#   scripts/fleet_bench.sh                 # N = 1 2 3
#   SIZES="1 2 3 4" DUR=15s scripts/fleet_bench.sh
#
# Tunables (env): SIZES, DUR (window per N), CONC (clients), HOT
# (distinct hot configs), REPEAT (hot fraction), GRID_N (payloads/job).
#
# Each fleet starts cold — the same priming + measurement runs against
# every size, so the numbers are comparable. Read the curve for what the
# host can show: on a single core the daemons time-share one CPU, so a
# flat-or-better curve demonstrates that fleet coordination (ring
# routing, peer fetch) costs nothing, while compute-bound scaling needs
# real cores. On a multi-core host the same script shows the capacity
# curve directly.
set -euo pipefail
cd "$(dirname "$0")/.."

SIZES=${SIZES:-"1 2 3"}
DUR=${DUR:-8s}
CONC=${CONC:-16}
HOT=${HOT:-64}
REPEAT=${REPEAT:-0.95}
GRID_N=${GRID_N:-2000}
BASEPORT=${BASEPORT:-18080}

go build -o rxld ./cmd/rxld
go build -o rxlbench.bin ./cmd/rxlbench

declare -a ROWS
PIDS=()
cleanup() { kill "${PIDS[@]}" 2>/dev/null || true; }
trap cleanup EXIT

for N in $SIZES; do
  echo "=== fleet size $N ===" >&2
  URLS=""
  for i in $(seq 1 "$N"); do
    URLS="$URLS${URLS:+,}http://127.0.0.1:$((BASEPORT + i))"
  done
  PIDS=()
  for i in $(seq 1 "$N"); do
    ./rxld -addr "127.0.0.1:$((BASEPORT + i))" \
      -fleet-self "http://127.0.0.1:$((BASEPORT + i))" -fleet-peers "$URLS" &
    PIDS+=($!)
  done
  for i in $(seq 1 "$N"); do
    for _ in $(seq 50); do
      curl -fsS "http://127.0.0.1:$((BASEPORT + i))/v1/healthz" >/dev/null 2>&1 && break
      sleep 0.2
    done
  done

  OUT=$(./rxlbench.bin -fleet "$URLS" -dist zipf -duration "$DUR" \
    -concurrency "$CONC" -hot "$HOT" -repeat "$REPEAT" -n "$GRID_N" -json)
  echo "$OUT" >&2
  RESULT=$(echo "$OUT" | sed -n 's/^RESULT //p')
  ROWS+=("$N $RESULT")

  cleanup
  PIDS=()
  sleep 0.3
done
trap - EXIT

echo
echo "| daemons | req/s | hit rate | p50 | p95 | peer hits |"
echo "|--------:|------:|---------:|----:|----:|----------:|"
for row in "${ROWS[@]}"; do
  N=${row%% *}
  J=${row#* }
  echo "$J" | jq -r --arg n "$N" \
    '"| \($n) | \(.rps | round) | \(.hit_rate * 100 | round)% | \(.p50_us / 1000 * 10 | round / 10) ms | \(.p95_us / 1000 * 10 | round / 10) ms | \(.peer_hits) |"'
done
