# Build rxld (the experiment-serving daemon / fleet front) into a small
# runtime image. The same image serves every fleet role — member, front,
# or standalone — selected purely by flags, so one build feeds the whole
# docker-compose fleet fixture.
#
#   docker build -t rxld .
#   docker run --rm -p 8080:8080 rxld -addr 0.0.0.0:8080
#
# See docker-compose.yml for the 3-daemon + front fleet and OPERATIONS.md
# for the runbook.

FROM golang:1.23-alpine AS build
WORKDIR /src
# The module is dependency-free (stdlib only), so copying go.mod first
# and the tree second still gives maximal layer reuse.
COPY go.mod ./
RUN go mod download
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /rxld ./cmd/rxld

FROM alpine:3.20
# wget ships in busybox — used by the compose healthcheck.
COPY --from=build /rxld /usr/local/bin/rxld
EXPOSE 8080
ENTRYPOINT ["rxld"]
CMD ["-addr", "0.0.0.0:8080"]
