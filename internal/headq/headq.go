// Package headq implements the sliding-head backlog shared by the link
// layer's send queue and the sim engine's monotone event lane: consumers
// advance a head index instead of re-slicing, and producers call Compact
// before each append so the backing array is reused when drained and the
// dead prefix is reclaimed under sustained pipelined load.
package headq

// minHead is the compaction threshold: below it the dead prefix is too
// small to be worth a copy, whatever fraction of the slice it is.
const minHead = 64

// Compact returns (buf, head) with the consumed prefix buf[:head]
// reclaimed when profitable: a fully drained buffer restarts at its
// backing array's front, and a dead prefix that is both larger than
// minHead and the majority of the slice is slid out. Vacated slots are
// zeroed so element references are released to the GC. Memory stays
// O(pending) rather than O(total ever queued) under workloads where the
// queue never fully drains.
func Compact[T any](buf []T, head int) ([]T, int) {
	if head == len(buf) {
		return buf[:0], 0
	}
	if head > minHead && head > len(buf)/2 {
		n := copy(buf, buf[head:])
		var zero T
		for i := n; i < len(buf); i++ {
			buf[i] = zero
		}
		return buf[:n], 0
	}
	return buf, head
}
