package headq

import "testing"

func TestDrainedResetsToFront(t *testing.T) {
	buf := make([]int, 10, 16)
	got, head := Compact(buf, 10)
	if len(got) != 0 || head != 0 || cap(got) != 16 {
		t.Fatalf("drained: len=%d head=%d cap=%d", len(got), head, cap(got))
	}
}

func TestSmallPrefixLeftAlone(t *testing.T) {
	buf := []int{0, 1, 2, 3}
	got, head := Compact(buf, 2)
	if head != 2 || len(got) != 4 {
		t.Fatalf("small prefix moved: len=%d head=%d", len(got), head)
	}
}

func TestDominantPrefixCompacted(t *testing.T) {
	buf := make([]*int, 0, 256)
	for i := 0; i < 200; i++ {
		v := i
		buf = append(buf, &v)
	}
	got, head := Compact(buf, 150)
	if head != 0 || len(got) != 50 {
		t.Fatalf("compacted to len=%d head=%d", len(got), head)
	}
	if *got[0] != 150 || *got[49] != 199 {
		t.Fatalf("pending elements corrupted: %d..%d", *got[0], *got[49])
	}
	// Vacated tail slots must drop their references.
	tail := got[:cap(got)][len(got):150]
	for i, p := range tail {
		if p != nil {
			t.Fatalf("vacated slot %d still holds a reference", i)
		}
	}
}

func TestBelowMinHeadNotCompacted(t *testing.T) {
	buf := make([]int, 65)
	got, head := Compact(buf, 64)
	if head != 64 || len(got) != 65 {
		t.Fatalf("head=64 should be under threshold: len=%d head=%d", len(got), head)
	}
}
