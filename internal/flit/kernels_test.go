package flit

import (
	"math/rand"
	"testing"

	"repro/internal/crc"
)

// TestSealReference pins the bytes a sealed flit carries against the
// portable reference kernels, independent of what Update/Verify dispatch
// to on this host: the CRC field must equal a slicing-by-16 checksum (with
// the ISN fold applied by hand for RXL seals), and the sealed image must
// be a valid FEC codeword under the byte-level reference syndrome loop.
// If the CLMUL or word-parallel paths ever drifted, sealed wire bytes
// would change and this test would catch it at the flit layer.
func TestSealReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	fec := NewFEC()
	for trial := 0; trial < 50; trial++ {
		f := &Flit{}
		f.SetHeader(Header{FSN: uint16(rng.Intn(1024)), Cmd: CmdSeq, Type: TypeData})
		rng.Read(f.Payload())
		seq := uint16(rng.Intn(1024))

		f.SealCXL(fec)
		if want := crc.UpdateSlicing16(0, f.crcInput()); f.CRCField() != want {
			t.Fatalf("trial %d: CXL CRC field %#x != reference %#x", trial, f.CRCField(), want)
		}
		if !fec.VerifyReference(f.protected(), f.FECField()) {
			t.Fatalf("trial %d: CXL seal is not a codeword under reference verify", trial)
		}

		f.SealRXL(seq, fec)
		folded := append([]byte(nil), f.crcInput()...)
		folded[len(folded)-2] ^= byte((seq & crc.SeqMask) >> 8)
		folded[len(folded)-1] ^= byte(seq & crc.SeqMask)
		if want := crc.UpdateSlicing16(0, folded); f.CRCField() != want {
			t.Fatalf("trial %d seq %d: RXL CRC field %#x != reference %#x", trial, seq, f.CRCField(), want)
		}
		if !fec.VerifyReference(f.protected(), f.FECField()) {
			t.Fatalf("trial %d: RXL seal is not a codeword under reference verify", trial)
		}

		// A deferred seal, once materialized, must be byte-identical.
		g := &Flit{}
		g.Raw = f.Raw
		g.SetHeader(f.Header())
		g.DeferSealRXL(seq)
		g.Materialize(fec)
		if g.Raw != f.Raw {
			t.Fatalf("trial %d: materialized deferred seal differs from eager seal", trial)
		}
	}
}
