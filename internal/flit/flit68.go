package flit

import "repro/internal/crc"

// Flit68 is the 68-byte low-latency flit defined by CXL 3.0 for reduced
// speeds (Section 2.2). It carries a 2-byte header, 64-byte payload and a
// 2-byte CRC, with no FEC — at lower signaling rates the raw BER makes FEC
// unnecessary. The paper's evaluation centers on 256B flits ("68B flits are
// limited to lower-speed modes and are unsuitable for high-performance
// configurations", Section 4); Flit68 is provided for completeness and for
// the overhead-comparison benchmarks.
//
// The 16-bit CRC is the truncation of the same CRC-64 engine; its escape
// probability is 2^-16, which is why high-speed modes move to 256B flits.
type Flit68 struct {
	Raw [Size68]byte
}

// Geometry of the 68-byte flit.
const (
	Size68        = 68
	PayloadSize68 = 64
	CRCSize68     = 2

	payload68Off = HeaderSize
	crc68Off     = HeaderSize + PayloadSize68
)

// Header decodes the 2-byte header (same layout as the 256B flit).
func (f *Flit68) Header() Header {
	return UnpackHeader([2]byte{f.Raw[0], f.Raw[1]})
}

// SetHeader encodes h into the header bytes.
func (f *Flit68) SetHeader(h Header) {
	b := h.Pack()
	f.Raw[0] = b[0]
	f.Raw[1] = b[1]
}

// Payload returns the 64-byte payload region.
func (f *Flit68) Payload() []byte { return f.Raw[payload68Off : payload68Off+PayloadSize68] }

// CRCField returns the stored 16-bit CRC.
func (f *Flit68) CRCField() uint16 {
	return uint16(f.Raw[crc68Off])<<8 | uint16(f.Raw[crc68Off+1])
}

// Seal computes and stores the 16-bit CRC over header+payload.
func (f *Flit68) Seal() {
	sum := uint16(crc.Checksum(f.Raw[:crc68Off]))
	f.Raw[crc68Off] = byte(sum >> 8)
	f.Raw[crc68Off+1] = byte(sum)
}

// SealISN computes and stores the 16-bit ISN CRC with seq folded in.
func (f *Flit68) SealISN(seq uint16) {
	sum := uint16(crc.ChecksumISN(seq, f.Raw[:crc68Off]))
	f.Raw[crc68Off] = byte(sum >> 8)
	f.Raw[crc68Off+1] = byte(sum)
}

// CheckCRC verifies the stored CRC (plain semantics).
func (f *Flit68) CheckCRC() bool {
	return uint16(crc.Checksum(f.Raw[:crc68Off])) == f.CRCField()
}

// CheckCRCISN verifies the stored CRC against the expected sequence number.
func (f *Flit68) CheckCRCISN(eseq uint16) bool {
	return uint16(crc.ChecksumISN(eseq, f.Raw[:crc68Off])) == f.CRCField()
}
