package flit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/crc"
)

func TestGeometry(t *testing.T) {
	if HeaderSize+PayloadSize+CRCSize+FECSize != Size {
		t.Fatal("flit regions do not sum to 256")
	}
	if ProtectedSize != 250 {
		t.Fatalf("protected region %d, want 250", ProtectedSize)
	}
}

func TestHeaderPackUnpackRoundTrip(t *testing.T) {
	prop := func(fsn uint16, cmd, typ uint8) bool {
		h := Header{FSN: fsn & FSNMask, Cmd: ReplayCmd(cmd & 3), Type: Type(typ & 0xF)}
		return UnpackHeader(h.Pack()) == h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHeaderFieldsIndependent(t *testing.T) {
	// All 10 FSN bits, 2 Cmd bits and 4 Type bits must survive exactly.
	for fsn := uint16(0); fsn < 1024; fsn += 37 {
		for cmd := 0; cmd < 4; cmd++ {
			for typ := 0; typ < 16; typ++ {
				h := Header{FSN: fsn, Cmd: ReplayCmd(cmd), Type: Type(typ)}
				got := UnpackHeader(h.Pack())
				if got != h {
					t.Fatalf("round trip %+v -> %+v", h, got)
				}
			}
		}
	}
}

func TestHeaderFSNMasked(t *testing.T) {
	h := Header{FSN: 0xFFFF}
	got := UnpackHeader(h.Pack())
	if got.FSN != FSNMask {
		t.Fatalf("FSN not masked: %#x", got.FSN)
	}
}

func TestSealCXLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fec := NewFEC()
	f := &Flit{}
	f.SetHeader(Header{FSN: 5, Cmd: CmdSeq, Type: TypeData})
	rng.Read(f.Payload())
	f.SealCXL(fec)

	if res := f.DecodeFEC(fec); res.Status.String() != "clean" {
		t.Fatalf("fresh flit FEC: %v", res.Status)
	}
	if !f.CheckCRC() {
		t.Fatal("fresh flit CRC failed")
	}
	h := f.Header()
	if h.FSN != 5 || h.Cmd != CmdSeq || h.Type != TypeData {
		t.Fatalf("header mangled: %+v", h)
	}
}

func TestSealRXLRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fec := NewFEC()
	f := &Flit{}
	f.SetHeader(Header{FSN: 0, Cmd: CmdSeq, Type: TypeData})
	rng.Read(f.Payload())
	f.SealRXL(123, fec)

	if res := f.DecodeFEC(fec); res.Status.String() != "clean" {
		t.Fatalf("fresh RXL flit FEC: %v", res.Status)
	}
	if !f.CheckCRCISN(123) {
		t.Fatal("RXL CRC with correct ESeq failed")
	}
	// Every wrong expected sequence number must fail: the ISN guarantee.
	for eseq := uint16(0); eseq < 1024; eseq++ {
		if eseq == 123 {
			continue
		}
		if f.CheckCRCISN(eseq) {
			t.Fatalf("RXL CRC passed with wrong ESeq %d", eseq)
		}
	}
	// Plain CRC check must also fail (seq folded in).
	if f.CheckCRC() {
		t.Fatal("plain CRC passed on ISN-sealed flit")
	}
}

func TestFECCorrectsFlitBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fec := NewFEC()
	f := &Flit{}
	rng.Read(f.Payload())
	f.SetHeader(Header{FSN: 9, Cmd: CmdSeq, Type: TypeData})
	f.SealCXL(fec)
	want := f.Raw

	// 3-byte bursts anywhere in the 256B wire image are corrected.
	for start := 0; start <= Size-3; start += 7 {
		g := f.Clone()
		for i := 0; i < 3; i++ {
			g.Raw[start+i] ^= byte(rng.Intn(255) + 1)
		}
		res := g.DecodeFEC(fec)
		if res.Status.String() == "uncorrectable" {
			t.Fatalf("3-byte burst at %d uncorrectable", start)
		}
		if g.Raw != want {
			t.Fatalf("3-byte burst at %d: wrong correction", start)
		}
		if !g.CheckCRC() {
			t.Fatalf("CRC after correction failed at %d", start)
		}
	}
}

func TestCRCCatchesWhatFECMiscorrects(t *testing.T) {
	// Inject 2-symbol sub-block errors until the FEC miscorrects; the CRC
	// must catch every miscorrection (Section 6.1: flits that bypass FEC
	// detection are validated by the 64-bit CRC).
	rng := rand.New(rand.NewSource(4))
	fec := NewFEC()
	f := &Flit{}
	rng.Read(f.Payload())
	f.SealCXL(fec)

	miscorrections := 0
	for trial := 0; trial < 5000 && miscorrections < 200; trial++ {
		g := f.Clone()
		// Two errors in the same sub-block (positions congruent mod 3).
		p1 := rng.Intn(250)
		p2 := p1
		for p2 == p1 {
			p2 = (p1 + 3*(1+rng.Intn(80))) % 250
		}
		g.Raw[p1] ^= byte(rng.Intn(255) + 1)
		g.Raw[p2] ^= byte(rng.Intn(255) + 1)
		res := g.DecodeFEC(fec)
		if res.Status.String() == "uncorrectable" {
			continue
		}
		if g.Raw == f.Raw {
			continue // FEC restored the original (impossible for 2 errors, but guard)
		}
		miscorrections++
		if g.CheckCRC() {
			t.Fatalf("trial %d: CRC passed a miscorrected flit", trial)
		}
	}
	if miscorrections == 0 {
		t.Fatal("test never exercised a miscorrection; injection scheme broken")
	}
	t.Logf("CRC caught all %d FEC miscorrections", miscorrections)
}

func TestReencodeFECPreservesCRC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fec := NewFEC()
	f := &Flit{}
	rng.Read(f.Payload())
	f.SealRXL(77, fec)
	crcBefore := f.CRCField()
	// Corrupt only the FEC parity, then re-encode (a switch hop).
	f.FECField()[2] ^= 0xFF
	f.ReencodeFEC(fec)
	if f.CRCField() != crcBefore {
		t.Fatal("ReencodeFEC touched the CRC")
	}
	if res := f.DecodeFEC(fec); res.Status.String() != "clean" {
		t.Fatalf("after re-encode: %v", res.Status)
	}
	if !f.CheckCRCISN(77) {
		t.Fatal("end-to-end ISN CRC broken by FEC re-encode")
	}
}

func TestRecomputeCRCBlessesCorruption(t *testing.T) {
	// Demonstrates the baseline-CXL switch vulnerability: internal
	// corruption followed by CRC regeneration is invisible downstream.
	rng := rand.New(rand.NewSource(6))
	fec := NewFEC()
	f := &Flit{}
	rng.Read(f.Payload())
	f.SealCXL(fec)
	f.Payload()[100] ^= 0x42 // switch-internal bit flips
	f.RecomputeCRC()         // CXL egress port re-generates link CRC
	f.ReencodeFEC(fec)
	if !f.CheckCRC() {
		t.Fatal("regenerated CRC should validate the corrupted flit")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := &Flit{}
	f.Payload()[0] = 0xAA
	g := f.Clone()
	g.Payload()[0] = 0xBB
	if f.Payload()[0] != 0xAA {
		t.Fatal("Clone shares storage")
	}
}

func TestPathPass(t *testing.T) {
	f := &Flit{}
	if f.TakePathPass() {
		t.Fatal("fresh flit held a pass")
	}
	f.SetPathPass(2)
	if f.PathPass() != 2 {
		t.Fatalf("PathPass = %d", f.PathPass())
	}
	g := f.Clone()
	for i := 0; i < 2; i++ {
		if !f.TakePathPass() || !g.TakePathPass() {
			t.Fatalf("crossing %d: pass not honored", i)
		}
	}
	if f.TakePathPass() || g.TakePathPass() {
		t.Fatal("pass outlived its granted crossings")
	}

	// Pooled recycling must not leak a pass into the next user.
	p := Get()
	p.SetPathPass(3)
	Release(p)
	if q := Get(); q.PathPass() != 0 {
		t.Fatal("pool leaked a path pass")
	}
}

func TestPathPassRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Flit{}).SetPathPass(256)
}

func TestReplayCmdStrings(t *testing.T) {
	cases := map[ReplayCmd]string{
		CmdSeq: "SEQ", CmdAck: "ACK", CmdNakGoBackN: "NAK-GBN", CmdNakSingle: "NAK-1",
	}
	for cmd, want := range cases {
		if cmd.String() != want {
			t.Errorf("%d.String() = %q, want %q", cmd, cmd.String(), want)
		}
	}
	if ReplayCmd(9).String() != "ReplayCmd(9)" {
		t.Error("unknown cmd string")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{TypeData: "DATA", TypeAck: "ACK", TypeNak: "NAK", TypeIdle: "IDLE"}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if Type(9).String() != "Type(9)" {
		t.Error("unknown type string")
	}
}

func TestFlit68RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := &Flit68{}
	f.SetHeader(Header{FSN: 33, Cmd: CmdSeq, Type: TypeData})
	rng.Read(f.Payload())
	f.Seal()
	if !f.CheckCRC() {
		t.Fatal("fresh 68B flit CRC failed")
	}
	h := f.Header()
	if h.FSN != 33 {
		t.Fatalf("header FSN %d", h.FSN)
	}
	f.Payload()[10] ^= 1
	if f.CheckCRC() {
		t.Fatal("corrupted 68B flit passed CRC")
	}
}

func TestFlit68ISN(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := &Flit68{}
	rng.Read(f.Payload())
	f.SealISN(200)
	if !f.CheckCRCISN(200) {
		t.Fatal("68B ISN CRC with correct seq failed")
	}
	if f.CheckCRCISN(201) {
		t.Fatal("68B ISN CRC passed with wrong seq")
	}
}

func BenchmarkSealCXL(b *testing.B) {
	fec := NewFEC()
	f := &Flit{}
	b.SetBytes(Size)
	for i := 0; i < b.N; i++ {
		f.SealCXL(fec)
	}
}

func BenchmarkSealRXL(b *testing.B) {
	fec := NewFEC()
	f := &Flit{}
	b.SetBytes(Size)
	for i := 0; i < b.N; i++ {
		f.SealRXL(uint16(i), fec)
	}
}

func BenchmarkDecodeFECClean(b *testing.B) {
	fec := NewFEC()
	f := &Flit{}
	f.SealCXL(fec)
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.DecodeFEC(fec)
	}
}

func BenchmarkCheckCRCISN(b *testing.B) {
	fec := NewFEC()
	f := &Flit{}
	f.SealRXL(1, fec)
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.CheckCRCISN(1)
	}
}

// TestCleanVerdictsMatchByteLevelVerify is the verify-skip half of the
// fast-path differential contract: every O(1) answer a clean flit gives
// (CheckCRC, CheckCRCISN, DecodeFEC short-circuits) must agree with the
// pure byte-level verifiers — crc.Verify, crc.VerifyISN, and the
// syndrome-only rs Verify — run over the materialized image. It also pins
// the negative direction: one flipped bit makes every byte-level verifier
// reject what the clean mark would have blessed.
func TestCleanVerdictsMatchByteLevelVerify(t *testing.T) {
	fec := NewFEC()
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		seq  uint16
		isn  bool
	}{
		{"plain", 0, false},
		{"isn-seq0", 0, true},
		{"isn", 513, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := &Flit{}
			f.SetHeader(Header{Type: TypeData})
			rng.Read(f.Payload())
			if tc.isn {
				f.DeferSealRXL(tc.seq)
			} else {
				f.DeferSealCXL()
			}
			cleanCRC, cleanISN := f.CheckCRC(), f.CheckCRCISN(tc.seq)
			f.Materialize(fec)

			if got := crc.Verify(f.CRCField(), f.crcInput()); got != cleanCRC {
				t.Errorf("plain CRC: clean verdict %v, crc.Verify %v", cleanCRC, got)
			}
			if got := crc.VerifyISN(f.CRCField(), tc.seq, f.crcInput()); got != cleanISN {
				t.Errorf("ISN CRC: clean verdict %v, crc.VerifyISN %v", cleanISN, got)
			}
			if !fec.Verify(f.protected(), f.FECField()) {
				t.Error("materialized clean image is not a valid RS codeword")
			}
			if wrong := tc.seq + 1; f.Clean() && crc.VerifyISN(f.CRCField(), wrong, f.crcInput()) {
				t.Error("ISN verify accepted the wrong sequence number")
			}

			f.Payload()[17] ^= 0x40
			f.Taint()
			if crc.Verify(f.CRCField(), f.crcInput()) && crc.VerifyISN(f.CRCField(), tc.seq, f.crcInput()) {
				t.Error("byte-level CRC verify blessed a corrupted image")
			}
			if fec.Verify(f.protected(), f.FECField()) {
				t.Error("syndrome-only RS verify blessed a corrupted image")
			}
		})
	}
}
