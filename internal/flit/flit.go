// Package flit implements the CXL 3.0 256-byte flit format and its RXL
// extension, as laid out in Fig. 3 of the paper:
//
//	┌──────────┬───────────────┬──────────┬──────────┐
//	│ 2B header│ 240B payload  │  8B CRC  │  6B FEC  │
//	└──────────┴───────────────┴──────────┴──────────┘
//
// The 2-byte header packs a 10-bit Flit Sequence Number (FSN), a 2-bit
// ReplayCmd and a 4-bit Type. Under baseline CXL the FSN field is
// multiplexed: it carries the flit's own sequence number when ReplayCmd is
// CmdSeq and an acknowledgment number otherwise — the blind spot the paper
// exploits. Under RXL the FSN only ever carries AckNums (or zero) and the
// sequence number is folded into the CRC (ISN).
//
// The CRC covers header+payload (plus the folded sequence number under
// ISN); the FEC covers header+payload+CRC (250 bytes) with the 3-way
// interleaved single-symbol-correct Reed-Solomon code from internal/rs.
//
// Both coding kernels dispatch on CPU features at startup (CLMUL CRC
// folding, word-parallel RS syndromes; see DESIGN.md §16). The bytes a
// sealed flit carries are identical on every path — TestSealReference
// pins them against the portable reference kernels.
package flit

import (
	"fmt"
	"sync"

	"repro/internal/crc"
	"repro/internal/rs"
)

// Geometry of the 256-byte flit.
const (
	Size          = 256      // total wire bytes
	Bits          = Size * 8 // channel-unit width of one flit
	HeaderSize    = 2
	PayloadSize   = 240
	CRCSize       = 8
	FECSize       = 6
	ProtectedSize = HeaderSize + PayloadSize + CRCSize // FEC-covered region

	headerOff  = 0
	payloadOff = HeaderSize
	crcOff     = HeaderSize + PayloadSize
	fecOff     = ProtectedSize
)

// FSNMask masks the 10-bit flit sequence number.
const FSNMask uint16 = 1<<10 - 1

// Fabric routing tags. Multi-endpoint fabrics (crossbars/stars) route by a
// destination tag carried in the payload; a source tag lets the receiving
// node demultiplex to the right link-layer peer. Both live inside the
// CRC-protected region, so tag corruption is end-to-end detectable under
// RXL. Point-to-point topologies ignore these bytes.
const (
	// RouteOffset is the payload byte holding the destination tag.
	RouteOffset = PayloadSize - 1
	// SrcRouteOffset is the payload byte holding the source tag.
	SrcRouteOffset = PayloadSize - 2
)

// ReplayCmd selects the meaning of the FSN field (Section 4.1).
type ReplayCmd uint8

const (
	// CmdSeq: FSN carries the flit's own explicit sequence number.
	CmdSeq ReplayCmd = 0
	// CmdAck: FSN carries the acknowledgment sequence number (piggyback).
	CmdAck ReplayCmd = 1
	// CmdNakGoBackN: FSN is the last valid received SeqNum; the sender
	// must replay everything after it (go-back-N).
	CmdNakGoBackN ReplayCmd = 2
	// CmdNakSingle: FSN is the last valid received SeqNum; single-flit
	// retry (defined by CXL; the protocols here use go-back-N, §5).
	CmdNakSingle ReplayCmd = 3
)

// String implements fmt.Stringer.
func (c ReplayCmd) String() string {
	switch c {
	case CmdSeq:
		return "SEQ"
	case CmdAck:
		return "ACK"
	case CmdNakGoBackN:
		return "NAK-GBN"
	case CmdNakSingle:
		return "NAK-1"
	default:
		return fmt.Sprintf("ReplayCmd(%d)", uint8(c))
	}
}

// Type is the 4-bit flit type carried in the header.
type Type uint8

const (
	// TypeData carries transaction-layer payload.
	TypeData Type = 0
	// TypeAck is a standalone acknowledgment flit (used when ACK
	// piggybacking is disabled, Section 7.2.2 option 2).
	TypeAck Type = 1
	// TypeNak is a standalone negative acknowledgment requesting replay.
	TypeNak Type = 2
	// TypeIdle fills the link when no payload is pending.
	TypeIdle Type = 3
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeAck:
		return "ACK"
	case TypeNak:
		return "NAK"
	case TypeIdle:
		return "IDLE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Header is the decoded 2-byte flit header.
type Header struct {
	FSN  uint16 // 10-bit sequence or acknowledgment number
	Cmd  ReplayCmd
	Type Type
}

// Pack encodes the header into its 2-byte wire form:
// byte0 = FSN[9:2], byte1 = FSN[1:0] | Cmd<<2 | Type<<4.
func (h Header) Pack() [2]byte {
	fsn := h.FSN & FSNMask
	var b [2]byte
	b[0] = byte(fsn >> 2)
	b[1] = byte(fsn&0x3) | byte(h.Cmd&0x3)<<2 | byte(h.Type&0xF)<<4
	return b
}

// UnpackHeader decodes a 2-byte wire header.
func UnpackHeader(b [2]byte) Header {
	return Header{
		FSN:  uint16(b[0])<<2 | uint16(b[1])&0x3,
		Cmd:  ReplayCmd(b[1] >> 2 & 0x3),
		Type: Type(b[1] >> 4 & 0xF),
	}
}

// sealKind records which CRC semantics a flit's seal (deferred or
// materialized) uses.
type sealKind uint8

const (
	sealNone  sealKind = iota
	sealPlain          // SealCXL: plain CRC over header+payload
	sealISN            // SealRXL: ISN CRC with the folded sequence number
)

// Flit is a 256-byte wire flit. The zero value is a valid idle flit shell;
// call SetHeader/Payload and Seal before transmission.
//
// Beyond the wire image, a flit carries error-event fast-path state that
// never appears on the wire: a seal record (kind and ISN sequence number)
// and a clean mark. A clean flit's image is known to be bit-identical to
// its sealed form — no channel or switch has touched it — so every
// integrity operation (CheckCRC, CheckCRCISN, DecodeFEC, RecomputeCRC,
// ReencodeFEC) short-circuits to its provable outcome in O(1). Anything
// that mutates Raw outside those methods must call Taint (after
// Materialize if the seal is still deferred) or the clean mark lies.
type Flit struct {
	Raw [Size]byte

	kind     sealKind
	isnSeq   uint16
	clean    bool  // image is bit-identical to the sealed image
	deferred bool  // CRC/FEC fields not yet materialized
	pooled   bool  // obtained from Get; recyclable via Release
	pass     uint8 // remaining path-pass hops (shared-schedule grant)
}

// pool recycles flit images across transmissions. The slow path allocates
// one 256B image per flit per transmission otherwise; reuse keeps the
// Monte-Carlo inner loop allocation-free.
var pool = sync.Pool{New: func() interface{} { return new(Flit) }}

// Get returns a zeroed flit from the package pool. Pooled flits are
// recycled by Release at their consumption points (endpoint receive,
// switch drops, fault-hook drops); flits allocated directly are never
// pooled, so mixing both is safe.
func Get() *Flit {
	f := pool.Get().(*Flit)
	*f = Flit{}
	f.pooled = true
	return f
}

// Release returns a pooled flit for reuse. It is a no-op for flits that
// did not come from Get, so termination points may call it
// unconditionally. The caller must not touch the flit afterwards.
func Release(f *Flit) {
	if f == nil || !f.pooled {
		return
	}
	f.pooled = false
	pool.Put(f)
}

// Header decodes the current header bytes.
func (f *Flit) Header() Header {
	return UnpackHeader([2]byte{f.Raw[headerOff], f.Raw[headerOff+1]})
}

// SetHeader encodes h into the header bytes. The flit must be re-Sealed
// afterwards for the CRC and FEC to match.
func (f *Flit) SetHeader(h Header) {
	b := h.Pack()
	f.Raw[headerOff] = b[0]
	f.Raw[headerOff+1] = b[1]
}

// Payload returns the 240-byte payload region as a mutable slice into the
// flit.
func (f *Flit) Payload() []byte { return f.Raw[payloadOff : payloadOff+PayloadSize] }

// CRCField returns the stored 8-byte CRC as a uint64.
func (f *Flit) CRCField() uint64 {
	var v uint64
	for i := 0; i < CRCSize; i++ {
		v = v<<8 | uint64(f.Raw[crcOff+i])
	}
	return v
}

// setCRCField stores the 8-byte CRC.
func (f *Flit) setCRCField(v uint64) {
	for i := CRCSize - 1; i >= 0; i-- {
		f.Raw[crcOff+i] = byte(v)
		v >>= 8
	}
}

// FECField returns the 6-byte FEC parity region as a mutable slice.
func (f *Flit) FECField() []byte { return f.Raw[fecOff : fecOff+FECSize] }

// protected returns the FEC-covered region (header+payload+CRC).
func (f *Flit) protected() []byte { return f.Raw[:ProtectedSize] }

// crcInput returns the CRC-covered region (header+payload).
func (f *Flit) crcInput() []byte { return f.Raw[:crcOff] }

// SealCXL finalizes a baseline CXL flit: plain CRC over header+payload,
// then FEC over the protected region. The sequence number, if any, must
// already be present in the header FSN field. Eager seals leave the flit
// unmarked, so every downstream integrity check runs byte-level — the
// slow-path reference behavior.
func (f *Flit) SealCXL(fec *rs.Interleaved) {
	f.kind = sealPlain
	f.clean = false
	f.deferred = false
	f.setCRCField(crc.Checksum(f.crcInput()))
	fec.Encode(f.protected(), f.FECField())
}

// SealRXL finalizes an RXL flit: ISN CRC over header+payload with seq
// folded in, then FEC over the protected region. The header FSN field
// carries only AckNum (or zero) under RXL; seq never appears on the wire.
func (f *Flit) SealRXL(seq uint16, fec *rs.Interleaved) {
	f.kind = sealISN
	f.isnSeq = seq & FSNMask
	f.clean = false
	f.deferred = false
	f.setCRCField(crc.ChecksumISN(f.isnSeq, f.crcInput()))
	fec.Encode(f.protected(), f.FECField())
}

// DeferSealCXL records plain-CRC seal semantics and marks the flit clean
// without computing the CRC or FEC bytes: as long as the flit stays clean
// nothing ever reads them, and Materialize produces them on demand the
// moment a channel or fault point needs the byte-complete image.
func (f *Flit) DeferSealCXL() {
	f.kind = sealPlain
	f.clean = true
	f.deferred = true
}

// DeferSealRXL is DeferSealCXL with ISN semantics: the sequence number is
// recorded for the deferred CRC and for O(1) clean-path ISN validation.
func (f *Flit) DeferSealRXL(seq uint16) {
	f.kind = sealISN
	f.isnSeq = seq & FSNMask
	f.clean = true
	f.deferred = true
}

// Clean reports whether the image is known to be bit-identical to its
// sealed form.
func (f *Flit) Clean() bool { return f.clean }

// SetPathPass grants the flit `hops` further wire crossings whose channel
// work a shared path schedule has already consumed (phy.SharedSchedule's
// whole-traversal grant). The pass says nothing about the image — it only
// records that the error-event schedule was advanced across those
// crossings up front, so they must not consume it again.
func (f *Flit) SetPathPass(hops int) {
	if hops < 0 || hops > 255 {
		panic("flit: path pass out of range")
	}
	f.pass = uint8(hops)
}

// TakePathPass consumes one granted crossing, reporting whether the flit
// held one. Each wire crossing on a shared-schedule path calls it exactly
// once before any channel work.
func (f *Flit) TakePathPass() bool {
	if f.pass == 0 {
		return false
	}
	f.pass--
	return true
}

// PathPass returns the remaining granted crossings.
func (f *Flit) PathPass() int { return int(f.pass) }

// Deferred reports whether the CRC/FEC fields still await Materialize.
func (f *Flit) Deferred() bool { return f.deferred }

// Taint clears the clean mark; call it after mutating Raw. A deferred
// seal must be materialized first — corrupting an image whose CRC/FEC
// bytes do not exist yet would diverge from byte-level semantics.
func (f *Flit) Taint() {
	if f.deferred {
		panic("flit: Taint before Materialize")
	}
	f.clean = false
}

// Materialize computes the CRC and FEC fields of a deferred seal, making
// the image byte-complete and bit-identical to an eager seal. It is a
// no-op when the seal was never deferred.
func (f *Flit) Materialize(fec *rs.Interleaved) {
	if !f.deferred {
		return
	}
	f.deferred = false
	if f.kind == sealISN {
		f.setCRCField(crc.ChecksumISN(f.isnSeq, f.crcInput()))
	} else {
		f.setCRCField(crc.Checksum(f.crcInput()))
	}
	fec.Encode(f.protected(), f.FECField())
}

// ReencodeFEC recomputes the FEC parity without touching the CRC. Switches
// use this on egress: under RXL the end-to-end CRC passes through untouched
// while FEC is terminated per hop (Section 6.4). A clean deferred flit
// skips the encode — the parity bytes do not exist yet and stay deferred.
func (f *Flit) ReencodeFEC(fec *rs.Interleaved) {
	if f.clean && f.deferred {
		return
	}
	fec.Encode(f.protected(), f.FECField())
}

// DecodeFEC runs the link-layer FEC decoder over the flit, correcting the
// protected region and parity in place where possible. A clean flit is a
// valid codeword by construction, so the decode short-circuits in O(1).
func (f *Flit) DecodeFEC(fec *rs.Interleaved) rs.Result {
	if f.clean {
		return rs.Result{Status: rs.StatusClean}
	}
	return fec.Decode(f.protected(), f.FECField())
}

// CheckCRC verifies the stored CRC against a plain checksum of
// header+payload (baseline CXL semantics). Clean flits resolve in O(1):
// the check passes exactly when the seal used plain semantics (an ISN
// seal with sequence number zero folds nothing and is byte-identical).
func (f *Flit) CheckCRC() bool {
	if f.clean {
		return f.kind == sealPlain || (f.kind == sealISN && f.isnSeq == 0)
	}
	return crc.Checksum(f.crcInput()) == f.CRCField()
}

// CheckCRCISN verifies the stored CRC against the ISN checksum computed
// with the receiver's expected sequence number. A false result means the
// payload was corrupted, the flit is out of sequence, or both — the binary
// verdict ISN trades reordering support for (Section 5).
//
// Clean flits resolve in O(1): two ISN checksums over identical data with
// different 10-bit sequence numbers differ with certainty (the fold is a
// 2-byte burst, which a 64-bit CRC always detects), so the byte-level
// verdict is exactly a sequence-number comparison.
func (f *Flit) CheckCRCISN(eseq uint16) bool {
	if f.clean {
		eseq &= FSNMask
		if f.kind == sealISN {
			return f.isnSeq == eseq
		}
		return eseq == 0 // a plain seal is an ISN seal with seq 0
	}
	return crc.ChecksumISN(eseq, f.crcInput()) == f.CRCField()
}

// RecomputeCRC rewrites the CRC over the current header+payload (plain
// semantics). CXL switches do this on egress after terminating the
// link-layer CRC — the step that leaves switch-internal corruption
// unprotected in baseline CXL (Section 6.3). On a clean flit the rewrite
// is equivalent to re-sealing the untouched image with plain semantics,
// so a deferred seal just switches kind and stays deferred.
func (f *Flit) RecomputeCRC() {
	if f.clean && f.deferred {
		f.kind = sealPlain
		return
	}
	f.setCRCField(crc.Checksum(f.crcInput()))
	if f.clean {
		f.kind = sealPlain
	}
}

// Clone returns a deep copy of the flit, including its fast-path seal
// state and any path pass. Clones never belong to the pool.
func (f *Flit) Clone() *Flit {
	g := &Flit{}
	g.Raw = f.Raw
	g.kind, g.isnSeq, g.clean, g.deferred, g.pass = f.kind, f.isnSeq, f.clean, f.deferred, f.pass
	return g
}

// NewFEC returns a fresh instance of the spec FEC geometry for 256B flits:
// 3-way interleaved, 2 parity symbols per way over the 250-byte protected
// region. Each goroutine/entity needs its own (scratch buffers are reused).
func NewFEC() *rs.Interleaved {
	return rs.MustNewInterleaved(ProtectedSize, 3, 2)
}
