// Package cpu detects the CPU features the coding kernels dispatch on.
//
// It is a deliberately tiny, stdlib-only stand-in for golang.org/x/sys/cpu:
// the simulator's hot byte-level kernels (internal/crc's PCLMULQDQ folding)
// select an implementation at package init based on the flags here, and the
// container image bakes in no external modules. Detection runs the CPUID
// instruction directly (see cpuid_amd64.s); on non-amd64 architectures, or
// under the `purego` build tag, every flag is false and all kernels fall
// back to their portable table-driven reference implementations.
//
// The RXL_PUREGO environment variable (any non-empty value) clears every
// flag at startup, forcing the pure-Go reference kernels without a rebuild —
// the operational escape hatch documented in OPERATIONS.md, and the easiest
// way to A/B the dispatch on a live host.
package cpu

import "os"

// X86 reports the instruction-set extensions of the running amd64 CPU that
// the kernels care about. All fields are false on other architectures and
// under the purego build tag. The flags are written once during package
// initialization and only read afterwards.
var X86 struct {
	// HasPCLMULQDQ: carry-less multiply (the CRC-64 folding kernel).
	HasPCLMULQDQ bool
	// HasSSE41: SSE4.1 (PEXTRQ, used by the folding kernel's epilogue).
	HasSSE41 bool
	// HasSSE42 is detected for completeness (hardware CRC32, unused here).
	HasSSE42 bool
	// HasAVX2 requires both the CPU feature and OS XSAVE support for the
	// YMM state. Detected for future wider kernels; nothing dispatches on
	// it yet.
	HasAVX2 bool
	// HasGFNI: GF(2^8) affine instructions (the ROADMAP's eventual RS
	// lane-multiply target). Detection only; nothing dispatches on it yet.
	HasGFNI bool
}

func init() {
	detect()
	if os.Getenv("RXL_PUREGO") != "" {
		X86.HasPCLMULQDQ = false
		X86.HasSSE41 = false
		X86.HasSSE42 = false
		X86.HasAVX2 = false
		X86.HasGFNI = false
	}
}
