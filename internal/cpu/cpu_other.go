//go:build !amd64 || purego

package cpu

// detectionActive is false in this build: detect below is a no-op.
const detectionActive = false

// detect is a no-op off amd64 and under the purego build tag: every
// feature flag stays false, so all kernels use their portable reference
// implementations.
func detect() {}
