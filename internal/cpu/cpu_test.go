package cpu

import (
	"os"
	"runtime"
	"strings"
	"testing"
)

// TestFlagsConsistent checks the invariants the dispatch layer relies on,
// without assuming anything about the host: flags are always false off
// amd64, and RXL_PUREGO force-clears everything.
func TestFlagsConsistent(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		if X86.HasPCLMULQDQ || X86.HasSSE41 || X86.HasSSE42 || X86.HasAVX2 || X86.HasGFNI {
			t.Fatalf("non-amd64 host reports x86 features: %+v", X86)
		}
		return
	}
	if os.Getenv("RXL_PUREGO") != "" {
		if X86.HasPCLMULQDQ || X86.HasSSE41 || X86.HasSSE42 || X86.HasAVX2 || X86.HasGFNI {
			t.Fatalf("RXL_PUREGO set but features survived: %+v", X86)
		}
	}
	t.Logf("detected: %+v", X86)
}

// TestAgainstProcCPUInfo cross-checks our raw-CPUID detection against the
// kernel's own view on Linux/amd64. The flags /proc/cpuinfo advertises use
// lowercase underscore names (pclmulqdq, sse4_1, sse4_2, avx2, gfni).
func TestAgainstProcCPUInfo(t *testing.T) {
	if runtime.GOOS != "linux" || runtime.GOARCH != "amd64" || !detectionActive {
		t.Skip("cross-check needs linux/amd64 /proc/cpuinfo and active detection")
	}
	if os.Getenv("RXL_PUREGO") != "" {
		t.Skip("RXL_PUREGO overrides detection")
	}
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		t.Skipf("cannot read /proc/cpuinfo: %v", err)
	}
	var flagsLine string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "flags") {
			flagsLine = line
			break
		}
	}
	if flagsLine == "" {
		t.Skip("/proc/cpuinfo has no flags line")
	}
	kernel := map[string]bool{}
	for _, f := range strings.Fields(flagsLine) {
		kernel[f] = true
	}
	checks := []struct {
		name string
		ours bool
	}{
		{"pclmulqdq", X86.HasPCLMULQDQ},
		{"sse4_1", X86.HasSSE41},
		{"sse4_2", X86.HasSSE42},
		{"gfni", X86.HasGFNI},
	}
	for _, c := range checks {
		if c.ours != kernel[c.name] {
			t.Errorf("%s: cpuid says %v, /proc/cpuinfo says %v", c.name, c.ours, kernel[c.name])
		}
	}
	// AVX2 is the one flag where we additionally require OS YMM-state
	// support, so ours may legitimately be false while the kernel flag is
	// set (e.g. restrictive XCR0 in a VM). The reverse would be a bug.
	if X86.HasAVX2 && !kernel["avx2"] {
		t.Error("we report AVX2 but /proc/cpuinfo does not list it")
	}
}
