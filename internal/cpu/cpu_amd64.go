//go:build amd64 && !purego

package cpu

// cpuid executes the CPUID instruction with the given leaf (EAX) and
// subleaf (ECX). Implemented in cpuid_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the XCR0 state-enable mask).
// Only valid when CPUID leaf 1 reports OSXSAVE. Implemented in
// cpuid_amd64.s.
func xgetbv() (eax, edx uint32)

// detectionActive reports that this build really interrogates the CPU
// (as opposed to the purego/non-amd64 no-op detect).
const detectionActive = true

// CPUID leaf 1 ECX feature bits.
const (
	leaf1PCLMULQDQ = 1 << 1
	leaf1SSE41     = 1 << 19
	leaf1SSE42     = 1 << 20
	leaf1OSXSAVE   = 1 << 27
)

// CPUID leaf 7 subleaf 0 feature bits.
const (
	leaf7EBXAVX2 = 1 << 5
	leaf7ECXGFNI = 1 << 8
)

func detect() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	X86.HasPCLMULQDQ = ecx1&leaf1PCLMULQDQ != 0
	X86.HasSSE41 = ecx1&leaf1SSE41 != 0
	X86.HasSSE42 = ecx1&leaf1SSE42 != 0

	// YMM-state kernels additionally need the OS to have enabled XMM+YMM
	// saving (XCR0 bits 1 and 2); a CPU flag alone is not enough.
	osAVX := false
	if ecx1&leaf1OSXSAVE != 0 {
		xcr0, _ := xgetbv()
		osAVX = xcr0&0x6 == 0x6
	}
	if maxLeaf >= 7 {
		_, ebx7, ecx7, _ := cpuid(7, 0)
		X86.HasAVX2 = osAVX && ebx7&leaf7EBXAVX2 != 0
		X86.HasGFNI = ecx7&leaf7ECXGFNI != 0
	}
}
