package reliability

import "testing"

// TestMeasureFERScheduleMatchesByteLevel proves the schedule-only
// estimator is a drop-in replacement for the byte-level loop: identical
// seeds must give identical samples (not just statistically equivalent
// ones), because Traverse consumes exactly the RNG stream Corrupt would.
func TestMeasureFERScheduleMatchesByteLevel(t *testing.T) {
	for _, ber := range []float64{1e-3, 1e-4, 1e-5, 1e-6} {
		for seed := uint64(1); seed <= 5; seed++ {
			byteLevel := MeasureFER(ber, 30000, seed)
			schedule := MeasureFERSchedule(ber, 30000, seed)
			if byteLevel != schedule {
				t.Fatalf("BER %g seed %d: byte-level %+v, schedule %+v",
					ber, seed, byteLevel, schedule)
			}
		}
	}
}

func TestMeasureFERSchedulePanicsOnZeroFlits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero flits")
		}
	}()
	MeasureFERSchedule(1e-6, 0, 1)
}
