package reliability

import (
	"math"
	"testing"
)

// TestMeasureFERPathScheduleMatchesByteLevel: the bulk path-schedule walk
// must count exactly the flits the per-hop byte-level reference counts,
// across hop depths and BERs.
func TestMeasureFERPathScheduleMatchesByteLevel(t *testing.T) {
	for _, hops := range []int{1, 3, 7} {
		for _, ber := range []float64{1e-4, 1e-5, 1e-6} {
			ref := MeasureFERPath(ber, hops, 60000, 11)
			got := MeasureFERPathSchedule(ber, hops, 60000, 11)
			if ref != got {
				t.Errorf("hops=%d ber=%g: schedule sample diverges:\nbyte  %+v\nsched %+v", hops, ber, ref, got)
			}
		}
	}
}

// TestMeasureFERPathOneHopMatchesSingleLink: a 1-hop path is the single
// link — the path estimator must reproduce MeasureFERSchedule exactly.
func TestMeasureFERPathOneHopMatchesSingleLink(t *testing.T) {
	const ber, flits, seed = 1e-5, 200000, 3
	link := MeasureFERSchedule(ber, flits, seed)
	path := MeasureFERPathSchedule(ber, 1, flits, seed)
	if path.Erroneous != link.Erroneous || path.FER != link.FER {
		t.Fatalf("1-hop path %+v != single link %+v", path, link)
	}
}

// TestMeasureFERPathTracksAnalytic: the measured multi-hop FER lands
// within 4σ of 1-(1-p)^(H·n) at a BER where events are plentiful.
func TestMeasureFERPathTracksAnalytic(t *testing.T) {
	const ber, hops, flits = 1e-5, 5, 400000
	s := MeasureFERPathSchedule(ber, hops, flits, 17)
	sigma := math.Sqrt(s.Analytic * (1 - s.Analytic) / float64(flits))
	if d := math.Abs(s.FER - s.Analytic); d > 4*sigma {
		t.Fatalf("path FER %g vs analytic %g: off by %.1fσ", s.FER, s.Analytic, d/sigma)
	}
}

// TestMeasureFERPathGuards pins the argument panics.
func TestMeasureFERPathGuards(t *testing.T) {
	for name, fn := range map[string]func(){
		"byte-flits":  func() { MeasureFERPath(1e-6, 3, 0, 1) },
		"byte-hops":   func() { MeasureFERPath(1e-6, 0, 10, 1) },
		"sched-flits": func() { MeasureFERPathSchedule(1e-6, 3, 0, 1) },
		"sched-hops":  func() { MeasureFERPathSchedule(1e-6, 0, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestMeasureFERPathEpochSkipMatchesGrantWalk: the epoch-skipping
// estimator and the frozen pre-epoch-skip grant walk are the same
// measurement — identical samples for identical seeds across hop depths
// and BERs (they consume the same error-event stream, one jumping clean
// crossings arithmetically, the other walking them).
func TestMeasureFERPathEpochSkipMatchesGrantWalk(t *testing.T) {
	for _, hops := range []int{1, 3, 7, 14} {
		for _, ber := range []float64{1e-4, 1e-5, 1e-6} {
			ref := MeasureFERPathGrantWalk(ber, hops, 60000, 11)
			got := MeasureFERPathSchedule(ber, hops, 60000, 11)
			if ref != got {
				t.Errorf("hops=%d ber=%g: epoch skip diverges from grant walk:\nwalk %+v\nskip %+v", hops, ber, ref, got)
			}
		}
	}
}
