// Package reliability implements the paper's analytic reliability model
// (Section 7.1): flit error rates, undetected-failure rates, and FIT values
// for CXL and RXL across direct and multi-level switched topologies.
//
// The paper's evaluation is analytic because the interesting events are far
// too rare to sample directly — an undetected data failure occurs roughly
// once per 1.6e24 flits. This package reproduces every equation (Eq. 1–10)
// as a closed form, and the companion montecarlo.go provides *staged*
// estimators that validate each conditional stage of the model at feasible
// rates (flit error rates at accelerated BER, FEC detection fractions by
// burst length) so the composition can be trusted without ever sampling a
// 1e-24 event.
//
// Terminology follows the paper:
//
//	FER      flit error rate: P(flit has ≥1 bit error) — Eq. 1
//	FER_UC   uncorrectable flit error rate after FEC — Eq. 2 (PCIe 6.0 bound)
//	FER_UD   undetected flit error rate after CRC — Eq. 4 / Eq. 9
//	FIT      failures in time: expected failures per 1e9 device-hours — Eq. 5
package reliability

import (
	"fmt"
	"math"

	"repro/internal/flit"
)

// Paper-fixed constants (Section 7.1).
const (
	// DefaultBER is CXL 3.0's relaxed bit error rate tolerance (1e-6).
	DefaultBER = 1e-6

	// FlitBits is the size of a 256B flit in bits.
	FlitBits = flit.Bits

	// DefaultFERUC is the uncorrectable flit error rate after FEC. The
	// PCIe 6.0 standard sets this upper bound (Eq. 2).
	DefaultFERUC = 3.0e-5

	// DefaultPCoalescing is the ACK coalescing level used throughout the
	// paper's switched analysis: one in ten flits carries an AckNum
	// (Section 7.1.2).
	DefaultPCoalescing = 0.1

	// DefaultFlitsPerSecond is the flit rate of a full-speed ×16 CXL 3.0
	// link: 256B flits every 2 ns (Section 7.1.1).
	DefaultFlitsPerSecond = 500e6

	// CRCEscape is the undetected-error probability of the 64-bit CRC for
	// errors beyond its guaranteed detection classes (Section 4.1).
	CRCEscape = 1.0 / (1 << 63) / 2 // 2^-64

	// FITHoursScale converts a per-hour failure rate to FIT (failures per
	// one billion hours).
	FITHoursScale = 1e9

	// SecondsPerHour is used when converting per-flit rates to per-hour.
	SecondsPerHour = 3600
)

// Params collects the model inputs. The zero value is not useful; start
// from DefaultParams and override fields as needed.
type Params struct {
	// BER is the physical-layer bit error rate.
	BER float64
	// FlitBits is the flit size in bits (2048 for 256B flits).
	FlitBits int
	// FERUC is the uncorrectable flit error rate after FEC.
	FERUC float64
	// PCoalescing is the fraction of flits carrying an AckNum instead of
	// their own sequence number (CXL with piggybacking).
	PCoalescing float64
	// FlitsPerSecond is the link's flit rate.
	FlitsPerSecond float64
	// CRCEscape is the CRC's undetected-error probability for errors
	// beyond its guaranteed classes.
	CRCEscape float64
}

// DefaultParams returns the parameter set used for every headline number in
// Section 7.1.
func DefaultParams() Params {
	return Params{
		BER:            DefaultBER,
		FlitBits:       FlitBits,
		FERUC:          DefaultFERUC,
		PCoalescing:    DefaultPCoalescing,
		FlitsPerSecond: DefaultFlitsPerSecond,
		CRCEscape:      CRCEscape,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.BER < 0 || p.BER > 1:
		return fmt.Errorf("reliability: BER %g out of [0,1]", p.BER)
	case p.FlitBits <= 0:
		return fmt.Errorf("reliability: FlitBits %d must be positive", p.FlitBits)
	case p.FERUC < 0 || p.FERUC > 1:
		return fmt.Errorf("reliability: FERUC %g out of [0,1]", p.FERUC)
	case p.PCoalescing < 0 || p.PCoalescing > 1:
		return fmt.Errorf("reliability: PCoalescing %g out of [0,1]", p.PCoalescing)
	case p.FlitsPerSecond <= 0:
		return fmt.Errorf("reliability: FlitsPerSecond %g must be positive", p.FlitsPerSecond)
	case p.CRCEscape < 0 || p.CRCEscape > 1:
		return fmt.Errorf("reliability: CRCEscape %g out of [0,1]", p.CRCEscape)
	}
	return nil
}

// FER returns the flit error rate for independent bit errors (Eq. 1):
//
//	FER = 1 - (1-BER)^flit_size
//
// With BER=1e-6 and 2048-bit flits this is ≈ 2.0e-3: one flit in five
// hundred arrives with at least one bit error.
func (p Params) FER() float64 {
	// expm1/log1p keep precision for the tiny BERs this model sweeps.
	return -math.Expm1(float64(p.FlitBits) * math.Log1p(-p.BER))
}

// PCorrect returns the fraction of erroneous flits the FEC corrects
// (Eq. 3):
//
//	p_correct = 1 - FER_UC / FER
//
// With the default parameters this exceeds 98.5%.
func (p Params) PCorrect() float64 {
	fer := p.FER()
	if fer == 0 {
		return 1
	}
	return 1 - p.FERUC/fer
}

// FERUndetectedDirect returns the undetected flit error rate for a direct
// connection (Eq. 4): uncorrectable flits that also slip past the 64-bit
// CRC.
//
//	FER_UD = FER_UC × 2^-64 ≈ 1.6e-24
//
// This is an upper bound: burst errors of 64 bits or fewer are detected
// with certainty.
func (p Params) FERUndetectedDirect() float64 {
	return p.FERUC * p.CRCEscape
}

// FIT converts a per-flit failure rate to Failures In Time — expected
// failures per one billion device-hours (Eq. 5):
//
//	FIT = rate × flits/s × 3600 × 1e9
func (p Params) FIT(perFlitRate float64) float64 {
	return perFlitRate * p.FlitsPerSecond * SecondsPerHour * FITHoursScale
}

// FITDirect returns the device FIT for a direct CXL (or RXL) connection
// (Eq. 5): ≈ 2.9e-3 with default parameters — far below the few-hundred
// FIT budget of server-grade devices.
func (p Params) FITDirect() float64 {
	return p.FIT(p.FERUndetectedDirect())
}

// FERDrop returns the rate of flits silently dropped by the switches on a
// path with `levels` switching levels (Eq. 6 generalized). Each switch
// discards the flits found uncorrectable on its ingress link, so drops
// accumulate linearly with the number of levels:
//
//	FER_drop = levels × FER_UC
func (p Params) FERDrop(levels int) float64 {
	if levels < 0 {
		panic("reliability: negative switching levels")
	}
	return float64(levels) * p.FERUC
}

// FEROrder returns the ordering-failure rate of baseline CXL in a switched
// topology (Eq. 7 generalized to multi-level): a dropped flit becomes an
// undetected ordering violation when the next flit carries an AckNum
// instead of its own sequence number.
//
//	FER_order = FER_drop × p_coalescing
//
// With one switch and p_coalescing = 0.1 this is 3.0e-6 — twenty orders of
// magnitude above the undetected-data rate.
func (p Params) FEROrder(levels int) float64 {
	return p.FERDrop(levels) * p.PCoalescing
}

// FITCXL returns the device FIT of baseline CXL at the given number of
// switching levels. Level 0 is the direct connection (Eq. 5); with one or
// more switches the ordering-failure mode dominates (Eq. 8):
//
//	FIT = FER_order × flits/s × 3600 × 1e9 ≈ 5.4e15 at one level
func (p Params) FITCXL(levels int) float64 {
	if levels == 0 {
		return p.FITDirect()
	}
	return p.FIT(p.FEROrder(levels))
}

// FERUndetectedRXL returns the undetected flit error rate of RXL at the
// given number of switching levels (Eq. 9 generalized). ISN detects every
// drop, so ordering failures are eliminated; the only residual failure is
// corrupted data escaping the end-to-end CRC. Each of the levels+1 links
// contributes uncorrectable errors at rate FER_UC, and retried flits face
// the same exposure once more — hence the (1 + FER_UC) factor of Eq. 9:
//
//	FER_UD = (levels+1) × FER_UC × (1 + FER_UC) × 2^-64 ≈ 1.6e-24
//
// (Eq. 9 prints the leading FER_UC factor inside the parenthesis; the
// paper's numeric value 1.6e-24 confirms the intended form used here.)
func (p Params) FERUndetectedRXL(levels int) float64 {
	if levels < 0 {
		panic("reliability: negative switching levels")
	}
	return float64(levels+1) * p.FERUC * (1 + p.FERUC) * p.CRCEscape
}

// FITRXL returns the device FIT of RXL at the given number of switching
// levels (Eq. 10): ≈ 2.9e-3 at one level, rising only linearly with the
// number of links — "nearly unchanged" on the paper's log scale.
func (p Params) FITRXL(levels int) float64 {
	return p.FIT(p.FERUndetectedRXL(levels))
}

// Improvement returns the FIT ratio CXL/RXL at the given level — the
// paper's ">1e18 times lower" claim at one switching level.
func (p Params) Improvement(levels int) float64 {
	r := p.FITRXL(levels)
	if r == 0 {
		return math.Inf(1)
	}
	return p.FITCXL(levels) / r
}

// Point is one x-position of the Fig. 8 comparison.
type Point struct {
	// Levels is the number of switching levels (0 = direct connection).
	Levels int
	// FITCXL and FITRXL are the device FIT values of the two protocols.
	FITCXL float64
	FITRXL float64
}

// Fig8 returns the CXL-vs-RXL FIT series of Fig. 8 for switching levels
// 0..maxLevels inclusive.
func (p Params) Fig8(maxLevels int) []Point {
	if maxLevels < 0 {
		panic("reliability: negative maxLevels")
	}
	pts := make([]Point, maxLevels+1)
	for l := 0; l <= maxLevels; l++ {
		pts[l] = Point{Levels: l, FITCXL: p.FITCXL(l), FITRXL: p.FITRXL(l)}
	}
	return pts
}

// ExpectedErroneousFlitsPerSecond returns the headline "1 million erroneous
// flits out of 500 million flits per second" illustration of Section 7.1.1.
func (p Params) ExpectedErroneousFlitsPerSecond() float64 {
	return p.FER() * p.FlitsPerSecond
}
