package reliability

import (
	"repro/internal/flit"
	"repro/internal/phy"
)

// CRC-width ablation. The analytic model's stage 4 — P(CRC misses an
// arbitrary corruption) = 2^-k for a k-bit CRC — cannot be sampled at
// k=64 (2^-64 ≈ 5.4e-20), but it *can* at k=16: the 68-byte low-latency
// flit's CRC escapes once per ~65536 corruptions, well within Monte-Carlo
// reach. Measuring the 16-bit escape rate empirically validates the 2^-k
// scaling the 64-bit bound extrapolates, and quantifies why high-speed
// modes need the 256B flit's 64-bit CRC.

// EscapeSample is the outcome of a CRC escape-rate measurement.
type EscapeSample struct {
	Trials    int
	Escapes   int     // corruptions the CRC failed to detect
	Rate      float64 // Escapes / Trials
	Analytic  float64 // 2^-k
	SeqEscape int     // trials where a wrong *sequence number* escaped (ISN variant)
}

// MeasureCRC16Escape corrupts sealed 68-byte flits with random multi-byte
// garbage (beyond the CRC's guaranteed detection classes) and counts
// undetected corruptions. With ≥1e6 trials the measured rate should land
// near 2^-16 ≈ 1.526e-5.
func MeasureCRC16Escape(trials int, seed uint64) EscapeSample {
	if trials <= 0 {
		panic("reliability: MeasureCRC16Escape needs positive trials")
	}
	rng := phy.NewRNG(seed)
	out := EscapeSample{Trials: trials, Analytic: 1.0 / 65536}
	var f flit.Flit68
	for i := 0; i < trials; i++ {
		rng.Fill(f.Payload())
		f.Seal()
		// Replace a random 12-byte span with random bytes: far beyond
		// any guaranteed detection class, so detection is the generic
		// 1-2^-16 case. Ensure at least one byte actually changes.
		start := rng.Intn(flit.PayloadSize68 - 12)
		changed := false
		for b := 0; b < 12; b++ {
			old := f.Payload()[start+b]
			f.Payload()[start+b] = rng.Byte()
			changed = changed || f.Payload()[start+b] != old
		}
		if !changed {
			f.Payload()[start] ^= rng.NonzeroByte()
		}
		if f.CheckCRC() {
			out.Escapes++
		}
	}
	out.Rate = float64(out.Escapes) / float64(trials)
	return out
}

// MeasureISN16SeqEscape measures the ISN analogue: the probability that a
// flit sealed with one sequence number passes the check against a
// *different* expected sequence number. For a good CRC this is also 2^-k;
// with the 10-bit sequence space folded into distinct low bits of the
// message, a wrong sequence number always perturbs the checksum, so the
// measured rate must be exactly zero for k=16 ≥ 10 (every single-field
// difference is within the CRC's guaranteed detection of short bursts).
func MeasureISN16SeqEscape(trials int, seed uint64) EscapeSample {
	if trials <= 0 {
		panic("reliability: MeasureISN16SeqEscape needs positive trials")
	}
	rng := phy.NewRNG(seed)
	out := EscapeSample{Trials: trials, Analytic: 0}
	var f flit.Flit68
	for i := 0; i < trials; i++ {
		rng.Fill(f.Payload())
		seq := uint16(rng.Intn(1024))
		wrong := uint16(rng.Intn(1024))
		if wrong == seq {
			wrong = (wrong + 1) % 1024
		}
		f.SealISN(seq)
		if f.CheckCRCISN(wrong) {
			out.SeqEscape++
		}
	}
	return out
}
