package reliability

// Parallel Monte-Carlo stages on the sharded runner. Each estimator splits
// its trial budget across a fixed shard count (a property of the job, not
// of the machine), runs every shard on its own RNG stream derived from the
// pool's base seed and the shard index, and merges the per-shard counters
// with a commutative sum. The merged sample is therefore bit-identical at
// workers=1, workers=4, and workers=NumCPU — parallelism changes wall
// clock, never statistics.

import (
	"context"
	"fmt"

	"repro/internal/runner"
)

// DefaultShards is the shard count the CLIs use when none is specified:
// fine enough to keep dozens of workers busy, coarse enough that per-shard
// setup (FEC tables, channel state) stays negligible.
const DefaultShards = 64

// MeasureFERSharded is MeasureFER split across `shards` runner shards.
// The flit budget is partitioned with runner.Split and each shard pushes
// its quota through a channel seeded from the pool's base seed and the
// shard index. The merged sample is bit-identical at any worker count.
// Shards run on the error-event schedule (MeasureFERSchedule), which
// produces bit-identical samples to the byte-level loop at a fraction of
// the cost — see BenchmarkMCInnerLoopFastPath.
func MeasureFERSharded(ctx context.Context, pool runner.Pool, ber float64, flits, shards int) (FERSample, error) {
	if flits <= 0 || shards <= 0 {
		return FERSample{}, fmt.Errorf("reliability: MeasureFERSharded needs positive flits (%d) and shards (%d)", flits, shards)
	}
	quota := runner.Split(flits, shards)
	samples, err := runner.Map(ctx, pool, shards, func(ctx context.Context, s runner.Shard) (FERSample, error) {
		if quota[s.Index] == 0 {
			return FERSample{}, nil
		}
		return MeasureFERSchedule(ber, quota[s.Index], s.Seed), nil
	})
	if err != nil {
		return FERSample{}, err
	}
	return mergeFERSamples(samples, ber), nil
}

// mergeFERSamples sums per-shard counts, recomputes the merged rate, and
// attaches the Eq. 1 analytic value at the measurement BER.
func mergeFERSamples(samples []FERSample, ber float64) FERSample {
	merged := runner.Reduce(samples, FERSample{}, func(a FERSample, b FERSample) FERSample {
		a.Flits += b.Flits
		a.Erroneous += b.Erroneous
		return a
	})
	if merged.Flits > 0 {
		merged.FER = float64(merged.Erroneous) / float64(merged.Flits)
	}
	p := DefaultParams()
	p.BER = ber
	merged.Analytic = p.FER()
	return merged
}

// MeasureFECBurstSharded is MeasureFECBurst split across `shards` runner
// shards, merging outcome counters with a commutative sum.
func MeasureFECBurstSharded(ctx context.Context, pool runner.Pool, burstLen, trials, shards int) (FECOutcome, error) {
	if burstLen <= 0 || trials <= 0 || shards <= 0 {
		return FECOutcome{}, fmt.Errorf("reliability: MeasureFECBurstSharded needs positive burst length (%d), trials (%d) and shards (%d)", burstLen, trials, shards)
	}
	quota := runner.Split(trials, shards)
	outcomes, err := runner.Map(ctx, pool, shards, func(ctx context.Context, s runner.Shard) (FECOutcome, error) {
		if quota[s.Index] == 0 {
			return FECOutcome{}, nil
		}
		return MeasureFECBurst(burstLen, quota[s.Index], s.Seed), nil
	})
	if err != nil {
		return FECOutcome{}, err
	}
	return runner.Reduce(outcomes, FECOutcome{}, func(a FECOutcome, b FECOutcome) FECOutcome {
		a.Trials += b.Trials
		a.Clean += b.Clean
		a.Corrected += b.Corrected
		a.Detected += b.Detected
		a.Miscorrected += b.Miscorrected
		return a
	}), nil
}

// MCBERPoint is one x-position of a Monte-Carlo BER sweep: the measured
// flit error rate against the Eq. 1 closed form at the same BER.
type MCBERPoint struct {
	BER    float64
	Sample FERSample
}

// MCBERSweep measures the flit error rate at each BER on the sharded
// runner — the Monte-Carlo cross-check of the analytic BERSweep. Each
// point gets `shardsPerPoint` shards of `flitsPerPoint` total flits; the
// whole sweep is one flat job set, so points and shards fill the pool
// together. Results are in BER order and bit-identical at any worker
// count.
func MCBERSweep(ctx context.Context, pool runner.Pool, bers []float64, flitsPerPoint, shardsPerPoint int) ([]MCBERPoint, error) {
	if flitsPerPoint <= 0 || shardsPerPoint <= 0 {
		return nil, fmt.Errorf("reliability: MCBERSweep needs positive flits per point (%d) and shards per point (%d)", flitsPerPoint, shardsPerPoint)
	}
	quota := runner.Split(flitsPerPoint, shardsPerPoint)
	n := len(bers) * shardsPerPoint
	samples, err := runner.Map(ctx, pool, n, func(ctx context.Context, s runner.Shard) (FERSample, error) {
		ber := bers[s.Index/shardsPerPoint]
		q := quota[s.Index%shardsPerPoint]
		if q == 0 {
			return FERSample{}, nil
		}
		return MeasureFERSchedule(ber, q, s.Seed), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]MCBERPoint, len(bers))
	for i, ber := range bers {
		out[i] = MCBERPoint{BER: ber, Sample: mergeFERSamples(samples[i*shardsPerPoint:(i+1)*shardsPerPoint], ber)}
	}
	return out, nil
}

// StagedSharded runs the full staged Monte-Carlo estimate on the runner:
// stage 1 (FER at an accelerated BER) and stages 2–3 (FEC decode outcomes
// under burst injection), composed with the analytic stage 4 into the
// end-to-end StagedEstimate. This is the parallel form of the
// cross-checks cmd/sweep and cmd/fitcalc print. The FEC stage runs on a
// base seed derived past the FER stage's shard range, so the two
// measurements consume independent RNG streams.
func StagedSharded(ctx context.Context, pool runner.Pool, accelBER float64, flits, burstLen, trials, shards int) (*StagedEstimate, error) {
	fer, err := MeasureFERSharded(ctx, pool, accelBER, flits, shards)
	if err != nil {
		return nil, err
	}
	fecPool := pool
	fecPool.BaseSeed = runner.ShardSeed(pool.BaseSeed, shards)
	fec, err := MeasureFECBurstSharded(ctx, fecPool, burstLen, trials, shards)
	if err != nil {
		return nil, err
	}
	p := DefaultParams()
	est := &StagedEstimate{
		// Stage 1: rescale the accelerated measurement back to the
		// nominal BER by the analytic ratio, as montecarlo.go documents.
		FER: fer.FER / fer.Analytic * p.FER(),
		// Stage 2 is the PCIe 6.0 spec bound (Eq. 2): the full error mix
		// at nominal BER is dominated by correctable single-bit events,
		// so P(uncorrectable | erroneous) is taken from the spec, not
		// sampled.
		PUncorrectable: p.FERUC / p.FER(),
		// Stage 3 measured: P(FEC misses | uncorrectable) from the burst
		// decode outcomes (1 − detection rate; ≈1/3 for 4-symbol bursts).
		PFECMiss:       1 - fec.DetectionRate(),
		PCoalescing:    p.PCoalescing,
		CRCEscape:      p.CRCEscape,
		FlitsPerSecond: p.FlitsPerSecond,
	}
	est.Compose()
	return est, nil
}
