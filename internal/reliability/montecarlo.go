package reliability

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/rs"
)

// This file provides the staged Monte-Carlo estimators that back the
// analytic model. Directly sampling an undetected failure (≈1.6e-24 per
// flit) is impossible, so the chain of conditional probabilities is
// measured stage by stage at rates where events actually occur:
//
//	stage 1  P(flit erroneous)                — accelerated BER, phy.Channel
//	stage 2  P(uncorrectable | erroneous)     — real FEC decode on flits
//	stage 3  P(FEC misses | uncorrectable)    — burst injection into RS codec
//	stage 4  P(CRC misses | FEC missed)       — analytic 2^-64 (validated by
//	                                            the exhaustive burst/random
//	                                            tests in internal/crc)
//
// Composing measured stages 1–3 with the analytic stage 4 reproduces the
// closed forms of reliability.go with simulation-grade evidence.

// FERSample is the result of a Monte-Carlo flit error rate measurement.
type FERSample struct {
	Flits     int     // flits pushed through the channel
	Erroneous int     // flits with at least one flipped bit
	FER       float64 // Erroneous / Flits
	Analytic  float64 // Eq. 1 at the same BER for comparison
}

// MeasureFER pushes `flits` flit images through a BER channel and counts
// how many are corrupted, cross-checking Eq. 1. Use an accelerated BER
// (1e-4..1e-3) so the sample contains thousands of events.
func MeasureFER(ber float64, flits int, seed uint64) FERSample {
	if flits <= 0 {
		panic("reliability: MeasureFER needs at least one flit")
	}
	p := DefaultParams()
	p.BER = ber
	ch := phy.NewChannel(ber, 0, phy.NewRNG(seed))
	buf := make([]byte, FlitBits/8)
	bad := 0
	for i := 0; i < flits; i++ {
		for j := range buf {
			buf[j] = 0
		}
		if ch.Corrupt(buf) > 0 {
			bad++
		}
	}
	return FERSample{
		Flits:     flits,
		Erroneous: bad,
		FER:       float64(bad) / float64(flits),
		Analytic:  p.FER(),
	}
}

// MeasureFERSchedule is MeasureFER on the error-event schedule: instead of
// zeroing and corrupting a flit image per trial, it walks the channel's
// pre-drawn error schedule with phy.Channel.Traverse, so clean flits cost
// O(1) with zero RNG draws. The channel consumes exactly the random
// stream MeasureFER would, so identical seeds give identical samples —
// proven by TestMeasureFERScheduleMatchesByteLevel — at one-to-two orders
// of magnitude higher trial throughput at production BERs (Fig. 8 tails).
func MeasureFERSchedule(ber float64, flits int, seed uint64) FERSample {
	if flits <= 0 {
		panic("reliability: MeasureFERSchedule needs at least one flit")
	}
	p := DefaultParams()
	p.BER = ber
	ch := phy.NewChannel(ber, 0, phy.NewRNG(seed))
	bad := 0
	for i := 0; i < flits; {
		// Bulk-advance the whole clean span in one O(1) step: at BER 1e-6
		// that is ~500 flits per error event, so the loop body runs per
		// event, not per flit. Advance draws no RNG and accounts the same
		// BitsSeen total the per-flit walk would.
		if clean := ch.NextEvent() / FlitBits; clean > 0 {
			if clean > flits-i {
				clean = flits - i
			}
			ch.Advance(clean * FlitBits)
			i += clean
			continue
		}
		if ch.Traverse(FlitBits) > 0 {
			bad++
		}
		i++
	}
	return FERSample{
		Flits:     flits,
		Erroneous: bad,
		FER:       float64(bad) / float64(flits),
		Analytic:  p.FER(),
	}
}

// FECOutcome classifies decode results of error-injected flits.
type FECOutcome struct {
	Trials       int
	Clean        int // decode reported no error (nothing was injected or all flips cancelled)
	Corrected    int // decode repaired the flit and the repair is byte-exact
	Detected     int // decode flagged the flit uncorrectable
	Miscorrected int // decode "succeeded" but the flit differs from the original
}

// DetectionRate returns Detected / (Detected + Miscorrected): the fraction
// of uncorrectable flits the shortened RS interleave catches on its own —
// the Section 2.5 fractions (≈2/3 for 4-symbol bursts, 8/9 for 5, 26/27
// for ≥6).
func (o FECOutcome) DetectionRate() float64 {
	bad := o.Detected + o.Miscorrected
	if bad == 0 {
		return 0
	}
	return float64(o.Detected) / float64(bad)
}

// MiscorrectionRate returns Miscorrected / Trials.
func (o FECOutcome) MiscorrectionRate() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.Miscorrected) / float64(o.Trials)
}

// MeasureFECBurst injects `trials` random contiguous byte bursts of the
// given length into sealed flits and classifies the FEC decode outcome.
// Burst positions and symbol values are uniform; length is in bytes
// (symbols). This measures stages 2–3 of the staged model.
func MeasureFECBurst(burstLen, trials int, seed uint64) FECOutcome {
	if burstLen <= 0 || trials <= 0 {
		panic("reliability: MeasureFECBurst needs positive burst length and trials")
	}
	rng := phy.NewRNG(seed)
	fec := flit.NewFEC()
	out := FECOutcome{Trials: trials}

	var reference flit.Flit
	for i := 0; i < trials; i++ {
		var f flit.Flit
		rng.Fill(f.Payload())
		f.SealCXL(fec)
		reference = f

		// Inject a burst of byte errors at a random offset across the
		// FEC-protected region (header+payload+CRC+FEC parity).
		start := rng.Intn(flit.Size - burstLen)
		for b := 0; b < burstLen; b++ {
			f.Raw[start+b] ^= rng.NonzeroByte()
		}

		res := f.DecodeFEC(fec)
		switch res.Status {
		case rs.StatusClean:
			// Zero syndromes despite injected errors means the burst
			// mapped the codeword onto another valid codeword — an FEC
			// miss unless the flips happened to cancel.
			if equalPrefix(f.Raw[:], reference.Raw[:], flit.ProtectedSize) {
				out.Clean++
			} else {
				out.Miscorrected++
			}
		case rs.StatusUncorrectable:
			out.Detected++
		case rs.StatusCorrected:
			if equalPrefix(f.Raw[:], reference.Raw[:], flit.ProtectedSize) {
				out.Corrected++
			} else {
				out.Miscorrected++
			}
		}
	}
	return out
}

func equalPrefix(a, b []byte, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// StagedEstimate composes measured conditional stages with the analytic
// CRC escape probability into end-to-end failure rates, mirroring the
// closed forms with empirically validated inputs.
type StagedEstimate struct {
	// Measured inputs.
	FER            float64 // stage 1, from MeasureFER (rescaled if needed)
	PUncorrectable float64 // stage 2: P(uncorrectable | erroneous)
	PFECMiss       float64 // stage 3: P(FEC misses | uncorrectable)
	PCoalescing    float64
	CRCEscape      float64
	FlitsPerSecond float64

	// Composed outputs.
	FERUC       float64 // FER × PUncorrectable
	FITCXLOneSw float64 // ordering failures at one switching level
	FITRXLOneSw float64 // undetected data failures under RXL
}

// Compose fills the output fields from the inputs.
func (s *StagedEstimate) Compose() {
	s.FERUC = s.FER * s.PUncorrectable
	p := DefaultParams()
	p.FERUC = s.FERUC
	p.PCoalescing = s.PCoalescing
	p.CRCEscape = s.CRCEscape
	p.FlitsPerSecond = s.FlitsPerSecond
	s.FITCXLOneSw = p.FITCXL(1)
	s.FITRXLOneSw = p.FITRXL(1)
}

// String renders the estimate in a compact report form.
func (s *StagedEstimate) String() string {
	return fmt.Sprintf(
		"staged: FER=%.3g P(UC|err)=%.3g FER_UC=%.3g FIT(CXL,1sw)=%.3g FIT(RXL,1sw)=%.3g",
		s.FER, s.PUncorrectable, s.FERUC, s.FITCXLOneSw, s.FITRXLOneSw)
}
