package reliability

import (
	"math"
	"testing"
)

func TestWithBERRescalesFERUC(t *testing.T) {
	p := DefaultParams()
	q := p.WithBER(1e-7)
	// P(uncorrectable | erroneous) must be preserved.
	base := p.FERUC / p.FER()
	scaled := q.FERUC / q.FER()
	if !within(scaled, base, 1e-9) {
		t.Fatalf("conditional uncorrectable probability drifted: %g vs %g", scaled, base)
	}
	if q.FERUC >= p.FERUC {
		t.Fatal("lower BER must lower FER_UC")
	}
}

func TestWithBERZero(t *testing.T) {
	q := DefaultParams().WithBER(0)
	if q.FER() != 0 || q.FERUC != 0 {
		t.Fatalf("zero BER gives FER=%g FERUC=%g", q.FER(), q.FERUC)
	}
}

func TestBERSweepMonotone(t *testing.T) {
	bers := []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5}
	pts := DefaultParams().BERSweep(bers, 1)
	if len(pts) != len(bers) {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FER <= pts[i-1].FER {
			t.Errorf("FER not increasing at %g", pts[i].BER)
		}
		if pts[i].FITCXL <= pts[i-1].FITCXL {
			t.Errorf("FIT_CXL not increasing at %g", pts[i].BER)
		}
		if pts[i].FITRXL <= pts[i-1].FITRXL {
			t.Errorf("FIT_RXL not increasing at %g", pts[i].BER)
		}
	}
	// The CXL/RXL gap holds across the whole sweep.
	for _, pt := range pts {
		if pt.FITCXL/pt.FITRXL < 1e15 {
			t.Errorf("at BER %g the CXL/RXL ratio collapsed to %g", pt.BER, pt.FITCXL/pt.FITRXL)
		}
	}
}

// TestBudgetCrossings quantifies the paper's scaling argument: at spec
// BER, CXL blows the server-grade budget the moment one switch appears;
// RXL never crosses it at any plausible depth.
func TestBudgetCrossings(t *testing.T) {
	p := DefaultParams()
	if l := p.CXLBudgetCrossing(ServerFITBudget, 16); l != 1 {
		t.Errorf("CXL crosses budget at level %d, want 1", l)
	}
	if l := p.RXLBudgetCrossing(ServerFITBudget, 16); l != -1 {
		t.Errorf("RXL crosses budget at level %d, want never", l)
	}
	// Even at a four-orders-better physical layer, one switch still
	// breaks CXL: the ordering-failure mode scales with FER_UC, which at
	// BER 1e-10 is ~3e-9, giving FIT ~5.4e11 >> budget.
	clean := p.WithBER(1e-10)
	if l := clean.CXLBudgetCrossing(ServerFITBudget, 16); l != 1 {
		t.Errorf("CXL at BER 1e-10 crosses at level %d, want 1", l)
	}
}

func TestBERBudgetCrossing(t *testing.T) {
	p := DefaultParams()
	bers := []float64{1e-15, 1e-12, 1e-9, 1e-6}
	// CXL with one switch exceeds the budget already at 1e-15.
	if got := p.BERBudgetCrossing(bers, 1, ServerFITBudget, false); got != 1e-15 {
		t.Errorf("CXL BER crossing = %g, want 1e-15", got)
	}
	// RXL never exceeds it on this grid.
	if got := p.BERBudgetCrossing(bers, 1, ServerFITBudget, true); got != 0 {
		t.Errorf("RXL BER crossing = %g, want none", got)
	}
}

func TestBERSweepFERBounded(t *testing.T) {
	pts := DefaultParams().BERSweep([]float64{1e-3, 1e-2, 0.5}, 0)
	for _, pt := range pts {
		if pt.FER < 0 || pt.FER > 1 || math.IsNaN(pt.FER) {
			t.Errorf("FER %g out of range at BER %g", pt.FER, pt.BER)
		}
	}
}
