package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

// within reports |got-want| <= tol*|want|.
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.BER = -1 },
		func(p *Params) { p.BER = 1.5 },
		func(p *Params) { p.FlitBits = 0 },
		func(p *Params) { p.FERUC = -0.1 },
		func(p *Params) { p.PCoalescing = 2 },
		func(p *Params) { p.FlitsPerSecond = 0 },
		func(p *Params) { p.CRCEscape = -1 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid params %+v", i, p)
		}
	}
}

// TestEq1FER checks the paper's headline FER ≈ 2.0e-3 at BER=1e-6.
func TestEq1FER(t *testing.T) {
	fer := DefaultParams().FER()
	if !within(fer, 2.0e-3, 0.03) {
		t.Fatalf("FER = %g, want ≈2.0e-3", fer)
	}
	// The exact closed form: 1-(1-1e-6)^2048.
	exact := 1 - math.Pow(1-1e-6, 2048)
	if !within(fer, exact, 1e-9) {
		t.Fatalf("FER = %g, exact form %g", fer, exact)
	}
}

func TestEq1FERZeroBER(t *testing.T) {
	p := DefaultParams()
	p.BER = 0
	if fer := p.FER(); fer != 0 {
		t.Fatalf("FER at BER=0 is %g, want 0", fer)
	}
}

// TestEq1MillionErroneousFlits checks "1 million erroneous flits out of
// 500 million flits per second" (Section 7.1.1).
func TestEq1MillionErroneousFlits(t *testing.T) {
	n := DefaultParams().ExpectedErroneousFlitsPerSecond()
	if !within(n, 1.0e6, 0.05) {
		t.Fatalf("erroneous flits/s = %g, want ≈1e6", n)
	}
}

// TestEq3PCorrect checks "FEC corrects more than 98.5% of erroneous flits".
func TestEq3PCorrect(t *testing.T) {
	pc := DefaultParams().PCorrect()
	if pc <= 0.985 {
		t.Fatalf("p_correct = %g, want > 0.985", pc)
	}
	if pc >= 1 {
		t.Fatalf("p_correct = %g, want < 1", pc)
	}
}

// TestEq4FERUndetectedDirect checks FER_UD ≈ 1.6e-24.
func TestEq4FERUndetectedDirect(t *testing.T) {
	ud := DefaultParams().FERUndetectedDirect()
	if !within(ud, 1.6e-24, 0.05) {
		t.Fatalf("FER_UD = %g, want ≈1.6e-24", ud)
	}
}

// TestEq5FITDirect checks FIT ≈ 2.9e-3 for the direct connection.
func TestEq5FITDirect(t *testing.T) {
	fit := DefaultParams().FITDirect()
	if !within(fit, 2.9e-3, 0.05) {
		t.Fatalf("FIT_direct = %g, want ≈2.9e-3", fit)
	}
}

// TestEq6FERDrop checks the single-level drop rate equals FER_UC.
func TestEq6FERDrop(t *testing.T) {
	p := DefaultParams()
	if got := p.FERDrop(1); got != p.FERUC {
		t.Fatalf("FER_drop(1) = %g, want FER_UC = %g", got, p.FERUC)
	}
	if got := p.FERDrop(0); got != 0 {
		t.Fatalf("FER_drop(0) = %g, want 0", got)
	}
}

// TestEq7FEROrder checks FER_order = 3.0e-6 at one level, p=0.1.
func TestEq7FEROrder(t *testing.T) {
	fo := DefaultParams().FEROrder(1)
	if !within(fo, 3.0e-6, 1e-9) {
		t.Fatalf("FER_order = %g, want 3.0e-6", fo)
	}
}

// TestEq8FITCXLSwitched checks FIT ≈ 5.4e15 for CXL with one switch.
func TestEq8FITCXLSwitched(t *testing.T) {
	fit := DefaultParams().FITCXL(1)
	if !within(fit, 5.4e15, 0.05) {
		t.Fatalf("FIT_CXL(1) = %g, want ≈5.4e15", fit)
	}
}

// TestEq9FERUndetectedRXL checks FER_UD ≈ 1.6e-24 for RXL at one level.
func TestEq9FERUndetectedRXL(t *testing.T) {
	ud := DefaultParams().FERUndetectedRXL(1)
	// Two links contribute, so the value is ~2× the direct bound but must
	// stay within the same order of magnitude the paper reports.
	if ud < 1.6e-24 || ud > 4e-24 {
		t.Fatalf("FER_UD(RXL,1) = %g, want within [1.6e-24, 4e-24]", ud)
	}
}

// TestEq10FITRXLSwitched checks FIT stays ≈1e-3-scale for RXL with a switch.
func TestEq10FITRXLSwitched(t *testing.T) {
	fit := DefaultParams().FITRXL(1)
	if fit < 2.9e-3 || fit > 1.2e-2 {
		t.Fatalf("FIT_RXL(1) = %g, want milli-FIT scale", fit)
	}
}

// TestImprovement checks the ">1e18 times lower" claim at one level.
func TestImprovement(t *testing.T) {
	imp := DefaultParams().Improvement(1)
	if imp < 1e17 {
		t.Fatalf("CXL/RXL FIT ratio = %g, want > 1e17", imp)
	}
}

// TestFig8Shape checks the qualitative shape of Fig. 8: CXL reliability
// collapses by ~18 orders of magnitude at the first switching level and
// grows with depth; RXL stays nearly flat.
func TestFig8Shape(t *testing.T) {
	pts := DefaultParams().Fig8(8)
	if len(pts) != 9 {
		t.Fatalf("Fig8(8) returned %d points", len(pts))
	}
	// At level 0 both protocols are within a (1+FER_UC) factor of the
	// direct-connection FIT (RXL's formula counts the retry exposure).
	if !within(pts[0].FITCXL, pts[0].FITRXL, 1e-4) {
		t.Errorf("level-0 FITs diverge: CXL %g vs RXL %g", pts[0].FITCXL, pts[0].FITRXL)
	}
	jump := pts[1].FITCXL / pts[0].FITCXL
	if jump < 1e17 {
		t.Errorf("CXL FIT jump at level 1 = %g, want > 1e17", jump)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FITCXL <= pts[i-1].FITCXL {
			t.Errorf("CXL FIT not increasing at level %d", i)
		}
		if pts[i].FITRXL < pts[i-1].FITRXL {
			t.Errorf("RXL FIT decreasing at level %d", i)
		}
	}
	// RXL "nearly unchanged": less than 10× over 8 levels.
	if ratio := pts[8].FITRXL / pts[0].FITRXL; ratio > 10 {
		t.Errorf("RXL FIT grew %gx over 8 levels, want < 10x", ratio)
	}
}

func TestFERDropNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultParams().FERDrop(-1)
}

func TestFig8NegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultParams().Fig8(-1)
}

// TestFERMonotonicInBER: property — FER is monotonically non-decreasing in
// BER and bounded to [0,1].
func TestFERMonotonicInBER(t *testing.T) {
	f := func(a, b uint16) bool {
		p1, p2 := DefaultParams(), DefaultParams()
		ber1 := float64(a) / float64(math.MaxUint16) * 1e-3
		ber2 := float64(b) / float64(math.MaxUint16) * 1e-3
		if ber1 > ber2 {
			ber1, ber2 = ber2, ber1
		}
		p1.BER, p2.BER = ber1, ber2
		f1, f2 := p1.FER(), p2.FER()
		return f1 >= 0 && f2 <= 1 && f1 <= f2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFITLinearInRate: property — FIT is linear in the per-flit rate.
func TestFITLinearInRate(t *testing.T) {
	p := DefaultParams()
	f := func(r uint32) bool {
		rate := float64(r) * 1e-12
		return within(p.FIT(2*rate), 2*p.FIT(rate), 1e-12) || rate == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFEROrderScalesWithCoalescing: doubling p_coalescing doubles the
// ordering-failure rate.
func TestFEROrderScalesWithCoalescing(t *testing.T) {
	p := DefaultParams()
	base := p.FEROrder(1)
	p.PCoalescing *= 2
	if !within(p.FEROrder(1), 2*base, 1e-12) {
		t.Fatal("FER_order not linear in p_coalescing")
	}
}

// --- Monte-Carlo cross-checks -------------------------------------------

// TestMCFERMatchesEq1 validates Eq. 1 against the simulated channel at an
// accelerated BER where events are plentiful.
func TestMCFERMatchesEq1(t *testing.T) {
	const ber = 5e-4 // ~64% of flits erroneous at 2048 bits
	s := MeasureFER(ber, 20000, 42)
	if !within(s.FER, s.Analytic, 0.05) {
		t.Fatalf("measured FER %g vs analytic %g", s.FER, s.Analytic)
	}
}

func TestMCFERLowRate(t *testing.T) {
	const ber = 1e-5
	s := MeasureFER(ber, 50000, 7)
	if !within(s.FER, s.Analytic, 0.2) {
		t.Fatalf("measured FER %g vs analytic %g", s.FER, s.Analytic)
	}
}

// TestMCFECBurstCorrection: bursts within the 3-way SSC budget are always
// corrected.
func TestMCFECBurstCorrection(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		o := MeasureFECBurst(n, 2000, uint64(n))
		if o.Detected+o.Miscorrected != 0 {
			t.Errorf("burst %dB: %d detected, %d miscorrected; want all corrected",
				n, o.Detected, o.Miscorrected)
		}
		if o.Corrected == 0 {
			t.Errorf("burst %dB: nothing corrected", n)
		}
	}
}

// TestMCFECBurstDetectionFractions validates the Section 2.5 fractions:
// the shortened RS interleave detects ≈2/3 of 4-symbol bursts, ≈8/9 of
// 5-symbol bursts, and ≈26/27 of ≥6-symbol bursts.
func TestMCFECBurstDetectionFractions(t *testing.T) {
	cases := []struct {
		burst int
		want  float64
		tol   float64
	}{
		{4, 2.0 / 3.0, 0.06},
		{5, 8.0 / 9.0, 0.04},
		{6, 26.0 / 27.0, 0.03},
		{8, 26.0 / 27.0, 0.03},
	}
	for _, c := range cases {
		o := MeasureFECBurst(c.burst, 30000, uint64(c.burst)*977)
		got := o.DetectionRate()
		if !within(got, c.want, c.tol) {
			t.Errorf("burst %dB: detection rate %.4f, want ≈%.4f (detected=%d mis=%d)",
				c.burst, got, c.want, o.Detected, o.Miscorrected)
		}
	}
}

// TestStagedEstimateCompose composes measured stages into FIT values and
// checks they land within an order of magnitude of the closed forms (the
// stages are measured at accelerated rates, so only the composition logic
// is under test here).
func TestStagedEstimateCompose(t *testing.T) {
	p := DefaultParams()
	est := StagedEstimate{
		FER:            p.FER(),
		PUncorrectable: p.FERUC / p.FER(),
		PFECMiss:       1.0 / 3.0,
		PCoalescing:    p.PCoalescing,
		CRCEscape:      p.CRCEscape,
		FlitsPerSecond: p.FlitsPerSecond,
	}
	est.Compose()
	if !within(est.FERUC, p.FERUC, 1e-9) {
		t.Fatalf("composed FER_UC %g, want %g", est.FERUC, p.FERUC)
	}
	if !within(est.FITCXLOneSw, p.FITCXL(1), 1e-9) {
		t.Fatalf("composed FIT_CXL %g, want %g", est.FITCXLOneSw, p.FITCXL(1))
	}
	if !within(est.FITRXLOneSw, p.FITRXL(1), 1e-9) {
		t.Fatalf("composed FIT_RXL %g, want %g", est.FITRXLOneSw, p.FITRXL(1))
	}
	if est.String() == "" {
		t.Fatal("empty report")
	}
}

func TestMeasureFERPanicsOnZeroFlits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MeasureFER(1e-6, 0, 1)
}

func TestMeasureFECBurstPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MeasureFECBurst(0, 10, 1)
}
