package reliability

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/runner"
)

// TestMeasureFERRareWithin3SigmaOfNaive is the headline statistical
// acceptance test: at BER 1e-6 — where naive schedule Monte-Carlo still
// converges — the importance-sampling estimate must agree with
// MeasureFERSchedule-backed sharded sampling within 3σ of the combined
// uncertainty, and both must bracket Eq. 1.
func TestMeasureFERRareWithin3SigmaOfNaive(t *testing.T) {
	ctx := context.Background()
	pool := runner.Pool{Workers: 0, BaseSeed: 42}
	const ber, flits, shards = 1e-6, 400000, 16

	is, err := MeasureFERRare(ctx, pool, ber, 0, 0, flits, shards)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := MeasureFERSharded(ctx, runner.Pool{BaseSeed: 1042}, ber, flits, shards)
	if err != nil {
		t.Fatal(err)
	}
	naiveVar := naive.FER * (1 - naive.FER) / float64(naive.Flits)
	sigma := math.Abs(is.Value-naive.FER) / math.Sqrt(is.Variance+naiveVar)
	if sigma > 3 {
		t.Fatalf("IS %.4g vs naive %.4g: %.2fσ apart (IS ±%.1f%%, naive %d/%d hits)",
			is.Value, naive.FER, sigma, 100*is.RelErr, naive.Erroneous, naive.Flits)
	}
	if s := is.Sigma(is.Analytic); s > 3 {
		t.Fatalf("IS %.4g vs Eq.1 %.4g: %.2fσ apart", is.Value, is.Analytic, s)
	}
}

// TestRareSelfCheck: the packaged self-validation mode holds at both
// overlap BERs. This is the exported form of the 3σ test that cmd/sweep
// -rare prints.
func TestRareSelfCheck(t *testing.T) {
	ctx := context.Background()
	pts, err := RareSelfCheck(ctx, runner.Pool{BaseSeed: 7}, []float64{1e-6, 1e-7}, 2_000_000, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Naive.Erroneous == 0 {
			t.Fatalf("BER %g: naive side saw no events; budget too small for an overlap check", pt.BER)
		}
		if pt.Sigma > 3 {
			t.Fatalf("BER %g: IS %.4g vs naive %.4g at %.2fσ", pt.BER, pt.IS.Value, pt.Naive.FER, pt.Sigma)
		}
	}
}

// TestMeasureFERRareDeterministicAcrossWorkers: the merged IS estimate —
// including the adaptive round structure — is bit-identical at any worker
// count.
func TestMeasureFERRareDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	ref, err := MeasureFERRare(ctx, runner.Pool{Workers: 1, BaseSeed: 5}, 1e-9, 0, 0.05, 1<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		got, err := MeasureFERRare(ctx, runner.Pool{Workers: w, BaseSeed: 5}, 1e-9, 0, 0.05, 1<<20, 16)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: %+v != %+v", w, got, ref)
		}
	}
}

// TestMeasureSplitRareDeterministicAcrossWorkers: the splitting satellite
// requirement — per-shard pilot calibration and all, the merged estimate
// does not depend on the worker count.
func TestMeasureSplitRareDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	ref, err := MeasureSplitRare(ctx, runner.Pool{Workers: 1, BaseSeed: 3}, 1e-5, 4, 20000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		got, err := MeasureSplitRare(ctx, runner.Pool{Workers: w, BaseSeed: 3}, 1e-5, 4, 20000, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: %+v != %+v", w, got, ref)
		}
	}
	// And the merged estimate must agree with the exact binomial tail.
	if rel := math.Abs(ref.Value-ref.Analytic) / ref.Analytic; rel > math.Max(4*ref.RelErr, 0.10) {
		t.Fatalf("split %.4g vs analytic %.4g: off %.1f%%", ref.Value, ref.Analytic, 100*rel)
	}
}

// TestRareDeepTailAcceptance enforces the PR's acceptance bar: at BER
// 1e-9 the adaptive estimator must deliver a nonzero FER with reported
// relative error ≤ 10% — and do it in seconds, not the ~5e8-flits-per-hit
// a naive run would need. The wall-clock bound is generous (the real
// budget is "under 60 s single-core" for the whole cmd/sweep -rare run).
func TestRareDeepTailAcceptance(t *testing.T) {
	ctx := context.Background()
	start := time.Now()
	est, err := MeasureFERRare(ctx, runner.Pool{BaseSeed: 1}, 1e-9, 0, 0.10, 1<<24, DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if est.Value <= 0 {
		t.Fatalf("zero FER estimate at BER 1e-9: %+v", est)
	}
	if est.RelErr > 0.10 {
		t.Fatalf("relative error %.3f exceeds the 10%% target: %+v", est.RelErr, est)
	}
	if s := est.Sigma(est.Analytic); s > 4 {
		t.Fatalf("estimate %.4g vs Eq.1 %.4g at %.1fσ", est.Value, est.Analytic, s)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("deep-tail estimate took %v", elapsed)
	}

	ud, err := MeasureUndetectedRare(ctx, runner.Pool{BaseSeed: 2}, 1e-9, 0, 0.25, 1<<22, DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	if ud.Value <= 0 || ud.RelErr > 0.25 {
		t.Fatalf("undetected estimate did not converge: %+v", ud)
	}
	// The undetected rate at 1e-9 sits ~8 orders below the paper's 1e-6
	// headline 1.6e-24 (FER_UC scales with BER²) — the whole point of the
	// subsystem is that this number is now measurable at all.
	if ud.Value > 1e-24 {
		t.Fatalf("FER_UD %.4g implausibly large at BER 1e-9", ud.Value)
	}
}

// TestRareSweepAndValidation: the packaged sweep returns one converged
// point per BER with the staged ordering intact, and argument validation
// matches the house style.
func TestRareSweepAndValidation(t *testing.T) {
	ctx := context.Background()
	pts, err := RareSweep(ctx, runner.Pool{BaseSeed: 11}, []float64{1e-8, 1e-9}, 0, 0.15, 1<<21, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		if pt.FER.Value <= 0 || pt.FERUC.Value <= 0 || pt.Undetected.Value <= 0 {
			t.Fatalf("BER %g: unconverged point %+v", pt.BER, pt)
		}
		if !(pt.Undetected.Value < pt.FERUC.Value && pt.FERUC.Value < pt.FER.Value) {
			t.Fatalf("BER %g: staged ordering broken: FER %.3g FER_UC %.3g FER_UD %.3g",
				pt.BER, pt.FER.Value, pt.FERUC.Value, pt.Undetected.Value)
		}
	}
	// FER scales ~linearly with BER in the deep tail.
	if ratio := pts[0].FER.Value / pts[1].FER.Value; ratio < 5 || ratio > 20 {
		t.Fatalf("FER(1e-8)/FER(1e-9) = %.2f, want ≈10", ratio)
	}

	if _, err := MeasureFERRare(ctx, runner.Pool{}, 0, 0, 0, 100, 4); err == nil {
		t.Fatal("BER 0 accepted")
	}
	// A proposal below the true BER (or at 1) must come back as an error
	// from the API boundary, not a panic inside a worker goroutine.
	if _, err := MeasureFERRare(ctx, runner.Pool{}, 1e-6, 1e-9, 0, 100, 4); err == nil {
		t.Fatal("undersampling proposal accepted")
	}
	if _, err := MeasureUndetectedRare(ctx, runner.Pool{}, 1e-6, 1, 0, 100, 4); err == nil {
		t.Fatal("proposal 1 accepted")
	}
	if _, err := MeasureSplitRare(ctx, runner.Pool{}, 0, 4, 100, 4); err == nil {
		t.Fatal("splitting BER 0 accepted")
	}
	if _, err := MeasureSplitRare(ctx, runner.Pool{}, 1e-5, 99, 100, 4); err == nil {
		t.Fatal("splitting level 99 accepted")
	}
	if _, err := MeasureFERRare(ctx, runner.Pool{}, 1e-9, 0, 0, 0, 4); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := MeasureSplitRare(ctx, runner.Pool{}, 1e-5, 4, 0, 4); err == nil {
		t.Fatal("zero effort accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := MeasureFERRare(canceled, runner.Pool{}, 1e-9, 0, 0, 1000, 4); err == nil {
		t.Fatal("canceled context accepted")
	}
}

// TestMeasureFERRareCancelStopsMidRound: a cancelled deep-tail job must
// abandon its shards mid-round instead of running each shard's full
// budget to completion. The budget below (2^30 flits per round at a
// proposal tilt that strikes nearly every flit) takes minutes to run dry;
// the cancelled call must return the context error within a small
// multiple of the estimators' poll period.
func TestMeasureFERRareCancelStopsMidRound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pool := runner.Pool{Workers: runtime.GOMAXPROCS(0), BaseSeed: 7}

	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := MeasureFERRare(ctx, pool, 1e-9, 0, 1e-6, 1<<30, 8)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first round start burning
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled MeasureFERRare returned nil error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if e := time.Since(start); e > 5*time.Second {
			t.Fatalf("cancellation took %v — shards ran to completion", e)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled MeasureFERRare still running after 30s")
	}
}

// TestMeasureSplitRareCancel: the splitting estimator observes
// cancellation inside its stage scans too.
func TestMeasureSplitRareCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// A deep level at a deep-tail BER starves every pilot stage, so an
		// uncancelled run would grind through the maximum growth rounds.
		_, err := MeasureSplitRare(ctx, runner.Pool{BaseSeed: 3}, 1e-9, 8, 1<<28, 8)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled MeasureSplitRare still running after 30s")
	}
}
