package reliability

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/runner"
)

// TestMeasureFERShardedDeterministic: merged Monte-Carlo aggregates are
// bit-identical at workers=1, workers=4, and workers=NumCPU.
func TestMeasureFERShardedDeterministic(t *testing.T) {
	ctx := context.Background()
	const ber, flits, shards = 5e-4, 8000, 16
	ref, err := MeasureFERSharded(ctx, runner.Pool{Workers: 1, BaseSeed: 42}, ber, flits, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		got, err := MeasureFERSharded(ctx, runner.Pool{Workers: w, BaseSeed: 42}, ber, flits, shards)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: %+v != %+v", w, got, ref)
		}
	}
	if ref.Flits != flits {
		t.Fatalf("merged %d flits, want %d", ref.Flits, flits)
	}
	// The measurement must agree with Eq. 1 within Monte-Carlo noise
	// (≈4000 expected events here; 10% is generous).
	if math.Abs(ref.FER-ref.Analytic)/ref.Analytic > 0.10 {
		t.Fatalf("measured FER %.4f vs analytic %.4f", ref.FER, ref.Analytic)
	}
}

// TestMeasureFECBurstShardedDeterministic: same invariant for the staged
// FEC decode outcomes, plus the Section 2.5 detection fraction.
func TestMeasureFECBurstShardedDeterministic(t *testing.T) {
	ctx := context.Background()
	const burst, trials, shards = 4, 4000, 16
	ref, err := MeasureFECBurstSharded(ctx, runner.Pool{Workers: 1, BaseSeed: 7}, burst, trials, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		got, err := MeasureFECBurstSharded(ctx, runner.Pool{Workers: w, BaseSeed: 7}, burst, trials, shards)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: %+v != %+v", w, got, ref)
		}
	}
	if ref.Trials != trials {
		t.Fatalf("merged %d trials, want %d", ref.Trials, trials)
	}
	// Paper Section 2.5: 4-symbol bursts are detected ≈2/3 of the time.
	if d := ref.DetectionRate(); math.Abs(d-2.0/3.0) > 0.05 {
		t.Fatalf("4B burst detection %.4f, want ≈0.667", d)
	}
}

// TestMCBERSweepDeterministic: the multi-point sweep keeps per-point
// aggregates independent of worker count and ordered by BER.
func TestMCBERSweepDeterministic(t *testing.T) {
	ctx := context.Background()
	bers := []float64{2e-4, 5e-4, 1e-3}
	ref, err := MCBERSweep(ctx, runner.Pool{Workers: 1, BaseSeed: 3}, bers, 4000, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MCBERSweep(ctx, runner.Pool{Workers: runtime.NumCPU() + 3, BaseSeed: 3}, bers, 4000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("point %d differs across worker counts", i)
		}
		if ref[i].BER != bers[i] || ref[i].Sample.Flits != 4000 {
			t.Fatalf("point %d malformed: %+v", i, ref[i])
		}
	}
	// FER must be monotone in BER across this range.
	if !(ref[0].Sample.FER < ref[1].Sample.FER && ref[1].Sample.FER < ref[2].Sample.FER) {
		t.Fatalf("measured FER not monotone in BER: %+v", ref)
	}
}

// TestStagedSharded: the composed staged estimate lands near the paper's
// defaults and stays deterministic across worker counts.
func TestStagedSharded(t *testing.T) {
	ctx := context.Background()
	a, err := StagedSharded(ctx, runner.Pool{Workers: 1, BaseSeed: 9}, 5e-4, 6000, 4, 3000, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StagedSharded(ctx, runner.Pool{Workers: runtime.NumCPU() + 1, BaseSeed: 9}, 5e-4, 6000, 4, 3000, 12)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("staged estimate differs across worker counts:\n%+v\n%+v", a, b)
	}
	// The rescaled FER should be near Eq. 1 at the default BER, and the
	// composed FER_UC near the Eq. 2 spec bound.
	p := DefaultParams()
	if a.FER <= 0 || math.Abs(a.FER-p.FER())/p.FER() > 0.15 {
		t.Fatalf("rescaled FER %.3g vs analytic %.3g", a.FER, p.FER())
	}
	if math.Abs(a.FERUC-p.FERUC)/p.FERUC > 0.15 {
		t.Fatalf("composed FER_UC %.3g vs spec %.3g", a.FERUC, p.FERUC)
	}
	// Stage 3 at 4-symbol bursts: the Section 2.5 miss fraction ≈1/3.
	if math.Abs(a.PFECMiss-1.0/3.0) > 0.05 {
		t.Fatalf("staged P(FEC miss) %.4f, want ≈0.333", a.PFECMiss)
	}
	if a.FITCXLOneSw <= a.FITRXLOneSw {
		t.Fatalf("staged FITs lost the paper's ordering: CXL %.3g vs RXL %.3g", a.FITCXLOneSw, a.FITRXLOneSw)
	}
}

// TestShardedValidation: bad arguments and canceled contexts error out.
func TestShardedValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := MeasureFERSharded(ctx, runner.Pool{}, 1e-4, 0, 4); err == nil {
		t.Fatal("zero flits accepted")
	}
	if _, err := MeasureFECBurstSharded(ctx, runner.Pool{}, 0, 10, 4); err == nil {
		t.Fatal("zero burst length accepted")
	}
	if _, err := MCBERSweep(ctx, runner.Pool{}, []float64{1e-4}, 10, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := MeasureFERSharded(canceled, runner.Pool{}, 1e-4, 100, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: %v", err)
	}
}
