package reliability

import "testing"

// TestCRC16EscapeMatches2ToMinus16 empirically validates the 2^-k escape
// scaling at a width where escapes actually occur. 2e6 trials give an
// expected ~30 escapes; the Poisson 99.9% band is roughly ±60%.
func TestCRC16EscapeMatches2ToMinus16(t *testing.T) {
	if testing.Short() {
		t.Skip("2e6 CRC evaluations")
	}
	s := MeasureCRC16Escape(2_000_000, 9001)
	if s.Escapes == 0 {
		t.Fatalf("no escapes in %d trials; 16-bit CRC cannot be that strong", s.Trials)
	}
	if s.Rate < s.Analytic*0.4 || s.Rate > s.Analytic*1.6 {
		t.Fatalf("escape rate %.3g (n=%d) vs analytic %.3g: outside Poisson band",
			s.Rate, s.Escapes, s.Analytic)
	}
	t.Logf("16-bit CRC escape rate: measured %.3g (%d/%d), analytic %.3g",
		s.Rate, s.Escapes, s.Trials, s.Analytic)
}

// TestISN16SeqMismatchNeverEscapes: a wrong expected sequence number is
// always detected — the fold lands in the CRC's guaranteed burst class.
func TestISN16SeqMismatchNeverEscapes(t *testing.T) {
	s := MeasureISN16SeqEscape(200_000, 77)
	if s.SeqEscape != 0 {
		t.Fatalf("%d sequence mismatches escaped the 16-bit ISN check", s.SeqEscape)
	}
}

func TestMeasureCRC16EscapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MeasureCRC16Escape(0, 1)
}

func TestMeasureISN16SeqEscapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MeasureISN16SeqEscape(-1, 1)
}
