package reliability

import (
	"math"

	"repro/internal/phy"
)

// This file extends the Monte-Carlo FER estimators from a single link to
// a multi-hop path: the mesh/chain model where one shared error-event
// schedule covers a flit's whole source→destination traversal (H hop
// crossings of FlitBits each). It is the measurement-side counterpart of
// phy.SharedSchedule — the same consumption policy the live mesh applies,
// stripped of the event simulator.

// PathFERSample is the result of a multi-hop Monte-Carlo flit error rate
// measurement: the probability that a flit is struck on *any* crossing of
// an H-hop path.
type PathFERSample struct {
	Hops      int
	Flits     int
	Erroneous int     // flits with at least one flipped bit on any hop
	FER       float64 // Erroneous / Flits
	Analytic  float64 // 1-(1-BER)^(Hops·FlitBits), the Eq. 1 form per path
}

// analyticPathFER is Eq. 1 generalized to an H-hop traversal.
func analyticPathFER(ber float64, hops int) float64 {
	return 1 - math.Pow(1-ber, float64(hops*FlitBits))
}

// MeasureFERPath is the byte-level reference: every flit crosses `hops`
// crossings of one shared schedule, each corrupting a real flit image.
// It exists to pin MeasureFERPathSchedule bit-exactly (the schedule walk
// must count precisely the flits this loop counts), not for throughput.
func MeasureFERPath(ber float64, hops, flits int, seed uint64) PathFERSample {
	if flits <= 0 || hops <= 0 {
		panic("reliability: MeasureFERPath needs positive hops and flits")
	}
	ch := phy.NewChannel(ber, 0, phy.NewRNG(seed))
	buf := make([]byte, FlitBits/8)
	bad := 0
	for i := 0; i < flits; i++ {
		struck := false
		for h := 0; h < hops; h++ {
			for j := range buf {
				buf[j] = 0
			}
			if ch.Corrupt(buf) > 0 {
				struck = true
			}
		}
		if struck {
			bad++
		}
	}
	return PathFERSample{
		Hops:      hops,
		Flits:     flits,
		Erroneous: bad,
		FER:       float64(bad) / float64(flits),
		Analytic:  analyticPathFER(ber, hops),
	}
}

// MeasureFERPathSchedule is MeasureFERPath on the shared path schedule
// with full clean-epoch skipping: whole clean traversals — at production
// BERs, hundreds at a time — are consumed in one O(1) GrantSpan with zero
// RNG draws, and inside a struck traversal the loop jumps straight to the
// struck crossing (CleanCrossings/AdvanceCrossings) instead of walking
// each clean hop, so the per-traversal cost is proportional to error
// events, not hops. Corruption still lands on the exact per-hop unit the
// schedule assigns it (each event crossing goes through Traverse), and
// the channel consumes exactly the random stream MeasureFERPath would, so
// identical seeds give identical samples — proven by
// TestMeasureFERPathScheduleMatchesByteLevel and pinned against the
// frozen MeasureFERPathGrantWalk loop by
// TestMeasureFERPathEpochSkipMatchesGrantWalk.
func MeasureFERPathSchedule(ber float64, hops, flits int, seed uint64) PathFERSample {
	if flits <= 0 || hops <= 0 {
		panic("reliability: MeasureFERPathSchedule needs positive hops and flits")
	}
	s := phy.NewSharedSchedule(ber, 0, phy.NewRNG(seed), FlitBits)
	bad := 0
	for i := 0; i < flits; {
		if n := s.GrantSpan(hops, flits-i); n > 0 {
			i += n
			continue
		}
		// Struck traversal: jump clean epochs, simulate only the struck
		// crossings. h counts crossings consumed of this traversal.
		struck := false
		for h := 0; h < hops; {
			k := s.CleanCrossings(hops - h)
			s.AdvanceCrossings(k)
			h += k
			if h < hops {
				if s.Traverse() > 0 {
					struck = true
				}
				h++
			}
		}
		if struck {
			bad++
		}
		i++
	}
	return PathFERSample{
		Hops:      hops,
		Flits:     flits,
		Erroneous: bad,
		FER:       float64(bad) / float64(flits),
		Analytic:  analyticPathFER(ber, hops),
	}
}

// MeasureFERPathGrantWalk is the frozen pre-epoch-skip estimator loop:
// GrantSpan for whole clean traversals, then a crossing-by-crossing walk
// of every struck traversal — even its clean hops. It is kept verbatim as
// the comparison baseline for BenchmarkMCEpochSkip and as a second
// independent pin on MeasureFERPathSchedule's stream consumption (the two
// must return identical samples for identical seeds; see
// TestMeasureFERPathEpochSkipMatchesGrantWalk). New callers want
// MeasureFERPathSchedule.
func MeasureFERPathGrantWalk(ber float64, hops, flits int, seed uint64) PathFERSample {
	if flits <= 0 || hops <= 0 {
		panic("reliability: MeasureFERPathGrantWalk needs positive hops and flits")
	}
	s := phy.NewSharedSchedule(ber, 0, phy.NewRNG(seed), FlitBits)
	bad := 0
	for i := 0; i < flits; {
		if n := s.GrantSpan(hops, flits-i); n > 0 {
			i += n
			continue
		}
		// Struck traversal: walk it crossing by crossing so burst
		// truncation and unit accounting match the per-hop reference.
		struck := false
		for h := 0; h < hops; h++ {
			if s.CrossClean() {
				s.Advance()
			} else if s.Traverse() > 0 {
				struck = true
			}
		}
		if struck {
			bad++
		}
		i++
	}
	return PathFERSample{
		Hops:      hops,
		Flits:     flits,
		Erroneous: bad,
		FER:       float64(bad) / float64(flits),
		Analytic:  analyticPathFER(ber, hops),
	}
}
