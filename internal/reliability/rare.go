package reliability

// Rare-event estimation on the sharded runner: the deep-tail (BER ≤ 1e-9)
// counterparts of MeasureFERSharded and the staged Monte-Carlo chain,
// backed by internal/reliability/rarevent's importance-sampling and
// multilevel-splitting estimators.
//
// Sharding follows the runner's invariants exactly: per-shard seeds come
// from runner.ShardSeed, merges fold in shard order, and the adaptive
// relative-error loop derives one fresh pool seed per round — so any
// worker count reproduces the same estimate bit for bit, and the loop's
// round boundaries are a property of the estimate, not of scheduling.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/reliability/rarevent"
	"repro/internal/runner"
)

// rareRoundSalt namespaces the adaptive loop's per-round pool seeds away
// from ordinary shard indices (which start at 0), so round pools and
// shard seeds can never collide for small bases.
const rareRoundSalt = 0x5eed0f

// rareMinHits is the hit floor before an adaptive round may declare its
// relative-error target met: a reported RelErr from a handful of hits is
// itself too noisy to trust as a stopping rule.
const rareMinHits = 64

// runRare drives an estimator family across the pool: rounds of `shards`
// shards, doubling the trial budget per round, until the merged estimate
// meets the relative-error target (with at least rareMinHits hits) or the
// budget cap is reached. relErr <= 0 runs exactly one round of maxTrials.
func runRare(ctx context.Context, pool runner.Pool, mk func() rarevent.Estimator, relErr float64, maxTrials, shards, firstBatch int) (rarevent.Estimate, error) {
	if maxTrials <= 0 || shards <= 0 {
		return rarevent.Estimate{}, fmt.Errorf("reliability: rare estimation needs positive trials (%d) and shards (%d)", maxTrials, shards)
	}
	batch := firstBatch
	if relErr <= 0 || batch > maxTrials {
		batch = maxTrials
	}
	var merged rarevent.Estimate
	spent := 0
	for round := 0; ; round++ {
		roundPool := pool
		roundPool.BaseSeed = runner.ShardSeed(pool.BaseSeed, rareRoundSalt+round)
		quota := runner.Split(batch, shards)
		parts, err := runner.Map(ctx, roundPool, shards, func(ctx context.Context, s runner.Shard) (rarevent.Estimate, error) {
			if quota[s.Index] == 0 {
				return rarevent.Estimate{}, nil
			}
			est := mk().Run(ctx, quota[s.Index], s.Seed)
			// A cancelled run returns early with partial sums; surface the
			// cancellation so Map discards the round instead of merging a
			// truncated shard.
			if err := ctx.Err(); err != nil {
				return rarevent.Estimate{}, err
			}
			return est, nil
		})
		if err != nil {
			return rarevent.Estimate{}, err
		}
		merged = rarevent.MergeIS(append([]rarevent.Estimate{merged}, parts...))
		spent += batch
		if relErr <= 0 || spent >= maxTrials {
			return merged, nil
		}
		if merged.RelErr <= relErr && merged.Hits >= rareMinHits {
			return merged, nil
		}
		if batch < maxTrials-spent {
			batch *= 2
		}
		if batch > maxTrials-spent {
			batch = maxTrials - spent
		}
	}
}

// checkTilt validates a (true BER, proposal) pair at the API boundary so
// user input can never reach phy.TiltedChannel's panic from inside a
// runner worker goroutine. A zero/negative proposal selects auto.
func checkTilt(name string, ber, proposal float64) error {
	if ber <= 0 || ber >= 1 {
		return fmt.Errorf("reliability: %s needs BER in (0,1), got %g", name, ber)
	}
	if proposal > 0 && (proposal < ber || proposal >= 1) {
		return fmt.Errorf("reliability: %s proposal BER %g must be in [BER=%g, 1)", name, proposal, ber)
	}
	return nil
}

// MeasureFERRare estimates the flit error rate at a deep-tail BER by
// importance sampling on the tilted error-event schedule, sharded across
// the pool. proposal <= 0 selects the variance-optimal automatic tilt;
// relErr > 0 makes the trial budget adaptive (rounds double until the
// target or maxFlits is hit), relErr <= 0 spends exactly maxFlits. The
// estimate's Analytic field carries Eq. 1 at the true BER.
func MeasureFERRare(ctx context.Context, pool runner.Pool, ber, proposal, relErr float64, maxFlits, shards int) (rarevent.Estimate, error) {
	if err := checkTilt("MeasureFERRare", ber, proposal); err != nil {
		return rarevent.Estimate{}, err
	}
	if proposal <= 0 {
		proposal = rarevent.AutoProposalFER(ber)
	}
	return runRare(ctx, pool, func() rarevent.Estimator {
		return rarevent.ISFER{BER: ber, Proposal: proposal}
	}, relErr, maxFlits, shards, 64*1024)
}

// MeasureUncorrectableRare estimates FER_UC at a deep-tail BER: the
// importance-sampled probability that a flit arrives uncorrectable by (or
// miscorrected through) the RS interleave, with a real FEC decode on
// every struck flit.
func MeasureUncorrectableRare(ctx context.Context, pool runner.Pool, ber, proposal, relErr float64, maxTrials, shards int) (rarevent.Estimate, error) {
	if err := checkTilt("MeasureUncorrectableRare", ber, proposal); err != nil {
		return rarevent.Estimate{}, err
	}
	if proposal <= 0 {
		proposal = rarevent.AutoProposalUC(ber)
	}
	return runRare(ctx, pool, func() rarevent.Estimator {
		return rarevent.ISUncorrectable{BER: ber, Proposal: proposal}
	}, relErr, maxTrials, shards, 16*1024)
}

// MeasureUndetectedRare estimates FER_UD at a deep-tail BER: the
// importance-sampled FEC-miss probability composed with the analytic
// 2^-64 CRC escape (the staged model's stage 4) — the quantity whose
// naive estimate is "0 failures observed in anything feasible" (≈1.6e-24
// per flit at the paper's operating point).
func MeasureUndetectedRare(ctx context.Context, pool runner.Pool, ber, proposal, relErr float64, maxTrials, shards int) (rarevent.Estimate, error) {
	if err := checkTilt("MeasureUndetectedRare", ber, proposal); err != nil {
		return rarevent.Estimate{}, err
	}
	if proposal <= 0 {
		proposal = rarevent.AutoProposalUC(ber)
	}
	return runRare(ctx, pool, func() rarevent.Estimator {
		return rarevent.ISUndetected{BER: ber, Proposal: proposal, CRCEscape: CRCEscape}
	}, relErr, maxTrials, shards, 16*1024)
}

// MeasureSplitRare estimates the symbol pile-up tail P(≥ level distinct
// erroneous symbols per flit) by multilevel splitting, one independent
// full splitting run (pilot calibration included) per shard, merged as an
// equal-effort mean. effortPerShard is each shard's main-run trajectory
// budget.
func MeasureSplitRare(ctx context.Context, pool runner.Pool, ber float64, level, effortPerShard, shards int) (rarevent.Estimate, error) {
	if effortPerShard <= 0 || shards <= 0 {
		return rarevent.Estimate{}, fmt.Errorf("reliability: MeasureSplitRare needs positive effort (%d) and shards (%d)", effortPerShard, shards)
	}
	if ber <= 0 || ber >= 1 {
		return rarevent.Estimate{}, fmt.Errorf("reliability: MeasureSplitRare needs BER in (0,1), got %g", ber)
	}
	if level < 0 || level > 8 {
		return rarevent.Estimate{}, fmt.Errorf("reliability: MeasureSplitRare level %d out of 1..8 (0 = default 4)", level)
	}
	parts, err := runner.Map(ctx, pool, shards, func(ctx context.Context, s runner.Shard) (rarevent.Estimate, error) {
		est := rarevent.Splitting{BER: ber, Level: level}.Run(ctx, effortPerShard, s.Seed)
		if err := ctx.Err(); err != nil {
			return rarevent.Estimate{}, err
		}
		return est, nil
	})
	if err != nil {
		return rarevent.Estimate{}, err
	}
	return rarevent.MergeShards(parts), nil
}

// RareCheckPoint is one BER of the self-validation sweep: the IS estimate
// against the naive schedule Monte-Carlo sample of the same quantity.
type RareCheckPoint struct {
	BER   float64
	IS    rarevent.Estimate
	Naive FERSample
	// Sigma is |IS − naive| over the combined standard error of the two
	// estimates — ≤ 3 is the acceptance bar enforced by test.
	Sigma float64
}

// RareSelfCheck cross-validates the importance-sampling machinery against
// naive schedule Monte-Carlo at overlapping BERs (1e-6..1e-7) where both
// estimators converge, sharded across the pool. Both sides of each point
// use the same flit budget; a Sigma within ±3 says the likelihood-ratio
// reweighting reproduces reality, licensing the same machinery at BERs
// where no naive cross-check exists.
func RareSelfCheck(ctx context.Context, pool runner.Pool, bers []float64, flits, shards int) ([]RareCheckPoint, error) {
	out := make([]RareCheckPoint, 0, len(bers))
	for i, ber := range bers {
		isPool := pool
		isPool.BaseSeed = runner.ShardSeed(pool.BaseSeed, 2*i)
		is, err := MeasureFERRare(ctx, isPool, ber, 0, 0, flits, shards)
		if err != nil {
			return nil, err
		}
		naivePool := pool
		naivePool.BaseSeed = runner.ShardSeed(pool.BaseSeed, 2*i+1)
		naive, err := MeasureFERSharded(ctx, naivePool, ber, flits, shards)
		if err != nil {
			return nil, err
		}
		// Binomial variance of the naive mean; IS variance is reported.
		naiveVar := naive.FER * (1 - naive.FER) / float64(naive.Flits)
		se := math.Sqrt(is.Variance + naiveVar)
		sigma := math.Inf(1)
		if se > 0 {
			sigma = math.Abs(is.Value-naive.FER) / se
		} else if is.Value == naive.FER {
			sigma = 0
		}
		out = append(out, RareCheckPoint{BER: ber, IS: is, Naive: naive, Sigma: sigma})
	}
	return out, nil
}

// RarePoint is one BER of a deep-tail sweep: the three staged quantities
// the closed forms predict, now measured with relative-error control.
type RarePoint struct {
	BER        float64
	FER        rarevent.Estimate // vs Eq. 1 (Analytic field)
	FERUC      rarevent.Estimate // uncorrectable after FEC (no closed form for iid)
	Undetected rarevent.Estimate // FER_UD = FEC-miss mass × 2^-64
}

// RareSweep runs the full rare-tail estimation at each BER on the sharded
// runner: importance-sampled FER, FER_UC, and FER_UD with a common
// relative-error target. Each point derives an independent pool seed, so
// the sweep is one deterministic artifact per (BaseSeed, bers, budget).
func RareSweep(ctx context.Context, pool runner.Pool, bers []float64, proposal, relErr float64, maxTrials, shards int) ([]RarePoint, error) {
	out := make([]RarePoint, 0, len(bers))
	for i, ber := range bers {
		p := pool
		p.BaseSeed = runner.ShardSeed(pool.BaseSeed, 3*i+1)
		fer, err := MeasureFERRare(ctx, p, ber, proposal, relErr, maxTrials, shards)
		if err != nil {
			return nil, err
		}
		p.BaseSeed = runner.ShardSeed(pool.BaseSeed, 3*i+2)
		uc, err := MeasureUncorrectableRare(ctx, p, ber, proposal, relErr, maxTrials, shards)
		if err != nil {
			return nil, err
		}
		p.BaseSeed = runner.ShardSeed(pool.BaseSeed, 3*i+3)
		ud, err := MeasureUndetectedRare(ctx, p, ber, proposal, relErr, maxTrials, shards)
		if err != nil {
			return nil, err
		}
		out = append(out, RarePoint{BER: ber, FER: fer, FERUC: uc, Undetected: ud})
	}
	return out, nil
}
