package reliability

// This file extends the Section 7.1 analysis along the axes the paper
// motivates but does not tabulate: how the failure rates move as the
// physical layer degrades (BER sweeps, Section 2.1's escalating signaling
// rates) and where each protocol crosses the reliability budget of
// server-grade hardware.

// ServerFITBudget is the paper's reference point for acceptable device
// reliability: "typical target for server-grade devices, which have FIT
// values in the range of a few hundred" (Section 7.1.1).
const ServerFITBudget = 500.0

// WithBER returns a copy of p at a different bit error rate, rescaling
// FER_UC so the conditional probability P(uncorrectable | erroneous)
// stays at its spec-derived value. This models faster signaling (more
// raw errors) with unchanged FEC strength.
func (p Params) WithBER(ber float64) Params {
	q := p
	baseFER := p.FER()
	q.BER = ber
	if baseFER > 0 {
		q.FERUC = p.FERUC / baseFER * q.FER()
	}
	return q
}

// BERPoint is one x-position of a BER sweep.
type BERPoint struct {
	BER    float64
	FER    float64
	FERUC  float64
	FITCXL float64 // at the sweep's switching level
	FITRXL float64
}

// BERSweep evaluates the model across bit error rates at a fixed number
// of switching levels.
func (p Params) BERSweep(bers []float64, levels int) []BERPoint {
	out := make([]BERPoint, 0, len(bers))
	for _, ber := range bers {
		q := p.WithBER(ber)
		out = append(out, BERPoint{
			BER:    ber,
			FER:    q.FER(),
			FERUC:  q.FERUC,
			FITCXL: q.FITCXL(levels),
			FITRXL: q.FITRXL(levels),
		})
	}
	return out
}

// CXLBudgetCrossing returns the smallest number of switching levels at
// which baseline CXL's FIT exceeds the budget, searching up to maxLevels.
// It returns -1 if CXL stays within budget (e.g. at negligible BER).
func (p Params) CXLBudgetCrossing(budget float64, maxLevels int) int {
	for l := 0; l <= maxLevels; l++ {
		if p.FITCXL(l) > budget {
			return l
		}
	}
	return -1
}

// RXLBudgetCrossing is the RXL counterpart of CXLBudgetCrossing.
func (p Params) RXLBudgetCrossing(budget float64, maxLevels int) int {
	for l := 0; l <= maxLevels; l++ {
		if p.FITRXL(l) > budget {
			return l
		}
	}
	return -1
}

// BERBudgetCrossing returns the lowest BER (from the sorted candidates)
// at which the protocol's FIT at the given level exceeds the budget; it
// returns 0 if none does. The candidates must be in ascending order.
func (p Params) BERBudgetCrossing(bers []float64, levels int, budget float64, rxl bool) float64 {
	for _, ber := range bers {
		q := p.WithBER(ber)
		fit := q.FITCXL(levels)
		if rxl {
			fit = q.FITRXL(levels)
		}
		if fit > budget {
			return ber
		}
	}
	return 0
}
