package rarevent

import (
	"bytes"
	"context"
	"math"

	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/rs"
)

// Importance-sampling estimators on the tilted error-event schedule.
//
// Each estimator walks phy.TiltedChannel's pre-drawn schedule exactly
// like reliability.MeasureFERSchedule walks the untilted one: clean flits
// are bulk-advanced in O(1) with zero RNG draws, and only flits the
// schedule actually strikes do any work. The per-flit importance weight
// W = exp(phy.UnitLogLR(p, q, 2048, flips)) multiplies the event
// indicator; clean flits have flips = 0 and can never hit an event, so
// their (constant) weight enters only the sum-to-one accounting, in
// closed form per clean span.

// walkTilted drives `trials` flits through a tilted schedule: whole
// clean spans are bulk-advanced in O(1) — their weights are a known
// constant and their event indicator is identically zero — and onStruck
// runs for every flit the schedule strikes (which therefore carries ≥1
// flip). It returns the number of clean flits, so the caller folds
// cleanFlits × exp(UnitLogLR(p, q, UnitBits, 0)) into its weight sum.
// This is the one copy of the clean-span idiom the IS estimators share.
//
// The walk polls ctx every cancelCheckMask+1 steps (a step is one bulk
// advance or one struck flit, so at proposal tilts where nearly every
// flit is struck the poll period is a few thousand decodes) and abandons
// the remaining budget on cancellation; the caller's partial sums are
// discarded by the ctx.Err() contract on Estimator.Run.
func walkTilted(ctx context.Context, ch *phy.Channel, trials int, onStruck func()) (cleanFlits int) {
	for i, steps := 0, 0; i < trials; steps++ {
		if steps&cancelCheckMask == 0 && ctx.Err() != nil {
			break
		}
		if clean := ch.NextEvent() / UnitBits; clean > 0 {
			if clean > trials-i {
				clean = trials - i
			}
			ch.Advance(clean * UnitBits)
			cleanFlits += clean
			i += clean
			continue
		}
		onStruck()
		i++
	}
	return cleanFlits
}

// cancelCheckMask sets the context-poll period of the estimator loops:
// every 4096 steps, cheap enough to vanish against even the lightest
// per-step work while keeping cancellation latency in the microseconds.
const cancelCheckMask = 4095

// ISFER estimates the deep-tail flit error rate P(≥1 bit error per flit)
// at BER by importance sampling at Proposal. The Analytic field of the
// estimate carries Eq. 1 at the true BER for cross-checking.
type ISFER struct {
	BER      float64 // true bit error rate (the quantity's operating point)
	Proposal float64 // tilted sampling rate; ≥ BER (see AutoProposalFER)
}

// Name implements Estimator.
func (e ISFER) Name() string { return "is-fer" }

// Run implements Estimator: `trials` flits through the tilted schedule.
func (e ISFER) Run(ctx context.Context, trials int, seed uint64) Estimate {
	if trials <= 0 {
		panic("rarevent: ISFER needs at least one trial")
	}
	p, q := e.BER, e.Proposal
	ch := phy.TiltedChannel(p, q, phy.NewRNG(seed))
	est := Estimate{Trials: trials, Analytic: analyticFER(p)}
	clean := walkTilted(ctx, ch, trials, func() {
		w := math.Exp(phy.UnitLogLR(p, q, UnitBits, ch.Traverse(UnitBits)))
		est.SumW += w
		est.Hits++
		est.SumWZ += w
		est.SumWZ2 += w * w
	})
	est.SumW += float64(clean) * math.Exp(phy.UnitLogLR(p, q, UnitBits, 0))
	est.finalize()
	return est
}

// ISPathFER estimates the multi-hop traversal error rate — P(≥1 flipped
// bit on any of Hops crossings of one shared path schedule) — at BER by
// importance sampling at Proposal. It is the deep-tail counterpart of
// reliability.MeasureFERPathSchedule: one trial is a whole traversal of
// span = Hops×UnitBits tilted bits, whole clean traversals are
// epoch-skipped in bulk with their constant weight folded in closed form,
// and a struck traversal jumps straight between its event crossings with
// the same clean-epoch arithmetic, drawing RNG only where the schedule
// actually fires. The Analytic field carries Eq. 1 over the whole span at
// the true BER.
type ISPathFER struct {
	BER      float64 // true bit error rate (the quantity's operating point)
	Proposal float64 // tilted sampling rate; ≥ BER (see AutoProposalFER)
	Hops     int     // crossings per traversal
}

// Name implements Estimator.
func (e ISPathFER) Name() string { return "is-pathfer" }

// Run implements Estimator: `trials` traversals through the tilted
// schedule.
func (e ISPathFER) Run(ctx context.Context, trials int, seed uint64) Estimate {
	if trials <= 0 {
		panic("rarevent: ISPathFER needs at least one trial")
	}
	if e.Hops <= 0 {
		panic("rarevent: ISPathFER needs positive hops")
	}
	p, q := e.BER, e.Proposal
	hops := e.Hops
	span := hops * UnitBits
	ch := phy.TiltedChannel(p, q, phy.NewRNG(seed))
	est := Estimate{
		Trials:   trials,
		Analytic: -math.Expm1(float64(span) * math.Log1p(-p)),
	}
	cleanTraversals := 0
	for i, steps := 0, 0; i < trials; steps++ {
		if steps&cancelCheckMask == 0 && ctx.Err() != nil {
			break
		}
		if n := ch.NextEvent() / span; n > 0 {
			if n > trials-i {
				n = trials - i
			}
			ch.Advance(n * span)
			cleanTraversals += n
			i += n
			continue
		}
		// Struck traversal: clean epochs between its event crossings are
		// advanced arithmetically; only event crossings touch the RNG.
		flips := 0
		for h := 0; h < hops; {
			if k := ch.NextEvent() / UnitBits; k > 0 {
				if k > hops-h {
					k = hops - h
				}
				ch.Advance(k * UnitBits)
				h += k
				continue
			}
			flips += ch.Traverse(UnitBits)
			h++
		}
		w := math.Exp(phy.UnitLogLR(p, q, span, flips))
		est.SumW += w
		if flips > 0 {
			est.Hits++
			est.SumWZ += w
			est.SumWZ2 += w * w
		}
		i++
	}
	est.SumW += float64(cleanTraversals) * math.Exp(phy.UnitLogLR(p, q, span, 0))
	est.finalize()
	return est
}

// fecEvent classifies one struck flit's decode outcome for the staged
// failure chain.
type fecEvent int

const (
	fecHarmless fecEvent = iota // corrected, or flips cancelled
	fecDetected                 // uncorrectable, flagged → retry/drop
	fecMiss                     // decode "succeeded" on corrupted data
)

// isDecode runs `trials` flits through the tilted schedule, materializes
// every struck flit as a sealed 256B image, corrupts it per the schedule,
// decodes the RS interleave, and hands (weight, outcome) to sink. The
// shared walk behind ISUncorrectable and ISUndetected.
func isDecode(ctx context.Context, ber, proposal float64, trials int, seed uint64, sink func(w float64, ev fecEvent)) (sumW float64, struck int) {
	p, q := ber, proposal
	master := phy.NewRNG(seed)
	ch := phy.TiltedChannel(p, q, master.Split())
	payloadRNG := master.Split()
	fec := flit.NewFEC()
	var f, reference flit.Flit
	clean := walkTilted(ctx, ch, trials, func() {
		payloadRNG.Fill(f.Payload())
		f.SealCXL(fec)
		reference = f
		k := ch.Corrupt(f.Raw[:])
		w := math.Exp(phy.UnitLogLR(p, q, UnitBits, k))
		sumW += w
		struck++
		ev := fecHarmless
		res := f.DecodeFEC(fec)
		intact := bytes.Equal(f.Raw[:flit.ProtectedSize], reference.Raw[:flit.ProtectedSize])
		switch res.Status {
		case rs.StatusUncorrectable:
			ev = fecDetected
		case rs.StatusClean, rs.StatusCorrected:
			// Zero syndromes despite flips, or a repair that landed on the
			// wrong codeword: corrupted data sails past the FEC.
			if !intact {
				ev = fecMiss
			}
		}
		sink(w, ev)
	})
	sumW += float64(clean) * math.Exp(phy.UnitLogLR(p, q, UnitBits, 0))
	return sumW, struck
}

// ISUncorrectable estimates FER_UC — the per-flit probability that the
// channel leaves the flit uncorrectable by (or miscorrected through) the
// 3-way RS interleave — by importance sampling with real FEC decodes on
// materialized images. No closed form exists for the pure-iid channel;
// Analytic stays 0.
type ISUncorrectable struct {
	BER      float64
	Proposal float64 // see AutoProposalUC
}

// Name implements Estimator.
func (e ISUncorrectable) Name() string { return "is-feruc" }

// Run implements Estimator.
func (e ISUncorrectable) Run(ctx context.Context, trials int, seed uint64) Estimate {
	if trials <= 0 {
		panic("rarevent: ISUncorrectable needs at least one trial")
	}
	est := Estimate{Trials: trials}
	sumW, _ := isDecode(ctx, e.BER, e.Proposal, trials, seed, func(w float64, ev fecEvent) {
		if ev == fecDetected || ev == fecMiss {
			est.Hits++
			est.SumWZ += w
			est.SumWZ2 += w * w
		}
	})
	est.SumW = sumW
	est.finalize()
	return est
}

// ISUndetected estimates FER_UD — the per-flit undetected failure rate:
// the channel corrupts the flit, the FEC decode misses, and the 64-bit
// CRC escapes. The FEC-miss probability is importance-sampled with real
// decodes; the CRC escape composes analytically (CRCEscape, the staged
// model's stage 4), exactly as reliability.StagedEstimate does at
// feasible rates.
type ISUndetected struct {
	BER      float64
	Proposal float64 // see AutoProposalUC
	// CRCEscape is the analytic stage-4 escape probability; zero selects
	// the 64-bit CRC's 2^-64.
	CRCEscape float64
}

// Name implements Estimator.
func (e ISUndetected) Name() string { return "is-ferud" }

// Run implements Estimator.
func (e ISUndetected) Run(ctx context.Context, trials int, seed uint64) Estimate {
	if trials <= 0 {
		panic("rarevent: ISUndetected needs at least one trial")
	}
	escape := e.CRCEscape
	if escape == 0 {
		escape = 1.0 / (1 << 63) / 2 // 2^-64
	}
	est := Estimate{Trials: trials}
	sumW, _ := isDecode(ctx, e.BER, e.Proposal, trials, seed, func(w float64, ev fecEvent) {
		if ev == fecMiss {
			// Fold the analytic escape into the weight so Value, Variance
			// and RelErr all come out on the FER_UD scale.
			w *= escape
			est.Hits++
			est.SumWZ += w
			est.SumWZ2 += w * w
		}
	})
	est.SumW = sumW
	est.finalize()
	return est
}

// analyticFER is Eq. 1 at the given BER: 1 − (1−p)^2048.
func analyticFER(p float64) float64 {
	return -math.Expm1(float64(UnitBits) * math.Log1p(-p))
}
