package rarevent

import (
	"context"
	"math"

	"repro/internal/phy"
)

// Multilevel splitting on near-miss trajectories.
//
// The rare event is an error *pile-up*: a flit accumulating Level
// distinct erroneous symbols (bytes). The RS interleave corrects one
// symbol per codeword, so k symbol errors inside one interleave depth sit
// k−1 levels up the near-miss ladder toward an uncorrectable flit —
// P(≥4 distinct symbols) at the nominal BER 1e-6 is ~1e-16, far beyond
// naive Monte-Carlo and, because the *rate* is feasible while the
// *pile-up* is not, the natural complement to importance sampling.
//
// A trajectory is the left-to-right bit walk of one flit through the
// geometric error-event schedule; its importance function is the count of
// distinct erroneous symbols so far. Splitting estimates
//
//	P(count ≥ L) = p₁ × Π_{ℓ=2..L} p_ℓ,   p_ℓ = P(reach ℓ | reached ℓ−1)
//
// by fixed-effort stages: stage 1 scans flits on the (bulk-skipped)
// schedule and records each first-error state; stage ℓ restarts
// trajectories from the recorded level-(ℓ−1) entry states — cloning the
// near-miss prefix, memorylessness makes the continuation exact — and
// counts the fraction that reach level ℓ before the flit ends. A pilot
// run calibrates per-stage effort: conditional probabilities fall with
// depth (entry states sit later in the flit), so effort is allocated
// ∝ sqrt((1−p̂_ℓ)/p̂_ℓ), the balanced fixed-effort optimum.

// maxSplitLevel bounds the near-miss ladder; beyond ~8 distinct symbols
// the per-stage conditionals at any interesting BER are so small that
// splitting effort explodes, and nothing in the failure model needs it.
const maxSplitLevel = 8

// minStageEntries is the pilot's starvation threshold: a stage whose
// pilot finds fewer successes than this doubles its effort (bounded)
// before calibrating on the observed rate.
const minStageEntries = 8

// Splitting is the multilevel-splitting estimator for the symbol pile-up
// tail P(≥ Level distinct erroneous symbols in one flit) at BER.
type Splitting struct {
	BER   float64
	Level int // target distinct-symbol count, 1..8 (default 4: one past correctable)
	// PilotEffort is the per-stage pilot trajectory budget used to
	// calibrate the main run's effort allocation (0 → 4096).
	PilotEffort int
}

// Name implements Estimator.
func (s Splitting) Name() string { return "split-symtail" }

// entry is a trajectory state crossing a level: the bit position of the
// error that completed the level and the distinct symbols hit so far.
type entry struct {
	bit  int
	syms []uint8
}

// Run implements Estimator. `trials` is the main run's total trajectory
// budget across stages (the pilot spends its own, included in the
// returned Trials); the estimate's Analytic field carries the exact
// binomial symbol-tail for cross-validation. Cancellation is observed
// between stage iterations and inside the stage scans; a cancelled run
// returns a partial estimate the caller must discard per the Estimator
// contract.
func (s Splitting) Run(ctx context.Context, trials int, seed uint64) Estimate {
	level := s.Level
	if level == 0 {
		level = 4
	}
	if level < 1 || level > maxSplitLevel {
		panic("rarevent: Splitting level out of 1..8")
	}
	if trials <= 0 {
		panic("rarevent: Splitting needs a positive trial budget")
	}
	if s.BER <= 0 || s.BER >= 1 {
		panic("rarevent: Splitting needs BER in (0,1)")
	}
	pilot := s.PilotEffort
	if pilot <= 0 {
		pilot = 4096
	}
	rng := phy.NewRNG(seed)
	est := Estimate{Analytic: AnalyticSymbolTail(s.BER, level), MeanWeight: 1}

	// Pilot: estimate every conditional once, growing effort past
	// starvation, purely to shape the main allocation.
	pilotProbs := make([]float64, level)
	entries := []entry(nil)
	for l := 0; l < level; l++ {
		effort := pilot
		var succ []entry
		var n int
		for try := 0; ; try++ {
			var more []entry
			var m int
			if l == 0 {
				more, m = s.scanStage(ctx, rng, effort)
			} else {
				more, m = s.continueStage(ctx, rng, entries, effort)
			}
			succ = append(succ, more...)
			n += m
			if len(succ) >= minStageEntries || try >= 6 || ctx.Err() != nil {
				break
			}
			effort *= 2
		}
		est.Trials += n
		if ctx.Err() != nil {
			est.RelErr = math.Inf(1)
			return est
		}
		if len(succ) == 0 {
			// The ladder starved even after growth: report a zero
			// estimate with infinite relative error rather than lie.
			est.RelErr = math.Inf(1)
			return est
		}
		pilotProbs[l] = float64(len(succ)) / float64(n)
		entries = succ
	}

	// Main run: allocate the budget ∝ sqrt((1−p)/p) per stage.
	weights := make([]float64, level)
	var wsum float64
	for l, p := range pilotProbs {
		weights[l] = math.Sqrt((1 - p) / p)
		wsum += weights[l]
	}
	logP, relvar := 0.0, 0.0
	entries = nil
	for l := 0; l < level; l++ {
		effort := int(float64(trials) * weights[l] / wsum)
		if effort < minStageEntries*2 {
			effort = minStageEntries * 2
		}
		var succ []entry
		var n int
		if l == 0 {
			succ, n = s.scanStage(ctx, rng, effort)
		} else {
			succ, n = s.continueStage(ctx, rng, entries, effort)
		}
		est.Trials += n
		if ctx.Err() != nil {
			est.RelErr = math.Inf(1)
			est.Value = 0
			return est
		}
		if len(succ) == 0 {
			est.RelErr = math.Inf(1)
			est.Value = 0
			return est
		}
		p := float64(len(succ)) / float64(n)
		logP += math.Log(p)
		relvar += (1 - p) / (p * float64(n))
		entries = succ
		est.Hits = len(succ)
	}
	est.Value = math.Exp(logP)
	est.Variance = est.Value * est.Value * relvar
	est.RelErr = math.Sqrt(relvar)
	return est
}

// scanStage examines `effort` flits on the bulk-skipped error-event
// schedule and returns the first-error entry states (level 1) plus the
// number of flits examined. Clean flits cost O(1) amortized, so stage 1
// stays feasible even at deep-tail BERs where hits are one in millions.
func (s Splitting) scanStage(ctx context.Context, rng *phy.RNG, effort int) ([]entry, int) {
	var out []entry
	next := rng.Geometric(s.BER)
	for i, steps := 0, 0; i < effort; steps++ {
		if steps&cancelCheckMask == 0 && ctx.Err() != nil {
			break
		}
		if skip := next / UnitBits; skip > 0 {
			if skip > effort-i {
				next -= (effort - i) * UnitBits
				i = effort
				break
			}
			next -= skip * UnitBits
			i += skip
			continue
		}
		// First error of this flit.
		out = append(out, entry{bit: next, syms: []uint8{uint8(next / 8)}})
		i++
		// Re-anchor the process at the next flit boundary: draw the gaps
		// of this flit's remaining errors (they belong to trajectories the
		// continuation stages resample) until the stream crosses it.
		pos := next
		for {
			pos += 1 + rng.Geometric(s.BER)
			if pos >= UnitBits {
				next = pos - UnitBits
				break
			}
		}
	}
	return out, effort
}

// continueStage restarts `effort` trajectories from the given entry
// states (cycled round-robin) and returns the states that reached the
// next level before their flit ended.
func (s Splitting) continueStage(ctx context.Context, rng *phy.RNG, entries []entry, effort int) ([]entry, int) {
	var out []entry
	for t := 0; t < effort; t++ {
		if t&cancelCheckMask == 0 && ctx.Err() != nil {
			break
		}
		e := entries[t%len(entries)]
		pos := e.bit
		for {
			pos += 1 + rng.Geometric(s.BER)
			if pos >= UnitBits {
				break // flit ended one error short: near miss
			}
			sym := uint8(pos / 8)
			if containsSym(e.syms, sym) {
				continue // same symbol struck again; importance unchanged
			}
			syms := make([]uint8, len(e.syms), len(e.syms)+1)
			copy(syms, e.syms)
			out = append(out, entry{bit: pos, syms: append(syms, sym)})
			break
		}
	}
	return out, effort
}

func containsSym(syms []uint8, s uint8) bool {
	for _, v := range syms {
		if v == s {
			return true
		}
	}
	return false
}

// AnalyticSymbolTail returns the exact probability that a 256-symbol flit
// has at least `level` distinct erroneous symbols under iid bit errors at
// `ber`: symbols fail independently with s = 1−(1−ber)^8, so the tail is
// binomial — the closed-form cross-check the splitting tests pin against.
func AnalyticSymbolTail(ber float64, level int) float64 {
	const symbols = UnitBits / 8
	s := -math.Expm1(8 * math.Log1p(-ber))
	if level <= 0 {
		return 1
	}
	if level > symbols {
		return 0
	}
	// Sum the dominant ascending terms of the binomial tail; at rare-event
	// operating points the first term dominates and the series collapses
	// in a few iterations.
	logTerm := logChoose(symbols, level) + float64(level)*math.Log(s) + float64(symbols-level)*math.Log1p(-s)
	total := 0.0
	for j := level; j <= symbols; j++ {
		term := math.Exp(logTerm)
		total += term
		if term < total*1e-16 {
			break
		}
		// term(j+1)/term(j) = (S-j)/(j+1) × s/(1-s)
		logTerm += math.Log(float64(symbols-j)/float64(j+1)) + math.Log(s) - math.Log1p(-s)
	}
	return total
}

func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
