package rarevent

import (
	"context"
	"math"
	"testing"

	"repro/internal/phy"
)

// bg is the uncancelled context the estimator tests run under.
var bg = context.Background()

// TestISFERMatchesAnalyticDeepTail: at BER 1e-9 — where naive Monte-Carlo
// would need ~5e8 flits per event — the IS estimate must land within 3σ
// of Eq. 1 with a tight reported relative error, from a budget that runs
// in milliseconds.
func TestISFERMatchesAnalyticDeepTail(t *testing.T) {
	for _, ber := range []float64{1e-8, 1e-9, 1e-10} {
		e := ISFER{BER: ber, Proposal: AutoProposalFER(ber)}
		est := e.Run(bg, 400000, 1)
		if est.Value <= 0 {
			t.Fatalf("BER %g: zero estimate %+v", ber, est)
		}
		if est.RelErr > 0.05 {
			t.Fatalf("BER %g: relative error %.3f too loose", ber, est.RelErr)
		}
		if s := est.Sigma(est.Analytic); s > 3 {
			t.Fatalf("BER %g: estimate %.4g vs analytic %.4g is %.1fσ off", ber, est.Value, est.Analytic, s)
		}
	}
}

// TestISWeightsSumToOne: the empirical mean importance weight over all
// trials must be 1 within sampling noise — a broken likelihood ratio
// shows up here before it shows up as bias.
func TestISWeightsSumToOne(t *testing.T) {
	for _, e := range []ISFER{
		{BER: 1e-6, Proposal: AutoProposalFER(1e-6)},
		{BER: 1e-9, Proposal: AutoProposalUC(1e-9)},
	} {
		est := e.Run(bg, 300000, 9)
		if math.Abs(est.MeanWeight-1) > 0.02 {
			t.Fatalf("BER %g proposal %g: mean weight %.5f, want ≈1", e.BER, e.Proposal, est.MeanWeight)
		}
	}
}

// TestISFERUntiltedReducesToNaive: with proposal == BER every weight is
// exactly 1 and the estimator must reproduce the naive schedule walk —
// same hit count, Value = Hits/Trials exactly.
func TestISFERUntiltedReducesToNaive(t *testing.T) {
	const ber, trials = 1e-4, 100000
	est := ISFER{BER: ber, Proposal: ber}.Run(bg, trials, 5)

	ch := phy.NewChannel(ber, 0, phy.NewRNG(5))
	hits := 0
	for i := 0; i < trials; {
		if clean := ch.NextEvent() / UnitBits; clean > 0 {
			if clean > trials-i {
				clean = trials - i
			}
			ch.Advance(clean * UnitBits)
			i += clean
			continue
		}
		if ch.Traverse(UnitBits) > 0 {
			hits++
		}
		i++
	}
	if est.Hits != hits {
		t.Fatalf("untilted IS hits %d != naive schedule hits %d", est.Hits, hits)
	}
	if est.Value != float64(hits)/trials {
		t.Fatalf("untilted IS value %.6g != hit fraction %.6g", est.Value, float64(hits)/trials)
	}
	if est.MeanWeight != 1 {
		t.Fatalf("untilted mean weight %.6f", est.MeanWeight)
	}
}

// TestISEstimatorsDeterministic: identical (trials, seed) must reproduce
// identical estimates — the property the sharded wrappers build on.
func TestISEstimatorsDeterministic(t *testing.T) {
	for _, e := range []Estimator{
		ISFER{BER: 1e-9, Proposal: AutoProposalFER(1e-9)},
		ISUncorrectable{BER: 1e-9, Proposal: AutoProposalUC(1e-9)},
		ISUndetected{BER: 1e-9, Proposal: AutoProposalUC(1e-9)},
		Splitting{BER: 1e-5, Level: 3, PilotEffort: 1000},
	} {
		a := e.Run(bg, 20000, 77)
		b := e.Run(bg, 20000, 77)
		if a != b {
			t.Fatalf("%s: reruns diverge:\n%+v\n%+v", e.Name(), a, b)
		}
	}
}

// TestISUncorrectableOrdering: the staged chain must stay ordered —
// FER_UC < FER, FER_UD = miss-mass × 2^-64 ≪ FER_UC — and every link
// converge with finite relative error at the deep tail.
func TestISUncorrectableOrdering(t *testing.T) {
	const ber, trials = 1e-9, 150000
	fer := ISFER{BER: ber, Proposal: AutoProposalFER(ber)}.Run(bg, trials, 3)
	uc := ISUncorrectable{BER: ber, Proposal: AutoProposalUC(ber)}.Run(bg, trials, 3)
	ud := ISUndetected{BER: ber, Proposal: AutoProposalUC(ber)}.Run(bg, trials, 3)

	if !(uc.Value > 0 && uc.Value < fer.Value) {
		t.Fatalf("FER_UC %.4g not inside (0, FER=%.4g)", uc.Value, fer.Value)
	}
	if uc.RelErr > 0.2 {
		t.Fatalf("FER_UC relative error %.3f too loose", uc.RelErr)
	}
	if ud.Value <= 0 || ud.Value >= uc.Value {
		t.Fatalf("FER_UD %.4g not inside (0, FER_UC=%.4g)", ud.Value, uc.Value)
	}
	// The analytic stage-4 escape is folded in exactly: the undetected
	// estimate is 2^-64 of its own miss-mass, so the ratio to FER_UC is
	// bounded by 2^-64.
	if ud.Value > uc.Value*math.Pow(2, -64)*1.000001 {
		t.Fatalf("FER_UD %.4g exceeds FER_UC × 2^-64 = %.4g", ud.Value, uc.Value*math.Pow(2, -64))
	}
}

// TestSplittingMatchesBinomialTail: the multilevel-splitting estimate of
// the distinct-symbol pile-up must agree with the exact binomial tail.
// At BER 1e-5 and level 4 the event probability is ~7e-9 — already far
// beyond what the trial budget could sample naively (~1e5 trials).
func TestSplittingMatchesBinomialTail(t *testing.T) {
	s := Splitting{BER: 1e-5, Level: 4, PilotEffort: 4096}
	est := s.Run(bg, 120000, 11)
	if est.Value <= 0 {
		t.Fatalf("zero splitting estimate %+v", est)
	}
	if est.Analytic != AnalyticSymbolTail(1e-5, 4) {
		t.Fatalf("estimate lost its analytic comparator: %+v", est)
	}
	rel := math.Abs(est.Value-est.Analytic) / est.Analytic
	// The per-stage binomial variance model underestimates slightly
	// (entry states are shared across clones), so accept 4× the reported
	// relative error with a 10% floor.
	tol := math.Max(4*est.RelErr, 0.10)
	if rel > tol {
		t.Fatalf("splitting %.4g vs analytic %.4g: off by %.1f%% (tolerance %.1f%%)",
			est.Value, est.Analytic, 100*rel, 100*tol)
	}
}

// TestSplittingLevelOne: a single level degrades to plain schedule
// counting of erroneous flits, pinned against Eq. 1.
func TestSplittingLevelOne(t *testing.T) {
	est := Splitting{BER: 1e-4, Level: 1, PilotEffort: 2048}.Run(bg, 50000, 2)
	ana := AnalyticSymbolTail(1e-4, 1)
	if math.Abs(est.Value-ana)/ana > 0.15 {
		t.Fatalf("level-1 splitting %.4g vs analytic %.4g", est.Value, ana)
	}
}

// TestAnalyticSymbolTail: closed-form sanity at the edges.
func TestAnalyticSymbolTail(t *testing.T) {
	if v := AnalyticSymbolTail(1e-6, 0); v != 1 {
		t.Fatalf("level 0 tail %g", v)
	}
	if v := AnalyticSymbolTail(1e-6, 257); v != 0 {
		t.Fatalf("level 257 tail %g", v)
	}
	// Level 1 equals Eq. 1 (any erroneous symbol ⇔ any erroneous bit).
	ana := -math.Expm1(float64(UnitBits) * math.Log1p(-1e-6))
	if v := AnalyticSymbolTail(1e-6, 1); math.Abs(v-ana)/ana > 1e-12 {
		t.Fatalf("level-1 tail %.15g != Eq.1 %.15g", v, ana)
	}
	// Tails are monotone decreasing in level.
	prev := math.Inf(1)
	for l := 1; l <= 6; l++ {
		v := AnalyticSymbolTail(1e-6, l)
		if v >= prev {
			t.Fatalf("tail not monotone at level %d: %g >= %g", l, v, prev)
		}
		prev = v
	}
}

// TestMergeIS: merging shard estimates must equal running the moments in
// one pass, and preserve the sum-to-one diagnostic.
func TestMergeIS(t *testing.T) {
	e := ISFER{BER: 1e-9, Proposal: AutoProposalFER(1e-9)}
	a, b := e.Run(bg, 50000, 1), e.Run(bg, 50000, 2)
	m := MergeIS([]Estimate{a, b})
	if m.Trials != a.Trials+b.Trials || m.Hits != a.Hits+b.Hits {
		t.Fatalf("merge lost counts: %+v", m)
	}
	wantValue := (a.SumWZ + b.SumWZ) / float64(m.Trials)
	if m.Value != wantValue {
		t.Fatalf("merged value %.9g, want %.9g", m.Value, wantValue)
	}
	if math.Abs(m.MeanWeight-1) > 0.02 {
		t.Fatalf("merged mean weight %.5f", m.MeanWeight)
	}
	if m.RelErr >= math.Max(a.RelErr, b.RelErr)*1.01 {
		t.Fatalf("merging did not tighten the estimate: %.4f vs (%.4f, %.4f)", m.RelErr, a.RelErr, b.RelErr)
	}
}

// TestMergeShards: the splitting merge averages equal-effort shard
// estimates and tightens the error bar.
func TestMergeShards(t *testing.T) {
	s := Splitting{BER: 1e-5, Level: 3, PilotEffort: 1024}
	parts := []Estimate{s.Run(bg, 20000, 1), s.Run(bg, 20000, 2), s.Run(bg, 20000, 3), {}}
	m := MergeShards(parts)
	want := (parts[0].Value + parts[1].Value + parts[2].Value) / 3
	if math.Abs(m.Value-want) > 1e-18 {
		t.Fatalf("merged value %.6g, want %.6g", m.Value, want)
	}
	if m.RelErr >= parts[0].RelErr {
		t.Fatalf("merging did not tighten: %.4f vs %.4f", m.RelErr, parts[0].RelErr)
	}
	if m.Trials != parts[0].Trials+parts[1].Trials+parts[2].Trials {
		t.Fatalf("merged trials %d", m.Trials)
	}
}

// TestEstimatorValidation: misuse panics rather than returning garbage.
func TestEstimatorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("ISFER zero trials", func() { ISFER{BER: 1e-6, Proposal: 1e-4}.Run(bg, 0, 1) })
	mustPanic("ISUncorrectable zero trials", func() { ISUncorrectable{BER: 1e-6, Proposal: 1e-4}.Run(bg, 0, 1) })
	mustPanic("Splitting zero budget", func() { Splitting{BER: 1e-5}.Run(bg, 0, 1) })
	mustPanic("Splitting bad level", func() { Splitting{BER: 1e-5, Level: 99}.Run(bg, 100, 1) })
	mustPanic("Splitting bad BER", func() { Splitting{BER: 0}.Run(bg, 100, 1) })
}

// TestISPathFERMatchesAnalyticDeepTail: the multi-hop IS estimator lands
// within 3σ of Eq. 1 over the whole Hops×UnitBits span at BERs where
// naive path Monte-Carlo would need hundreds of millions of traversals
// per event.
func TestISPathFERMatchesAnalyticDeepTail(t *testing.T) {
	for _, hops := range []int{3, 7} {
		for _, ber := range []float64{1e-9, 1e-10} {
			e := ISPathFER{BER: ber, Proposal: AutoProposalFER(ber), Hops: hops}
			est := e.Run(bg, 400000, 1)
			if est.Value <= 0 {
				t.Fatalf("hops=%d BER %g: zero estimate %+v", hops, ber, est)
			}
			if est.RelErr > 0.05 {
				t.Fatalf("hops=%d BER %g: relative error %.3f too loose", hops, ber, est.RelErr)
			}
			if s := est.Sigma(est.Analytic); s > 3 {
				t.Fatalf("hops=%d BER %g: estimate %.4g vs analytic %.4g is %.1fσ off", hops, ber, est.Value, est.Analytic, s)
			}
		}
	}
}

// TestISPathFEROneHopReducesToISFER: a 1-hop path traversal is a single
// flit crossing, so ISPathFER{Hops: 1} must reproduce ISFER exactly —
// same stream, same weights, same estimate.
func TestISPathFEROneHopReducesToISFER(t *testing.T) {
	const ber = 1e-9
	q := AutoProposalFER(ber)
	single := ISFER{BER: ber, Proposal: q}.Run(bg, 200000, 5)
	path := ISPathFER{BER: ber, Proposal: q, Hops: 1}.Run(bg, 200000, 5)
	if single.Value != path.Value || single.Hits != path.Hits || single.SumW != path.SumW {
		t.Fatalf("1-hop path estimate diverges from ISFER:\nis    %+v\npath  %+v", single, path)
	}
}

// TestISPathFERWeightsSumToOne: the importance weights are a proper
// likelihood ratio over the span — their mean must be 1 within noise.
func TestISPathFERWeightsSumToOne(t *testing.T) {
	e := ISPathFER{BER: 1e-9, Proposal: AutoProposalFER(1e-9), Hops: 5}
	est := e.Run(bg, 300000, 9)
	if math.Abs(est.MeanWeight-1) > 0.02 {
		t.Fatalf("mean weight %.4f, want ≈1", est.MeanWeight)
	}
}
