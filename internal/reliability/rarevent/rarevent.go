// Package rarevent estimates ultra-rare flit-level failure probabilities
// — deep-tail flit error rates, uncorrectable-after-FEC rates, undetected
// rates — with variance reduction instead of brute throughput.
//
// PR 2's schedule-only Monte-Carlo walks ~1e10 flits/s/core, but at the
// paper's deep-tail operating points (BER ≤ 1e-9) the interesting events
// are so rare that naive sampling still cannot produce a confidence
// interval in any feasible run: a nonzero FER needs ~5e8 flits per hit,
// and an uncorrectable flit ~1e18. This package turns those "lower bound:
// 0 observed failures" results into point estimates with variance and
// relative-error control, via two complementary estimators behind one
// Estimator interface:
//
//   - Importance sampling (is.go): tilt the geometric error-event
//     schedule to a proposal BER q ≫ p, reweight each flit trajectory by
//     its exact likelihood ratio (phy.UnitLogLR — a product over the
//     drawn gaps that collapses to a per-flit closed form in the flip
//     count). Best when events are rare because the *rate* is low.
//
//   - Multilevel splitting (split.go): at a feasible BER, clone
//     trajectories each time they cross a near-miss level (k distinct
//     erroneous symbols within one flit — k-1 symbol errors inside one RS
//     interleave depth is one error short of uncorrectable), estimating
//     the tail as a product of per-level conditional probabilities with
//     level effort calibrated by a pilot run. Best when events are rare
//     because they need a *pile-up* of errors.
//
// Both are deterministic functions of (trials, seed); the sharded
// wrappers in package reliability derive per-shard seeds through
// runner.ShardSeed, so merged estimates are bit-identical at any worker
// count. The estimators cross-validate against naive schedule Monte-Carlo
// at overlapping BERs (1e-6..1e-7) where both converge — see
// reliability.RareSelfCheck and the acceptance tests.
package rarevent

import (
	"context"
	"fmt"
	"math"

	"repro/internal/flit"
)

// UnitBits is the trajectory width every estimator works over: one 256B
// flit crossing the channel.
const UnitBits = flit.Bits

// Estimate is a rare-event probability estimate with uncertainty. Value,
// Variance (of the estimator mean), and RelErr are the contract of the
// Estimator interface; the sum fields are the mergeable raw moments the
// sharded wrappers fold with MergeIS/MergeShards.
type Estimate struct {
	Value    float64 // point estimate of the per-flit event probability
	Variance float64 // variance of the estimator mean
	RelErr   float64 // sqrt(Variance)/Value; +Inf when Value is 0
	Trials   int     // flit trajectories consumed
	Hits     int     // trajectories that hit the event (raw, unweighted)
	Analytic float64 // closed-form comparator when one exists (else 0)

	// MeanWeight is the empirical mean importance weight across all
	// trials. For IS estimators E[W] = 1 exactly, so a mean far from 1
	// flags a broken likelihood ratio (the sum-to-one sanity check).
	// Splitting has no weights and reports 1.
	MeanWeight float64

	// Raw accumulators: Σ W·Z, Σ (W·Z)², Σ W over trials (Z = event
	// indicator). Exported so shard merges can recompute exact moments;
	// zero for splitting estimates, which merge as equal-effort means.
	SumWZ, SumWZ2, SumW float64
}

// String renders the estimate for CLI reports.
func (e Estimate) String() string {
	return fmt.Sprintf("%.4g ±%.1f%% (trials=%d hits=%d)",
		e.Value, 100*e.RelErr, e.Trials, e.Hits)
}

// Sigma returns the distance between the estimate and a reference value
// in units of the estimate's standard error (+Inf for a zero-variance
// mismatch) — the 3σ acceptance metric of the self-validation mode.
func (e Estimate) Sigma(ref float64) float64 {
	se := math.Sqrt(e.Variance)
	if se == 0 {
		if e.Value == ref {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(e.Value-ref) / se
}

// finalize recomputes Value/Variance/RelErr/MeanWeight from the raw sums.
func (e *Estimate) finalize() {
	n := float64(e.Trials)
	if n == 0 {
		e.RelErr = math.Inf(1)
		return
	}
	e.Value = e.SumWZ / n
	e.MeanWeight = e.SumW / n
	// Var(mean) = (E[X²] − E[X]²)/n with X = W·Z.
	e.Variance = (e.SumWZ2/n - e.Value*e.Value) / n
	if e.Variance < 0 { // roundoff guard
		e.Variance = 0
	}
	e.RelErr = math.Inf(1)
	if e.Value > 0 {
		e.RelErr = math.Sqrt(e.Variance) / e.Value
	}
}

// Estimator is a rare-event estimator: a pure function of a trial budget
// and a seed, returning a point estimate with variance and relative
// error. Implementations must be deterministic per (trials, seed) so the
// sharded wrappers inherit the runner's bit-identical-at-any-worker-count
// guarantee.
//
// The context is a cancellation hook only: implementations poll ctx.Err()
// every few thousand trajectories and return early with whatever partial
// accounting they hold, so a cancelled daemon job stops burning its shard
// mid-round instead of running the full budget. A partial estimate is
// statistically meaningless — callers must check ctx.Err() after Run and
// discard the value when it is non-nil. An uncancelled context never
// changes a single draw, keeping determinism intact.
type Estimator interface {
	// Name identifies the estimator in reports and errors.
	Name() string
	// Run consumes `trials` flit trajectories seeded from `seed`,
	// returning early (with a partial, to-be-discarded estimate) if ctx
	// is cancelled.
	Run(ctx context.Context, trials int, seed uint64) Estimate
}

// MergeIS folds per-shard IS estimates of the same quantity into one by
// summing the raw moment accumulators and recomputing the estimate —
// exact, order-dependent only through float summation order, which the
// runner fixes to shard order. The Analytic comparator is taken from the
// first non-zero part.
func MergeIS(parts []Estimate) Estimate {
	var m Estimate
	for _, p := range parts {
		m.Trials += p.Trials
		m.Hits += p.Hits
		m.SumWZ += p.SumWZ
		m.SumWZ2 += p.SumWZ2
		m.SumW += p.SumW
		if m.Analytic == 0 {
			m.Analytic = p.Analytic
		}
	}
	m.finalize()
	return m
}

// MergeShards folds per-shard estimates that carry no raw moments
// (splitting): each shard ran the same effort independently, so the
// merged value is the mean of shard values and the merged variance is the
// variance of that mean. Parts with zero trials are skipped.
func MergeShards(parts []Estimate) Estimate {
	var m Estimate
	used := 0
	for _, p := range parts {
		if p.Trials == 0 {
			continue
		}
		used++
		m.Value += p.Value
		m.Variance += p.Variance
		m.Trials += p.Trials
		m.Hits += p.Hits
		if m.Analytic == 0 {
			m.Analytic = p.Analytic
		}
	}
	if used == 0 {
		m.RelErr = math.Inf(1)
		m.MeanWeight = 1
		return m
	}
	m.Value /= float64(used)
	m.Variance /= float64(used * used)
	m.MeanWeight = 1
	m.RelErr = math.Inf(1)
	if m.Value > 0 {
		m.RelErr = math.Sqrt(m.Variance) / m.Value
	}
	return m
}

// AutoProposalFER returns the variance-near-optimal proposal BER for the
// ≥1-bit-error (FER) event: the dominant contribution is single-flip
// flits, whose second moment is minimized when the expected flips per
// flit n·q equal 1 (relative variance ∝ e^{n·q}/(n·q)). The proposal is
// never below the true BER.
func AutoProposalFER(ber float64) float64 {
	return math.Max(ber, 1.0/float64(UnitBits))
}

// AutoProposalUC returns the proposal for uncorrectable/undetected
// events, which need at least two symbol errors in one RS codeword: the
// dominant contribution is two-flip flits, optimal at n·q ≈ 2.
func AutoProposalUC(ber float64) float64 {
	return math.Max(ber, 2.0/float64(UnitBits))
}
