package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a series name, its labels, and
// the value. Histogram series appear as their rendered parts
// (name_bucket with an le label, name_sum, name_count).
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s Sample) Label(k string) string { return s.Labels[k] }

// ParsePrometheus parses text exposition format back into samples — the
// inverse of WritePrometheus, used by scrapers (cmd/rxltop) that
// reconstruct gauges and histograms from a live /metrics endpoint.
// Comment and blank lines are skipped; malformed lines are an error, so
// a scraper never silently renders garbage.
func ParsePrometheus(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		s.Name = rest[:i]
		end := strings.LastIndex(rest, "}")
		if end < i {
			return s, fmt.Errorf("obs: unterminated labels: %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, fmt.Errorf("obs: %v in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("obs: malformed sample line: %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("obs: bad value in %q: %v", line, err)
	}
	s.Value = v
	if s.Name == "" {
		return s, fmt.Errorf("obs: empty metric name: %q", line)
	}
	return s, nil
}

// parseLabels parses `k="v",k2="v2"` with the exposition escapes
// (backslash, quote, newline) undone.
func parseLabels(in string, into map[string]string) error {
	for len(in) > 0 {
		eq := strings.Index(in, "=")
		if eq < 0 {
			return fmt.Errorf("label without value")
		}
		key := strings.TrimSpace(in[:eq])
		in = in[eq+1:]
		if len(in) == 0 || in[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		in = in[1:]
		var sb strings.Builder
		i := 0
		for ; i < len(in); i++ {
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(in[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
		}
		if i >= len(in) {
			return fmt.Errorf("unterminated label value")
		}
		into[key] = sb.String()
		in = strings.TrimPrefix(strings.TrimSpace(in[i+1:]), ",")
		in = strings.TrimSpace(in)
	}
	return nil
}

// SumSamples adds the values of every sample matching name (and, when
// given, all of the label pairs) — how a scraper folds per-outcome or
// per-peer series into a total.
func SumSamples(samples []Sample, name string, labelPairs ...string) float64 {
	var sum float64
	for _, s := range samples {
		if s.Name != name || !matchLabels(s, labelPairs) {
			continue
		}
		sum += s.Value
	}
	return sum
}

func matchLabels(s Sample, pairs []string) bool {
	for i := 0; i+1 < len(pairs); i += 2 {
		if s.Labels[pairs[i]] != pairs[i+1] {
			return false
		}
	}
	return true
}

// RebuildHistogram reconstructs cumulative buckets from parsed
// name_bucket samples, summing across series that differ in labels
// other than le (e.g. folding the per-outcome request histograms into
// one). The returned bounds exclude +Inf; cum has one extra entry for
// it — exactly the shape CumulativeQuantile takes.
func RebuildHistogram(samples []Sample, name string) (bounds []float64, cum []uint64) {
	byLE := map[float64]float64{}
	hasInf := false
	for _, s := range samples {
		if s.Name != name+"_bucket" {
			continue
		}
		le := s.Label("le")
		if le == "+Inf" {
			hasInf = true
			byLE[inf] += s.Value
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		byLE[b] += s.Value
	}
	if len(byLE) == 0 || !hasInf {
		return nil, nil
	}
	for b := range byLE {
		if b != inf {
			bounds = append(bounds, b)
		}
	}
	sort.Float64s(bounds)
	for _, b := range bounds {
		cum = append(cum, uint64(byLE[b]))
	}
	cum = append(cum, uint64(byLE[inf]))
	return bounds, cum
}

// inf is the +Inf bucket's map key.
var inf = func() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}()
