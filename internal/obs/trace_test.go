package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTracerRecordAndSort pins span recording, retrieval, and the
// by-start merge ordering.
func TestTracerRecordAndSort(t *testing.T) {
	tr := NewTracer("daemon", "http://d1:8080")
	base := time.Now()
	tr.Record("rid1", "run", base.Add(10*time.Millisecond), 5*time.Millisecond, nil)
	tr.Record("rid1", "submit", base, time.Millisecond, map[string]string{"kind": "grid"})
	tr.Record("rid2", "submit", base, 0, nil)

	spans := tr.Spans("rid1")
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "submit" || spans[1].Name != "run" {
		t.Fatalf("spans not sorted by start: %v, %v", spans[0].Name, spans[1].Name)
	}
	if spans[0].Service != "daemon" || spans[0].Origin != "http://d1:8080" {
		t.Fatalf("span not stamped with service/origin: %+v", spans[0])
	}
	if spans[0].Attrs["kind"] != "grid" {
		t.Fatal("attrs lost")
	}
	if tr.Spans("missing") != nil {
		t.Fatal("unknown rid returned spans")
	}
	if tr.Size() != 2 {
		t.Fatalf("size = %d, want 2", tr.Size())
	}
}

// TestTracerBounds pins the LRU eviction and the per-trace span cap.
func TestTracerBounds(t *testing.T) {
	tr := NewTracer("daemon", "")
	tr.maxIDs, tr.maxSpans = 4, 3
	now := time.Now()
	for i := 0; i < 8; i++ {
		tr.Record(fmt.Sprintf("rid%d", i), "s", now, 0, nil)
	}
	if tr.Size() != 4 {
		t.Fatalf("size = %d, want 4 after eviction", tr.Size())
	}
	if tr.Spans("rid0") != nil {
		t.Fatal("oldest trace survived eviction")
	}
	for i := 0; i < 10; i++ {
		tr.Record("rid7", "extra", now, 0, nil)
	}
	if n := len(tr.Spans("rid7")); n != 3 {
		t.Fatalf("span cap: got %d spans, want 3", n)
	}
}

// TestContextPropagation pins the WithTrace/Record/RequestID plumbing a
// request context carries across layers, including the nil-safe no-ops.
func TestContextPropagation(t *testing.T) {
	tr := NewTracer("front", "front")
	ctx := WithTrace(context.Background(), tr, "ridX")
	if RequestID(ctx) != "ridX" {
		t.Fatal("request id lost in context")
	}
	Record(ctx, "forward", time.Now(), map[string]string{"peer": "http://d1"})
	if len(tr.Spans("ridX")) != 1 {
		t.Fatal("context Record did not reach the tracer")
	}
	// Contexts without a trace are silently inert.
	Record(context.Background(), "nowhere", time.Now(), nil)
	if RequestID(context.Background()) != "" {
		t.Fatal("bare context reported a request id")
	}
}

// TestNewRequestID pins shape and (statistical) uniqueness.
func TestNewRequestID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: len %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// TestTracerConcurrency is the -race pin for parallel Record/Spans.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer("daemon", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rid := fmt.Sprintf("rid%d", w%3)
			for i := 0; i < 500; i++ {
				tr.Record(rid, "s", time.Now(), 0, nil)
				_ = tr.Spans(rid)
			}
		}(w)
	}
	wg.Wait()
}
