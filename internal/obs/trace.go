package obs

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// HeaderRequestID is the propagation header: every request through a
// daemon or front gets an ID here (generated if the client sent none),
// and every hop a request makes — front → owner, owner → peer probe —
// forwards it, so the spans each process records line up under one ID.
const HeaderRequestID = "X-Rxl-Request-Id"

// Span is one recorded event of a request's lifecycle. Spans from
// different processes merge by request ID; Service/Origin say who
// recorded each one (a daemon's origin is its fleet URL, a front's is
// "front"). Times are wall-clock microseconds so cross-process ordering
// works on one host or NTP-synced hosts — the scale fleet traces live at.
type Span struct {
	Service string            `json:"service"`
	Origin  string            `json:"origin,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans per request ID into a bounded LRU of trace logs.
// Entries exist only for IDs that recorded at least one span, so probe
// and healthz chatter (which records nothing) never evicts real traces.
type Tracer struct {
	service, origin  string
	maxIDs, maxSpans int

	mu     sync.Mutex
	traces map[string]*list.Element
	lru    *list.List // front = most recently touched
}

// traceLog is one request ID's spans.
type traceLog struct {
	rid     string
	spans   []Span
	dropped int
}

// NewTracer returns a tracer stamping spans with service/origin, keeping
// at most 1024 request IDs of 256 spans each.
func NewTracer(service, origin string) *Tracer {
	return &Tracer{
		service:  service,
		origin:   origin,
		maxIDs:   1024,
		maxSpans: 256,
		traces:   make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Record appends a span to rid's trace. Overflowing logs count drops
// instead of growing; the oldest trace is evicted past the ID bound.
func (t *Tracer) Record(rid, name string, start time.Time, d time.Duration, attrs map[string]string) {
	if t == nil || rid == "" {
		return
	}
	span := Span{
		Service: t.service,
		Origin:  t.origin,
		Name:    name,
		StartUS: start.UnixMicro(),
		DurUS:   d.Microseconds(),
		Attrs:   attrs,
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.traces[rid]
	if !ok {
		el = t.lru.PushFront(&traceLog{rid: rid})
		t.traces[rid] = el
		for t.lru.Len() > t.maxIDs {
			tail := t.lru.Back()
			t.lru.Remove(tail)
			delete(t.traces, tail.Value.(*traceLog).rid)
		}
	} else {
		t.lru.MoveToFront(el)
	}
	log := el.Value.(*traceLog)
	if len(log.spans) >= t.maxSpans {
		log.dropped++
		return
	}
	log.spans = append(log.spans, span)
}

// Spans returns a copy of rid's spans sorted by start time (ties keep
// record order). Nil when the ID recorded nothing here.
func (t *Tracer) Spans(rid string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	el, ok := t.traces[rid]
	if !ok {
		t.mu.Unlock()
		return nil
	}
	out := append([]Span(nil), el.Value.(*traceLog).spans...)
	t.mu.Unlock()
	SortSpans(out)
	return out
}

// Size reports how many request IDs hold spans (statsz-style gauges).
func (t *Tracer) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

// SortSpans orders spans by start time, stably — the merge step for
// trace assembly across processes.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
}

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// timestamp so tracing degrades instead of panicking.
		return "t" + hex.EncodeToString([]byte(time.Now().Format("150405.000000")))[:15]
	}
	return hex.EncodeToString(b[:])
}

// ctxKey carries the (tracer, request ID) pair through a request's
// context so deep layers — the peer fetcher, the engines — can record
// spans without threading tracer plumbing through every signature.
type ctxKey struct{}

type ctxRef struct {
	t   *Tracer
	rid string
}

// WithTrace returns a context carrying the tracer and request ID.
func WithTrace(ctx context.Context, t *Tracer, rid string) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxRef{t, rid})
}

// RequestID extracts the request ID from a trace-carrying context ("" if
// none) — the value HTTP clients propagate in HeaderRequestID.
func RequestID(ctx context.Context) string {
	ref, _ := ctx.Value(ctxKey{}).(ctxRef)
	return ref.rid
}

// Record appends a span to the context's trace, a no-op without one.
// start is when the operation began; the duration is measured to now.
func Record(ctx context.Context, name string, start time.Time, attrs map[string]string) {
	ref, ok := ctx.Value(ctxKey{}).(ctxRef)
	if !ok {
		return
	}
	ref.t.Record(ref.rid, name, start, time.Since(start), attrs)
}
