package obs

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram: per-bucket atomic counters plus
// an atomic count and sum. Observe is allocation-free — a binary search
// over the (immutable) bounds and three atomic adds — so it is safe on
// the request hot path. Buckets are stored per-bucket internally and
// rendered cumulatively, as the exposition format requires.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64

	// leLabels are the pre-rendered per-bucket label strings (the series
	// labels with le spliced in), computed once at creation so a scrape
	// allocates nothing per bucket either.
	leLabels []string
}

// Histogram returns (creating if needed) the histogram series for name
// and labels. bounds must be ascending; nil selects DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, "histogram")
	labels := labelString(labelPairs)
	if ex, ok := f.series[labels]; ok {
		return ex.(*Histogram)
	}
	h := &Histogram{
		bounds:   bounds,
		buckets:  make([]atomic.Uint64, len(bounds)+1),
		leLabels: make([]string, len(bounds)+1),
	}
	for i, b := range bounds {
		h.leLabels[i] = spliceLE(labels, formatFloat(b))
	}
	h.leLabels[len(bounds)] = spliceLE(labels, "+Inf")
	f.getOrAdd(labels, h)
	return h
}

// spliceLE adds the le label to a canonical label string.
func spliceLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: its bucket
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// quantile math: cumulative bucket counts aligned with Bounds (the last
// entry is the +Inf bucket, equal to Count).
type HistogramSnapshot struct {
	Bounds []float64 // finite upper bounds
	Cum    []uint64  // cumulative counts, len(Bounds)+1 (last = total)
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state. Concurrent observers may land
// between bucket loads; the skew is at most the handful of in-flight
// observations, which is what any scrape of a live process sees.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Cum:    make([]uint64, len(h.buckets)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Cum[i] = cum
	}
	s.Count = cum
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) from the snapshot with
// linear interpolation inside the landing bucket — the same estimate
// Prometheus's histogram_quantile computes. Samples in the +Inf bucket
// clamp to the highest finite bound. Returns NaN on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return CumulativeQuantile(s.Bounds, s.Cum, q)
}

// CumulativeQuantile is the quantile estimate over explicit cumulative
// bucket counts, shared by HistogramSnapshot and by scrapers (rxltop)
// that reconstruct histograms from parsed _bucket series.
func CumulativeQuantile(bounds []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 || cum[len(cum)-1] == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	rank := q * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(bounds) {
		// Landed in +Inf: the histogram can only say "past the ladder".
		if len(bounds) == 0 {
			return math.NaN()
		}
		return bounds[len(bounds)-1]
	}
	lower := 0.0
	var prev uint64
	if i > 0 {
		lower = bounds[i-1]
		prev = cum[i-1]
	}
	upper := bounds[i]
	inBucket := cum[i] - prev
	if inBucket == 0 {
		return upper
	}
	return lower + (upper-lower)*(rank-float64(prev))/float64(inBucket)
}

func (h *Histogram) write(w *bufio.Writer, name, labels string) {
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, h.leLabels[i], cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(math.Float64frombits(h.sumBits.Load())))
	// _count is the +Inf cumulative from this same pass, so one render is
	// always internally consistent even while observers are landing.
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}
