package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeRender pins the exposition format: HELP/TYPE headers,
// sorted families, canonical (sorted, escaped) labels, integer counters.
func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zeta_total", "last family alphabetically", "outcome", "hit")
	c.Add(3)
	r.Counter("zeta_total", "last family alphabetically", "outcome", "miss").Inc()
	g := r.Gauge("alpha_depth", "first family")
	g.Set(7.5)
	r.GaugeFunc("alpha_depth", "first family", func() float64 { return 2 }, "kind", `quo"ted`)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	wantLines := []string{
		"# HELP alpha_depth first family",
		"# TYPE alpha_depth gauge",
		"alpha_depth 7.5",
		`alpha_depth{kind="quo\"ted"} 2`,
		"# TYPE zeta_total counter",
		`zeta_total{outcome="hit"} 3`,
		`zeta_total{outcome="miss"} 1`,
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Errorf("render missing %q in:\n%s", w, out)
		}
	}
	if strings.Index(out, "alpha_depth") > strings.Index(out, "zeta_total") {
		t.Error("families not sorted by name")
	}
}

// TestSeriesIdempotent pins get-or-create: asking for the same series
// twice returns one underlying value.
func TestSeriesIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "l", "v")
	b := r.Counter("x_total", "", "l", "v")
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counter identity broken")
	}
	// Label order must not split series.
	h1 := r.Histogram("h_seconds", "", nil, "a", "1", "b", "2")
	h2 := r.Histogram("h_seconds", "", nil, "b", "2", "a", "1")
	if h1 != h2 {
		t.Fatal("label order split a histogram series")
	}
}

// TestTypeConflictPanics pins the fail-loudly contract for miswired
// families.
func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic registering c_total as a gauge")
		}
	}()
	r.Gauge("c_total", "")
}

// TestHistogramBuckets pins bucket assignment and the cumulative
// rendering against hand-checked samples.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.002, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	// Buckets: le=0.001 gets {0.0005, 0.001} (bound is inclusive),
	// le=0.01 adds {0.002}, le=0.1 adds {0.05}, +Inf adds {0.5, 2}.
	s := h.Snapshot()
	wantCum := []uint64{2, 3, 4, 6}
	for i, w := range wantCum {
		if s.Cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, s.Cum[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-2.5535) > 1e-9 {
		t.Errorf("sum = %g, want 2.5535", s.Sum)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	for _, w := range []string{
		`lat_seconds_bucket{le="0.001"} 2`,
		`lat_seconds_bucket{le="0.01"} 3`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 6`,
		`lat_seconds_count 6`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(sb.String(), w) {
			t.Errorf("histogram render missing %q in:\n%s", w, sb.String())
		}
	}
}

// TestHistogramQuantile pins the interpolation math on a known shape:
// 100 samples uniform in (0, 0.1] over a 0.025/0.05/0.075/0.1 ladder.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{0.025, 0.05, 0.075, 0.1})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001) // 0.001..0.100, 25 per bucket
	}
	s := h.Snapshot()
	cases := []struct{ q, want float64 }{
		{0.5, 0.05},     // exactly the 50th sample's bucket edge
		{0.95, 0.095},   // 95th sample interpolates to 0.095
		{0.125, 0.0125}, // rank 12.5 of 25 in the first bucket
	}
	for _, c := range cases {
		got := s.Quantile(c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q%.3f = %g, want %g", c.q, got, c.want)
		}
	}
	// +Inf landings clamp to the top finite bound.
	h.Observe(5)
	for i := 0; i < 200; i++ {
		h.Observe(1)
	}
	if got := h.Snapshot().Quantile(0.99); got != 0.1 {
		t.Errorf("quantile in +Inf bucket = %g, want clamp to 0.1", got)
	}
	// Empty histograms answer NaN, not garbage.
	e := r.Histogram("e_seconds", "", nil)
	if !math.IsNaN(e.Snapshot().Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
}

// TestRegistryConcurrency hammers counters, gauges, and histograms from
// parallel writers while scrapes run — the -race contract for the whole
// registry: recording is atomic, rendering takes no lock the hot path
// shares.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "", "outcome", "hit")
	g := r.Gauge("conc_depth", "")
	h := r.Histogram("conc_seconds", "", nil)
	r.GaugeFunc("conc_fn", "", func() float64 { return float64(c.Value()) })

	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) * 0.0001)
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != writers*perWriter {
		t.Errorf("counter = %d, want %d", c.Value(), writers*perWriter)
	}
	if g.Value() != writers*perWriter {
		t.Errorf("gauge = %g, want %d", g.Value(), writers*perWriter)
	}
	if s := h.Snapshot(); s.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", s.Count, writers*perWriter)
	}
}
