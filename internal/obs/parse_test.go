package obs

import (
	"math"
	"strings"
	"testing"
)

// TestParseRoundTrip pins that ParsePrometheus inverts WritePrometheus:
// a scraper reading a registry's own render recovers every value,
// including label escapes and histogram parts.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "", "outcome", "hit").Add(7)
	r.Counter("jobs_total", "", "outcome", `we"ird`).Add(2)
	r.Gauge("depth", "").Set(3.5)
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	if got := SumSamples(samples, "jobs_total"); got != 9 {
		t.Errorf("jobs_total sum = %g, want 9", got)
	}
	if got := SumSamples(samples, "jobs_total", "outcome", `we"ird`); got != 2 {
		t.Errorf("escaped-label series = %g, want 2", got)
	}
	if got := SumSamples(samples, "depth"); got != 3.5 {
		t.Errorf("depth = %g, want 3.5", got)
	}

	bounds, cum := RebuildHistogram(samples, "lat_seconds")
	if len(bounds) != 2 || bounds[0] != 0.01 || bounds[1] != 0.1 {
		t.Fatalf("rebuilt bounds = %v", bounds)
	}
	wantCum := []uint64{1, 2, 3}
	for i, w := range wantCum {
		if cum[i] != w {
			t.Fatalf("rebuilt cum = %v, want %v", cum, wantCum)
		}
	}
	// Quantiles work on the rebuilt shape.
	if q := CumulativeQuantile(bounds, cum, 0.5); math.Abs(q-0.055) > 1e-9 {
		t.Errorf("rebuilt q50 = %g, want 0.055", q)
	}
}

// TestParseRejectsGarbage pins the fail-loudly contract for scrapes of
// something that is not an exposition endpoint.
func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"<html>not metrics</html>",
		"name_without_value",
		`broken{le="0.1" 3`,
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted garbage", bad)
		}
	}
}

// TestParseMissingHistogram pins RebuildHistogram's nil answer when the
// family is absent or lacks its +Inf bucket.
func TestParseMissingHistogram(t *testing.T) {
	samples, err := ParsePrometheus(strings.NewReader(`other_bucket{le="0.1"} 2` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b, c := RebuildHistogram(samples, "lat_seconds"); b != nil || c != nil {
		t.Error("absent family rebuilt non-nil")
	}
	if b, c := RebuildHistogram(samples, "other"); b != nil || c != nil {
		t.Error("family without +Inf rebuilt non-nil")
	}
}
