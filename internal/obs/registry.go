// Package obs is the fleet observability layer: a stdlib-only metrics
// registry rendered in Prometheus text exposition format, and a
// cross-process span tracer keyed by propagated request IDs.
//
// Two design constraints shape everything here:
//
//   - The hot path must stay lock-cheap and allocation-free. Counter,
//     Gauge, and Histogram values are plain atomics; handles are created
//     once at wiring time, so recording is an atomic add with no map
//     lookups and no allocations. Slower sources (values already guarded
//     by a mutex elsewhere, like the scheduler's queue depth) register as
//     Func metrics that are sampled only when a scrape happens.
//
//   - Observability must not perturb served bytes. Nothing in this
//     package touches result documents; /metrics and trace endpoints are
//     separate surfaces, and every byte-identity suite runs with them on.
//
// The registry speaks the Prometheus text format (counters, gauges, and
// fixed-bucket cumulative histograms with _bucket/_sum/_count series), so
// `GET /metrics` works with a real Prometheus scraper and with
// cmd/rxltop's built-in parser alike.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets is the default histogram bucket ladder for request
// latencies, in seconds: 100µs (a warm cache hit) up through 30s (a deep
// rare-event run), roughly 2.5x per step.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Registry holds metric families and renders them as Prometheus text.
// Metric handles are created up front (Counter/Gauge/Histogram) or
// registered as scrape-time callbacks (CounterFunc/GaugeFunc); creation
// takes the registry lock, recording never does.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric name: shared HELP/TYPE plus its label series.
type family struct {
	name, help, typ string
	series          map[string]metric // canonical label string → metric
	order           []string          // registration order
}

// metric is anything a family can render: a value series or a histogram.
type metric interface {
	// write renders the series. name is the family name, labels the
	// canonical label string ("" or `{k="v",...}`).
	write(w *bufio.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelString builds the canonical label rendering from name/value pairs,
// sorted by label name so the same logical series always has the same
// identity. Values are escaped per the exposition format.
func labelString(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: label pairs must come in name, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the family for name, creating it with the given type,
// and panics on a type conflict — families are wired once at startup, so
// a conflict is a programming error worth failing loudly on.
func (r *Registry) register(name, help, typ string) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
		r.fams[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// getOrAdd installs m under the label set unless a series already exists,
// returning the resident metric either way (create is idempotent).
func (f *family) getOrAdd(labels string, m metric) metric {
	if ex, ok := f.series[labels]; ok {
		return ex
	}
	f.series[labels] = m
	f.order = append(f.order, labels)
	return m
}

// Counter is a monotonically increasing value. Inc/Add are single atomic
// operations — safe and cheap on any path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter returns (creating if needed) the counter series for name and
// the given label name/value pairs.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, "counter")
	return f.getOrAdd(labelString(labelPairs), &Counter{}).(*Counter)
}

// Gauge is a settable value (float64 bits in an atomic).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; uncontended in practice).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// Gauge returns (creating if needed) the gauge series for name and labels.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, "gauge")
	return f.getOrAdd(labelString(labelPairs), &Gauge{}).(*Gauge)
}

// funcMetric samples a callback at scrape time — the bridge for values
// that already live under someone else's lock (queue depths, cache
// stats). The callback must be safe to call from the scrape goroutine.
type funcMetric struct {
	fn func() float64
}

func (m funcMetric) write(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(m.fn()))
}

// GaugeFunc registers a gauge whose value is fn() at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, "gauge")
	f.getOrAdd(labelString(labelPairs), funcMetric{fn})
}

// CounterFunc registers a counter whose value is fn() at scrape time.
// fn must be monotonic (it exposes an existing cumulative counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.register(name, help, "counter")
	f.getOrAdd(labelString(labelPairs), funcMetric{fn})
}

// WritePrometheus renders every family in the text exposition format,
// sorted by family name for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		// Series creation happens at wiring time, never during a render,
		// so reading order without the registry lock is safe: the family
		// pointer was published before any scrape could reach it.
		for _, labels := range f.order {
			f.series[labels].write(bw, f.name, labels)
		}
	}
	return bw.Flush()
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
