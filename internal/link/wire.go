package link

import (
	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/rs"
	"repro/internal/sim"
)

// Wire is a unidirectional flit conduit: a sim.Pipe with an optional
// bit-error channel applied in flight and an optional scripted fault hook
// used by the deterministic failure-scenario experiments (Figs. 4–5).
//
// The wire is where the error-event fast path forks: a clean flit whose
// hop channel schedules no error event within the next 2048 bits passes
// by reference — the channel advances in O(1), no image byte is read or
// written. Any flit the schedule does touch is first materialized (its
// deferred CRC/FEC computed) so the byte-level corruption, and everything
// downstream of it, is bit-identical to the always-slow reference.
type Wire struct {
	pipe *sim.Pipe

	// Channel, when non-nil, corrupts every flit image in flight
	// according to its BER/burst model.
	Channel *phy.Channel

	// PathSched, when non-nil, replaces Channel with a shared path
	// schedule: every wire of one source→destination path holds the same
	// SharedSchedule and each crossing consumes one unit of its stream.
	// On the wire where traversals begin (PathHops > 0) a clean window
	// grants the flit a path pass covering the whole traversal, so the
	// remaining wires skip channel work entirely. The grant policy is
	// part of the channel model — it applies identically whether flits
	// ride the fast path or the byte-level reference.
	PathSched *phy.SharedSchedule
	// PathHops, on the injection wire of a path, is the total number of
	// wire crossings (this one included) a traversal spans. Zero marks a
	// mid-path wire.
	PathHops int

	// FaultHook, when non-nil, inspects each (possibly corrupted) flit at
	// arrival; returning true drops the flit silently — the scripted
	// equivalent of a switch discarding an uncorrectable flit. Hooked
	// wires force every flit onto the byte-level path: the hook may
	// mutate the image, so the clean mark cannot be trusted past it.
	FaultHook func(*flit.Flit) bool

	// Volatile marks a wire whose FaultHook a fault script may install or
	// remove mid-run. An express claim is immutable once taken — the
	// traversal's only event is the final delivery, so a hook appearing
	// after claim time would be silently skipped. Express claims therefore
	// never cross a volatile wire; campaigns set the flag before the run
	// (deterministically, traffic-independently), so fast and byte-level
	// runs fall back on exactly the same traversals.
	Volatile bool

	// HookDropped counts flits dropped by FaultHook.
	HookDropped uint64

	// fec materializes deferred seals when the channel or a fault hook
	// needs the byte-complete image; built lazily since clean traffic on
	// an error-free wire never needs it.
	fec *rs.Interleaved
}

// NewWire builds a wire delivering flits to deliver after serialization and
// propagation delay. Use sim.FlitTime (2 ns) as the serialization delay of a
// full-speed x16 CXL 3.0 link.
func NewWire(eng *sim.Engine, ser, prop sim.Time, deliver func(*flit.Flit)) *Wire {
	w := &Wire{}
	w.pipe = &sim.Pipe{
		Engine:             eng,
		SerializationDelay: ser,
		PropagationDelay:   prop,
		Sink: func(x interface{}) {
			f := x.(*flit.Flit)
			switch {
			case w.PathSched != nil:
				if w.PathHops > 0 {
					BeginPathTraversal(w.PathSched, w.fecLazy(), f, w.PathHops)
				} else if !f.TakePathPass() {
					CrossPathUnit(w.PathSched, w.fecLazy(), f)
				}
			case w.Channel != nil:
				if f.Clean() && w.Channel.NextEvent() >= flit.Bits {
					// Fast path: the schedule proves this flit crosses
					// untouched. Account the bits and move on.
					w.Channel.Advance(flit.Bits)
				} else {
					w.materialize(f)
					if w.Channel.Corrupt(f.Raw[:]) > 0 {
						f.Taint()
					}
				}
			}
			if w.FaultHook != nil {
				w.materialize(f)
				f.Taint()
				if w.FaultHook(f) {
					w.HookDropped++
					flit.Release(f)
					return
				}
			}
			deliver(f)
		},
	}
	return w
}

// materialize computes a deferred seal so byte-level processing sees the
// complete image. No-op for eagerly sealed flits.
func (w *Wire) materialize(f *flit.Flit) {
	if !f.Deferred() {
		return
	}
	f.Materialize(w.fecLazy())
}

// fecLazy returns the wire's FEC codec, building it on first use — clean
// traffic on an error-free wire never needs one.
func (w *Wire) fecLazy() *rs.Interleaved {
	if w.fec == nil {
		w.fec = flit.NewFEC()
	}
	return w.fec
}

// BeginPathTraversal opens a flit's traversal of a shared-schedule path at
// its injection crossing. A clean whole-traversal window consumes all
// hops×flit.Bits up front, grants the flit a pass for the remaining
// hops-1 crossings, and returns true; otherwise only this crossing is
// consumed — byte-level when the schedule strikes it — and false is
// returned. The decision depends only on the schedule — never on the
// flit's fast-path marks — so fast and byte-level runs consume the stream
// identically. The grant verdict is what express traversal keys on: a
// granted flit's whole mesh timing is deterministic at injection.
func BeginPathTraversal(s *phy.SharedSchedule, fec *rs.Interleaved, f *flit.Flit, hops int) bool {
	if s.Begin(hops) {
		f.SetPathPass(hops - 1)
		return true
	}
	CrossPathUnit(s, fec, f)
	return false
}

// CrossPathUnit consumes one shared-schedule crossing for f: an O(1)
// advance when the unit is clean, a materialize-and-corrupt when the
// schedule strikes it.
func CrossPathUnit(s *phy.SharedSchedule, fec *rs.Interleaved, f *flit.Flit) {
	if s.CrossClean() {
		s.Advance()
		return
	}
	f.Materialize(fec)
	if s.Corrupt(f.Raw[:]) > 0 {
		f.Taint()
	}
}

// Send transmits a flit. The caller relinquishes ownership: the flit may be
// corrupted in flight and is handed to the receiver.
func (w *Wire) Send(f *flit.Flit) { w.pipe.Send(f) }

// SendAfter transmits a flit whose serialization may start no earlier
// than `earliest` — the switch-latency fold (sim.Pipe.SendAt).
func (w *Wire) SendAfter(f *flit.Flit, earliest sim.Time) { w.pipe.SendAt(f, earliest) }

// Reserve claims the wire for one flit starting no earlier than `earliest`
// without carrying it through an event, returning the arrival time the
// equivalent SendAfter would have delivered at. Express traversal claims
// every wire of a route this way at injection; the claimed flit bypasses
// the wire's sink entirely, so callers must have proven via
// ExpressClaimable that the sink would have been a pass-through.
func (w *Wire) Reserve(earliest sim.Time) sim.Time { return w.pipe.Reserve(earliest) }

// ExpressClaimable reports whether an express traversal may claim this
// wire: no per-wire channel or path schedule (the mesh drives shared
// schedules from its arrival sinks — a wire-attached error model would be
// skipped by the claim) and no scripted fault hook installed or pending
// (Volatile). In-flight flits do not block a claim — claims queue FIFO on
// the wire's busy window, and per-path delivery order (ISN's ground rule)
// is the fabric's concern: it claims every flit of a claimable route at
// injection, so claim order is injection order.
func (w *Wire) ExpressClaimable() bool {
	return w.Channel == nil && w.PathSched == nil && w.FaultHook == nil && !w.Volatile
}

// InFlight returns the number of flits sent on this wire but not yet
// delivered (reservations excluded).
func (w *Wire) InFlight() int { return w.pipe.InFlight() }

// QueuePeak returns the high-water mark of the wire's serialization
// queue depth — the backpressure measurement of congestion scenarios.
func (w *Wire) QueuePeak() uint64 { return w.pipe.QueuePeak }

// FreeAt returns the earliest time a new Send would begin serializing.
func (w *Wire) FreeAt() sim.Time { return w.pipe.FreeAt() }

// BusyTime returns cumulative serialization occupancy.
func (w *Wire) BusyTime() sim.Time { return w.pipe.BusyTime }

// Sent returns the number of flits accepted by the wire.
func (w *Wire) Sent() uint64 { return w.pipe.Sent }

// Utilization returns the fraction of elapsed time the wire spent
// serializing flits.
func (w *Wire) Utilization() float64 { return w.pipe.Utilization() }
