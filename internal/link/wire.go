package link

import (
	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Wire is a unidirectional flit conduit: a sim.Pipe with an optional
// bit-error channel applied in flight and an optional scripted fault hook
// used by the deterministic failure-scenario experiments (Figs. 4–5).
type Wire struct {
	pipe *sim.Pipe

	// Channel, when non-nil, corrupts every flit image in flight
	// according to its BER/burst model.
	Channel *phy.Channel

	// FaultHook, when non-nil, inspects each (possibly corrupted) flit at
	// arrival; returning true drops the flit silently — the scripted
	// equivalent of a switch discarding an uncorrectable flit.
	FaultHook func(*flit.Flit) bool

	// HookDropped counts flits dropped by FaultHook.
	HookDropped uint64
}

// NewWire builds a wire delivering flits to deliver after serialization and
// propagation delay. Use sim.FlitTime (2 ns) as the serialization delay of a
// full-speed x16 CXL 3.0 link.
func NewWire(eng *sim.Engine, ser, prop sim.Time, deliver func(*flit.Flit)) *Wire {
	w := &Wire{}
	w.pipe = &sim.Pipe{
		Engine:             eng,
		SerializationDelay: ser,
		PropagationDelay:   prop,
		Sink: func(x interface{}) {
			f := x.(*flit.Flit)
			if w.Channel != nil {
				w.Channel.Corrupt(f.Raw[:])
			}
			if w.FaultHook != nil && w.FaultHook(f) {
				w.HookDropped++
				return
			}
			deliver(f)
		},
	}
	return w
}

// Send transmits a flit. The caller relinquishes ownership: the flit may be
// corrupted in flight and is handed to the receiver.
func (w *Wire) Send(f *flit.Flit) { w.pipe.Send(f) }

// FreeAt returns the earliest time a new Send would begin serializing.
func (w *Wire) FreeAt() sim.Time { return w.pipe.FreeAt() }

// BusyTime returns cumulative serialization occupancy.
func (w *Wire) BusyTime() sim.Time { return w.pipe.BusyTime }

// Sent returns the number of flits accepted by the wire.
func (w *Wire) Sent() uint64 { return w.pipe.Sent }

// Utilization returns the fraction of elapsed time the wire spent
// serializing flits.
func (w *Wire) Utilization() float64 { return w.pipe.Utilization() }
