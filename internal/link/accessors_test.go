package link

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Accessor and edge-path coverage: these tests pin down the small exported
// surface (introspection accessors, wire statistics) and the defensive
// branches of the sequence machinery that the protocol tests rarely reach.

func TestPeerIntrospectionAccessors(t *testing.T) {
	eng := sim.NewEngine()
	a := NewPeer("A", eng, DefaultConfig(ProtocolRXL))
	b := NewPeer("B", eng, DefaultConfig(ProtocolRXL))
	ab, _ := ConnectDirect(eng, a, b, sim.FlitTime, sim.Nanosecond)

	if a.NextSeq() != 0 || a.ExpectedSeq() != 0 || a.Queued() != 0 {
		t.Fatal("fresh peer not zeroed")
	}
	for i := 0; i < 200; i++ {
		a.Submit(make([]byte, 8))
	}
	if a.Queued() == 0 {
		t.Error("nothing queued behind the replay window")
	}
	eng.Run()
	if a.NextSeq() != 200 {
		t.Errorf("NextSeq = %d, want 200", a.NextSeq())
	}
	if b.ExpectedSeq() != 200 {
		t.Errorf("ExpectedSeq = %d, want 200", b.ExpectedSeq())
	}

	if ab.Sent() != a.Stats.FlitsSent {
		t.Errorf("wire Sent %d != peer FlitsSent %d", ab.Sent(), a.Stats.FlitsSent)
	}
	if ab.BusyTime() != sim.Time(ab.Sent())*sim.FlitTime {
		t.Errorf("BusyTime %d inconsistent with %d sends", ab.BusyTime(), ab.Sent())
	}
	if u := ab.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %g out of range", u)
	}
}

func TestStampRouteOnControlFlits(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(ProtocolCXLNoPiggyback)
	cfg.StampRoute = true
	cfg.SrcTag = 7
	cfg.RouteTag = 9
	cfg.CoalesceCount = 1
	a := NewPeer("A", eng, cfg)
	b := NewPeer("B", eng, cfg)

	var stamped []flit.Header
	var tags [][2]byte
	ab := NewWire(eng, sim.FlitTime, sim.Nanosecond, b.Receive)
	ba := NewWire(eng, sim.FlitTime, sim.Nanosecond, func(f *flit.Flit) {
		stamped = append(stamped, f.Header())
		tags = append(tags, [2]byte{f.Payload()[flit.RouteOffset], f.Payload()[flit.SrcRouteOffset]})
		a.Receive(f)
	})
	a.Attach(ab)
	b.Attach(ba)

	a.Submit(make([]byte, 8))
	eng.Run()

	if len(stamped) == 0 {
		t.Fatal("no reverse flits (expected a standalone ACK)")
	}
	for i, h := range stamped {
		if h.Type != flit.TypeAck {
			continue
		}
		if tags[i] != [2]byte{9, 7} {
			t.Fatalf("ACK flit routing tags = %v, want [9 7]", tags[i])
		}
	}
}

// TestOnNakSingleStaleIgnored: single NAKs for already-acknowledged or
// never-sent sequences are ignored without disturbing the window.
func TestOnNakSingleStaleIgnored(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(ProtocolCXLNoPiggyback)
	cfg.Retry = SelectiveRepeat
	a := NewPeer("A", eng, cfg)
	b := NewPeer("B", eng, cfg)
	ConnectDirect(eng, a, b, sim.FlitTime, sim.Nanosecond)
	for i := 0; i < 20; i++ {
		a.Submit(make([]byte, 8))
	}
	eng.Run()

	// Everything acknowledged; a stale single NAK must be a no-op.
	before := a.Stats.SingleRetries
	a.onNakSingle(wireSeq(0))
	eng.Run()
	if a.Stats.SingleRetries != before {
		t.Fatal("stale single NAK triggered a retransmission")
	}
	// A NAK for a sequence never sent is also ignored.
	a.onNakSingle(wireSeq(500))
	eng.Run()
	if a.Stats.SingleRetries != before {
		t.Fatal("future single NAK triggered a retransmission")
	}
}

// TestOnNakSingleDuplicateQueued: duplicate single NAKs for the same
// sequence retransmit once.
func TestOnNakSingleDuplicateQueued(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(ProtocolCXLNoPiggyback)
	cfg.Retry = SelectiveRepeat
	a := NewPeer("A", eng, cfg)
	b := NewPeer("B", eng, cfg)
	ConnectDirect(eng, a, b, sim.FlitTime, sim.Nanosecond)

	// Hold the window open: submit but do not run, so nothing is acked.
	a.Submit(make([]byte, 8))
	a.Submit(make([]byte, 8))
	a.onNakSingle(wireSeq(1))
	a.onNakSingle(wireSeq(1)) // duplicate while queued
	delivered := 0
	b.Deliver = func([]byte) { delivered++ }
	eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d of 2", delivered)
	}
}

// TestCorruptedAckIgnored: an ACK flit whose CRC fails is discarded and
// the retry timer recovers the stream.
func TestCorruptedAckIgnored(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(ProtocolCXLNoPiggyback)
	cfg.CoalesceCount = 1
	a := NewPeer("A", eng, cfg)
	b := NewPeer("B", eng, cfg)
	_, ba := ConnectDirect(eng, a, b, sim.FlitTime, sim.Nanosecond)

	// Corrupt the CRC of the first ACK so it fails validation but keep
	// FEC consistent by re-encoding.
	hit := false
	ba.FaultHook = func(f *flit.Flit) bool {
		if !hit && f.Header().Type == flit.TypeAck {
			hit = true
			f.Raw[flit.HeaderSize+100] ^= 0xFF // payload byte under the CRC
			f.ReencodeFEC(flit.NewFEC())
		}
		return false
	}

	delivered := 0
	b.Deliver = func([]byte) { delivered++ }
	a.Submit(make([]byte, 8))
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
	if !hit {
		t.Fatal("no ACK was corrupted")
	}
	if a.Stats.ControlCrcErrors+b.Stats.ControlCrcErrors == 0 {
		t.Fatal("corrupted control flit never flagged")
	}
	if len(a.replay) != 0 {
		t.Fatal("replay window never drained")
	}
}

// TestAckBeyondWindowClamped: an ACK number ahead of everything sent is
// clamped to the window edge rather than corrupting transmitter state.
func TestAckBeyondWindowClamped(t *testing.T) {
	eng := sim.NewEngine()
	a := NewPeer("A", eng, DefaultConfig(ProtocolCXLNoPiggyback))
	b := NewPeer("B", eng, DefaultConfig(ProtocolCXLNoPiggyback))
	ConnectDirect(eng, a, b, sim.FlitTime, sim.Nanosecond)
	a.Submit(make([]byte, 8))
	a.onAck(wireSeq(700)) // absurd AckNum
	eng.Run()
	if a.NextSeq() != 1 || len(a.replay) != 0 {
		t.Fatalf("window state corrupted: next=%d outstanding=%d", a.NextSeq(), len(a.replay))
	}
}

// TestChannelAttachment exercises the BER channel path through the wire.
func TestChannelAttachment(t *testing.T) {
	eng := sim.NewEngine()
	a := NewPeer("A", eng, DefaultConfig(ProtocolRXL))
	b := NewPeer("B", eng, DefaultConfig(ProtocolRXL))
	ab, _ := ConnectDirect(eng, a, b, sim.FlitTime, sim.Nanosecond)
	ab.Channel = phy.NewChannel(1e-4, 0, phy.NewRNG(3))

	delivered := 0
	b.Deliver = func([]byte) { delivered++ }
	const n = 500
	for i := 0; i < n; i++ {
		a.Submit(make([]byte, 8))
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	if ab.Channel.BitsFlipped == 0 {
		t.Fatal("channel injected nothing at BER 1e-4")
	}
}
