package link

import "testing"

func TestWireSeq(t *testing.T) {
	cases := []struct {
		abs  uint64
		want uint16
	}{
		{0, 0}, {1, 1}, {1023, 1023}, {1024, 0}, {1025, 1}, {4096, 0}, {5000, 904},
	}
	for _, tc := range cases {
		if got := wireSeq(tc.abs); got != tc.want {
			t.Errorf("wireSeq(%d) = %d, want %d", tc.abs, got, tc.want)
		}
	}
}

func TestAbsFromWireRoundTrip(t *testing.T) {
	// For any absolute value and any reference within ±511, the round trip
	// must reconstruct exactly.
	for _, abs := range []uint64{0, 1, 511, 512, 1023, 1024, 5000, 100000} {
		for _, off := range []int64{-511, -100, -1, 0, 1, 100, 511} {
			ref := int64(abs) + off
			if ref < 0 {
				continue
			}
			got := absFromWire(wireSeq(abs), uint64(ref))
			if got != abs {
				t.Errorf("absFromWire(wire(%d), %d) = %d", abs, ref, got)
			}
		}
	}
}

func TestAbsFromWireNearZero(t *testing.T) {
	// Wire value 1023 with reference 0 is most plausibly absolute 1023
	// ... but negative candidates must never be produced.
	got := absFromWire(1023, 0)
	if got != 1023 {
		t.Errorf("absFromWire(1023, 0) = %d, want 1023", got)
	}
	if absFromWire(0, 0) != 0 {
		t.Error("absFromWire(0,0) != 0")
	}
	if absFromWire(1, 0) != 1 {
		t.Error("absFromWire(1,0) != 1")
	}
}
