// Package link implements the flit link-layer protocol engines compared by
// the paper:
//
//   - ProtocolCXL: baseline CXL 3.0 semantics. The 10-bit FSN header field
//     is multiplexed between the flit's own sequence number (ReplayCmd=SEQ)
//     and a piggybacked acknowledgment (ReplayCmd=ACK). Flits that carry an
//     AckNum cannot be sequence-checked by the receiver — the blind spot
//     that turns silent switch drops into ordering failures (Section 4).
//
//   - ProtocolCXLNoPiggyback: every data flit carries its own explicit FSN;
//     acknowledgments travel as standalone flits, consuming reverse
//     bandwidth proportional to the coalescing level (Section 7.2.2,
//     option 2).
//
//   - ProtocolRXL: the paper's proposal. The FSN field carries only
//     AckNums (or zero); the sequence number is folded into the 64-bit CRC
//     (ISN), which is checked end-to-end at the destination with the local
//     expected sequence number. Every drop, reorder or corruption —
//     including corruption inside switches — surfaces as a CRC mismatch
//     (Sections 5–6).
//
// All three engines share one go-back-N retry machine (replay ring, NAK
// with last-good sequence, ACK coalescing, retransmission timer), so the
// protocols differ only in how sequence integrity is conveyed — exactly the
// comparison the paper makes.
package link

import "repro/internal/sim"

// Protocol selects the sequence-integrity scheme.
type Protocol int

const (
	// ProtocolCXL is baseline CXL 3.0 with ACK piggybacking on the
	// multiplexed FSN field.
	ProtocolCXL Protocol = iota
	// ProtocolCXLNoPiggyback always sends explicit sequence numbers and
	// uses standalone ACK flits.
	ProtocolCXLNoPiggyback
	// ProtocolRXL embeds the sequence number in the CRC (ISN).
	ProtocolRXL
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolCXL:
		return "CXL"
	case ProtocolCXLNoPiggyback:
		return "CXL-noPB"
	case ProtocolRXL:
		return "RXL"
	default:
		return "Protocol(?)"
	}
}

// RetryPolicy selects the loss-recovery scheme (Section 5 discusses the
// trade-off).
type RetryPolicy int

const (
	// GoBackN replays every unacknowledged flit from the requested
	// sequence number onward — the scheme PCIe and CXL actually ship.
	GoBackN RetryPolicy = iota
	// SelectiveRepeat retransmits only the missing flit; the receiver
	// holds subsequent verified flits in a bounded reassembly buffer and
	// drains them once the gap fills. Requires explicit sequence numbers:
	// ISN verifies sequence integrity only pass/fail, so RXL cannot
	// identify *which* flit to hold or request (the Section 5 limitation)
	// and rejects this policy.
	SelectiveRepeat
)

// String implements fmt.Stringer.
func (r RetryPolicy) String() string {
	if r == SelectiveRepeat {
		return "selective-repeat"
	}
	return "go-back-N"
}

// Config parameterizes a link-layer peer.
type Config struct {
	// Protocol selects CXL, CXL-without-piggybacking, or RXL.
	Protocol Protocol

	// Retry selects go-back-N (default) or selective repeat.
	Retry RetryPolicy

	// ReassemblyBufferSize bounds the out-of-order flits a selective-
	// repeat receiver holds (Section 5 prices this buffer). On overflow
	// the receiver falls back to a go-back-N replay.
	ReassemblyBufferSize int

	// CoalesceCount is the number of delivered flits acknowledged by one
	// ACK — the inverse of the paper's p_coalescing (CoalesceCount=10
	// means p_coalescing=0.1).
	CoalesceCount int

	// ReplayBufferSize is the maximum number of unacknowledged flits the
	// transmitter holds. When full, new payload submissions queue behind
	// the window. Must be < 512 so 10-bit wire numbers stay unambiguous.
	ReplayBufferSize int

	// AckTimeout is the longest the receiver holds a pending ACK waiting
	// for a reverse data flit to piggyback on before sending a standalone
	// ACK flit.
	AckTimeout sim.Time

	// RetryTimeout triggers a transmitter-initiated go-back-N replay if
	// the oldest unacknowledged flit has waited this long. It is the
	// backstop against lost ACK/NAK control flits.
	RetryTimeout sim.Time

	// FastPath enables the error-event fast path: outgoing flits defer
	// their CRC/FEC computation and travel by reference with a clean
	// mark, and every hop consults the channel's pre-drawn error schedule
	// instead of scanning the image. Flits an error event (or fault hook,
	// or switch-internal corruption) does touch are materialized and
	// processed byte-level, and retransmissions always take the
	// byte-level path, so results are bit-identical to FastPath=false for
	// identical seeds — proven by the differential tests in
	// internal/core. Off for zero-value Configs; DefaultConfig turns it
	// on.
	FastPath bool

	// StampRoute, when true, writes RouteTag and SrcTag into the fabric
	// routing bytes (flit.RouteOffset, flit.SrcRouteOffset) of every
	// outgoing flit, including control flits. Required on crossbar/star
	// fabrics; ignored on point-to-point and chain topologies.
	StampRoute bool
	// RouteTag is the destination endpoint tag (the remote peer).
	RouteTag byte
	// SrcTag is this endpoint's own tag.
	SrcTag byte
}

// DefaultConfig returns the configuration used by the paper's performance
// analysis: p_coalescing = 0.1 (Section 7.1.2), a 128-flit replay window,
// and timeouts comfortably above the 100ns retry latency (Section 7.2).
func DefaultConfig(p Protocol) Config {
	return Config{
		Protocol:         p,
		CoalesceCount:    10,
		ReplayBufferSize: 128,
		AckTimeout:       200 * sim.Nanosecond,
		RetryTimeout:     2 * sim.Microsecond,
		FastPath:         true,
	}
}

func (c *Config) sanitize() {
	if c.Retry == SelectiveRepeat && c.Protocol == ProtocolRXL {
		panic("link: RXL cannot use selective repeat — ISN has no explicit sequence numbers to reorder by (Section 5)")
	}
	if c.ReassemblyBufferSize <= 0 {
		c.ReassemblyBufferSize = 64
	}
	if c.CoalesceCount <= 0 {
		c.CoalesceCount = 1
	}
	if c.ReplayBufferSize <= 0 {
		c.ReplayBufferSize = 128
	}
	if c.ReplayBufferSize >= 512 {
		panic("link: ReplayBufferSize must be < 512 for 10-bit sequence numbers")
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 200 * sim.Nanosecond
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 2 * sim.Microsecond
	}
}
