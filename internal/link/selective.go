package link

import (
	"repro/internal/flit"
)

// Selective-repeat support (Section 5). The paper explains why CXL and
// RXL ship go-back-N: selective repeat needs a receiver-side reassembly
// buffer and, crucially, explicit sequence numbers so the receiver knows
// which flit to hold and which to request. This implementation exists to
// *measure* that trade-off (see the ablation benchmarks): it retransmits
// only the missing flit and holds later verified flits in a bounded
// buffer, falling back to go-back-N when the buffer overflows.

// bufferOutOfOrder stores a verified but out-of-order payload until the
// gap before it fills. It reports false when the buffer is full, in which
// case the caller must fall back to go-back-N.
func (p *Peer) bufferOutOfOrder(abs uint64, f *flit.Flit) bool {
	if _, dup := p.reorder[abs]; dup {
		return true // retransmission of an already-held flit
	}
	if len(p.reorder) >= p.Cfg.ReassemblyBufferSize {
		p.Stats.ReassemblyOverflows++
		return false
	}
	var buf [flit.PayloadSize]byte
	copy(buf[:], f.Payload())
	p.reorder[abs] = &buf
	p.Stats.ReassemblyBuffered++
	return true
}

// drainReorder delivers consecutively buffered flits once eseq reaches
// them, advancing the verified watermark as it goes.
func (p *Peer) drainReorder() {
	for {
		buf, ok := p.reorder[p.eseq]
		if !ok {
			return
		}
		delete(p.reorder, p.eseq)
		p.Stats.ReassemblyDrained++
		p.Stats.Delivered++
		if p.Deliver != nil {
			p.Deliver(buf[:])
		}
		p.eseq++
		p.advanceVerified(p.eseq)
	}
}

// requestSingleNak schedules a NAK naming exactly the missing sequence
// number (ReplayCmd=3, the CXL single-flit retry), with a per-sequence
// cooldown so buffered retransmissions don't re-trigger it.
func (p *Peer) requestSingleNak() {
	now := p.Eng.Now()
	if p.srNakFor == p.eseq && now-p.srNakAt < p.Cfg.RetryTimeout/2 {
		return
	}
	p.srNakFor = p.eseq
	p.srNakAt = now
	p.srNakToSend = true
	p.pump()
}

// onNakSingle retransmits exactly the named flit if it is still in the
// replay window.
func (p *Peer) onNakSingle(fsn uint16) {
	p.Stats.NaksReceived++
	seq := absFromWire(fsn, p.ackedUpTo)
	if seq < p.ackedUpTo || seq >= p.nextSeq {
		return // already acknowledged or never sent: stale NAK
	}
	for _, queued := range p.srQueue {
		if queued == seq {
			return
		}
	}
	p.srQueue = append(p.srQueue, seq)
	p.pump()
}

// transmitSingleRetry pops one queued single-flit retransmission. It
// reports whether a flit was sent.
func (p *Peer) transmitSingleRetry() bool {
	for len(p.srQueue) > 0 {
		seq := p.srQueue[0]
		p.srQueue = p.srQueue[1:]
		if seq < p.ackedUpTo {
			continue // acknowledged while queued
		}
		idx := int(seq - p.ackedUpTo)
		if idx >= len(p.replay) {
			continue
		}
		p.Stats.SingleRetries++
		p.sendData(p.replay[idx], true)
		return true
	}
	return false
}
