package link

import (
	"fmt"
	"sync"

	"repro/internal/flit"
	"repro/internal/headq"
	"repro/internal/rs"
	"repro/internal/sim"
)

// replayEntry holds one unacknowledged data flit in the transmitter's
// replay ring.
type replayEntry struct {
	seq      uint64 // absolute sequence number
	payload  [flit.PayloadSize]byte
	lastSent sim.Time
}

// entryPool recycles replay entries; every data flit allocates one
// otherwise, which dominates steady-state allocations once flit images
// are pooled.
var entryPool = sync.Pool{New: func() interface{} { return new(replayEntry) }}

// Peer is one end of a duplex link-layer connection: a transmitter with a
// go-back-N replay buffer and a receiver with sequence validation per the
// configured protocol. Wire both directions with Attach; hand arriving
// flits to Receive (directly, or through switches).
//
// Peers are driven entirely by the simulation engine and are not safe for
// concurrent use.
type Peer struct {
	Name string
	Eng  *sim.Engine
	Cfg  Config

	// Deliver receives each validated payload in delivery order. The
	// slice aliases the flit; copy anything retained beyond the call.
	Deliver func(payload []byte)

	out *Wire
	fec *rs.Interleaved

	// pumpResume is the pump wakeup callback, built once so the per-flit
	// schedule does not allocate a closure.
	pumpResume func()

	// Transmit state. Invariant: nextSeq == ackedUpTo + len(replay);
	// replay[i].seq == ackedUpTo + i.
	nextSeq       uint64
	ackedUpTo     uint64 // all sequence numbers below this are acknowledged
	replay        []*replayEntry
	cursor        int                      // next replay index to (re)transmit; == len(replay) when drained
	sendQ         [][flit.PayloadSize]byte // pending payloads from sendHead on
	sendHead      int                      // consumed prefix of sendQ; array reused once drained
	pumpScheduled bool
	timerArmed    bool
	nakToSend     bool
	ackToSend     bool
	srQueue       []uint64 // selective repeat: sequences to retransmit individually

	// Receive state. verified is the watermark: every sequence number
	// below it passed an explicit (or ISN) check. eseq is the next
	// expected sequence number; under baseline CXL it can run ahead of
	// verified when AckNum-carrying flits are forwarded unchecked.
	eseq              uint64
	verified          uint64
	deliveredSinceAck int
	ackPending        bool
	ackTimerArmed     bool
	nakOutstanding    bool
	lastNakAt         sim.Time

	// Selective repeat receive state: out-of-order verified payloads held
	// until the gap fills, and the single-NAK cooldown.
	reorder     map[uint64]*[flit.PayloadSize]byte
	srNakToSend bool
	srNakFor    uint64
	srNakAt     sim.Time

	Stats Stats
}

// NewPeer constructs a peer. Call Attach before submitting traffic.
func NewPeer(name string, eng *sim.Engine, cfg Config) *Peer {
	cfg.sanitize()
	p := &Peer{Name: name, Eng: eng, Cfg: cfg, fec: flit.NewFEC()}
	p.pumpResume = func() {
		p.pumpScheduled = false
		if p.transmitOne() {
			p.pump()
		}
	}
	if cfg.Retry == SelectiveRepeat {
		p.reorder = make(map[uint64]*[flit.PayloadSize]byte)
	}
	return p
}

// Attach connects the peer's transmitter to its outbound wire.
func (p *Peer) Attach(w *Wire) { p.out = w }

// Submit queues a payload (at most flit.PayloadSize bytes; shorter payloads
// are zero-padded) for transmission. Payload bytes are copied.
func (p *Peer) Submit(payload []byte) {
	if len(payload) > flit.PayloadSize {
		panic(fmt.Sprintf("link: payload %dB exceeds %dB", len(payload), flit.PayloadSize))
	}
	var buf [flit.PayloadSize]byte
	copy(buf[:], payload)
	p.sendQ, p.sendHead = headq.Compact(p.sendQ, p.sendHead)
	p.sendQ = append(p.sendQ, buf)
	p.pump()
}

// Queued returns the number of payloads waiting behind the replay window.
func (p *Peer) Queued() int { return len(p.sendQ) - p.sendHead }

// Outstanding returns the number of sent-but-unacknowledged flits.
func (p *Peer) Outstanding() int { return len(p.replay) }

// NextSeq exposes the transmitter's next sequence number (for tests and
// experiment orchestration).
func (p *Peer) NextSeq() uint64 { return p.nextSeq }

// ExpectedSeq exposes the receiver's next expected sequence number.
func (p *Peer) ExpectedSeq() uint64 { return p.eseq }

// hasWork reports whether the transmitter has anything to put on the wire.
func (p *Peer) hasWork() bool {
	return p.nakToSend || p.srNakToSend || p.ackToSend ||
		len(p.srQueue) > 0 || p.cursor < len(p.replay) ||
		(p.sendHead < len(p.sendQ) && len(p.replay) < p.Cfg.ReplayBufferSize)
}

// pump schedules the next transmission at the moment the wire frees up.
// It is idempotent: one transmission is in flight per peer at a time.
func (p *Peer) pump() {
	if p.pumpScheduled || !p.hasWork() {
		return
	}
	p.pumpScheduled = true
	p.Eng.At(p.out.FreeAt(), p.pumpResume)
}

// transmitOne sends the highest-priority pending item: NAK, then replay,
// then standalone ACK, then new data. It returns true if a flit was sent.
func (p *Peer) transmitOne() bool {
	switch {
	case p.nakToSend:
		p.nakToSend = false
		p.sendControl(flit.TypeNak, flit.Header{
			FSN: wireSeq(p.verified), Cmd: flit.CmdNakGoBackN, Type: flit.TypeNak,
		})
		p.Stats.NakFlitsSent++
		return true

	case p.srNakToSend:
		p.srNakToSend = false
		p.sendControl(flit.TypeNak, flit.Header{
			FSN: wireSeq(p.srNakFor), Cmd: flit.CmdNakSingle, Type: flit.TypeNak,
		})
		p.Stats.SingleNaksSent++
		return true

	case len(p.srQueue) > 0 && p.transmitSingleRetry():
		return true

	case p.cursor < len(p.replay):
		e := p.replay[p.cursor]
		p.cursor++
		p.sendData(e, true)
		return true

	case p.ackToSend:
		p.ackToSend = false
		p.ackPending = false
		p.sendControl(flit.TypeAck, flit.Header{
			FSN: wireSeq(p.verified - 1), Cmd: flit.CmdAck, Type: flit.TypeAck,
		})
		p.Stats.AckFlitsSent++
		return true

	case p.sendHead < len(p.sendQ) && len(p.replay) < p.Cfg.ReplayBufferSize:
		e := entryPool.Get().(*replayEntry)
		e.seq, e.lastSent = p.nextSeq, 0
		e.payload = p.sendQ[p.sendHead]
		p.sendHead++
		p.nextSeq++
		p.replay = append(p.replay, e)
		p.cursor = len(p.replay)
		p.Stats.DataFlitsSent++
		p.sendData(e, false)
		return true
	}
	return false
}

// sendControl seals and transmits a standalone control flit. Control flits
// sit outside the sequence stream and always use a plain CRC; their loss is
// recovered by the retransmission and ACK timers.
func (p *Peer) sendControl(_ flit.Type, h flit.Header) {
	f := flit.Get()
	f.SetHeader(h)
	p.stampRoute(f)
	if p.Cfg.FastPath {
		f.DeferSealCXL()
	} else {
		f.SealCXL(p.fec)
	}
	p.Stats.FlitsSent++
	p.out.Send(f)
}

// stampRoute writes the fabric routing tags when configured. The tags sit
// inside the CRC-covered payload region, so they are sealed along with the
// rest of the flit.
func (p *Peer) stampRoute(f *flit.Flit) {
	if p.Cfg.StampRoute {
		f.Payload()[flit.RouteOffset] = p.Cfg.RouteTag
		f.Payload()[flit.SrcRouteOffset] = p.Cfg.SrcTag
	}
}

// sendData builds, seals and transmits the flit for a replay entry,
// applying the protocol's header/CRC semantics and consuming a pending
// piggyback acknowledgment if the protocol allows one.
func (p *Peer) sendData(e *replayEntry, isRetransmit bool) {
	f := flit.Get()
	copy(f.Payload(), e.payload[:])
	p.stampRoute(f)

	// Retransmissions always take the byte-level slow path: they are rare
	// by construction (one per error event) and sit on the protocol's
	// recovery edge, where the reference semantics must hold unmodified.
	fast := p.Cfg.FastPath && !isRetransmit

	h := flit.Header{Type: flit.TypeData, Cmd: flit.CmdSeq}
	// Selective-repeat retransmissions always carry their explicit FSN:
	// the receiver must match them against the gap it is holding open.
	piggyback := p.ackPending && p.Cfg.Protocol != ProtocolCXLNoPiggyback &&
		!(isRetransmit && p.Cfg.Retry == SelectiveRepeat)
	if piggyback {
		h.Cmd = flit.CmdAck
		h.FSN = wireSeq(p.verified - 1)
		p.ackPending = false
		p.ackToSend = false
		p.Stats.PiggybackedAcks++
	}

	switch p.Cfg.Protocol {
	case ProtocolRXL:
		// FSN carries only the AckNum (or zero); the sequence number
		// travels inside the CRC.
		f.SetHeader(h)
		if fast {
			f.DeferSealRXL(wireSeq(e.seq))
		} else {
			f.SealRXL(wireSeq(e.seq), p.fec)
		}
	default:
		// Baseline CXL: FSN is the explicit sequence number unless this
		// flit was chosen to carry the AckNum — the blind spot.
		if !piggyback {
			h.FSN = wireSeq(e.seq)
		}
		f.SetHeader(h)
		if fast {
			f.DeferSealCXL()
		} else {
			f.SealCXL(p.fec)
		}
	}

	if isRetransmit {
		p.Stats.Retransmissions++
	}
	e.lastSent = p.Eng.Now()
	p.Stats.FlitsSent++
	p.out.Send(f)
	p.armRetryTimer()
}

// armRetryTimer schedules the transmitter-side go-back-N backstop against
// lost ACK/NAK flits.
func (p *Peer) armRetryTimer() {
	if p.timerArmed || len(p.replay) == 0 {
		return
	}
	p.timerArmed = true
	deadline := p.replay[0].lastSent + p.Cfg.RetryTimeout
	d := deadline - p.Eng.Now()
	if d < 0 {
		d = 0
	}
	p.Eng.Schedule(d, func() {
		p.timerArmed = false
		if len(p.replay) == 0 {
			return
		}
		if p.Eng.Now()-p.replay[0].lastSent >= p.Cfg.RetryTimeout {
			p.Stats.TimeoutRetries++
			p.cursor = 0
			// Stamp the head now: the replay is *scheduled* even if the
			// wire is momentarily busy, so the timer must back off a full
			// period rather than re-fire with zero delay until the wire
			// frees (which would live-lock the event loop at one
			// timestamp on busy shared wires).
			p.replay[0].lastSent = p.Eng.Now()
		}
		p.pump()
		p.armRetryTimer()
	})
}

// Receive processes a flit arriving from the wire (after any switches).
// The peer is the flit's terminal consumer: pooled flits are recycled when
// processing completes (payloads handed to Deliver alias the image and
// must be copied if retained, per the Deliver contract).
func (p *Peer) Receive(f *flit.Flit) {
	p.receive(f)
	flit.Release(f)
}

// receive is the Receive body. On a clean flit every integrity operation
// below — FEC decode, CRC / ISN check — short-circuits in O(1) inside the
// flit layer, so the clean path runs no byte-level work at all.
func (p *Peer) receive(f *flit.Flit) {
	p.Stats.FlitsReceived++

	res := f.DecodeFEC(p.fec)
	switch res.Status {
	case rs.StatusUncorrectable:
		// The endpoint knows this flit is bad but not what it was:
		// request a replay from the verified watermark.
		p.Stats.FecUncorrectable++
		p.requestNak()
		return
	case rs.StatusCorrected:
		p.Stats.FecCorrectedFlits++
		p.Stats.FecCorrectedSymbols += uint64(res.Corrected)
	}

	h := f.Header()
	switch h.Type {
	case flit.TypeNak:
		switch {
		case !f.CheckCRC():
			p.Stats.ControlCrcErrors++
		case h.Cmd == flit.CmdNakSingle:
			p.onNakSingle(h.FSN)
		default:
			p.onNak(h.FSN)
		}
	case flit.TypeAck:
		if f.CheckCRC() {
			p.Stats.AcksReceived++
			p.onAck(h.FSN)
		} else {
			p.Stats.ControlCrcErrors++
		}
	case flit.TypeData:
		switch p.Cfg.Protocol {
		case ProtocolRXL:
			p.rxDataRXL(f, h)
		default:
			p.rxDataCXL(f, h)
		}
	}
}

// rxDataCXL implements the baseline receiver (Section 4.1): explicit
// sequence checks when the FSN carries a sequence number, and unverified
// forwarding when it carries an AckNum.
func (p *Peer) rxDataCXL(f *flit.Flit, h flit.Header) {
	if !f.CheckCRC() {
		p.Stats.CrcErrors++
		p.requestNak()
		return
	}
	switch h.Cmd {
	case flit.CmdSeq:
		abs := absFromWire(h.FSN, p.eseq)
		switch {
		case abs == p.eseq:
			p.deliverPayload(f)
			p.eseq++
			p.advanceVerified(p.eseq)
			p.nakOutstanding = false
			if p.Cfg.Retry == SelectiveRepeat {
				p.drainReorder()
			}
		case abs > p.eseq:
			// A preceding flit is missing. Under selective repeat, hold
			// this verified flit and request exactly the missing one;
			// otherwise (or on reassembly overflow) go-back-N.
			p.Stats.GapsDetected++
			if p.Cfg.Retry == SelectiveRepeat && p.bufferOutOfOrder(abs, f) {
				p.requestSingleNak()
			} else {
				p.requestNak()
			}
		default:
			p.Stats.DuplicatesDropped++
			// A replay below eseq can only mean the region was consumed
			// unverified (AckNum-carrying flits). The explicit number
			// confirms stream alignment through abs, so raise the
			// verified watermark — otherwise acknowledgments would
			// stall at the unverified region and wedge the transmitter.
			if abs >= p.verified {
				p.advanceVerified(abs + 1)
			}
			// Any duplicate means the transmitter is replaying flits we
			// already hold — its window is stalled on an acknowledgment
			// that was coalesced away or lost. Acknowledge promptly so
			// the replay converges instead of looping on the timer.
			p.scheduleAck()
		}

	case flit.CmdAck:
		p.onAck(h.FSN)
		if p.nakOutstanding {
			// Mid-replay every unverifiable flit is dropped; the
			// go-back-N stream will resend its payload.
			p.Stats.UnverifiedDiscarded++
			return
		}
		// THE CXL BLIND SPOT: this flit's sequence number was displaced
		// by the AckNum, so the receiver cannot verify ordering. It
		// forwards the payload and advances its expectation — even if a
		// preceding flit was silently dropped by a switch (Fig. 4).
		p.deliverPayload(f)
		p.Stats.UnverifiedDelivered++
		p.eseq++
	}
}

// rxDataRXL implements the ISN receiver (Section 5): a single CRC check
// with the expected sequence number folded in validates payload integrity
// and sequence position at once.
func (p *Peer) rxDataRXL(f *flit.Flit, h flit.Header) {
	if !f.CheckCRCISN(wireSeq(p.eseq)) {
		// Corruption, drop, or reorder — indistinguishable and all
		// handled identically: go-back-N from the verified watermark.
		p.Stats.CrcErrors++
		p.requestNak()
		return
	}
	if h.Cmd == flit.CmdAck {
		// The header is covered by the just-validated CRC, so the
		// piggybacked AckNum is trustworthy — RXL keeps piggybacking
		// without giving up sequence protection.
		p.onAck(h.FSN)
	}
	p.deliverPayload(f)
	p.eseq++
	p.advanceVerified(p.eseq)
	p.nakOutstanding = false
}

// requestNak schedules a NAK carrying the retry-from watermark, with a
// cooldown so replay storms don't amplify.
func (p *Peer) requestNak() {
	now := p.Eng.Now()
	if p.nakOutstanding && now-p.lastNakAt < p.Cfg.RetryTimeout/2 {
		return
	}
	p.nakOutstanding = true
	p.lastNakAt = now
	// Roll the expectation back to the verified watermark so replayed
	// flits are accepted (under RXL eseq never ran ahead of it).
	p.eseq = p.verified
	p.nakToSend = true
	p.pump()
}

// deliverPayload hands the flit payload to the upper layer.
func (p *Peer) deliverPayload(f *flit.Flit) {
	p.Stats.Delivered++
	if p.Deliver != nil {
		p.Deliver(f.Payload())
	}
}

// advanceVerified raises the verified watermark to `to` and runs ACK
// coalescing: one acknowledgment per CoalesceCount verified flits
// (p_coalescing = 1/CoalesceCount).
func (p *Peer) advanceVerified(to uint64) {
	if to <= p.verified {
		return
	}
	p.deliveredSinceAck += int(to - p.verified)
	p.verified = to
	if p.deliveredSinceAck >= p.Cfg.CoalesceCount {
		p.deliveredSinceAck = 0
		p.scheduleAck()
	}
}

// scheduleAck marks an acknowledgment as pending and arranges for it to go
// out: immediately as a standalone flit when piggybacking is disabled,
// otherwise piggybacked on the next reverse data flit with the ACK timer as
// the backstop.
func (p *Peer) scheduleAck() {
	p.ackPending = true
	if p.Cfg.Protocol == ProtocolCXLNoPiggyback {
		p.ackToSend = true
	} else {
		p.armAckTimer()
	}
	p.pump()
}

// armAckTimer bounds how long a pending acknowledgment waits for a reverse
// data flit to piggyback on before a standalone ACK is sent.
func (p *Peer) armAckTimer() {
	if p.ackTimerArmed {
		return
	}
	p.ackTimerArmed = true
	p.Eng.Schedule(p.Cfg.AckTimeout, func() {
		p.ackTimerArmed = false
		if p.ackPending {
			p.ackToSend = true
			p.pump()
		}
	})
}

// onAck frees acknowledged replay entries. fsn is the last verified
// sequence number at the remote receiver, in wire form.
func (p *Peer) onAck(fsn uint16) {
	if len(p.replay) == 0 {
		return
	}
	ackAbs := absFromWire(fsn, p.nextSeq-1)
	if ackAbs >= p.nextSeq {
		ackAbs = p.nextSeq - 1
	}
	p.popAcked(ackAbs + 1)
	p.pump()
}

// onNak processes a go-back-N request. fsn is the remote retry-from
// sequence number (the verified watermark) in wire form: everything below
// it is implicitly acknowledged, everything at or above it is replayed.
func (p *Peer) onNak(fsn uint16) {
	p.Stats.NaksReceived++
	retry := absFromWire(fsn, p.ackedUpTo)
	if retry < p.ackedUpTo {
		retry = p.ackedUpTo
	}
	if retry > p.nextSeq {
		retry = p.nextSeq
	}
	p.popAcked(retry)
	if len(p.replay) > 0 {
		p.cursor = 0
		p.Stats.GoBackNRounds++
	}
	p.pump()
}

// popAcked discards replay entries with sequence numbers below watermark,
// returning them to the pool.
func (p *Peer) popAcked(watermark uint64) {
	n := 0
	for n < len(p.replay) && p.replay[n].seq < watermark {
		entryPool.Put(p.replay[n])
		n++
	}
	if n == 0 {
		return
	}
	p.replay = p.replay[n:]
	p.ackedUpTo += uint64(n)
	p.cursor -= n
	if p.cursor < 0 {
		p.cursor = 0
	}
}

// ConnectDirect wires two peers back-to-back (the paper's "direct
// connection" topology) with the given per-direction serialization and
// propagation delays, returning the two wires (a->b, b->a) for channel and
// fault-hook attachment.
func ConnectDirect(eng *sim.Engine, a, b *Peer, ser, prop sim.Time) (ab, ba *Wire) {
	ab = NewWire(eng, ser, prop, b.Receive)
	ba = NewWire(eng, ser, prop, a.Receive)
	a.Attach(ab)
	b.Attach(ba)
	return ab, ba
}
