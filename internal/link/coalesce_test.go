package link

import (
	"testing"

	"repro/internal/sim"
)

// ACK coalescing ablation (DESIGN.md): the coalescing level trades
// reverse bandwidth (Eq. 13) against transmitter buffer occupancy — a
// deeper coalesce means ACKs arrive later and the replay window sits
// fuller. These tests and benchmarks measure both sides of the trade.

// runCoalesce drives a one-way stream and returns the ACK flits sent by
// the receiver and the peak replay occupancy at the transmitter.
func runCoalesce(t testing.TB, coalesce, n int) (ackFlits uint64, peakOccupancy int) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(ProtocolCXLNoPiggyback)
	cfg.CoalesceCount = coalesce
	a := NewPeer("A", eng, cfg)
	b := NewPeer("B", eng, cfg)
	ConnectDirect(eng, a, b, sim.FlitTime, 10*sim.Nanosecond)

	delivered := 0
	b.Deliver = func([]byte) { delivered++ }
	payload := make([]byte, 16)
	for i := 0; i < n; i++ {
		a.Submit(payload)
		if occ := a.Outstanding(); occ > peakOccupancy {
			peakOccupancy = occ
		}
	}
	// Sample occupancy while draining.
	for eng.Pending() > 0 {
		eng.RunUntil(eng.Now() + 10*sim.Nanosecond)
		if occ := a.Outstanding(); occ > peakOccupancy {
			peakOccupancy = occ
		}
	}
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	return b.Stats.AckFlitsSent, peakOccupancy
}

// TestCoalescingTradeOff: more coalescing means fewer ACK flits but a
// fuller replay window.
func TestCoalescingTradeOff(t *testing.T) {
	const n = 2000
	acks1, occ1 := runCoalesce(t, 1, n)
	acks10, occ10 := runCoalesce(t, 10, n)
	acks50, occ50 := runCoalesce(t, 50, n)

	if !(acks1 > acks10 && acks10 > acks50) {
		t.Errorf("ACK flits not decreasing with coalescing: %d, %d, %d", acks1, acks10, acks50)
	}
	if !(occ1 <= occ10 && occ10 <= occ50) {
		t.Errorf("peak occupancy not increasing with coalescing: %d, %d, %d", occ1, occ10, occ50)
	}
	// Eq. 13: ACK flits per data flit ≈ 1/coalesce.
	ratio := float64(acks10) / float64(n)
	if ratio < 0.08 || ratio > 0.12 {
		t.Errorf("ACK overhead at coalesce=10 is %.3f, want ≈0.1", ratio)
	}
	t.Logf("coalesce=1: acks=%d occ=%d; =10: acks=%d occ=%d; =50: acks=%d occ=%d",
		acks1, occ1, acks10, occ10, acks50, occ50)
}

// BenchmarkCoalescingAblation measures simulator throughput across
// coalescing levels and reports the measured ACK overhead (Eq. 13) and
// peak buffer occupancy per level.
func BenchmarkCoalescingAblation(b *testing.B) {
	for _, cc := range []int{1, 2, 10, 50} {
		b.Run(benchName(cc), func(b *testing.B) {
			eng := sim.NewEngine()
			cfg := DefaultConfig(ProtocolCXLNoPiggyback)
			cfg.CoalesceCount = cc
			a := NewPeer("A", eng, cfg)
			pb := NewPeer("B", eng, cfg)
			ConnectDirect(eng, a, pb, sim.FlitTime, 10*sim.Nanosecond)
			delivered := 0
			pb.Deliver = func([]byte) { delivered++ }
			payload := make([]byte, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Submit(payload)
				if a.Queued() > 256 {
					eng.Run()
				}
			}
			eng.Run()
			if delivered != b.N {
				b.Fatalf("delivered %d of %d", delivered, b.N)
			}
			b.ReportMetric(float64(pb.Stats.AckFlitsSent)/float64(b.N), "acks/op")
		})
	}
}

func benchName(cc int) string {
	switch cc {
	case 1:
		return "coalesce=1"
	case 2:
		return "coalesce=2"
	case 10:
		return "coalesce=10"
	default:
		return "coalesce=50"
	}
}
