package link

import (
	"encoding/binary"
	"testing"

	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/sim"
)

// harness wires two peers back to back and records delivered payload tags.
type harness struct {
	eng    *sim.Engine
	a, b   *Peer
	ab, ba *Wire
	gotB   []uint64 // tags delivered at b (a -> b direction)
	gotA   []uint64 // tags delivered at a
}

func newHarness(t *testing.T, proto Protocol, tweak func(*Config)) *harness {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(proto)
	if tweak != nil {
		tweak(&cfg)
	}
	h := &harness{eng: eng}
	h.a = NewPeer("a", eng, cfg)
	h.b = NewPeer("b", eng, cfg)
	h.a.Deliver = func(p []byte) { h.gotA = append(h.gotA, binary.BigEndian.Uint64(p)) }
	h.b.Deliver = func(p []byte) { h.gotB = append(h.gotB, binary.BigEndian.Uint64(p)) }
	h.ab, h.ba = ConnectDirect(eng, h.a, h.b, sim.FlitTime, 10*sim.Nanosecond)
	return h
}

func tagged(tag uint64) []byte {
	p := make([]byte, 16)
	binary.BigEndian.PutUint64(p, tag)
	return p
}

func wantInOrder(t *testing.T, got []uint64, n uint64) {
	t.Helper()
	if uint64(len(got)) != n {
		t.Fatalf("delivered %d payloads, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("delivery %d has tag %d (sequence %v...)", i, v, got[:min(i+2, len(got))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBasicDeliveryAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{ProtocolCXL, ProtocolCXLNoPiggyback, ProtocolRXL} {
		t.Run(proto.String(), func(t *testing.T) {
			h := newHarness(t, proto, nil)
			const n = 500
			for i := uint64(0); i < n; i++ {
				h.a.Submit(tagged(i))
			}
			h.eng.Run()
			wantInOrder(t, h.gotB, n)
			if h.a.Stats.Retransmissions != 0 {
				t.Errorf("clean link retransmitted %d flits", h.a.Stats.Retransmissions)
			}
			if h.a.Outstanding() != 0 {
				t.Errorf("%d flits never acknowledged", h.a.Outstanding())
			}
		})
	}
}

func TestSequenceWrapAround(t *testing.T) {
	// More than 1024 flits exercises the 10-bit wire wrap in both seq and
	// ack reconstruction.
	for _, proto := range []Protocol{ProtocolCXL, ProtocolRXL} {
		t.Run(proto.String(), func(t *testing.T) {
			h := newHarness(t, proto, nil)
			const n = 3000
			for i := uint64(0); i < n; i++ {
				h.a.Submit(tagged(i))
			}
			h.eng.Run()
			wantInOrder(t, h.gotB, n)
		})
	}
}

func TestBidirectionalPiggybacking(t *testing.T) {
	h := newHarness(t, ProtocolCXL, func(c *Config) { c.CoalesceCount = 5 })
	const n = 300
	for i := uint64(0); i < n; i++ {
		h.a.Submit(tagged(i))
		h.b.Submit(tagged(i))
	}
	h.eng.Run()
	wantInOrder(t, h.gotB, n)
	wantInOrder(t, h.gotA, n)
	if h.a.Stats.PiggybackedAcks == 0 || h.b.Stats.PiggybackedAcks == 0 {
		t.Errorf("no piggybacked acks: a=%d b=%d",
			h.a.Stats.PiggybackedAcks, h.b.Stats.PiggybackedAcks)
	}
}

func TestNoPiggybackUsesStandaloneAcks(t *testing.T) {
	h := newHarness(t, ProtocolCXLNoPiggyback, nil)
	const n = 300
	for i := uint64(0); i < n; i++ {
		h.a.Submit(tagged(i))
		h.b.Submit(tagged(i))
	}
	h.eng.Run()
	wantInOrder(t, h.gotB, n)
	if h.a.Stats.PiggybackedAcks != 0 || h.b.Stats.PiggybackedAcks != 0 {
		t.Error("no-piggyback mode piggybacked an ack")
	}
	if h.b.Stats.AckFlitsSent == 0 {
		t.Error("no standalone acks sent")
	}
}

func TestReplayWindowBackpressure(t *testing.T) {
	h := newHarness(t, ProtocolRXL, func(c *Config) { c.ReplayBufferSize = 8 })
	const n = 200
	for i := uint64(0); i < n; i++ {
		h.a.Submit(tagged(i))
	}
	if h.a.Outstanding() > 8 {
		t.Fatalf("window exceeded: %d", h.a.Outstanding())
	}
	h.eng.Run()
	wantInOrder(t, h.gotB, n)
}

func TestCorruptionTriggersRetry(t *testing.T) {
	for _, proto := range []Protocol{ProtocolCXL, ProtocolCXLNoPiggyback, ProtocolRXL} {
		t.Run(proto.String(), func(t *testing.T) {
			h := newHarness(t, proto, nil)
			// Corrupt the 3rd data flit beyond FEC repair (two symbols in
			// one interleave way).
			seen := 0
			h.ab.FaultHook = func(f *flit.Flit) bool {
				if f.Header().Type != flit.TypeData {
					return false
				}
				seen++
				if seen == 3 {
					f.Raw[30] ^= 0xFF
					f.Raw[33] ^= 0xFF
				}
				return false
			}
			const n = 50
			for i := uint64(0); i < n; i++ {
				h.a.Submit(tagged(i))
			}
			h.eng.Run()
			wantInOrder(t, h.gotB, n)
			if h.a.Stats.Retransmissions == 0 {
				t.Error("corruption did not cause a retransmission")
			}
			if h.b.Stats.FecUncorrectable == 0 && h.b.Stats.CrcErrors == 0 {
				t.Error("corruption never detected")
			}
		})
	}
}

func TestFECCorrectsInFlightBurst(t *testing.T) {
	h := newHarness(t, ProtocolRXL, nil)
	seen := 0
	h.ab.FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			if seen == 2 {
				// 3-byte burst: correctable by the interleaved SSC.
				f.Raw[100] ^= 0xA5
				f.Raw[101] ^= 0x5A
				f.Raw[102] ^= 0xFF
			}
		}
		return false
	}
	const n = 20
	for i := uint64(0); i < n; i++ {
		h.a.Submit(tagged(i))
	}
	h.eng.Run()
	wantInOrder(t, h.gotB, n)
	if h.b.Stats.FecCorrectedFlits != 1 {
		t.Errorf("FecCorrectedFlits = %d, want 1", h.b.Stats.FecCorrectedFlits)
	}
	if h.a.Stats.Retransmissions != 0 {
		t.Error("correctable burst should not need a retry")
	}
}

// dropNthData returns a FaultHook that silently drops the nth (1-based)
// data flit — the scripted equivalent of a switch discarding an
// uncorrectable flit.
func dropNthData(n int) func(*flit.Flit) bool {
	seen := 0
	return func(f *flit.Flit) bool {
		if f.Header().Type != flit.TypeData {
			return false
		}
		seen++
		return seen == n
	}
}

// TestFig4CXLMisforwardOnDrop reproduces Fig. 4 / Fig. 5a at the link
// layer: under baseline CXL, dropping flit #1 while flit #2 carries a
// piggybacked AckNum makes the receiver forward flit #2 prematurely. The
// delivered tag sequence is exactly the paper's A, C, B, C — a reordering
// plus a duplicate that the link layer cannot see.
func TestFig4CXLMisforwardOnDrop(t *testing.T) {
	h := newHarness(t, ProtocolCXL, func(c *Config) {
		c.CoalesceCount = 1 // ack every delivered flit, as in the figure
	})
	h.ab.FaultHook = dropNthData(2) // drop a's flit seq=1

	// Upstream flit #100: b sends one payload so a has an ack to piggyback.
	h.b.Submit(tagged(100))
	// Downstream flits #0..#3. #0 and #1 go out before b's flit arrives
	// (arrival at 12ns); #2 is submitted after, so it picks up the ack.
	h.a.Submit(tagged(0))
	h.a.Submit(tagged(1))
	h.eng.Schedule(13*sim.Nanosecond, func() { h.a.Submit(tagged(2)) })
	h.eng.Schedule(16*sim.Nanosecond, func() { h.a.Submit(tagged(3)) })
	h.eng.Run()

	want := []uint64{0, 2, 1, 2, 3} // the paper's A, C, B, C (after A)
	if len(h.gotB) != len(want) {
		t.Fatalf("delivered %v, want %v", h.gotB, want)
	}
	for i := range want {
		if h.gotB[i] != want[i] {
			t.Fatalf("delivered %v, want %v", h.gotB, want)
		}
	}
	if h.b.Stats.UnverifiedDelivered != 1 {
		t.Errorf("UnverifiedDelivered = %d, want 1", h.b.Stats.UnverifiedDelivered)
	}
	if h.b.Stats.GapsDetected == 0 {
		t.Error("the late gap detection never fired")
	}
}

// TestFig4RXLDetectsDrop runs the identical scenario under RXL: the drop is
// caught by the ISN CRC on the very next flit, and delivery is exactly-once
// in-order.
func TestFig4RXLDetectsDrop(t *testing.T) {
	h := newHarness(t, ProtocolRXL, func(c *Config) { c.CoalesceCount = 1 })
	h.ab.FaultHook = dropNthData(2)

	h.b.Submit(tagged(100))
	h.a.Submit(tagged(0))
	h.a.Submit(tagged(1))
	h.eng.Schedule(13*sim.Nanosecond, func() { h.a.Submit(tagged(2)) })
	h.eng.Schedule(16*sim.Nanosecond, func() { h.a.Submit(tagged(3)) })
	h.eng.Run()

	wantInOrder(t, h.gotB, 4)
	if h.b.Stats.UnverifiedDelivered != 0 {
		t.Error("RXL delivered an unverified flit")
	}
	if h.b.Stats.CrcErrors == 0 {
		t.Error("ISN mismatch never detected")
	}
	// RXL still piggybacked the ack (bandwidth parity with CXL option 1).
	if h.a.Stats.PiggybackedAcks == 0 {
		t.Error("RXL did not piggyback the ack")
	}
}

// TestFig4NoPiggybackDetectsDrop: disabling piggybacking (option 2 of
// Section 7.2.2) also closes the hole, at the cost of standalone ACK flits.
func TestFig4NoPiggybackDetectsDrop(t *testing.T) {
	h := newHarness(t, ProtocolCXLNoPiggyback, func(c *Config) { c.CoalesceCount = 1 })
	h.ab.FaultHook = dropNthData(2)

	h.b.Submit(tagged(100))
	h.a.Submit(tagged(0))
	h.a.Submit(tagged(1))
	h.eng.Schedule(13*sim.Nanosecond, func() { h.a.Submit(tagged(2)) })
	h.eng.Schedule(16*sim.Nanosecond, func() { h.a.Submit(tagged(3)) })
	h.eng.Run()

	wantInOrder(t, h.gotB, 4)
	if h.b.Stats.UnverifiedDelivered != 0 {
		t.Error("no-piggyback mode delivered an unverified flit")
	}
}

func TestDropRecoveryLongStream(t *testing.T) {
	// Multiple scripted drops spread through a long stream: RXL and
	// no-piggyback CXL must deliver exactly-once in-order.
	for _, proto := range []Protocol{ProtocolCXLNoPiggyback, ProtocolRXL} {
		t.Run(proto.String(), func(t *testing.T) {
			h := newHarness(t, proto, nil)
			seen := 0
			h.ab.FaultHook = func(f *flit.Flit) bool {
				if f.Header().Type != flit.TypeData {
					return false
				}
				seen++
				return seen%97 == 13 // drop a handful of flits
			}
			const n = 1500
			for i := uint64(0); i < n; i++ {
				h.a.Submit(tagged(i))
			}
			h.eng.Run()
			wantInOrder(t, h.gotB, n)
		})
	}
}

func TestLostNakRecoveredByTimeout(t *testing.T) {
	h := newHarness(t, ProtocolRXL, func(c *Config) {
		c.RetryTimeout = 500 * sim.Nanosecond
	})
	h.ab.FaultHook = dropNthData(3)
	nakDropped := false
	h.ba.FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeNak && !nakDropped {
			nakDropped = true
			return true
		}
		return false
	}
	const n = 30
	for i := uint64(0); i < n; i++ {
		h.a.Submit(tagged(i))
	}
	h.eng.Run()
	wantInOrder(t, h.gotB, n)
	if !nakDropped {
		t.Fatal("scenario never dropped a NAK")
	}
	if h.a.Stats.TimeoutRetries == 0 && h.a.Stats.GoBackNRounds == 0 {
		t.Error("no recovery mechanism fired")
	}
}

func TestLostAckRecoveredByTimeout(t *testing.T) {
	h := newHarness(t, ProtocolCXLNoPiggyback, func(c *Config) {
		c.RetryTimeout = 500 * sim.Nanosecond
	})
	drops := 0
	h.ba.FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeAck && drops < 2 {
			drops++
			return true
		}
		return false
	}
	const n = 100
	for i := uint64(0); i < n; i++ {
		h.a.Submit(tagged(i))
	}
	h.eng.Run()
	wantInOrder(t, h.gotB, n)
	if h.a.Outstanding() != 0 {
		t.Errorf("%d flits stuck in replay buffer", h.a.Outstanding())
	}
}

// TestRandomBERDirectLinkExactlyOnce: under a noisy direct link every
// protocol (including baseline CXL, which is only vulnerable to *drops*,
// not corruption) must deliver exactly-once in-order — the paper's Section
// 7.1.1 claim that direct connections are safe.
func TestRandomBERDirectLinkExactlyOnce(t *testing.T) {
	for _, proto := range []Protocol{ProtocolCXL, ProtocolCXLNoPiggyback, ProtocolRXL} {
		t.Run(proto.String(), func(t *testing.T) {
			h := newHarness(t, proto, nil)
			rng := phy.NewRNG(42)
			h.ab.Channel = phy.NewChannel(2e-6, 0.3, rng.Split())
			h.ba.Channel = phy.NewChannel(2e-6, 0.3, rng.Split())
			const n = 4000
			for i := uint64(0); i < n; i++ {
				h.a.Submit(tagged(i))
			}
			h.eng.Run()
			wantInOrder(t, h.gotB, n)
		})
	}
}

func TestRandomBERHighErrorStress(t *testing.T) {
	// An aggressively noisy link: correctness must hold even when retries
	// are frequent and control flits get corrupted.
	h := newHarness(t, ProtocolRXL, func(c *Config) {
		c.RetryTimeout = 1 * sim.Microsecond
	})
	rng := phy.NewRNG(7)
	h.ab.Channel = phy.NewChannel(5e-5, 0.5, rng.Split())
	h.ba.Channel = phy.NewChannel(5e-5, 0.5, rng.Split())
	const n = 3000
	for i := uint64(0); i < n; i++ {
		h.a.Submit(tagged(i))
		h.b.Submit(tagged(i))
	}
	h.eng.Run()
	wantInOrder(t, h.gotB, n)
	wantInOrder(t, h.gotA, n)
	if h.a.Stats.Retransmissions == 0 {
		t.Error("stress test saw no retransmissions; BER too low to be meaningful")
	}
}

func TestSubmitOversizedPanics(t *testing.T) {
	h := newHarness(t, ProtocolRXL, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	h.a.Submit(make([]byte, flit.PayloadSize+1))
}

func TestProtocolStrings(t *testing.T) {
	if ProtocolCXL.String() != "CXL" || ProtocolCXLNoPiggyback.String() != "CXL-noPB" ||
		ProtocolRXL.String() != "RXL" || Protocol(99).String() != "Protocol(?)" {
		t.Error("protocol strings wrong")
	}
}

func TestConfigSanitize(t *testing.T) {
	c := Config{}
	c.sanitize()
	if c.CoalesceCount != 1 || c.ReplayBufferSize != 128 || c.AckTimeout == 0 || c.RetryTimeout == 0 {
		t.Errorf("sanitize defaults wrong: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized window did not panic")
		}
	}()
	bad := Config{ReplayBufferSize: 512}
	bad.sanitize()
}

func BenchmarkLinkThroughputRXL(b *testing.B) {
	benchThroughput(b, ProtocolRXL, 0)
}

func BenchmarkLinkThroughputCXL(b *testing.B) {
	benchThroughput(b, ProtocolCXL, 0)
}

func BenchmarkLinkThroughputRXLNoisy(b *testing.B) {
	benchThroughput(b, ProtocolRXL, 1e-5)
}

func benchThroughput(b *testing.B, proto Protocol, ber float64) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(proto)
	a := NewPeer("a", eng, cfg)
	bb := NewPeer("b", eng, cfg)
	delivered := 0
	bb.Deliver = func([]byte) { delivered++ }
	ab, _ := ConnectDirect(eng, a, bb, sim.FlitTime, 10*sim.Nanosecond)
	if ber > 0 {
		ab.Channel = phy.NewChannel(ber, 0.3, phy.NewRNG(1))
	}
	payload := make([]byte, flit.PayloadSize)
	b.SetBytes(flit.PayloadSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Submit(payload)
		if a.Queued() > 256 {
			eng.Run()
		}
	}
	eng.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
