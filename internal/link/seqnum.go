package link

import "repro/internal/flit"

// seqSpace is the size of the on-wire sequence number space (10 bits).
const seqSpace = int64(flit.FSNMask) + 1

// wireSeq reduces an absolute sequence number to its 10-bit wire form.
func wireSeq(abs uint64) uint16 {
	return uint16(abs) & flit.FSNMask
}

// absFromWire reconstructs the absolute sequence number whose 10-bit wire
// form is fsn, choosing the candidate closest to ref. This is unambiguous
// as long as the true value lies within ±half the sequence space of ref,
// which the replay-window limit (< 512 outstanding flits) guarantees.
func absFromWire(fsn uint16, ref uint64) uint64 {
	r := int64(ref)
	cand := r - r%seqSpace + int64(fsn)
	if cand > r+seqSpace/2 {
		cand -= seqSpace
	} else if cand+seqSpace/2 < r {
		cand += seqSpace
	}
	if cand < 0 {
		cand += seqSpace
	}
	return uint64(cand)
}
