package link

import (
	"encoding/binary"
	"testing"

	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/sim"
)

// srPair builds a direct connection with explicit-FSN peers using the
// given retry policy, returning the peers and the a->b wire for fault
// injection.
func srPair(t *testing.T, policy RetryPolicy, reassembly int) (*sim.Engine, *Peer, *Peer, *Wire) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(ProtocolCXLNoPiggyback)
	cfg.Retry = policy
	if reassembly > 0 {
		cfg.ReassemblyBufferSize = reassembly
	}
	a := NewPeer("A", eng, cfg)
	b := NewPeer("B", eng, cfg)
	ab, _ := ConnectDirect(eng, a, b, sim.FlitTime, 10*sim.Nanosecond)
	return eng, a, b, ab
}

func srTag(tag uint64) []byte {
	p := make([]byte, 16)
	binary.BigEndian.PutUint64(p, tag)
	return p
}

func TestRetryPolicyString(t *testing.T) {
	if GoBackN.String() != "go-back-N" || SelectiveRepeat.String() != "selective-repeat" {
		t.Fatal("policy strings wrong")
	}
}

func TestSelectiveRepeatRXLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	cfg := DefaultConfig(ProtocolRXL)
	cfg.Retry = SelectiveRepeat
	NewPeer("A", sim.NewEngine(), cfg)
}

// TestSelectiveRepeatSingleDropRetransmitsOne: dropping one flit out of a
// window costs exactly one retransmission under selective repeat, while
// delivery stays exactly-once in-order.
func TestSelectiveRepeatSingleDropRetransmitsOne(t *testing.T) {
	eng, a, b, ab := srPair(t, SelectiveRepeat, 0)

	seen := 0
	ab.FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			return seen == 3 // drop the third data flit
		}
		return false
	}

	var got []uint64
	b.Deliver = func(p []byte) { got = append(got, binary.BigEndian.Uint64(p)) }

	const n = 20
	for i := uint64(0); i < n; i++ {
		a.Submit(srTag(i))
	}
	eng.Run()

	if uint64(len(got)) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("delivery %d has tag %d", i, v)
		}
	}
	if a.Stats.SingleRetries != 1 {
		t.Errorf("SingleRetries = %d, want 1", a.Stats.SingleRetries)
	}
	if a.Stats.Retransmissions != 1 {
		t.Errorf("Retransmissions = %d, want exactly 1 under selective repeat", a.Stats.Retransmissions)
	}
	if b.Stats.ReassemblyBuffered == 0 || b.Stats.ReassemblyDrained != b.Stats.ReassemblyBuffered {
		t.Errorf("reassembly buffered=%d drained=%d", b.Stats.ReassemblyBuffered, b.Stats.ReassemblyDrained)
	}
	if b.Stats.SingleNaksSent == 0 {
		t.Error("no single NAK was sent")
	}
}

// TestGoBackNSingleDropReplaysWindow is the baseline for the test above:
// the same drop under go-back-N replays every in-flight flit.
func TestGoBackNSingleDropReplaysWindow(t *testing.T) {
	eng, a, b, ab := srPair(t, GoBackN, 0)

	seen := 0
	ab.FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			return seen == 3
		}
		return false
	}

	delivered := 0
	b.Deliver = func([]byte) { delivered++ }
	const n = 20
	for i := uint64(0); i < n; i++ {
		a.Submit(srTag(i))
	}
	eng.Run()

	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	if a.Stats.Retransmissions <= 1 {
		t.Fatalf("go-back-N retransmitted %d flits; expected a window replay", a.Stats.Retransmissions)
	}
}

// TestSelectiveRepeatMultipleDrops: several scattered drops each cost one
// retransmission.
func TestSelectiveRepeatMultipleDrops(t *testing.T) {
	eng, a, b, ab := srPair(t, SelectiveRepeat, 0)

	seen := 0
	ab.FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			return seen == 3 || seen == 9 || seen == 15
		}
		return false
	}

	var got []uint64
	b.Deliver = func(p []byte) { got = append(got, binary.BigEndian.Uint64(p)) }
	const n = 40
	for i := uint64(0); i < n; i++ {
		a.Submit(srTag(i))
	}
	eng.Run()

	if uint64(len(got)) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("delivery %d has tag %d", i, v)
		}
	}
	if a.Stats.SingleRetries != 3 {
		t.Errorf("SingleRetries = %d, want 3", a.Stats.SingleRetries)
	}
}

// TestSelectiveRepeatOverflowFallsBack: a tiny reassembly buffer forces
// the receiver back to go-back-N, and delivery still completes cleanly.
func TestSelectiveRepeatOverflowFallsBack(t *testing.T) {
	eng, a, b, ab := srPair(t, SelectiveRepeat, 2)

	seen := 0
	ab.FaultHook = func(f *flit.Flit) bool {
		if f.Header().Type == flit.TypeData {
			seen++
			return seen == 2
		}
		return false
	}

	var got []uint64
	b.Deliver = func(p []byte) { got = append(got, binary.BigEndian.Uint64(p)) }
	const n = 30
	for i := uint64(0); i < n; i++ {
		a.Submit(srTag(i))
	}
	eng.Run()

	if uint64(len(got)) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("delivery %d has tag %d", i, v)
		}
	}
	if b.Stats.ReassemblyOverflows == 0 {
		t.Error("buffer never overflowed; scenario did not exercise the fallback")
	}
	if a.Stats.GoBackNRounds == 0 && a.Stats.TimeoutRetries == 0 {
		t.Error("fallback go-back-N never ran")
	}
}

// TestSelectiveRepeatUnderBER: exactly-once in-order delivery holds under
// random errors, and selective repeat spends no more retransmissions than
// go-back-N on the same error pattern.
func TestSelectiveRepeatUnderBER(t *testing.T) {
	run := func(policy RetryPolicy) (retx uint64) {
		eng := sim.NewEngine()
		cfg := DefaultConfig(ProtocolCXLNoPiggyback)
		cfg.Retry = policy
		a := NewPeer("A", eng, cfg)
		b := NewPeer("B", eng, cfg)
		ab, ba := ConnectDirect(eng, a, b, sim.FlitTime, 10*sim.Nanosecond)
		rng := phy.NewRNG(4242)
		ab.Channel = phy.NewChannel(2e-5, 0.4, rng.Split())
		ba.Channel = phy.NewChannel(2e-5, 0.4, rng.Split())

		var got []uint64
		b.Deliver = func(p []byte) { got = append(got, binary.BigEndian.Uint64(p)) }
		const n = 5000
		for i := uint64(0); i < n; i++ {
			a.Submit(srTag(i))
		}
		eng.Run()
		if uint64(len(got)) != n {
			t.Fatalf("%v delivered %d of %d", policy, len(got), n)
		}
		for i, v := range got {
			if v != uint64(i) {
				t.Fatalf("%v delivery %d has tag %d", policy, i, v)
			}
		}
		return a.Stats.Retransmissions
	}

	gbn := run(GoBackN)
	sr := run(SelectiveRepeat)
	if gbn == 0 {
		t.Skip("no errors at this seed; nothing to compare")
	}
	if sr > gbn {
		t.Errorf("selective repeat retransmitted more (%d) than go-back-N (%d)", sr, gbn)
	}
	t.Logf("retransmissions: go-back-N=%d selective-repeat=%d", gbn, sr)
}

// BenchmarkRetryAblationGoBackN / SelectiveRepeat: the DESIGN.md retry
// ablation — simulator cost of each policy under identical error rates.
func benchRetry(b *testing.B, policy RetryPolicy) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(ProtocolCXLNoPiggyback)
	cfg.Retry = policy
	a := NewPeer("A", eng, cfg)
	pb := NewPeer("B", eng, cfg)
	ab, ba := ConnectDirect(eng, a, pb, sim.FlitTime, 10*sim.Nanosecond)
	rng := phy.NewRNG(7)
	ab.Channel = phy.NewChannel(1e-5, 0.4, rng.Split())
	ba.Channel = phy.NewChannel(1e-5, 0.4, rng.Split())
	delivered := 0
	pb.Deliver = func([]byte) { delivered++ }
	payload := make([]byte, 16)
	b.SetBytes(flit.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Submit(payload)
		if a.Queued() > 256 {
			eng.Run()
		}
	}
	eng.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
	b.ReportMetric(float64(a.Stats.Retransmissions)/float64(b.N), "retx/op")
}

func BenchmarkRetryAblationGoBackN(b *testing.B)         { benchRetry(b, GoBackN) }
func BenchmarkRetryAblationSelectiveRepeat(b *testing.B) { benchRetry(b, SelectiveRepeat) }
