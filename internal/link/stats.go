package link

// Stats counts link-layer events at one peer. All counters are cumulative
// over the peer's lifetime.
type Stats struct {
	// Transmit side.
	FlitsSent       uint64 // every flit put on the wire, incl. control and replays
	DataFlitsSent   uint64 // first transmissions of data flits
	AckFlitsSent    uint64 // standalone ACK control flits
	NakFlitsSent    uint64 // standalone NAK control flits
	PiggybackedAcks uint64 // data flits whose FSN carried an AckNum
	Retransmissions uint64 // data flits re-sent (go-back-N rounds or single retries)
	TimeoutRetries  uint64 // go-back-N rounds triggered by the retry timer
	SingleRetries   uint64 // selective repeat: flits re-sent individually
	SingleNaksSent  uint64 // selective repeat: NAKs naming one missing flit

	// Receive side.
	FlitsReceived       uint64
	FecCorrectedFlits   uint64 // flits repaired by link FEC
	FecCorrectedSymbols uint64 // total symbols repaired
	FecUncorrectable    uint64 // flits the FEC flagged as uncorrectable
	CrcErrors           uint64 // endpoint CRC/ISN mismatches on data flits
	ControlCrcErrors    uint64 // corrupted control flits discarded
	GapsDetected        uint64 // explicit-FSN mismatches proving a missing flit
	DuplicatesDropped   uint64 // stale explicit-FSN flits discarded at link level
	UnverifiedDelivered uint64 // CXL blind spot: AckNum-carrying flits forwarded without a sequence check
	UnverifiedDiscarded uint64 // AckNum-carrying flits dropped while awaiting replay
	Delivered           uint64 // payloads handed to the upper layer
	AcksReceived        uint64
	NaksReceived        uint64
	GoBackNRounds       uint64 // NAK-triggered replay rounds

	// Selective repeat (Section 5 ablation).
	ReassemblyBuffered  uint64 // out-of-order flits parked in the buffer
	ReassemblyDrained   uint64 // parked flits delivered after a gap filled
	ReassemblyOverflows uint64 // buffer-full events forcing go-back-N
}
