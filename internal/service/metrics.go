package service

import (
	"time"

	"repro/internal/obs"
)

// Cache outcomes labelling the request-latency histogram. A request's
// outcome is where its bytes came from: the local cache (hit), a fleet
// peer (peer_fetched), an identical in-flight job it joined
// (inflight_join), a local engine run (miss), or nowhere (error — failed
// or cancelled jobs).
const (
	outcomeHit          = "hit"
	outcomeMiss         = "miss"
	outcomePeerFetched  = "peer_fetched"
	outcomeInflightJoin = "inflight_join"
	outcomeError        = "error"
)

// requestOutcomes is the fixed label set, pre-created so the hot path
// never creates series.
var requestOutcomes = []string{
	outcomeHit, outcomeMiss, outcomePeerFetched, outcomeInflightJoin, outcomeError,
}

// wireMetrics builds the daemon's /metrics registry. Histograms are real
// atomic-bucket metrics observed on the request path; everything already
// counted under an existing lock (scheduler, cache, server counters) is
// exposed as a Func metric sampled at scrape time, so the hot path pays
// nothing for being observable. Family names and meanings are documented
// in OPERATIONS.md ("The /metrics reference").
func (s *Server) wireMetrics() {
	reg := obs.NewRegistry()
	s.metrics = reg

	s.reqSeconds = make(map[string]*obs.Histogram, len(requestOutcomes))
	for _, oc := range requestOutcomes {
		s.reqSeconds[oc] = reg.Histogram("rxld_request_seconds",
			"Submit-to-terminal job latency in seconds, by cache outcome.",
			nil, "outcome", oc)
	}

	reg.GaugeFunc("rxld_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(s.start).Seconds() })

	// Scheduler: queue + shard-budget utilization.
	reg.GaugeFunc("rxld_queue_depth", "Jobs waiting for admission.",
		func() float64 { q, _, _, _ := s.sched.snapshot(); return float64(q) })
	reg.GaugeFunc("rxld_queue_capacity", "Admission queue bound (overflow answers 429).",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("rxld_running_jobs", "Jobs currently executing.",
		func() float64 { _, r, _, _ := s.sched.snapshot(); return float64(r) })
	reg.GaugeFunc("rxld_shards_in_use", "Worker shards granted to running jobs.",
		func() float64 { _, _, u, _ := s.sched.snapshot(); return float64(u) })
	reg.GaugeFunc("rxld_shard_budget", "Total worker-shard budget.",
		func() float64 { return float64(s.cfg.ShardBudget) })
	reg.GaugeFunc("rxld_shard_utilization", "shards_in_use / shard_budget.",
		func() float64 {
			_, _, u, _ := s.sched.snapshot()
			return float64(u) / float64(s.cfg.ShardBudget)
		})

	// Server job counters (guarded by s.mu).
	locked := func(read func() uint64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(read())
		}
	}
	reg.CounterFunc("rxld_jobs_submitted_total", "Jobs admitted (hits included).",
		locked(func() uint64 { return s.submitted }))
	reg.CounterFunc("rxld_jobs_completed_total", "Jobs reaching a terminal state.",
		locked(func() uint64 { return s.completed }))
	reg.CounterFunc("rxld_dedup_hits_total", "Submissions coalesced onto an in-flight twin.",
		locked(func() uint64 { return s.dedups }))

	// Cache tiers.
	reg.GaugeFunc("rxld_cache_entries", "Memory-tier entries.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("rxld_cache_capacity", "Memory-tier entry bound.",
		func() float64 { return float64(s.cache.Stats().Capacity) })
	reg.GaugeFunc("rxld_cache_bytes", "Result bytes resident in the memory tier.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.CounterFunc("rxld_cache_hits_total", "Client-facing memory-tier hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("rxld_cache_misses_total", "Client-facing cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("rxld_cache_disk_hits_total", "Misses answered by the disk tier.",
		func() float64 { return float64(s.cache.Stats().DiskHits) })
	reg.CounterFunc("rxld_cache_spills_total", "Entries written through to disk.",
		func() float64 { return float64(s.cache.Stats().Spills) })

	// Fleet families exist only on members — a standalone daemon's scrape
	// carries no dead peer series.
	if s.cfg.PeerFetch != nil || s.cfg.FleetInfo != nil {
		reg.CounterFunc("rxld_cache_probes_total", "Peer cache lookups received (GET /v1/cache/{key}).",
			func() float64 { return float64(s.cache.Stats().Probes) })
		reg.CounterFunc("rxld_peer_fetch_hits_total", "Local misses answered with a peer's bytes.",
			locked(func() uint64 { return s.peerHits }))
		reg.CounterFunc("rxld_peer_fetch_misses_total", "Fleet consultations that fell through to a local compute.",
			locked(func() uint64 { return s.peerMisses }))
		reg.CounterFunc("rxld_peer_served_total", "Peer cache lookups answered with bytes.",
			locked(func() uint64 { return s.peerServed }))
	}

	reg.GaugeFunc("rxld_traces_live", "Request IDs with spans in the trace buffer.",
		func() float64 { return float64(s.tracer.Size()) })
}

// observeJob classifies a finished job's cache outcome and feeds the
// latency histogram and the job's trace. It runs from the terminal hook,
// so every path to a terminal state — engine completion, peer fetch,
// cache hit, cancellation — is observed exactly once.
func (s *Server) observeJob(j *Job) {
	j.mu.Lock()
	status, cached, peer := j.status, j.cached, j.peerFetched
	finished := j.finished
	dur := finished.Sub(j.submitted)
	j.mu.Unlock()

	outcome := outcomeMiss
	switch {
	case status != StatusDone:
		outcome = outcomeError
	case cached:
		outcome = outcomeHit
	case peer:
		outcome = outcomePeerFetched
	}
	s.reqSeconds[outcome].Observe(dur.Seconds())
	s.tracer.Record(j.rid, "finish", finished, 0, map[string]string{
		"status": string(status), "outcome": outcome, "job": j.ID,
	})
}
