package service

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is returned (and mapped to 429) when a submission would
// exceed the bounded job queue — the admission-control backpressure
// signal: clients retry later instead of piling work onto an unbounded
// backlog.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned for submissions after shutdown began.
var ErrClosed = errors.New("service: server closed")

// scheduler owns admission: a bounded priority queue of jobs and a fixed
// shard budget the running set draws worker allocations from.
//
// Invariants, asserted by test:
//
//  1. inUse ≤ budget at all times — the sum of granted worker
//     allocations across running jobs never exceeds the budget, so the
//     machine's shard concurrency is bounded by construction (each job's
//     runner pool is sized to its grant).
//  2. Queue order is (higher priority, then FIFO). Dispatch never
//     reorders equal-priority jobs.
//  3. A job is dispatched only when at least one worker is free; its
//     grant is min(requested, free budget), at least 1 — a wide job
//     shrinks to fit rather than starving behind the running set
//     (results are worker-count independent, so shrinking is safe).
type scheduler struct {
	budget         int
	depth          int
	defaultWorkers int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobQueue
	inUse   int
	peak    int
	running int
	closed  bool

	run func(j *Job, workers int) // set by the server; executes one job
	wg  sync.WaitGroup
}

// newScheduler starts the dispatcher goroutine.
func newScheduler(budget, depth, defaultWorkers int, run func(*Job, int)) *scheduler {
	s := &scheduler{budget: budget, depth: depth, defaultWorkers: defaultWorkers, run: run}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// submit admits a job to the queue or rejects it with ErrQueueFull.
func (s *scheduler) submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.queue.Len() >= s.depth {
		return ErrQueueFull
	}
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return nil
}

// dispatch pops jobs in priority order whenever budget frees up, grants
// each an allocation, and hands it to run on its own goroutine.
func (s *scheduler) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && (s.queue.Len() == 0 || s.inUse >= s.budget) {
			s.cond.Wait()
		}
		if s.closed {
			// Drain the queue as cancelled: nothing new will run.
			for s.queue.Len() > 0 {
				j := heap.Pop(&s.queue).(*Job)
				s.mu.Unlock()
				j.Cancel()
				s.mu.Lock()
			}
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		if j.Status().Terminal() {
			// Cancelled while queued; drop without charging the budget.
			s.mu.Unlock()
			continue
		}
		want := j.Spec.Workers
		if want <= 0 {
			want = s.defaultWorkers
		}
		if want > s.budget {
			want = s.budget
		}
		grant := s.budget - s.inUse
		if grant > want {
			grant = want
		}
		s.inUse += grant
		if s.inUse > s.peak {
			s.peak = s.inUse
		}
		s.running++
		s.mu.Unlock()

		s.wg.Add(1)
		go func(j *Job, grant int) {
			defer s.wg.Done()
			s.run(j, grant)
			s.mu.Lock()
			s.inUse -= grant
			s.running--
			s.cond.Broadcast()
			s.mu.Unlock()
		}(j, grant)
	}
}

// remove takes a job out of the pending queue (no-op if it is not
// queued), immediately freeing its admission slot — a cancelled queued
// job must not hold QueueDepth against live submissions while it waits
// to be popped.
func (s *scheduler) remove(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.queue {
		if q == j {
			heap.Remove(&s.queue, i)
			return
		}
	}
}

// close stops dispatching. Queued jobs are cancelled; running jobs keep
// their grants until they observe their cancelled contexts and return.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// wait blocks until the dispatcher and every running job goroutine exit.
func (s *scheduler) wait() { s.wg.Wait() }

// snapshot returns (queued, running, inUse, peak).
func (s *scheduler) snapshot() (queued, running, inUse, peak int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len(), s.running, s.inUse, s.peak
}

// jobQueue is a max-heap on (priority, FIFO sequence).
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].Spec.Priority != q[j].Spec.Priority {
		return q[i].Spec.Priority > q[j].Spec.Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*Job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}
