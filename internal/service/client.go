package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client is the typed API client. It speaks the same HTTP surface whether
// pointed at a TCP daemon (NewClient) or directly at an in-process Server
// (NewInProcessClient) — the latter routes requests through ServeHTTP
// without a socket, so examples and tests exercise exactly the handlers
// HTTP users hit.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a daemon at base, e.g.
// "http://127.0.0.1:8080".
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// NewInProcessClient returns a client wired straight into s.
func NewInProcessClient(s *Server) *Client {
	return &Client{
		base: "http://rxld.inprocess",
		hc:   &http.Client{Transport: inProcessTransport{h: s}},
	}
}

// apiStatusError is a non-2xx response decoded from the error body.
type apiStatusError struct {
	Code    int
	Message string
}

func (e *apiStatusError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Code, e.Message)
}

// IsQueueFull reports whether err is the daemon's 429 admission
// rejection — the signal to back off and resubmit.
func IsQueueFull(err error) bool {
	se, ok := err.(*apiStatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

// StatusCode extracts the HTTP status of a daemon error response. ok is
// false for transport-level failures (connection refused, timeouts) —
// the distinction the fleet front uses to tell "the daemon said no"
// (propagate) from "the daemon is gone" (fail over to the next owner).
func StatusCode(err error) (code int, ok bool) {
	se, isAPI := err.(*apiStatusError)
	if !isAPI {
		return 0, false
	}
	return se.Code, true
}

// do issues a request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	propagateRequestID(ctx, req)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &apiStatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// propagateRequestID forwards the context's trace request ID, so a hop
// made on behalf of a traced request — a front forwarding a submit, a
// member probing a peer's cache — records its spans on the far side
// under the same ID.
func propagateRequestID(ctx context.Context, req *http.Request) {
	if rid := obs.RequestID(ctx); rid != "" {
		req.Header.Set(obs.HeaderRequestID, rid)
	}
}

// Submit posts a job spec. Cache hits come back already StatusDone with
// the result inline and Cached set.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &v)
	return v, err
}

// Get fetches a job's current view.
func (c *Client) Get(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// GetConditional fetches a job's view unless the caller's cached copy is
// still current: etag is the ETag header of a previous fetch (the job's
// content address). notModified=true means the daemon answered 304 and
// the cached copy — result bytes included — is valid; the returned view
// is zero in that case. The ETag of the fresh response (empty until the
// job is done) comes back for the caller to store.
func (c *Client) GetConditional(ctx context.Context, id, etag string) (v JobView, newETag string, notModified bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return v, "", false, err
	}
	propagateRequestID(ctx, req)
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return v, "", false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotModified:
		return v, etag, true, nil
	case resp.StatusCode >= 300:
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return v, "", false, &apiStatusError{Code: resp.StatusCode, Message: msg}
	}
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.Header.Get("ETag"), false, err
}

// FetchCached asks the daemon for the raw cached result bytes of a
// content address (GET /v1/cache/{key}) — the fleet peer-fetch
// protocol. It never triggers computation. wait > 0 additionally joins
// an in-flight computation of the key on that daemon, blocking until it
// finishes or the budget elapses. ok=false with a nil error is a clean
// miss; a non-nil error means the daemon could not be asked at all.
func (c *Client) FetchCached(ctx context.Context, key string, wait time.Duration) (res []byte, ok bool, err error) {
	path := "/v1/cache/" + key
	if wait > 0 {
		path += "?wait=" + strconv.FormatInt(wait.Milliseconds(), 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, false, err
	}
	propagateRequestID(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, nil
	case resp.StatusCode >= 300:
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return nil, false, &apiStatusError{Code: resp.StatusCode, Message: msg}
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// Wait long-polls until the job reaches a terminal status or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (JobView, error) {
	for {
		var v JobView
		if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?wait=30000", nil, &v); err != nil {
			return v, err
		}
		if v.Status.Terminal() {
			return v, nil
		}
		if err := ctx.Err(); err != nil {
			return v, err
		}
	}
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Run is submit-and-wait: the result bytes of the job, wherever they came
// from (engine, cache, or a deduped in-flight sibling).
func (c *Client) Run(ctx context.Context, spec JobSpec) (json.RawMessage, error) {
	v, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if !v.Status.Terminal() {
		if v, err = c.Wait(ctx, v.ID); err != nil {
			return nil, err
		}
	}
	if v.Status != StatusDone {
		return nil, fmt.Errorf("service: job %s %s: %s", v.ID, v.Status, v.Error)
	}
	return v.Result, nil
}

// Stream subscribes to a job's SSE feed, invoking fn for every event —
// the full replay first, then live updates — until the terminal event,
// fn's error, or ctx. A nil error from Stream means the job's event log
// completed.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	propagateRequestID(ctx, req)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &apiStatusError{Code: resp.StatusCode, Message: msg}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var data []byte
	terminal := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		case line == "" && len(data) > 0:
			var e Event
			if err := json.Unmarshal(data, &e); err != nil {
				return fmt.Errorf("service: bad SSE payload: %w", err)
			}
			data = data[:0]
			if err := fn(e); err != nil {
				return err
			}
			if e.Type == "result" || e.Type == "error" {
				terminal = true
			}
		}
	}
	if err := sc.Err(); err != nil && !terminal {
		return err
	}
	return nil
}

// Stats fetches /v1/statsz.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/statsz", nil, &st)
	return st, err
}

// JobTrace fetches the spans a daemon recorded for a job's request ID
// (GET /v1/jobs/{id}/trace). The returned view carries the request ID,
// the handle for widening the trace across the fleet via TraceByRequestID.
func (c *Client) JobTrace(ctx context.Context, id string) (TraceView, error) {
	var tv TraceView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &tv)
	return tv, err
}

// TraceByRequestID fetches the spans a daemon recorded under a request
// ID (GET /v1/trace/{rid}). A daemon that never saw the request answers
// 404 — a clean "no spans here", not a failure, for fleet assembly.
func (c *Client) TraceByRequestID(ctx context.Context, rid string) (TraceView, error) {
	var tv TraceView
	err := c.do(ctx, http.MethodGet, "/v1/trace/"+rid, nil, &tv)
	return tv, err
}

// Health probes /v1/healthz, failing fast if the daemon is unreachable.
func (c *Client) Health(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}
