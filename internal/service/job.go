package service

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: admitted, waiting for a worker allocation.
	StatusQueued Status = "queued"
	// StatusRunning: executing on a granted shard allocation.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; Result holds the document.
	StatusDone Status = "done"
	// StatusFailed: finished with an error (including deadline overrun).
	StatusFailed Status = "failed"
	// StatusCanceled: cancelled before completion (DELETE or shutdown).
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Job is the server-side state of one submission.
type Job struct {
	ID   string
	Key  string
	Spec JobSpec // normalized
	rid  string  // request ID of the submission that created the job
	seq  uint64  // admission order, FIFO tiebreak within a priority

	ctx        context.Context
	cancel     context.CancelFunc
	events     *broker
	shardsDone atomic.Int64
	// onTerminal runs exactly once, after the terminal event publishes —
	// the server hooks its registry finalization here so every path to a
	// terminal state (engine completion, queued-job cancellation,
	// shutdown drain) releases the job's in-flight claim.
	onTerminal func(*Job)

	mu          sync.Mutex
	status      Status
	cached      bool
	peerFetched bool
	workers     int // granted allocation while running
	err         string
	result      json.RawMessage
	submitted   time.Time
	started     time.Time
	finished    time.Time
}

// JobView is the JSON rendering of a job for GET /v1/jobs/{id} and the
// submit response.
type JobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Key    string `json:"key"`
	Status Status `json:"status"`
	// Cached is true when the result came from the content-addressed
	// cache instead of an engine run.
	Cached bool `json:"cached"`
	// Dedup is true (in submit responses) when this submission coalesced
	// onto an identical in-flight job instead of queueing a duplicate.
	Dedup bool `json:"dedup,omitempty"`
	// PeerFetched is true when the result bytes came from a fleet peer's
	// cache (or in-flight computation) instead of a local engine run —
	// byte-identical either way, by the engines' determinism.
	PeerFetched bool `json:"peer_fetched,omitempty"`
	// RequestID is the trace ID of the submission that created the job —
	// the handle GET /v1/jobs/{id}/trace and /v1/trace/{rid} resolve.
	RequestID  string          `json:"request_id,omitempty"`
	Priority   int             `json:"priority,omitempty"`
	Workers    int             `json:"workers,omitempty"`
	ShardsDone int64           `json:"shards_done,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	// WaitMS and RunMS are the queue wait and execution durations of a
	// finished job, in milliseconds.
	WaitMS int64 `json:"wait_ms,omitempty"`
	RunMS  int64 `json:"run_ms,omitempty"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Kind:        j.Spec.Kind,
		Key:         j.Key,
		Status:      j.status,
		Cached:      j.cached,
		PeerFetched: j.peerFetched,
		RequestID:   j.rid,
		Priority:    j.Spec.Priority,
		Workers:     j.workers,
		ShardsDone:  j.shardsDone.Load(),
		Error:       j.err,
		Result:      j.result,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if !j.started.IsZero() {
		v.WaitMS = j.started.Sub(j.submitted).Milliseconds()
		if !j.finished.IsZero() {
			v.RunMS = j.finished.Sub(j.started).Milliseconds()
		}
	} else if !j.finished.IsZero() {
		v.WaitMS = j.finished.Sub(j.submitted).Milliseconds()
	}
	return v
}

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// setRunning transitions queued → running and publishes the status event.
// It returns false if the job reached a terminal state first (cancelled
// while queued).
func (j *Job) setRunning(workers int) bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.status = StatusRunning
	j.workers = workers
	j.started = time.Now()
	j.mu.Unlock()
	j.events.publish(Event{Type: "status", Status: StatusRunning}, false)
	return true
}

// finish transitions to a terminal state exactly once, publishing the
// terminal event ("result" on success, "error" otherwise).
func (j *Job) finish(status Status, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.result = result
	j.err = errMsg
	j.finished = time.Now()
	j.mu.Unlock()

	switch status {
	case StatusDone:
		j.events.publish(Event{Type: "result", Status: status, Result: result}, true)
	default:
		j.events.publish(Event{Type: "error", Status: status, Error: errMsg}, true)
	}
	if j.onTerminal != nil {
		j.onTerminal(j)
	}
}

// setPeerFetched marks the result as fetched from a fleet peer. Called
// before finish, so every view of the terminal job carries the flag.
func (j *Job) setPeerFetched() {
	j.mu.Lock()
	j.peerFetched = true
	j.mu.Unlock()
}

// Cancel requests cancellation. Queued jobs transition immediately;
// running jobs transition when the engines observe the context (the
// estimator poll period keeps that in the milliseconds).
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.finish(StatusCanceled, nil, context.Canceled.Error())
	}
}

// progress publishes a runner progress callback as an event.
func (j *Job) progress(done, total int) {
	j.events.publish(Event{
		Type:       "progress",
		Done:       done,
		Total:      total,
		ShardsDone: j.shardsDone.Add(1),
	}, false)
}
