package service

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/runner"
	"repro/internal/workload"
)

// scenarioSpec is the small scenario-grid fixture of the kind tests:
// both router stacks on a mesh and a torus, zipf and transpose traffic,
// a storm campaign.
func scenarioSpec() JobSpec {
	return JobSpec{
		Kind: KindScenario,
		Seed: 4,
		Scenario: &core.ScenarioGrid{
			Base:      core.Config{Protocol: link.ProtocolRXL, BurstProb: 0.4, Seed: 17},
			Protocols: []link.Protocol{link.ProtocolCXLNoPiggyback, link.ProtocolRXL},
			Topologies: []core.Topology{
				{Kind: core.TopoMesh, W: 3, H: 3},
				{Kind: core.TopoTorus, W: 3, H: 3},
			},
			Workloads: []workload.Spec{
				{Kind: workload.KindZipf, Flows: 4},
				{Kind: workload.KindTranspose},
			},
			Faults: []core.FaultScript{{Kind: core.FaultNone}, {Kind: core.FaultStorm, Factor: 20}},
			BERs:   []float64{1e-5},
			N:      40,
		},
	}
}

// TestScenarioJobMatchesDirect: a served scenario job returns
// byte-identical results to executing the normalized spec directly, and
// a resubmission is a cache hit serving the same bytes — the serving
// contract extended to the scenario kind.
func TestScenarioJobMatchesDirect(t *testing.T) {
	srv := MustNew(Config{ShardBudget: 2})
	defer srv.Close()
	c := NewInProcessClient(srv)

	res, err := c.Run(context.Background(), scenarioSpec())
	if err != nil {
		t.Fatal(err)
	}

	norm, err := scenarioSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := execute(context.Background(), norm, runner.Pool{Workers: 2, BaseSeed: norm.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != string(direct) {
		t.Fatalf("served scenario diverges from direct execution:\nserved %s\ndirect %s", res, direct)
	}

	var results []core.ScenarioResult
	if err := json.Unmarshal(res, &results); err != nil {
		t.Fatal(err)
	}
	cells, err := norm.Scenario.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cells) {
		t.Fatalf("scenario returned %d results for %d cells", len(results), len(cells))
	}
	for i, r := range results {
		if len(r.Result.PerFlow) == 0 {
			t.Fatalf("cell %d (%s) has no per-flow accounting", i, cells[i].Name())
		}
	}

	// Identical resubmission: cache hit, byte-identical answer.
	again, err := c.Run(context.Background(), scenarioSpec())
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(res) {
		t.Fatal("cache-hit scenario result differs from first run")
	}
}

// TestScenarioNormalizeCanonicalizes: axis defaults and per-element
// normalization fill in, so two spellings of the same grid share one
// cache key.
func TestScenarioNormalizeCanonicalizes(t *testing.T) {
	a := scenarioSpec()
	b := scenarioSpec()
	// Spell the same grid differently: topology kind left empty (defaults
	// to mesh), zipf skew/flows left to defaults vs written explicitly.
	a.Scenario.Topologies[0].Kind = ""
	a.Scenario.Workloads[0] = workload.Spec{Kind: workload.KindZipf}
	b.Scenario.Workloads[0] = workload.Spec{Kind: workload.KindZipf, Flows: 8, Skew: 1.2}
	na, err := a.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if na.Key() != nb.Key() {
		t.Fatalf("equivalent scenario grids key differently:\n%s\n%s", na.Key(), nb.Key())
	}

	// The faults axis defaults to a single "none" campaign.
	c := scenarioSpec()
	c.Scenario.Faults = nil
	nc, err := c.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(nc.Scenario.Faults) != 1 || nc.Scenario.Faults[0].Kind != core.FaultNone {
		t.Fatalf("defaulted faults axis = %+v", nc.Scenario.Faults)
	}
}

// TestScenarioValidation pins the Normalize rejections of the scenario
// kind.
func TestScenarioValidation(t *testing.T) {
	topo := []core.Topology{{W: 2, H: 2}}
	wl := []workload.Spec{{Kind: workload.KindUniform}}
	bad := []JobSpec{
		{Kind: KindScenario}, // no payload
		{Kind: KindScenario, Scenario: &core.ScenarioGrid{N: 5}},                                                                                                        // no axes
		{Kind: KindScenario, Scenario: &core.ScenarioGrid{Topologies: topo, Workloads: wl}},                                                                             // N missing
		{Kind: KindScenario, Scenario: &core.ScenarioGrid{N: 5, Topologies: []core.Topology{{Kind: "ring", W: 2, H: 2}}, Workloads: wl}},                                // bad topology
		{Kind: KindScenario, Scenario: &core.ScenarioGrid{N: 5, Topologies: topo, Workloads: []workload.Spec{{Kind: "tornado"}}}},                                       // bad workload
		{Kind: KindScenario, Scenario: &core.ScenarioGrid{N: 5, Topologies: topo, Workloads: wl, BERs: []float64{2}}},                                                   // bad BER in cells
		{Kind: KindScenario, Scenario: &core.ScenarioGrid{N: 5, Topologies: []core.Topology{{W: 4, H: 1}}, Workloads: []workload.Spec{{Kind: workload.KindTranspose}}}}, // all incompatible
		{Kind: KindGrid, Scenario: &core.ScenarioGrid{N: 5, Topologies: topo, Workloads: wl}},                                                                           // kind/payload mismatch
	}
	for i, spec := range bad {
		if _, err := spec.Normalize(); err == nil {
			t.Errorf("spec %d normalized without error: %+v", i, spec)
		}
	}
}

// TestPR5KindKeysUnchanged pins the PR 5 cache-key bytes of the
// comparison and rare-selfcheck kinds: the Scenario keySpec extension
// carries omitempty, so specs of the earlier kinds keep their canonical
// bytes — and their spilled cache entries.
func TestPR5KindKeysUnchanged(t *testing.T) {
	norm, err := comparisonSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Reproduce the PR 5 projection literally: the same struct without
	// the Scenario field.
	legacy := struct {
		Kind          string
		Seed          uint64
		Grid          *core.Grid
		Sweep         *SweepSpec
		Rare          *RareSpec
		Comparison    *ComparisonSpec    `json:",omitempty"`
		RareSelfCheck *RareSelfCheckSpec `json:",omitempty"`
	}{Kind: norm.Kind, Seed: norm.Seed, Comparison: norm.Comparison}
	b, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := norm.Key(), keyOfBytes(b); got != want {
		t.Fatalf("legacy comparison key changed: %s != %s", got, want)
	}
}
