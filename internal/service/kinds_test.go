package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/reliability"
	"repro/internal/runner"
)

// keyOfBytes mirrors JobSpec.Key's hash step for a hand-built projection.
func keyOfBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// comparisonSpec is the small fixture shared by the kind tests.
func comparisonSpec() JobSpec {
	return JobSpec{
		Kind: KindComparison,
		Seed: 3,
		Comparison: &ComparisonSpec{
			Base: core.Config{Levels: 1, BER: 1e-5, BurstProb: 0.4, Seed: 7},
			N:    300,
		},
	}
}

// TestComparisonJobMatchesDirect: a served comparison job returns
// byte-identical results to executing the normalized spec directly —
// the serving contract extended to the new kind.
func TestComparisonJobMatchesDirect(t *testing.T) {
	srv := MustNew(Config{ShardBudget: 2})
	defer srv.Close()
	c := NewInProcessClient(srv)

	res, err := c.Run(context.Background(), comparisonSpec())
	if err != nil {
		t.Fatal(err)
	}

	norm, err := comparisonSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := execute(context.Background(), norm, runner.Pool{Workers: 2, BaseSeed: norm.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != string(direct) {
		t.Fatalf("served comparison diverges from direct execution:\nserved %s\ndirect %s", res, direct)
	}

	var ordered []ProtocolResult
	if err := json.Unmarshal(res, &ordered); err != nil {
		t.Fatal(err)
	}
	if len(ordered) != len(core.Protocols) {
		t.Fatalf("comparison returned %d variants, want %d", len(ordered), len(core.Protocols))
	}
	for i, p := range core.Protocols {
		if ordered[i].Protocol != p.String() {
			t.Fatalf("variant %d is %q, want %q", i, ordered[i].Protocol, p)
		}
		if ordered[i].Result.Offered != 300 {
			t.Fatalf("variant %q offered %d", ordered[i].Protocol, ordered[i].Result.Offered)
		}
	}
}

// TestComparisonNormalizeScrubsIgnoredFields: Protocol and LinkConfig of
// the base config are overridden per variant by the engine, so two specs
// differing only there must share one cache key.
func TestComparisonNormalizeScrubsIgnoredFields(t *testing.T) {
	a := comparisonSpec()
	b := comparisonSpec()
	b.Comparison.Base.Protocol = 2
	lcfg := link.DefaultConfig(link.ProtocolRXL)
	b.Comparison.Base.LinkConfig = &lcfg
	na, err := a.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if na.Key() != nb.Key() {
		t.Fatalf("ignored base fields split the cache key:\n%s\n%s", na.Key(), nb.Key())
	}
}

// TestComparisonSeedVariesResults: with the base seed left to default,
// the spec's top-level Seed must steer the simulation — distinct-seed
// submissions are independent samples, not byte-identical copies filed
// under different cache keys.
func TestComparisonSeedVariesResults(t *testing.T) {
	srv := MustNew(Config{ShardBudget: 2})
	defer srv.Close()
	c := NewInProcessClient(srv)

	run := func(seed uint64) string {
		spec := JobSpec{
			Kind: KindComparison,
			Seed: seed,
			Comparison: &ComparisonSpec{
				Base: core.Config{Levels: 1, BER: 1e-4, BurstProb: 0.4},
				N:    400,
			},
		}
		res, err := c.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return string(res)
	}
	if run(1) == run(2) {
		t.Fatal("comparison results identical across distinct top-level seeds")
	}
}

// TestRareSelfCheckJobServes: the self-check kind runs end-to-end and
// returns parsable check points within the advertised sigma budget.
func TestRareSelfCheckJobServes(t *testing.T) {
	srv := MustNew(Config{ShardBudget: 2})
	defer srv.Close()
	c := NewInProcessClient(srv)

	spec := JobSpec{
		Kind: KindRareSelfCheck,
		Seed: 1,
		RareSelfCheck: &RareSelfCheckSpec{
			BERs:   []float64{1e-6},
			Flits:  1 << 18,
			Shards: 8,
		},
	}
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var pts []reliability.RareCheckPoint
	if err := json.Unmarshal(res, &pts); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("self-check returned %d points", len(pts))
	}
}

// TestNewKindsValidation pins the Normalize rejections of the new kinds.
func TestNewKindsValidation(t *testing.T) {
	bad := []JobSpec{
		{Kind: KindComparison}, // no payload
		{Kind: KindComparison, Comparison: &ComparisonSpec{N: 0}},                                // no payloads
		{Kind: KindComparison, Comparison: &ComparisonSpec{Base: core.Config{BER: 2}, N: 5}},     // bad BER
		{Kind: KindRareSelfCheck, RareSelfCheck: &RareSelfCheckSpec{}},                           // no BERs
		{Kind: KindRareSelfCheck, RareSelfCheck: &RareSelfCheckSpec{BERs: []float64{0}}},         // BER out of range
		{Kind: KindGrid, Grid: &core.Grid{N: 5}, Comparison: &ComparisonSpec{N: 5}},              // two payloads
		{Kind: KindComparison, RareSelfCheck: &RareSelfCheckSpec{BERs: []float64{1e-6}}},         // kind/payload mismatch
		{Kind: KindRareSelfCheck, RareSelfCheck: &RareSelfCheckSpec{BERs: []float64{1e-6, 1.5}}}, // second BER bad
		{Kind: "mesh", Comparison: &ComparisonSpec{Base: core.Config{BER: 1e-6}, N: 5}},          // unknown kind
	}
	for i, spec := range bad {
		if _, err := spec.Normalize(); err == nil {
			t.Errorf("spec %d normalized without error: %+v", i, spec)
		}
	}
}

// TestETagNotModified: a finished job's result fetch carries an ETag (the
// content address), and a repeat fetch presenting it via If-None-Match is
// answered 304 with no body — over the real HTTP stack.
func TestETagNotModified(t *testing.T) {
	srv := MustNew(Config{ShardBudget: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	v, err := c.Submit(ctx, comparisonSpec())
	if err != nil {
		t.Fatal(err)
	}
	if v, err = c.Wait(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Fatalf("job %s: %s", v.ID, v.Status)
	}

	// First conditional fetch with no validator: full body plus ETag.
	fresh, etag, notMod, err := c.GetConditional(ctx, v.ID, "")
	if err != nil || notMod {
		t.Fatalf("initial fetch: err=%v notModified=%v", err, notMod)
	}
	if etag != `"`+v.Key+`"` {
		t.Fatalf("ETag %q, want quoted content address %q", etag, v.Key)
	}
	if len(fresh.Result) == 0 {
		t.Fatal("initial fetch had no result body")
	}

	// Repeat with the validator: 304, no body.
	_, _, notMod, err = c.GetConditional(ctx, v.ID, etag)
	if err != nil {
		t.Fatal(err)
	}
	if !notMod {
		t.Fatal("repeat fetch with matching ETag not answered 304")
	}

	// Raw HTTP double-check: 304 and empty body, wildcard also matches,
	// and a stale validator still gets the full document.
	for _, tc := range []struct {
		inm  string
		want int
	}{
		{etag, http.StatusNotModified},
		{"*", http.StatusNotModified},
		{`W/` + etag, http.StatusNotModified},
		{`"deadbeef"`, http.StatusOK},
	} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+v.ID, nil)
		req.Header.Set("If-None-Match", tc.inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("If-None-Match %q: status %d, want %d", tc.inm, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusNotModified && n != 0 {
			t.Errorf("If-None-Match %q: 304 carried a body", tc.inm)
		}
	}

	// A resubmission of the identical spec is a cache hit.
	v2, err := c.Submit(ctx, comparisonSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatal("resubmission was not a cache hit")
	}

	// A POST carrying a matching validator must still get its full job
	// view — preconditions apply to GET/HEAD only (RFC 9110 §13.1.2); a
	// 304 on submit would lose the job ID.
	spec, _ := json.Marshal(comparisonSpec())
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(spec))
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conditional POST: status %d, want 200", resp.StatusCode)
	}
	var pv JobView
	if err := json.NewDecoder(resp.Body).Decode(&pv); err != nil || pv.ID == "" {
		t.Fatalf("conditional POST lost the job view: err=%v view=%+v", err, pv)
	}
}

// TestLegacyKindKeysUnchanged pins the PR 4 cache-key bytes of the
// original kinds: the keySpec extension must not shift them, or every
// spilled cache entry from an older daemon goes stale.
func TestLegacyKindKeysUnchanged(t *testing.T) {
	spec := JobSpec{
		Kind:  KindSweep,
		Seed:  5,
		Sweep: &SweepSpec{BERs: []float64{1e-6}, FlitsPerPoint: 1000},
	}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Reproduce the PR 4 projection literally: the same struct without
	// the new fields.
	legacy := struct {
		Kind  string
		Seed  uint64
		Grid  *core.Grid
		Sweep *SweepSpec
		Rare  *RareSpec
	}{Kind: norm.Kind, Seed: norm.Seed, Sweep: norm.Sweep}
	b, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := norm.Key(), keyOfBytes(b); got != want {
		t.Fatalf("legacy sweep key changed: %s != %s", got, want)
	}
}
