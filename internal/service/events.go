package service

import (
	"encoding/json"
	"sync"
)

// Event is one entry of a job's progress stream, bridged to SSE.
type Event struct {
	// Type is "status", "progress", "result", or "error".
	Type string `json:"type"`
	// Status accompanies "status" events (and the terminal event).
	Status Status `json:"status,omitempty"`
	// Done/Total mirror the runner's progress callback for the current
	// sharded stage; multi-stage jobs (rare sweeps, adaptive rounds)
	// restart Done per stage while ShardsDone keeps counting.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// ShardsDone is the cumulative completed-shard count across stages.
	ShardsDone int64 `json:"shards_done,omitempty"`
	// Error carries the failure message on "error" events.
	Error string `json:"error,omitempty"`
	// Result carries the job's result document on "result" events.
	Result json.RawMessage `json:"result,omitempty"`
}

// broker is a per-job append-only event log with replay: subscribers read
// the log by index and park on a wake channel that each publish closes.
// There are no per-subscriber buffers, so no subscriber can fall behind
// or force a drop — a late attacher replays the full history and then
// follows live, which is exactly the SSE contract the server exposes.
type broker struct {
	mu   sync.Mutex
	log  []Event
	wake chan struct{}
	done bool
}

func newBroker() *broker {
	return &broker{wake: make(chan struct{})}
}

// publish appends an event and wakes every parked subscriber. terminal
// marks the log complete; further publishes are dropped (a cancelled
// job's late progress must not reopen a closed stream).
func (b *broker) publish(e Event, terminal bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.log = append(b.log, e)
	b.done = terminal
	close(b.wake)
	b.wake = make(chan struct{})
}

// snapshot returns the events at and past `from`, a channel that closes
// on the next publish, and whether the log is terminal. Callers loop:
// consume the slice, then wait on the channel unless done.
func (b *broker) snapshot(from int) ([]Event, <-chan struct{}, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var tail []Event
	if from < len(b.log) {
		tail = b.log[from:]
	}
	return tail, b.wake, b.done
}
