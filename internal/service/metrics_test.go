package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// jsonDecode decodes a response body, closing it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// scrapeMetrics fetches and parses a server's /metrics, failing the test
// on transport, status, content-type, or parse problems — a scrape that
// doesn't round-trip through the real exposition format proves nothing.
func scrapeMetrics(t *testing.T, baseURL string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content-type %q, want text/plain", ct)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return samples
}

func hasFamily(samples []obs.Sample, name string) bool {
	for _, s := range samples {
		if s.Name == name || strings.HasPrefix(s.Name, name+"_") {
			return true
		}
	}
	return false
}

// TestMetricsEndpoint is the daemon metrics e2e: a fresh server exposes
// every documented family as valid exposition text; a submit advances
// the miss histogram and job counters; a cache-hit repeat advances the
// hit histogram — the outcome split operators alert on.
func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL)

	s0 := scrapeMetrics(t, ts.URL)
	for _, fam := range []string{
		"rxld_uptime_seconds",
		"rxld_queue_depth", "rxld_queue_capacity", "rxld_running_jobs",
		"rxld_shards_in_use", "rxld_shard_budget", "rxld_shard_utilization",
		"rxld_jobs_submitted_total", "rxld_jobs_completed_total", "rxld_dedup_hits_total",
		"rxld_cache_entries", "rxld_cache_capacity", "rxld_cache_bytes",
		"rxld_cache_hits_total", "rxld_cache_misses_total",
		"rxld_cache_disk_hits_total", "rxld_cache_spills_total",
		"rxld_request_seconds", "rxld_traces_live",
	} {
		if !hasFamily(s0, fam) {
			t.Errorf("fresh daemon /metrics missing family %s", fam)
		}
	}
	// A standalone daemon exposes no fleet families — dead series would
	// read as a misconfigured fleet on every dashboard.
	for _, fam := range []string{"rxld_peer_fetch_hits_total", "rxld_peer_served_total", "rxld_cache_probes_total"} {
		if hasFamily(s0, fam) {
			t.Errorf("standalone daemon exposes fleet family %s", fam)
		}
	}
	if obs.SumSamples(s0, "rxld_shard_budget") != 2 {
		t.Error("shard budget gauge does not reflect config")
	}

	// Miss, then hit.
	spec := smallGridSpec(77)
	if _, err := c.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached {
		t.Fatal("repeat submit was not a cache hit")
	}

	s1 := scrapeMetrics(t, ts.URL)
	if got := obs.SumSamples(s1, "rxld_request_seconds_count", "outcome", "miss"); got != 1 {
		t.Errorf("miss histogram count = %g, want 1", got)
	}
	if got := obs.SumSamples(s1, "rxld_request_seconds_count", "outcome", "hit"); got != 1 {
		t.Errorf("hit histogram count = %g, want 1", got)
	}
	if got := obs.SumSamples(s1, "rxld_jobs_completed_total"); got != 2 {
		t.Errorf("jobs_completed_total = %g, want 2", got)
	}
	if got := obs.SumSamples(s1, "rxld_cache_entries"); got != 1 {
		t.Errorf("cache_entries = %g, want 1", got)
	}
	if got := obs.SumSamples(s1, "rxld_cache_bytes"); got <= 0 {
		t.Errorf("cache_bytes = %g, want > 0 after a cached result", got)
	}
	// The latency quantile machinery works end to end on the scraped
	// buckets (values are timing-dependent; only the shape is pinned).
	bounds, cum := obs.RebuildHistogram(s1, "rxld_request_seconds")
	if cum == nil || cum[len(cum)-1] != 2 {
		t.Fatalf("rebuilt request histogram cum = %v, want total 2", cum)
	}
	_ = bounds
}

// TestRequestIDAndJobTrace pins the tracing surface on one daemon: a
// client-sent X-Rxl-Request-Id is echoed and adopted, the job view
// carries it, and /v1/jobs/{id}/trace returns the lifecycle spans
// (submit → queue_wait → run → cache_write → finish) under that ID. A
// cache-hit repeat under a second ID gets its own trace.
func TestRequestIDAndJobTrace(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL)

	const rid = "cafe0123beef4567"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"kind":"grid","seed":9,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-5,"BurstProb":0.4,"Seed":7},"N":500}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.HeaderRequestID, rid)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(obs.HeaderRequestID); got != rid {
		t.Fatalf("response request id %q, want echo of %q", got, rid)
	}
	var v JobView
	if err := jsonDecode(resp, &v); err != nil {
		t.Fatal(err)
	}
	if v.RequestID != rid {
		t.Fatalf("job view request_id %q, want %q", v.RequestID, rid)
	}
	if _, err := c.Wait(ctx, v.ID); err != nil {
		t.Fatal(err)
	}

	tv, err := c.JobTrace(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tv.RequestID != rid || tv.JobID != v.ID {
		t.Fatalf("trace view ids = (%q, %q), want (%q, %q)", tv.RequestID, tv.JobID, rid, v.ID)
	}
	names := map[string]bool{}
	for _, sp := range tv.Spans {
		if sp.Service != "daemon" {
			t.Errorf("span %s from service %q, want daemon", sp.Name, sp.Service)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"submit", "queue_wait", "run", "cache_write", "finish"} {
		if !names[want] {
			t.Errorf("trace missing %s span (got %v)", want, names)
		}
	}
	// Spans arrive sorted by start.
	for i := 1; i < len(tv.Spans); i++ {
		if tv.Spans[i].StartUS < tv.Spans[i-1].StartUS {
			t.Fatal("trace spans not sorted by start time")
		}
	}

	// The same spans are addressable by request ID directly.
	byRID, err := c.TraceByRequestID(ctx, rid)
	if err != nil {
		t.Fatal(err)
	}
	if len(byRID.Spans) != len(tv.Spans) {
		t.Fatalf("trace by rid has %d spans, job trace has %d", len(byRID.Spans), len(tv.Spans))
	}
	if _, err := c.TraceByRequestID(ctx, "0000000000000000"); err == nil {
		t.Fatal("unknown request id did not 404")
	}

	// A cache-hit repeat under its own ID traces as a hit: no run span.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"kind":"grid","seed":9,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-5,"BurstProb":0.4,"Seed":7},"N":500}}`))
	req2.Header.Set(obs.HeaderRequestID, "feed0123dead4567")
	req2.Header.Set("Content-Type", "application/json")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var v2 JobView
	if err := jsonDecode(resp2, &v2); err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatal("repeat was not a hit")
	}
	hitTrace, err := c.JobTrace(ctx, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	hitNames := map[string]bool{}
	for _, sp := range hitTrace.Spans {
		hitNames[sp.Name] = true
	}
	if !hitNames["submit"] || !hitNames["finish"] || hitNames["run"] {
		t.Fatalf("hit trace spans = %v, want submit+finish without run", hitNames)
	}
}
