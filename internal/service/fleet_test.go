package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPeerFetchServesMiss pins the daemon side of the fleet protocol: a
// miss whose PeerFetch hook returns bytes is finished with those exact
// bytes, marked peer_fetched, cached locally (the repeat is a plain
// cache hit with no second fetch), and counted in the fleet stats.
func TestPeerFetchServesMiss(t *testing.T) {
	spec := smallGridSpec(77)
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"from":"peer"}`)
	var calls atomic.Int64
	srv := newTestServer(t, Config{
		PeerFetch: func(ctx context.Context, key string) ([]byte, bool) {
			calls.Add(1)
			if key != norm.Key() {
				t.Errorf("fetch asked for key %q, want %q", key, norm.Key())
			}
			return want, true
		},
		FleetInfo: &FleetInfo{Self: "http://self:1", Peers: 3},
	})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Status.Terminal() {
		if v, err = c.Wait(ctx, v.ID); err != nil {
			t.Fatal(err)
		}
	}
	if v.Status != StatusDone || !v.PeerFetched || string(v.Result) != string(want) {
		t.Fatalf("peer-fetched job: status=%s peer_fetched=%v result=%s", v.Status, v.PeerFetched, v.Result)
	}

	// Repeat: local cache hit, no second fetch.
	v2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || v2.PeerFetched || string(v2.Result) != string(want) {
		t.Fatalf("repeat: cached=%v peer_fetched=%v", v2.Cached, v2.PeerFetched)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("PeerFetch called %d times, want 1", n)
	}
	st := srv.Stats()
	if st.Fleet == nil || st.Fleet.PeerHits != 1 || st.Fleet.Self != "http://self:1" {
		t.Fatalf("fleet stats: %+v", st.Fleet)
	}
}

// TestPeerFetchMissFallsThrough pins the fallback: a fetch that finds
// nothing falls through to a local engine run whose bytes match the
// non-fleet daemon's, and is counted as a peer miss.
func TestPeerFetchMissFallsThrough(t *testing.T) {
	spec := smallGridSpec(78)
	srv := newTestServer(t, Config{
		PeerFetch: func(ctx context.Context, key string) ([]byte, bool) { return nil, false },
		FleetInfo: &FleetInfo{},
	})
	plain := newTestServer(t, Config{})
	ctx := context.Background()

	got, err := NewInProcessClient(srv).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewInProcessClient(plain).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("fleet-member compute bytes differ from plain daemon bytes")
	}
	if st := srv.Stats(); st.Fleet.PeerMisses != 1 || st.Fleet.PeerHits != 0 {
		t.Fatalf("fleet stats after fallback: %+v", st.Fleet)
	}
}

// TestPeerFetchSingleFlight pins single-flight across the fetch window:
// identical submissions racing a slow peer fetch coalesce onto the one
// fetching job — the fetcher runs once, every caller gets its bytes.
func TestPeerFetchSingleFlight(t *testing.T) {
	spec := smallGridSpec(79)
	release := make(chan struct{})
	var calls atomic.Int64
	srv := newTestServer(t, Config{
		PeerFetch: func(ctx context.Context, key string) ([]byte, bool) {
			calls.Add(1)
			<-release
			return []byte(`{"slow":"peer"}`), true
		},
		FleetInfo: &FleetInfo{},
	})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	first, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the fetch is actually in progress, then race twins in.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	const twins = 8
	var wg sync.WaitGroup
	results := make([]JobView, twins)
	for i := 0; i < twins; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Submit(ctx, spec)
			if err != nil {
				t.Errorf("twin %d: %v", i, err)
				return
			}
			if !v.Status.Terminal() {
				if v, err = c.Wait(ctx, v.ID); err != nil {
					t.Errorf("twin %d wait: %v", i, err)
					return
				}
			}
			results[i] = v
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, v := range results {
		if v.Status != StatusDone || string(v.Result) != `{"slow":"peer"}` {
			t.Fatalf("twin %d: status=%s result=%s", i, v.Status, v.Result)
		}
		if v.ID != first.ID && !v.Cached {
			t.Fatalf("twin %d ran as its own uncached job %s (first %s) — single-flight broken", i, v.ID, first.ID)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("PeerFetch ran %d times for one key, want 1", n)
	}
}

// TestCacheEndpoint pins GET /v1/cache/{key}: raw byte serving with an
// ETag, 404 for unknown keys, 400 for malformed ones — and that probes
// never trigger computation or skew the client hit/miss counters.
func TestCacheEndpoint(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL)

	spec := smallGridSpec(80)
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key := norm.Key()

	// Unknown key: clean 404 via the typed client.
	if _, ok, err := c.FetchCached(ctx, key, 0); ok || err != nil {
		t.Fatalf("fetch of uncomputed key: ok=%v err=%v", ok, err)
	}

	want, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != string(want) {
		t.Fatalf("cache GET: status=%d bytes-match=%v", resp.StatusCode, string(body) == string(want))
	}
	if et := resp.Header.Get("ETag"); et != `"`+key+`"` {
		t.Fatalf("cache GET ETag %q, want the content address", et)
	}

	resp, err = http.Get(ts.URL + "/v1/cache/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: status %d, want 400", resp.StatusCode)
	}

	// Probes must be counted on their own and never charged to the
	// client miss counter (the misses on record all came from Submit).
	before := srv.Stats().Cache
	if _, ok, err := c.FetchCached(ctx, norm.Key(), 0); !ok || err != nil {
		t.Fatalf("repeat probe: ok=%v err=%v", ok, err)
	}
	unknown := "00000000000000000000000000000000000000000000000000000000deadbeef"
	if _, ok, _ := c.FetchCached(ctx, unknown, 0); ok {
		t.Fatal("unknown key probe returned bytes")
	}
	after := srv.Stats().Cache
	if after.Probes != before.Probes+2 {
		t.Fatalf("probe counter went %d -> %d, want +2", before.Probes, after.Probes)
	}
	if after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("probes moved client counters: misses %d->%d hits %d->%d",
			before.Misses, after.Misses, before.Hits, after.Hits)
	}
}

// TestCacheEndpointJoinsInFlight pins the fleet single-flight join: a
// probe with ?wait= for a key that is mid-computation blocks until the
// job finishes and returns its bytes, rather than 404ing and pushing
// the peer into a redundant compute.
func TestCacheEndpointJoinsInFlight(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL)

	spec := smallGridSpec(81)
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Join immediately — the job may be queued, running, or already done;
	// in every case the waiting probe must come back with the bytes.
	b, ok, err := c.FetchCached(ctx, norm.Key(), 30*time.Second)
	if err != nil || !ok {
		t.Fatalf("in-flight join: ok=%v err=%v", ok, err)
	}
	done, err := c.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(done.Result) {
		t.Fatal("joined probe bytes differ from the job's result")
	}
	var decoded any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("joined probe returned non-JSON: %v", err)
	}
}
