package service

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// inProcessTransport is an http.RoundTripper that dispatches requests
// straight into an http.Handler on a goroutine, streaming the response
// body through a pipe. Unlike httptest.ResponseRecorder it does not
// buffer the handler to completion, so SSE streams work: each Flush-ed
// event is readable while the handler is still running. This is what
// makes the in-process client byte-equivalent to a TCP client without
// ever opening a socket.
type inProcessTransport struct {
	h http.Handler
}

// RoundTrip implements http.RoundTripper.
func (t inProcessTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	pr, pw := io.Pipe()
	rw := &pipeResponseWriter{
		header: make(http.Header),
		pw:     pw,
		ready:  make(chan struct{}),
	}
	go func() {
		defer func() {
			// A handler panic must not deadlock the client.
			if p := recover(); p != nil {
				rw.start() // unblock the waiter if headers never went out
				pw.CloseWithError(fmt.Errorf("service: in-process handler panic: %v", p))
				return
			}
			rw.start()
			pw.Close()
		}()
		t.h.ServeHTTP(rw, req)
	}()

	<-rw.ready
	return &http.Response{
		StatusCode:    rw.status,
		Status:        http.StatusText(rw.status),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rw.snapshot,
		Body:          pr,
		ContentLength: -1,
		Request:       req,
	}, nil
}

// pipeResponseWriter adapts a pipe into an http.ResponseWriter with
// Flush support (flushing is inherent: pipe writes rendezvous with the
// reader).
type pipeResponseWriter struct {
	header   http.Header
	snapshot http.Header // cloned at WriteHeader time
	pw       *io.PipeWriter
	status   int

	once  sync.Once
	ready chan struct{}
}

// Header implements http.ResponseWriter.
func (w *pipeResponseWriter) Header() http.Header { return w.header }

// WriteHeader freezes the headers and releases the RoundTrip waiter.
func (w *pipeResponseWriter) WriteHeader(status int) {
	w.once.Do(func() {
		w.status = status
		w.snapshot = w.header.Clone()
		close(w.ready)
	})
}

// start ensures the response is released even if the handler wrote
// nothing.
func (w *pipeResponseWriter) start() { w.WriteHeader(http.StatusOK) }

// Write implements io.Writer, defaulting the status like net/http does.
func (w *pipeResponseWriter) Write(p []byte) (int, error) {
	w.start()
	return w.pw.Write(p)
}

// Flush implements http.Flusher. Nothing is buffered, so it is a no-op —
// its presence is what lets SSE handlers stream.
func (w *pipeResponseWriter) Flush() {}
