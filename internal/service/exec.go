package service

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/reliability"
	"repro/internal/runner"
)

// ProtocolResult is one variant of a comparison job's result document,
// in the fixed core.Protocols presentation order — a slice, not the
// library's map, so the marshalled bytes are canonical.
type ProtocolResult struct {
	Protocol string      `json:"protocol"`
	Result   core.Result `json:"result"`
}

// execute runs a normalized spec on a runner pool sized to the
// scheduler's grant and returns the result document. The bytes are what
// the cache stores and what every identical future submission is served:
// compact JSON from a deterministic engine, so cached, uncached, and
// direct library runs of the same spec are byte-identical.
func execute(ctx context.Context, spec JobSpec, pool runner.Pool) (json.RawMessage, error) {
	var (
		v   any
		err error
	)
	switch spec.Kind {
	case KindGrid:
		v, err = core.RunGrid(ctx, pool, *spec.Grid)
	case KindSweep:
		sw := spec.Sweep
		v, err = reliability.MCBERSweep(ctx, pool, sw.BERs, sw.FlitsPerPoint, sw.Shards)
	case KindRare:
		r := spec.Rare
		v, err = reliability.RareSweep(ctx, pool, r.BERs, r.Proposal, r.RelErr, r.MaxTrials, r.Shards)
	case KindComparison:
		c := spec.Comparison
		var byProto map[link.Protocol]core.Result
		byProto, err = core.RunComparisonPool(ctx, pool, c.Base, c.N)
		if err == nil {
			ordered := make([]ProtocolResult, 0, len(core.Protocols))
			for _, p := range core.Protocols {
				ordered = append(ordered, ProtocolResult{Protocol: p.String(), Result: byProto[p]})
			}
			v = ordered
		}
	case KindRareSelfCheck:
		r := spec.RareSelfCheck
		v, err = reliability.RareSelfCheck(ctx, pool, r.BERs, r.Flits, r.Shards)
	case KindScenario:
		v, err = core.RunScenarioGrid(ctx, pool, *spec.Scenario)
	default:
		// Normalize rejects unknown kinds before jobs reach the queue.
		err = fmt.Errorf("service: unknown job kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}
