package service

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/reliability"
	"repro/internal/runner"
)

// execute runs a normalized spec on a runner pool sized to the
// scheduler's grant and returns the result document. The bytes are what
// the cache stores and what every identical future submission is served:
// compact JSON from a deterministic engine, so cached, uncached, and
// direct library runs of the same spec are byte-identical.
func execute(ctx context.Context, spec JobSpec, pool runner.Pool) (json.RawMessage, error) {
	var (
		v   any
		err error
	)
	switch spec.Kind {
	case KindGrid:
		v, err = core.RunGrid(ctx, pool, *spec.Grid)
	case KindSweep:
		sw := spec.Sweep
		v, err = reliability.MCBERSweep(ctx, pool, sw.BERs, sw.FlitsPerPoint, sw.Shards)
	case KindRare:
		r := spec.Rare
		v, err = reliability.RareSweep(ctx, pool, r.BERs, r.Proposal, r.RelErr, r.MaxTrials, r.Shards)
	default:
		// Normalize rejects unknown kinds before jobs reach the queue.
		err = fmt.Errorf("service: unknown job kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}
