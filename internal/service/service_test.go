package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/runner"
)

// smallGridSpec is the canonical tiny grid job the end-to-end tests use:
// one RXL cell at an accelerated BER, small enough to run in tens of
// milliseconds.
func smallGridSpec(seed uint64) JobSpec {
	return JobSpec{
		Kind: KindGrid,
		Seed: seed,
		Grid: &core.Grid{
			Base: core.Config{Protocol: link.ProtocolRXL, Levels: 1, BER: 1e-5, BurstProb: 0.4, Seed: 7},
			N:    500,
		},
	}
}

// sweepSpec is a small Monte-Carlo sweep job.
func sweepSpec(seed uint64) JobSpec {
	return JobSpec{
		Kind:  KindSweep,
		Seed:  seed,
		Sweep: &SweepSpec{BERs: []float64{1e-5}, FlitsPerPoint: 200000, Shards: 8},
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestEndToEndHTTP drives the full path over a real TCP socket: submit a
// grid job, follow its SSE stream to completion, fetch the result, and
// require it byte-identical to a direct library run of the same config —
// then resubmit and require a cache hit with the same bytes.
func TestEndToEndHTTP(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	spec := smallGridSpec(42)
	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cached {
		t.Fatal("first submission reported cached")
	}

	// Follow the SSE stream: it must replay from "queued" and end with
	// the result event.
	var types []string
	var streamed json.RawMessage
	err = c.Stream(ctx, v.ID, func(e Event) error {
		types = append(types, e.Type)
		if e.Type == "result" {
			streamed = e.Result
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[0] != "status" {
		t.Fatalf("stream did not replay from the queued status: %v", types)
	}
	if streamed == nil {
		t.Fatalf("stream ended without a result event: %v", types)
	}
	hasProgress := false
	for _, ty := range types {
		if ty == "progress" {
			hasProgress = true
		}
	}
	if !hasProgress {
		t.Errorf("no progress events bridged from the runner: %v", types)
	}

	got, err := c.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone {
		t.Fatalf("job ended %s: %s", got.Status, got.Error)
	}

	// Direct library run of the same spec — different worker count on
	// purpose; results must be byte-identical anyway.
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.RunGrid(ctx, runner.Pool{Workers: 1, BaseSeed: spec.Seed}, *norm.Grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Result, want) {
		t.Fatalf("daemon result differs from direct rxl.Sweep run:\n got %s\nwant %s", got.Result, want)
	}
	if !bytes.Equal(streamed, want) {
		t.Fatal("SSE result event differs from GET result")
	}

	// Repeat submission: a cache hit, answered terminally at submit time
	// with the same bytes.
	v2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || v2.Status != StatusDone {
		t.Fatalf("repeat submission not served from cache: cached=%v status=%s", v2.Cached, v2.Status)
	}
	if !bytes.Equal(v2.Result, want) {
		t.Fatal("cached result differs from uncached result")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 {
		t.Error("statsz reports zero cache hits after a hit")
	}
	if st.PeakShardsInUse > st.ShardBudget {
		t.Errorf("peak shard use %d exceeded budget %d", st.PeakShardsInUse, st.ShardBudget)
	}
}

// TestCacheKeyCanonicalization: the key must be invariant under JSON
// field order, default-valued fields left out, axes left to default
// expansion, and scheduling-only fields — and must differ when any
// result-determining field differs.
func TestCacheKeyCanonicalization(t *testing.T) {
	key := func(t *testing.T, raw string) string {
		t.Helper()
		var spec JobSpec
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			t.Fatal(err)
		}
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		return norm.Key()
	}

	base := key(t, `{"kind":"grid","seed":1,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":100}}`)

	for name, raw := range map[string]string{
		"field order":       `{"grid":{"N":100,"Base":{"BER":1e-6,"Levels":1,"Protocol":2}},"seed":1,"kind":"grid"}`,
		"explicit defaults": `{"kind":"grid","seed":1,"priority":0,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6,"BurstProb":0,"Seed":0},"N":100}}`,
		"axes spelled out":  `{"kind":"grid","seed":1,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"Protocols":[2],"Levels":[1],"BERs":[1e-6],"Seeds":[0],"N":100}}`,
		"scheduling fields": `{"kind":"grid","seed":1,"priority":9,"timeout_ms":5000,"workers":3,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":100}}`,
	} {
		if got := key(t, raw); got != base {
			t.Errorf("%s: key %s != base %s", name, got, base)
		}
	}

	for name, raw := range map[string]string{
		"different seed":  `{"kind":"grid","seed":2,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":100}}`,
		"different BER":   `{"kind":"grid","seed":1,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":2e-6},"N":100}}`,
		"different N":     `{"kind":"grid","seed":1,"grid":{"Base":{"Protocol":2,"Levels":1,"BER":1e-6},"N":101}}`,
		"different proto": `{"kind":"grid","seed":1,"grid":{"Base":{"Protocol":0,"Levels":1,"BER":1e-6},"N":100}}`,
	} {
		if got := key(t, raw); got == base {
			t.Errorf("%s: key did not change", name)
		}
	}

	// Kinds never collide even over similar payload shapes.
	a := JobSpec{Kind: KindSweep, Sweep: &SweepSpec{BERs: []float64{1e-6}, FlitsPerPoint: 1000}}
	b := JobSpec{Kind: KindRare, Rare: &RareSpec{BERs: []float64{1e-6}}}
	na, err := a.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if na.Key() == nb.Key() {
		t.Error("sweep and rare specs share a key")
	}
}

// TestAdmissionControlUnderConcurrentLoad: 100 goroutines submit unique
// jobs against a 4-worker budget; the scheduler's peak concurrent shard
// allocation must never exceed the budget, every admitted job must
// finish, and the queue bound must be respected (rejections are 429s the
// submitters retry).
func TestAdmissionControlUnderConcurrentLoad(t *testing.T) {
	const budget = 4
	srv := newTestServer(t, Config{ShardBudget: budget, QueueDepth: 128, DefaultJobWorkers: 2})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	const n = 100
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Unique seeds make unique keys: no dedup, no cache hits.
			spec := sweepSpec(uint64(1000 + i))
			for {
				v, err := c.Submit(ctx, spec)
				if IsQueueFull(err) {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				got, err := c.Wait(ctx, v.ID)
				if err != nil {
					errs <- err
					return
				}
				if got.Status != StatusDone {
					errs <- fmt.Errorf("job %s ended %s: %s", v.ID, got.Status, got.Error)
				}
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.PeakShardsInUse > budget {
		t.Fatalf("peak shard allocation %d exceeded budget %d", st.PeakShardsInUse, budget)
	}
	if st.PeakShardsInUse == 0 {
		t.Fatal("scheduler never allocated a shard")
	}
	if st.JobsCompleted < n {
		t.Fatalf("completed %d of %d jobs", st.JobsCompleted, n)
	}
}

// TestQueueFullRejects: with a single-slot queue behind a busy budget,
// excess submissions are rejected with the queue-full admission error
// rather than absorbed.
func TestQueueFullRejects(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 1, QueueDepth: 1})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	// A rare job with a large fixed budget occupies the only worker.
	slow := JobSpec{
		Kind: KindRare,
		Seed: 1,
		Rare: &RareSpec{BERs: []float64{1e-9}, MaxTrials: 1 << 26, RelErr: 0, Shards: 64},
	}
	v1, err := c.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, srv, v1.ID, StatusRunning)

	// Fill the queue slot.
	v2, err := c.Submit(ctx, sweepSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	// Overflow must be rejected.
	_, err = c.Submit(ctx, sweepSpec(3))
	if !IsQueueFull(err) {
		t.Fatalf("want queue-full rejection, got %v", err)
	}

	// Cancel the hog; the queued job must then run to completion.
	if err := c.Cancel(ctx, v1.ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(ctx, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone {
		t.Fatalf("queued job ended %s: %s", got.Status, got.Error)
	}
}

// waitStatus polls until the job reaches status (or fails the test after
// a few seconds).
func waitStatus(t *testing.T, srv *Server, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.Status() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestCancelRunningRareJob: DELETE on a deep-tail rare job must stop it
// mid-round — the satellite contract that a cancelled daemon job stops
// burning shards.
func TestCancelRunningRareJob(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 2})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	spec := JobSpec{
		Kind: KindRare,
		Seed: 9,
		Rare: &RareSpec{BERs: []float64{1e-9}, MaxTrials: 1 << 30, RelErr: 1e-9, Shards: 16},
	}
	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, srv, v.ID, StatusRunning)
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	if err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusCanceled {
		t.Fatalf("cancelled job ended %s", got.Status)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("cancellation took %v — the job ran its shards to completion", e)
	}
	// A cancelled job must not poison the cache.
	if _, ok := srv.cache.Get(v.Key); ok {
		t.Fatal("cancelled job populated the cache")
	}
}

// TestJobDeadline: TimeoutMS bounds execution; overruns fail rather than
// run forever.
func TestJobDeadline(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 2})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	spec := JobSpec{
		Kind:      KindRare,
		Seed:      11,
		TimeoutMS: 80,
		Rare:      &RareSpec{BERs: []float64{1e-9}, MaxTrials: 1 << 30, RelErr: 1e-9, Shards: 16},
	}
	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusFailed || !strings.Contains(got.Error, "deadline") {
		t.Fatalf("want deadline failure, got %s: %s", got.Status, got.Error)
	}
}

// TestInflightDedup: an identical spec submitted while the first is still
// executing coalesces onto the same job instead of queueing a duplicate.
func TestInflightDedup(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 1})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	spec := JobSpec{
		Kind: KindRare,
		Seed: 5,
		Rare: &RareSpec{BERs: []float64{1e-9}, MaxTrials: 1 << 15, RelErr: 0, Shards: 32},
	}
	v1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Dedup || v2.ID != v1.ID {
		t.Fatalf("identical in-flight spec not coalesced: dedup=%v id=%s (first %s)", v2.Dedup, v2.ID, v1.ID)
	}
	got, err := c.Wait(ctx, v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone {
		t.Fatalf("job ended %s: %s", got.Status, got.Error)
	}
	if srv.Stats().DedupHits != 1 {
		t.Errorf("dedup hit not counted")
	}
}

// TestCacheSpillSurvivesRestart: with a spill directory, a fresh server
// answers a repeat from disk without running the job.
func TestCacheSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := sweepSpec(77)

	first := newTestServer(t, Config{SpillDir: dir})
	res1, err := NewInProcessClient(first).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	second := newTestServer(t, Config{SpillDir: dir})
	v, err := NewInProcessClient(second).Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached || v.Status != StatusDone {
		t.Fatalf("restarted server missed the spill: cached=%v status=%s", v.Cached, v.Status)
	}
	if !bytes.Equal(v.Result, res1) {
		t.Fatal("spilled result differs from the original")
	}
	if st := second.Cache().Stats(); st.DiskHits != 1 {
		t.Errorf("disk hit not counted: %+v", st)
	}
}

// TestPriorityOrdering: with a single worker slot, queued jobs run
// highest-priority first, FIFO within a class.
func TestPriorityOrdering(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 1, QueueDepth: 16})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	// Occupy the worker so subsequent submissions queue.
	hog, err := c.Submit(ctx, JobSpec{
		Kind: KindRare,
		Seed: 1,
		Rare: &RareSpec{BERs: []float64{1e-9}, MaxTrials: 1 << 25, RelErr: 0, Shards: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, srv, hog.ID, StatusRunning)

	low, err := c.Submit(ctx, func() JobSpec { s := sweepSpec(21); s.Priority = 0; return s }())
	if err != nil {
		t.Fatal(err)
	}
	high, err := c.Submit(ctx, func() JobSpec { s := sweepSpec(22); s.Priority = 5; return s }())
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Cancel(ctx, hog.ID); err != nil {
		t.Fatal(err)
	}
	vh, err := c.Wait(ctx, high.ID)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := c.Wait(ctx, low.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vh.Status != StatusDone || vl.Status != StatusDone {
		t.Fatalf("jobs ended %s/%s", vh.Status, vl.Status)
	}
	if !vh.StartedAt.Before(vl.StartedAt) {
		t.Errorf("high-priority job started %v, after low-priority %v", vh.StartedAt, vl.StartedAt)
	}
}

// TestSSEReplayAfterCompletion: a subscriber attaching after the job
// finished still receives the full event history ending in the result.
func TestSSEReplayAfterCompletion(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	v, err := c.Submit(ctx, smallGridSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID); err != nil {
		t.Fatal(err)
	}

	var types []string
	gotResult := false
	err = c.Stream(ctx, v.ID, func(e Event) error {
		types = append(types, e.Type)
		gotResult = gotResult || e.Type == "result"
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gotResult {
		t.Fatalf("late subscriber got no result event: %v", types)
	}
	if types[0] != "status" {
		t.Fatalf("replay did not start from the beginning: %v", types)
	}
}

// TestBadSpecsRejected: malformed submissions are 400s, unknown jobs 404.
func TestBadSpecsRejected(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	for name, spec := range map[string]JobSpec{
		"no payload":    {Kind: KindGrid, Seed: 1},
		"two payloads":  {Kind: KindGrid, Grid: &core.Grid{N: 1}, Sweep: &SweepSpec{BERs: []float64{1e-6}, FlitsPerPoint: 1}},
		"unknown kind":  {Kind: "mystery", Grid: &core.Grid{N: 1}},
		"zero N":        {Kind: KindGrid, Grid: &core.Grid{}},
		"bad sweep BER": {Kind: KindSweep, Sweep: &SweepSpec{BERs: []float64{2}, FlitsPerPoint: 10}},
		"kind mismatch": {Kind: KindRare, Sweep: &SweepSpec{BERs: []float64{1e-6}, FlitsPerPoint: 10}},
	} {
		if _, err := c.Submit(ctx, spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	if _, err := c.Get(ctx, "j999999-deadbeef"); err == nil {
		t.Error("unknown job id returned a view")
	}
}

// TestCancelQueuedJobReleasesSlotAndKey pins the two admission-control
// regressions around cancelling a *queued* (never-run) job: its queue
// slot must free immediately — not only when budget frees and the
// dispatcher pops it — and its in-flight key claim must clear, so an
// identical future submission is admitted as a fresh job instead of
// coalescing onto the dead canceled one forever.
func TestCancelQueuedJobReleasesSlotAndKey(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 1, QueueDepth: 1})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	hog, err := c.Submit(ctx, JobSpec{
		Kind: KindRare,
		Seed: 1,
		Rare: &RareSpec{BERs: []float64{1e-9}, MaxTrials: 1 << 26, RelErr: 0, Shards: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, srv, hog.ID, StatusRunning)

	queued, err := c.Submit(ctx, sweepSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusCanceled {
		t.Fatalf("queued job not canceled: %s", got.Status)
	}

	// The queue slot must be free *now*, while the hog still runs.
	resub, err := c.Submit(ctx, sweepSpec(31))
	if err != nil {
		t.Fatalf("resubmission after queued-cancel rejected: %v", err)
	}
	// And it must be a fresh admission, not a dedup onto the dead job.
	if resub.Dedup || resub.ID == queued.ID {
		t.Fatalf("resubmission coalesced onto the canceled job %s", queued.ID)
	}

	if err := c.Cancel(ctx, hog.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, resub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("resubmitted job ended %s: %s", final.Status, final.Error)
	}
}

// TestConcurrentIdenticalSubmitsCoalesce: N simultaneous submissions of
// one uncached spec must produce exactly one executing job — the
// in-flight check and key reservation happen under one lock, so no two
// racers can both miss and both burn the engine.
func TestConcurrentIdenticalSubmitsCoalesce(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 2})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	spec := JobSpec{
		Kind: KindRare,
		Seed: 13,
		Rare: &RareSpec{BERs: []float64{1e-9}, MaxTrials: 1 << 14, RelErr: 0, Shards: 16},
	}
	const n = 20
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Submit(ctx, spec)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()

	distinct := make(map[string]bool)
	for _, id := range ids {
		if id != "" {
			distinct[id] = true
		}
	}
	if len(distinct) != 1 {
		t.Fatalf("concurrent identical submits produced %d jobs: %v", len(distinct), distinct)
	}
	for id := range distinct {
		if v, err := c.Wait(ctx, id); err != nil || v.Status != StatusDone {
			t.Fatalf("coalesced job ended %v %v", v.Status, err)
		}
	}
	if st := srv.Stats(); st.DedupHits != n-1 {
		t.Errorf("dedup hits %d, want %d", st.DedupHits, n-1)
	}
}

// TestDedupRequiresMatchingScheduling: coalescing shares one job's
// deadline and DELETE semantics, so a same-compute spec with different
// scheduling fields must run as its own job — one client's timeout_ms
// must never fail another client's request.
func TestDedupRequiresMatchingScheduling(t *testing.T) {
	srv := newTestServer(t, Config{ShardBudget: 2})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	base := JobSpec{
		Kind: KindRare,
		Seed: 17,
		Rare: &RareSpec{BERs: []float64{1e-9}, MaxTrials: 1 << 22, RelErr: 0, Shards: 16},
	}
	v1, err := c.Submit(ctx, base)
	if err != nil {
		t.Fatal(err)
	}

	timed := base
	timed.TimeoutMS = 60_000
	v2, err := c.Submit(ctx, timed)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Dedup || v2.ID == v1.ID {
		t.Fatalf("spec with different timeout coalesced onto %s", v1.ID)
	}
	// Both carry the same cache key — the scheduling fields are excluded
	// from the content address on purpose.
	if v2.Key != v1.Key {
		t.Fatalf("keys differ: %s vs %s", v1.Key, v2.Key)
	}

	// An exact resubmission still coalesces.
	v3, err := c.Submit(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Dedup || v3.ID != v1.ID {
		t.Fatalf("identical spec did not coalesce: dedup=%v id=%s", v3.Dedup, v3.ID)
	}

	c.Cancel(ctx, v1.ID)
	c.Cancel(ctx, v2.ID)
}

// TestClosedServerRejectsCacheHits: Close stops admission for hits and
// misses alike — a shut-down server must not keep serving and mutating
// its registry just because the answer is cached.
func TestClosedServerRejectsCacheHits(t *testing.T) {
	srv := newTestServer(t, Config{})
	c := NewInProcessClient(srv)
	ctx := context.Background()

	spec := sweepSpec(91)
	if _, err := c.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	if _, _, err := srv.Submit(spec); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed server accepted a cache-hit submission: %v", err)
	}
}
