package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// Config parameterizes a Server. The zero value is usable: GOMAXPROCS
// shard budget, a 64-deep queue, a 256-entry memory-only cache.
type Config struct {
	// ShardBudget is the total worker allocation shared by all running
	// jobs (0 = runtime.GOMAXPROCS). The scheduler guarantees the sum of
	// per-job runner workers never exceeds it.
	ShardBudget int
	// DefaultJobWorkers is the allocation requested for jobs that leave
	// Spec.Workers zero (0 = the full shard budget).
	DefaultJobWorkers int
	// QueueDepth bounds the pending-job queue; submissions past it are
	// rejected with ErrQueueFull / HTTP 429 (0 = 64).
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (0 = 256).
	CacheEntries int
	// SpillDir, when non-empty, persists cache entries to disk so
	// restarts and LRU evictions keep answering repeats.
	SpillDir string
	// JobHistory bounds retained terminal jobs; the oldest finished jobs
	// are forgotten past it (0 = 4096). Queued/running jobs are never
	// evicted.
	JobHistory int
	// PeerFetch, when non-nil, makes the daemon a fleet member: it is
	// consulted on every cache miss after the job is dispatched but
	// before any engine runs, and may return result bytes computed by
	// another daemon (internal/fleet wires it to the consistent-hash
	// owner's GET /v1/cache/{key}). A fetched result is cached and
	// served exactly as if computed locally — the bytes are identical by
	// the engines' determinism, so where they came from is unobservable
	// in the document. Because misses are registered in-flight before
	// the fetch, concurrent identical submissions coalesce onto the one
	// fetching job: single-flight holds across the fetch.
	PeerFetch func(ctx context.Context, key string) ([]byte, bool)
	// FleetInfo, when non-nil, describes this daemon's fleet membership
	// for /v1/statsz (ring size, peer count). Purely informational.
	FleetInfo *FleetInfo
}

// FleetInfo is the static fleet membership a daemon reports in its
// stats. The serving layer never interprets it — routing lives in
// internal/fleet — it only surfaces what the operator configured.
type FleetInfo struct {
	// Self is this daemon's advertised base URL.
	Self string `json:"self"`
	// Peers is the fleet size, self included.
	Peers int `json:"peers"`
	// RingSize is the virtual-node count on the consistent-hash ring.
	RingSize int `json:"ring_size"`
	// Replicas is how many distinct owners a fetch will try before
	// computing locally (the fetcher's candidate budget).
	Replicas int `json:"replicas"`
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.ShardBudget <= 0 {
		c.ShardBudget = runtime.GOMAXPROCS(0)
	}
	if c.DefaultJobWorkers <= 0 || c.DefaultJobWorkers > c.ShardBudget {
		c.DefaultJobWorkers = c.ShardBudget
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 4096
	}
	return c
}

// Server is the experiment-serving daemon: cache, scheduler, job
// registry, and the HTTP surface. It is an http.Handler; cmd/rxld mounts
// it on a listener, tests mount it on httptest, and the in-process client
// calls it directly.
type Server struct {
	cfg   Config
	cache *Cache
	sched *scheduler
	mux   *http.ServeMux
	start time.Time

	metrics    *obs.Registry
	reqSeconds map[string]*obs.Histogram // outcome label → latency histogram
	tracer     *obs.Tracer

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []*Job          // submission order, for history trimming
	inflight   map[string]*Job // cache key → live job (dedup coalescing)
	seq        uint64
	submitted  uint64
	completed  uint64
	dedups     uint64
	peerHits   uint64 // misses answered by PeerFetch
	peerMisses uint64 // PeerFetch attempts that fell through to compute
	peerServed uint64 // /v1/cache/{key} requests answered with bytes
	closed     bool
}

// New builds a Server from the configuration.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := NewCache(cfg.CacheEntries, cfg.SpillDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		start:    time.Now(),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	origin := "rxld"
	if cfg.FleetInfo != nil && cfg.FleetInfo.Self != "" {
		origin = cfg.FleetInfo.Self
	}
	s.tracer = obs.NewTracer("daemon", origin)
	s.wireMetrics()
	s.sched = newScheduler(cfg.ShardBudget, cfg.QueueDepth, cfg.DefaultJobWorkers, s.runJob)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/trace/{rid}", s.handleTrace)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheFetch)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	mux.Handle("GET /metrics", s.metrics.Handler())
	s.mux = mux
	return s, nil
}

// MustNew is New panicking on error, for examples and tests.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ServeHTTP implements http.Handler. Every request is stamped with a
// request ID — the caller's X-Rxl-Request-Id if it sent one (the fleet
// front and peer fetches do), a fresh one otherwise — echoed on the
// response and carried in the request context so handlers record trace
// spans under it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get(obs.HeaderRequestID)
	if rid == "" {
		rid = obs.NewRequestID()
	}
	w.Header().Set(obs.HeaderRequestID, rid)
	r = r.WithContext(obs.WithTrace(r.Context(), s.tracer, rid))
	s.mux.ServeHTTP(w, r)
}

// Close stops admission, cancels every live job, and waits for the
// scheduler to drain. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.mu.Unlock()

	s.sched.close()
	for _, j := range live {
		if !j.Status().Terminal() {
			j.Cancel()
		}
	}
	s.sched.wait()
}

// Cache exposes the result cache (cmd/rxld logs its stats on shutdown).
func (s *Server) Cache() *Cache { return s.cache }

// Submit is the in-process submission path: exactly what POST /v1/jobs
// does, minus HTTP. It returns the job — already done on a cache hit, or
// an existing in-flight job (dedup=true) when an identical spec is still
// executing.
func (s *Server) Submit(spec JobSpec) (j *Job, dedup bool, err error) {
	return s.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit carrying the caller's request context, which (when
// it came through ServeHTTP) holds the request ID the job's trace spans
// record under. The context traces the submission; it does not bound the
// job's lifetime — jobs outlive their submitting requests by design.
func (s *Server) SubmitCtx(ctx context.Context, spec JobSpec) (j *Job, dedup bool, err error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	key := norm.Key()
	rid := obs.RequestID(ctx)
	s.tracer.Record(rid, "submit", time.Now(), 0, map[string]string{
		"kind": norm.Kind, "key": key[:8],
	})

	if res, ok := s.cache.Get(key); ok {
		return s.serveHit(rid, norm, key, res)
	}

	// The in-flight lookup and the key reservation happen under one lock
	// acquisition: two concurrent identical submissions must coalesce,
	// never both slip past the check and run the engine twice.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if ex, ok := s.inflight[key]; ok && schedulingEqual(ex.Spec, norm) {
		// Coalescing shares one job — including its deadline and its
		// response to DELETE — so it only applies when the scheduling
		// fields match too; a same-key spec with a different timeout or
		// priority runs on its own rather than inheriting another
		// client's fate. (It cannot claim the in-flight key, so it
		// computes redundantly — the correct price for divergent
		// scheduling demands.)
		s.dedups++
		s.mu.Unlock()
		// The join is this request's outcome, observed now: it has no job
		// of its own to reach a terminal hook.
		s.reqSeconds[outcomeInflightJoin].Observe(0)
		s.tracer.Record(rid, "inflight_join", time.Now(), 0, map[string]string{
			"job": ex.ID, "key": key[:8],
		})
		return ex, true, nil
	}
	// Re-check the cache under the lock: an in-flight sibling that just
	// finished writes the cache *before* releasing its key claim
	// (runJob: cache.Put → finish → finalize), so a miss above plus no
	// in-flight entry here guarantees the result truly doesn't exist yet
	// — without this re-check, a submission racing the sibling's finish
	// would recompute bytes the cache already holds.
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		return s.serveHit(rid, norm, key, res)
	}
	inflight := true
	if ex, ok := s.inflight[key]; ok && ex != nil {
		inflight = false // key already claimed by a scheduling-divergent twin
	}
	j = s.registerLocked(rid, norm, key, inflight)
	s.mu.Unlock()

	if err := s.sched.submit(j); err != nil {
		s.unregister(j)
		return nil, false, err
	}
	return j, false, nil
}

// serveHit registers a terminal job view for a cache hit. Hits respect
// admission shutdown like misses do: a closed server serves nothing.
func (s *Server) serveHit(rid string, norm JobSpec, key string, res []byte) (*Job, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	j := s.registerLocked(rid, norm, key, false)
	j.cached = true
	s.mu.Unlock()
	j.finish(StatusDone, res, "")
	return j, false, nil
}

// schedulingEqual reports whether two normalized specs agree on the
// fields excluded from the cache key — the ones that decide when a job
// runs, how long it may take, and (by sharing a job ID) whose DELETE
// cancels it.
func schedulingEqual(a, b JobSpec) bool {
	return a.Priority == b.Priority && a.TimeoutMS == b.TimeoutMS && a.Workers == b.Workers
}

// CancelJob cancels a job and, when it was still queued, frees its
// admission slot immediately — a dead job must not hold QueueDepth
// against live submissions.
func (s *Server) CancelJob(j *Job) {
	j.Cancel()
	s.sched.remove(j)
}

// Job returns the job with the given ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// registerLocked allocates a job — cancellation context, queued event,
// terminal hook — and adds it to the registry (and the in-flight index
// when it will execute), trimming terminal history past the configured
// bound. The job's context carries the submitting request's trace, so
// spans recorded deep in execution (the peer fetcher's probes) land
// under the same request ID. Caller holds s.mu.
func (s *Server) registerLocked(rid string, spec JobSpec, key string, inflight bool) *Job {
	ctx, cancel := context.WithCancel(obs.WithTrace(context.Background(), s.tracer, rid))
	s.seq++
	seq := s.seq
	j := &Job{
		ID:         fmt.Sprintf("j%06d-%s", seq, key[:8]),
		Key:        key,
		Spec:       spec,
		rid:        rid,
		seq:        seq,
		ctx:        ctx,
		cancel:     cancel,
		events:     newBroker(),
		onTerminal: s.finalize,
	}
	j.status = StatusQueued
	j.submitted = time.Now()
	j.events.publish(Event{Type: "status", Status: StatusQueued}, false)

	s.submitted++
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	if inflight {
		s.inflight[key] = j
	}
	if len(s.order) > s.cfg.JobHistory {
		kept := s.order[:0]
		excess := len(s.order) - s.cfg.JobHistory
		for _, old := range s.order {
			if excess > 0 && old.Status().Terminal() {
				delete(s.jobs, old.ID)
				excess--
				continue
			}
			kept = append(kept, old)
		}
		s.order = kept
	}
	return j
}

// unregister removes a job whose admission failed.
func (s *Server) unregister(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.ID)
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// finalize clears a finished job's in-flight entry and counts it
// served. It is the job's onTerminal hook, so it runs exactly once on
// every path to a terminal state — engine completion, cancellation of a
// job still in the queue, shutdown drain — and an identical future
// submission can never coalesce onto a dead job.
func (s *Server) finalize(j *Job) {
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	s.completed++
	s.mu.Unlock()
	s.observeJob(j)
}

// runJob is the scheduler's execution callback: size a runner pool to the
// granted allocation, bridge its progress into the job's event stream,
// run the engine, populate the cache on success. Fleet members first ask
// the key's owner for the bytes (PeerFetch): a daemon that is not the
// owner of a key fills from the daemon that is — or joins its in-flight
// computation — instead of re-running engines. Either way the result
// bytes are the ones the spec determines; only the source differs.
func (s *Server) runJob(j *Job, workers int) {
	if !j.setRunning(workers) {
		// Cancelled while queued; finish already ran the terminal hook.
		return
	}
	j.mu.Lock()
	submitted, started := j.submitted, j.started
	j.mu.Unlock()
	s.tracer.Record(j.rid, "queue_wait", submitted, started.Sub(submitted), nil)
	s.tracer.Record(j.rid, "admission_grant", started, 0, map[string]string{
		"workers": strconv.Itoa(workers), "job": j.ID,
	})
	ctx := j.ctx
	if j.Spec.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if s.cfg.PeerFetch != nil {
		fetchStart := time.Now()
		if res, ok := s.cfg.PeerFetch(ctx, j.Key); ok {
			s.mu.Lock()
			s.peerHits++
			s.mu.Unlock()
			s.tracer.Record(j.rid, "peer_fetch", fetchStart, time.Since(fetchStart),
				map[string]string{"hit": "true"})
			cw := time.Now()
			s.cache.Put(j.Key, res)
			s.tracer.Record(j.rid, "cache_write", cw, time.Since(cw), nil)
			j.setPeerFetched()
			j.finish(StatusDone, res, "")
			return
		}
		s.mu.Lock()
		s.peerMisses++
		s.mu.Unlock()
		s.tracer.Record(j.rid, "peer_fetch", fetchStart, time.Since(fetchStart),
			map[string]string{"hit": "false"})
		if ctx.Err() != nil {
			// The fetch consumed the job's deadline or the client
			// cancelled mid-fetch; don't start an engine run that would
			// only be torn down.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				j.finish(StatusFailed, nil, "deadline exceeded")
			} else {
				j.finish(StatusCanceled, nil, ctx.Err().Error())
			}
			return
		}
	}
	pool := runner.Pool{Workers: workers, BaseSeed: j.Spec.Seed, Progress: j.progress}
	runStart := time.Now()
	res, err := execute(ctx, j.Spec, pool)
	s.tracer.Record(j.rid, "run", runStart, time.Since(runStart), map[string]string{
		"kind": j.Spec.Kind, "shards": strconv.FormatInt(j.shardsDone.Load(), 10),
	})
	switch {
	case err == nil:
		cw := time.Now()
		s.cache.Put(j.Key, res)
		s.tracer.Record(j.rid, "cache_write", cw, time.Since(cw), nil)
		j.finish(StatusDone, res, "")
	case errors.Is(err, context.Canceled):
		j.finish(StatusCanceled, nil, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StatusFailed, nil, "deadline exceeded")
	default:
		j.finish(StatusFailed, nil, err.Error())
	}
}

// Stats is the /v1/statsz document.
type Stats struct {
	UptimeMS        int64 `json:"uptime_ms"`
	ShardBudget     int   `json:"shard_budget"`
	ShardsInUse     int   `json:"shards_in_use"`
	PeakShardsInUse int   `json:"peak_shards_in_use"`
	// ShardUtilization is ShardsInUse / ShardBudget.
	ShardUtilization float64        `json:"shard_utilization"`
	QueueDepth       int            `json:"queue_depth"`
	QueueCapacity    int            `json:"queue_capacity"`
	RunningJobs      int            `json:"running_jobs"`
	JobsSubmitted    uint64         `json:"jobs_submitted"`
	JobsCompleted    uint64         `json:"jobs_completed"`
	DedupHits        uint64         `json:"dedup_hits"`
	JobsByStatus     map[Status]int `json:"jobs_by_status"`
	Cache            CacheStats     `json:"cache"`
	// Fleet is present only on fleet members (Config.FleetInfo set).
	Fleet *FleetStats `json:"fleet,omitempty"`
}

// FleetStats is the fleet section of /v1/statsz: the configured
// membership plus this daemon's peer-traffic counters.
type FleetStats struct {
	FleetInfo
	// PeerHits counts local misses answered by fetching the bytes from
	// a peer (the owner, or a fallback owner) instead of computing.
	PeerHits uint64 `json:"peer_hits"`
	// PeerMisses counts fetch attempts that found no peer copy and fell
	// through to a local engine run.
	PeerMisses uint64 `json:"peer_misses"`
	// PeerServed counts GET /v1/cache/{key} requests this daemon
	// answered with bytes — its service to the rest of the fleet.
	PeerServed uint64 `json:"peer_served"`
	// PeerProbes counts all GET /v1/cache/{key} lookups received.
	PeerProbes uint64 `json:"peer_probes"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	queued, running, inUse, peak := s.sched.snapshot()
	st := Stats{
		UptimeMS:        time.Since(s.start).Milliseconds(),
		ShardBudget:     s.cfg.ShardBudget,
		ShardsInUse:     inUse,
		PeakShardsInUse: peak,
		QueueDepth:      queued,
		QueueCapacity:   s.cfg.QueueDepth,
		RunningJobs:     running,
		JobsByStatus:    make(map[Status]int),
		Cache:           s.cache.Stats(),
	}
	if st.ShardBudget > 0 {
		st.ShardUtilization = float64(inUse) / float64(st.ShardBudget)
	}
	s.mu.Lock()
	st.JobsSubmitted = s.submitted
	st.JobsCompleted = s.completed
	st.DedupHits = s.dedups
	if s.cfg.FleetInfo != nil {
		st.Fleet = &FleetStats{
			FleetInfo:  *s.cfg.FleetInfo,
			PeerHits:   s.peerHits,
			PeerMisses: s.peerMisses,
			PeerServed: s.peerServed,
			PeerProbes: st.Cache.Probes,
		}
	}
	for _, j := range s.jobs {
		st.JobsByStatus[j.Status()]++
	}
	s.mu.Unlock()
	return st
}

// ---- HTTP handlers ----

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes compact JSON. Compactness matters beyond bytes on the
// wire: result documents are stored and served as raw messages, and an
// indenting encoder would reformat them — breaking the byte-identity
// between cached, uncached, and direct library runs that the cache's
// whole design guarantees.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decode spec: " + err.Error()})
		return
	}

	j, dedup, err := s.SubmitCtx(r.Context(), spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	v := j.View()
	v.Dedup = dedup
	status := http.StatusAccepted
	if v.Status.Terminal() {
		status = http.StatusOK
	}
	writeJobView(w, r, v, status)
}

// writeJobView writes a job view, attaching cache-validation headers when
// the job carries a result: the ETag is the job's content address (the
// SHA-256 cache key), which by the engines' determinism is also the
// identity of the result bytes. A conditional GET whose If-None-Match
// covers that address short-circuits to 304 with no body — repeat
// watchers of finished jobs stop re-downloading result documents. Only
// GET/HEAD evaluate the precondition (RFC 9110 §13.1.2): a submit
// response must always carry its body, or the caller loses the job ID.
func writeJobView(w http.ResponseWriter, r *http.Request, v JobView, status int) {
	if v.Status == StatusDone && v.Key != "" {
		etag := `"` + v.Key + `"`
		w.Header().Set("ETag", etag)
		if (r.Method == http.MethodGet || r.Method == http.MethodHead) &&
			etagMatches(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeJSON(w, status, v)
}

// etagMatches implements the weak-comparison If-None-Match rules the 304
// path needs: a literal list of (possibly W/-prefixed) quoted tags, or
// the wildcard.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		ms, err := strconv.Atoi(waitStr)
		if err != nil || ms < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad wait parameter"})
			return
		}
		if ms > 60_000 {
			ms = 60_000
		}
		waitTerminal(r.Context(), j, time.Duration(ms)*time.Millisecond)
	}
	writeJobView(w, r, j.View(), http.StatusOK)
}

// waitTerminal long-polls the job's event broker until the log is
// terminal, the budget elapses, or the client goes away.
func waitTerminal(ctx context.Context, j *Job, d time.Duration) {
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	from := 0
	for {
		evs, wake, done := j.events.snapshot(from)
		from += len(evs)
		if done {
			return
		}
		select {
		case <-wake:
		case <-deadline.C:
			return
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	s.CancelJob(j)
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	from := 0
	for {
		evs, wake, done := j.events.snapshot(from)
		for i, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", from+i, e.Type, data)
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		from += len(evs)
		if done {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// handleCacheFetch is the fleet peer-fetch protocol: serve the raw
// result bytes for a cache key, or 404 — never compute. With ?wait=ms,
// a key that is currently being computed here is joined: the request
// blocks until the in-flight job finishes (or the budget elapses) and
// then serves the freshly cached bytes. That join is what makes a hot
// key compute once fleet-wide — a replica asking the owner during the
// owner's first computation gets the owner's bytes, not a second run.
func (s *Server) handleCacheFetch(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if len(key) != 64 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "cache key must be a hex sha-256"})
		return
	}
	serve := func(b []byte) {
		s.mu.Lock()
		s.peerServed++
		s.mu.Unlock()
		// Recorded under the *fetching* daemon's request ID (propagated in
		// the request header), so the owner's serve shows up in the trace
		// of the miss that triggered the fetch.
		obs.Record(r.Context(), "peer_serve", time.Now(), map[string]string{
			"key": key[:8],
		})
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", `"`+key+`"`)
		w.Write(b)
	}
	if b, ok := s.cache.Probe(key); ok {
		serve(b)
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		ms, err := strconv.Atoi(waitStr)
		if err != nil || ms < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad wait parameter"})
			return
		}
		if ms > 60_000 {
			ms = 60_000
		}
		s.mu.Lock()
		j := s.inflight[key]
		s.mu.Unlock()
		if j != nil {
			waitTerminal(r.Context(), j, time.Duration(ms)*time.Millisecond)
			if b, ok := s.cache.Probe(key); ok {
				serve(b)
				return
			}
		}
	}
	writeJSON(w, http.StatusNotFound, apiError{Error: "not cached"})
}

// TraceView is the JSON document of GET /v1/jobs/{id}/trace and
// GET /v1/trace/{rid}: the spans one process recorded under a request
// ID. The fleet front assembles a cross-process trace by fetching this
// document from every member and merging on start time.
type TraceView struct {
	RequestID string     `json:"request_id"`
	JobID     string     `json:"job_id,omitempty"`
	Spans     []obs.Span `json:"spans"`
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	spans := s.tracer.Spans(j.rid)
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, TraceView{RequestID: j.rid, JobID: j.ID, Spans: spans})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rid := r.PathValue("rid")
	spans := s.tracer.Spans(rid)
	if spans == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no trace for request id"})
		return
	}
	writeJSON(w, http.StatusOK, TraceView{RequestID: rid, Spans: spans})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
