// Package service is the experiment-serving layer: a long-running daemon
// that multiplexes sweep, grid, and rare-event jobs from many concurrent
// clients onto one machine's simulation engines.
//
// Three mechanisms turn the one-shot CLIs into a system:
//
//   - Content-addressed result cache (cache.go). A job's configuration is
//     normalized (defaults filled, empty axes expanded) and marshalled to
//     canonical JSON; the SHA-256 of those bytes is the job's identity.
//     Every engine in this repository is deterministic per (config, seed)
//     — the runner's bit-identical-at-any-worker-count invariant — so two
//     requests with the same key have byte-identical answers and the
//     second one never touches a core. Hits are served from an in-memory
//     LRU, with evictions optionally spilled to a directory that survives
//     restarts. Identical jobs submitted while the first is still running
//     coalesce onto the in-flight job instead of queueing a duplicate.
//
//   - Admission-controlled scheduler (sched.go). Misses enter a bounded
//     priority queue (FIFO within a priority class); submissions beyond
//     the bound are rejected immediately with 429 rather than absorbed
//     into an unbounded backlog. A dispatcher grants each job a worker
//     allocation from a fixed shard budget (default GOMAXPROCS) and sizes
//     the job's internal runner pool to the grant, so total shard
//     concurrency across all running jobs never exceeds the budget — the
//     machine is shared, never oversubscribed. Jobs carry per-job
//     cancellation (DELETE) and an optional execution deadline.
//
//   - Progress streaming (events.go, server.go). The runner's progress
//     callbacks are bridged into a per-job replayable event log exposed
//     as a Server-Sent-Events stream, so clients attaching at any point
//     see the full history and then live updates until the terminal
//     event.
//
// The HTTP surface (stdlib net/http only):
//
//	POST   /v1/jobs             submit a JobSpec; cache hits return the
//	                            result inline with "cached": true
//	GET    /v1/jobs/{id}        status + result (?wait=ms long-polls)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events SSE progress/status/result stream
//	GET    /v1/healthz          liveness
//	GET    /v1/statsz           queue depth, shard budget use, cache hit
//	                            rate, jobs served
//
// The same Server value is an http.Handler, so tests and in-process
// clients (rxl.Serve / rxl.InProcessClient) drive the daemon through
// exactly the path HTTP users take, without a socket.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/reliability"
)

// Job kinds accepted by POST /v1/jobs.
const (
	// KindGrid runs a live-simulation grid (core.RunGrid): protocol ×
	// levels × BER × seed cells, each a full end-to-end fabric.
	KindGrid = "grid"
	// KindSweep runs a Monte-Carlo flit-error-rate BER sweep on the
	// error-event schedule (reliability.MCBERSweep).
	KindSweep = "sweep"
	// KindRare runs the deep-tail rare-event estimation (FER, FER_UC,
	// FER_UD per BER) with importance sampling (reliability.RareSweep).
	KindRare = "rare"
	// KindComparison runs the same workload across all three protocol
	// variants (core.RunComparisonPool) — the CXL-vs-RXL tables.
	KindComparison = "comparison"
	// KindRareSelfCheck cross-validates the importance-sampling machinery
	// against naive schedule Monte-Carlo (reliability.RareSelfCheck).
	KindRareSelfCheck = "rare-selfcheck"
	// KindScenario runs a scenario grid (core.RunScenarioGrid): protocol ×
	// topology × workload × fault-campaign × BER × seed cells on mesh or
	// torus fabrics.
	KindScenario = "scenario"
)

// SweepSpec parameterizes a KindSweep job.
type SweepSpec struct {
	// BERs are the swept bit error rates, one measurement per entry.
	BERs []float64 `json:"bers"`
	// FlitsPerPoint is the Monte-Carlo flit budget per BER.
	FlitsPerPoint int `json:"flits_per_point"`
	// Shards splits each point's budget (0 = reliability.DefaultShards).
	Shards int `json:"shards,omitempty"`
}

// RareSpec parameterizes a KindRare job.
type RareSpec struct {
	// BERs are the deep-tail operating points to estimate.
	BERs []float64 `json:"bers"`
	// Proposal is the importance-sampling proposal BER (0 = auto).
	Proposal float64 `json:"proposal_ber,omitempty"`
	// RelErr is the target relative error of each estimate; <= 0 spends
	// exactly MaxTrials.
	RelErr float64 `json:"rel_err,omitempty"`
	// MaxTrials caps the adaptive trial budget per quantity (0 = 2^22).
	MaxTrials int `json:"max_trials,omitempty"`
	// Shards splits each round (0 = reliability.DefaultShards).
	Shards int `json:"shards,omitempty"`
}

// ComparisonSpec parameterizes a KindComparison job.
type ComparisonSpec struct {
	// Base is the fabric configuration shared by the three variants. Its
	// Protocol and LinkConfig fields are ignored — the comparison engine
	// overrides both per variant — and are normalized away so they cannot
	// split the cache key.
	Base core.Config `json:"base"`
	// N is the number of line-rate payloads offered per variant.
	N int `json:"n"`
}

// RareSelfCheckSpec parameterizes a KindRareSelfCheck job.
type RareSelfCheckSpec struct {
	// BERs are the operating points where IS and naive Monte-Carlo both
	// converge (1e-6..1e-7 territory).
	BERs []float64 `json:"bers"`
	// Flits is the naive-side trial budget per BER (0 = 2^21).
	Flits int `json:"flits,omitempty"`
	// Shards splits each measurement (0 = reliability.DefaultShards).
	Shards int `json:"shards,omitempty"`
}

// JobSpec is the wire form of a job submission. Exactly one payload
// field must be set, matching Kind. Scheduling fields (Priority,
// TimeoutMS, Workers) steer the queue but are excluded from the cache
// key: they can change when a job runs and with how many workers, but —
// by the runner's determinism invariant — never what it computes.
type JobSpec struct {
	// Kind selects the engine: "grid", "sweep", or "rare".
	Kind string `json:"kind"`
	// Seed is the runner pool's base seed; every shard seed derives from
	// it, so (spec, seed) fully determines the result bytes.
	Seed uint64 `json:"seed"`
	// Priority orders the queue: higher runs first, FIFO within a class.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the job's execution wall-clock once it starts
	// running (0 = no deadline).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers caps this job's shard concurrency. The scheduler may grant
	// fewer (never more than the server's shard budget); 0 accepts the
	// server default. Does not affect results.
	Workers int `json:"workers,omitempty"`

	// Grid is the KindGrid payload: a core.Grid in its native JSON form
	// (Go field names; protocols are integers — 0 CXL, 1 CXL-noPB, 2 RXL).
	Grid *core.Grid `json:"grid,omitempty"`
	// Sweep is the KindSweep payload.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Rare is the KindRare payload.
	Rare *RareSpec `json:"rare,omitempty"`
	// Comparison is the KindComparison payload.
	Comparison *ComparisonSpec `json:"comparison,omitempty"`
	// RareSelfCheck is the KindRareSelfCheck payload.
	RareSelfCheck *RareSelfCheckSpec `json:"rare_selfcheck,omitempty"`
	// Scenario is the KindScenario payload: a core.ScenarioGrid in its
	// native JSON form.
	Scenario *core.ScenarioGrid `json:"scenario,omitempty"`
}

// Normalize validates the spec and fills every defaulted field with its
// effective value, returning the canonical spec the cache key is computed
// from. Two submissions that mean the same job — different JSON field
// order, axes left to default expansion, shard counts left to the default
// — normalize to identical values.
func (s JobSpec) Normalize() (JobSpec, error) {
	n := 0
	if s.Grid != nil {
		n++
	}
	if s.Sweep != nil {
		n++
	}
	if s.Rare != nil {
		n++
	}
	if s.Comparison != nil {
		n++
	}
	if s.RareSelfCheck != nil {
		n++
	}
	if s.Scenario != nil {
		n++
	}
	if n != 1 {
		return s, fmt.Errorf("service: spec needs exactly one of grid/sweep/rare/comparison/rare_selfcheck/scenario, got %d", n)
	}
	switch s.Kind {
	case KindGrid:
		if s.Grid == nil {
			return s, fmt.Errorf("service: kind %q needs a grid payload", s.Kind)
		}
		if s.Grid.N <= 0 {
			return s, fmt.Errorf("service: grid needs N > 0 payloads per cell")
		}
		if err := s.Grid.Base.Validate(); err != nil {
			return s, err
		}
		g := s.Grid.Normalized()
		for _, cfg := range g.Configs() {
			if err := cfg.Validate(); err != nil {
				return s, err
			}
		}
		s.Grid = &g
	case KindSweep:
		if s.Sweep == nil {
			return s, fmt.Errorf("service: kind %q needs a sweep payload", s.Kind)
		}
		sw := *s.Sweep
		if len(sw.BERs) == 0 {
			return s, fmt.Errorf("service: sweep needs at least one BER")
		}
		for _, ber := range sw.BERs {
			if ber <= 0 || ber >= 1 {
				return s, fmt.Errorf("service: sweep BER %g out of (0,1)", ber)
			}
		}
		if sw.FlitsPerPoint <= 0 {
			return s, fmt.Errorf("service: sweep needs flits_per_point > 0")
		}
		if sw.Shards <= 0 {
			sw.Shards = reliability.DefaultShards
		}
		s.Sweep = &sw
	case KindRare:
		if s.Rare == nil {
			return s, fmt.Errorf("service: kind %q needs a rare payload", s.Kind)
		}
		r := *s.Rare
		if len(r.BERs) == 0 {
			return s, fmt.Errorf("service: rare needs at least one BER")
		}
		for _, ber := range r.BERs {
			if ber <= 0 || ber >= 1 {
				return s, fmt.Errorf("service: rare BER %g out of (0,1)", ber)
			}
		}
		if r.MaxTrials <= 0 {
			r.MaxTrials = 1 << 22
		}
		if r.RelErr < 0 {
			r.RelErr = 0
		}
		if r.Shards <= 0 {
			r.Shards = reliability.DefaultShards
		}
		s.Rare = &r
	case KindComparison:
		if s.Comparison == nil {
			return s, fmt.Errorf("service: kind %q needs a comparison payload", s.Kind)
		}
		c := *s.Comparison
		if c.N <= 0 {
			return s, fmt.Errorf("service: comparison needs n > 0 payloads")
		}
		// Protocol and LinkConfig are overridden per variant by the
		// comparison engine; normalize them away so two specs that differ
		// only in ignored fields share one cache entry.
		c.Base.Protocol = 0
		c.Base.LinkConfig = nil
		if err := c.Base.Validate(); err != nil {
			return s, err
		}
		s.Comparison = &c
	case KindRareSelfCheck:
		if s.RareSelfCheck == nil {
			return s, fmt.Errorf("service: kind %q needs a rare_selfcheck payload", s.Kind)
		}
		r := *s.RareSelfCheck
		if len(r.BERs) == 0 {
			return s, fmt.Errorf("service: rare_selfcheck needs at least one BER")
		}
		for _, ber := range r.BERs {
			if ber <= 0 || ber >= 1 {
				return s, fmt.Errorf("service: rare_selfcheck BER %g out of (0,1)", ber)
			}
		}
		if r.Flits <= 0 {
			r.Flits = 1 << 21
		}
		if r.Shards <= 0 {
			r.Shards = reliability.DefaultShards
		}
		s.RareSelfCheck = &r
	case KindScenario:
		if s.Scenario == nil {
			return s, fmt.Errorf("service: kind %q needs a scenario payload", s.Kind)
		}
		if err := s.Scenario.Base.Validate(); err != nil {
			return s, err
		}
		sg, err := s.Scenario.Normalized()
		if err != nil {
			return s, err
		}
		// Reject grids with no runnable cells at submission, like an
		// invalid axis — and validate every cell configuration.
		cells, err := sg.Cells()
		if err != nil {
			return s, err
		}
		for _, c := range cells {
			if err := c.Cfg.Validate(); err != nil {
				return s, err
			}
		}
		s.Scenario = &sg
	default:
		return s, fmt.Errorf("service: unknown job kind %q (want grid, sweep, rare, comparison, rare-selfcheck, or scenario)", s.Kind)
	}
	if s.Workers < 0 {
		s.Workers = 0
	}
	return s, nil
}

// keySpec is the cache-key projection of a normalized spec: the fields
// that determine result bytes and nothing else.
type keySpec struct {
	Kind          string
	Seed          uint64
	Grid          *core.Grid
	Sweep         *SweepSpec
	Rare          *RareSpec
	Comparison    *ComparisonSpec    `json:",omitempty"`
	RareSelfCheck *RareSelfCheckSpec `json:",omitempty"`
	Scenario      *core.ScenarioGrid `json:",omitempty"`
}

// Key returns the content address of a normalized spec: the hex SHA-256
// of its canonical JSON. Call Normalize first; keys of unnormalized specs
// would distinguish jobs that compute identical bytes.
func (s JobSpec) Key() string {
	// Struct marshalling emits fields in declaration order with no
	// whitespace variance, so the encoding is canonical by construction.
	// The new kinds' fields carry omitempty so specs of the original
	// kinds keep their PR 4 canonical bytes — and therefore their cache
	// keys, including entries already spilled to disk.
	b, err := json.Marshal(keySpec{
		Kind: s.Kind, Seed: s.Seed, Grid: s.Grid, Sweep: s.Sweep, Rare: s.Rare,
		Comparison: s.Comparison, RareSelfCheck: s.RareSelfCheck, Scenario: s.Scenario,
	})
	if err != nil {
		// Specs are plain data — the only marshal failures are
		// non-finite floats, which Normalize rejects as invalid BERs.
		panic(fmt.Sprintf("service: canonical marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
