package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the content-addressed result store: canonical-spec SHA-256 key
// → result bytes. Entries live in a bounded in-memory LRU; evictions (and
// every insert, write-through) can spill to a directory so a restarted
// daemon — or a colder, larger tier — still answers repeats without
// recomputing. Both tiers store the exact bytes the engine produced, so a
// hit is byte-identical to the miss that populated it.
type Cache struct {
	mu       sync.Mutex
	capacity int
	spillDir string

	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64      // result bytes resident in the memory tier

	hits, misses, diskHits, spills, probes uint64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key    string
	result []byte
}

// CacheStats is the counter snapshot exposed by /v1/statsz.
type CacheStats struct {
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Bytes is the result payload resident in the memory tier — the
	// entry-count LRU's actual footprint, for capacity planning.
	Bytes    int64  `json:"bytes"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	DiskHits uint64 `json:"disk_hits"`
	Spills   uint64 `json:"spills"`
	// Probes counts Probe lookups (fleet peers asking for raw bytes via
	// GET /v1/cache/{key}); probe misses are excluded from Misses and
	// HitRate.
	Probes  uint64  `json:"probes,omitempty"`
	HitRate float64 `json:"hit_rate"`
}

// NewCache returns a cache holding up to capacity entries in memory
// (capacity <= 0 selects 256), spilling to spillDir when non-empty.
func NewCache(capacity int, spillDir string) (*Cache, error) {
	if capacity <= 0 {
		capacity = 256
	}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache spill dir: %w", err)
		}
	}
	return &Cache{
		capacity: capacity,
		spillDir: spillDir,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}, nil
}

// Get returns the cached result bytes for key. A memory miss consults the
// spill directory and promotes a disk hit back into the LRU.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).result
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()

	if c.spillDir != "" {
		if b, err := os.ReadFile(c.spillPath(key)); err == nil {
			c.mu.Lock()
			c.diskHits++
			c.insertLocked(key, b)
			c.mu.Unlock()
			return b, true
		}
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Probe is Get for fleet peer traffic (GET /v1/cache/{key}). It reads
// both tiers like Get but keeps the hit/miss counters untouched: those
// measure *client* traffic, the series operators alert on, and peers
// probing for keys this daemon never computed would otherwise skew the
// hit rate both ways. Probes are counted on their own; the server's
// fleet stats break out how many were served.
func (c *Cache) Probe(key string) ([]byte, bool) {
	c.mu.Lock()
	c.probes++
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		res := el.Value.(*cacheEntry).result
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()

	if c.spillDir != "" {
		if b, err := os.ReadFile(c.spillPath(key)); err == nil {
			c.mu.Lock()
			c.insertLocked(key, b)
			c.mu.Unlock()
			return b, true
		}
	}
	return nil, false
}

// Put stores the result bytes under key, evicting the LRU tail past
// capacity. With a spill directory configured the entry is also written
// through to disk (atomically, via rename), so evictions lose nothing.
func (c *Cache) Put(key string, result []byte) {
	c.mu.Lock()
	c.insertLocked(key, result)
	c.mu.Unlock()

	if c.spillDir != "" {
		if err := c.writeSpill(key, result); err == nil {
			c.mu.Lock()
			c.spills++
			c.mu.Unlock()
		}
	}
}

// insertLocked adds or refreshes an entry, trims to capacity, and keeps
// the resident-bytes count in step with every insert, replace, and
// eviction.
func (c *Cache) insertLocked(key string, result []byte) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(result)) - int64(len(e.result))
		e.result = result
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, result: result})
	c.bytes += int64(len(result))
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		e := tail.Value.(*cacheEntry)
		c.bytes -= int64(len(e.result))
		delete(c.entries, e.key)
	}
}

// spillPath maps a key to its spill file. Keys are hex SHA-256, so they
// are always safe path components.
func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.spillDir, key+".json")
}

// writeSpill writes the entry via a temp file + rename so concurrent
// readers never observe a torn result.
func (c *Cache) writeSpill(key string, result []byte) error {
	tmp, err := os.CreateTemp(c.spillDir, "spill-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(result); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.spillPath(key))
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Entries:  c.lru.Len(),
		Capacity: c.capacity,
		Bytes:    c.bytes,
		Hits:     c.hits,
		Misses:   c.misses,
		DiskHits: c.diskHits,
		Spills:   c.spills,
		Probes:   c.probes,
	}
	if total := s.Hits + s.DiskHits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits+s.DiskHits) / float64(total)
	}
	return s
}
