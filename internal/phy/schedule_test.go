package phy

import "testing"

// flitBits is the unit width used throughout the schedule tests: one 256B
// flit.
const flitBits = 2048

// flipPositions corrupts n consecutive units of unitBytes through ch and
// returns the global bit positions of every flip, concatenated across
// units.
func flipPositions(ch *Channel, n, unitBytes int) []int {
	var pos []int
	buf := make([]byte, unitBytes)
	for u := 0; u < n; u++ {
		for i := range buf {
			buf[i] = 0
		}
		ch.Corrupt(buf)
		for i, b := range buf {
			for bit := 0; bit < 8; bit++ {
				if b&(1<<(7-bit)) != 0 {
					pos = append(pos, u*unitBytes*8+i*8+bit)
				}
			}
		}
	}
	return pos
}

// TestResidualGapCarry is the regression test for the flit-boundary
// truncation bug: the gap to the next error must be carried across unit
// boundaries, so splitting a bit stream into flit-sized units cannot
// change where errors land. With BurstProb=0 (no boundary-sensitive DFE
// propagation) the error positions over 64 flits must be bit-identical to
// one Corrupt call over the same 64-flit span.
func TestResidualGapCarry(t *testing.T) {
	const units, unitBytes = 64, flitBits / 8
	for _, ber := range []float64{1e-2, 1e-3, 1e-4} {
		whole := NewChannel(ber, 0, NewRNG(77))
		split := NewChannel(ber, 0, NewRNG(77))

		wantPos := flipPositions(whole, 1, units*unitBytes)
		gotPos := flipPositions(split, units, unitBytes)

		if len(wantPos) == 0 {
			t.Fatalf("BER %g: test vacuous, no errors drawn", ber)
		}
		if len(gotPos) != len(wantPos) {
			t.Fatalf("BER %g: split run flipped %d bits, whole run %d",
				ber, len(gotPos), len(wantPos))
		}
		for i := range wantPos {
			if gotPos[i] != wantPos[i] {
				t.Fatalf("BER %g: flip %d at bit %d in split run, %d in whole run",
					ber, i, gotPos[i], wantPos[i])
			}
		}
		if whole.BitsSeen != split.BitsSeen || whole.BitsFlipped != split.BitsFlipped ||
			whole.ErrorEvents != split.ErrorEvents {
			t.Fatalf("BER %g: stats diverge: whole %+v split %+v", ber, whole, split)
		}
	}
}

// TestBurstStraddlingBoundary pins the two boundary behaviors down: a DFE
// burst is truncated at the unit boundary (the equalizer retrains per
// flit), but the geometric gap behind it still carries — after any
// corrupted unit, the next unit's first error must land exactly at the
// residual NextEvent reports.
func TestBurstStraddlingBoundary(t *testing.T) {
	const unitBytes = flitBits / 8
	// High BER and burst probability so bursts regularly reach the
	// boundary within a reasonable number of units.
	ch := NewChannel(5e-3, 0.9, NewRNG(3))
	buf := make([]byte, unitBytes)
	sawBoundaryHit := false
	for u := 0; u < 400; u++ {
		for i := range buf {
			buf[i] = 0
		}
		n := ch.Corrupt(buf)
		if n > 0 && buf[unitBytes-1]&1 != 0 {
			sawBoundaryHit = true // a flip on the very last bit: burst was cut here
		}
		// The residual gap must describe the next unit exactly.
		next := ch.NextEvent()
		if next == NoEvent {
			t.Fatal("NextEvent exhausted at BER 5e-3")
		}
		for i := range buf {
			buf[i] = 0
		}
		if ch.Corrupt(buf) == 0 {
			if next < flitBits {
				t.Fatalf("unit %d: NextEvent=%d promised an error, none landed", u, next)
			}
			continue
		}
		first := -1
		for i, b := range buf {
			if b != 0 {
				for bit := 0; bit < 8; bit++ {
					if b&(1<<(7-bit)) != 0 {
						first = i*8 + bit
						break
					}
				}
				break
			}
		}
		if first != next {
			t.Fatalf("unit %d: first flip at bit %d, schedule promised %d", u, first, next)
		}
	}
	if !sawBoundaryHit {
		t.Fatal("no burst ever reached a unit boundary; raise BER/BurstProb")
	}
}

// TestTraverseMatchesCorrupt proves the schedule-only path is
// bit-compatible with byte-level corruption: identical seeds give
// identical per-unit flip counts and identical channel statistics whether
// or not an image exists.
func TestTraverseMatchesCorrupt(t *testing.T) {
	const units = 3000
	for _, tc := range []struct{ ber, burst float64 }{
		{1e-3, 0}, {1e-3, 0.4}, {1e-4, 0.9}, {0, 0},
	} {
		byteCh := NewChannel(tc.ber, tc.burst, NewRNG(42))
		schedCh := NewChannel(tc.ber, tc.burst, NewRNG(42))
		buf := make([]byte, flitBits/8)
		for u := 0; u < units; u++ {
			for i := range buf {
				buf[i] = 0
			}
			got := schedCh.Traverse(flitBits)
			want := byteCh.Corrupt(buf)
			if got != want {
				t.Fatalf("BER %g burst %g unit %d: Traverse flipped %d, Corrupt %d",
					tc.ber, tc.burst, u, got, want)
			}
		}
		if byteCh.BitsSeen != schedCh.BitsSeen ||
			byteCh.BitsFlipped != schedCh.BitsFlipped ||
			byteCh.ErrorEvents != schedCh.ErrorEvents ||
			byteCh.UnitsTouched != schedCh.UnitsTouched {
			t.Fatalf("BER %g burst %g: stats diverge: byte %+v sched %+v",
				tc.ber, tc.burst, byteCh, schedCh)
		}
	}
}

// TestNextEventAdvance covers the fast-path contract: NextEvent reflects
// the pending gap, Advance consumes clean spans without RNG draws, and
// advancing across a scheduled event panics instead of silently dropping
// it.
func TestNextEventAdvance(t *testing.T) {
	if got := NewChannel(0, 0, NewRNG(1)).NextEvent(); got != NoEvent {
		t.Fatalf("BER 0 NextEvent = %d, want NoEvent", got)
	}

	ch := NewChannel(1e-4, 0, NewRNG(9))
	next := ch.NextEvent()
	// Advance in clean flit-sized steps up to the event.
	steps := 0
	for ch.NextEvent() >= flitBits {
		ch.Advance(flitBits)
		steps++
		if want := next - steps*flitBits; ch.NextEvent() != want {
			t.Fatalf("after %d advances NextEvent = %d, want %d", steps, ch.NextEvent(), want)
		}
	}
	if ch.BitsSeen != uint64(steps*flitBits) {
		t.Fatalf("BitsSeen = %d after %d clean flits", ch.BitsSeen, steps)
	}
	// The event is now inside the next flit: byte-level corruption must
	// land it exactly at the remaining offset.
	rem := ch.NextEvent()
	buf := make([]byte, flitBits/8)
	if ch.Corrupt(buf) == 0 {
		t.Fatal("scheduled event did not fire")
	}
	if buf[rem/8]&(1<<(7-rem%8)) == 0 {
		t.Fatalf("scheduled event at bit %d did not flip that bit", rem)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Advance across a scheduled event did not panic")
		}
	}()
	ch2 := NewChannel(0.5, 0, NewRNG(2))
	for ch2.NextEvent() >= flitBits {
		ch2.Advance(flitBits)
	}
	ch2.Advance(flitBits)
}
