package phy

import (
	"math"
	"testing"
)

// TestTiltedChannelIsPlainProposalChannel: the tilting hook must not
// perturb the schedule semantics — a tilted channel walks bit-identically
// to a plain channel built at the proposal rate, so the PR 2 fast path
// (NextEvent/Advance/Traverse) composes untouched.
func TestTiltedChannelIsPlainProposalChannel(t *testing.T) {
	const p, q, unit = 1e-9, 5e-4, 2048
	tilted := TiltedChannel(p, q, NewRNG(7))
	plain := NewChannel(q, 0, NewRNG(7))
	for i := 0; i < 5000; i++ {
		if a, b := tilted.NextEvent(), plain.NextEvent(); a != b {
			t.Fatalf("unit %d: tilted NextEvent %d != plain %d", i, a, b)
		}
		if a, b := tilted.Traverse(unit), plain.Traverse(unit); a != b {
			t.Fatalf("unit %d: tilted Traverse %d != plain %d", i, a, b)
		}
	}
}

func TestTiltedChannelValidation(t *testing.T) {
	for _, bad := range []struct{ p, q float64 }{
		{0, 1e-4},    // zero truth
		{1e-4, 1e-6}, // proposal below truth
		{1e-4, 1},    // proposal at 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TiltedChannel(%g, %g) accepted", bad.p, bad.q)
				}
			}()
			TiltedChannel(bad.p, bad.q, NewRNG(1))
		}()
	}
	// Equal rates are the untilted degenerate case and must be accepted.
	if ch := TiltedChannel(1e-6, 1e-6, NewRNG(1)); ch.BER != 1e-6 {
		t.Fatalf("untilted channel BER %g", ch.BER)
	}
}

// TestUnitLogLRTelescopes: the per-unit closed form must equal the product
// of the per-gap ratios the schedule actually drew, with the trailing
// residual gap contributing its clean-bit factor — i.e. summing UnitLogLR
// over units of a walk reproduces the gap-level likelihood ratio of the
// whole stream. This is the correctness core of the IS estimators.
func TestUnitLogLRTelescopes(t *testing.T) {
	const p, q, unit, units = 1e-7, 3e-4, 2048, 4000

	// Walk the tilted schedule and fold the per-unit closed form.
	ch := TiltedChannel(p, q, NewRNG(42))
	unitSide := 0.0
	totalFlips := 0
	for i := 0; i < units; i++ {
		k := ch.Traverse(unit)
		totalFlips += k
		unitSide += UnitLogLR(p, q, unit, k)
	}
	if totalFlips == 0 {
		t.Fatal("walk saw no error events; raise units or proposal")
	}

	// Reconstruct the same walk gap by gap on an identical RNG stream:
	// each drawn gap contributes GapLogLR, and the residual clean bits the
	// last gap left before the stream's end contribute only their
	// clean-bit factor (memorylessness splits the geometric factor).
	rng := NewRNG(42)
	gapSide := 0.0
	consumed := 0 // bits consumed by full gap+error steps
	total := units * unit
	for {
		g := rng.Geometric(q)
		if consumed+g >= total {
			gapSide += float64(total-consumed) * (math.Log1p(-p) - math.Log1p(-q))
			break
		}
		gapSide += GapLogLR(p, q, g)
		consumed += g + 1
	}

	if diff := math.Abs(unitSide - gapSide); diff > 1e-6*math.Abs(gapSide) {
		t.Fatalf("unit-side log LR %.9f != gap-side %.9f (diff %g)", unitSide, gapSide, diff)
	}
}

// TestUnitLogLRIdentities: degenerate cases the estimators rely on.
func TestUnitLogLRIdentities(t *testing.T) {
	// No tilt → unit weight regardless of flips.
	for _, k := range []int{0, 1, 7} {
		if w := UnitLogLR(1e-6, 1e-6, 2048, k); w != 0 {
			t.Fatalf("untilted UnitLogLR(k=%d) = %g, want 0", k, w)
		}
	}
	// A clean unit's weight is the pure clean-bit factor, > 0 in log
	// (clean units are more likely under the truth than the proposal).
	if w := UnitLogLR(1e-9, 1e-3, 2048, 0); w <= 0 {
		t.Fatalf("clean-unit log weight %g, want > 0", w)
	}
	// A flipped bit is heavily penalized when the truth is far below the
	// proposal.
	if w := UnitLogLR(1e-9, 1e-3, 2048, 1); w >= 0 {
		t.Fatalf("one-flip log weight %g, want < 0", w)
	}
	// GapLogLR at equal rates is exactly zero.
	if w := GapLogLR(1e-4, 1e-4, 12345); w != 0 {
		t.Fatalf("untilted GapLogLR = %g", w)
	}
}

// TestUnitWeightMeanIsOne: the empirical mean of exp(UnitLogLR) over
// tilted trials must be 1 — the sum-to-one sanity of importance weights.
func TestUnitWeightMeanIsOne(t *testing.T) {
	const p, q, unit, units = 1e-6, 4e-4, 2048, 200000
	ch := TiltedChannel(p, q, NewRNG(3))
	sum, sum2 := 0.0, 0.0
	for i := 0; i < units; i++ {
		w := math.Exp(UnitLogLR(p, q, unit, ch.Traverse(unit)))
		sum += w
		sum2 += w * w
	}
	mean := sum / units
	sigma := math.Sqrt((sum2/units - mean*mean) / units)
	if math.Abs(mean-1) > 4*sigma {
		t.Fatalf("mean weight %.6f ± %.6f not consistent with 1", mean, sigma)
	}
}
