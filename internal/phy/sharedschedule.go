package phy

// SharedSchedule is one pre-drawn error-event schedule consumed by every
// hop of a source→destination path. Where a per-wire Channel models each
// hop as an independent bit-error process, a SharedSchedule concatenates
// the path's hop crossings into a single bit stream: a flit traversing H
// hops consumes H units (one per crossing) of the same geometric
// error-event process, so the per-bit error rate on every crossing is
// still exactly BER.
//
// Sharing the stream is what enables the mesh-wide fast path: at the
// injection point one schedule consultation decides the flit's *entire*
// traversal — Begin reports whether the next hops×UnitBits of the stream
// are error-free, and if so consumes them all up front. The flit then
// carries a path pass and every downstream hop skips channel work
// entirely. Dirty traversals (an event inside the window) fall back to
// unit-by-unit consumption, so corruption lands on the exact hop the
// schedule assigns it and per-hop FEC termination sees it there.
//
// The consumption policy — grant whole traversals when clean, consume
// unit-by-unit otherwise, always in engine dispatch order — is part of
// the channel model itself, applied identically by the fast path and the
// byte-level reference. That is what keeps the two bit-identical under
// pipelined traffic: a grant front-loads stream consumption relative to
// per-hop crossings, so both paths must front-load it the same way.
//
// A SharedSchedule is not safe for concurrent use; like Channel, give
// each simulated path its own (derive RNGs with RNG.Split).
type SharedSchedule struct {
	ch *Channel
	// UnitBits is the width of one hop crossing (one flit image).
	UnitBits int
}

// NewSharedSchedule returns a path schedule over unitBits-wide crossings.
func NewSharedSchedule(ber, burstProb float64, rng *RNG, unitBits int) *SharedSchedule {
	if unitBits <= 0 {
		panic("phy: non-positive unit width")
	}
	return &SharedSchedule{ch: NewChannel(ber, burstProb, rng), UnitBits: unitBits}
}

// Begin opens a traversal of hops crossings. If the schedule proves the
// whole window clean it consumes all hops×UnitBits in one O(1) advance
// and returns true — the caller may skip every per-hop channel operation
// of this traversal. Otherwise nothing is consumed and the caller must
// put each crossing through CrossClean/Advance/Corrupt individually.
func (s *SharedSchedule) Begin(hops int) bool {
	if hops <= 0 {
		panic("phy: non-positive hop count")
	}
	span := hops * s.UnitBits
	if s.ch.NextEvent() < span {
		return false
	}
	s.ch.Advance(span)
	return true
}

// GrantSpan consumes up to max whole clean traversals of hops crossings
// each in one O(1) advance, returning how many were granted. It is the
// bulk form of Begin for schedule-only Monte Carlo: at production BERs a
// single call skips hundreds of traversals, so the estimator loop runs
// per error event rather than per flit per hop.
func (s *SharedSchedule) GrantSpan(hops, max int) int {
	if hops <= 0 {
		panic("phy: non-positive hop count")
	}
	span := hops * s.UnitBits
	n := s.ch.NextEvent() / span
	if n > max {
		n = max
	}
	if n > 0 {
		s.ch.Advance(n * span)
	}
	return n
}

// CrossClean reports whether the next single crossing is free of error
// events. It never consumes the schedule.
func (s *SharedSchedule) CrossClean() bool { return s.ch.NextEvent() >= s.UnitBits }

// CleanCrossings returns the distance to the next error event measured in
// whole crossings, capped at max: the next n crossings are provably clean
// and the caller may consume them in one AdvanceCrossings. Together the
// two are the epoch-skip primitive — a Monte-Carlo loop jumps straight to
// the struck crossing instead of walking every clean one, so its cost is
// proportional to error events, not to flits×hops. A schedule that will
// never fire (BER 0) reports max. Nothing is consumed.
func (s *SharedSchedule) CleanCrossings(max int) int {
	n := s.ch.NextEvent() / s.UnitBits
	if n > max {
		n = max
	}
	return n
}

// AdvanceCrossings consumes n clean crossings in one O(1) closed-form
// step with no RNG draws — bitwise identical stream consumption to n
// successive Advance calls. The caller must have obtained n from
// CleanCrossings (advancing across a scheduled event panics).
func (s *SharedSchedule) AdvanceCrossings(n int) {
	if n > 0 {
		s.ch.Advance(n * s.UnitBits)
	}
}

// Advance consumes one clean crossing in O(1) with no RNG draws. The
// caller must have checked CrossClean.
func (s *SharedSchedule) Advance() { s.ch.Advance(s.UnitBits) }

// Corrupt consumes one crossing, flipping scheduled error bits in buf in
// place, and returns the number of bits flipped. buf must be UnitBits
// wide.
func (s *SharedSchedule) Corrupt(buf []byte) int {
	if len(buf)*8 != s.UnitBits {
		panic("phy: buffer width != schedule unit")
	}
	return s.ch.Corrupt(buf)
}

// Traverse consumes one crossing without an image, returning the number
// of bits that would have been flipped. It draws exactly the RNG stream
// Corrupt would, so schedule-only Monte Carlo stays bit-compatible with
// image-level simulation.
func (s *SharedSchedule) Traverse() int { return s.ch.Traverse(s.UnitBits) }

// Channel exposes the underlying error process for statistics
// (BitsSeen/BitsFlipped/ErrorEvents/UnitsTouched) and estimator reuse.
func (s *SharedSchedule) Channel() *Channel { return s.ch }
