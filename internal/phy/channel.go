package phy

// Channel is a stochastic bit-error process applied to flit images in
// transit. Errors are injected as independent events at rate BER, using
// geometric gap sampling so that low-BER channels cost O(errors), not
// O(bits). Each error event optionally extends into a burst via the DFE
// propagation model: after a symbol decision error, each subsequent bit is
// also corrupted with probability BurstProb, mimicking decision feedback
// equalizer error propagation at the PAM4 physical layer (Section 2.2).
//
// A Channel is not safe for concurrent use; give each simulated link its
// own (use RNG.Split for reproducible derivation).
type Channel struct {
	// BER is the independent bit error rate (e.g. 1e-6 for CXL 3.0).
	BER float64
	// BurstProb is the probability that an error event corrupts the next
	// bit as well (geometric burst lengths with mean 1/(1-BurstProb)).
	// Zero gives a pure iid channel.
	BurstProb float64

	rng *RNG

	// Stats accumulated across Corrupt calls.
	BitsSeen     uint64
	BitsFlipped  uint64
	ErrorEvents  uint64 // independent error events (bursts count once)
	UnitsTouched uint64 // buffers with at least one flipped bit
}

// NewChannel returns a channel with the given error parameters and RNG.
func NewChannel(ber, burstProb float64, rng *RNG) *Channel {
	return &Channel{BER: ber, BurstProb: burstProb, rng: rng}
}

// Corrupt injects bit errors into buf in place and returns the number of
// bits flipped.
func (ch *Channel) Corrupt(buf []byte) int {
	bits := len(buf) * 8
	ch.BitsSeen += uint64(bits)
	if ch.BER <= 0 {
		return 0
	}
	flipped := 0
	pos := ch.rng.Geometric(ch.BER)
	for pos < bits {
		ch.ErrorEvents++
		// Flip the seed bit, then extend the burst while the DFE model
		// keeps propagating.
		buf[pos/8] ^= 1 << (7 - pos%8)
		flipped++
		ch.BitsFlipped++
		for ch.BurstProb > 0 && pos+1 < bits && ch.rng.Float64() < ch.BurstProb {
			pos++
			buf[pos/8] ^= 1 << (7 - pos%8)
			flipped++
			ch.BitsFlipped++
		}
		gap := ch.rng.Geometric(ch.BER)
		if gap >= bits { // avoid overflow on MaxInt gaps
			break
		}
		pos += 1 + gap
	}
	if flipped > 0 {
		ch.UnitsTouched++
	}
	return flipped
}

// FlitErrorRate returns the observed fraction of corrupted buffers, for
// cross-checking against the analytic FER of Eq. 1.
func (ch *Channel) FlitErrorRate(unitBits int) float64 {
	if ch.BitsSeen == 0 {
		return 0
	}
	units := ch.BitsSeen / uint64(unitBits)
	if units == 0 {
		return 0
	}
	return float64(ch.UnitsTouched) / float64(units)
}
