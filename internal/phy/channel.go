package phy

import "math"

// NoEvent is the NextEvent value of a channel that will never fire (BER 0).
const NoEvent = math.MaxInt

// Channel is a stochastic bit-error process applied to flit images in
// transit. Errors are injected as independent events at rate BER, using
// geometric gap sampling so that low-BER channels cost O(errors), not
// O(bits). Each error event optionally extends into a burst via the DFE
// propagation model: after a symbol decision error, each subsequent bit is
// also corrupted with probability BurstProb, mimicking decision feedback
// equalizer error propagation at the PAM4 physical layer (Section 2.2).
// Bursts are truncated at the unit (flit) boundary — the DFE resets with
// the next flit's training, so propagation never crosses images.
//
// The channel maintains a pre-drawn error-event schedule: the gap to the
// next error is sampled once and carried across unit boundaries as a
// residual, so the bit-error process is exact rather than truncated and
// re-drawn per flit. The schedule is what enables the error-event fast
// path: NextEvent tells a caller whether the next unit will be touched at
// all, and clean units advance the schedule in O(1) with zero RNG draws
// (Advance) — the corruption outcome is identical whether a unit is
// scanned byte-level or skipped.
//
// A Channel is not safe for concurrent use; give each simulated link its
// own (use RNG.Split for reproducible derivation).
type Channel struct {
	// BER is the independent bit error rate (e.g. 1e-6 for CXL 3.0).
	BER float64
	// BurstProb is the probability that an error event corrupts the next
	// bit as well (geometric burst lengths with mean 1/(1-BurstProb)).
	// Zero gives a pure iid channel.
	BurstProb float64

	rng *RNG

	// next is the schedule: the number of bits that will pass through the
	// channel before the next error event (NoEvent if none ever will).
	// Valid only once primed.
	next   int
	primed bool

	// Stats accumulated across Corrupt calls.
	BitsSeen     uint64
	BitsFlipped  uint64
	ErrorEvents  uint64 // independent error events (bursts count once)
	UnitsTouched uint64 // buffers with at least one flipped bit
}

// NewChannel returns a channel with the given error parameters and RNG.
func NewChannel(ber, burstProb float64, rng *RNG) *Channel {
	return &Channel{BER: ber, BurstProb: burstProb, rng: rng}
}

// prime draws the initial error gap lazily, so construction stays free of
// RNG consumption.
func (ch *Channel) prime() {
	if !ch.primed {
		ch.primed = true
		ch.next = ch.rng.Geometric(ch.BER)
	}
}

// NextEvent returns the number of clean bits that will pass through the
// channel before the next scheduled error event, or NoEvent if no error
// will ever fire. Consulting the schedule draws at most the one geometric
// gap Corrupt would have drawn anyway, so it never perturbs determinism.
func (ch *Channel) NextEvent() int {
	if ch.BER <= 0 {
		return NoEvent
	}
	ch.prime()
	return ch.next
}

// Advance accounts a clean span of bits without inspecting an image,
// consuming the schedule in O(1) with no RNG draws. The caller must have
// checked NextEvent() >= bits; advancing across a scheduled error event
// would silently drop it, so that is a panic.
func (ch *Channel) Advance(bits int) {
	ch.BitsSeen += uint64(bits)
	if ch.BER <= 0 {
		return
	}
	ch.prime()
	if ch.next < bits {
		panic("phy: Advance across a scheduled error event")
	}
	if ch.next != NoEvent {
		ch.next -= bits
	}
}

// SetBER changes the channel's bit error rate mid-stream — the primitive
// behind scripted fault campaigns (lane degrade, transient BER storms).
// The geometric error process is memoryless, so the statistically correct
// rate change redraws the pending gap at the new rate: exactly one RNG
// draw from this channel's own stream, at the moment of the change. A
// channel that has not yet primed simply primes at the new rate on first
// use. Callers on the fast==byte-level differential contract must invoke
// SetBER at identical points of the consumption stream in both runs
// (scheduling it as a simulation event does exactly that).
func (ch *Channel) SetBER(ber float64) {
	ch.BER = ber
	if ch.primed {
		ch.next = ch.rng.Geometric(ber)
	}
}

// Corrupt injects bit errors into buf in place per the schedule and
// returns the number of bits flipped. Clean buffers (no event scheduled
// within) cost O(1).
func (ch *Channel) Corrupt(buf []byte) int {
	return ch.strike(buf, len(buf)*8)
}

// Traverse advances a bits-wide unit through the error schedule without an
// image, returning the number of bits that would have been flipped. It
// consumes exactly the RNG draws Corrupt would, so schedule-only Monte
// Carlo (flit error rate estimation) stays bit-compatible with full
// image-level simulation.
func (ch *Channel) Traverse(bits int) int {
	return ch.strike(nil, bits)
}

// strike runs one unit of bits through the channel, flipping bits in buf
// when non-nil.
func (ch *Channel) strike(buf []byte, bits int) int {
	ch.BitsSeen += uint64(bits)
	if ch.BER <= 0 {
		return 0
	}
	ch.prime()
	if ch.next >= bits {
		if ch.next != NoEvent {
			ch.next -= bits
		}
		return 0
	}
	flipped := 0
	pos := ch.next
	for pos < bits {
		ch.ErrorEvents++
		// Flip the seed bit, then extend the burst while the DFE model
		// keeps propagating (never past the unit boundary).
		flip(buf, pos)
		flipped++
		ch.BitsFlipped++
		for ch.BurstProb > 0 && pos+1 < bits && ch.rng.Float64() < ch.BurstProb {
			pos++
			flip(buf, pos)
			flipped++
			ch.BitsFlipped++
		}
		gap := ch.rng.Geometric(ch.BER)
		if gap >= NoEvent-pos-1 { // avoid overflow on MaxInt gaps
			pos = NoEvent
			break
		}
		pos += 1 + gap
	}
	// Carry the residual gap across the unit boundary so inter-unit error
	// spacing follows the exact geometric process.
	if pos == NoEvent {
		ch.next = NoEvent
	} else {
		ch.next = pos - bits
	}
	ch.UnitsTouched++
	return flipped
}

func flip(buf []byte, pos int) {
	if buf != nil {
		buf[pos/8] ^= 1 << (7 - pos%8)
	}
}

// FlitErrorRate returns the observed fraction of corrupted buffers, for
// cross-checking against the analytic FER of Eq. 1.
func (ch *Channel) FlitErrorRate(unitBits int) float64 {
	if ch.BitsSeen == 0 {
		return 0
	}
	units := ch.BitsSeen / uint64(unitBits)
	if units == 0 {
		return 0
	}
	return float64(ch.UnitsTouched) / float64(units)
}
