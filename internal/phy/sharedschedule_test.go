package phy

import "testing"

// TestSharedScheduleMatchesChannelStream: driving a SharedSchedule with
// the grant-then-per-unit policy consumes exactly the stream a bare
// Channel consumes unit-by-unit — same flip counts per unit, same
// residual, same RNG draws — whenever the policy's consumption order is
// unit-sequential (one traversal at a time).
func TestSharedScheduleMatchesChannelStream(t *testing.T) {
	const unit = 2048
	const hops = 5
	const traversals = 4000
	for _, ber := range []float64{1e-4, 1e-5, 5e-6} {
		s := NewSharedSchedule(ber, 0.4, NewRNG(7), unit)
		ref := NewChannel(ber, 0.4, NewRNG(7))

		for i := 0; i < traversals; i++ {
			var want [hops]int
			for h := 0; h < hops; h++ {
				want[h] = ref.Traverse(unit)
			}
			if s.Begin(hops) {
				for h := 0; h < hops; h++ {
					if want[h] != 0 {
						t.Fatalf("ber %g traversal %d: grant given but reference flips %d bits at hop %d", ber, i, want[h], h)
					}
				}
				continue
			}
			dirty := false
			for h := 0; h < hops; h++ {
				var got int
				if s.CrossClean() {
					s.Advance()
				} else {
					got = s.Traverse()
				}
				if got != want[h] {
					t.Fatalf("ber %g traversal %d hop %d: %d flips, reference %d", ber, i, h, got, want[h])
				}
				if got > 0 {
					dirty = true
				}
			}
			if !dirty {
				t.Fatalf("ber %g traversal %d: grant refused but traversal clean", ber, i)
			}
		}
		if s.Channel().BitsSeen != ref.BitsSeen || s.Channel().BitsFlipped != ref.BitsFlipped ||
			s.Channel().ErrorEvents != ref.ErrorEvents {
			t.Fatalf("ber %g: accounting diverged: %+v vs BitsSeen=%d BitsFlipped=%d ErrorEvents=%d",
				ber, s.Channel(), ref.BitsSeen, ref.BitsFlipped, ref.ErrorEvents)
		}
	}
}

// TestSharedScheduleCorruptPlacesFlipsOnAssignedHop: a dirty traversal's
// flips land on exactly the crossing the schedule assigns them, at the
// same bit positions a unit-sequential Corrupt would produce.
func TestSharedScheduleCorruptPlacesFlipsOnAssignedHop(t *testing.T) {
	const unit = 2048
	const hops = 3
	s := NewSharedSchedule(2e-4, 0.4, NewRNG(21), unit)
	ref := NewChannel(2e-4, 0.4, NewRNG(21))

	dirtySeen := 0
	for i := 0; i < 3000; i++ {
		var want [hops][]byte
		for h := 0; h < hops; h++ {
			buf := make([]byte, unit/8)
			ref.Corrupt(buf)
			want[h] = buf
		}
		if s.Begin(hops) {
			continue
		}
		dirtySeen++
		for h := 0; h < hops; h++ {
			buf := make([]byte, unit/8)
			if s.CrossClean() {
				s.Advance()
			} else if s.Corrupt(buf) > 0 {
				// flips recorded in buf
			}
			for b := range buf {
				if buf[b] != want[h][b] {
					t.Fatalf("traversal %d hop %d byte %d: %02x, reference %02x", i, h, b, buf[b], want[h][b])
				}
			}
		}
	}
	if dirtySeen == 0 {
		t.Fatal("no dirty traversal exercised")
	}
}

// TestSharedScheduleZeroBER: a clean channel grants every traversal and
// still accounts bits.
func TestSharedScheduleZeroBER(t *testing.T) {
	s := NewSharedSchedule(0, 0, NewRNG(1), 2048)
	for i := 0; i < 10; i++ {
		if !s.Begin(7) {
			t.Fatal("zero-BER schedule refused a grant")
		}
	}
	if s.Channel().BitsSeen != 10*7*2048 {
		t.Fatalf("BitsSeen %d", s.Channel().BitsSeen)
	}
}

// TestSharedScheduleGuards pins the constructor and Begin panics.
func TestSharedScheduleGuards(t *testing.T) {
	for name, fn := range map[string]func(){
		"unit": func() { NewSharedSchedule(1e-6, 0, NewRNG(1), 0) },
		"hops": func() { NewSharedSchedule(1e-6, 0, NewRNG(1), 8).Begin(0) },
		"buf":  func() { NewSharedSchedule(1e-6, 0, NewRNG(1), 16).Corrupt(make([]byte, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestCleanCrossingsEpochSkipMatchesStepwise: jumping clean epochs with
// CleanCrossings/AdvanceCrossings consumes exactly the stream a
// crossing-by-crossing walk consumes — same struck crossings, same flip
// counts, same channel accounting.
func TestCleanCrossingsEpochSkipMatchesStepwise(t *testing.T) {
	const unit = 2048
	const crossings = 60000
	s := NewSharedSchedule(1e-5, 0.4, NewRNG(9), unit)
	ref := NewChannel(1e-5, 0.4, NewRNG(9))
	struck := 0
	for c := 0; c < crossings; {
		k := s.CleanCrossings(crossings - c)
		for j := 0; j < k; j++ {
			if got := ref.Traverse(unit); got != 0 {
				t.Fatalf("crossing %d: declared clean but reference flips %d bits", c+j, got)
			}
		}
		s.AdvanceCrossings(k)
		c += k
		if c < crossings {
			want := ref.Traverse(unit)
			got := s.Traverse()
			if got != want || got == 0 {
				t.Fatalf("crossing %d: struck flips %d, reference %d (want equal, nonzero)", c, got, want)
			}
			struck++
			c++
		}
	}
	if struck == 0 {
		t.Fatal("no struck crossing exercised")
	}
	sc := s.Channel()
	if sc.BitsSeen != ref.BitsSeen || sc.BitsFlipped != ref.BitsFlipped || sc.ErrorEvents != ref.ErrorEvents {
		t.Fatalf("accounting diverged: BitsSeen %d/%d BitsFlipped %d/%d ErrorEvents %d/%d",
			sc.BitsSeen, ref.BitsSeen, sc.BitsFlipped, ref.BitsFlipped, sc.ErrorEvents, ref.ErrorEvents)
	}
}

// TestCleanCrossingsZeroBER: a schedule that will never fire reports the
// cap, and advancing by it consumes exactly that many crossings.
func TestCleanCrossingsZeroBER(t *testing.T) {
	s := NewSharedSchedule(0, 0, NewRNG(1), 2048)
	if n := s.CleanCrossings(123); n != 123 {
		t.Fatalf("CleanCrossings %d, want the cap 123", n)
	}
	s.AdvanceCrossings(123)
	s.AdvanceCrossings(0) // no-op
	if s.Channel().BitsSeen != 123*2048 {
		t.Fatalf("BitsSeen %d", s.Channel().BitsSeen)
	}
}
