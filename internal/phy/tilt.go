package phy

import "math"

// Importance-sampling support: exponential tilting of the error-event
// schedule. A Channel built at a *proposal* BER q > p draws its geometric
// gaps from the tilted process; an estimator that reweights each unit
// (flit) trajectory by the exact likelihood ratio of the drawn gaps
// recovers unbiased estimates under the *true* BER p. Because the
// schedule is the only source of randomness and both processes are iid
// Bernoulli bit streams, the ratio over one bits-wide unit with `flips`
// flipped bits collapses to the closed form
//
//	W = (p/q)^flips × ((1-p)/(1-q))^(bits-flips)
//
// which is exactly the product of the per-gap ratios of every gap the
// schedule drew inside the unit, with boundary-straddling residual gaps
// splitting across units by memorylessness (see TestUnitLogLRTelescopes
// and DESIGN.md §8 for the derivation). The tilting hook therefore leaves
// Channel — and the whole PR 2 fast path — untouched: NextEvent/Advance/
// Traverse run at the proposal rate, and the caller folds UnitLogLR over
// per-unit flip counts.

// TiltedChannel returns the importance-sampling proposal channel for a
// true-BER process: an ordinary schedule-driven Channel whose gaps are
// drawn at proposalBER instead of trueBER. Burst extension is disabled —
// the likelihood-ratio algebra covers the iid channel, matching the
// schedule-only Monte-Carlo estimators. It panics if the proposal would
// undersample the truth (proposal < trueBER) or if either rate is outside
// (0,1); equal rates are allowed and degrade to plain Monte-Carlo with
// unit weights.
func TiltedChannel(trueBER, proposalBER float64, rng *RNG) *Channel {
	if trueBER <= 0 || trueBER >= 1 || proposalBER >= 1 {
		panic("phy: TiltedChannel needs BERs in (0,1)")
	}
	if proposalBER < trueBER {
		panic("phy: TiltedChannel proposal below the true BER")
	}
	return NewChannel(proposalBER, 0, rng)
}

// GapLogLR returns the log likelihood ratio of one drawn schedule gap —
// `gap` clean bits followed by an error event — between the true process
// at BER p and the proposal at BER q:
//
//	log LR = log(p/q) + gap × [log(1-p) - log(1-q)]
//
// It exists to state (and test) the per-gap form the unit closed form
// telescopes from; estimators should fold UnitLogLR instead.
func GapLogLR(p, q float64, gap int) float64 {
	return math.Log(p/q) + float64(gap)*(math.Log1p(-p)-math.Log1p(-q))
}

// UnitLogLR returns the log likelihood ratio of one bits-wide unit
// trajectory with `flips` flipped bits between the true process at BER p
// and the proposal at BER q:
//
//	log W = flips × log(p/q) + (bits-flips) × [log(1-p) - log(1-q)]
//
// Under the proposal, E[exp(UnitLogLR)] = 1 per unit (weights sum to
// one), and E[exp(UnitLogLR) × 1{event}] is the true-BER event
// probability — the identities the rarevent estimators and their
// acceptance tests are built on. log1p keeps precision at the deep-tail
// BERs (≤1e-9) this exists for.
func UnitLogLR(p, q float64, bits, flips int) float64 {
	clean := math.Log1p(-p) - math.Log1p(-q)
	return float64(flips)*math.Log(p/q) + float64(bits-flips)*clean
}
