package phy

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	buckets := make([]int, 16)
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	want := float64(n) / 16
	for i, c := range buckets {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: %d (want ~%.0f)", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(8)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNonzeroByte(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 10000; i++ {
		if r.NonzeroByte() == 0 {
			t.Fatal("NonzeroByte returned 0")
		}
	}
}

func TestFill(t *testing.T) {
	r := NewRNG(11)
	for _, n := range []int{0, 1, 7, 8, 9, 255} {
		buf := make([]byte, n)
		r.Fill(buf)
		if n >= 32 {
			zero := 0
			for _, b := range buf {
				if b == 0 {
					zero++
				}
			}
			if zero > n/4 {
				t.Fatalf("Fill produced %d/%d zero bytes", zero, n)
			}
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(12)
	s := r.Split()
	// The split stream must differ from the parent's subsequent output.
	same := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream correlates: %d collisions", same)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(13)
	p := 0.01
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of geometric (failures before success)
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("geometric mean %.2f, want %.2f", mean, want)
	}
}

func TestGeometricEdges(t *testing.T) {
	r := NewRNG(14)
	if r.Geometric(0) != math.MaxInt {
		t.Error("p=0 should never fire")
	}
	if r.Geometric(-1) != math.MaxInt {
		t.Error("p<0 should never fire")
	}
	if r.Geometric(1) != 0 {
		t.Error("p=1 should fire immediately")
	}
}

func TestChannelZeroBER(t *testing.T) {
	ch := NewChannel(0, 0, NewRNG(1))
	buf := make([]byte, 256)
	for i := 0; i < 100; i++ {
		if ch.Corrupt(buf) != 0 {
			t.Fatal("zero-BER channel flipped a bit")
		}
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("buffer modified")
		}
	}
}

// The observed bit flip rate must match the configured BER.
func TestChannelBERCalibration(t *testing.T) {
	for _, ber := range []float64{1e-2, 1e-3, 1e-4} {
		ch := NewChannel(ber, 0, NewRNG(2))
		buf := make([]byte, 256)
		flips := 0
		trials := int(200 / ber / 2048) // aim for ~200 expected flips minimum
		if trials < 2000 {
			trials = 2000
		}
		for i := 0; i < trials; i++ {
			flips += ch.Corrupt(buf)
		}
		got := float64(flips) / float64(trials*2048)
		if math.Abs(got-ber)/ber > 0.15 {
			t.Errorf("BER %.0e: observed %.3e", ber, got)
		}
	}
}

// Observed flit error rate must match Eq. 1: FER = 1-(1-BER)^bits.
func TestChannelFlitErrorRateMatchesEq1(t *testing.T) {
	ber := 1e-4
	ch := NewChannel(ber, 0, NewRNG(3))
	buf := make([]byte, 256)
	const trials = 100000
	for i := 0; i < trials; i++ {
		for j := range buf {
			buf[j] = 0
		}
		ch.Corrupt(buf)
	}
	got := ch.FlitErrorRate(2048)
	want := 1 - math.Pow(1-ber, 2048)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("FER %.4f, want %.4f", got, want)
	}
}

func TestChannelBurstExtension(t *testing.T) {
	// With BurstProb=0.5, mean burst length is 2. Verify flips-per-event.
	ch := NewChannel(1e-3, 0.5, NewRNG(4))
	buf := make([]byte, 256)
	for i := 0; i < 50000; i++ {
		ch.Corrupt(buf)
	}
	if ch.ErrorEvents == 0 {
		t.Fatal("no error events")
	}
	perEvent := float64(ch.BitsFlipped) / float64(ch.ErrorEvents)
	if perEvent < 1.8 || perEvent > 2.2 {
		t.Errorf("burst mean %.2f bits/event, want ~2.0", perEvent)
	}
}

func TestChannelBurstsAreContiguous(t *testing.T) {
	// With a high burst probability and a single event, flipped bits must
	// be contiguous.
	for seed := uint64(0); seed < 50; seed++ {
		ch := NewChannel(1e-6, 0.9, NewRNG(seed))
		buf := make([]byte, 4096)
		n := ch.Corrupt(buf)
		if n == 0 || ch.ErrorEvents != 1 {
			continue
		}
		first, last, count := -1, -1, 0
		for i := 0; i < len(buf)*8; i++ {
			if buf[i/8]&(1<<(7-i%8)) != 0 {
				if first < 0 {
					first = i
				}
				last = i
				count++
			}
		}
		if count != last-first+1 {
			t.Fatalf("seed %d: burst not contiguous (%d bits in span %d)", seed, count, last-first+1)
		}
	}
}

func TestFlitErrorRateNoData(t *testing.T) {
	ch := NewChannel(1e-6, 0, NewRNG(5))
	if ch.FlitErrorRate(2048) != 0 {
		t.Error("FlitErrorRate on fresh channel should be 0")
	}
}

func BenchmarkCorruptLowBER(b *testing.B) {
	ch := NewChannel(1e-6, 0, NewRNG(6))
	buf := make([]byte, 256)
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		ch.Corrupt(buf)
	}
}

func BenchmarkCorruptHighBER(b *testing.B) {
	ch := NewChannel(1e-3, 0.3, NewRNG(7))
	buf := make([]byte, 256)
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		ch.Corrupt(buf)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(8)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= r.Uint64()
	}
	sinkU = acc
}

var sinkU uint64
