// Package phy models the physical layer of a CXL 3.0 link: a bit-error
// channel parameterized by BER with an optional burst-extension model that
// mimics DFE (Decision Feedback Equalization) error propagation, where one
// wrong symbol decision corrupts subsequent symbols (Section 2.2).
//
// Everything is driven by a deterministic, splittable xoshiro256** RNG so
// that every experiment in the repository is reproducible from a seed.
package phy

import "math"

// RNG is a xoshiro256** pseudo-random generator. It is deterministic,
// fast, and splittable: Split derives an independent stream, letting each
// simulated link own its own error process while the whole experiment stays
// reproducible from one master seed.
//
// An RNG is not safe for concurrent use; Split one per goroutine/entity.
type RNG struct {
	s [4]uint64
}

// splitmix64 expands a seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// NewRNG returns a generator seeded from seed. Any seed (including 0) is
// valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("phy: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Byte returns a uniform random byte.
func (r *RNG) Byte() byte { return byte(r.Uint64()) }

// NonzeroByte returns a uniform random byte in [1, 255].
func (r *RNG) NonzeroByte() byte { return byte(r.Intn(255) + 1) }

// Fill fills buf with random bytes.
func (r *RNG) Fill(buf []byte) {
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			buf[i+j] = byte(v >> (8 * j))
		}
	}
	for ; i < len(buf); i++ {
		buf[i] = byte(r.Uint64())
	}
}

// Split returns a new independent generator derived from this one's stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Geometric samples the number of Bernoulli(p) failures before the first
// success — i.e., the gap to the next bit error in an iid-BER channel. For
// p <= 0 it returns math.MaxInt (no error ever); p >= 1 returns 0.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 {
		return math.MaxInt
	}
	if p >= 1 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	g := math.Log(u) / math.Log1p(-p)
	if g >= float64(math.MaxInt64) {
		return math.MaxInt
	}
	return int(g)
}
