package runner

import (
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if sb.String() != want {
		t.Fatalf("CSV %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVRaggedRow(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, []string{"a", "b"}, [][]string{{"1"}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); !strings.Contains(got, `"x": 1`) {
		t.Fatalf("JSON %q missing field", got)
	}
}

func TestSaveCSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	if err := SaveCSV(dir+"/out.csv", []string{"h"}, [][]string{{"v"}}); err != nil {
		t.Fatal(err)
	}
	if err := SaveJSON(dir+"/out.json", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
}
