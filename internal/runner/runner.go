// Package runner is the parallel sharded experiment runner: it takes a job
// set — a protocol × levels × BER × seed grid, or N Monte-Carlo trials —
// shards it across a configurable worker pool, and merges the per-shard
// results deterministically.
//
// Every simulation substrate in this repository is single-threaded by
// design (one sim.Engine, one phy.Channel RNG stream per fabric), so the
// unit of parallelism is the *shard*: an independent job with its own
// engine and its own RNG stream. The two invariants the runner maintains:
//
//  1. Deterministic seed derivation. A shard's RNG seed is a pure function
//     of the pool's base seed and the shard index (ShardSeed), never of
//     scheduling. The shard count is a property of the job set, not of the
//     worker count.
//
//  2. Order-independent merging. Map returns results indexed by shard, in
//     shard order, regardless of the order workers finish them. Reducers
//     that fold the slice (or that merge commutatively, like Monte-Carlo
//     counter sums) therefore produce bit-identical aggregates at any
//     worker count.
//
// Together these make `workers=1`, `workers=4`, and `workers=NumCPU` give
// byte-for-byte the same output — parallelism is purely a wall-clock
// optimization, never a reproducibility hazard.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Shard identifies one unit of a sharded job set.
type Shard struct {
	// Index is the 0-based shard index within the job set.
	Index int
	// Of is the total number of shards in the job set.
	Of int
	// Seed is the shard's deterministic RNG seed, derived from the pool's
	// base seed and Index by ShardSeed.
	Seed uint64
}

// ShardSeed derives the RNG seed of shard `index` from a base seed. The
// derivation is a pure function (splitmix64-style finalizing mix), so any
// worker count — and any execution order — sees the same seed for the same
// shard. Distinct indices give decorrelated seeds even for adjacent bases.
func ShardSeed(base uint64, index int) uint64 {
	x := base + 0x9E3779B97F4A7C15*(uint64(index)+1)
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// Pool configures the sharded worker pool. The zero value is usable: it
// runs with GOMAXPROCS workers and base seed 0.
type Pool struct {
	// Workers is the number of concurrent workers. Zero or negative means
	// runtime.GOMAXPROCS(0). Workers only bounds concurrency; it never
	// changes results.
	Workers int
	// BaseSeed is the master seed every shard seed derives from.
	BaseSeed uint64
	// Progress, when non-nil, is called after each shard completes with
	// the number of completed shards and the total. Calls are serialized
	// but may come from worker goroutines in any shard order.
	Progress func(done, total int)
}

// workers resolves the effective worker count for n shards.
func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn over n shards on the pool and returns the results in shard
// order. Each invocation receives a Shard carrying its deterministic seed.
// The first error cancels the remaining shards and is returned (wrapped
// with its shard index); a canceled context likewise stops dispatch and
// returns ctx.Err(). On error the partial results are discarded — Map
// either returns the complete, deterministic result set or nothing.
func Map[T any](ctx context.Context, p Pool, n int, fn func(context.Context, Shard) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative shard count %d", n)
	}
	if n == 0 {
		return []T{}, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	jobs := make(chan int)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	progress := func() {
		mu.Lock()
		done++
		if p.Progress != nil {
			p.Progress(done, n)
		}
		mu.Unlock()
	}

	for w := 0; w < p.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				res, err := fn(ctx, Shard{Index: i, Of: n, Seed: ShardSeed(p.BaseSeed, i)})
				if err != nil {
					fail(fmt.Errorf("runner: shard %d/%d: %w", i, n, err))
					return
				}
				results[i] = res
				progress()
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Split partitions `total` trials across `shards` as evenly as possible
// (the first total%shards shards get one extra). The split depends only on
// the two arguments, keeping Monte-Carlo shard workloads — and therefore
// merged counts — independent of the worker count.
func Split(total, shards int) []int {
	if shards <= 0 {
		panic("runner: Split needs at least one shard")
	}
	if total < 0 {
		panic("runner: Split with negative total")
	}
	out := make([]int, shards)
	base, extra := total/shards, total%shards
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// Reduce folds results in shard order. Because Map returns results in
// shard order already, any fold — commutative or not — is deterministic
// across worker counts.
func Reduce[T, A any](results []T, init A, merge func(A, T) A) A {
	acc := init
	for _, r := range results {
		acc = merge(acc, r)
	}
	return acc
}
