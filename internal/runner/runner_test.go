package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/phy"
)

// TestShardSeedDeterministic: the derivation is a pure function and
// distinct indices give distinct, decorrelated seeds.
func TestShardSeedDeterministic(t *testing.T) {
	if ShardSeed(42, 7) != ShardSeed(42, 7) {
		t.Fatal("ShardSeed is not deterministic")
	}
	seen := make(map[uint64]int)
	for base := uint64(0); base < 4; base++ {
		for i := 0; i < 1000; i++ {
			s := ShardSeed(base, i)
			if j, dup := seen[s]; dup {
				t.Fatalf("seed collision: base=%d index=%d equals earlier %d", base, i, j)
			}
			seen[s] = i
		}
	}
}

// mcShard is a miniature Monte-Carlo shard: it consumes the shard's RNG
// stream and returns a value that depends on every draw, so any seed or
// scheduling difference shows up in the result.
func mcShard(_ context.Context, s Shard) (uint64, error) {
	rng := phy.NewRNG(s.Seed)
	var acc uint64
	for i := 0; i < 1000; i++ {
		acc = acc*31 + rng.Uint64()
	}
	return acc, nil
}

// TestMapDeterministicAcrossWorkers: the headline invariant — identical
// results at workers=1, workers=4, and workers=NumCPU.
func TestMapDeterministicAcrossWorkers(t *testing.T) {
	const n = 64
	ctx := context.Background()
	ref, err := Map(ctx, Pool{Workers: 1, BaseSeed: 99}, n, mcShard)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.NumCPU(), 0} {
		got, err := Map(ctx, Pool{Workers: w, BaseSeed: 99}, n, mcShard)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d shard %d: got %#x want %#x", w, i, got[i], ref[i])
			}
		}
	}
}

// TestMapShardOrder: results land at their shard index regardless of the
// completion order.
func TestMapShardOrder(t *testing.T) {
	got, err := Map(context.Background(), Pool{Workers: 8}, 100, func(_ context.Context, s Shard) (int, error) {
		if s.Of != 100 {
			return 0, fmt.Errorf("shard count %d, want 100", s.Of)
		}
		return s.Index * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("index %d holds %d", i, v)
		}
	}
}

// TestMapError: a failing shard cancels the run, the error names the
// shard, and no partial results leak.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	got, err := Map(context.Background(), Pool{Workers: 4}, 1000, func(ctx context.Context, s Shard) (int, error) {
		ran.Add(1)
		if s.Index == 5 {
			return 0, boom
		}
		return s.Index, nil
	})
	if got != nil {
		t.Fatal("Map returned partial results alongside an error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the shard failure", err)
	}
	if want := "shard 5/1000"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the failing shard (%s)", err, want)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d shards ran despite early failure", n)
	}
}

// TestMapCancellation: a canceled context stops dispatch promptly and
// surfaces context.Canceled.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	got, err := Map(ctx, Pool{Workers: 2}, 1000, func(ctx context.Context, s Shard) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return s.Index, nil
	})
	if got != nil {
		t.Fatal("Map returned results after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d shards ran despite cancellation", n)
	}
}

// TestMapPreCanceled: an already-canceled context runs nothing.
func TestMapPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	if _, err := Map(ctx, Pool{}, 50, func(context.Context, Shard) (int, error) {
		ran.Add(1)
		return 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d shards ran on a pre-canceled context", n)
	}
}

// TestMapProgress: the callback sees every completion and ends at
// done == total.
func TestMapProgress(t *testing.T) {
	var calls atomic.Int64
	var last atomic.Int64
	_, err := Map(context.Background(), Pool{
		Workers: 4,
		Progress: func(done, total int) {
			calls.Add(1)
			if total != 30 {
				t.Errorf("total %d, want 30", total)
			}
			last.Store(int64(done))
		},
	}, 30, func(_ context.Context, s Shard) (int, error) { return s.Index, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 30 || last.Load() != 30 {
		t.Fatalf("progress calls=%d last done=%d, want 30/30", calls.Load(), last.Load())
	}
}

// TestMapEmpty: zero shards is a valid no-op; negative is an error.
func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), Pool{}, 0, mcShard)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
	if _, err := Map(context.Background(), Pool{}, -1, mcShard); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestSplit: quotas sum to the total and differ by at most one.
func TestSplit(t *testing.T) {
	for _, tc := range []struct{ total, shards int }{
		{100, 7}, {7, 100}, {0, 3}, {64, 64}, {1, 1},
	} {
		q := Split(tc.total, tc.shards)
		if len(q) != tc.shards {
			t.Fatalf("Split(%d,%d): %d quotas", tc.total, tc.shards, len(q))
		}
		sum, min, max := 0, q[0], q[0]
		for _, v := range q {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if sum != tc.total || max-min > 1 {
			t.Fatalf("Split(%d,%d) = %v: sum=%d spread=%d", tc.total, tc.shards, q, sum, max-min)
		}
	}
}

// TestReduce: fold runs in shard order.
func TestReduce(t *testing.T) {
	got := Reduce([]int{1, 2, 3}, "", func(a string, v int) string {
		return fmt.Sprintf("%s%d", a, v)
	})
	if got != "123" {
		t.Fatalf("Reduce order: %q", got)
	}
}
