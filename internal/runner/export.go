package runner

// Result export: every sweep driver serializes its merged aggregates
// through these two writers so CSV and JSON outputs stay uniform across
// the CLIs (cmd/sweep, cmd/rxlsim, cmd/fitcalc).

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON writes v as indented JSON followed by a newline.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteCSV writes a header row followed by the data rows. Every row must
// have the same width as the header.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("runner: CSV row %d has %d fields, header has %d", i, len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes header+rows to a file at path (creating or truncating).
func SaveCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, header, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveJSON writes v as indented JSON to a file at path.
func SaveJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
