package workload

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func mustGenerate(t *testing.T, spec Spec, w, h int, seed uint64) []Flow {
	t.Helper()
	flows, err := Generate(spec, w, h, seed)
	if err != nil {
		t.Fatalf("Generate(%+v, %dx%d): %v", spec, w, h, err)
	}
	return flows
}

// assertFlowInvariants checks the cross-generator contract: in-bounds,
// no self-flows, no duplicate (src,dst) pairs.
func assertFlowInvariants(t *testing.T, flows []Flow, w, h int) {
	t.Helper()
	if len(flows) == 0 {
		t.Fatal("empty flow set")
	}
	seen := make(map[Flow]bool)
	for _, f := range flows {
		if f.SrcX < 0 || f.SrcX >= w || f.SrcY < 0 || f.SrcY >= h ||
			f.DstX < 0 || f.DstX >= w || f.DstY < 0 || f.DstY >= h {
			t.Fatalf("flow %+v outside %dx%d", f, w, h)
		}
		if f.SrcX == f.DstX && f.SrcY == f.DstY {
			t.Fatalf("self-flow %+v", f)
		}
		if seen[f] {
			t.Fatalf("duplicate flow %+v", f)
		}
		seen[f] = true
	}
}

func TestGenerateDeterminism(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindUniform, Flows: 12},
		{Kind: KindZipf, Flows: 12, Skew: 1.5},
		{Kind: KindTranspose},
		{Kind: KindBitReverse},
		{Kind: KindSingleSink, SinkX: 1, SinkY: 1},
	} {
		t.Run(spec.Kind, func(t *testing.T) {
			a := mustGenerate(t, spec, 4, 4, 42)
			b := mustGenerate(t, spec, 4, 4, 42)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same (spec,geometry,seed) produced different flows")
			}
			assertFlowInvariants(t, a, 4, 4)
		})
	}

	// Random kinds respond to the seed; permutations ignore it.
	u1 := mustGenerate(t, Spec{Kind: KindUniform, Flows: 12}, 4, 4, 1)
	u2 := mustGenerate(t, Spec{Kind: KindUniform, Flows: 12}, 4, 4, 2)
	if reflect.DeepEqual(u1, u2) {
		t.Error("uniform flows identical across seeds")
	}
	p1 := mustGenerate(t, Spec{Kind: KindTranspose}, 4, 4, 1)
	p2 := mustGenerate(t, Spec{Kind: KindTranspose}, 4, 4, 2)
	if !reflect.DeepEqual(p1, p2) {
		t.Error("transpose flows vary with seed")
	}
}

func TestZipfSkew(t *testing.T) {
	// With strong skew, node 0 must be the modal destination by a wide
	// margin: count destination hits over many draws.
	flows := mustGenerate(t, Spec{Kind: KindZipf, Flows: 100, Skew: 2}, 8, 8, 7)
	assertFlowInvariants(t, flows, 8, 8)
	hits := make(map[int]int)
	for _, f := range flows {
		hits[f.DstY*8+f.DstX]++
	}
	// Distinct-pair dedup caps node 0 at 63 appearances; with skew 2 over
	// 64 nodes ~43% of raw draws hit node 0, so well above any other node.
	best, bestID := 0, -1
	for id, c := range hits {
		if c > best {
			best, bestID = c, id
		}
	}
	if bestID != 0 {
		t.Errorf("hottest destination is node %d (%d hits), want node 0 (%d hits)", bestID, best, hits[0])
	}
	if hits[0] < 3*hits[1] && hits[0] < 20 {
		t.Errorf("hot-spot not skewed: node0=%d node1=%d", hits[0], hits[1])
	}
}

func TestTransposeAndBitReverse(t *testing.T) {
	flows := mustGenerate(t, Spec{Kind: KindTranspose}, 3, 3, 0)
	assertFlowInvariants(t, flows, 3, 3)
	if len(flows) != 6 { // 9 nodes minus 3 diagonal fixed points
		t.Fatalf("transpose produced %d flows, want 6", len(flows))
	}
	for _, f := range flows {
		if f.DstX != f.SrcY || f.DstY != f.SrcX {
			t.Errorf("flow %+v is not a transpose", f)
		}
	}

	flows = mustGenerate(t, Spec{Kind: KindBitReverse}, 4, 4, 0)
	assertFlowInvariants(t, flows, 4, 4)
	// 16 nodes, 4-bit reversal: fixed points are ids whose nibble is a
	// palindrome (0000,0110,1001,1111) — 12 flows remain.
	if len(flows) != 12 {
		t.Fatalf("bitrev produced %d flows, want 12", len(flows))
	}
	for _, f := range flows {
		id := f.SrcY*4 + f.SrcX
		rev := f.DstY*4 + f.DstX
		wantRev := (id&1)<<3 | (id&2)<<1 | (id&4)>>1 | (id&8)>>3
		if rev != wantRev {
			t.Errorf("node %d maps to %d, want %d", id, rev, wantRev)
		}
	}
}

func TestSingleSink(t *testing.T) {
	flows := mustGenerate(t, Spec{Kind: KindSingleSink, SinkX: 2, SinkY: 1}, 4, 3, 0)
	assertFlowInvariants(t, flows, 4, 3)
	if len(flows) != 11 {
		t.Fatalf("singlesink produced %d flows, want 11", len(flows))
	}
	for _, f := range flows {
		if f.DstX != 2 || f.DstY != 1 {
			t.Errorf("flow %+v does not target the sink", f)
		}
	}
}

func TestReplay(t *testing.T) {
	spec := Spec{Kind: KindReplay, Trace: "1 0 40\n2 0 40\n3 0\n0 3 5\n1 0 2\n"}
	flows := mustGenerate(t, spec, 2, 2, 0)
	assertFlowInvariants(t, flows, 2, 2)
	want := []Flow{{SrcX: 1, DstX: 0}, {SrcX: 0, SrcY: 1, DstX: 0}, {SrcX: 1, SrcY: 1, DstX: 0}, {SrcX: 0, DstX: 1, DstY: 1}}
	if !reflect.DeepEqual(flows, want) {
		t.Fatalf("replay flows = %+v, want %+v", flows, want)
	}
	counts, err := ReplayCounts(spec, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate "1 0 2" record merges into the first 1→0 occurrence.
	if !reflect.DeepEqual(counts, []int{42, 40, 1, 5}) {
		t.Fatalf("replay counts = %v", counts)
	}

	if c, err := ReplayCounts(Spec{Kind: KindUniform}, 2, 2); c != nil || err != nil {
		t.Errorf("non-replay counts = %v, %v", c, err)
	}
}

func TestGenerateErrors(t *testing.T) {
	incompatible := []struct {
		name string
		spec Spec
		w, h int
	}{
		{"transpose non-square", Spec{Kind: KindTranspose}, 4, 3},
		{"bitrev non-pow2", Spec{Kind: KindBitReverse}, 3, 3},
		{"sink outside", Spec{Kind: KindSingleSink, SinkX: 9}, 2, 2},
		{"replay node outside", Spec{Kind: KindReplay, Trace: "0 99\n"}, 2, 2},
		{"too many distinct flows", Spec{Kind: KindUniform, Flows: 100}, 2, 2},
		{"single node", Spec{Kind: KindUniform}, 1, 1},
	}
	for _, c := range incompatible {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Generate(c.spec, c.w, c.h, 0); !errors.Is(err, ErrIncompatible) {
				t.Errorf("err = %v, want ErrIncompatible", err)
			}
		})
	}

	invalid := []struct {
		name string
		spec Spec
	}{
		{"empty kind", Spec{}},
		{"unknown kind", Spec{Kind: "tornado"}},
		{"negative skew", Spec{Kind: KindZipf, Skew: -1}},
		{"skew on uniform", Spec{Kind: KindUniform, Skew: 1}},
		{"params on transpose", Spec{Kind: KindTranspose, Flows: 3}},
		{"replay without trace", Spec{Kind: KindReplay}},
		{"replay bad trace", Spec{Kind: KindReplay, Trace: "x y\n"}},
	}
	for _, c := range invalid {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Generate(c.spec, 4, 4, 0); err == nil {
				t.Error("no error")
			} else if errors.Is(err, ErrIncompatible) {
				t.Errorf("invalid spec reported as geometry incompatibility: %v", err)
			}
		})
	}

	if _, err := Generate(Spec{Kind: KindUniform}, 0, 4, 0); err == nil || !strings.Contains(err.Error(), "bad fabric") {
		t.Errorf("bad geometry err = %v", err)
	}
}

func TestNormalizedDefaults(t *testing.T) {
	n, err := Spec{Kind: KindZipf}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Skew != 1.2 || n.Flows != 8 {
		t.Errorf("zipf defaults = %+v", n)
	}
	if name := n.Name(); !strings.Contains(name, "zipf") {
		t.Errorf("name = %q", name)
	}
}
