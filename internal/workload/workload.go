// Package workload generates spatial traffic patterns — which (src,dst)
// node pairs of a W×H fabric exchange payloads — for scenario-diversity
// experiments. It complements internal/trace, which shapes load in time:
// a workload picks the routes, a trace generator picks the injection
// schedule along them.
//
// Every generator is a pure function of (spec, geometry, seed), so the
// same scenario cell reproduces the same flow set on the fast and
// byte-level simulation paths — the precondition for the differential
// contract. Specs are JSON-serializable with omitempty tags so they can
// ride inside rxld job specs and cache keys.
//
// The patterns are the standard adversarial suite of interconnect
// evaluation: uniform random, zipf hot-spot (a few nodes receive most
// traffic, like parameter servers in training jobs), transpose and
// bit-reverse permutations (worst cases for dimension-ordered routing),
// single-sink incast, and trace-driven replay of recorded flow lists.
package workload

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/phy"
	"repro/internal/trace"
)

// Workload kinds.
const (
	KindUniform    = "uniform"
	KindZipf       = "zipf"
	KindTranspose  = "transpose"
	KindBitReverse = "bitrev"
	KindSingleSink = "singlesink"
	KindReplay     = "replay"
)

// ErrIncompatible marks a (workload, geometry) pairing that cannot
// produce flows — transpose on a non-square fabric, bit-reverse on a
// non-power-of-two one, a replay trace naming nodes outside the grid.
// Matrix sweeps skip such cells instead of failing.
var ErrIncompatible = errors.New("workload: incompatible with fabric geometry")

// Flow is one (src,dst) route of a generated workload, in fabric
// coordinates.
type Flow struct {
	SrcX, SrcY int
	DstX, DstY int
}

// Spec selects and parameterizes a workload generator. The zero value is
// invalid; Normalized fills kind-appropriate defaults.
type Spec struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Skew is the zipf exponent (zipf only; default 1.2). Larger is
	// hotter.
	Skew float64 `json:"skew,omitempty"`
	// Flows is the number of distinct routes drawn (uniform/zipf only;
	// default 8). Distinct because routes sharing a (src,dst) pair would
	// share one link-layer peer.
	Flows int `json:"flows,omitempty"`
	// SinkX, SinkY locate the incast sink (singlesink only; default the
	// fabric center).
	SinkX int `json:"sinkX,omitempty"`
	SinkY int `json:"sinkY,omitempty"`
	// Trace is the inline replay trace ("src dst [count]" lines, node IDs
	// row-major y*W+x) for KindReplay.
	Trace string `json:"trace,omitempty"`
}

// Name identifies the workload in reports and differential-case names.
func (s Spec) Name() string {
	switch s.Kind {
	case KindZipf:
		return fmt.Sprintf("zipf(s=%g,n=%d)", s.Skew, s.Flows)
	case KindUniform:
		return fmt.Sprintf("uniform(n=%d)", s.Flows)
	case KindSingleSink:
		return fmt.Sprintf("singlesink(%d,%d)", s.SinkX, s.SinkY)
	default:
		return s.Kind
	}
}

// Normalized validates the spec and fills defaults, returning the
// canonical form used for cache keying.
func (s Spec) Normalized() (Spec, error) {
	switch s.Kind {
	case KindUniform, KindZipf:
		if s.Flows == 0 {
			s.Flows = 8
		}
		if s.Flows < 0 {
			return s, fmt.Errorf("workload: %s: negative flow count %d", s.Kind, s.Flows)
		}
		if s.Kind == KindZipf {
			if s.Skew == 0 {
				s.Skew = 1.2
			}
			if s.Skew < 0 {
				return s, fmt.Errorf("workload: zipf skew %g is negative", s.Skew)
			}
		} else if s.Skew != 0 {
			return s, fmt.Errorf("workload: skew is a zipf parameter")
		}
	case KindTranspose, KindBitReverse:
		if s.Skew != 0 || s.Flows != 0 {
			return s, fmt.Errorf("workload: %s takes no skew/flows parameters", s.Kind)
		}
	case KindSingleSink:
		if s.SinkX < 0 || s.SinkY < 0 {
			return s, fmt.Errorf("workload: negative sink (%d,%d)", s.SinkX, s.SinkY)
		}
	case KindReplay:
		if s.Trace == "" {
			return s, fmt.Errorf("workload: replay spec has no trace")
		}
	case "":
		return s, fmt.Errorf("workload: empty kind")
	default:
		return s, fmt.Errorf("workload: unknown kind %q", s.Kind)
	}
	return s, nil
}

// Generate produces the flow set of spec on a W×H fabric. The result is
// deterministic in (spec, w, h, seed), contains no self-flows and no
// duplicate (src,dst) pairs, and is never empty (an empty outcome is an
// error). Geometry mismatches return ErrIncompatible (wrapped).
func Generate(spec Spec, w, h int, seed uint64) ([]Flow, error) {
	spec, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("workload: bad fabric %dx%d", w, h)
	}
	n := w * h
	if n < 2 {
		return nil, fmt.Errorf("%w: %s needs at least two nodes", ErrIncompatible, spec.Kind)
	}

	switch spec.Kind {
	case KindUniform:
		return drawFlows(spec.Flows, w, h, seed, nil)
	case KindZipf:
		return drawFlows(spec.Flows, w, h, seed, zipfTable(n, spec.Skew))
	case KindTranspose:
		if w != h {
			return nil, fmt.Errorf("%w: transpose needs a square fabric, got %dx%d", ErrIncompatible, w, h)
		}
		var flows []Flow
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if x == y {
					continue // diagonal nodes map to themselves
				}
				flows = append(flows, Flow{SrcX: x, SrcY: y, DstX: y, DstY: x})
			}
		}
		return nonEmpty(flows, spec.Kind)
	case KindBitReverse:
		bits := 0
		for 1<<bits < n {
			bits++
		}
		if 1<<bits != n {
			return nil, fmt.Errorf("%w: bit-reverse needs a power-of-two node count, got %d", ErrIncompatible, n)
		}
		var flows []Flow
		for id := 0; id < n; id++ {
			rev := 0
			for b := 0; b < bits; b++ {
				if id&(1<<b) != 0 {
					rev |= 1 << (bits - 1 - b)
				}
			}
			if rev == id {
				continue
			}
			flows = append(flows, Flow{SrcX: id % w, SrcY: id / w, DstX: rev % w, DstY: rev / w})
		}
		return nonEmpty(flows, spec.Kind)
	case KindSingleSink:
		if spec.SinkX >= w || spec.SinkY >= h {
			return nil, fmt.Errorf("%w: sink (%d,%d) outside %dx%d fabric", ErrIncompatible, spec.SinkX, spec.SinkY, w, h)
		}
		var flows []Flow
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if x == spec.SinkX && y == spec.SinkY {
					continue
				}
				flows = append(flows, Flow{SrcX: x, SrcY: y, DstX: spec.SinkX, DstY: spec.SinkY})
			}
		}
		return nonEmpty(flows, spec.Kind)
	case KindReplay:
		recs, err := trace.ParseReplayString(spec.Trace)
		if err != nil {
			return nil, err
		}
		seen := make(map[[2]int]bool)
		var flows []Flow
		for _, r := range recs {
			if r.Src >= n || r.Dst >= n {
				return nil, fmt.Errorf("%w: replay node %d outside %dx%d fabric", ErrIncompatible, max(r.Src, r.Dst), w, h)
			}
			if r.Src == r.Dst || seen[[2]int{r.Src, r.Dst}] {
				continue
			}
			seen[[2]int{r.Src, r.Dst}] = true
			flows = append(flows, Flow{SrcX: r.Src % w, SrcY: r.Src / w, DstX: r.Dst % w, DstY: r.Dst / w})
		}
		return nonEmpty(flows, spec.Kind)
	}
	panic("unreachable: Normalized admits only known kinds")
}

// ReplayCounts returns the per-flow payload counts of a replay spec, in
// the same order and after the same dedup as Generate, so callers can
// weight injection by the trace's recorded volumes. Non-replay specs have
// no intrinsic counts and return nil.
func ReplayCounts(spec Spec, w, h int) ([]int, error) {
	if spec.Kind != KindReplay {
		return nil, nil
	}
	recs, err := trace.ParseReplayString(spec.Trace)
	if err != nil {
		return nil, err
	}
	n := w * h
	seen := make(map[[2]int]int)
	var order [][2]int
	for _, r := range recs {
		if r.Src >= n || r.Dst >= n || r.Src == r.Dst {
			continue
		}
		k := [2]int{r.Src, r.Dst}
		if _, ok := seen[k]; !ok {
			order = append(order, k)
		}
		// Duplicate records merge into the first occurrence, matching
		// Generate's dedup.
		seen[k] += r.N
	}
	counts := make([]int, len(order))
	for i, k := range order {
		counts[i] = seen[k]
	}
	return counts, nil
}

// drawFlows samples distinct non-self (src,dst) pairs: sources uniform,
// destinations uniform or weighted by the cumulative table. Sampling is
// rejection-based over a deterministic RNG, bounded so pathological
// geometries (everything already drawn) terminate with an error instead
// of spinning.
func drawFlows(count, w, h int, seed uint64, cumWeight []float64) ([]Flow, error) {
	n := w * h
	if count > n*(n-1) {
		return nil, fmt.Errorf("%w: %d distinct flows exceed %d ordered pairs", ErrIncompatible, count, n*(n-1))
	}
	rng := phy.NewRNG(seed)
	seen := make(map[[2]int]bool, count)
	flows := make([]Flow, 0, count)
	for attempts := 0; len(flows) < count; attempts++ {
		if attempts > 1000*count {
			return nil, fmt.Errorf("workload: sampling stalled after %d attempts", attempts)
		}
		src := rng.Intn(n)
		var dst int
		if cumWeight == nil {
			dst = rng.Intn(n)
		} else {
			x := rng.Float64() * cumWeight[n-1]
			// Linear scan: node counts are ≤256, and determinism matters
			// more than speed here.
			for dst < n-1 && x >= cumWeight[dst] {
				dst++
			}
		}
		if src == dst || seen[[2]int{src, dst}] {
			continue
		}
		seen[[2]int{src, dst}] = true
		flows = append(flows, Flow{SrcX: src % w, SrcY: src / w, DstX: dst % w, DstY: dst / w})
	}
	return flows, nil
}

// zipfTable builds the cumulative weight table of a zipf(s) popularity
// distribution over node IDs: node 0 is the hottest destination with
// weight 1, node i has weight (i+1)^-s.
func zipfTable(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	return cum
}

func nonEmpty(flows []Flow, kind string) ([]Flow, error) {
	if len(flows) == 0 {
		return nil, fmt.Errorf("%w: %s produced no flows", ErrIncompatible, kind)
	}
	return flows, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
