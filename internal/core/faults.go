package core

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Fault-campaign kinds.
const (
	FaultNone    = "none"
	FaultDegrade = "degrade"
	FaultStorm   = "storm"
	FaultFlap    = "flap"
)

// FaultScript is a deterministic scripted fault campaign applied to a
// mesh fabric: a seed-derived schedule of engine events that mutate the
// error model or drop traffic mid-run. Scripts are part of the scenario
// cell, so the differential suite proves the fast and byte-level paths
// react to faults bit-identically: every mutation fires as a simulation
// event, at the same instant of the same deterministic schedule in both
// runs.
//
// Kinds:
//
//   - "none": no fault (the default; the zero value normalizes to it).
//   - "degrade": at StartNS, every path channel's BER is permanently
//     multiplied by Factor — a lane losing equalization margin.
//   - "storm": BER is multiplied by Factor for [StartNS, StartNS+DurationNS),
//     then restored — a transient interference burst.
//   - "flap": a seed-chosen wire silently drops all flits for Flaps
//     windows of DurationNS every PeriodNS starting at StartNS — a link
//     going down and up while retry recovers across it.
//
// BER-scaling kinds are inert on clean (BER 0) fabrics; flap bites
// regardless of BER.
type FaultScript struct {
	Kind string `json:"kind,omitempty"`
	// StartNS is when the campaign begins (default 200).
	StartNS int64 `json:"startNS,omitempty"`
	// DurationNS is the storm length or per-flap outage window
	// (defaults 300 storm, 120 flap).
	DurationNS int64 `json:"durationNS,omitempty"`
	// Factor is the BER multiplier of degrade/storm (defaults 100
	// degrade, 1000 storm).
	Factor float64 `json:"factor,omitempty"`
	// Flaps is the number of outage windows (default 3).
	Flaps int `json:"flaps,omitempty"`
	// PeriodNS is the flap repetition period (default 500).
	PeriodNS int64 `json:"periodNS,omitempty"`
}

// Name identifies the campaign in reports and differential-case names.
func (s FaultScript) Name() string {
	switch s.Kind {
	case FaultDegrade:
		return fmt.Sprintf("degrade(x%g@%dns)", s.Factor, s.StartNS)
	case FaultStorm:
		return fmt.Sprintf("storm(x%g@%d+%dns)", s.Factor, s.StartNS, s.DurationNS)
	case FaultFlap:
		return fmt.Sprintf("flap(%dx%dns/%dns)", s.Flaps, s.DurationNS, s.PeriodNS)
	case FaultNone, "":
		return FaultNone
	default:
		return s.Kind
	}
}

// Normalized validates the script and fills kind-appropriate defaults,
// returning the canonical form used for cache keying.
func (s FaultScript) Normalized() (FaultScript, error) {
	switch s.Kind {
	case "", FaultNone:
		if s != (FaultScript{}) && s != (FaultScript{Kind: FaultNone}) {
			return s, fmt.Errorf("core: fault %q takes no parameters", FaultNone)
		}
		return FaultScript{Kind: FaultNone}, nil
	case FaultDegrade:
		if s.DurationNS != 0 || s.Flaps != 0 || s.PeriodNS != 0 {
			return s, fmt.Errorf("core: degrade takes only startNS/factor")
		}
		if s.StartNS == 0 {
			s.StartNS = 200
		}
		if s.Factor == 0 {
			s.Factor = 100
		}
	case FaultStorm:
		if s.Flaps != 0 || s.PeriodNS != 0 {
			return s, fmt.Errorf("core: storm takes only startNS/durationNS/factor")
		}
		if s.StartNS == 0 {
			s.StartNS = 200
		}
		if s.DurationNS == 0 {
			s.DurationNS = 300
		}
		if s.Factor == 0 {
			s.Factor = 1000
		}
	case FaultFlap:
		if s.Factor != 0 {
			return s, fmt.Errorf("core: flap has no BER factor")
		}
		if s.StartNS == 0 {
			s.StartNS = 200
		}
		if s.DurationNS == 0 {
			s.DurationNS = 120
		}
		if s.Flaps == 0 {
			s.Flaps = 3
		}
		if s.PeriodNS == 0 {
			s.PeriodNS = 500
		}
		if s.DurationNS >= s.PeriodNS {
			return s, fmt.Errorf("core: flap outage %dns must be shorter than its period %dns", s.DurationNS, s.PeriodNS)
		}
	default:
		return s, fmt.Errorf("core: unknown fault kind %q", s.Kind)
	}
	if s.StartNS < 0 || s.DurationNS < 0 || s.Factor < 0 || s.Flaps < 0 || s.PeriodNS < 0 {
		return s, fmt.Errorf("core: negative fault parameter in %+v", s)
	}
	return s, nil
}

// ApplyFault schedules the campaign's events on the fabric's engine. It
// must be called before the run starts; index salts the seed derivation
// so multiple campaigns on one fabric pick independent fault sites. The
// event schedule depends only on (script, cfg.Seed, index, fabric
// geometry) — never on traffic — so fast and byte-level runs replay it
// identically.
func (m *MeshFabric) ApplyFault(script FaultScript, index int) error {
	s, err := script.Normalized()
	if err != nil {
		return err
	}
	start := sim.Time(s.StartNS) * sim.Nanosecond
	switch s.Kind {
	case FaultNone:
	case FaultDegrade:
		m.Eng.At(start, func() { m.Mesh.SetPathBERScale(s.Factor) })
	case FaultStorm:
		m.Eng.At(start, func() { m.Mesh.SetPathBERScale(s.Factor) })
		m.Eng.At(start+sim.Time(s.DurationNS)*sim.Nanosecond, func() { m.Mesh.SetPathBERScale(1) })
	case FaultFlap:
		// The flapping wire is seed-derived from the fabric's deterministic
		// wire list: same (seed, index, geometry) → same wire, every run.
		wires := m.Mesh.Wires()
		rng := phy.NewRNG(m.Cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(index+1)))
		w := wires[rng.Intn(len(wires))]
		// An express claim is immutable once taken, so a hook installed
		// mid-flight by the events below would be skipped by any flit that
		// claimed the wire earlier. Marking the wire volatile for the whole
		// run forces every traversal crossing it onto the hop-by-hop path —
		// deterministically and traffic-independently, so fast and
		// byte-level runs fall back on exactly the same traversals.
		w.Volatile = true
		dropAll := func(*flit.Flit) bool { return true }
		for k := 0; k < s.Flaps; k++ {
			down := start + sim.Time(int64(k)*s.PeriodNS)*sim.Nanosecond
			up := down + sim.Time(s.DurationNS)*sim.Nanosecond
			m.Eng.At(down, func() { w.FaultHook = dropAll })
			m.Eng.At(up, func() { w.FaultHook = nil })
		}
	}
	return nil
}
