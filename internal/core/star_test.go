package core

import (
	"testing"

	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transaction"
)

func TestStarValidation(t *testing.T) {
	if _, err := NewStar(Config{Levels: -1}, 2); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewStar(Config{}, 0); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := NewStar(Config{}, 251); err == nil {
		t.Error("too many devices accepted")
	}
}

func TestMustNewStarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNewStar(Config{}, 0)
}

// TestStarCleanBidirectional: every device exchanges an in-order stream
// with the host through the shared crossbar, error-free.
func TestStarCleanBidirectional(t *testing.T) {
	for _, proto := range []link.Protocol{link.ProtocolCXLNoPiggyback, link.ProtocolRXL} {
		s := MustNewStar(Config{Protocol: proto}, 3)
		const n = 150

		toDev := map[byte]*trace.Checker{}
		toHost := map[byte]*trace.Checker{}
		for _, d := range s.Devices() {
			toDev[d] = trace.NewChecker()
			toHost[d] = trace.NewChecker()
			s.Dev[d].Deliver = toDev[d].Deliver
			s.Host[d].Deliver = toHost[d].Deliver
		}
		for i := uint64(0); i < n; i++ {
			for _, d := range s.Devices() {
				s.Host[d].Submit(trace.TagPayload(i, 16))
				s.Dev[d].Submit(trace.TagPayload(i, 16))
			}
		}
		s.Run()

		for _, d := range s.Devices() {
			if !toDev[d].Clean() || toDev[d].Delivered != n {
				t.Errorf("%v dev %d: %+v", proto, d, toDev[d])
			}
			if !toHost[d].Clean() || toHost[d].Delivered != n {
				t.Errorf("%v host<-%d: %+v", proto, d, toHost[d])
			}
		}
	}
}

// TestStarRXLUnderBER: the full star survives live error injection with
// exactly-once in-order delivery on every stream.
func TestStarRXLUnderBER(t *testing.T) {
	s := MustNewStar(Config{Protocol: link.ProtocolRXL, BER: 1e-5, BurstProb: 0.4, Seed: 8}, 3)
	const n = 800

	checkers := map[byte]*trace.Checker{}
	for _, d := range s.Devices() {
		checkers[d] = trace.NewChecker()
		s.Dev[d].Deliver = checkers[d].Deliver
	}
	for i := uint64(0); i < n; i++ {
		for _, d := range s.Devices() {
			s.Host[d].Submit(trace.TagPayload(i, 16))
		}
	}
	s.Run()

	for _, d := range s.Devices() {
		c := checkers[d]
		if !c.Clean() || c.Delivered != n {
			t.Errorf("dev %d: delivered=%d ooo=%d dup=%d", d, c.Delivered, c.OutOfOrder, c.Duplicates)
		}
	}
	if s.Crossbar.Stats.DroppedNoRoute != 0 {
		t.Errorf("crossbar lost %d flits to corrupted routes", s.Crossbar.Stats.DroppedNoRoute)
	}
}

// TestStarCoherenceOverFabricRXL runs the MESI-lite protocol across the
// full simulated stack — caches at the devices, directory at the host,
// messages packed into flits, flits through the noisy crossbar under RXL
// — and audits the global coherence invariants at quiescence. This is the
// paper's end-to-end claim: with ISN the transaction layer above never
// observes the interconnect's errors.
func TestStarCoherenceOverFabricRXL(t *testing.T) {
	s := MustNewStar(Config{Protocol: link.ProtocolRXL, BER: 5e-6, BurstProb: 0.4, Seed: 21}, 3)

	// Directory at the host: one message endpoint per device link.
	dirEPs := map[byte]*MessageEndpoint{}
	var dir *transaction.Directory
	dir = transaction.NewDirectory(func(to uint8, m transaction.Message) {
		dirEPs[to].Send(m)
	})

	caches := map[byte]*transaction.Cache{}
	var order []*transaction.Cache
	for _, d := range s.Devices() {
		d := d
		dirEPs[d] = NewMessageEndpoint(s.Host[d], func(m transaction.Message) {
			dir.OnMessage(d, m)
		})
		var devEP *MessageEndpoint
		c := transaction.NewCache(d, func(m transaction.Message) { devEP.Send(m) })
		devEP = NewMessageEndpoint(s.Dev[d], c.OnMessage)
		caches[d] = c
		order = append(order, c)
	}

	// Random read/write mix across a small shared address space, issued
	// over simulated time so coherence actions interleave in flight.
	state := uint64(0xABCDEF)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for step := 0; step < 600; step++ {
		d := s.Devices()[next(3)]
		addr := uint64(next(16)) * 64
		val := uint16(step)
		c := caches[d]
		s.Eng.Schedule(sim.Time(step)*20*sim.Nanosecond, func() {
			if next(3) == 0 {
				c.Write(addr, val)
			} else {
				c.Read(addr)
			}
		})
	}
	s.Run()

	rep := dir.Audit(order)
	if !rep.Clean() {
		t.Fatalf("coherence violated across the fabric: %+v", rep)
	}
	// The channel must actually have exercised the error paths.
	errs := uint64(0)
	for _, d := range s.Devices() {
		errs += s.Dev[d].Stats.FecCorrectedFlits + s.Dev[d].Stats.CrcErrors
		errs += s.Host[d].Stats.FecCorrectedFlits + s.Host[d].Stats.CrcErrors
	}
	if errs == 0 {
		t.Log("note: no channel errors at this seed; coherence check vacuous")
	}
}
