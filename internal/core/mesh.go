package core

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/switchfab"
)

// MeshFabric is the 2D-mesh NoC counterpart of Fabric: a W×H
// switchfab.Mesh with lazily attached endpoints, driven by one
// deterministic engine. It is the scenario-wiring layer the rxl.NoC
// facade, the mesh differential suite, and the multi-hop benchmarks sit
// on.
//
// The Config is interpreted mesh-wise: Protocol selects the router stack
// (RXL passes the end-to-end CRC through), BER/BurstProb/Seed drive the
// per-path shared error schedules, Serialization/Propagation override the
// per-hop wire timing, SwitchLatency the router traversal, and NoFastPath
// forces every endpoint onto the byte-level reference path. Levels and
// InternalFlipProb are ignored (inject router faults directly via
// Mesh.Routers).
type MeshFabric struct {
	Cfg  Config
	W, H int
	Eng  *sim.Engine
	// Mesh exposes routers and wires for fault injection and stats.
	Mesh *switchfab.Mesh

	nodes map[[2]int]*switchfab.MeshNode
}

// NewMeshFabric builds a w×h mesh fabric from the configuration.
func NewMeshFabric(cfg Config, w, h int) (*MeshFabric, error) {
	return newMeshFabric(cfg, w, h, false)
}

// newMeshFabric is the shared constructor behind NewMeshFabric and
// NewTopologyFabric; wrap selects torus wiring.
func newMeshFabric(cfg Config, w, h int, wrap bool) (*MeshFabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w < 1 || h < 1 || w*h > 256 {
		return nil, fmt.Errorf("core: mesh %dx%d out of range (need 1..256 nodes)", w, h)
	}
	mode := switchfab.ModeCXL
	if cfg.Protocol == link.ProtocolRXL {
		mode = switchfab.ModeRXL
	}
	mc := switchfab.DefaultMeshConfig(mode)
	mc.BER = cfg.BER
	mc.BurstProb = cfg.BurstProb
	mc.Seed = cfg.Seed
	mc.Wrap = wrap
	mc.NoExpress = cfg.NoExpress
	if cfg.Serialization > 0 {
		mc.Serialization = cfg.Serialization
	}
	if cfg.Propagation > 0 {
		mc.Propagation = cfg.Propagation
	}
	if cfg.SwitchLatency > 0 {
		mc.RouterLatency = cfg.SwitchLatency
	}
	eng := sim.NewEngine()
	return &MeshFabric{
		Cfg:   cfg,
		W:     w,
		H:     h,
		Eng:   eng,
		Mesh:  switchfab.NewMesh(eng, w, h, mc),
		nodes: make(map[[2]int]*switchfab.MeshNode),
	}, nil
}

// MustNewMeshFabric is NewMeshFabric panicking on error.
func MustNewMeshFabric(cfg Config, w, h int) *MeshFabric {
	m, err := NewMeshFabric(cfg, w, h)
	if err != nil {
		panic(err)
	}
	return m
}

// Node returns (creating on first use) the endpoint at mesh position
// (x,y), wired with the fabric's link configuration and NoFastPath
// setting.
func (m *MeshFabric) Node(x, y int) *switchfab.MeshNode {
	key := [2]int{x, y}
	if nd, ok := m.nodes[key]; ok {
		return nd
	}
	lcfg := link.DefaultConfig(m.Cfg.Protocol)
	if m.Cfg.LinkConfig != nil {
		lcfg = *m.Cfg.LinkConfig
		lcfg.Protocol = m.Cfg.Protocol
	}
	if m.Cfg.NoFastPath {
		lcfg.FastPath = false
	}
	nd := switchfab.NewMeshNode(m.Mesh, x, y, lcfg)
	m.nodes[key] = nd
	return nd
}

// Run drains the event queue.
func (m *MeshFabric) Run() { m.Eng.Run() }

// RunFor advances simulated time by d.
func (m *MeshFabric) RunFor(d sim.Time) { m.Eng.AdvanceTo(m.Eng.Now() + d) }

// MeshFlow is one unidirectional stream of a mesh workload.
type MeshFlow struct {
	SrcX, SrcY, DstX, DstY int
}

// Hops returns the number of wire crossings of the flow's XY route:
// the node-ingress wire plus the Manhattan distance between routers.
func (f MeshFlow) Hops() int {
	return 1 + absInt(f.DstX-f.SrcX) + absInt(f.DstY-f.SrcY)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// MeshResult is the accounting of one mesh workload run: the Section 7.1
// failure taxonomy per flow, per-flow endpoint link statistics, the
// router totals, and the per-path channel accounting.
type MeshResult struct {
	Cfg     Config
	W, H    int
	Flows   []MeshFlow
	Offered int // payloads injected per flow (the maximum, when weighted)
	// PerFlowOffered is the per-flow payload count of weighted workloads
	// (trace-driven replay); nil when every flow offered the same count.
	PerFlowOffered []int

	PerFlow          []FailureCounts
	TxStats, RxStats []link.Stats
	Routers          switchfab.Stats
	Paths            []switchfab.PathStat
	// QueuePeaks is the per-node queue-depth high-water mark, indexed
	// [y][x]: the deepest serialization backlog any wire of that node's
	// router reached, in flits — the backpressure measurement of the
	// single-sink/incast scenarios. Routers.QueuePeak is its mesh-wide
	// max.
	QueuePeaks [][]uint64
	// ExpressTraversals counts traversals collapsed to a single delivery
	// event; ExpressFallbacks counts granted routable traversals whose
	// express claim was refused (fault-scripted wire, in-flight flit,
	// fault-configured router) and fell back to hop-by-hop forwarding.
	ExpressTraversals uint64
	ExpressFallbacks  uint64
	// HookDropped counts flits silently dropped by scripted fault hooks
	// (link-flap campaigns) across every wire.
	HookDropped uint64
	Elapsed     sim.Time
}

// Clean reports whether every flow delivered exactly-once, in-order, and
// intact.
func (r MeshResult) Clean() bool {
	for _, fc := range r.PerFlow {
		if !fc.Clean() {
			return false
		}
	}
	return true
}

// String summarizes the result on one line.
func (r MeshResult) String() string {
	var del, ooo, dup, corrupt, missing int
	for _, fc := range r.PerFlow {
		del += fc.Delivered
		ooo += fc.FailOrder
		dup += fc.Duplicates
		corrupt += fc.FailData
		missing += fc.Missing
	}
	return fmt.Sprintf(
		"%s mesh %dx%d BER=%g: flows=%d offered=%d delivered=%d dup=%d ooo=%d corrupt=%d missing=%d drops=%d t=%dns",
		r.Cfg.Protocol, r.W, r.H, r.Cfg.BER, len(r.Flows), r.Offered*len(r.Flows),
		del, dup, ooo, corrupt, missing, r.Routers.DroppedUncorrectable,
		r.Elapsed/sim.Nanosecond)
}

// RunWorkload drives n payloads through each flow simultaneously
// (submissions interleaved round-robin across flows) and returns the full
// accounting. Equal seeds and configurations give bit-identical results;
// the mesh differential suite relies on that to compare the fast path
// against the byte-level reference.
func (m *MeshFabric) RunWorkload(flows []MeshFlow, n int) MeshResult {
	if n <= 0 {
		panic("core: mesh workload needs n > 0")
	}
	res := m.runWorkload(flows, nil, n)
	res.PerFlowOffered = nil // uniform runs keep the legacy result shape
	return res
}

// RunWeighted is RunWorkload with a per-flow payload count — the
// trace-driven replay shape, where recorded flows carry different
// volumes. Submissions stay round-robin across flows still offering, so
// the congestion interleaving matches RunWorkload's for uniform counts.
func (m *MeshFabric) RunWeighted(flows []MeshFlow, counts []int) MeshResult {
	if len(counts) != len(flows) {
		panic("core: mesh workload counts must match flows")
	}
	maxN := 0
	for _, c := range counts {
		if c <= 0 {
			panic("core: mesh workload needs every count > 0")
		}
		if c > maxN {
			maxN = c
		}
	}
	return m.runWorkload(flows, counts, maxN)
}

func (m *MeshFabric) runWorkload(flows []MeshFlow, counts []int, n int) MeshResult {
	if len(flows) == 0 {
		panic("core: mesh workload needs at least one flow")
	}
	txs := make([]*link.Peer, len(flows))
	rxs := make([]*link.Peer, len(flows))
	cols := make([]*Collector, len(flows))
	count := func(i int) int {
		if counts == nil {
			return n
		}
		return counts[i]
	}
	for i, fl := range flows {
		src := m.Node(fl.SrcX, fl.SrcY)
		dst := m.Node(fl.DstX, fl.DstY)
		txs[i] = src.PeerTo(dst.ID)
		rxs[i] = dst.PeerTo(src.ID)
		cols[i] = NewCollector(count(i))
		rxs[i].Deliver = cols[i].Deliver
	}
	for i := 0; i < n; i++ {
		for j, tx := range txs {
			if i < count(j) {
				tx.Submit(SealedPayload(uint64(i)))
			}
		}
	}
	m.Run()

	res := MeshResult{
		Cfg: m.Cfg, W: m.W, H: m.H,
		Flows:             append([]MeshFlow(nil), flows...),
		Offered:           n,
		Routers:           m.Mesh.TotalStats(),
		Paths:             m.Mesh.PathStats(),
		QueuePeaks:        m.Mesh.NodeQueuePeaks(),
		ExpressTraversals: m.Mesh.ExpressTraversals,
		ExpressFallbacks:  m.Mesh.ExpressFallbacks,
		HookDropped:       m.Mesh.HookDrops(),
		Elapsed:           m.Eng.Now(),
	}
	if counts != nil {
		res.PerFlowOffered = append([]int(nil), counts...)
	}
	for i := range flows {
		res.PerFlow = append(res.PerFlow, cols[i].Finish())
		res.TxStats = append(res.TxStats, txs[i].Stats)
		res.RxStats = append(res.RxStats, rxs[i].Stats)
	}
	return res
}
