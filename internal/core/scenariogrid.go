package core

// Scenario experiments: the workload × topology × fault-campaign
// counterpart of Grid. A ScenarioGrid enumerates mesh/torus fabrics
// driven by spatial traffic patterns (internal/workload) under scripted
// fault campaigns; RunScenarioGrid shards the compatible cells across a
// worker pool with the same any-worker-count bit-identity contract as
// RunGrid, and every cell can replay itself differentially — fast path
// against byte-level reference — which is how the expanded differential
// suite and the rxlsim -scan verb pin the scenario layer.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strconv"

	"repro/internal/link"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Topology kinds.
const (
	TopoMesh  = "mesh"
	TopoTorus = "torus"
)

// Topology selects the fabric shape of a scenario cell.
type Topology struct {
	// Kind is "mesh" (default) or "torus" (wraparound rings, minimal
	// routing).
	Kind string `json:"kind,omitempty"`
	W    int    `json:"w"`
	H    int    `json:"h"`
}

// Name identifies the topology in reports and case names.
func (t Topology) Name() string {
	kind := t.Kind
	if kind == "" {
		kind = TopoMesh
	}
	return fmt.Sprintf("%s%dx%d", kind, t.W, t.H)
}

// Normalized validates the topology and fills the default kind.
func (t Topology) Normalized() (Topology, error) {
	if t.Kind == "" {
		t.Kind = TopoMesh
	}
	if t.Kind != TopoMesh && t.Kind != TopoTorus {
		return t, fmt.Errorf("core: unknown topology kind %q", t.Kind)
	}
	if t.W < 1 || t.H < 1 || t.W*t.H > 256 {
		return t, fmt.Errorf("core: topology %dx%d out of range (need 1..256 nodes)", t.W, t.H)
	}
	return t, nil
}

// NewTopologyFabric builds the fabric of a topology: a plain mesh or a
// 2D torus, sharing every other Config interpretation with
// NewMeshFabric.
func NewTopologyFabric(cfg Config, topo Topology) (*MeshFabric, error) {
	t, err := topo.Normalized()
	if err != nil {
		return nil, err
	}
	return newMeshFabric(cfg, t.W, t.H, t.Kind == TopoTorus)
}

// ScenarioCell is one fully specified scenario: a link configuration on
// a topology, a spatial workload, and a fault campaign. Cells are
// produced by ScenarioGrid.Cells but stand alone — the differential
// suite runs them directly.
type ScenarioCell struct {
	Cfg      Config
	Topo     Topology
	Workload workload.Spec
	Fault    FaultScript
}

// Name identifies the cell in reports and -scan tables.
func (c ScenarioCell) Name() string {
	return fmt.Sprintf("%s|%s|%s|%s|ber=%g|seed=%d",
		c.Cfg.Protocol, c.Topo.Name(), c.Workload.Name(), c.Fault.Name(), c.Cfg.BER, c.Cfg.Seed)
}

// Compatible reports whether the cell's workload can generate flows on
// its topology (transpose needs square, bit-reverse a power of two, …).
// It depends only on (workload kind, geometry), never on the seed.
func (c ScenarioCell) Compatible() bool {
	_, err := workload.Generate(c.Workload, c.Topo.W, c.Topo.H, 1)
	return !errors.Is(err, workload.ErrIncompatible)
}

// Flows generates the cell's flow set and per-flow payload counts.
// Counts is nil unless the workload is trace-driven replay with recorded
// volumes.
func (c ScenarioCell) Flows() ([]MeshFlow, []int, error) {
	wf, err := workload.Generate(c.Workload, c.Topo.W, c.Topo.H, c.Cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	flows := make([]MeshFlow, len(wf))
	for i, f := range wf {
		flows[i] = MeshFlow{SrcX: f.SrcX, SrcY: f.SrcY, DstX: f.DstX, DstY: f.DstY}
	}
	counts, err := workload.ReplayCounts(c.Workload, c.Topo.W, c.Topo.H)
	if err != nil {
		return nil, nil, err
	}
	return flows, counts, nil
}

// Run builds the cell's fabric, applies its fault campaign, and drives n
// payloads per flow (replay counts capped at n so cell cost stays
// bounded by the grid's N).
func (c ScenarioCell) Run(n int) (ScenarioResult, error) {
	if n <= 0 {
		return ScenarioResult{}, fmt.Errorf("core: scenario cell needs n > 0")
	}
	flows, counts, err := c.Flows()
	if err != nil {
		return ScenarioResult{}, err
	}
	fab, err := NewTopologyFabric(c.Cfg, c.Topo)
	if err != nil {
		return ScenarioResult{}, err
	}
	if err := fab.ApplyFault(c.Fault, 0); err != nil {
		return ScenarioResult{}, err
	}
	var res MeshResult
	if counts != nil {
		for i, cnt := range counts {
			if cnt > n {
				counts[i] = n
			}
		}
		res = fab.RunWeighted(flows, counts)
	} else {
		res = fab.RunWorkload(flows, n)
	}
	return ScenarioResult{
		Topology: c.Topo,
		Workload: c.Workload,
		Fault:    c.Fault,
		Result:   res,
	}, nil
}

// RunDifferential runs the cell twice — fast path and byte-level
// reference — and reports whether the full results (stats, failure
// taxonomy, channel accounting, timing) are bit-identical. The Cfg field
// is blanked before comparison since the two runs differ in NoFastPath
// by construction.
func (c ScenarioCell) RunDifferential(n int) (fast, slow ScenarioResult, identical bool, err error) {
	cf := c
	cf.Cfg.NoFastPath = false
	fast, err = cf.Run(n)
	if err != nil {
		return fast, slow, false, err
	}
	cs := c
	cs.Cfg.NoFastPath = true
	slow, err = cs.Run(n)
	if err != nil {
		return fast, slow, false, err
	}
	fr, sr := fast.Result, slow.Result
	fr.Cfg, sr.Cfg = Config{}, Config{}
	return fast, slow, reflect.DeepEqual(fr, sr), nil
}

// ScenarioResult is the accounting of one scenario cell.
type ScenarioResult struct {
	Topology Topology      `json:"topology"`
	Workload workload.Spec `json:"workload"`
	Fault    FaultScript   `json:"fault"`
	Result   MeshResult    `json:"result"`
}

// Clean reports whether every flow of the cell delivered exactly-once,
// in-order, and intact.
func (r ScenarioResult) Clean() bool { return r.Result.Clean() }

// ScenarioGrid enumerates a scenario job set: protocol × topology ×
// workload × fault-campaign × BER × seed. Empty Protocols/Faults/BERs/
// Seeds axes inherit single values from Base (faults default to "none");
// Topologies and Workloads must be explicit — they are what a scenario
// grid is about. Cells whose workload cannot generate flows on their
// topology (transpose on a non-square fabric, …) are skipped during
// enumeration, deterministically.
type ScenarioGrid struct {
	Base       Config          `json:"base"`
	Protocols  []link.Protocol `json:"protocols,omitempty"`
	Topologies []Topology      `json:"topologies"`
	Workloads  []workload.Spec `json:"workloads"`
	Faults     []FaultScript   `json:"faults,omitempty"`
	BERs       []float64       `json:"bers,omitempty"`
	Seeds      []uint64        `json:"seeds,omitempty"`
	// N is the number of payloads offered per flow of each cell.
	N int `json:"n"`
}

// Normalized validates the grid and returns its canonical form: every
// axis element normalized (defaults filled), empty inheritable axes
// replaced by Base values. Two grids enumerating the same cells
// normalize to equal values — the serving layer's cache keys on that.
func (g ScenarioGrid) Normalized() (ScenarioGrid, error) {
	if g.N <= 0 {
		return g, fmt.Errorf("core: scenario grid needs N > 0 payloads per flow")
	}
	if len(g.Topologies) == 0 {
		return g, fmt.Errorf("core: scenario grid needs at least one topology")
	}
	if len(g.Workloads) == 0 {
		return g, fmt.Errorf("core: scenario grid needs at least one workload")
	}
	topos := make([]Topology, len(g.Topologies))
	for i, t := range g.Topologies {
		nt, err := t.Normalized()
		if err != nil {
			return g, err
		}
		topos[i] = nt
	}
	g.Topologies = topos
	wls := make([]workload.Spec, len(g.Workloads))
	for i, w := range g.Workloads {
		nw, err := w.Normalized()
		if err != nil {
			return g, err
		}
		wls[i] = nw
	}
	g.Workloads = wls
	if len(g.Faults) == 0 {
		g.Faults = []FaultScript{{Kind: FaultNone}}
	}
	faults := make([]FaultScript, len(g.Faults))
	for i, f := range g.Faults {
		nf, err := f.Normalized()
		if err != nil {
			return g, err
		}
		faults[i] = nf
	}
	g.Faults = faults
	if len(g.Protocols) == 0 {
		g.Protocols = []link.Protocol{g.Base.Protocol}
	}
	if len(g.BERs) == 0 {
		g.BERs = []float64{g.Base.BER}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{g.Base.Seed}
	}
	return g, nil
}

// Cells enumerates the compatible cells in deterministic order:
// protocol-major, then topology, workload, fault, BER, seeds innermost.
func (g ScenarioGrid) Cells() ([]ScenarioCell, error) {
	g, err := g.Normalized()
	if err != nil {
		return nil, err
	}
	var cells []ScenarioCell
	for _, proto := range g.Protocols {
		for _, topo := range g.Topologies {
			for _, wl := range g.Workloads {
				probe := ScenarioCell{Topo: topo, Workload: wl}
				if !probe.Compatible() {
					continue
				}
				for _, fault := range g.Faults {
					for _, ber := range g.BERs {
						for _, seed := range g.Seeds {
							cfg := g.Base
							cfg.Protocol = proto
							cfg.BER = ber
							cfg.Seed = seed
							cells = append(cells, ScenarioCell{
								Cfg: cfg, Topo: topo, Workload: wl, Fault: fault,
							})
						}
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: scenario grid has no compatible (topology, workload) cells")
	}
	return cells, nil
}

// RunScenarioGrid runs every compatible cell across the pool's workers
// and returns the results in cell order. Cells whose seed is zero get a
// deterministic per-cell seed from the pool, as in RunGrid; results are
// bit-identical at any worker count.
func RunScenarioGrid(ctx context.Context, pool runner.Pool, g ScenarioGrid) ([]ScenarioResult, error) {
	ng, err := g.Normalized()
	if err != nil {
		return nil, err
	}
	cells, err := ng.Cells()
	if err != nil {
		return nil, err
	}
	return runner.Map(ctx, pool, len(cells), func(ctx context.Context, s runner.Shard) (ScenarioResult, error) {
		cell := cells[s.Index]
		if cell.Cfg.Seed == 0 {
			cell.Cfg.Seed = s.Seed
		}
		return cell.Run(ng.N)
	})
}

// ScenarioCSVHeader is the column set of ScenarioResult.CSVRow.
func ScenarioCSVHeader() []string {
	return []string{
		"protocol", "topology", "workload", "fault", "ber", "seed",
		"flows", "offered", "delivered", "duplicates", "fail_order",
		"fail_data", "missing", "switch_drops", "hook_drops", "elapsed_ns",
	}
}

// CSVRow renders the result as one row under ScenarioCSVHeader.
func (r ScenarioResult) CSVRow() []string {
	var del, ooo, dup, corrupt, missing, offered int
	for i, fc := range r.Result.PerFlow {
		del += fc.Delivered
		ooo += fc.FailOrder
		dup += fc.Duplicates
		corrupt += fc.FailData
		missing += fc.Missing
		if r.Result.PerFlowOffered != nil {
			offered += r.Result.PerFlowOffered[i]
		} else {
			offered += r.Result.Offered
		}
	}
	return []string{
		fmt.Sprint(r.Result.Cfg.Protocol),
		r.Topology.Name(),
		r.Workload.Name(),
		r.Fault.Name(),
		strconv.FormatFloat(r.Result.Cfg.BER, 'g', -1, 64),
		strconv.FormatUint(r.Result.Cfg.Seed, 10),
		strconv.Itoa(len(r.Result.Flows)),
		strconv.Itoa(offered),
		strconv.Itoa(del),
		strconv.Itoa(dup),
		strconv.Itoa(ooo),
		strconv.Itoa(corrupt),
		strconv.Itoa(missing),
		strconv.FormatUint(r.Result.Routers.DroppedUncorrectable, 10),
		strconv.FormatUint(r.Result.HookDropped, 10),
		strconv.FormatInt(int64(r.Result.Elapsed/sim.Nanosecond), 10),
	}
}

// ScenarioResultRows renders a result slice for runner.WriteCSV.
func ScenarioResultRows(results []ScenarioResult) [][]string {
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = r.CSVRow()
	}
	return rows
}
