package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/link"
	"repro/internal/runner"
)

// testGrid is a small but non-trivial job set: 2 protocols × 2 depths ×
// 1 BER high enough to exercise retries, drops and the failure taxonomy.
func testGrid() Grid {
	return Grid{
		Base:      Config{BurstProb: 0.4},
		Protocols: []link.Protocol{link.ProtocolCXL, link.ProtocolRXL},
		Levels:    []int{0, 2},
		BERs:      []float64{2e-5},
		Seeds:     []uint64{3, 11},
		N:         1500,
	}
}

// TestGridEnumeration: size and deterministic cell order.
func TestGridEnumeration(t *testing.T) {
	g := testGrid()
	cfgs := g.Configs()
	if len(cfgs) != g.Size() || len(cfgs) != 8 {
		t.Fatalf("grid enumerates %d cells, Size()=%d, want 8", len(cfgs), g.Size())
	}
	// Protocol-major, seeds innermost.
	if cfgs[0].Protocol != link.ProtocolCXL || cfgs[0].Seed != 3 || cfgs[1].Seed != 11 {
		t.Fatalf("unexpected cell order: %+v %+v", cfgs[0], cfgs[1])
	}
	if cfgs[4].Protocol != link.ProtocolRXL {
		t.Fatalf("cell 4 protocol %v, want RXL", cfgs[4].Protocol)
	}
	// Base fields survive into every cell.
	for i, c := range cfgs {
		if c.BurstProb != 0.4 {
			t.Fatalf("cell %d lost Base.BurstProb", i)
		}
	}
}

// TestGridEmptyAxesInheritBase: a grid with no axes is one Base cell.
func TestGridEmptyAxesInheritBase(t *testing.T) {
	g := Grid{Base: Config{Protocol: link.ProtocolRXL, Levels: 3, BER: 1e-7, Seed: 9}, N: 10}
	cfgs := g.Configs()
	if len(cfgs) != 1 || cfgs[0] != g.Base {
		t.Fatalf("empty-axis grid: %+v", cfgs)
	}
}

// TestRunGridDeterministicAcrossWorkers proves the tentpole invariant on
// live simulations: the merged result set is bit-identical at workers=1,
// workers=4, and workers=NumCPU.
func TestRunGridDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid()
	ctx := context.Background()
	ref, err := RunGrid(ctx, runner.Pool{Workers: 1, BaseSeed: 5}, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != g.Size() {
		t.Fatalf("got %d results for %d cells", len(ref), g.Size())
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		got, err := RunGrid(ctx, runner.Pool{Workers: w, BaseSeed: 5}, g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d produced different results", w)
		}
	}
	// The workload must actually exercise the error path, or the
	// determinism claim is vacuous.
	retx := uint64(0)
	for _, r := range ref {
		retx += r.LinkA.Retransmissions
	}
	if retx == 0 {
		t.Fatal("test grid saw no retransmissions; raise BER")
	}
}

// TestRunGridZeroSeedDerivation: cells with Seed==0 get deterministic
// per-cell seeds from the pool, and different base seeds give different
// runs.
func TestRunGridZeroSeedDerivation(t *testing.T) {
	g := Grid{
		Protocols: []link.Protocol{link.ProtocolRXL},
		BERs:      []float64{5e-5},
		Seeds:     []uint64{0, 0, 0},
		Base:      Config{BurstProb: 0.4},
		N:         1200,
	}
	ctx := context.Background()
	a, err := RunGrid(ctx, runner.Pool{Workers: 2, BaseSeed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGrid(ctx, runner.Pool{Workers: 3, BaseSeed: 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zero-seed derivation depends on worker count")
	}
	if reflect.DeepEqual(a[0].LinkA, a[1].LinkA) && reflect.DeepEqual(a[1].LinkA, a[2].LinkA) {
		t.Fatal("replica cells share identical link stats; seed derivation is degenerate")
	}
}

// TestRunGridErrors: invalid cells and invalid N surface as errors, not
// panics.
func TestRunGridErrors(t *testing.T) {
	if _, err := RunGrid(context.Background(), runner.Pool{}, Grid{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	bad := Grid{Levels: []int{-1}, N: 10}
	if _, err := RunGrid(context.Background(), runner.Pool{}, bad); err == nil {
		t.Fatal("invalid cell config accepted")
	}
}

// TestRunGridCancellation: canceling the context aborts the sweep.
func TestRunGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunGrid(ctx, runner.Pool{}, testGrid()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

// TestRunComparisonMatchesSequential: the runner-backed RunComparison
// reproduces the sequential per-protocol runs exactly.
func TestRunComparisonMatchesSequential(t *testing.T) {
	base := Config{Levels: 1, BER: 1e-5, BurstProb: 0.4, Seed: 7}
	const n = 1500
	par := RunComparison(base, n)
	for _, proto := range Protocols {
		cfg := base
		cfg.Protocol = proto
		cfg.LinkConfig = nil
		exp := Experiment{Fabric: MustNewFabric(cfg), N: n}
		seq := exp.Run()
		if !reflect.DeepEqual(par[proto], seq) {
			t.Fatalf("%v: parallel comparison diverges from sequential run", proto)
		}
	}
}

// TestResultCSV: the export row set matches the header width and carries
// the cell coordinates.
func TestResultCSV(t *testing.T) {
	res, err := RunGrid(context.Background(), runner.Pool{}, Grid{
		Protocols: []link.Protocol{link.ProtocolRXL},
		Levels:    []int{1},
		BERs:      []float64{0},
		Seeds:     []uint64{1},
		N:         50,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := ResultRows(res)
	if len(rows) != 1 || len(rows[0]) != len(GridCSVHeader()) {
		t.Fatalf("CSV shape: %d rows, %d cols, header %d", len(rows), len(rows[0]), len(GridCSVHeader()))
	}
	if rows[0][0] != "RXL" || rows[0][1] != "1" {
		t.Fatalf("CSV coordinates wrong: %v", rows[0][:4])
	}
}
