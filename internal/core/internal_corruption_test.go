package core

import (
	"testing"

	"repro/internal/link"
)

// These tests are the statistical version of Section 6.3: corruption in
// the switch datapath — after the ingress checks, before egress
// re-encoding. Under CXL the switch regenerates the link CRC, blessing
// the corruption; under RXL the end-to-end ECRC carries it to the
// endpoint where ISN validation catches it and the retry repairs it.

func runInternal(t *testing.T, proto link.Protocol, n int) Result {
	t.Helper()
	exp := Experiment{
		Fabric: MustNewFabric(Config{
			Protocol:         proto,
			Levels:           1,
			InternalFlipProb: 0.01, // 1% of flits corrupted inside the switch
			Seed:             1717,
		}),
		N: n,
	}
	return exp.Run()
}

func TestInternalCorruptionAtScaleCXL(t *testing.T) {
	res := runInternal(t, link.ProtocolCXL, 3000)
	if res.Switches.InternalCorruptions == 0 {
		t.Fatal("no internal corruption injected")
	}
	// The blessed corruption reaches the application as Fail_data. (Flips
	// landing in the 2-byte header can cause other anomalies — missing or
	// misordered flits — so only FailData is asserted.)
	if res.Failures.FailData == 0 {
		t.Fatalf("CXL delivered no corrupted payloads despite %d internal corruptions: %+v",
			res.Switches.InternalCorruptions, res.Failures)
	}
	// The endpoint CRC cannot see switch-internal corruption: almost all
	// corrupted flits pass (a header flip can change the type field, so a
	// handful of CRC errors may still occur).
	if res.LinkB.CrcErrors > res.Switches.InternalCorruptions/4 {
		t.Errorf("CXL endpoint flagged %d of %d internal corruptions; the link CRC should be blind to them",
			res.LinkB.CrcErrors, res.Switches.InternalCorruptions)
	}
}

func TestInternalCorruptionAtScaleRXL(t *testing.T) {
	res := runInternal(t, link.ProtocolRXL, 3000)
	if res.Switches.InternalCorruptions == 0 {
		t.Fatal("no internal corruption injected")
	}
	if !res.Failures.Clean() {
		t.Fatalf("RXL let switch-internal corruption through: %+v", res.Failures)
	}
	if res.LinkB.CrcErrors == 0 {
		t.Fatal("RXL endpoint never flagged the corruption")
	}
	if res.LinkA.Retransmissions == 0 {
		t.Fatal("no retries repaired the corruption")
	}
}

// TestInternalCorruptionRatio quantifies the comparison for EXPERIMENTS.md:
// the CXL escape rate should be the injection rate, while RXL's is zero.
func TestInternalCorruptionRatio(t *testing.T) {
	cxl := runInternal(t, link.ProtocolCXL, 3000)
	rate := float64(cxl.Failures.FailData) / float64(cxl.Offered)
	if rate < 0.002 || rate > 0.02 {
		t.Errorf("CXL corrupted-delivery rate %.4f implausible for 1%% injection", rate)
	}
	rxl := runInternal(t, link.ProtocolRXL, 3000)
	if rxl.Failures.FailData != 0 {
		t.Errorf("RXL corrupted-delivery rate nonzero: %d", rxl.Failures.FailData)
	}
}
