package core

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/switchfab"
)

// Star is the multi-device topology of scale-out deployments: one host
// and N devices joined by a crossbar switch. Each device has its own
// link-layer connection to the host (the crossbar routes flits by
// destination tag), so the host terminates N independent sequence
// streams — the configuration where silent drops in the shared switch
// threaten many transaction flows at once.
type Star struct {
	Cfg Config
	Eng *sim.Engine
	// Crossbar is the shared switching element.
	Crossbar *switchfab.Crossbar
	// Host holds the host-side peer for each device (indexed 1..N).
	Host map[byte]*link.Peer
	// Dev holds each device's peer (indexed 1..N).
	Dev map[byte]*link.Peer
	// Wires lists every wire for fault/channel attachment.
	Wires []*link.Wire
}

// hostTag is the routing tag of the host endpoint.
const hostTag byte = 0

// NewStar builds a star fabric with n devices. The Config's Levels field
// is ignored (the topology is host–crossbar–device); everything else
// (protocol, BER, seed, timing) applies per link.
func NewStar(cfg Config, n int) (*Star, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 || n > 250 {
		return nil, fmt.Errorf("core: star needs 1..250 devices, got %d", n)
	}

	eng := sim.NewEngine()
	rng := phy.NewRNG(cfg.Seed)
	ser, prop, lat := sim.FlitTime, 10*sim.Nanosecond, 5*sim.Nanosecond
	if cfg.Serialization > 0 {
		ser = cfg.Serialization
	}
	if cfg.Propagation > 0 {
		prop = cfg.Propagation
	}
	if cfg.SwitchLatency > 0 {
		lat = cfg.SwitchLatency
	}

	mode := switchfab.ModeCXL
	if cfg.Protocol == link.ProtocolRXL {
		mode = switchfab.ModeRXL
	}
	s := &Star{
		Cfg:      cfg,
		Eng:      eng,
		Crossbar: switchfab.NewCrossbar("X", eng, mode, lat),
		Host:     make(map[byte]*link.Peer),
		Dev:      make(map[byte]*link.Peer),
	}
	if cfg.InternalFlipProb > 0 {
		s.Crossbar.SeedInternalFaults(cfg.InternalFlipProb, rng.Split())
	}

	mkWire := func(deliver func(*flit.Flit)) *link.Wire {
		w := link.NewWire(eng, ser, prop, deliver)
		if cfg.BER > 0 {
			w.Channel = phy.NewChannel(cfg.BER, cfg.BurstProb, rng.Split())
		}
		s.Wires = append(s.Wires, w)
		return w
	}

	mkCfg := func(src, dst byte) link.Config {
		c := link.DefaultConfig(cfg.Protocol)
		if cfg.LinkConfig != nil {
			c = *cfg.LinkConfig
			c.Protocol = cfg.Protocol
		}
		if cfg.NoFastPath {
			c.FastPath = false
		}
		c.StampRoute = true
		c.SrcTag = src
		c.RouteTag = dst
		return c
	}

	// One shared physical wire host→crossbar; the crossbar returns flits
	// to the host on a wire that demuxes by source tag.
	hostToX := mkWire(s.Crossbar.Ingress())
	xToHost := mkWire(func(f *flit.Flit) {
		if p, ok := s.Host[f.Payload()[flit.SrcRouteOffset]]; ok {
			p.Receive(f)
		}
	})
	s.Crossbar.SetRoute(hostTag, xToHost)

	for i := 1; i <= n; i++ {
		d := byte(i)
		hp := link.NewPeer(fmt.Sprintf("host-%d", d), eng, mkCfg(hostTag, d))
		hp.Attach(hostToX)
		s.Host[d] = hp

		dp := link.NewPeer(fmt.Sprintf("dev-%d", d), eng, mkCfg(d, hostTag))
		xToDev := mkWire(dp.Receive)
		devToX := mkWire(s.Crossbar.Ingress())
		dp.Attach(devToX)
		s.Crossbar.SetRoute(d, xToDev)
		s.Dev[d] = dp
	}
	return s, nil
}

// MustNewStar is NewStar panicking on error.
func MustNewStar(cfg Config, n int) *Star {
	s, err := NewStar(cfg, n)
	if err != nil {
		panic(err)
	}
	return s
}

// Run drains the event queue.
func (s *Star) Run() { s.Eng.Run() }

// Devices returns the device IDs in ascending order.
func (s *Star) Devices() []byte {
	out := make([]byte, 0, len(s.Dev))
	for i := 1; i <= len(s.Dev); i++ {
		out = append(out, byte(i))
	}
	return out
}
