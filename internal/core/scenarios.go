package core

import (
	"encoding/binary"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/transaction"
)

// This file reproduces the paper's deterministic failure scenarios:
//
//	Fig. 4  — a silent switch drop followed by an AckNum-carrying flit
//	          yields out-of-order delivery at the link layer under CXL.
//	Fig. 5a — the same drop under request-carrying flits causes duplicate
//	          request execution at the transaction layer.
//	Fig. 5b — under data-carrying flits sharing a CQID it causes
//	          out-of-order data delivery.
//
// Each scenario runs unchanged under any protocol variant, so the same
// script demonstrates the CXL failure and the RXL recovery.

// Fig4Report captures the link-layer outcome of the Fig. 4 script.
type Fig4Report struct {
	// Tags is the delivery order observed at the endpoint.
	Tags []uint64
	// Misordered reports whether tag 2 was delivered before tag 1 — the
	// paper's failure signature.
	Misordered bool
	// UnverifiedDelivered counts flits forwarded without a sequence check
	// (CXL's piggyback blind spot).
	UnverifiedDelivered uint64
	// CrcErrors counts endpoint CRC/ISN rejections (RXL's detection).
	CrcErrors uint64
	// SwitchDrops counts flits silently discarded by the switch.
	SwitchDrops uint64
	// Duplicates counts tags delivered more than once.
	Duplicates int
}

// RunFig4 executes the Fig. 4 drop script on a one-switch chain under the
// given protocol and reports what the endpoint observed.
func RunFig4(proto link.Protocol) Fig4Report {
	// Aggressive acking maximizes piggybacking, as in the figure.
	cfg := link.DefaultConfig(proto)
	cfg.CoalesceCount = 1
	f := MustNewFabric(Config{Protocol: proto, Levels: 1, LinkConfig: &cfg})

	var rep Fig4Report
	seenAt := map[uint64]int{}
	f.B().Deliver = func(p []byte) {
		tag := binary.BigEndian.Uint64(p)
		if _, dup := seenAt[tag]; dup {
			rep.Duplicates++
		} else {
			seenAt[tag] = len(rep.Tags)
		}
		rep.Tags = append(rep.Tags, tag)
	}

	// Silently drop the second data flit on the first forward hop — the
	// switch-side discard of an uncorrectable flit.
	seen := 0
	f.Chain.Fwd[0].FaultHook = func(fl *flit.Flit) bool {
		if fl.Header().Type == flit.TypeData {
			seen++
			if seen == 2 {
				return true
			}
		}
		return false
	}

	// Reverse payload gives A an acknowledgment to piggyback; the
	// staggered downstream submissions reproduce the figure's timing:
	// flit #2 transmits after the ACK for the upstream flit is pending
	// (so its FSN carries the AckNum), while flit #3 follows immediately
	// (no fresh ACK) and carries its explicit sequence number.
	f.B().Submit(SealedPayload(100))
	f.A().Submit(SealedPayload(0))
	f.A().Submit(SealedPayload(1)) // dropped by the switch
	f.Eng.Schedule(60*sim.Nanosecond, func() { f.A().Submit(SealedPayload(2)) })
	f.Eng.Schedule(64*sim.Nanosecond, func() { f.A().Submit(SealedPayload(3)) })
	f.Run()

	if p2, ok := seenAt[2]; ok {
		if p1, ok1 := seenAt[1]; ok1 && p2 < p1 {
			rep.Misordered = true
		}
	}
	rep.UnverifiedDelivered = f.B().Stats.UnverifiedDelivered
	rep.CrcErrors = f.B().Stats.CrcErrors
	rep.SwitchDrops = f.Chain.TotalSwitchStats().DroppedUncorrectable + f.Chain.Fwd[0].HookDropped
	return rep
}

// Fig5Report captures the transaction-layer outcome of the Fig. 5 scripts.
type Fig5Report struct {
	// Issued and Completed are the device's transaction counts.
	Issued, Completed uint64
	// DuplicateExecutions is the host-side Fig. 5a signature: a request
	// executed more than once.
	DuplicateExecutions uint64
	// DuplicateData is the device-side Fig. 5a signature: data delivered
	// for an already-completed transaction.
	DuplicateData uint64
	// OutOfOrderData is the Fig. 5b signature: intra-CQID sequence
	// violation observed by the device.
	OutOfOrderData uint64
	// CorruptData counts end-to-end payload corruption (Fail_data).
	CorruptData uint64
	// LinkCrcErrors counts endpoint CRC/ISN rejections (the RXL detection
	// path).
	LinkCrcErrors uint64
	// SwitchDrops counts silently discarded flits.
	SwitchDrops uint64
}

// CleanTransactions reports whether the transaction layer saw no failure
// signature.
func (r Fig5Report) CleanTransactions() bool {
	return r.DuplicateExecutions == 0 && r.DuplicateData == 0 &&
		r.OutOfOrderData == 0 && r.CorruptData == 0
}

// fig5Fabric builds the one-switch fabric used by both Fig. 5 scripts:
// device at endpoint A, host at endpoint B, with per-endpoint ACK
// coalescing. The asymmetry matters: only the side that acks per delivery
// piggybacks AckNums on its data flits, and only flits received *verified*
// (explicit FSN) arm acknowledgments — so the endpoint whose stream is
// attacked must receive explicit FSNs from the other direction.
func fig5Fabric(proto link.Protocol, devCoalesce, hostCoalesce int) (*Fabric, *transaction.Device, *transaction.Host) {
	cfg := link.DefaultConfig(proto)
	cfg.CoalesceCount = devCoalesce
	f := MustNewFabric(Config{Protocol: proto, Levels: 1, LinkConfig: &cfg})
	f.B().Cfg.CoalesceCount = hostCoalesce

	var devEP, hostEP *MessageEndpoint
	dev := transaction.NewDevice(func(m transaction.Message) { devEP.Send(m) })
	host := transaction.NewHost(func(m transaction.Message) { hostEP.Send(m) })
	devEP = NewMessageEndpoint(f.A(), nil)
	hostEP = NewMessageEndpoint(f.B(), host.OnMessage)
	devEP.OnMessage = dev.OnMessage
	return f, dev, host
}

// RunFig5a executes the duplicate-request scenario: a request-carrying
// flit is silently dropped on the way to the host while the following flit
// carries a piggybacked AckNum. Under CXL the host executes the later
// request early and the replay re-executes it (Fig. 5a); under RXL the
// drop is detected and the stream replays exactly once.
func RunFig5a(proto link.Protocol) Fig5Report {
	// The device acks every response (piggybacking AckNums on its request
	// flits — the attacked stream); the host coalesces, so its responses
	// carry explicit FSNs and the device's deliveries stay verified.
	f, dev, host := fig5Fabric(proto, 1, 10)

	// Drop the second request-carrying flit A→B at the first hop.
	seen := 0
	f.Chain.Fwd[0].FaultHook = func(fl *flit.Flit) bool {
		if fl.Header().Type == flit.TypeData {
			seen++
			if seen == 2 {
				return true
			}
		}
		return false
	}

	// Figure 5a timing. One direction takes ≈29 ns (2+10+5+2+10), so a
	// response reaches the device ≈58 ns after its request:
	//
	//	req0 @0    — carries its FSN; host answers, resp0 reaches the
	//	             device at ≈58 ns and arms an acknowledgment.
	//	req1 @10   — carries its FSN (no ACK pending yet); DROPPED at
	//	             the switch.
	//	req2 @70   — resp0 has arrived, so its FSN carries the AckNum:
	//	             the host forwards it unverified (blind spot) and
	//	             executes the read.
	//	req3 @80   — no new response since req2, so it carries its
	//	             explicit FSN: the host sees the gap and NAKs; the
	//	             go-back-N replay re-delivers req2 → re-execution.
	for i, at := range []sim.Time{0, 10, 70, 80, 200, 210} {
		addr := uint64(0x1000 + i*64)
		f.Eng.Schedule(at*sim.Nanosecond, func() { dev.IssueRead(addr, 0) })
	}
	f.Run()

	return Fig5Report{
		Issued:              dev.Stats.Issued,
		Completed:           dev.Stats.Completed,
		DuplicateExecutions: host.Stats.DuplicateExecutions,
		DuplicateData:       dev.Stats.DuplicateData,
		OutOfOrderData:      dev.Stats.OutOfOrderData,
		CorruptData:         dev.Stats.CorruptData,
		LinkCrcErrors:       f.B().Stats.CrcErrors,
		SwitchDrops:         f.Chain.TotalSwitchStats().DroppedUncorrectable + f.Chain.Fwd[0].HookDropped,
	}
}

// RunFig5b executes the out-of-order-data scenario: a data-carrying flit
// from the host is silently dropped while its successor (same CQID)
// carries an AckNum. Under CXL the device observes the later data first —
// an intra-CQID ordering violation (Fig. 5b); under RXL the ISN check
// halts the stream until the replay restores order.
func RunFig5b(proto link.Protocol) Fig5Report {
	// Mirror image of Fig. 5a: the host acks every request (piggybacking
	// AckNums on its data flits — the attacked stream); the device
	// coalesces, so its requests carry explicit FSNs and the host's
	// deliveries stay verified.
	f, dev, host := fig5Fabric(proto, 10, 1)

	// Drop the second data-carrying flit B→A (host→device) at the first
	// backward hop.
	seen := 0
	f.Chain.Bwd[0].FaultHook = func(fl *flit.Flit) bool {
		if fl.Header().Type == flit.TypeData {
			seen++
			if seen == 2 {
				return true
			}
		}
		return false
	}

	// All requests share CQID 7, so their data must arrive in order.
	// Every host response piggybacks the ACK of the request that
	// triggered it (CoalesceCount=1), so the data flit after the dropped
	// one is forwarded unverified and the device observes the intra-CQID
	// ordering violation directly.
	for i := 0; i < 6; i++ {
		addr := uint64(0x8000 + i*64)
		f.Eng.Schedule(sim.Time(i)*70*sim.Nanosecond, func() { dev.IssueRead(addr, 7) })
	}
	f.Run()

	return Fig5Report{
		Issued:              dev.Stats.Issued,
		Completed:           dev.Stats.Completed,
		DuplicateExecutions: host.Stats.DuplicateExecutions,
		DuplicateData:       dev.Stats.DuplicateData,
		OutOfOrderData:      dev.Stats.OutOfOrderData,
		CorruptData:         dev.Stats.CorruptData,
		LinkCrcErrors:       f.A().Stats.CrcErrors,
		SwitchDrops:         f.Chain.TotalSwitchStats().DroppedUncorrectable + f.Chain.Bwd[0].HookDropped,
	}
}
