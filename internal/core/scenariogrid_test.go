package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/link"
	"repro/internal/runner"
	"repro/internal/workload"
)

// scenarioReplayTrace is a small incast-ish recorded flow list used by
// the replay cells: node IDs fit any topology of at least 2x2.
const scenarioReplayTrace = "1 0 120\n2 0 80\n3 0 40\n0 3 20\n"

// TestScenarioDifferentialMatrix is the acceptance bar of the scenario
// layer: for every compatible (topology × workload × fault-campaign)
// combination — torus at two sizes among the topologies — the fast path
// and the byte-level reference must produce bit-identical results.
// Protocols alternate across combinations so both router stacks stay
// covered without doubling the matrix.
func TestScenarioDifferentialMatrix(t *testing.T) {
	topologies := []Topology{
		{Kind: TopoMesh, W: 3, H: 3},
		{Kind: TopoTorus, W: 3, H: 3},
		{Kind: TopoTorus, W: 4, H: 4},
	}
	workloads := []workload.Spec{
		{Kind: workload.KindUniform, Flows: 4},
		{Kind: workload.KindZipf, Flows: 6, Skew: 1.5},
		{Kind: workload.KindTranspose},
		{Kind: workload.KindBitReverse},
		{Kind: workload.KindSingleSink, SinkX: 1, SinkY: 1},
		{Kind: workload.KindReplay, Trace: scenarioReplayTrace},
	}
	faults := []FaultScript{
		{Kind: FaultNone},
		{Kind: FaultDegrade, StartNS: 150, Factor: 10},
		{Kind: FaultStorm, StartNS: 150, DurationNS: 250, Factor: 20},
		{Kind: FaultFlap, StartNS: 150, DurationNS: 120, Flaps: 2, PeriodNS: 400},
	}

	const n = 100
	idx := 0
	covered := 0
	var expressRuns, expressFallbacks, flapFallbacks uint64
	for _, topo := range topologies {
		for _, wl := range workloads {
			for _, fault := range faults {
				proto := link.ProtocolRXL
				if idx%2 == 1 {
					proto = link.ProtocolCXLNoPiggyback
				}
				idx++
				cell := ScenarioCell{
					Cfg:      Config{Protocol: proto, BER: 1e-5, BurstProb: 0.4, Seed: 77},
					Topo:     topo,
					Workload: wl,
					Fault:    fault,
				}
				if !cell.Compatible() { // bit-reverse on 9-node fabrics
					continue
				}
				covered++
				t.Run(cell.Name(), func(t *testing.T) {
					fast := assertCellFastSlowIdentical(t, cell, n)
					expressRuns += fast.Result.ExpressTraversals
					expressFallbacks += fast.Result.ExpressFallbacks
					if fault.Kind == FaultFlap {
						flapFallbacks += fast.Result.ExpressFallbacks
					}
				})
			}
		}
	}
	// 3 topologies × 6 workloads × 4 faults, minus bitrev on the two
	// 9-node fabrics (2×4 combinations).
	if want := 3*6*4 - 8; covered != want {
		t.Errorf("matrix covered %d combinations, want %d", covered, want)
	}
	// The matrix must actually exercise both halves of the express model:
	// single-event traversals and hop-by-hop fallbacks (including
	// flap-forced ones — every traversal crossing a flapped wire refuses
	// its claim), or the bit-identity above is vacuous for express.
	if expressRuns == 0 || expressFallbacks == 0 || flapFallbacks == 0 {
		t.Errorf("matrix express coverage hollow: %d express, %d fallbacks (%d under flap)",
			expressRuns, expressFallbacks, flapFallbacks)
	}
}

// TestScenarioFaultsBite pins that the fault campaigns actually perturb
// the run — a campaign the differential can't distinguish from "none"
// would vacuously pass the matrix.
func TestScenarioFaultsBite(t *testing.T) {
	base := ScenarioCell{
		Cfg:      Config{Protocol: link.ProtocolRXL, BER: 1e-6, BurstProb: 0.4, Seed: 9},
		Topo:     Topology{Kind: TopoTorus, W: 3, H: 3},
		Workload: workload.Spec{Kind: workload.KindSingleSink, SinkX: 0, SinkY: 0},
	}
	ref, err := base.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Clean() {
		t.Fatalf("baseline cell not clean: %+v", ref.Result.PerFlow)
	}

	storm := base
	storm.Fault = FaultScript{Kind: FaultStorm, StartNS: 100, DurationNS: 2000, Factor: 1000}
	stormRes, err := storm.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if !stormRes.Clean() {
		t.Fatalf("RXL did not recover from storm: %+v", stormRes.Result.PerFlow)
	}
	refErrs := uint64(0)
	for _, p := range ref.Result.Paths {
		refErrs += p.ErrorEvents
	}
	stormErrs := uint64(0)
	for _, p := range stormRes.Result.Paths {
		stormErrs += p.ErrorEvents
	}
	if stormErrs <= refErrs {
		t.Errorf("storm produced %d error events, baseline %d — fault did not bite", stormErrs, refErrs)
	}

	// Flap campaigns drop flits on a wire; across a handful of seeds at
	// least one must pick a wire that carries traffic.
	bit := false
	for seed := uint64(1); seed <= 5 && !bit; seed++ {
		flap := base
		flap.Cfg.Seed = seed
		flap.Fault = FaultScript{Kind: FaultFlap, StartNS: 100, DurationNS: 150, Flaps: 4, PeriodNS: 400}
		res, err := flap.Run(300)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Clean() {
			t.Fatalf("link retry did not recover from flap (seed %d): %+v", seed, res.Result.PerFlow)
		}
		bit = res.Result.HookDropped > 0
	}
	if !bit {
		t.Error("no flap campaign dropped any flit across 5 seeds")
	}
}

// TestScenarioGridWorkerInvariance: RunScenarioGrid returns bit-identical
// results at any worker count — each cell's fabric is seeded
// independently of scheduling, like RunGrid's contract.
func TestScenarioGridWorkerInvariance(t *testing.T) {
	g := ScenarioGrid{
		Base:      Config{Protocol: link.ProtocolRXL, BurstProb: 0.4, Seed: 21},
		Protocols: []link.Protocol{link.ProtocolCXLNoPiggyback, link.ProtocolRXL},
		Topologies: []Topology{
			{Kind: TopoMesh, W: 3, H: 3},
			{Kind: TopoTorus, W: 3, H: 3},
		},
		Workloads: []workload.Spec{
			{Kind: workload.KindZipf, Flows: 4},
			{Kind: workload.KindTranspose},
		},
		Faults: []FaultScript{{Kind: FaultNone}, {Kind: FaultStorm, Factor: 20}},
		BERs:   []float64{1e-5},
		N:      60,
	}
	run := func(workers int) []ScenarioResult {
		res, err := RunScenarioGrid(context.Background(), runner.Pool{Workers: workers, BaseSeed: 5}, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if !reflect.DeepEqual(one, four) {
		t.Fatal("scenario grid results differ across worker counts")
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(one), len(cells))
	}
	rows := ScenarioResultRows(one)
	if len(rows) != len(one) || len(rows[0]) != len(ScenarioCSVHeader()) {
		t.Fatalf("CSV shape %dx%d does not match header %d", len(rows), len(rows[0]), len(ScenarioCSVHeader()))
	}
}

// TestScenarioGridEnumeration pins normalization and deterministic cell
// ordering: axis defaults, incompatible-cell skipping, validation errors.
func TestScenarioGridEnumeration(t *testing.T) {
	g := ScenarioGrid{
		Base: Config{Protocol: link.ProtocolRXL, Seed: 3},
		Topologies: []Topology{
			{W: 4, H: 1},          // non-square: transpose drops out
			{Kind: TopoTorus, W: 2, H: 2},
		},
		Workloads: []workload.Spec{
			{Kind: workload.KindUniform, Flows: 2},
			{Kind: workload.KindTranspose},
		},
		N: 10,
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// 1 protocol × (2 topologies × 2 workloads − 1 incompatible) × 1 fault.
	if len(cells) != 3 {
		t.Fatalf("enumerated %d cells, want 3", len(cells))
	}
	for _, c := range cells {
		if c.Fault.Kind != FaultNone {
			t.Errorf("default fault = %q, want none", c.Fault.Kind)
		}
		if c.Topo.Kind == "" {
			t.Error("topology kind not normalized")
		}
	}
	// Enumeration is deterministic.
	again, _ := g.Cells()
	if !reflect.DeepEqual(cells, again) {
		t.Error("cell enumeration not deterministic")
	}

	bad := []ScenarioGrid{
		{Topologies: []Topology{{W: 2, H: 2}}, Workloads: []workload.Spec{{Kind: workload.KindUniform}}},                         // N missing
		{N: 5, Workloads: []workload.Spec{{Kind: workload.KindUniform}}},                                                        // no topology
		{N: 5, Topologies: []Topology{{W: 2, H: 2}}},                                                                            // no workload
		{N: 5, Topologies: []Topology{{Kind: "ring", W: 2, H: 2}}, Workloads: []workload.Spec{{Kind: workload.KindUniform}}},    // bad topo
		{N: 5, Topologies: []Topology{{W: 2, H: 2}}, Workloads: []workload.Spec{{Kind: "tornado"}}},                             // bad workload
		{N: 5, Topologies: []Topology{{W: 2, H: 2}}, Workloads: []workload.Spec{{Kind: workload.KindUniform}}, Faults: []FaultScript{{Kind: "quake"}}}, // bad fault
	}
	for i, b := range bad {
		if _, err := b.Normalized(); err == nil {
			t.Errorf("bad grid %d normalized without error", i)
		}
	}

	// A grid where every (topology, workload) pairing is incompatible
	// errors instead of returning zero cells.
	empty := ScenarioGrid{
		N:          5,
		Topologies: []Topology{{W: 4, H: 1}},
		Workloads:  []workload.Spec{{Kind: workload.KindTranspose}},
	}
	if _, err := empty.Cells(); err == nil || !strings.Contains(err.Error(), "no compatible") {
		t.Errorf("all-incompatible grid err = %v", err)
	}
}

// TestScenarioReplayWeighting: replay cells offer the trace's recorded
// per-flow volumes (capped at the grid's N), surfaced via
// PerFlowOffered, and deliver them all on a clean fabric.
func TestScenarioReplayWeighting(t *testing.T) {
	cell := ScenarioCell{
		Cfg:      Config{Protocol: link.ProtocolRXL, Seed: 2},
		Topo:     Topology{Kind: TopoTorus, W: 2, H: 2},
		Workload: workload.Spec{Kind: workload.KindReplay, Trace: scenarioReplayTrace},
	}
	res, err := cell.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("replay cell not clean: %+v", res.Result.PerFlow)
	}
	want := []int{100, 80, 40, 20} // first record capped 120→100
	if !reflect.DeepEqual(res.Result.PerFlowOffered, want) {
		t.Fatalf("PerFlowOffered = %v, want %v", res.Result.PerFlowOffered, want)
	}
	for i, fc := range res.Result.PerFlow {
		if fc.Delivered != want[i] {
			t.Errorf("flow %d delivered %d of %d", i, fc.Delivered, want[i])
		}
	}
}
