package core

// Grid experiments: the job-generator side of the parallel sharded runner
// (internal/runner). A Grid enumerates a protocol × levels × BER × seed
// job set; RunGrid shards the cells across a worker pool, runs each cell
// on its own single-threaded sim.Engine, and returns the results in cell
// order — bit-identical at any worker count, because each cell's fabric is
// seeded independently of scheduling.

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/link"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Grid enumerates an experiment job set over the four axes the paper's
// evaluation varies. Empty axes inherit the single value from Base, so a
// Grid with only Protocols set is a protocol comparison, one with only
// BERs set is a BER sweep, and so on.
type Grid struct {
	// Base supplies every Config field the axes do not vary (burst
	// probability, internal corruption, timing overrides, link config).
	Base Config
	// Protocols, Levels, BERs and Seeds are the swept axes. Cells are
	// enumerated protocol-major, seeds innermost.
	Protocols []link.Protocol
	Levels    []int
	BERs      []float64
	Seeds     []uint64
	// N is the number of line-rate payloads offered per cell.
	N int
}

// Normalized returns the grid with every empty axis replaced by the
// corresponding single Base value — the canonical form: two grids that
// enumerate the same cells normalize to equal values, which is what the
// serving layer's content-addressed cache keys on.
func (g Grid) Normalized() Grid {
	if len(g.Protocols) == 0 {
		g.Protocols = []link.Protocol{g.Base.Protocol}
	}
	if len(g.Levels) == 0 {
		g.Levels = []int{g.Base.Levels}
	}
	if len(g.BERs) == 0 {
		g.BERs = []float64{g.Base.BER}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{g.Base.Seed}
	}
	return g
}

// Size is the number of cells the grid enumerates.
func (g Grid) Size() int {
	g = g.Normalized()
	return len(g.Protocols) * len(g.Levels) * len(g.BERs) * len(g.Seeds)
}

// Configs enumerates the cell configurations in deterministic order:
// protocol-major, then levels, then BER, with seeds innermost.
func (g Grid) Configs() []Config {
	g = g.Normalized()
	out := make([]Config, 0, g.Size())
	for _, proto := range g.Protocols {
		for _, lv := range g.Levels {
			for _, ber := range g.BERs {
				for _, seed := range g.Seeds {
					cfg := g.Base
					cfg.Protocol = proto
					cfg.Levels = lv
					cfg.BER = ber
					cfg.Seed = seed
					out = append(out, cfg)
				}
			}
		}
	}
	return out
}

// RunGrid runs every cell of the grid across the pool's workers and
// returns the results in cell order (see Grid.Configs). Each cell builds
// its own fabric — engine, channels, RNG streams — from its own seed, so
// the result set is bit-identical at workers=1 and workers=NumCPU. Cells
// whose seed is zero get a deterministic per-cell seed derived from the
// pool's base seed and the cell index, so multi-replica grids need not
// spell out every seed.
func RunGrid(ctx context.Context, pool runner.Pool, g Grid) ([]Result, error) {
	if g.N <= 0 {
		return nil, fmt.Errorf("core: grid needs N > 0 payloads per cell")
	}
	cfgs := g.Configs()
	return runner.Map(ctx, pool, len(cfgs), func(ctx context.Context, s runner.Shard) (Result, error) {
		cfg := cfgs[s.Index]
		if cfg.Seed == 0 {
			cfg.Seed = s.Seed
		}
		f, err := NewFabric(cfg)
		if err != nil {
			return Result{}, err
		}
		exp := Experiment{Fabric: f, N: g.N}
		return exp.Run(), nil
	})
}

// GridCSVHeader is the column set of Result.CSVRow, for runner.WriteCSV.
func GridCSVHeader() []string {
	return []string{
		"protocol", "levels", "ber", "seed", "offered", "delivered",
		"duplicates", "fail_order", "fail_data", "missing",
		"switch_drops", "retransmissions", "bw_loss", "elapsed_ns",
	}
}

// CSVRow renders the result as one row under GridCSVHeader.
func (r Result) CSVRow() []string {
	return []string{
		fmt.Sprint(r.Cfg.Protocol),
		strconv.Itoa(r.Cfg.Levels),
		strconv.FormatFloat(r.Cfg.BER, 'g', -1, 64),
		strconv.FormatUint(r.Cfg.Seed, 10),
		strconv.Itoa(r.Offered),
		strconv.Itoa(r.Failures.Delivered),
		strconv.Itoa(r.Failures.Duplicates),
		strconv.Itoa(r.Failures.FailOrder),
		strconv.Itoa(r.Failures.FailData),
		strconv.Itoa(r.Failures.Missing),
		strconv.FormatUint(r.Switches.DroppedUncorrectable, 10),
		strconv.FormatUint(r.LinkA.Retransmissions, 10),
		strconv.FormatFloat(r.Goodput.BWLoss, 'g', -1, 64),
		strconv.FormatInt(int64(r.Elapsed/sim.Nanosecond), 10),
	}
}

// ResultRows renders a result slice for runner.WriteCSV.
func ResultRows(results []Result) [][]string {
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = r.CSVRow()
	}
	return rows
}
