package core

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Adversarial property tests: seeded random drop/corrupt patterns at the
// switch, across many seeds. The invariants under test are the paper's
// central guarantees:
//
//   - RXL and CXL-no-piggyback always deliver exactly-once, in-order,
//     intact — no matter where drops land.
//   - Baseline CXL never delivers *corrupted* data from wire errors (its
//     CRC still works); its failures are confined to ordering/duplication
//     — and across enough seeds with piggybacking those failures do
//     appear.

// adversaryRun pushes a bidirectional workload through a one-switch
// fabric whose first forward hop randomly drops or corrupts data flits.
func adversaryRun(t *testing.T, proto link.Protocol, seed uint64) FailureCounts {
	t.Helper()
	cfg := link.DefaultConfig(proto)
	cfg.CoalesceCount = 1
	f := MustNewFabric(Config{Protocol: proto, Levels: 1, LinkConfig: &cfg, Seed: seed})

	const n = 120
	col := NewCollector(n)
	f.B().Deliver = col.Deliver

	rng := phy.NewRNG(seed * 2654435761)
	f.Chain.Fwd[0].FaultHook = func(fl *flit.Flit) bool {
		if fl.Header().Type != flit.TypeData {
			return false
		}
		switch rng.Intn(20) {
		case 0: // silent drop (5%)
			return true
		case 1: // uncorrectable corruption: the switch FEC will drop it
			fl.Raw[30] ^= rng.NonzeroByte()
			fl.Raw[33] ^= rng.NonzeroByte()
		case 2: // correctable single-symbol error
			fl.Raw[40] ^= rng.NonzeroByte()
		}
		return false
	}

	for i := 0; i < n; i++ {
		tag := uint64(i)
		f.Eng.Schedule(sim.Time(i)*60*sim.Nanosecond, func() {
			f.A().Submit(SealedPayload(tag))
		})
		f.Eng.Schedule(sim.Time(i)*60*sim.Nanosecond+30*sim.Nanosecond, func() {
			f.B().Submit(SealedPayload(5000 + tag))
		})
	}
	f.Run()
	return col.Finish()
}

func TestAdversaryRXLAlwaysExactlyOnce(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		fc := adversaryRun(t, link.ProtocolRXL, seed)
		if !fc.Clean() {
			t.Fatalf("seed %d: RXL violated exactly-once: %+v", seed, fc)
		}
	}
}

func TestAdversaryNoPiggybackAlwaysExactlyOnce(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		fc := adversaryRun(t, link.ProtocolCXLNoPiggyback, seed)
		if !fc.Clean() {
			t.Fatalf("seed %d: no-piggyback CXL violated exactly-once: %+v", seed, fc)
		}
	}
}

func TestAdversaryCXLNeverCorruptsButMisorders(t *testing.T) {
	sawOrderingHazard := false
	for seed := uint64(1); seed <= 25; seed++ {
		fc := adversaryRun(t, link.ProtocolCXL, seed)
		// Wire corruption must never reach the application: the link CRC
		// still protects data integrity, only sequencing is blind.
		if fc.FailData != 0 {
			t.Fatalf("seed %d: CXL delivered corrupted data: %+v", seed, fc)
		}
		if fc.FailOrder > 0 || fc.Duplicates > 0 || fc.Missing > 0 {
			sawOrderingHazard = true
		}
	}
	if !sawOrderingHazard {
		t.Fatal("no seed produced a CXL ordering hazard; adversary too weak")
	}
}
