// Package core wires the substrates — event simulator, BER channels, link
// layer, switches, and transaction agents — into complete end-to-end
// protocol stacks and runnable experiments. It is the layer the public rxl
// package, the command-line tools, and the benchmark harness sit on.
//
// A Fabric is two endpoints joined across a configurable number of
// switching levels with per-hop bit-error channels. Experiments inject a
// workload at endpoint A, validate deliveries at endpoint B with the
// paper's failure taxonomy (Section 7.1) — Fail_data for corrupted
// payloads reaching the application, Fail_order for misordered or
// duplicated deliveries — and report link, switch, and bandwidth
// statistics.
package core

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/switchfab"
	"repro/internal/trace"
)

// Config describes one end-to-end fabric.
type Config struct {
	// Protocol selects CXL, CXL-without-piggybacking, or RXL.
	Protocol link.Protocol
	// Levels is the number of switching levels (0 = direct connection).
	Levels int
	// BER is the per-link bit error rate (0 disables error injection).
	BER float64
	// BurstProb is the DFE burst-extension probability of the channel.
	BurstProb float64
	// InternalFlipProb is the per-flit probability of a single-bit
	// internal corruption inside each switch (Section 6.3).
	InternalFlipProb float64
	// Seed derives every RNG in the fabric; equal seeds give bit-exact
	// reruns.
	Seed uint64
	// LinkConfig overrides the link-layer configuration. Nil means
	// link.DefaultConfig(Protocol).
	LinkConfig *link.Config
	// NoFastPath forces the byte-level reference path on every link,
	// overriding LinkConfig/defaults: no deferred seals, no error-event
	// schedule skips. The zero value keeps the fast path on (the
	// link.DefaultConfig default); the differential tests prove the two
	// settings produce bit-identical results for identical seeds.
	NoFastPath bool
	// NoExpress disables the express traversal path on mesh fabrics:
	// every flit pays one engine event per hop (the PR 5 model) instead
	// of claiming its whole route at injection. Unlike NoFastPath this is
	// a model switch, not a reference toggle — express changes the wire
	// claim order under cross-traffic — so the differential contract
	// compares fast vs byte-level at equal NoExpress, and the express
	// test suite separately pins express == hop-by-hop timing on
	// same-path-only traffic. Ignored by chain fabrics.
	NoExpress bool
	// Serialization, Propagation and SwitchLatency override the default
	// per-hop timing when non-zero.
	Serialization sim.Time
	Propagation   sim.Time
	SwitchLatency sim.Time
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Levels < 0:
		return fmt.Errorf("core: negative switching levels %d", c.Levels)
	case c.BER < 0 || c.BER > 1:
		return fmt.Errorf("core: BER %g out of [0,1]", c.BER)
	case c.BurstProb < 0 || c.BurstProb >= 1:
		return fmt.Errorf("core: BurstProb %g out of [0,1)", c.BurstProb)
	case c.InternalFlipProb < 0 || c.InternalFlipProb > 1:
		return fmt.Errorf("core: InternalFlipProb %g out of [0,1]", c.InternalFlipProb)
	}
	return nil
}

// Fabric is a live end-to-end stack: engine, chain topology, channels.
type Fabric struct {
	Cfg   Config
	Eng   *sim.Engine
	Chain *switchfab.Chain
	// FwdSched and BwdSched are the per-direction shared error-event
	// schedules (nil when BER is 0): each A→B traversal consumes one
	// levels+1-hop window of FwdSched end-to-end, with the whole-path
	// grant taken at the first wire, and symmetrically for B→A.
	FwdSched, BwdSched *phy.SharedSchedule
	rng                *phy.RNG
}

// NewFabric builds a fabric from the configuration.
func NewFabric(cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	ccfg := switchfab.DefaultChainConfig(cfg.Protocol, cfg.Levels)
	if cfg.LinkConfig != nil {
		ccfg.LinkCfg = *cfg.LinkConfig
	}
	if cfg.NoFastPath {
		ccfg.LinkCfg.FastPath = false
	}
	if cfg.Serialization > 0 {
		ccfg.Serialization = cfg.Serialization
	}
	if cfg.Propagation > 0 {
		ccfg.Propagation = cfg.Propagation
	}
	if cfg.SwitchLatency > 0 {
		ccfg.SwitchLatency = cfg.SwitchLatency
	}

	f := &Fabric{Cfg: cfg, Eng: eng, rng: phy.NewRNG(cfg.Seed)}
	f.Chain = switchfab.NewChain(eng, ccfg)

	if cfg.BER > 0 {
		// One shared schedule per direction: the whole A→B (and B→A) path
		// is one error-event stream, consumed a levels+1-hop window per
		// flit. The first wire of each direction is the injection point
		// where whole-path grants are taken.
		f.FwdSched = phy.NewSharedSchedule(cfg.BER, cfg.BurstProb, f.rng.Split(), flit.Bits)
		f.BwdSched = phy.NewSharedSchedule(cfg.BER, cfg.BurstProb, f.rng.Split(), flit.Bits)
		wireSched := func(wires []*link.Wire, s *phy.SharedSchedule) {
			for i, w := range wires {
				w.PathSched = s
				if i == 0 {
					w.PathHops = len(wires)
				}
			}
		}
		wireSched(f.Chain.Fwd, f.FwdSched)
		wireSched(f.Chain.Bwd, f.BwdSched)
	}
	if cfg.InternalFlipProb > 0 {
		for _, s := range f.Chain.Switches {
			s.SeedInternalFaults(cfg.InternalFlipProb, f.rng.Split())
		}
	}
	return f, nil
}

// MustNewFabric is NewFabric panicking on error, for tests and examples.
func MustNewFabric(cfg Config) *Fabric {
	f, err := NewFabric(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// A returns the initiating endpoint's link peer.
func (f *Fabric) A() *link.Peer { return f.Chain.A }

// B returns the destination endpoint's link peer.
func (f *Fabric) B() *link.Peer { return f.Chain.B }

// Run drains the event queue.
func (f *Fabric) Run() { f.Eng.Run() }

// RunFor advances simulated time by d.
func (f *Fabric) RunFor(d sim.Time) { f.Eng.RunUntil(f.Eng.Now() + d) }

// sealedLimit is the extent of the integrity keystream within a payload:
// everything up to the fabric routing bytes (source and destination tags),
// which the link layer may stamp in transit.
func sealedLimit(n int) int {
	if n > flit.SrcRouteOffset {
		return flit.SrcRouteOffset
	}
	return n
}

// payloadBody fills bytes [8:limit) of a tag payload with a cheap
// deterministic keystream of the tag, so corrupted payloads that escape
// the protocol are detectable at the application (Fail_data).
func payloadBody(tag uint64, p []byte) {
	x := tag*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for i := 8; i < sealedLimit(len(p)); i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
}

// SealedPayload returns a full flit payload carrying tag plus an integrity
// keystream covering the entire deliverable region, so the receiver can
// verify it regardless of zero-padding on the wire.
func SealedPayload(tag uint64) []byte {
	p := trace.TagPayload(tag, flit.PayloadSize)
	payloadBody(tag, p)
	return p
}

// PayloadIntact reports whether a delivered payload matches its tag's
// keystream (ignoring the routing tag bytes at the payload tail).
func PayloadIntact(p []byte) bool {
	tag := trace.TagOf(p)
	want := make([]byte, len(p))
	payloadBody(tag, want)
	for i := 8; i < sealedLimit(len(p)); i++ {
		if p[i] != want[i] {
			return false
		}
	}
	return true
}

// FailureCounts is the paper's protocol-failure taxonomy (Section 7.1)
// measured at the application boundary of endpoint B.
type FailureCounts struct {
	// Delivered counts payloads handed to the application.
	Delivered int
	// FailData counts deliveries whose payload bytes were corrupted
	// (Fail_data: corrupted data forwarded to the application layer).
	FailData int
	// FailOrder counts out-of-order deliveries (Fail_order: flits
	// forwarded in an incorrect order), including skips past dropped
	// flits.
	FailOrder int
	// Duplicates counts payloads delivered more than once — the Fig. 5a
	// transaction hazard.
	Duplicates int
	// Missing counts tags never delivered.
	Missing int
}

// Clean reports whether delivery was exactly-once, in-order, and intact.
func (fc FailureCounts) Clean() bool {
	return fc.FailData == 0 && fc.FailOrder == 0 && fc.Duplicates == 0 && fc.Missing == 0
}

// Collector accumulates FailureCounts from delivered payloads.
type Collector struct {
	Counts  FailureCounts
	Expect  int // total tags expected (set by the experiment)
	checker *trace.Checker
}

// NewCollector returns a collector expecting `expect` tags.
func NewCollector(expect int) *Collector {
	return &Collector{Expect: expect, checker: trace.NewChecker()}
}

// Deliver is the endpoint delivery callback.
func (c *Collector) Deliver(p []byte) {
	before := *c.checker
	c.checker.Deliver(p)
	c.Counts.Delivered++
	if c.checker.Duplicates > before.Duplicates {
		c.Counts.Duplicates++
	}
	if c.checker.OutOfOrder > before.OutOfOrder {
		c.Counts.FailOrder++
	}
	if !PayloadIntact(p) {
		c.Counts.FailData++
	}
}

// Finish computes Missing and returns the final counts.
func (c *Collector) Finish() FailureCounts {
	unique := c.Counts.Delivered - c.Counts.Duplicates
	if c.Expect > unique {
		c.Counts.Missing = c.Expect - unique
	}
	return c.Counts
}
