package core

import (
	"reflect"
	"testing"

	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// assertCellFastSlowIdentical runs one scenario cell with the fast path
// on and off and requires bit-identical accounting: per-flow failure
// taxonomy, endpoint link statistics, router totals, per-path channel
// statistics, hook drops, and simulated end time.
func assertCellFastSlowIdentical(t *testing.T, c ScenarioCell, n int) ScenarioResult {
	t.Helper()
	fast, slow, identical, err := c.RunDifferential(n)
	if err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Errorf("fast/slow diverge:\nfast: %+v\nslow: %+v", fast.Result, slow.Result)
	}
	return fast
}

// TestMeshFastPathDifferential is the correctness bar of the mesh-wide
// error-event fast path: for identical seeds, FastPath on and off must
// produce bit-identical workload results across the scenario matrix —
// mesh sizes (a 1-wide chain degenerate, the minimal square, the full
// 4x4) × workloads × protocols × BERs spanning error-free, rare-error,
// and retry-heavy operating points. The case list comes from the shared
// ScenarioGrid enumerator instead of hand-rolled flow tables; transpose
// on the non-square 4x1 drops out as incompatible.
func TestMeshFastPathDifferential(t *testing.T) {
	g := ScenarioGrid{
		Base:      Config{BurstProb: 0.4, Seed: 413},
		Protocols: Protocols,
		Topologies: []Topology{
			{W: 4, H: 1},
			{W: 2, H: 2},
			{W: 4, H: 4},
		},
		Workloads: []workload.Spec{
			{Kind: workload.KindUniform, Flows: 3},
			{Kind: workload.KindTranspose},
		},
		BERs: []float64{0, 1e-6, 1e-4},
		N:    200,
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// 3 protocols × (3 topologies × 2 workloads − 1 incompatible) × 3 BERs.
	if want := len(Protocols) * 5 * 3; len(cells) != want {
		t.Fatalf("matrix enumerates %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		t.Run(c.Name(), func(t *testing.T) {
			assertCellFastSlowIdentical(t, c, g.N)
		})
	}
}

// TestMeshFastPathDifferentialInternalCorruption adds router-internal bit
// flips mid-path, forcing clean granted flits onto the byte-level path
// inside the mesh: the materialized image must be byte-identical to an
// eager seal or verdicts diverge.
func TestMeshFastPathDifferentialInternalCorruption(t *testing.T) {
	for _, proto := range Protocols {
		t.Run(proto.String(), func(t *testing.T) {
			run := func(noFast bool) MeshResult {
				cfg := Config{
					Protocol:   proto,
					BER:        1e-5,
					Seed:       42,
					NoFastPath: noFast,
				}
				m := MustNewMeshFabric(cfg, 3, 3)
				// Deterministic internal fault seeding on every router, so
				// fast and slow draw the same fault points.
				root := phy.NewRNG(7)
				for _, col := range m.Mesh.Routers {
					for _, r := range col {
						r.SeedInternalFaults(2e-3, root.Split())
					}
				}
				flows := []MeshFlow{
					{SrcX: 0, SrcY: 0, DstX: 2, DstY: 2},
					{SrcX: 2, SrcY: 2, DstX: 0, DstY: 0},
				}
				res := m.RunWorkload(flows, 250)
				res.Cfg = Config{}
				return res
			}
			fast, slow := run(false), run(true)
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("mesh fast/slow diverge under internal corruption:\nfast: %+v\nslow: %+v", fast, slow)
			}
		})
	}
}

// TestMeshStatsAudit pins the per-hop statistics semantics against the
// flit's actual route — the double-count fix: a flit crossing R routers
// increments FlitsIn R times, Forwarded R-1 times (the inter-router
// sends), and DeliveredLocal once. Before the fix the delivery hop was
// counted as a forward, inflating Forwarded by one per delivered flit.
// The audit holds identically on the fast path and the byte-level
// reference.
func TestMeshStatsAudit(t *testing.T) {
	const n = 400
	for _, noFast := range []bool{false, true} {
		name := "fastpath"
		if noFast {
			name = "bytelevel"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{Protocol: link.ProtocolRXL, Seed: 5, NoFastPath: noFast}
			m := MustNewMeshFabric(cfg, 4, 4)
			flow := MeshFlow{SrcX: 0, SrcY: 0, DstX: 3, DstY: 3}
			res := m.RunWorkload([]MeshFlow{flow}, n)
			if !res.Clean() {
				t.Fatalf("clean mesh run not clean: %+v", res.PerFlow)
			}

			// Every flit — data forward, control reverse — crosses 7
			// routers on the (0,0)↔(3,3) diagonal. Reverse control
			// traffic: standalone ACKs from the receiver (no NAKs, no
			// retransmissions on a clean run).
			dataFlits := res.TxStats[0].FlitsSent
			ackFlits := res.RxStats[0].FlitsSent
			if res.TxStats[0].Retransmissions != 0 || res.RxStats[0].NakFlitsSent != 0 {
				t.Fatalf("clean run had recovery traffic: %+v", res.TxStats[0])
			}
			total := dataFlits + ackFlits
			const routersOnPath = 7 // 1 + Manhattan distance 6
			st := res.Routers
			if st.FlitsIn != total*routersOnPath {
				t.Errorf("FlitsIn = %d, want %d (%d flits × %d routers)", st.FlitsIn, total*routersOnPath, total, routersOnPath)
			}
			if st.Forwarded != total*(routersOnPath-1) {
				t.Errorf("Forwarded = %d, want %d — delivery hop double-counted as forward", st.Forwarded, total*(routersOnPath-1))
			}
			if st.DeliveredLocal != total {
				t.Errorf("DeliveredLocal = %d, want %d", st.DeliveredLocal, total)
			}
		})
	}
}

// TestMeshStatsAuditZipfHotSpot extends the per-hop statistics audit to
// a generated hot-spot workload: under zipf skew toward node 0, the
// router totals must still satisfy the route-length identities flow by
// flow — DeliveredLocal counts every data and control flit exactly once
// at its terminal router, Forwarded counts routers-on-path − 1 per flit
// — and the sink's router must dominate local deliveries. The audit
// holds identically on the fast path and the byte-level reference.
func TestMeshStatsAuditZipfHotSpot(t *testing.T) {
	const n = 120
	for _, noFast := range []bool{false, true} {
		name := "fastpath"
		if noFast {
			name = "bytelevel"
		}
		t.Run(name, func(t *testing.T) {
			cell := ScenarioCell{
				Cfg:      Config{Protocol: link.ProtocolRXL, Seed: 11, NoFastPath: noFast},
				Topo:     Topology{Kind: TopoMesh, W: 4, H: 4},
				Workload: workload.Spec{Kind: workload.KindZipf, Flows: 10, Skew: 2},
			}
			flows, _, err := cell.Flows()
			if err != nil {
				t.Fatal(err)
			}
			fab, err := NewTopologyFabric(cell.Cfg, cell.Topo)
			if err != nil {
				t.Fatal(err)
			}
			res := fab.RunWorkload(flows, n)
			if !res.Clean() {
				t.Fatalf("clean mesh run not clean: %+v", res.PerFlow)
			}

			// Per-flow identities: data flits cross the forward route's
			// routers, standalone ACKs the reverse route's (same count —
			// XY routing is symmetric in length). No recovery traffic on
			// a clean run.
			var wantIn, wantFwd, wantLocal uint64
			for i, fl := range flows {
				if res.TxStats[i].Retransmissions != 0 || res.RxStats[i].NakFlitsSent != 0 {
					t.Fatalf("flow %d had recovery traffic on a clean run", i)
				}
				routers := uint64(fab.Mesh.HopsBetween(fl.SrcX, fl.SrcY, fl.DstX, fl.DstY))
				total := res.TxStats[i].FlitsSent + res.RxStats[i].FlitsSent
				wantIn += total * routers
				wantFwd += total * (routers - 1)
				wantLocal += total
			}
			st := res.Routers
			if st.FlitsIn != wantIn {
				t.Errorf("FlitsIn = %d, want %d", st.FlitsIn, wantIn)
			}
			if st.Forwarded != wantFwd {
				t.Errorf("Forwarded = %d, want %d", st.Forwarded, wantFwd)
			}
			if st.DeliveredLocal != wantLocal {
				t.Errorf("DeliveredLocal = %d, want %d", st.DeliveredLocal, wantLocal)
			}

			// Hot-spot skew: node 0's router receives the most data
			// deliveries of any router (zipf concentrates destinations
			// there; ACK deliveries at sources cannot overtake it since
			// control flits are coalesced).
			sink := fab.Mesh.Routers[0][0].Stats.DeliveredLocal
			for x := 0; x < 4; x++ {
				for y := 0; y < 4; y++ {
					if x == 0 && y == 0 {
						continue
					}
					if got := fab.Mesh.Routers[x][y].Stats.DeliveredLocal; got > sink {
						t.Errorf("router (%d,%d) delivered %d > hot-spot router's %d", x, y, got, sink)
					}
				}
			}
		})
	}
}

// TestMeshWorkloadSpanDrainEquivalence: draining the same mesh workload
// with the engine's bulk Run and with RunSpans at an arbitrary span gives
// identical delivery accounting — the engine-level bulk-advance
// determinism surfaced at the fabric layer.
func TestMeshWorkloadSpanDrainEquivalence(t *testing.T) {
	run := func(span sim.Time) MeshResult {
		cfg := Config{Protocol: link.ProtocolRXL, BER: 1e-5, BurstProb: 0.4, Seed: 9}
		m := MustNewMeshFabric(cfg, 3, 3)
		flow := MeshFlow{SrcX: 0, SrcY: 0, DstX: 2, DstY: 2}
		src := m.Node(flow.SrcX, flow.SrcY)
		dst := m.Node(flow.DstX, flow.DstY)
		tx := src.PeerTo(dst.ID)
		col := NewCollector(300)
		dst.PeerTo(src.ID).Deliver = col.Deliver
		for i := 0; i < 300; i++ {
			tx.Submit(SealedPayload(uint64(i)))
		}
		if span > 0 {
			m.Eng.RunSpans(span)
		} else {
			m.Run()
		}
		return MeshResult{
			PerFlow: []FailureCounts{col.Finish()},
			TxStats: []link.Stats{tx.Stats},
			Routers: m.Mesh.TotalStats(),
			Paths:   m.Mesh.PathStats(),
		}
	}
	ref := run(0)
	for _, span := range []sim.Time{1 * sim.Nanosecond, 37 * sim.Nanosecond, 5 * sim.Microsecond} {
		got := run(span)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("span %d drain diverges:\nrun:   %+v\nspans: %+v", span, ref, got)
		}
	}
}
