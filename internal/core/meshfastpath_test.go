package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
)

// runMeshOnce executes one mesh workload and returns the result with the
// config blanked so fast and slow runs compare equal.
func runMeshOnce(t *testing.T, cfg Config, w, h int, flows []MeshFlow, n int) MeshResult {
	t.Helper()
	m, err := NewMeshFabric(cfg, w, h)
	if err != nil {
		t.Fatal(err)
	}
	res := m.RunWorkload(flows, n)
	res.Cfg = Config{}
	return res
}

// assertMeshFastSlowIdentical runs the same mesh workload with the fast
// path on and off and requires bit-identical accounting: per-flow failure
// taxonomy, endpoint link statistics, router totals, per-path channel
// statistics, and simulated end time.
func assertMeshFastSlowIdentical(t *testing.T, cfg Config, w, h int, flows []MeshFlow, n int) {
	t.Helper()
	fastCfg, slowCfg := cfg, cfg
	fastCfg.NoFastPath = false
	slowCfg.NoFastPath = true

	fast := runMeshOnce(t, fastCfg, w, h, flows, n)
	slow := runMeshOnce(t, slowCfg, w, h, flows, n)
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("mesh fast/slow diverge:\nfast: %+v\nslow: %+v", fast, slow)
	}
}

// meshCases are the topology grid of the differential suite: a 1-wide
// chain-degenerate mesh, the minimal square, and the full 4x4 diagonal
// with crossing flows sharing intermediate routers.
var meshCases = []struct {
	name  string
	w, h  int
	flows []MeshFlow
}{
	{"4x1", 4, 1, []MeshFlow{
		{SrcX: 0, SrcY: 0, DstX: 3, DstY: 0},
		{SrcX: 3, SrcY: 0, DstX: 0, DstY: 0},
	}},
	{"2x2", 2, 2, []MeshFlow{
		{SrcX: 0, SrcY: 0, DstX: 1, DstY: 1},
		{SrcX: 1, SrcY: 0, DstX: 0, DstY: 1},
	}},
	{"4x4", 4, 4, []MeshFlow{
		{SrcX: 0, SrcY: 0, DstX: 3, DstY: 3},
		{SrcX: 3, SrcY: 0, DstX: 0, DstY: 3},
		{SrcX: 0, SrcY: 3, DstX: 3, DstY: 0},
	}},
}

// TestMeshFastPathDifferential is the correctness bar of the mesh-wide
// error-event fast path: for identical seeds, FastPath on and off must
// produce bit-identical workload results across mesh sizes × protocols ×
// BERs spanning error-free, rare-error, and retry-heavy operating points.
func TestMeshFastPathDifferential(t *testing.T) {
	const n = 250
	for _, tc := range meshCases {
		for _, proto := range Protocols {
			for _, ber := range []float64{0, 1e-6, 1e-4} {
				cfg := Config{
					Protocol:  proto,
					BER:       ber,
					BurstProb: 0.4,
					Seed:      100*uint64(tc.w) + 13,
				}
				name := fmt.Sprintf("%s/%s/BER%g", tc.name, proto, ber)
				t.Run(name, func(t *testing.T) {
					assertMeshFastSlowIdentical(t, cfg, tc.w, tc.h, tc.flows, n)
				})
			}
		}
	}
}

// TestMeshFastPathDifferentialInternalCorruption adds router-internal bit
// flips mid-path, forcing clean granted flits onto the byte-level path
// inside the mesh: the materialized image must be byte-identical to an
// eager seal or verdicts diverge.
func TestMeshFastPathDifferentialInternalCorruption(t *testing.T) {
	for _, proto := range Protocols {
		t.Run(proto.String(), func(t *testing.T) {
			run := func(noFast bool) MeshResult {
				cfg := Config{
					Protocol:   proto,
					BER:        1e-5,
					Seed:       42,
					NoFastPath: noFast,
				}
				m := MustNewMeshFabric(cfg, 3, 3)
				// Deterministic internal fault seeding on every router, so
				// fast and slow draw the same fault points.
				root := phy.NewRNG(7)
				for _, col := range m.Mesh.Routers {
					for _, r := range col {
						r.SeedInternalFaults(2e-3, root.Split())
					}
				}
				flows := []MeshFlow{
					{SrcX: 0, SrcY: 0, DstX: 2, DstY: 2},
					{SrcX: 2, SrcY: 2, DstX: 0, DstY: 0},
				}
				res := m.RunWorkload(flows, 250)
				res.Cfg = Config{}
				return res
			}
			fast, slow := run(false), run(true)
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("mesh fast/slow diverge under internal corruption:\nfast: %+v\nslow: %+v", fast, slow)
			}
		})
	}
}

// TestMeshStatsAudit pins the per-hop statistics semantics against the
// flit's actual route — the double-count fix: a flit crossing R routers
// increments FlitsIn R times, Forwarded R-1 times (the inter-router
// sends), and DeliveredLocal once. Before the fix the delivery hop was
// counted as a forward, inflating Forwarded by one per delivered flit.
// The audit holds identically on the fast path and the byte-level
// reference.
func TestMeshStatsAudit(t *testing.T) {
	const n = 400
	for _, noFast := range []bool{false, true} {
		name := "fastpath"
		if noFast {
			name = "bytelevel"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{Protocol: link.ProtocolRXL, Seed: 5, NoFastPath: noFast}
			m := MustNewMeshFabric(cfg, 4, 4)
			flow := MeshFlow{SrcX: 0, SrcY: 0, DstX: 3, DstY: 3}
			res := m.RunWorkload([]MeshFlow{flow}, n)
			if !res.Clean() {
				t.Fatalf("clean mesh run not clean: %+v", res.PerFlow)
			}

			// Every flit — data forward, control reverse — crosses 7
			// routers on the (0,0)↔(3,3) diagonal. Reverse control
			// traffic: standalone ACKs from the receiver (no NAKs, no
			// retransmissions on a clean run).
			dataFlits := res.TxStats[0].FlitsSent
			ackFlits := res.RxStats[0].FlitsSent
			if res.TxStats[0].Retransmissions != 0 || res.RxStats[0].NakFlitsSent != 0 {
				t.Fatalf("clean run had recovery traffic: %+v", res.TxStats[0])
			}
			total := dataFlits + ackFlits
			const routersOnPath = 7 // 1 + Manhattan distance 6
			st := res.Routers
			if st.FlitsIn != total*routersOnPath {
				t.Errorf("FlitsIn = %d, want %d (%d flits × %d routers)", st.FlitsIn, total*routersOnPath, total, routersOnPath)
			}
			if st.Forwarded != total*(routersOnPath-1) {
				t.Errorf("Forwarded = %d, want %d — delivery hop double-counted as forward", st.Forwarded, total*(routersOnPath-1))
			}
			if st.DeliveredLocal != total {
				t.Errorf("DeliveredLocal = %d, want %d", st.DeliveredLocal, total)
			}
		})
	}
}

// TestMeshWorkloadSpanDrainEquivalence: draining the same mesh workload
// with the engine's bulk Run and with RunSpans at an arbitrary span gives
// identical delivery accounting — the engine-level bulk-advance
// determinism surfaced at the fabric layer.
func TestMeshWorkloadSpanDrainEquivalence(t *testing.T) {
	run := func(span sim.Time) MeshResult {
		cfg := Config{Protocol: link.ProtocolRXL, BER: 1e-5, BurstProb: 0.4, Seed: 9}
		m := MustNewMeshFabric(cfg, 3, 3)
		flow := MeshFlow{SrcX: 0, SrcY: 0, DstX: 2, DstY: 2}
		src := m.Node(flow.SrcX, flow.SrcY)
		dst := m.Node(flow.DstX, flow.DstY)
		tx := src.PeerTo(dst.ID)
		col := NewCollector(300)
		dst.PeerTo(src.ID).Deliver = col.Deliver
		for i := 0; i < 300; i++ {
			tx.Submit(SealedPayload(uint64(i)))
		}
		if span > 0 {
			m.Eng.RunSpans(span)
		} else {
			m.Run()
		}
		return MeshResult{
			PerFlow: []FailureCounts{col.Finish()},
			TxStats: []link.Stats{tx.Stats},
			Routers: m.Mesh.TotalStats(),
			Paths:   m.Mesh.PathStats(),
		}
	}
	ref := run(0)
	for _, span := range []sim.Time{1 * sim.Nanosecond, 37 * sim.Nanosecond, 5 * sim.Microsecond} {
		got := run(span)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("span %d drain diverges:\nrun:   %+v\nspans: %+v", span, ref, got)
		}
	}
}
