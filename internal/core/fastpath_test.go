package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/switchfab"
	"repro/internal/trace"
)

// channelStats is the error-process accounting a fabric run leaves
// behind: one entry per direction's shared path schedule.
type channelStats struct {
	BitsSeen, BitsFlipped, ErrorEvents, UnitsTouched uint64
}

// schedStats snapshots a shared schedule's channel accounting.
func schedStats(s *phy.SharedSchedule) channelStats {
	ch := s.Channel()
	return channelStats{
		BitsSeen:     ch.BitsSeen,
		BitsFlipped:  ch.BitsFlipped,
		ErrorEvents:  ch.ErrorEvents,
		UnitsTouched: ch.UnitsTouched,
	}
}

// runOnce executes one experiment and returns its result (with the config
// blanked so fast and slow runs compare equal) plus the per-direction
// shared-schedule statistics.
func runOnce(t *testing.T, cfg Config, n int) (Result, []channelStats) {
	t.Helper()
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp := Experiment{Fabric: f, N: n}
	res := exp.Run()
	res.Cfg = Config{}
	var chs []channelStats
	if f.FwdSched != nil {
		chs = append(chs, schedStats(f.FwdSched), schedStats(f.BwdSched))
	}
	return res, chs
}

// assertFastSlowIdentical runs cfg with the fast path on and off and
// requires bit-identical results: failure taxonomy, link and switch
// statistics, goodput, simulated time, and per-wire channel accounting.
func assertFastSlowIdentical(t *testing.T, cfg Config, n int) {
	t.Helper()
	fastCfg, slowCfg := cfg, cfg
	fastCfg.NoFastPath = false
	slowCfg.NoFastPath = true

	fastRes, fastChs := runOnce(t, fastCfg, n)
	slowRes, slowChs := runOnce(t, slowCfg, n)

	if !reflect.DeepEqual(fastRes, slowRes) {
		t.Errorf("results diverge:\nfast: %+v\nslow: %+v", fastRes, slowRes)
	}
	if !reflect.DeepEqual(fastChs, slowChs) {
		t.Errorf("channel stats diverge:\nfast: %+v\nslow: %+v", fastChs, slowChs)
	}
}

// TestFastPathDifferential is the correctness bar of the error-event fast
// path: for identical seeds, FastPath=true and FastPath=false must produce
// bit-identical experiment results — same Fail_data/Fail_order counts,
// same retransmissions, same channel statistics, same simulated end time —
// across all three protocols, switching depths 0-2, and a BER grid
// spanning error-free, rare-error, and retry-heavy operating points.
func TestFastPathDifferential(t *testing.T) {
	const n = 600
	for _, proto := range Protocols {
		for _, levels := range []int{0, 1, 2} {
			for _, ber := range []float64{0, 1e-6, 1e-4} {
				cfg := Config{
					Protocol:  proto,
					Levels:    levels,
					BER:       ber,
					BurstProb: 0.4,
					Seed:      1000*uint64(levels) + 7,
				}
				name := fmt.Sprintf("%s/L%d/BER%g", proto, levels, ber)
				t.Run(name, func(t *testing.T) {
					assertFastSlowIdentical(t, cfg, n)
				})
			}
		}
	}
}

// TestFastPathDifferentialInternalCorruption adds switch-internal bit
// flips, which force clean flits onto the byte-level path mid-fabric: the
// materialized image must be byte-identical to an eagerly sealed one, or
// CRC/FEC verdicts — and therefore failure counts — diverge.
func TestFastPathDifferentialInternalCorruption(t *testing.T) {
	for _, proto := range Protocols {
		cfg := Config{
			Protocol:         proto,
			Levels:           2,
			BER:              1e-5,
			InternalFlipProb: 2e-3,
			Seed:             99,
		}
		t.Run(proto.String(), func(t *testing.T) {
			assertFastSlowIdentical(t, cfg, 600)
		})
	}
}

// TestFastPathDifferentialSelectiveRepeat exercises the selective-repeat
// retry engine, whose retransmissions and reassembly buffering must stay
// on the byte-level path under FastPath.
func TestFastPathDifferentialSelectiveRepeat(t *testing.T) {
	// RXL cannot run selective repeat (ISN has no explicit sequence
	// numbers to reorder by), so only the CXL variants apply.
	for _, proto := range []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback} {
		lcfg := link.DefaultConfig(proto)
		lcfg.Retry = link.SelectiveRepeat
		cfg := Config{
			Protocol:   proto,
			Levels:     1,
			BER:        5e-5,
			BurstProb:  0.4,
			Seed:       31,
			LinkConfig: &lcfg,
		}
		t.Run(proto.String(), func(t *testing.T) {
			assertFastSlowIdentical(t, cfg, 600)
		})
	}
}

// starSnapshot captures everything a star run can observe: per-stream
// delivery taxonomy, per-peer link statistics, crossbar statistics, wire
// channel accounting, and the simulated end time.
type starSnapshot struct {
	Delivered, OutOfOrder, Duplicates []int
	HostStats, DevStats               []link.Stats
	Crossbar                          switchfab.Stats
	Channels                          []channelStats
	End                               sim.Time
}

// runStarOnce drives a bidirectional host<->device stream per device
// through the crossbar and snapshots the observable state.
func runStarOnce(t *testing.T, cfg Config, n uint64) starSnapshot {
	t.Helper()
	s, err := NewStar(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var snap starSnapshot
	checkers := map[byte]*trace.Checker{}
	for _, d := range s.Devices() {
		checkers[d] = trace.NewChecker()
		s.Dev[d].Deliver = checkers[d].Deliver
		s.Host[d].Deliver = func([]byte) {}
	}
	for i := uint64(0); i < n; i++ {
		for _, d := range s.Devices() {
			s.Host[d].Submit(trace.TagPayload(i, 16))
			s.Dev[d].Submit(trace.TagPayload(i, 16))
		}
	}
	s.Run()
	for _, d := range s.Devices() {
		c := checkers[d]
		snap.Delivered = append(snap.Delivered, c.Delivered)
		snap.OutOfOrder = append(snap.OutOfOrder, c.OutOfOrder)
		snap.Duplicates = append(snap.Duplicates, c.Duplicates)
		snap.HostStats = append(snap.HostStats, s.Host[d].Stats)
		snap.DevStats = append(snap.DevStats, s.Dev[d].Stats)
	}
	snap.Crossbar = s.Crossbar.Stats
	for _, w := range s.Wires {
		if w.Channel == nil {
			continue
		}
		snap.Channels = append(snap.Channels, channelStats{
			BitsSeen:     w.Channel.BitsSeen,
			BitsFlipped:  w.Channel.BitsFlipped,
			ErrorEvents:  w.Channel.ErrorEvents,
			UnitsTouched: w.Channel.UnitsTouched,
		})
	}
	snap.End = s.Eng.Now()
	return snap
}

// TestFastPathDifferentialStar extends the fast-vs-slow correctness bar to
// the star (crossbar) topology, where Config.NoFastPath is plumbed through
// NewStar's per-peer link configs rather than the chain builder.
func TestFastPathDifferentialStar(t *testing.T) {
	for _, proto := range Protocols {
		cfg := Config{
			Protocol:  proto,
			BER:       1e-5,
			BurstProb: 0.4,
			Seed:      17,
		}
		t.Run(proto.String(), func(t *testing.T) {
			fastCfg, slowCfg := cfg, cfg
			fastCfg.NoFastPath = false
			slowCfg.NoFastPath = true
			fast := runStarOnce(t, fastCfg, 400)
			slow := runStarOnce(t, slowCfg, 400)
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("star fast/slow diverge:\nfast: %+v\nslow: %+v", fast, slow)
			}
		})
	}
}
