package core

import (
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/transaction"
)

// MessageEndpoint adapts a link-layer peer to the transaction layer: it
// packs outgoing messages into flit payloads (several per flit, as the CXL
// link layer does — Section 2.2) and unpacks arriving payloads to a
// handler. Losing one flit therefore disrupts every packed message, the
// amplification the paper highlights (Section 2.3).
type MessageEndpoint struct {
	Peer *link.Peer
	// OnMessage receives each unpacked message in delivery order.
	OnMessage func(transaction.Message)
	// MaxPerFlit caps messages packed per flit (default: pack capacity).
	MaxPerFlit int

	queue []transaction.Message

	// Packed counts flits submitted; Messages counts messages carried.
	Packed   uint64
	Messages uint64
}

// NewMessageEndpoint wraps peer and installs the unpacking deliver hook.
func NewMessageEndpoint(peer *link.Peer, onMessage func(transaction.Message)) *MessageEndpoint {
	ep := &MessageEndpoint{Peer: peer, OnMessage: onMessage}
	peer.Deliver = ep.deliver
	return ep
}

// Send queues one message and flushes it into a flit immediately.
// Immediate flushing (one flit per Send unless Batch is used) keeps
// failure scenarios deterministic: tests control exactly which messages
// share a flit.
func (ep *MessageEndpoint) Send(m transaction.Message) {
	ep.queue = append(ep.queue, m)
	ep.Flush()
}

// Batch queues a message without flushing; call Flush to emit the packed
// flit(s).
func (ep *MessageEndpoint) Batch(m transaction.Message) {
	ep.queue = append(ep.queue, m)
}

// Flush packs every queued message into as few flits as possible and
// submits them.
func (ep *MessageEndpoint) Flush() {
	for len(ep.queue) > 0 {
		limit := ep.MaxPerFlit
		if limit <= 0 || limit > transaction.PackCapacity {
			limit = transaction.PackCapacity
		}
		batch := ep.queue
		if len(batch) > limit {
			batch = batch[:limit]
		}
		payload := make([]byte, flit.PayloadSize)
		n := transaction.Pack(payload, batch)
		ep.queue = ep.queue[n:]
		ep.Packed++
		ep.Messages += uint64(n)
		ep.Peer.Submit(payload)
	}
}

func (ep *MessageEndpoint) deliver(p []byte) {
	if ep.OnMessage == nil {
		return
	}
	for _, m := range transaction.Unpack(p) {
		ep.OnMessage(m)
	}
}
