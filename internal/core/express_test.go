package core

import (
	"reflect"
	"testing"

	"repro/internal/link"
	"repro/internal/workload"
)

// TestExpressTimingMatchesHopByHop: on single-flow traffic — where the
// express claim order provably coincides with hop-by-hop wire claims —
// the express path must reproduce the NoExpress run *exactly*: same
// deliveries, same elapsed time, same per-router stats, same queue
// peaks. This is the timing half of the express contract (the
// differential matrix covers the bit-identity half at equal NoExpress).
func TestExpressTimingMatchesHopByHop(t *testing.T) {
	topologies := []Topology{
		{Kind: TopoMesh, W: 3, H: 3},
		{Kind: TopoTorus, W: 3, H: 3},
	}
	for _, topo := range topologies {
		for _, ber := range []float64{0, 1e-5} {
			cell := ScenarioCell{
				Cfg:      Config{Protocol: link.ProtocolRXL, BER: ber, BurstProb: 0.4, Seed: 13},
				Topo:     topo,
				Workload: workload.Spec{Kind: workload.KindUniform, Flows: 1},
			}
			express, err := cell.Run(200)
			if err != nil {
				t.Fatal(err)
			}
			cell.Cfg.NoExpress = true
			hopByHop, err := cell.Run(200)
			if err != nil {
				t.Fatal(err)
			}
			er, hr := express.Result, hopByHop.Result
			if er.ExpressTraversals == 0 {
				t.Errorf("%s ber=%g: express never ran (fallbacks %d)", topo.Kind, ber, er.ExpressFallbacks)
			}
			if hr.ExpressTraversals != 0 || hr.ExpressFallbacks != 0 {
				t.Errorf("%s ber=%g: NoExpress run counted express traversals %d/%d",
					topo.Kind, ber, hr.ExpressTraversals, hr.ExpressFallbacks)
			}
			// Blank the fields that legitimately differ (the config toggle
			// and the express counters); everything else must be identical.
			er.Cfg, hr.Cfg = Config{}, Config{}
			er.ExpressTraversals, er.ExpressFallbacks = 0, 0
			if !reflect.DeepEqual(er, hr) {
				t.Errorf("%s ber=%g: express timing diverges from hop-by-hop:\nexpress   %+v\nhop-by-hop %+v",
					topo.Kind, ber, er, hr)
			}
		}
	}
}

// TestExpressFallbackDifferential: a flap campaign marks its wire
// volatile, so every traversal crossing it must refuse the express claim
// and fall back to hop-by-hop forwarding — and the fast and byte-level
// paths must still agree bit-exactly on the mixed express/fallback run.
// Seeds are scanned until the seed-chosen flap wire actually lies on the
// single sink's traffic, so the fallback is exercised, not vacuous.
func TestExpressFallbackDifferential(t *testing.T) {
	exercised := false
	for seed := uint64(1); seed <= 8 && !exercised; seed++ {
		cell := ScenarioCell{
			Cfg:      Config{Protocol: link.ProtocolRXL, BER: 1e-6, BurstProb: 0.4, Seed: seed},
			Topo:     Topology{Kind: TopoTorus, W: 3, H: 3},
			Workload: workload.Spec{Kind: workload.KindSingleSink, SinkX: 0, SinkY: 0},
			Fault:    FaultScript{Kind: FaultFlap, StartNS: 100, DurationNS: 150, Flaps: 4, PeriodNS: 400},
		}
		fast, slow, identical, err := cell.RunDifferential(300)
		if err != nil {
			t.Fatal(err)
		}
		if !identical {
			t.Fatalf("seed %d: fast/slow diverge under forced fallback:\nfast: %+v\nslow: %+v",
				seed, fast.Result, slow.Result)
		}
		exercised = fast.Result.ExpressFallbacks > 0 && fast.Result.HookDropped > 0
	}
	if !exercised {
		t.Error("no seed produced express fallbacks on a flit-dropping flap wire")
	}
}

// TestQueuePeaksSurfaceBackpressure: a single-sink incast must show a
// serialization backlog deeper than one flit somewhere near the sink, the
// per-node grid must have the result's [y][x] shape, and the router
// total must be its max.
func TestQueuePeaksSurfaceBackpressure(t *testing.T) {
	cell := ScenarioCell{
		Cfg:      Config{Protocol: link.ProtocolRXL, Seed: 4},
		Topo:     Topology{Kind: TopoMesh, W: 3, H: 3},
		Workload: workload.Spec{Kind: workload.KindSingleSink, SinkX: 1, SinkY: 1},
	}
	res, err := cell.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Result
	if len(r.QueuePeaks) != r.H {
		t.Fatalf("QueuePeaks has %d rows, want H=%d", len(r.QueuePeaks), r.H)
	}
	max := uint64(0)
	for y := range r.QueuePeaks {
		if len(r.QueuePeaks[y]) != r.W {
			t.Fatalf("QueuePeaks row %d has %d cols, want W=%d", y, len(r.QueuePeaks[y]), r.W)
		}
		for _, p := range r.QueuePeaks[y] {
			if p > max {
				max = p
			}
		}
	}
	if max < 2 {
		t.Errorf("incast produced no backlog: max queue peak %d", max)
	}
	if r.Routers.QueuePeak != max {
		t.Errorf("Routers.QueuePeak %d != max node peak %d", r.Routers.QueuePeak, max)
	}
}
