package core

import (
	"testing"
	"testing/quick"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Protocol: link.ProtocolRXL, Levels: 2, BER: 1e-6, BurstProb: 0.4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Levels: -1},
		{BER: -1},
		{BER: 2},
		{BurstProb: 1},
		{InternalFlipProb: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, c)
		}
	}
}

func TestNewFabricRejectsInvalid(t *testing.T) {
	if _, err := NewFabric(Config{Levels: -3}); err == nil {
		t.Fatal("no error")
	}
}

func TestMustNewFabricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNewFabric(Config{Levels: -3})
}

func TestSealedPayloadRoundTrip(t *testing.T) {
	f := func(tag uint64) bool {
		p := SealedPayload(tag)
		return trace.TagOf(p) == tag && PayloadIntact(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadIntactDetectsCorruption(t *testing.T) {
	p := SealedPayload(42)
	p[20] ^= 0x01
	if PayloadIntact(p) {
		t.Fatal("corruption not detected")
	}
}

func TestCollectorCleanRun(t *testing.T) {
	c := NewCollector(5)
	for i := uint64(0); i < 5; i++ {
		c.Deliver(SealedPayload(i))
	}
	fc := c.Finish()
	if !fc.Clean() || fc.Delivered != 5 {
		t.Fatalf("counts: %+v", fc)
	}
}

func TestCollectorCountsFailures(t *testing.T) {
	c := NewCollector(4)
	c.Deliver(SealedPayload(0))
	c.Deliver(SealedPayload(2)) // skip: out of order
	c.Deliver(SealedPayload(2)) // duplicate
	bad := SealedPayload(3)
	bad[16] ^= 0xFF
	c.Deliver(bad) // corrupt
	fc := c.Finish()
	if fc.FailOrder == 0 || fc.Duplicates != 1 || fc.FailData != 1 {
		t.Fatalf("counts: %+v", fc)
	}
	if fc.Missing != 1 { // tag 1 never arrived
		t.Fatalf("missing = %d, want 1", fc.Missing)
	}
	if fc.Clean() {
		t.Fatal("Clean() on dirty counts")
	}
}

// TestExperimentCleanChannels: every protocol delivers exactly-once
// in-order over error-free fabrics at every switching depth.
func TestExperimentCleanChannels(t *testing.T) {
	for _, proto := range []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback, link.ProtocolRXL} {
		for _, levels := range []int{0, 1, 3} {
			exp := Experiment{
				Fabric: MustNewFabric(Config{Protocol: proto, Levels: levels}),
				N:      500,
			}
			res := exp.Run()
			if !res.Failures.Clean() {
				t.Errorf("%v L%d: %+v", proto, levels, res.Failures)
			}
			if res.Failures.Delivered != 500 {
				t.Errorf("%v L%d: delivered %d", proto, levels, res.Failures.Delivered)
			}
			if res.Elapsed == 0 {
				t.Errorf("%v L%d: no simulated time elapsed", proto, levels)
			}
		}
	}
}

// TestExperimentRXLUnderBER: RXL survives a noisy two-switch fabric with
// exactly-once in-order delivery.
func TestExperimentRXLUnderBER(t *testing.T) {
	exp := Experiment{
		Fabric: MustNewFabric(Config{
			Protocol: link.ProtocolRXL, Levels: 2,
			BER: 1e-5, BurstProb: 0.4, Seed: 1234,
		}),
		N: 4000,
	}
	res := exp.Run()
	if !res.Failures.Clean() {
		t.Fatalf("RXL failed under BER: %+v\n%s", res.Failures, res)
	}
	if res.LinkA.Retransmissions == 0 && res.Switches.DroppedUncorrectable == 0 &&
		res.LinkB.FecCorrectedFlits == 0 {
		t.Log("note: channel injected no observable errors at this seed")
	}
}

// TestExperimentCXLNoPiggybackUnderBER: explicit sequence numbers also
// deliver exactly-once (at the ACK bandwidth cost).
func TestExperimentCXLNoPiggybackUnderBER(t *testing.T) {
	exp := Experiment{
		Fabric: MustNewFabric(Config{
			Protocol: link.ProtocolCXLNoPiggyback, Levels: 1,
			BER: 1e-5, BurstProb: 0.4, Seed: 99,
		}),
		N: 4000,
	}
	res := exp.Run()
	if !res.Failures.Clean() {
		t.Fatalf("no-piggyback CXL failed: %+v", res.Failures)
	}
}

// TestExperimentCXLOrderingFailuresUnderDrops: with scripted drops at the
// switch, bidirectional traffic (so forward flits piggyback ACKs for the
// reverse stream), and maximal acking, baseline CXL exhibits ordering
// failures while RXL does not — the Section 7.1 comparison, simulated.
func TestExperimentCXLOrderingFailuresUnderDrops(t *testing.T) {
	run := func(proto link.Protocol) FailureCounts {
		cfg := link.DefaultConfig(proto)
		cfg.CoalesceCount = 1 // every delivery acks: maximal piggybacking
		f := MustNewFabric(Config{Protocol: proto, Levels: 1, LinkConfig: &cfg})

		const n = 200
		col := NewCollector(n)
		f.B().Deliver = col.Deliver

		// Drop every 20th forward data flit at the switch ingress.
		drops := 0
		f.Chain.Fwd[0].FaultHook = func(fl *flit.Flit) bool {
			if fl.Header().Type == flit.TypeData {
				drops++
				return drops%20 == 10
			}
			return false
		}

		// Interleaved bidirectional traffic: the reverse stream keeps
		// acknowledgments pending at A, so forward data flits routinely
		// carry AckNums — the piggyback blind spot under test.
		for i := 0; i < n; i++ {
			tag := uint64(i)
			f.Eng.Schedule(sim.Time(i)*50*sim.Nanosecond, func() {
				f.A().Submit(SealedPayload(tag))
			})
			f.Eng.Schedule(sim.Time(i)*50*sim.Nanosecond+25*sim.Nanosecond, func() {
				f.B().Submit(SealedPayload(1000 + tag))
			})
		}
		f.Run()
		return col.Finish()
	}

	cxl := run(link.ProtocolCXL)
	rxl := run(link.ProtocolRXL)
	if cxl.FailOrder == 0 && cxl.Duplicates == 0 && cxl.Missing == 0 {
		t.Errorf("CXL with piggybacking showed no delivery hazard: %+v", cxl)
	}
	if !rxl.Clean() {
		t.Errorf("RXL not clean under the same drops: %+v", rxl)
	}
}

func TestRunComparisonCovailsAllProtocols(t *testing.T) {
	res := RunComparison(Config{Levels: 1, Seed: 5}, 200)
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for proto, r := range res {
		if r.Failures.Delivered == 0 {
			t.Errorf("%v delivered nothing", proto)
		}
	}
}

func TestResultString(t *testing.T) {
	exp := Experiment{Fabric: MustNewFabric(Config{Protocol: link.ProtocolRXL}), N: 10}
	if exp.Run().String() == "" {
		t.Fatal("empty result string")
	}
}

func TestExperimentPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Experiment{Fabric: MustNewFabric(Config{})}).Run()
}

func TestFabricDeterminism(t *testing.T) {
	run := func() Result {
		exp := Experiment{
			Fabric: MustNewFabric(Config{Protocol: link.ProtocolRXL, Levels: 1, BER: 2e-5, Seed: 77}),
			N:      1500,
		}
		return exp.Run()
	}
	a, b := run(), run()
	if a.LinkA != b.LinkA || a.Failures != b.Failures || a.Elapsed != b.Elapsed {
		t.Fatal("equal seeds gave different runs")
	}
}
