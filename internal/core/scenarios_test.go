package core

import (
	"testing"

	"repro/internal/link"
	"repro/internal/transaction"
)

// TestFig4Scenario reproduces the paper's Fig. 4 at the link layer: under
// baseline CXL the AckNum-carrying flit is forwarded despite the missing
// predecessor, yielding out-of-order delivery; under RXL the ISN check
// catches the drop immediately.
func TestFig4Scenario(t *testing.T) {
	cxl := RunFig4(link.ProtocolCXL)
	if cxl.SwitchDrops == 0 {
		t.Fatal("CXL: scripted drop never happened")
	}
	if cxl.UnverifiedDelivered == 0 {
		t.Fatal("CXL: piggyback blind spot not exercised")
	}
	if !cxl.Misordered {
		t.Fatalf("CXL: expected out-of-order delivery, tags %v", cxl.Tags)
	}

	rxl := RunFig4(link.ProtocolRXL)
	if rxl.SwitchDrops == 0 {
		t.Fatal("RXL: scripted drop never happened")
	}
	if rxl.Misordered || rxl.Duplicates != 0 {
		t.Fatalf("RXL: delivery not clean, tags %v", rxl.Tags)
	}
	if rxl.CrcErrors == 0 {
		t.Fatal("RXL: ISN never flagged the drop")
	}
	if rxl.UnverifiedDelivered != 0 {
		t.Fatal("RXL: no flit may bypass verification")
	}
}

// TestFig4NoPiggyback: disabling piggybacking also avoids the misorder
// (every flit carries its explicit FSN) — the paper's costly alternative.
func TestFig4NoPiggyback(t *testing.T) {
	rep := RunFig4(link.ProtocolCXLNoPiggyback)
	if rep.Misordered {
		t.Fatalf("explicit FSNs must prevent misordering, tags %v", rep.Tags)
	}
	if rep.UnverifiedDelivered != 0 {
		t.Fatal("no-piggyback CXL must verify every flit")
	}
}

// TestFig5aDuplicateRequests reproduces Fig. 5a: under CXL the dropped
// request flit plus piggybacked successor leads to a request executing
// twice at the host; under RXL every request executes exactly once.
func TestFig5aDuplicateRequests(t *testing.T) {
	cxl := RunFig5a(link.ProtocolCXL)
	if cxl.SwitchDrops == 0 {
		t.Fatal("CXL: scripted drop never happened")
	}
	if cxl.DuplicateExecutions == 0 {
		t.Fatalf("CXL: expected duplicate request execution: %+v", cxl)
	}

	rxl := RunFig5a(link.ProtocolRXL)
	if rxl.SwitchDrops == 0 {
		t.Fatal("RXL: scripted drop never happened")
	}
	if !rxl.CleanTransactions() {
		t.Fatalf("RXL: transaction layer not clean: %+v", rxl)
	}
	if rxl.Completed != rxl.Issued {
		t.Fatalf("RXL: %d of %d transactions completed", rxl.Completed, rxl.Issued)
	}
	if rxl.LinkCrcErrors == 0 {
		t.Fatal("RXL: ISN never flagged the drop")
	}
}

// TestFig5bOutOfOrderData reproduces Fig. 5b: under CXL data sharing a
// CQID arrives out of order after a silent drop; under RXL order is
// preserved.
func TestFig5bOutOfOrderData(t *testing.T) {
	cxl := RunFig5b(link.ProtocolCXL)
	if cxl.SwitchDrops == 0 {
		t.Fatal("CXL: scripted drop never happened")
	}
	if cxl.OutOfOrderData == 0 {
		t.Fatalf("CXL: expected intra-CQID ordering violation: %+v", cxl)
	}

	rxl := RunFig5b(link.ProtocolRXL)
	if rxl.SwitchDrops == 0 {
		t.Fatal("RXL: scripted drop never happened")
	}
	if !rxl.CleanTransactions() {
		t.Fatalf("RXL: transaction layer not clean: %+v", rxl)
	}
	if rxl.Completed != rxl.Issued {
		t.Fatalf("RXL: %d of %d transactions completed", rxl.Completed, rxl.Issued)
	}
}

// TestFig5ScenariosComplete: both scripts finish all transactions under
// every protocol — the failures are semantic (duplicates, misorder), not
// lost work, matching the paper's description.
func TestFig5ScenariosComplete(t *testing.T) {
	for _, proto := range []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback, link.ProtocolRXL} {
		a := RunFig5a(proto)
		if a.Issued == 0 || a.Completed < a.Issued-1 {
			t.Errorf("%v fig5a: issued %d completed %d", proto, a.Issued, a.Completed)
		}
		b := RunFig5b(proto)
		if b.Issued == 0 || b.Completed < b.Issued-1 {
			t.Errorf("%v fig5b: issued %d completed %d", proto, b.Issued, b.Completed)
		}
	}
}

// TestMessageEndpointPacking: batched messages share flits up to the pack
// capacity.
func TestMessageEndpointPacking(t *testing.T) {
	f := MustNewFabric(Config{Protocol: link.ProtocolRXL})
	var got []uint32
	rx := NewMessageEndpoint(f.B(), nil)
	rx.OnMessage = func(m transaction.Message) { got = append(got, m.ID) }
	tx := NewMessageEndpoint(f.A(), nil)

	for i := uint32(0); i < 30; i++ {
		tx.Batch(transaction.Message{Kind: transaction.KindReq, ID: i})
	}
	tx.Flush()
	f.Run()

	if len(got) != 30 {
		t.Fatalf("received %d messages", len(got))
	}
	for i, id := range got {
		if id != uint32(i) {
			t.Fatalf("message %d has ID %d", i, id)
		}
	}
	// 30 messages at 13/flit = 3 flits.
	if tx.Packed != 3 {
		t.Fatalf("packed %d flits, want 3", tx.Packed)
	}
}

// TestMessageEndpointPerFlitCap honors MaxPerFlit.
func TestMessageEndpointPerFlitCap(t *testing.T) {
	f := MustNewFabric(Config{Protocol: link.ProtocolRXL})
	tx := NewMessageEndpoint(f.A(), nil)
	tx.MaxPerFlit = 1
	for i := uint32(0); i < 5; i++ {
		tx.Batch(transaction.Message{Kind: transaction.KindReq, ID: i})
	}
	tx.Flush()
	if tx.Packed != 5 {
		t.Fatalf("packed %d flits, want 5", tx.Packed)
	}
}
