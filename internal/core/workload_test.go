package core

import (
	"testing"

	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Workload-generator integration: each trace.Generator drives a live
// fabric through trace.Inject, proving the generators compose with the
// protocol stacks (and that RXL holds exactly-once delivery under every
// arrival process, not just back-to-back injection).

func runWorkload(t *testing.T, gen trace.Generator, proto link.Protocol, ber float64) *trace.Checker {
	t.Helper()
	f := MustNewFabric(Config{Protocol: proto, Levels: 1, BER: ber, BurstProb: 0.4, Seed: 99})
	c := trace.NewChecker()
	f.B().Deliver = c.Deliver
	items := gen.Generate()
	trace.Inject(f.Eng, items, f.A().Submit)
	f.Run()
	if c.Delivered != len(items) {
		t.Fatalf("%s: delivered %d of %d", gen.Name(), c.Delivered, len(items))
	}
	return c
}

func TestWorkloadUniformLineRate(t *testing.T) {
	c := runWorkload(t, trace.Uniform{N: 2000, Interval: sim.FlitTime, Size: 16}, link.ProtocolRXL, 1e-5)
	if !c.Clean() {
		t.Fatalf("uniform workload not clean: %+v", c)
	}
}

func TestWorkloadBursty(t *testing.T) {
	gen := trace.Bursty{
		N: 1500, BurstLen: 32,
		Interval: sim.FlitTime, MeanGap: 200 * sim.Nanosecond,
		Size: 16, Seed: 5,
	}
	c := runWorkload(t, gen, link.ProtocolRXL, 1e-5)
	if !c.Clean() {
		t.Fatalf("bursty workload not clean: %+v", c)
	}
}

func TestWorkloadPoisson(t *testing.T) {
	gen := trace.Poisson{N: 1500, MeanInterval: 10 * sim.Nanosecond, Size: 16, Seed: 6}
	c := runWorkload(t, gen, link.ProtocolRXL, 1e-5)
	if !c.Clean() {
		t.Fatalf("poisson workload not clean: %+v", c)
	}
}

func TestWorkloadMemoryStream(t *testing.T) {
	gen := trace.MemoryStream{N: 1000, Base: 0x10000, Stride: 64, Interval: sim.FlitTime, Size: 32}
	f := MustNewFabric(Config{Protocol: link.ProtocolRXL, Levels: 1})
	var addrs []uint64
	f.B().Deliver = func(p []byte) { addrs = append(addrs, trace.AddressOf(p)) }
	trace.Inject(f.Eng, gen.Generate(), f.A().Submit)
	f.Run()
	if len(addrs) != 1000 {
		t.Fatalf("delivered %d", len(addrs))
	}
	for i, a := range addrs {
		if a != 0x10000+uint64(i)*64 {
			t.Fatalf("delivery %d has address %#x", i, a)
		}
	}
}

// TestWorkloadAllProtocolsClean: every generator under every protocol on
// clean channels delivers exactly-once in order.
func TestWorkloadAllProtocolsClean(t *testing.T) {
	gens := []trace.Generator{
		trace.Uniform{N: 400, Interval: sim.FlitTime, Size: 16},
		trace.Bursty{N: 400, BurstLen: 16, Interval: sim.FlitTime, MeanGap: 100 * sim.Nanosecond, Size: 16, Seed: 3},
		trace.Poisson{N: 400, MeanInterval: 5 * sim.Nanosecond, Size: 16, Seed: 4},
	}
	for _, proto := range []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback, link.ProtocolRXL} {
		for _, gen := range gens {
			c := runWorkload(t, gen, proto, 0)
			if !c.Clean() {
				t.Errorf("%v %s: %+v", proto, gen.Name(), c)
			}
		}
	}
}
