package core

import (
	"context"
	"fmt"

	"repro/internal/link"
	"repro/internal/perf"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/switchfab"
)

// Result is the full accounting of one end-to-end experiment.
type Result struct {
	Cfg      Config
	Offered  int // payloads injected at A
	Failures FailureCounts

	// LinkA and LinkB are the endpoint link-layer statistics.
	LinkA, LinkB link.Stats
	// Switches aggregates the switch statistics over all levels.
	Switches switchfab.Stats
	// Goodput is the measured bandwidth accounting at the transmitter.
	Goodput perf.MeasuredGoodput
	// Elapsed is the simulated duration.
	Elapsed sim.Time
	// ForwardUtilization is the busy fraction of the first forward wire.
	ForwardUtilization float64
}

// String summarizes the result on one line.
func (r Result) String() string {
	return fmt.Sprintf(
		"%s L%d BER=%g: offered=%d delivered=%d dup=%d ooo=%d corrupt=%d missing=%d drops=%d retx=%d bwloss=%.4f t=%dns",
		r.Cfg.Protocol, r.Cfg.Levels, r.Cfg.BER,
		r.Offered, r.Failures.Delivered, r.Failures.Duplicates,
		r.Failures.FailOrder, r.Failures.FailData, r.Failures.Missing,
		r.Switches.DroppedUncorrectable, r.LinkA.Retransmissions,
		r.Goodput.BWLoss, r.Elapsed/sim.Nanosecond)
}

// Experiment drives a payload workload through a fabric and produces the
// failure/performance accounting.
type Experiment struct {
	Fabric *Fabric
	// N is the number of line-rate payloads to offer (one per FlitTime).
	N int
	// Hooks, when non-nil, runs after the fabric is built and before
	// traffic starts — the place to install scripted faults.
	Hooks func(*Fabric)
}

// Run executes the experiment to quiescence and returns the result.
func (e *Experiment) Run() Result {
	if e.N <= 0 {
		panic("core: experiment needs N > 0")
	}
	f := e.Fabric
	if e.Hooks != nil {
		e.Hooks(f)
	}

	col := NewCollector(e.N)
	f.B().Deliver = col.Deliver

	for i := 0; i < e.N; i++ {
		f.A().Submit(SealedPayload(uint64(i)))
	}
	f.Run()

	res := Result{
		Cfg:      f.Cfg,
		Offered:  e.N,
		Failures: col.Finish(),
		LinkA:    f.A().Stats,
		LinkB:    f.B().Stats,
		Switches: f.Chain.TotalSwitchStats(),
		Goodput:  perf.MeasureGoodput(f.A().Stats),
		Elapsed:  f.Eng.Now(),
	}
	if len(f.Chain.Fwd) > 0 {
		res.ForwardUtilization = f.Chain.Fwd[0].Utilization()
	}
	return res
}

// Protocols lists the three variants compared throughout the paper, in
// presentation order.
var Protocols = []link.Protocol{link.ProtocolCXL, link.ProtocolCXLNoPiggyback, link.ProtocolRXL}

// RunComparison runs the same workload and seed across the three protocol
// variants at the given configuration, returning the results keyed by
// protocol — the core of the paper's CXL-vs-RXL tables. The variants run
// concurrently on the sharded runner (each on its own engine); results are
// identical to running them sequentially.
func RunComparison(base Config, n int) map[link.Protocol]Result {
	out, err := RunComparisonPool(context.Background(), runner.Pool{Workers: len(Protocols)}, base, n)
	if err != nil {
		panic(err)
	}
	return out
}

// RunComparisonPool is RunComparison with an explicit context and pool.
// A zero base seed is replaced by one seed derived from the pool's base
// seed — the *same* seed for all three variants, since the comparison's
// whole point is identical error patterns across protocols — so distinct
// pool seeds yield independent comparison samples.
func RunComparisonPool(ctx context.Context, pool runner.Pool, base Config, n int) (map[link.Protocol]Result, error) {
	if base.Seed == 0 {
		base.Seed = runner.ShardSeed(pool.BaseSeed, 0)
	}
	results, err := runner.Map(ctx, pool, len(Protocols), func(ctx context.Context, s runner.Shard) (Result, error) {
		cfg := base
		cfg.Protocol = Protocols[s.Index]
		cfg.LinkConfig = nil // protocol-correct defaults per variant
		f, err := NewFabric(cfg)
		if err != nil {
			return Result{}, err
		}
		exp := Experiment{Fabric: f, N: n}
		return exp.Run(), nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[link.Protocol]Result, len(Protocols))
	for i, p := range Protocols {
		out[p] = results[i]
	}
	return out, nil
}
