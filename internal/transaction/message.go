// Package transaction implements the CXL transaction layer as used by the
// paper's failure analysis (Section 4.2): request/response/data messages
// with Command Queue IDs (CQIDs), packing of multiple messages per flit,
// and the application-level failure detectors for the Fig. 5 scenarios —
// duplicate request execution and out-of-order data within a CQID.
package transaction

import (
	"encoding/binary"
	"fmt"
)

// Kind is the message type.
type Kind uint8

const (
	// KindReq is a read request from device to host.
	KindReq Kind = 1
	// KindRsp is a host response header (completion notice).
	KindRsp Kind = 2
	// KindData carries the requested data back to the device.
	KindData Kind = 3
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindReq:
		return "REQ"
	case KindRsp:
		return "RSP"
	case KindData:
		return "DATA"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MessageSize is the fixed wire encoding size of one message.
const MessageSize = 18

// Message is one transaction-layer message. Multiple messages pack into a
// single flit payload, which is how a lost flit can disrupt many
// transactions at once (Section 2.3).
type Message struct {
	Kind Kind
	// CQID is the command queue: data for the same CQID must be delivered
	// in order; distinct CQIDs may complete out of order (Section 4.2).
	CQID uint8
	// ID uniquely identifies the transaction.
	ID uint32
	// Addr is the target address.
	Addr uint64
	// Tag is a sequence field: for KindData it carries the per-CQID
	// delivery sequence assigned by the host, used by the receiver to
	// detect intra-queue reordering (the Fig. 5b failure).
	Tag uint16
	// Val carries the data value (for KindData, the host's memory
	// content hash), letting the receiver detect end-to-end corruption.
	Val uint16
}

// Encode writes the 18-byte wire form into dst.
func (m Message) Encode(dst []byte) {
	_ = dst[MessageSize-1]
	dst[0] = byte(m.Kind)
	dst[1] = m.CQID
	binary.BigEndian.PutUint32(dst[2:], m.ID)
	binary.BigEndian.PutUint64(dst[6:], m.Addr)
	binary.BigEndian.PutUint16(dst[14:], m.Tag)
	binary.BigEndian.PutUint16(dst[16:], m.Val)
}

// DecodeMessage parses an 18-byte wire form.
func DecodeMessage(src []byte) Message {
	_ = src[MessageSize-1]
	return Message{
		Kind: Kind(src[0]),
		CQID: src[1],
		ID:   binary.BigEndian.Uint32(src[2:]),
		Addr: binary.BigEndian.Uint64(src[6:]),
		Tag:  binary.BigEndian.Uint16(src[14:]),
		Val:  binary.BigEndian.Uint16(src[16:]),
	}
}

// Payload packing format: payload[0] is the message count n, followed by n
// fixed-size messages. The last two payload bytes are reserved for fabric
// routing tags (flit.RouteOffset / flit.SrcRouteOffset).
const (
	packHeader = 1
	// PackCapacity is the number of messages per 240B flit payload. Real
	// CXL packs up to 44 small messages per flit via slot formats; the
	// simpler fixed-size encoding here keeps the same failure semantics
	// (one flit drop disrupts many transactions) at lower density.
	PackCapacity = (240 - 2 - packHeader) / MessageSize
)

// Pack encodes up to PackCapacity messages into a flit payload buffer
// (>= 238 bytes). It returns the number of messages consumed.
func Pack(dst []byte, msgs []Message) int {
	n := len(msgs)
	if n > PackCapacity {
		n = PackCapacity
	}
	dst[0] = byte(n)
	for i := 0; i < n; i++ {
		msgs[i].Encode(dst[packHeader+i*MessageSize:])
	}
	return n
}

// Unpack decodes the messages from a flit payload.
func Unpack(src []byte) []Message {
	n := int(src[0])
	if n > PackCapacity {
		n = PackCapacity // tolerate corrupted count bytes
	}
	out := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DecodeMessage(src[packHeader+i*MessageSize:]))
	}
	return out
}

// SyntheticValue derives the canonical memory value for an address; host
// responses carry a hash of it so the device can detect payload corruption
// end to end.
func SyntheticValue(addr uint64) uint16 {
	x := addr*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return uint16(x)
}
