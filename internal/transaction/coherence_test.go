package transaction

import (
	"testing"
)

// cohNet wires a directory and caches directly together (perfect
// transport), delivering messages immediately and in order.
type cohNet struct {
	dir    *Directory
	caches map[uint8]*Cache
	// queue defers deliveries so re-entrant sends process in FIFO order.
	queue []func()
	busy  bool
}

func newCohNet(ncaches int) *cohNet {
	lb := &cohNet{caches: make(map[uint8]*Cache)}
	lb.dir = NewDirectory(func(to uint8, m Message) {
		lb.enqueue(func() { lb.caches[to].OnMessage(m) })
	})
	for i := 0; i < ncaches; i++ {
		id := uint8(i + 1)
		lb.caches[id] = NewCache(id, func(m Message) {
			lb.enqueue(func() { lb.dir.OnMessage(uint8(m.Tag), m) })
		})
	}
	return lb
}

func (lb *cohNet) enqueue(fn func()) {
	lb.queue = append(lb.queue, fn)
	if lb.busy {
		return
	}
	lb.busy = true
	for len(lb.queue) > 0 {
		next := lb.queue[0]
		lb.queue = lb.queue[1:]
		next()
	}
	lb.busy = false
}

func (lb *cohNet) all() []*Cache {
	out := make([]*Cache, 0, len(lb.caches))
	for i := uint8(1); int(i) <= len(lb.caches); i++ {
		out = append(out, lb.caches[i])
	}
	return out
}

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
}

func TestReadMissFillsShared(t *testing.T) {
	lb := newCohNet(1)
	c := lb.caches[1]
	const addr = 0x40

	if c.Read(addr) {
		t.Fatal("cold read must miss")
	}
	if c.State(addr) != Shared {
		t.Fatalf("state = %v, want S", c.State(addr))
	}
	if c.Value(addr) != SyntheticValue(addr) {
		t.Fatal("fill value wrong")
	}
	if !c.Read(addr) {
		t.Fatal("second read must hit")
	}
	if c.Stats.SharedFills != 1 || c.Stats.ReadHits != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestWriteMissFillsExclusiveThenModified(t *testing.T) {
	lb := newCohNet(1)
	c := lb.caches[1]
	const addr = 0x80

	if c.Write(addr, 7) {
		t.Fatal("cold write must miss")
	}
	if c.State(addr) != Exclusive {
		t.Fatalf("state = %v, want E", c.State(addr))
	}
	if !c.Write(addr, 7) {
		t.Fatal("write after fill must hit")
	}
	if c.State(addr) != Modified {
		t.Fatalf("state = %v, want M", c.State(addr))
	}
	if rep := lb.dir.Audit(lb.all()); !rep.Clean() {
		t.Fatalf("audit: %+v", rep)
	}
}

func TestOwnershipInvalidatesSharers(t *testing.T) {
	lb := newCohNet(3)
	const addr = 0xC0

	// All three caches read the line.
	for _, c := range lb.all() {
		c.Read(addr)
	}
	if lb.dir.Sharers(addr) != 3 {
		t.Fatalf("sharers = %d", lb.dir.Sharers(addr))
	}

	// Cache 1 takes ownership: 2 and 3 must be invalidated.
	lb.caches[1].Write(addr, 42)
	lb.caches[1].Write(addr, 42) // complete the store after the fill

	if lb.caches[2].State(addr) != Invalid || lb.caches[3].State(addr) != Invalid {
		t.Fatal("sharers not invalidated")
	}
	if lb.caches[1].State(addr) != Modified {
		t.Fatalf("owner state = %v", lb.caches[1].State(addr))
	}
	if lb.dir.Owner(addr) != 1 {
		t.Fatalf("directory owner = %d", lb.dir.Owner(addr))
	}
	if rep := lb.dir.Audit(lb.all()); !rep.Clean() {
		t.Fatalf("audit: %+v", rep)
	}
}

func TestWriteBackUpdatesDirectory(t *testing.T) {
	lb := newCohNet(2)
	const addr = 0x100

	lb.caches[1].Write(addr, 0)
	lb.caches[1].Write(addr, 0xBEEF)
	lb.caches[1].WriteBack(addr)

	if lb.dir.Value(addr) != 0xBEEF {
		t.Fatalf("directory value %#x", lb.dir.Value(addr))
	}
	if lb.dir.Owner(addr) != -1 {
		t.Fatal("owner not cleared")
	}
	// A subsequent reader sees the written-back value.
	lb.caches[2].Read(addr)
	if lb.caches[2].Value(addr) != 0xBEEF {
		t.Fatalf("reader got %#x", lb.caches[2].Value(addr))
	}
	if rep := lb.dir.Audit(lb.all()); !rep.Clean() {
		t.Fatalf("audit: %+v", rep)
	}
}

func TestOwnerDowngradeOnSharedRead(t *testing.T) {
	lb := newCohNet(2)
	const addr = 0x140

	lb.caches[1].Write(addr, 0)
	lb.caches[1].Write(addr, 5)
	// Cache 2 reads: owner is invalidated in this simplified protocol.
	lb.caches[2].Read(addr)

	if lb.caches[1].State(addr) != Invalid {
		t.Fatalf("previous owner state = %v, want I", lb.caches[1].State(addr))
	}
	if lb.caches[2].State(addr) != Shared {
		t.Fatalf("reader state = %v", lb.caches[2].State(addr))
	}
	if rep := lb.dir.Audit(lb.all()); !rep.Clean() {
		t.Fatalf("audit: %+v", rep)
	}
}

// TestRandomWorkloadStaysCoherent drives a randomized read/write mix over
// perfect transport and audits the global invariants at the end.
func TestRandomWorkloadStaysCoherent(t *testing.T) {
	lb := newCohNet(4)
	caches := lb.all()
	state := uint64(0x1234567)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := 0; i < 5000; i++ {
		c := caches[next(len(caches))]
		addr := uint64(next(32)) * 64
		if next(3) == 0 {
			c.Write(addr, uint16(i))
			c.Write(addr, uint16(i))
		} else {
			c.Read(addr)
		}
		if next(10) == 0 {
			c.WriteBack(addr)
		}
	}
	if rep := lb.dir.Audit(caches); !rep.Clean() {
		t.Fatalf("coherence violated under random workload: %+v", rep)
	}
}

// TestDuplicateGrantDetected shows the link-layer failure signature: a
// duplicated Grant message (what an escaped link-layer duplicate becomes)
// is flagged by the cache as stale.
func TestDuplicateGrantDetected(t *testing.T) {
	lb := newCohNet(1)
	c := lb.caches[1]
	const addr = 0x200

	c.Read(addr)
	// Replay the grant as a duplicated flit would.
	c.OnMessage(Message{Kind: KindGrant, Addr: addr, Tag: grantShared, Val: SyntheticValue(addr)})
	if c.Stats.StaleGrants != 1 {
		t.Fatalf("StaleGrants = %d, want 1", c.Stats.StaleGrants)
	}
}

// TestDroppedInvalidationBreaksSWMR demonstrates the paper's core
// amplification: silently dropping one invalidation message leaves a stale
// sharer alongside a new owner — a single-writer violation the audit
// catches.
func TestDroppedInvalidationBreaksSWMR(t *testing.T) {
	var lb *cohNet
	dropInv := true
	lb = &cohNet{caches: make(map[uint8]*Cache)}
	lb.dir = NewDirectory(func(to uint8, m Message) {
		if dropInv && m.Kind == KindSnpInv && to == 2 {
			dropInv = false // silently drop exactly one invalidation
			// The ack never comes; fake it as a misordered duplicate ack
			// would under baseline CXL so the grant proceeds.
			lb.enqueue(func() {
				lb.dir.OnMessage(2, Message{Kind: KindInvAck, Addr: m.Addr, ID: m.ID, Tag: 2})
			})
			return
		}
		lb.enqueue(func() { lb.caches[to].OnMessage(m) })
	})
	for i := 0; i < 2; i++ {
		id := uint8(i + 1)
		lb.caches[id] = NewCache(id, func(m Message) {
			lb.enqueue(func() { lb.dir.OnMessage(uint8(m.Tag), m) })
		})
	}

	const addr = 0x240
	lb.caches[2].Read(addr)        // cache 2 becomes a sharer
	lb.caches[1].Write(addr, 0xAB) // ownership request; snoop to 2 dropped
	lb.caches[1].Write(addr, 0xAB) // store completes after grant

	if lb.caches[2].State(addr) == Invalid {
		t.Fatal("scenario broken: sharer was invalidated despite the drop")
	}
	rep := lb.dir.Audit(lb.all())
	if rep.SWMRViolations == 0 {
		t.Fatalf("dropped invalidation not detected: %+v", rep)
	}
}

// TestWritebackFromNonOwnerFlagged: a writeback the directory cannot
// attribute to the current owner (a reordered/duplicated leftover) is a
// protocol error.
func TestWritebackFromNonOwnerFlagged(t *testing.T) {
	lb := newCohNet(2)
	lb.dir.OnMessage(2, Message{Kind: KindWriteBack, Addr: 0x280, Val: 1, Tag: 2})
	if lb.dir.Stats.ProtocolErrors != 1 {
		t.Fatalf("ProtocolErrors = %d", lb.dir.Stats.ProtocolErrors)
	}
}

// TestStrayInvAckFlagged: an invalidation ack with no pending transfer is
// a protocol error.
func TestStrayInvAckFlagged(t *testing.T) {
	lb := newCohNet(1)
	lb.dir.OnMessage(1, Message{Kind: KindInvAck, Addr: 0x2C0, Tag: 1})
	if lb.dir.Stats.ProtocolErrors != 1 {
		t.Fatalf("ProtocolErrors = %d", lb.dir.Stats.ProtocolErrors)
	}
}

func TestAuditCleanOnEmptyDirectory(t *testing.T) {
	lb := newCohNet(2)
	if rep := lb.dir.Audit(lb.all()); !rep.Clean() {
		t.Fatalf("empty audit: %+v", rep)
	}
}

func TestCoherenceKindStrings(t *testing.T) {
	// The extended kinds must not collide with the base ones.
	kinds := []Kind{KindReq, KindRsp, KindData, KindRdShared, KindRdOwn,
		KindSnpInv, KindInvAck, KindWriteBack, KindGrant}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("kind value collision at %d", k)
		}
		seen[k] = true
	}
}
