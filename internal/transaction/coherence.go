package transaction

import "fmt"

// This file adds the MESI-lite coherence model referenced by the paper's
// motivation (Sections 2.2 and 2.3): CXL.cache-style hosts and devices
// keeping cache lines coherent across the interconnect. The model is
// deliberately small — a directory at the host and write-back caches at
// the devices — but it is a real state machine whose invariants (single
// writer, no stale sharers) break observably when the link layer forwards
// duplicated or misordered messages, which is exactly the amplification
// path from flit drops to "unpredictable behaviors and inconsistencies
// across caches" the paper describes.

// Additional message kinds for the coherence protocol. They share the
// Message wire format: Addr is the line address, Val the data hash, Tag the
// requester/owner ID.
const (
	// KindRdShared requests a line in Shared state.
	KindRdShared Kind = 4
	// KindRdOwn requests a line in Exclusive/Modified (ownership) state.
	KindRdOwn Kind = 5
	// KindSnpInv asks a cache to invalidate its copy (directory → cache).
	// Tag=1 requests an InvAck (ownership transfers); Tag=0 is a
	// fire-and-forget downgrade.
	KindSnpInv Kind = 6
	// KindInvAck acknowledges an invalidation (cache → directory).
	KindInvAck Kind = 7
	// KindWriteBack returns modified data to the directory.
	KindWriteBack Kind = 8
	// KindGrant carries data and the granted state to a requester
	// (directory → cache): Tag=0 grants Shared, Tag=1 grants Exclusive.
	KindGrant Kind = 9
)

// LineState is a MESI cache-line state.
type LineState uint8

// MESI states.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// grant state encoding in Message.Tag.
const (
	grantShared    = 0
	grantExclusive = 1
)

// snoop ack-requirement encoding in Message.Tag.
const (
	snpNoAck   = 0
	snpWantAck = 1
)

// DirectoryStats counts directory events and protocol anomalies.
type DirectoryStats struct {
	SharedGrants    uint64
	ExclusiveGrants uint64
	Invalidations   uint64
	WriteBacks      uint64
	// ProtocolErrors counts messages that are impossible under in-order
	// exactly-once delivery (e.g. a writeback from a non-owner) — the
	// directory-side signature of link-layer failures.
	ProtocolErrors uint64
}

// Directory is the host-side coherence agent: it tracks, per line, the set
// of sharers and the exclusive owner, grants states, and issues
// invalidations. Send transmits a message to the cache identified by the
// message's Tag field (the requester ID travels in Tag for routing).
type Directory struct {
	// Send transmits m to cache `to`.
	Send func(to uint8, m Message)

	lines map[uint64]*dirLine
	// pending tracks ownership requests waiting for invalidation acks.
	pending map[uint64]*pendingOwn

	Stats DirectoryStats
}

type dirLine struct {
	sharers map[uint8]bool
	owner   int16 // -1 when no exclusive owner
	value   uint16
	// waitQ serializes requests that arrive while an ownership transfer
	// is pending on this line — the MSHR-style busy state every real
	// directory needs once requests and acks travel with latency.
	waitQ []queuedReq
}

type queuedReq struct {
	from uint8
	m    Message
}

type pendingOwn struct {
	requester uint8
	id        uint32
	cqid      uint8
	waitAcks  int
}

// NewDirectory constructs a directory whose lines initialize to the
// synthetic memory image.
func NewDirectory(send func(to uint8, m Message)) *Directory {
	return &Directory{
		Send:    send,
		lines:   make(map[uint64]*dirLine),
		pending: make(map[uint64]*pendingOwn),
	}
}

func (d *Directory) line(addr uint64) *dirLine {
	l, ok := d.lines[addr]
	if !ok {
		l = &dirLine{sharers: make(map[uint8]bool), owner: -1, value: SyntheticValue(addr)}
		d.lines[addr] = l
	}
	return l
}

// Owner returns the exclusive owner of addr, or -1.
func (d *Directory) Owner(addr uint64) int16 { return d.line(addr).owner }

// Sharers returns the number of caches holding addr in Shared state.
func (d *Directory) Sharers(addr uint64) int { return len(d.line(addr).sharers) }

// Value returns the directory's current value hash for addr.
func (d *Directory) Value(addr uint64) uint16 { return d.line(addr).value }

// OnMessage processes one message from cache `from`.
func (d *Directory) OnMessage(from uint8, m Message) {
	switch m.Kind {
	case KindRdShared, KindRdOwn:
		// Serialize requests per line: while an ownership transfer is in
		// flight, later requests wait in the line's queue.
		if d.pending[m.Addr] != nil {
			d.line(m.Addr).waitQ = append(d.line(m.Addr).waitQ, queuedReq{from: from, m: m})
			return
		}
		if m.Kind == KindRdShared {
			d.onRdShared(from, m)
		} else {
			d.onRdOwn(from, m)
		}
	case KindInvAck:
		d.onInvAck(from, m)
	case KindWriteBack:
		d.onWriteBack(from, m)
	}
}

func (d *Directory) onRdShared(from uint8, m Message) {
	l := d.line(m.Addr)
	if l.owner >= 0 {
		// Downgrade the owner: in this simplified protocol the owner is
		// invalidated and must re-request. (Real MESI would transition
		// M→S with a writeback; invalidation keeps the state machine
		// small without weakening the single-writer invariant.) No ack is
		// needed: the grant and the snoop commit the directory state
		// immediately, and per-link ordering delivers the snoop before
		// any later grant to the same cache.
		d.Stats.Invalidations++
		d.Send(uint8(l.owner), Message{Kind: KindSnpInv, Addr: m.Addr, ID: m.ID, CQID: m.CQID, Tag: snpNoAck})
		l.owner = -1
	}
	l.sharers[from] = true
	d.Stats.SharedGrants++
	d.Send(from, Message{Kind: KindGrant, Addr: m.Addr, ID: m.ID, CQID: m.CQID, Tag: grantShared, Val: l.value})
}

func (d *Directory) onRdOwn(from uint8, m Message) {
	l := d.line(m.Addr)
	need := 0
	for s := range l.sharers {
		if s != from {
			d.Stats.Invalidations++
			d.Send(s, Message{Kind: KindSnpInv, Addr: m.Addr, ID: m.ID, CQID: m.CQID, Tag: snpWantAck})
			need++
		}
	}
	if l.owner >= 0 && uint8(l.owner) != from {
		d.Stats.Invalidations++
		d.Send(uint8(l.owner), Message{Kind: KindSnpInv, Addr: m.Addr, ID: m.ID, CQID: m.CQID, Tag: snpWantAck})
		need++
	}
	l.sharers = map[uint8]bool{}
	l.owner = int16(from)
	if need == 0 {
		d.grantExclusive(from, m, l)
		return
	}
	d.pending[m.Addr] = &pendingOwn{requester: from, id: m.ID, cqid: m.CQID, waitAcks: need}
}

// drainWaitQ resumes the oldest queued request for addr after a pending
// transfer completes.
func (d *Directory) drainWaitQ(addr uint64) {
	l := d.line(addr)
	for len(l.waitQ) > 0 && d.pending[addr] == nil {
		q := l.waitQ[0]
		l.waitQ = l.waitQ[1:]
		if q.m.Kind == KindRdShared {
			d.onRdShared(q.from, q.m)
		} else {
			d.onRdOwn(q.from, q.m)
		}
	}
}

func (d *Directory) grantExclusive(to uint8, m Message, l *dirLine) {
	d.Stats.ExclusiveGrants++
	d.Send(to, Message{Kind: KindGrant, Addr: m.Addr, ID: m.ID, CQID: m.CQID, Tag: grantExclusive, Val: l.value})
}

func (d *Directory) onInvAck(from uint8, m Message) {
	p, ok := d.pending[m.Addr]
	if !ok {
		// An ack with no pending ownership transfer: a duplicated or
		// misordered message reached us.
		d.Stats.ProtocolErrors++
		return
	}
	if p.id != m.ID {
		// An ack for a different (stale) transfer — only possible when
		// the transport duplicated or reordered messages.
		d.Stats.ProtocolErrors++
		return
	}
	p.waitAcks--
	if p.waitAcks <= 0 {
		delete(d.pending, m.Addr)
		d.grantExclusive(p.requester, Message{Addr: m.Addr, ID: p.id, CQID: p.cqid}, d.line(m.Addr))
		d.drainWaitQ(m.Addr)
	}
}

func (d *Directory) onWriteBack(from uint8, m Message) {
	l := d.line(m.Addr)
	d.Stats.WriteBacks++
	if l.owner != int16(from) {
		// A writeback from a cache the directory does not consider the
		// owner: impossible with reliable delivery.
		d.Stats.ProtocolErrors++
		return
	}
	l.value = m.Val
	l.owner = -1
}

// CacheStats counts cache events and locally observable anomalies.
type CacheStats struct {
	ReadHits       uint64
	WriteHits      uint64
	SharedFills    uint64
	ExclusiveFills uint64
	Invalidated    uint64
	// StaleGrants counts grants for lines with no outstanding miss — the
	// cache-side signature of duplicated messages.
	StaleGrants uint64
}

// Cache is a device-side MESI-lite cache.
type Cache struct {
	// ID is this cache's identity for directory routing.
	ID uint8
	// Send transmits a message to the directory.
	Send func(Message)

	state   map[uint64]LineState
	value   map[uint64]uint16
	waiting map[uint64]bool // outstanding misses by address
	nextID  uint32

	Stats CacheStats
}

// NewCache constructs a cache agent.
func NewCache(id uint8, send func(Message)) *Cache {
	return &Cache{
		ID:      id,
		Send:    send,
		state:   make(map[uint64]LineState),
		value:   make(map[uint64]uint16),
		waiting: make(map[uint64]bool),
	}
}

// State returns the MESI state of addr.
func (c *Cache) State(addr uint64) LineState { return c.state[addr] }

// Value returns the cached value hash of addr (meaningful outside Invalid).
func (c *Cache) Value(addr uint64) uint16 { return c.value[addr] }

// OutstandingMisses returns the number of in-flight fills.
func (c *Cache) OutstandingMisses() int { return len(c.waiting) }

// Read performs a load: a hit returns immediately; a miss issues RdShared.
// It reports whether the access hit.
func (c *Cache) Read(addr uint64) bool {
	if c.state[addr] != Invalid {
		c.Stats.ReadHits++
		return true
	}
	if !c.waiting[addr] {
		c.waiting[addr] = true
		c.nextID++
		c.Send(Message{Kind: KindRdShared, Addr: addr, ID: c.nextID, Tag: uint16(c.ID)})
	}
	return false
}

// Write performs a store of the value hash derived from addr and token: an
// M/E hit updates locally; otherwise it issues RdOwn. It reports whether
// the access hit.
func (c *Cache) Write(addr uint64, val uint16) bool {
	switch c.state[addr] {
	case Modified, Exclusive:
		c.Stats.WriteHits++
		c.state[addr] = Modified
		c.value[addr] = val
		return true
	default:
		if !c.waiting[addr] {
			c.waiting[addr] = true
			c.nextID++
			c.Send(Message{Kind: KindRdOwn, Addr: addr, ID: c.nextID, Tag: uint16(c.ID)})
		}
		return false
	}
}

// WriteBack flushes a Modified line to the directory and invalidates it
// locally.
func (c *Cache) WriteBack(addr uint64) {
	if c.state[addr] != Modified {
		return
	}
	c.Send(Message{Kind: KindWriteBack, Addr: addr, Val: c.value[addr], Tag: uint16(c.ID)})
	c.state[addr] = Invalid
	delete(c.value, addr)
}

// OnMessage processes one message from the directory.
func (c *Cache) OnMessage(m Message) {
	switch m.Kind {
	case KindGrant:
		if !c.waiting[m.Addr] {
			c.Stats.StaleGrants++
			return
		}
		delete(c.waiting, m.Addr)
		c.value[m.Addr] = m.Val
		if m.Tag == grantExclusive {
			c.state[m.Addr] = Exclusive
			c.Stats.ExclusiveFills++
		} else {
			c.state[m.Addr] = Shared
			c.Stats.SharedFills++
		}
	case KindSnpInv:
		c.Stats.Invalidated++
		c.state[m.Addr] = Invalid
		delete(c.value, m.Addr)
		if m.Tag == snpWantAck {
			// Tag carries the cache ID for transports that route by it.
			c.Send(Message{Kind: KindInvAck, Addr: m.Addr, ID: m.ID, CQID: m.CQID, Tag: uint16(c.ID)})
		}
	}
}

// AuditReport summarizes a coherence invariant check across a directory
// and its caches.
type AuditReport struct {
	// SWMRViolations counts lines violating single-writer-multiple-reader:
	// a Modified/Exclusive copy coexisting with any other valid copy.
	SWMRViolations int
	// StaleSharers counts Shared copies whose value differs from the
	// directory's (dirty reads an application would observe).
	StaleSharers int
	// DirectoryDrift counts lines where the directory's owner/sharer
	// bookkeeping disagrees with actual cache states.
	DirectoryDrift int
}

// Clean reports whether every invariant held.
func (r AuditReport) Clean() bool {
	return r.SWMRViolations == 0 && r.StaleSharers == 0 && r.DirectoryDrift == 0
}

// Audit checks global MESI invariants across the given caches for every
// line the directory knows. Call it at a quiescent point (no in-flight
// messages) — with reliable transport it must come back clean; after
// link-layer failures it is the ground-truth detector for coherence
// corruption.
func (d *Directory) Audit(caches []*Cache) AuditReport {
	var r AuditReport
	for addr, l := range d.lines {
		owners, valid := 0, 0
		for _, c := range caches {
			switch c.State(addr) {
			case Modified, Exclusive:
				owners++
				valid++
			case Shared:
				valid++
				if c.Value(addr) != l.value {
					r.StaleSharers++
				}
			}
		}
		if owners > 0 && valid > 1 {
			r.SWMRViolations++
		}
		// Directory bookkeeping: a recorded owner must actually hold the
		// line in M/E (unless a grant is still pending).
		if l.owner >= 0 && d.pending[addr] == nil {
			oc := findCache(caches, uint8(l.owner))
			if oc != nil && oc.State(addr) != Modified && oc.State(addr) != Exclusive && oc.OutstandingMisses() == 0 {
				r.DirectoryDrift++
			}
		}
	}
	return r
}

func findCache(caches []*Cache, id uint8) *Cache {
	for _, c := range caches {
		if c.ID == id {
			return c
		}
	}
	return nil
}
