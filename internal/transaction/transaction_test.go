package transaction

import (
	"testing"
	"testing/quick"
)

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(kind, cqid uint8, id uint32, addr uint64, tag, val uint16) bool {
		m := Message{Kind: Kind(kind%3 + 1), CQID: cqid, ID: id, Addr: addr, Tag: tag, Val: val}
		buf := make([]byte, MessageSize)
		m.Encode(buf)
		return DecodeMessage(buf) == m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	msgs := make([]Message, PackCapacity+5)
	for i := range msgs {
		msgs[i] = Message{Kind: KindReq, CQID: uint8(i), ID: uint32(i * 7), Addr: uint64(i) << 12, Tag: uint16(i), Val: uint16(i * 3)}
	}
	payload := make([]byte, 240)
	n := Pack(payload, msgs)
	if n != PackCapacity {
		t.Fatalf("packed %d, want capacity %d", n, PackCapacity)
	}
	got := Unpack(payload)
	if len(got) != n {
		t.Fatalf("unpacked %d", len(got))
	}
	for i := range got {
		if got[i] != msgs[i] {
			t.Fatalf("message %d mismatch: %+v vs %+v", i, got[i], msgs[i])
		}
	}
}

func TestPackPartial(t *testing.T) {
	payload := make([]byte, 240)
	n := Pack(payload, []Message{{Kind: KindReq, ID: 1}})
	if n != 1 {
		t.Fatalf("packed %d", n)
	}
	got := Unpack(payload)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("unpack: %+v", got)
	}
	if Pack(payload, nil) != 0 {
		t.Error("empty pack should return 0")
	}
	if len(Unpack(payload)) != 0 {
		t.Error("empty payload should unpack to nothing")
	}
}

func TestUnpackCorruptCountClamped(t *testing.T) {
	payload := make([]byte, 240)
	payload[0] = 0xFF // corrupted count
	got := Unpack(payload)
	if len(got) > PackCapacity {
		t.Fatalf("unpacked %d messages from corrupted count", len(got))
	}
}

func TestPackCapacityFitsRoutingBytes(t *testing.T) {
	// The packed region must leave the last two payload bytes free for
	// fabric routing tags.
	if 1+PackCapacity*MessageSize > 238 {
		t.Fatalf("pack region %d overlaps routing bytes", 1+PackCapacity*MessageSize)
	}
}

func TestKindStrings(t *testing.T) {
	if KindReq.String() != "REQ" || KindRsp.String() != "RSP" || KindData.String() != "DATA" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string")
	}
}

func TestSyntheticValueDeterministicAndSpread(t *testing.T) {
	if SyntheticValue(42) != SyntheticValue(42) {
		t.Fatal("not deterministic")
	}
	seen := map[uint16]bool{}
	for a := uint64(0); a < 1000; a++ {
		seen[SyntheticValue(a)] = true
	}
	if len(seen) < 950 {
		t.Fatalf("poor spread: %d distinct of 1000", len(seen))
	}
}

// loopback wires a host and device directly (no link layer).
func loopback() (*Host, *Device) {
	var h *Host
	var d *Device
	h = NewHost(func(m Message) { d.OnMessage(m) })
	d = NewDevice(func(m Message) { h.OnMessage(m) })
	return h, d
}

func TestHostDeviceHappyPath(t *testing.T) {
	h, d := loopback()
	for i := 0; i < 100; i++ {
		d.IssueRead(uint64(i)*64, uint8(i%4))
	}
	if d.Stats.Completed != 100 || d.Outstanding() != 0 {
		t.Fatalf("completed %d, outstanding %d", d.Stats.Completed, d.Outstanding())
	}
	if d.Stats.DuplicateData+d.Stats.OutOfOrderData+d.Stats.CorruptData+d.Stats.UnknownData != 0 {
		t.Fatalf("clean run reported failures: %+v", d.Stats)
	}
	if h.Stats.DuplicateExecutions != 0 {
		t.Fatal("clean run executed duplicates")
	}
}

func TestDuplicateRequestDetectedAtHost(t *testing.T) {
	h, d := loopback()
	d.IssueRead(0x1000, 0)
	// Replay of the same request flit (Fig. 5a): same ID arrives again.
	h.OnMessage(Message{Kind: KindReq, CQID: 0, ID: 0, Addr: 0x1000})
	if h.Stats.DuplicateExecutions != 1 {
		t.Fatalf("DuplicateExecutions = %d, want 1", h.Stats.DuplicateExecutions)
	}
	// The redundant data lands on the device as duplicate data.
	if d.Stats.DuplicateData != 1 {
		t.Fatalf("DuplicateData = %d, want 1", d.Stats.DuplicateData)
	}
}

func TestOutOfOrderDataDetected(t *testing.T) {
	_, d := loopback()
	// Issue two reads on the same CQID but bypass the host: deliver data
	// out of order (Fig. 5b).
	d2 := NewDevice(func(Message) {})
	id1 := d2.IssueRead(0x100, 7)
	id2 := d2.IssueRead(0x200, 7)
	d2.OnMessage(Message{Kind: KindData, CQID: 7, ID: id2, Addr: 0x200, Tag: 1, Val: SyntheticValue(0x200)})
	d2.OnMessage(Message{Kind: KindData, CQID: 7, ID: id1, Addr: 0x100, Tag: 0, Val: SyntheticValue(0x100)})
	if d2.Stats.OutOfOrderData == 0 {
		t.Fatal("out-of-order data not detected")
	}
	if d2.Stats.Completed != 2 {
		t.Fatalf("completed %d", d2.Stats.Completed)
	}
	_ = d
}

func TestDistinctCQIDsMayInterleave(t *testing.T) {
	d := NewDevice(func(Message) {})
	idA := d.IssueRead(0x100, 1)
	idB := d.IssueRead(0x200, 2)
	// Different CQIDs arriving in reverse issue order is legal.
	d.OnMessage(Message{Kind: KindData, CQID: 2, ID: idB, Addr: 0x200, Tag: 0, Val: SyntheticValue(0x200)})
	d.OnMessage(Message{Kind: KindData, CQID: 1, ID: idA, Addr: 0x100, Tag: 0, Val: SyntheticValue(0x100)})
	if d.Stats.OutOfOrderData != 0 {
		t.Fatal("cross-CQID interleave flagged as failure")
	}
}

func TestCorruptDataDetected(t *testing.T) {
	d := NewDevice(func(Message) {})
	id := d.IssueRead(0x100, 0)
	d.OnMessage(Message{Kind: KindData, CQID: 0, ID: id, Addr: 0x100, Tag: 0, Val: SyntheticValue(0x100) ^ 1})
	if d.Stats.CorruptData != 1 {
		t.Fatalf("CorruptData = %d, want 1", d.Stats.CorruptData)
	}
}

func TestUnknownDataDetected(t *testing.T) {
	d := NewDevice(func(Message) {})
	d.OnMessage(Message{Kind: KindData, CQID: 0, ID: 999, Addr: 0, Tag: 0})
	if d.Stats.UnknownData != 1 {
		t.Fatalf("UnknownData = %d, want 1", d.Stats.UnknownData)
	}
}

func TestHostIgnoresNonRequests(t *testing.T) {
	h := NewHost(func(Message) { t.Fatal("host responded to non-request") })
	h.OnMessage(Message{Kind: KindData, ID: 1})
	h.OnMessage(Message{Kind: KindRsp, ID: 2})
	if h.Stats.RequestsExecuted != 0 {
		t.Fatal("executed a non-request")
	}
}

func TestDeviceIgnoresNonData(t *testing.T) {
	d := NewDevice(func(Message) {})
	d.IssueRead(0x1, 0)
	d.OnMessage(Message{Kind: KindReq, ID: 0})
	if d.Stats.Completed != 0 {
		t.Fatal("completed on a non-data message")
	}
}

func BenchmarkPackUnpack(b *testing.B) {
	msgs := make([]Message, PackCapacity)
	for i := range msgs {
		msgs[i] = Message{Kind: KindData, ID: uint32(i), Addr: uint64(i)}
	}
	payload := make([]byte, 240)
	b.SetBytes(int64(PackCapacity * MessageSize))
	for i := 0; i < b.N; i++ {
		Pack(payload, msgs)
		Unpack(payload)
	}
}
