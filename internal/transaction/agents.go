package transaction

// HostStats counts host-side transaction events, including the Fig. 5a
// failure signature: the same request executed more than once.
type HostStats struct {
	RequestsExecuted    uint64
	DuplicateExecutions uint64 // Fig. 5a: redundant request processing
}

// Host is the memory-owning agent: it executes read requests in arrival
// order and emits KindData responses. Per the paper, duplicate detection is
// confined to the link layer — the host deliberately executes whatever
// arrives, so an escaped duplicate becomes a redundant execution, counted
// but not suppressed.
type Host struct {
	// Send transmits a response message toward the device.
	Send func(Message)

	executed map[uint32]uint32 // request ID -> times executed
	cqSeq    map[uint8]uint16  // per-CQID data delivery sequence

	Stats HostStats
}

// NewHost constructs a host agent.
func NewHost(send func(Message)) *Host {
	return &Host{Send: send, executed: make(map[uint32]uint32), cqSeq: make(map[uint8]uint16)}
}

// OnMessage processes one arriving message.
func (h *Host) OnMessage(m Message) {
	if m.Kind != KindReq {
		return
	}
	h.Stats.RequestsExecuted++
	h.executed[m.ID]++
	if h.executed[m.ID] > 1 {
		h.Stats.DuplicateExecutions++
	}
	seq := h.cqSeq[m.CQID]
	h.cqSeq[m.CQID] = seq + 1
	h.Send(Message{
		Kind: KindData,
		CQID: m.CQID,
		ID:   m.ID,
		Addr: m.Addr,
		Tag:  seq,
		Val:  SyntheticValue(m.Addr),
	})
}

// DeviceStats counts device-side transaction events, including both Fig. 5
// failure signatures and end-to-end data corruption.
type DeviceStats struct {
	Issued         uint64
	Completed      uint64
	DuplicateData  uint64 // same transaction answered more than once (Fig. 5a)
	OutOfOrderData uint64 // intra-CQID sequence regression (Fig. 5b)
	CorruptData    uint64 // value does not match the address (Fail_data)
	UnknownData    uint64 // data for a transaction never issued
}

// Device issues read requests and validates the returning data stream.
type Device struct {
	// Send transmits a request message toward the host.
	Send func(Message)

	nextID      uint32
	outstanding map[uint32]uint64 // ID -> Addr
	answered    map[uint32]bool
	cqNext      map[uint8]uint16 // next expected per-CQID sequence

	Stats DeviceStats
}

// NewDevice constructs a device agent.
func NewDevice(send func(Message)) *Device {
	return &Device{
		Send:        send,
		outstanding: make(map[uint32]uint64),
		answered:    make(map[uint32]bool),
		cqNext:      make(map[uint8]uint16),
	}
}

// IssueRead sends a read request on the given command queue and returns the
// transaction ID.
func (d *Device) IssueRead(addr uint64, cqid uint8) uint32 {
	id := d.nextID
	d.nextID++
	d.outstanding[id] = addr
	d.Stats.Issued++
	d.Send(Message{Kind: KindReq, CQID: cqid, ID: id, Addr: addr})
	return id
}

// Outstanding returns the number of unanswered requests.
func (d *Device) Outstanding() int { return len(d.outstanding) }

// OnMessage validates one arriving message against the issued stream.
func (d *Device) OnMessage(m Message) {
	if m.Kind != KindData {
		return
	}
	addr, known := d.outstanding[m.ID]
	if !known {
		if d.answered[m.ID] {
			// Fig. 5a at the consumer: a retried flit re-delivered data
			// for an already-completed transaction.
			d.Stats.DuplicateData++
		} else {
			d.Stats.UnknownData++
		}
		return
	}

	// Fig. 5b: within one CQID, data must arrive in host-issue order. A
	// regression (or skip) of the per-queue sequence is an ordering
	// violation the application would observe as misaligned data.
	if want := d.cqNext[m.CQID]; m.Tag != want {
		d.Stats.OutOfOrderData++
		// Resynchronize past the anomaly so one skip doesn't cascade.
		d.cqNext[m.CQID] = m.Tag + 1
	} else {
		d.cqNext[m.CQID] = want + 1
	}

	if m.Val != SyntheticValue(addr) || m.Addr != addr {
		d.Stats.CorruptData++
	}

	delete(d.outstanding, m.ID)
	d.answered[m.ID] = true
	d.Stats.Completed++
}
