package perf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/link"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/switchfab"
)

func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.FlitTime = 0 },
		func(p *Params) { p.RetryLatency = -1 },
		func(p *Params) { p.FERUC = 2 },
		func(p *Params) { p.PCoalescing = -0.5 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid params", i)
		}
	}
}

// TestEq11Direct checks BW loss ≈ 0.15% for the direct connection.
func TestEq11Direct(t *testing.T) {
	loss := DefaultParams().BWLossDirect()
	if !within(loss, 0.0015, 0.05) {
		t.Fatalf("BW loss direct = %g, want ≈0.0015", loss)
	}
}

// TestEq12Switched checks BW loss ≈ 0.30% with one switch.
func TestEq12Switched(t *testing.T) {
	loss := DefaultParams().BWLossSwitched(1)
	if !within(loss, 0.0030, 0.05) {
		t.Fatalf("BW loss switched = %g, want ≈0.0030", loss)
	}
}

// TestEq13NoPiggyback checks BW loss = p_coalescing exactly.
func TestEq13NoPiggyback(t *testing.T) {
	p := DefaultParams()
	if loss := p.BWLossNoPiggyback(); loss != p.PCoalescing {
		t.Fatalf("BW loss no-piggyback = %g, want %g", loss, p.PCoalescing)
	}
	p.PCoalescing = 1
	if loss := p.BWLossNoPiggyback(); loss != 1 {
		t.Fatalf("without coalescing loss = %g, want 1 (100%%)", loss)
	}
}

// TestEq14RXL checks RXL's loss matches the Eq. 12 value — same cost,
// stronger guarantee.
func TestEq14RXL(t *testing.T) {
	p := DefaultParams()
	if p.BWLossRXL(1) != p.BWLossSwitched(1) {
		t.Fatal("Eq. 14 must equal Eq. 12")
	}
}

func TestTableShape(t *testing.T) {
	rows := DefaultParams().Table()
	if len(rows) != 4 {
		t.Fatalf("table has %d rows, want 4", len(rows))
	}
	// The no-piggyback option costs ~33x more bandwidth than RXL at
	// p_coalescing = 0.1 — the paper's argument for ISN.
	var noPB, rxl float64
	for _, r := range rows {
		switch r.Scheme {
		case "CXL switched (no piggyback)":
			noPB = r.BWLoss
		case "RXL switched":
			rxl = r.BWLoss
		}
	}
	if noPB/rxl < 30 {
		t.Errorf("no-piggyback/RXL loss ratio = %g, want > 30", noPB/rxl)
	}
	// Only the piggybacking CXL row gives up ordering detection.
	for _, r := range rows {
		wantOrdered := r.Scheme != "CXL switched (piggyback)"
		if r.Ordered != wantOrdered {
			t.Errorf("%s: Ordered = %v, want %v", r.Scheme, r.Ordered, wantOrdered)
		}
	}
}

func TestCoalescingSweep(t *testing.T) {
	ps := []float64{0.02, 0.1, 0.5, 1}
	rows := CoalescingSweep(ps)
	for i, r := range rows {
		if r.BWLoss != ps[i] {
			t.Errorf("row %d: BWLoss %g, want %g", i, r.BWLoss, ps[i])
		}
	}
}

func TestCoalescingSweepPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CoalescingSweep([]float64{1.5})
}

func TestBWLossMonotoneInLevels(t *testing.T) {
	p := DefaultParams()
	prev := -1.0
	for l := 0; l <= 16; l++ {
		loss := p.BWLossSwitched(l)
		if loss <= prev {
			t.Fatalf("BW loss not increasing at level %d", l)
		}
		prev = loss
	}
}

func TestBWLossNegativeLevelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultParams().BWLossSwitched(-1)
}

// TestLossAtRetryRateProperties: loss is 0 at rate 0, increasing, and
// below 1 for any rate < 1.
func TestLossAtRetryRateProperties(t *testing.T) {
	p := DefaultParams()
	if got := p.lossAtRetryRate(0); got != 0 {
		t.Fatalf("loss at rate 0 = %g", got)
	}
	f := func(a, b uint16) bool {
		r1 := float64(a) / (math.MaxUint16 + 1)
		r2 := float64(b) / (math.MaxUint16 + 1)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		l1, l2 := p.lossAtRetryRate(r1), p.lossAtRetryRate(r2)
		return l1 >= 0 && l2 < 1 && l1 <= l2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	p := DefaultParams()
	// 2 ns flits, 240B payload, perfect goodput: 120 GB/s.
	bw := p.EffectiveBandwidth(1.0, 240)
	if !within(bw, 120e9, 1e-9) {
		t.Fatalf("effective bandwidth = %g, want 120e9", bw)
	}
	if half := p.EffectiveBandwidth(0.5, 240); !within(half, 60e9, 1e-9) {
		t.Fatalf("half goodput bandwidth = %g, want 60e9", half)
	}
}

func TestEffectiveBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultParams().EffectiveBandwidth(1.5, 240)
}

// TestMeasureGoodputFromStats exercises the stats → goodput conversion on
// synthetic counters.
func TestMeasureGoodputFromStats(t *testing.T) {
	st := link.Stats{
		FlitsSent:       1100,
		DataFlitsSent:   1000,
		Retransmissions: 60,
		AckFlitsSent:    30,
		NakFlitsSent:    10,
	}
	m := MeasureGoodput(st)
	if !within(m.BWLoss, 1-1000.0/1100.0, 1e-12) {
		t.Fatalf("BWLoss = %g", m.BWLoss)
	}
	if !within(m.AckOverhead, 0.03, 1e-12) {
		t.Fatalf("AckOverhead = %g", m.AckOverhead)
	}
	if !within(m.RetryOverhead, 0.06, 1e-12) {
		t.Fatalf("RetryOverhead = %g", m.RetryOverhead)
	}
}

func TestMeasureGoodputZeroStats(t *testing.T) {
	m := MeasureGoodput(link.Stats{})
	if m.BWLoss != 0 || m.AckOverhead != 0 || m.RetryOverhead != 0 {
		t.Fatal("zero stats must give zero overheads")
	}
}

// TestMeasuredAckOverheadMatchesEq13 runs a live no-piggyback simulation
// and checks the standalone-ACK overhead lands at p_coalescing — the
// simulation-side validation of Eq. 13.
func TestMeasuredAckOverheadMatchesEq13(t *testing.T) {
	for _, coalesce := range []int{1, 2, 10} {
		eng := sim.NewEngine()
		cfg := link.DefaultConfig(link.ProtocolCXLNoPiggyback)
		cfg.CoalesceCount = coalesce
		a := link.NewPeer("A", eng, cfg)
		b := link.NewPeer("B", eng, cfg)
		link.ConnectDirect(eng, a, b, sim.FlitTime, 10*sim.Nanosecond)

		const n = 2000
		payload := make([]byte, 16)
		for i := 0; i < n; i++ {
			a.Submit(payload)
		}
		eng.Run()

		m := MeasureGoodput(b.Stats) // B transmits the ACKs
		want := 1.0 / float64(coalesce)
		got := float64(b.Stats.AckFlitsSent) / float64(n)
		if !within(got, want, 0.05) {
			t.Errorf("coalesce=%d: ACK/data = %g, want ≈%g", coalesce, got, want)
		}
		_ = m
	}
}

// TestMeasuredRetryOverheadTracksEq12 pushes traffic through a one-switch
// chain with a lossy first hop and checks the measured retransmission
// overhead scales with the drop rate, cross-checking the Eq. 12 occupancy
// model's input.
func TestMeasuredRetryOverheadTracksEq12(t *testing.T) {
	eng := sim.NewEngine()
	cfg := switchfab.DefaultChainConfig(link.ProtocolRXL, 1)
	c := switchfab.NewChain(eng, cfg)
	rng := phy.NewRNG(12345)
	for _, w := range c.AllWires() {
		w.Channel = phy.NewChannel(2e-5, 0.4, rng.Split())
	}
	delivered := 0
	c.B.Deliver = func([]byte) { delivered++ }
	const n = 5000
	payload := make([]byte, 16)
	for i := 0; i < n; i++ {
		c.A.Submit(payload)
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	m := MeasureGoodput(c.A.Stats)
	if c.A.Stats.Retransmissions == 0 {
		t.Skip("no retries at this seed; cannot cross-check")
	}
	// Go-back-N amplifies each error into a window of replays, so the
	// overhead must be at least the raw error rate and well below 50%.
	if m.RetryOverhead <= 0 || m.RetryOverhead > 0.5 {
		t.Fatalf("retry overhead %g implausible", m.RetryOverhead)
	}
}
