// Package perf implements the paper's bandwidth-loss analysis (Section
// 7.2): the cost of go-back-N retries on direct and switched paths
// (Eq. 11, 12, 14) and the reverse-bandwidth cost of standalone ACK flits
// when piggybacking is disabled (Eq. 13).
//
// The model is a simple occupancy argument: a flit that transmits cleanly
// occupies the channel for FlitTime; a flit that triggers a go-back-N retry
// occupies it for FlitTime + RetryLatency, because the retry window is
// filled with replayed flits that carry no new payload. Bandwidth loss is
// one minus the ratio of useful time to expected occupancy.
//
// Alongside the closed forms, Measured* helpers extract the same quantities
// from live simulation statistics so every equation can be cross-checked
// against the event-driven link model.
package perf

import (
	"fmt"
	"math"

	"repro/internal/link"
	"repro/internal/sim"
)

// Params holds the Section 7.2 timing and error inputs.
type Params struct {
	// FlitTime is the serialization time of one flit (2 ns on a ×16
	// CXL 3.0 link).
	FlitTime sim.Time
	// RetryLatency is the go-back-N turnaround: the time the channel is
	// occupied by replayed flits per retry event (100 ns, Section 7.2).
	RetryLatency sim.Time
	// FERUC is the per-link uncorrectable flit error rate (3e-5).
	FERUC float64
	// PCoalescing is the ACK coalescing level (fraction of forward flits
	// answered by one standalone ACK when piggybacking is off).
	PCoalescing float64
}

// DefaultParams returns the Section 7.2 inputs: 2 ns flits, 100 ns
// go-back-N latency, FER_UC = 3e-5, p_coalescing = 0.1.
func DefaultParams() Params {
	return Params{
		FlitTime:     2 * sim.Nanosecond,
		RetryLatency: 100 * sim.Nanosecond,
		FERUC:        3.0e-5,
		PCoalescing:  0.1,
	}
}

// Validate reports whether the parameters are meaningful.
func (p Params) Validate() error {
	switch {
	case p.FlitTime <= 0:
		return fmt.Errorf("perf: FlitTime %d must be positive", p.FlitTime)
	case p.RetryLatency < 0:
		return fmt.Errorf("perf: RetryLatency %d must be non-negative", p.RetryLatency)
	case p.FERUC < 0 || p.FERUC > 1:
		return fmt.Errorf("perf: FERUC %g out of [0,1]", p.FERUC)
	case p.PCoalescing < 0 || p.PCoalescing > 1:
		return fmt.Errorf("perf: PCoalescing %g out of [0,1]", p.PCoalescing)
	}
	return nil
}

// lossAtRetryRate evaluates the occupancy argument of Eq. 11 at an
// arbitrary per-flit retry rate:
//
//	BW_loss = 1 - t_flit / ((1-r)·t_flit + r·(t_flit + t_retry))
func (p Params) lossAtRetryRate(r float64) float64 {
	if r < 0 || r > 1 {
		panic("perf: retry rate out of [0,1]")
	}
	tf := float64(p.FlitTime)
	tr := float64(p.FlitTime + p.RetryLatency)
	return 1 - tf/((1-r)*tf+r*tr)
}

// BWLossDirect returns the retry bandwidth loss of a direct connection
// (Eq. 11): flits retry at rate FER_UC, giving ≈0.15% with the default
// parameters.
func (p Params) BWLossDirect() float64 {
	return p.lossAtRetryRate(p.FERUC)
}

// BWLossSwitched returns the retry bandwidth loss across a path with the
// given number of switching levels, generalizing Eq. 12: each of the
// levels+1 links contributes retries at rate FER_UC. At one level this is
// 2×FER_UC and ≈0.30%.
//
// Both CXL-with-piggybacking and RXL share this formula (Eq. 12 and Eq. 14
// are identical expressions); the difference is that CXL's number buys
// incomplete protection while RXL's buys full drop detection.
func (p Params) BWLossSwitched(levels int) float64 {
	if levels < 0 {
		panic("perf: negative switching levels")
	}
	return p.lossAtRetryRate(math.Min(1, float64(levels+1)*p.FERUC))
}

// BWLossNoPiggyback returns the reverse-direction bandwidth consumed by
// standalone ACK flits when piggybacking is disabled (Eq. 13):
//
//	BW_loss = p_coalescing
//
// Without coalescing (p=1) the reverse link is fully consumed by ACKs.
func (p Params) BWLossNoPiggyback() float64 {
	return p.PCoalescing
}

// BWLossRXL returns RXL's bandwidth loss at the given switching level
// (Eq. 14). RXL keeps ACK piggybacking — the ISN-protected CRC covers the
// piggybacked AckNum — so its loss equals the Eq. 12 retry-occupancy form.
func (p Params) BWLossRXL(levels int) float64 {
	return p.BWLossSwitched(levels)
}

// Row is one line of the Section 7.2 comparison table.
type Row struct {
	Scheme  string  // configuration name
	Levels  int     // switching levels
	BWLoss  float64 // fractional bandwidth loss
	Ordered bool    // whether the scheme detects all ordering violations
}

// Table returns the Section 7.2 comparison at one switching level: CXL
// direct, CXL switched with piggybacking, CXL switched without
// piggybacking, and RXL switched.
func (p Params) Table() []Row {
	return []Row{
		{Scheme: "CXL direct", Levels: 0, BWLoss: p.BWLossDirect(), Ordered: true},
		{Scheme: "CXL switched (piggyback)", Levels: 1, BWLoss: p.BWLossSwitched(1), Ordered: false},
		{Scheme: "CXL switched (no piggyback)", Levels: 1, BWLoss: p.BWLossNoPiggyback(), Ordered: true},
		{Scheme: "RXL switched", Levels: 1, BWLoss: p.BWLossRXL(1), Ordered: true},
	}
}

// CoalescingSweep evaluates Eq. 13 across coalescing levels, reproducing
// the buffering-vs-bandwidth trade-off discussion: ps lists the
// p_coalescing values to evaluate.
func CoalescingSweep(ps []float64) []Row {
	rows := make([]Row, 0, len(ps))
	for _, pc := range ps {
		if pc < 0 || pc > 1 {
			panic("perf: p_coalescing out of [0,1]")
		}
		rows = append(rows, Row{
			Scheme:  fmt.Sprintf("no-piggyback p=%.3g", pc),
			Levels:  1,
			BWLoss:  pc,
			Ordered: true,
		})
	}
	return rows
}

// --- Simulation cross-checks ---------------------------------------------

// MeasuredGoodput summarizes useful versus total link occupancy from live
// link statistics: the simulation-side counterpart of Eq. 11/12/14.
type MeasuredGoodput struct {
	DataFlits     uint64 // first transmissions (useful payload)
	TotalFlits    uint64 // everything on the wire incl. replays and control
	Retransmits   uint64
	ControlFlits  uint64
	BWLoss        float64 // 1 - DataFlits/TotalFlits
	AckOverhead   float64 // standalone ACKs / data flits (Eq. 13 measured)
	RetryOverhead float64 // retransmissions / data flits
}

// MeasureGoodput derives goodput and overhead fractions from a transmitter
// peer's statistics after a simulation run.
func MeasureGoodput(st link.Stats) MeasuredGoodput {
	m := MeasuredGoodput{
		DataFlits:    st.DataFlitsSent,
		TotalFlits:   st.FlitsSent,
		Retransmits:  st.Retransmissions,
		ControlFlits: st.AckFlitsSent + st.NakFlitsSent,
	}
	if m.TotalFlits > 0 {
		m.BWLoss = 1 - float64(m.DataFlits)/float64(m.TotalFlits)
	}
	if m.DataFlits > 0 {
		m.AckOverhead = float64(st.AckFlitsSent) / float64(m.DataFlits)
		m.RetryOverhead = float64(m.Retransmits) / float64(m.DataFlits)
	}
	return m
}

// EffectiveBandwidth converts a goodput fraction into bytes/s given the
// flit payload size and flit time — a convenience for reports.
func (p Params) EffectiveBandwidth(goodput float64, payloadBytes int) float64 {
	if goodput < 0 || goodput > 1 {
		panic("perf: goodput out of [0,1]")
	}
	flitsPerSec := float64(sim.Second) / float64(p.FlitTime)
	return goodput * flitsPerSec * float64(payloadBytes)
}
