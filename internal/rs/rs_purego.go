//go:build purego

package rs

// vectoredSyndromes is false under the purego build tag: every syndrome
// computation runs the byte-at-a-time reference loops, making this build
// the pinned baseline the default build is differentially tested against.
const vectoredSyndromes = false
