//go:build !purego

package rs

// vectoredSyndromes selects the word-parallel syndrome evaluator for
// codes with at most synLanes parity symbols. Constant, so the dispatch
// branch in syndromes/Verify folds away at compile time.
const vectoredSyndromes = true
