package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randData(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("New(0,2) should fail")
	}
	if _, err := New(10, 0); err == nil {
		t.Error("New(10,0) should fail")
	}
	if _, err := New(254, 2); err == nil {
		t.Error("codeword longer than 255 should fail")
	}
	c, err := New(83, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.DataLen() != 83 || c.ParityLen() != 2 || c.CodewordLen() != 85 || c.T() != 1 {
		t.Errorf("geometry wrong: %d/%d/%d t=%d", c.DataLen(), c.ParityLen(), c.CodewordLen(), c.T())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad params did not panic")
		}
	}()
	MustNew(0, 2)
}

func TestEncodeProducesValidCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 10, 83, 84, 200} {
		c := MustNew(k, 2)
		for trial := 0; trial < 50; trial++ {
			data := randData(rng, k)
			parity := make([]byte, 2)
			c.Encode(data, parity)
			res := c.Decode(data, parity)
			if res.Status != StatusClean {
				t.Fatalf("k=%d: fresh codeword decodes as %v", k, res.Status)
			}
		}
	}
}

func TestSingleErrorCorrectedEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := MustNew(83, 2)
	data := randData(rng, 83)
	parity := make([]byte, 2)
	c.Encode(data, parity)
	orig := append([]byte(nil), data...)
	origP := append([]byte(nil), parity...)

	// Every byte position (data and parity), every of a few magnitudes.
	for pos := 0; pos < 85; pos++ {
		for _, mag := range []byte{1, 0x80, 0xFF} {
			d := append([]byte(nil), orig...)
			p := append([]byte(nil), origP...)
			if pos < 83 {
				d[pos] ^= mag
			} else {
				p[pos-83] ^= mag
			}
			res := c.Decode(d, p)
			if res.Status != StatusCorrected || res.Corrected != 1 {
				t.Fatalf("pos=%d mag=%#x: got %+v", pos, mag, res)
			}
			if !bytes.Equal(d, orig) || !bytes.Equal(p, origP) {
				t.Fatalf("pos=%d mag=%#x: correction wrong", pos, mag)
			}
		}
	}
}

func TestSingleErrorProperty(t *testing.T) {
	c := MustNew(40, 2)
	rng := rand.New(rand.NewSource(3))
	prop := func(seed int64, posRaw, magRaw byte) bool {
		r := rand.New(rand.NewSource(seed))
		data := randData(r, 40)
		parity := make([]byte, 2)
		c.Encode(data, parity)
		orig := append([]byte(nil), data...)
		pos := int(posRaw) % 40
		mag := magRaw
		if mag == 0 {
			mag = 1
		}
		data[pos] ^= mag
		res := c.Decode(data, parity)
		return res.Status == StatusCorrected && bytes.Equal(data, orig)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDoubleErrorNeverSilentlyKept verifies that with two symbol errors the
// 2-parity decoder either reports uncorrectable or "corrects" to a different
// (wrong) codeword — it must never return the original data while claiming
// StatusClean.
func TestDoubleErrorNeverFalselyClean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := MustNew(83, 2)
	for trial := 0; trial < 2000; trial++ {
		data := randData(rng, 83)
		parity := make([]byte, 2)
		c.Encode(data, parity)
		p1 := rng.Intn(83)
		p2 := rng.Intn(83)
		for p2 == p1 {
			p2 = rng.Intn(83)
		}
		data[p1] ^= byte(rng.Intn(255) + 1)
		data[p2] ^= byte(rng.Intn(255) + 1)
		res := c.Decode(data, parity)
		if res.Status == StatusClean {
			t.Fatalf("trial %d: two errors reported clean", trial)
		}
	}
}

// TestShortenedDetectionRates reproduces the key quantitative claim of
// Section 2.5: a shortened 85-of-255 code detects roughly two thirds of
// 2-symbol (uncorrectable) error patterns, because the implied single-error
// location is roughly uniform over the 255-position mother code and only 85
// positions are occupied.
func TestShortenedDetectionRates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := MustNew(83, 2)
	const trials = 30000
	detected := 0
	for trial := 0; trial < trials; trial++ {
		data := randData(rng, 83)
		parity := make([]byte, 2)
		c.Encode(data, parity)
		p1 := rng.Intn(85)
		p2 := rng.Intn(85)
		for p2 == p1 {
			p2 = rng.Intn(85)
		}
		inject := func(p int, mag byte) {
			if p < 83 {
				data[p] ^= mag
			} else {
				parity[p-83] ^= mag
			}
		}
		inject(p1, byte(rng.Intn(255)+1))
		inject(p2, byte(rng.Intn(255)+1))
		if c.Decode(data, parity).Status == StatusUncorrectable {
			detected++
		}
	}
	rate := float64(detected) / trials
	// Expected ~ 1 - 85/255 = 2/3, plus a small boost from the
	// S0==0-or-S1==0 patterns. Allow a generous statistical band.
	if rate < 0.63 || rate > 0.72 {
		t.Fatalf("2-error detection rate = %.4f, want ~0.667", rate)
	}
	t.Logf("2-symbol-error detection rate: %.4f (paper: ~2/3)", rate)
}

func TestZeroSyndromePairDetected(t *testing.T) {
	// Craft a 2-error pattern with equal magnitudes at two positions:
	// S0 = e ^ e = 0 but S1 != 0 -> must be flagged uncorrectable by the
	// "one zero syndrome" rule rather than crash in Log(0).
	c := MustNew(10, 2)
	data := make([]byte, 10)
	parity := make([]byte, 2)
	c.Encode(data, parity)
	data[2] ^= 0x41
	data[7] ^= 0x41
	res := c.Decode(data, parity)
	if res.Status != StatusUncorrectable {
		t.Fatalf("equal-magnitude double error: got %v, want uncorrectable", res.Status)
	}
}

func TestBMDecoderCorrectsUpToT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, cfg := range []struct{ k, np int }{{50, 4}, {50, 6}, {100, 8}} {
		c := MustNew(cfg.k, cfg.np)
		tcap := c.T()
		for nerr := 1; nerr <= tcap; nerr++ {
			for trial := 0; trial < 200; trial++ {
				data := randData(rng, cfg.k)
				parity := make([]byte, cfg.np)
				c.Encode(data, parity)
				orig := append([]byte(nil), data...)
				origP := append([]byte(nil), parity...)
				positions := rng.Perm(c.CodewordLen())[:nerr]
				for _, p := range positions {
					mag := byte(rng.Intn(255) + 1)
					if p < cfg.k {
						data[p] ^= mag
					} else {
						parity[p-cfg.k] ^= mag
					}
				}
				res := c.Decode(data, parity)
				if res.Status != StatusCorrected || res.Corrected != nerr {
					t.Fatalf("k=%d np=%d nerr=%d trial=%d: got %+v", cfg.k, cfg.np, nerr, trial, res)
				}
				if !bytes.Equal(data, orig) || !bytes.Equal(parity, origP) {
					t.Fatalf("k=%d np=%d nerr=%d: wrong correction", cfg.k, cfg.np, nerr)
				}
			}
		}
	}
}

func TestBMDecoderBeyondTMostlyDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := MustNew(50, 4) // t = 2
	const trials = 3000
	falseClean := 0
	for trial := 0; trial < trials; trial++ {
		data := randData(rng, 50)
		parity := make([]byte, 4)
		c.Encode(data, parity)
		orig := append([]byte(nil), data...)
		positions := rng.Perm(54)[:3]
		for _, p := range positions {
			mag := byte(rng.Intn(255) + 1)
			if p < 50 {
				data[p] ^= mag
			} else {
				parity[p-50] ^= mag
			}
		}
		res := c.Decode(data, parity)
		if res.Status == StatusClean {
			t.Fatalf("3 errors decoded as clean")
		}
		if res.Status == StatusCorrected && bytes.Equal(data, orig) {
			falseClean++
		}
	}
	if falseClean > 0 {
		t.Fatalf("%d trials silently restored original from >t errors", falseClean)
	}
}

func TestDecodeLengthMismatchPanics(t *testing.T) {
	c := MustNew(10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad length")
		}
	}()
	c.Decode(make([]byte, 9), make([]byte, 2))
}

func TestEncodeLengthMismatchPanics(t *testing.T) {
	c := MustNew(10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad length")
		}
	}()
	c.Encode(make([]byte, 10), make([]byte, 3))
}

func BenchmarkEncodeSSC83(b *testing.B) {
	c := MustNew(83, 2)
	data := make([]byte, 83)
	parity := make([]byte, 2)
	b.SetBytes(83)
	for i := 0; i < b.N; i++ {
		c.Encode(data, parity)
	}
}

func BenchmarkDecodeSSCClean(b *testing.B) {
	c := MustNew(83, 2)
	data := make([]byte, 83)
	parity := make([]byte, 2)
	c.Encode(data, parity)
	b.SetBytes(83)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decode(data, parity)
	}
}

func BenchmarkDecodeSSCOneError(b *testing.B) {
	c := MustNew(83, 2)
	data := make([]byte, 83)
	parity := make([]byte, 2)
	c.Encode(data, parity)
	b.SetBytes(83)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[i%83] ^= 0x5A
		c.Decode(data, parity)
	}
}

// Ablation: generic BM decoder on the same single-error workload, to justify
// the dedicated SSC fast path (DESIGN.md section 5).
func BenchmarkDecodeBMOneErrorT2(b *testing.B) {
	c := MustNew(83, 4)
	data := make([]byte, 83)
	parity := make([]byte, 4)
	c.Encode(data, parity)
	b.SetBytes(83)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[i%83] ^= 0x5A
		c.Decode(data, parity)
	}
}
