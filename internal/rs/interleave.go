package rs

import (
	"fmt"

	"repro/internal/gf256"
)

// Interleaved is a byte-interleaved bank of identical-strength shortened RS
// codes. CXL 3.0's flit FEC is Interleaved{total: 250, ways: 3, nparity: 2}:
// byte i of the protected region belongs to sub-block i mod 3, each
// sub-block carries 2 parity bytes, and the round-robin assignment continues
// uninterrupted across the parity field (wire byte total+x belongs to
// sub-block (total+x) mod ways). A burst of up to `ways` consecutive wire
// bytes — anywhere in the flit, including straddling the data/parity
// boundary — therefore touches at most one symbol per sub-block and is
// always correctable when each sub-block corrects a single symbol.
type Interleaved struct {
	total   int // protected data bytes
	ways    int
	nparity int // parity symbols per way
	codes   []*Code
	// parityWay[x] and parityIdx[x] map wire parity slot x to (way, symbol).
	parityWay []int
	parityIdx []int
	// scratch buffers reused across calls; an Interleaved is NOT safe for
	// concurrent use. Clone per goroutine.
	deint  [][]byte
	parity [][]byte
	synd   []byte
}

// NewInterleaved builds a ways-way interleaved bank protecting total data
// bytes with nparity parity symbols per way.
func NewInterleaved(total, ways, nparity int) (*Interleaved, error) {
	if total <= 0 || ways <= 0 || nparity <= 0 {
		return nil, fmt.Errorf("rs: invalid interleave geometry total=%d ways=%d nparity=%d", total, ways, nparity)
	}
	il := &Interleaved{total: total, ways: ways, nparity: nparity}
	for w := 0; w < ways; w++ {
		k := total / ways
		if w < total%ways {
			k++
		}
		if k == 0 {
			return nil, fmt.Errorf("rs: interleave way %d would be empty", w)
		}
		c, err := New(k, nparity)
		if err != nil {
			return nil, err
		}
		il.codes = append(il.codes, c)
		il.deint = append(il.deint, make([]byte, k))
		il.parity = append(il.parity, make([]byte, nparity))
	}
	il.synd = make([]byte, nparity)
	// Continue the data region's round-robin through the parity field so a
	// burst crossing the boundary still spreads across sub-blocks. Any run
	// of ways*nparity consecutive positions hits each residue class
	// exactly nparity times, so every way receives its full parity.
	seen := make([]int, ways)
	for x := 0; x < ways*nparity; x++ {
		w := (total + x) % ways
		il.parityWay = append(il.parityWay, w)
		il.parityIdx = append(il.parityIdx, seen[w])
		seen[w]++
	}
	return il, nil
}

// MustNewInterleaved is like NewInterleaved but panics on error.
func MustNewInterleaved(total, ways, nparity int) *Interleaved {
	il, err := NewInterleaved(total, ways, nparity)
	if err != nil {
		panic(err)
	}
	return il
}

// Clone returns an independent Interleaved with its own scratch buffers,
// sharing the immutable code definitions.
func (il *Interleaved) Clone() *Interleaved {
	c := &Interleaved{
		total: il.total, ways: il.ways, nparity: il.nparity, codes: il.codes,
		parityWay: il.parityWay, parityIdx: il.parityIdx,
	}
	for w := 0; w < il.ways; w++ {
		c.deint = append(c.deint, make([]byte, il.codes[w].DataLen()))
		c.parity = append(c.parity, make([]byte, il.nparity))
	}
	c.synd = make([]byte, il.nparity)
	return c
}

// DataLen returns the number of protected data bytes.
func (il *Interleaved) DataLen() int { return il.total }

// ParityLen returns the total number of parity bytes on the wire.
func (il *Interleaved) ParityLen() int { return il.ways * il.nparity }

// Ways returns the interleaving factor.
func (il *Interleaved) Ways() int { return il.ways }

// SubBlockLens returns the shortened codeword length of each way, e.g.
// [86 85 85] for the CXL flit FEC.
func (il *Interleaved) SubBlockLens() []int {
	out := make([]int, il.ways)
	for w, c := range il.codes {
		out[w] = c.CodewordLen()
	}
	return out
}

func (il *Interleaved) deinterleave(data []byte) {
	for w := range il.deint {
		for i := range il.deint[w] {
			il.deint[w][i] = data[i*il.ways+w]
		}
	}
}

func (il *Interleaved) reinterleave(data []byte) {
	for w := range il.deint {
		for i := range il.deint[w] {
			data[i*il.ways+w] = il.deint[w][i]
		}
	}
}

// Encode computes the interleaved parity for data (length DataLen) into
// parity (length ParityLen). The parity wire layout continues the data
// round-robin: parity slot x carries the next symbol of way (total+x)%ways.
func (il *Interleaved) Encode(data, parity []byte) {
	if len(data) != il.total {
		panic(fmt.Sprintf("rs: interleaved Encode data length %d, want %d", len(data), il.total))
	}
	if len(parity) != il.ParityLen() {
		panic(fmt.Sprintf("rs: interleaved Encode parity length %d, want %d", len(parity), il.ParityLen()))
	}
	il.deinterleave(data)
	for w, c := range il.codes {
		c.Encode(il.deint[w], il.parity[w])
	}
	for x := range parity {
		parity[x] = il.parity[il.parityWay[x]][il.parityIdx[x]]
	}
}

// Decode checks and corrects data and parity in place. The whole flit is
// uncorrectable as soon as any single way is uncorrectable; corrected counts
// accumulate across ways.
func (il *Interleaved) Decode(data, parity []byte) Result {
	if len(data) != il.total || len(parity) != il.ParityLen() {
		panic("rs: interleaved Decode length mismatch")
	}
	il.deinterleave(data)
	for x := range parity {
		il.parity[il.parityWay[x]][il.parityIdx[x]] = parity[x]
	}
	total := Result{Status: StatusClean}
	for w, c := range il.codes {
		res := c.DecodeScratch(il.deint[w], il.parity[w], il.synd)
		switch res.Status {
		case StatusUncorrectable:
			return Result{Status: StatusUncorrectable}
		case StatusCorrected:
			total.Status = StatusCorrected
			total.Corrected += res.Corrected
		}
	}
	if total.Status == StatusCorrected {
		il.reinterleave(data)
		for x := range parity {
			parity[x] = il.parity[il.parityWay[x]][il.parityIdx[x]]
		}
	}
	return total
}

// Verify reports whether data||parity is a valid interleaved codeword via
// syndromes only — no correction attempt, no mutation. See Code.Verify.
func (il *Interleaved) Verify(data, parity []byte) bool {
	if len(data) != il.total || len(parity) != il.ParityLen() {
		panic("rs: interleaved Verify length mismatch")
	}
	il.deinterleave(data)
	for x := range parity {
		il.parity[il.parityWay[x]][il.parityIdx[x]] = parity[x]
	}
	for w, c := range il.codes {
		if !c.Verify(il.deint[w], il.parity[w]) {
			return false
		}
	}
	return true
}

// VerifyReference is Verify on the byte-level reference syndrome loop of
// every way, bypassing the word-parallel kernel. Differential suites use it
// as the pinned slow path; simulation code should call Verify.
func (il *Interleaved) VerifyReference(data, parity []byte) bool {
	if len(data) != il.total || len(parity) != il.ParityLen() {
		panic("rs: interleaved Verify length mismatch")
	}
	il.deinterleave(data)
	for x := range parity {
		il.parity[il.parityWay[x]][il.parityIdx[x]] = parity[x]
	}
	for w, c := range il.codes {
		if !c.VerifyReference(il.deint[w], il.parity[w]) {
			return false
		}
	}
	return true
}

// VacantFraction returns the fraction of the mother-code position space that
// is vacant for way w — the source of the shortened code's detection power
// (~170/255 = 2/3 for the CXL sub-blocks).
func (il *Interleaved) VacantFraction(w int) float64 {
	return float64(gf256.Order-il.codes[w].CodewordLen()) / float64(gf256.Order)
}
