package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestInterleavedGeometryCXL(t *testing.T) {
	il := MustNewInterleaved(250, 3, 2)
	if il.DataLen() != 250 || il.ParityLen() != 6 || il.Ways() != 3 {
		t.Fatalf("geometry: data=%d parity=%d ways=%d", il.DataLen(), il.ParityLen(), il.Ways())
	}
	lens := il.SubBlockLens()
	// The paper's 85/85/86 sub-blocks (83/83/84 data + 2 parity each).
	counts := map[int]int{}
	for _, l := range lens {
		counts[l]++
	}
	if counts[85] != 2 || counts[86] != 1 {
		t.Fatalf("sub-block lengths %v, want two 85s and one 86", lens)
	}
}

func TestInterleavedValidation(t *testing.T) {
	if _, err := NewInterleaved(0, 3, 2); err == nil {
		t.Error("total=0 should fail")
	}
	if _, err := NewInterleaved(250, 0, 2); err == nil {
		t.Error("ways=0 should fail")
	}
	if _, err := NewInterleaved(250, 3, 0); err == nil {
		t.Error("nparity=0 should fail")
	}
	if _, err := NewInterleaved(2, 3, 2); err == nil {
		t.Error("empty way should fail")
	}
	// Oversized sub-block codeword.
	if _, err := NewInterleaved(900, 3, 2); err == nil {
		t.Error("sub-block over 255 should fail")
	}
}

func TestInterleavedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	il := MustNewInterleaved(250, 3, 2)
	for trial := 0; trial < 100; trial++ {
		data := randData(rng, 250)
		parity := make([]byte, 6)
		il.Encode(data, parity)
		res := il.Decode(data, parity)
		if res.Status != StatusClean {
			t.Fatalf("fresh interleaved codeword: %v", res.Status)
		}
	}
}

// TestInterleavedBurst3AlwaysCorrected verifies the headline FEC capability:
// any burst confined to 3 consecutive wire bytes is always corrected by the
// 3-way interleaved SSC (Section 2.5 / 6.4).
func TestInterleavedBurst3AlwaysCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	il := MustNewInterleaved(250, 3, 2)
	data := randData(rng, 250)
	parity := make([]byte, 6)
	il.Encode(data, parity)
	orig := append([]byte(nil), data...)
	origP := append([]byte(nil), parity...)

	wire := func() []byte { return append(append([]byte(nil), data...), parity...) }
	restore := func(w []byte) {
		copy(data, w[:250])
		copy(parity, w[250:])
	}

	for start := 0; start <= 256-3; start++ {
		for trial := 0; trial < 5; trial++ {
			w := wire()
			for i := 0; i < 3; i++ {
				w[start+i] ^= byte(rng.Intn(255) + 1)
			}
			restore(w)
			res := il.Decode(data, parity)
			if res.Status != StatusCorrected {
				t.Fatalf("burst at %d not corrected: %v", start, res.Status)
			}
			if !bytes.Equal(data, orig) || !bytes.Equal(parity, origP) {
				t.Fatalf("burst at %d: wrong correction", start)
			}
			copy(data, orig)
			copy(parity, origP)
		}
	}
}

// TestInterleavedBurstDetectionRates reproduces the paper's burst detection
// fractions (Section 2.5): 4-byte bursts detected ~2/3 of the time, 5-byte
// ~8/9, 6-byte ~26/27 — because an L-byte burst puts 2 symbol errors in
// (L-3) sub-blocks and all of them must miscorrect for the flit to escape.
func TestInterleavedBurstDetectionRates(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	il := MustNewInterleaved(250, 3, 2)

	cases := []struct {
		burst  int
		want   float64
		slack  float64
		trials int
	}{
		{4, 2.0 / 3.0, 0.04, 8000},
		{5, 8.0 / 9.0, 0.03, 8000},
		{6, 26.0 / 27.0, 0.02, 8000},
	}
	for _, tc := range cases {
		detected := 0
		for trial := 0; trial < tc.trials; trial++ {
			data := randData(rng, 250)
			parity := make([]byte, 6)
			il.Encode(data, parity)
			w := append(append([]byte(nil), data...), parity...)
			start := rng.Intn(256 - tc.burst)
			for i := 0; i < tc.burst; i++ {
				w[start+i] ^= byte(rng.Intn(255) + 1)
			}
			copy(data, w[:250])
			copy(parity, w[250:])
			if il.Decode(data, parity).Status == StatusUncorrectable {
				detected++
			}
		}
		rate := float64(detected) / float64(tc.trials)
		if rate < tc.want-tc.slack || rate > tc.want+tc.slack {
			t.Errorf("burst=%d: detection rate %.4f, want %.4f±%.2f", tc.burst, rate, tc.want, tc.slack)
		} else {
			t.Logf("burst=%d: detection rate %.4f (paper: %.4f)", tc.burst, rate, tc.want)
		}
	}
}

func TestInterleavedCloneIsIndependent(t *testing.T) {
	il := MustNewInterleaved(250, 3, 2)
	cl := il.Clone()
	rng := rand.New(rand.NewSource(13))
	data1 := randData(rng, 250)
	data2 := randData(rng, 250)
	p1 := make([]byte, 6)
	p2 := make([]byte, 6)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			il.Encode(data1, p1)
		}
		close(done)
	}()
	for i := 0; i < 200; i++ {
		cl.Encode(data2, p2)
	}
	<-done
	// Verify both results against fresh encoders.
	ref := MustNewInterleaved(250, 3, 2)
	want1 := make([]byte, 6)
	want2 := make([]byte, 6)
	ref.Encode(data1, want1)
	ref.Encode(data2, want2)
	if !bytes.Equal(p1, want1) || !bytes.Equal(p2, want2) {
		t.Fatal("concurrent clones interfered")
	}
}

func TestVacantFraction(t *testing.T) {
	il := MustNewInterleaved(250, 3, 2)
	for w := 0; w < 3; w++ {
		f := il.VacantFraction(w)
		if f < 0.66 || f > 0.67 {
			t.Errorf("way %d vacant fraction %.4f, want ~2/3", w, f)
		}
	}
}

func TestInterleavedLengthPanics(t *testing.T) {
	il := MustNewInterleaved(250, 3, 2)
	for _, fn := range []func(){
		func() { il.Encode(make([]byte, 249), make([]byte, 6)) },
		func() { il.Encode(make([]byte, 250), make([]byte, 5)) },
		func() { il.Decode(make([]byte, 249), make([]byte, 6)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMustNewInterleavedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewInterleaved with bad params did not panic")
		}
	}()
	MustNewInterleaved(0, 3, 2)
}

func BenchmarkInterleavedEncodeFlit(b *testing.B) {
	il := MustNewInterleaved(250, 3, 2)
	data := make([]byte, 250)
	parity := make([]byte, 6)
	b.SetBytes(250)
	for i := 0; i < b.N; i++ {
		il.Encode(data, parity)
	}
}

func BenchmarkInterleavedDecodeClean(b *testing.B) {
	il := MustNewInterleaved(250, 3, 2)
	data := make([]byte, 250)
	parity := make([]byte, 6)
	il.Encode(data, parity)
	b.SetBytes(250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		il.Decode(data, parity)
	}
}

func BenchmarkFECBurstDetection(b *testing.B) {
	// Experiment E14 harness: throughput of decode under 4-byte bursts.
	rng := rand.New(rand.NewSource(14))
	il := MustNewInterleaved(250, 3, 2)
	data := make([]byte, 250)
	parity := make([]byte, 6)
	il.Encode(data, parity)
	clean := append([]byte(nil), data...)
	cleanP := append([]byte(nil), parity...)
	b.SetBytes(250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, clean)
		copy(parity, cleanP)
		start := rng.Intn(246)
		for j := 0; j < 4; j++ {
			data[start+j] ^= 0xA5
		}
		il.Decode(data, parity)
	}
}
