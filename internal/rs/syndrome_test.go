package rs

import (
	"math/rand"
	"testing"
)

// geometries spans the kernel's dispatch regimes: the spec-fixed CXL
// sub-blocks (2 parity), odd/even data lengths, the BM-decoder ablation
// strengths, the widest packed bank (8 lanes), and one code past the lane
// limit that must fall back to the reference loop.
var geometries = []struct{ k, np int }{
	{84, 2}, {83, 2}, {1, 2}, {2, 2}, // SSC family incl. degenerate sizes
	{20, 3}, {40, 4}, {100, 6}, {50, 8}, // packed bank widths
	{30, 10}, // beyond synLanes: reference fallback
}

// corrupt XORs e random symbol errors into the codeword.
func corrupt(rng *rand.Rand, data, parity []byte, e int) {
	n := len(data) + len(parity)
	for i := 0; i < e; i++ {
		p := rng.Intn(n)
		m := byte(1 + rng.Intn(255))
		if p < len(data) {
			data[p] ^= m
		} else {
			parity[p-len(data)] ^= m
		}
	}
}

// TestSyndromesVectoredMatchesReference pins the word-parallel evaluator
// to the byte-level reference, lane by lane, across geometries, error
// weights (clean through far beyond t), and random words.
func TestSyndromesVectoredMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, g := range geometries {
		c := MustNew(g.k, g.np)
		data := make([]byte, g.k)
		parity := make([]byte, g.np)
		sv := make([]byte, g.np)
		sr := make([]byte, g.np)
		for trial := 0; trial < 200; trial++ {
			rng.Read(data)
			c.Encode(data, parity)
			corrupt(rng, data, parity, rng.Intn(g.np+2))
			zv := c.syndromes(data, parity, sv)
			zr := c.syndromesRef(data, parity, sr)
			if zv != zr {
				t.Fatalf("k=%d np=%d: allZero %v != ref %v", g.k, g.np, zv, zr)
			}
			for j := range sv {
				if sv[j] != sr[j] {
					t.Fatalf("k=%d np=%d: S_%d = %#x, ref %#x", g.k, g.np, j, sv[j], sr[j])
				}
			}
			if c.vec != nil {
				w := c.syndromeWord(data, parity)
				for j := 0; j < g.np; j++ {
					if byte(w>>(8*uint(j))) != sr[j] {
						t.Fatalf("k=%d np=%d: word lane %d = %#x, ref %#x",
							g.k, g.np, j, byte(w>>(8*uint(j))), sr[j])
					}
				}
			}
			if got, want := c.Verify(data, parity), c.VerifyReference(data, parity); got != want {
				t.Fatalf("k=%d np=%d: Verify %v != VerifyReference %v", g.k, g.np, got, want)
			}
		}
	}
}

// TestSynTabSharing: the advance tables are shared per nparity across
// codes, and codes past the packed lane count carry no bank.
func TestSynTabSharing(t *testing.T) {
	a := MustNew(84, 2)
	b := MustNew(10, 2)
	if a.vec == nil || a.vec != b.vec {
		t.Fatal("codes of equal nparity should share one synTab")
	}
	if MustNew(30, 10).vec != nil {
		t.Fatal("nparity > synLanes should have no packed bank")
	}
	if a.vec.np != 2 || a.vec.mask != 0x0101 {
		t.Fatalf("2-lane bank malformed: np=%d mask=%#x", a.vec.np, a.vec.mask)
	}
}

// TestVerifyAllocFree: the verify-skip entry points must not allocate on
// either path — they sit inside the Monte-Carlo inner loops.
func TestVerifyAllocFree(t *testing.T) {
	c := MustNew(84, 2)
	data := make([]byte, 84)
	parity := make([]byte, 2)
	c.Encode(data, parity)
	if n := testing.AllocsPerRun(100, func() { c.Verify(data, parity) }); n != 0 {
		t.Errorf("Verify allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { c.VerifyReference(data, parity) }); n != 0 {
		t.Errorf("VerifyReference allocates %v per run", n)
	}
	synd := make([]byte, 2)
	if n := testing.AllocsPerRun(100, func() { c.DecodeScratch(data, parity, synd) }); n != 0 {
		t.Errorf("DecodeScratch (clean) allocates %v per run", n)
	}
}

// FuzzVerifyDecode drives random error patterns (including weights beyond
// t) through both syndrome paths and the full decoder, asserting the
// vectored/reference verdicts agree and the decode outcome is
// self-consistent: a corrected word must re-verify clean on the reference
// loop, and corrections never exceed t. The CI kernel leg replays the
// committed corpus under both the default and purego builds.
func FuzzVerifyDecode(f *testing.F) {
	f.Add(uint8(84), uint8(2), []byte{}, []byte{})
	f.Add(uint8(84), uint8(2), []byte{1, 2, 3}, []byte{0, 1, 40, 2, 85, 3})
	f.Add(uint8(20), uint8(4), []byte{9, 9, 9, 9}, []byte{5, 7, 11, 13, 17, 19, 23, 29})
	f.Add(uint8(50), uint8(8), []byte{0xFF}, []byte{57, 0xAA})
	f.Fuzz(func(t *testing.T, kRaw, npRaw uint8, seed, errs []byte) {
		k := 1 + int(kRaw)%100
		np := 1 + int(npRaw)%8
		c, err := New(k, np)
		if err != nil {
			return
		}
		data := make([]byte, k)
		for i := range data {
			if len(seed) > 0 {
				data[i] = seed[i%len(seed)]
			}
		}
		parity := make([]byte, np)
		c.Encode(data, parity)
		// errs drives the injected pattern as (position, magnitude)
		// pairs — possibly far more than t of them.
		for i := 0; i+1 < len(errs); i += 2 {
			p := int(errs[i]) % (k + np)
			m := errs[i+1]
			if p < k {
				data[p] ^= m
			} else {
				parity[p-k] ^= m
			}
		}
		sv := make([]byte, np)
		sr := make([]byte, np)
		if zv, zr := c.syndromes(data, parity, sv), c.syndromesRef(data, parity, sr); zv != zr {
			t.Fatalf("allZero: vectored %v != ref %v", zv, zr)
		}
		for j := range sv {
			if sv[j] != sr[j] {
				t.Fatalf("S_%d: vectored %#x != ref %#x", j, sv[j], sr[j])
			}
		}
		if got, want := c.Verify(data, parity), c.VerifyReference(data, parity); got != want {
			t.Fatalf("Verify %v != VerifyReference %v", got, want)
		}
		res := c.Decode(data, parity)
		switch res.Status {
		case StatusClean:
			if !c.VerifyReference(data, parity) {
				t.Fatal("StatusClean but reference verify fails")
			}
		case StatusCorrected:
			if res.Corrected < 1 || res.Corrected > c.T() {
				t.Fatalf("corrected %d outside [1, t=%d]", res.Corrected, c.T())
			}
			if !c.VerifyReference(data, parity) {
				t.Fatal("StatusCorrected but corrected word is not a codeword")
			}
		case StatusUncorrectable:
			// Word must be left unusable-but-intact; nothing to assert
			// beyond not panicking.
		}
	})
}
