// Word-parallel syndrome evaluation: the vectored half of the coding
// kernel layer (the CRC half lives in internal/crc).
//
// All nparity syndromes are Horner evaluations of the same received word
// at the points α^0..α^(nparity-1). Packing the accumulators S_0..S_(np-1)
// into the byte lanes of one uint64 turns the per-byte inner step
//
//	S_j ← S_j·α^j ⊕ d        (for every j)
//
// into a handful of table lookups on the whole word: multiplying lane j by
// its fixed constant α^j is GF(2)-linear in the lane byte, so a 256-entry
// uint64 table per lane advances that lane and the results XOR together.
// Broadcasting the data byte into the active lanes is one integer multiply
// by the lane mask. The hot loop consumes two received bytes per
// iteration — the accumulator advance uses two-step tables (α^(2j)), the
// older data byte is pre-advanced one step through a shared lookup (g1),
// and the newer one is broadcast directly — so the loop-carried dependence
// is np parallel L1 loads per two bytes instead of 2·np serial
// exp/log-table multiplies.
//
// The byte-at-a-time loops in rs.go (syndromesRef) are kept verbatim as
// the reference this path is differentially pinned against; the purego
// build tag (and nparity > 8) falls back to them.
package rs

import (
	"sync"

	"repro/internal/gf256"
)

// synLanes is the widest bank the packed evaluator supports: eight
// syndrome lanes in one 64-bit word. Codes with more parity symbols use
// the byte-level reference.
const synLanes = 8

// synTab holds the per-lane advance tables for one nparity. Tables depend
// only on nparity (never on k), so they are shared process-wide across all
// codes of equal strength.
type synTab struct {
	np   int
	mask uint64 // byte 0x01 in each of the np low lanes
	// t1[j][b]: lane j advanced one Horner step, b·α^j, pre-shifted into
	// lane position. Used for odd tails and the final unpaired byte.
	t1 [][256]uint64
	// t2[j][b]: lane j advanced two steps, b·α^(2j), pre-shifted.
	t2 [][256]uint64
	// g1[b]: the data byte one step from the pair boundary, advanced one
	// step in every lane at once (XOR over j of t1[j][b]).
	g1 [256]uint64
}

var (
	synTabMu sync.Mutex
	synTabs  [synLanes + 1]*synTab
)

// synTabFor returns the shared advance tables for an nparity-lane bank,
// building them on first use. Returns nil when nparity exceeds synLanes.
func synTabFor(nparity int) *synTab {
	if nparity < 1 || nparity > synLanes {
		return nil
	}
	synTabMu.Lock()
	defer synTabMu.Unlock()
	if v := synTabs[nparity]; v != nil {
		return v
	}
	v := &synTab{
		np: nparity,
		t1: make([][256]uint64, nparity),
		t2: make([][256]uint64, nparity),
	}
	for j := 0; j < nparity; j++ {
		a1 := gf256.Exp(j)
		a2 := gf256.Mul(a1, a1)
		shift := 8 * uint(j)
		for b := 0; b < 256; b++ {
			v.t1[j][b] = uint64(gf256.Mul(byte(b), a1)) << shift
			v.t2[j][b] = uint64(gf256.Mul(byte(b), a2)) << shift
			v.g1[b] ^= v.t1[j][b]
		}
		v.mask |= 1 << shift
	}
	synTabs[nparity] = v
	return v
}

// syndromeWord evaluates all syndromes of data||parity packed into one
// uint64, lane j holding S_j. The word is zero exactly when the received
// word is a codeword. Requires c.vec != nil (nparity ≤ synLanes).
func (c *Code) syndromeWord(data, parity []byte) uint64 {
	if c.nparity == 2 {
		// The spec-fixed single-symbol-correct codes: a dedicated
		// two-lane loop keeps the table pointers in registers.
		acc := c.vec.horner2(0, data)
		return c.vec.horner2(acc, parity)
	}
	acc := c.vec.hornerN(0, data)
	return c.vec.hornerN(acc, parity)
}

// horner2 advances a two-lane accumulator across s.
func (v *synTab) horner2(acc uint64, s []byte) uint64 {
	t2a, t2b := &v.t2[0], &v.t2[1]
	g1 := &v.g1
	i := 0
	for ; i+1 < len(s); i += 2 {
		acc = t2a[byte(acc)] ^ t2b[byte(acc>>8)] ^
			g1[s[i]] ^ uint64(s[i+1])*0x0101
	}
	if i < len(s) {
		acc = v.t1[0][byte(acc)] ^ v.t1[1][byte(acc>>8)] ^
			uint64(s[i])*0x0101
	}
	return acc
}

// hornerN is the generic bank (3 ≤ np ≤ 8): same two-byte schedule, lane
// advance in a short loop.
func (v *synTab) hornerN(acc uint64, s []byte) uint64 {
	i := 0
	for ; i+1 < len(s); i += 2 {
		var next uint64
		for j := 0; j < v.np; j++ {
			next ^= v.t2[j][byte(acc>>(8*uint(j)))]
		}
		acc = next ^ v.g1[s[i]] ^ uint64(s[i+1])*v.mask
	}
	if i < len(s) {
		var next uint64
		for j := 0; j < v.np; j++ {
			next ^= v.t1[j][byte(acc>>(8*uint(j)))]
		}
		acc = next ^ uint64(s[i])*v.mask
	}
	return acc
}
