// Package rs implements shortened Reed-Solomon codes over GF(2^8) and the
// 3-way interleaved single-symbol-correct (SSC) FEC used by CXL 3.0 256-byte
// flits, as described in Section 2.5 of the paper.
//
// A Code with nparity parity symbols can correct up to nparity/2 symbol
// errors. CXL's flit FEC uses three independent codes with 2 parity symbols
// each (single symbol correction), interleaved byte-wise so that a burst of
// up to 3 consecutive wire bytes lands on at most one symbol per sub-block
// and is therefore always correctable.
//
// Because the codes are shortened (85/85/86-symbol codewords inside the
// 255-symbol mother code), a decoder that locates an "error" in one of the
// 170 (or 169) vacant positions knows the word is uncorrectable. This gives
// the shortened code its partial detection capability: roughly two thirds of
// uncorrectable sub-block errors are flagged rather than miscorrected, the
// property RXL leans on to let switches drop bad flits early.
package rs

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// Status reports the outcome of a decode attempt.
type Status int

const (
	// StatusClean means the received word was a valid codeword.
	StatusClean Status = iota
	// StatusCorrected means errors were found and corrected in place.
	StatusCorrected
	// StatusUncorrectable means the decoder detected an error pattern it
	// cannot correct (including corrections that would land in the vacant
	// positions of a shortened code). The data must be discarded.
	StatusUncorrectable
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusClean:
		return "clean"
	case StatusCorrected:
		return "corrected"
	case StatusUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result describes a decode outcome.
type Result struct {
	Status Status
	// Corrected is the number of symbol errors corrected (0 unless
	// Status == StatusCorrected).
	Corrected int
}

// Code is a shortened Reed-Solomon code over GF(2^8) with k data symbols and
// nparity parity symbols. The codeword length k+nparity must not exceed 255.
type Code struct {
	k       int    // data symbols
	nparity int    // parity symbols (2t)
	n       int    // codeword length k+nparity
	gen     []byte // generator polynomial, monic, highest degree first
	// vec is the shared word-parallel syndrome table bank (see
	// syndrome.go); nil when nparity exceeds the packed lane count.
	vec *synTab
}

// New constructs a shortened RS code with k data symbols and nparity parity
// symbols. The generator polynomial is g(x) = prod_{j=0}^{nparity-1}(x - a^j).
func New(k, nparity int) (*Code, error) {
	if k <= 0 {
		return nil, errors.New("rs: k must be positive")
	}
	if nparity <= 0 {
		return nil, errors.New("rs: nparity must be positive")
	}
	if k+nparity > gf256.Order {
		return nil, fmt.Errorf("rs: codeword length %d exceeds %d", k+nparity, gf256.Order)
	}
	gen := []byte{1}
	for j := 0; j < nparity; j++ {
		gen = gf256.PolyMul(gen, []byte{1, gf256.Exp(j)})
	}
	return &Code{k: k, nparity: nparity, n: k + nparity, gen: gen, vec: synTabFor(nparity)}, nil
}

// MustNew is like New but panics on error. Intended for package-level
// construction of spec-fixed codes.
func MustNew(k, nparity int) *Code {
	c, err := New(k, nparity)
	if err != nil {
		panic(err)
	}
	return c
}

// DataLen returns k, the number of data symbols per codeword.
func (c *Code) DataLen() int { return c.k }

// ParityLen returns the number of parity symbols per codeword.
func (c *Code) ParityLen() int { return c.nparity }

// CodewordLen returns the shortened codeword length k+nparity.
func (c *Code) CodewordLen() int { return c.n }

// T returns the symbol-error correction capability nparity/2.
func (c *Code) T() int { return c.nparity / 2 }

// Encode computes the parity symbols for data (length k) into parity
// (length nparity). It implements systematic encoding: parity is the
// remainder of data(x)*x^nparity divided by the generator polynomial, so the
// transmitted codeword is data followed by parity.
func (c *Code) Encode(data, parity []byte) {
	if len(data) != c.k {
		panic(fmt.Sprintf("rs: Encode data length %d, want %d", len(data), c.k))
	}
	if len(parity) != c.nparity {
		panic(fmt.Sprintf("rs: Encode parity length %d, want %d", len(parity), c.nparity))
	}
	for i := range parity {
		parity[i] = 0
	}
	// LFSR division: shift data through, feeding back by the generator's
	// lower coefficients (gen[0] is the monic leading 1).
	for _, d := range data {
		fb := d ^ parity[0]
		copy(parity, parity[1:])
		parity[c.nparity-1] = 0
		if fb != 0 {
			for j := 1; j < len(c.gen); j++ {
				parity[j-1] ^= gf256.Mul(c.gen[j], fb)
			}
		}
	}
}

// syndromes computes S_j = r(alpha^j) for j in [0, nparity) over the
// received word (data || parity). It returns the syndrome slice and whether
// all syndromes are zero.
//
// This is the dispatch point of the RS kernel layer: codes with at most
// synLanes parity symbols evaluate all syndromes word-parallel (see
// syndrome.go) unless built with -tags purego, which pins the byte-level
// reference below. Both paths are bit-identical by construction and the
// differential and fuzz suites hold them to it.
func (c *Code) syndromes(data, parity []byte, synd []byte) bool {
	if vectoredSyndromes && c.vec != nil {
		w := c.syndromeWord(data, parity)
		for j := 0; j < c.nparity; j++ {
			synd[j] = byte(w >> (8 * uint(j)))
		}
		return w == 0
	}
	return c.syndromesRef(data, parity, synd)
}

// syndromesRef is the byte-at-a-time Horner reference — the loop every
// vectored path is differentially pinned against. Kept verbatim from the
// pre-kernel implementation; do not "optimize" it.
func (c *Code) syndromesRef(data, parity []byte, synd []byte) bool {
	allZero := true
	for j := 0; j < c.nparity; j++ {
		x := gf256.Exp(j)
		var acc byte
		for _, d := range data {
			acc = gf256.Mul(acc, x) ^ d
		}
		for _, p := range parity {
			acc = gf256.Mul(acc, x) ^ p
		}
		synd[j] = acc
		if acc != 0 {
			allZero = false
		}
	}
	return allZero
}

// Decode checks and, if necessary, corrects the received word consisting of
// data (length k) and parity (length nparity), in place.
//
// The decoder honours the shortened-code detection rule: a computed error
// location outside the transmitted codeword corresponds to one of the
// zero-padded vacant positions and is reported as uncorrectable rather than
// "corrected" (Section 2.5).
func (c *Code) Decode(data, parity []byte) Result {
	synd := make([]byte, c.nparity)
	return c.DecodeScratch(data, parity, synd)
}

// DecodeScratch is Decode with a caller-provided syndrome scratch buffer
// (length >= nparity), so repeated decodes stay allocation-free.
func (c *Code) DecodeScratch(data, parity, synd []byte) Result {
	if len(data) != c.k || len(parity) != c.nparity {
		panic("rs: Decode length mismatch")
	}
	synd = synd[:c.nparity]
	if c.syndromes(data, parity, synd) {
		return Result{Status: StatusClean}
	}
	if c.nparity == 2 {
		return c.decodeSingle(data, parity, synd)
	}
	return c.decodeBM(data, parity, synd)
}

// Verify reports whether data||parity is a valid codeword, via syndromes
// only: no locator search, no correction, no mutation. It is the cheapest
// byte-level integrity answer the code can give — the slow-path
// counterpart of the clean-mark skip, and the tool differential tests use
// to prove a claimed-clean image really is a codeword.
func (c *Code) Verify(data, parity []byte) bool {
	if len(data) != c.k || len(parity) != c.nparity {
		panic("rs: Verify length mismatch")
	}
	if vectoredSyndromes && c.vec != nil {
		// The packed word is zero exactly when every syndrome is; no
		// unpacking, no scratch.
		return c.syndromeWord(data, parity) == 0
	}
	var buf [8]byte
	synd := buf[:]
	if c.nparity > len(buf) {
		synd = make([]byte, c.nparity)
	}
	return c.syndromesRef(data, parity, synd[:c.nparity])
}

// VerifyReference is Verify on the byte-at-a-time reference loop,
// regardless of build tags or CPU features — the pinned baseline for the
// differential suites and the kernel benchmarks. Simulation code should
// call Verify.
func (c *Code) VerifyReference(data, parity []byte) bool {
	if len(data) != c.k || len(parity) != c.nparity {
		panic("rs: Verify length mismatch")
	}
	var buf [8]byte
	synd := buf[:]
	if c.nparity > len(buf) {
		synd = make([]byte, c.nparity)
	}
	return c.syndromesRef(data, parity, synd[:c.nparity])
}

// decodeSingle is the fast path for the 2-parity single-symbol-correct codes
// used by the CXL flit FEC. With syndromes S0 = e and S1 = e*alpha^p for a
// single error of magnitude e at polynomial position p, the position is
// log(S1/S0) and the magnitude is S0 directly.
func (c *Code) decodeSingle(data, parity []byte, synd []byte) Result {
	s0, s1 := synd[0], synd[1]
	if s0 == 0 || s1 == 0 {
		// A single symbol error always yields two nonzero syndromes;
		// one zero syndrome proves at least two errors.
		return Result{Status: StatusUncorrectable}
	}
	p := gf256.Log(s1) - gf256.Log(s0)
	if p < 0 {
		p += gf256.Order
	}
	if p >= c.n {
		// The "error" falls in a vacant (zero-padded) position of the
		// shortened code: detected uncorrectable.
		return Result{Status: StatusUncorrectable}
	}
	c.applyCorrection(data, parity, p, s0)
	return Result{Status: StatusCorrected, Corrected: 1}
}

// applyCorrection XORs magnitude into the codeword coefficient of x^p.
// Positions [0, nparity) address parity (lowest degrees); positions
// [nparity, n) address data, with data[0] the highest-degree coefficient.
func (c *Code) applyCorrection(data, parity []byte, p int, magnitude byte) {
	if p < c.nparity {
		parity[c.nparity-1-p] ^= magnitude
	} else {
		data[c.k-1-(p-c.nparity)] ^= magnitude
	}
}

// decodeBM is the general decoder (Berlekamp-Massey + Chien search + Forney
// algorithm) for codes with more than 2 parity symbols. It is used by the
// ablation benchmarks comparing stronger per-sub-block FEC configurations.
func (c *Code) decodeBM(data, parity []byte, synd []byte) Result {
	t := c.nparity / 2

	// Berlekamp-Massey: find the error locator polynomial sigma
	// (lowest-degree coefficient first, sigma[0] == 1).
	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	var b byte = 1
	for i := 0; i < c.nparity; i++ {
		var delta byte = synd[i]
		for j := 1; j <= l; j++ {
			if j < len(sigma) && i-j >= 0 {
				delta ^= gf256.Mul(sigma[j], synd[i-j])
			}
		}
		if delta == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := append([]byte(nil), sigma...)
			coef := gf256.Div(delta, b)
			sigma = polyAddShift(sigma, prev, coef, m)
			prev = tmp
			l = i + 1 - l
			b = delta
			m = 1
		} else {
			coef := gf256.Div(delta, b)
			sigma = polyAddShift(sigma, prev, coef, m)
			m++
		}
	}
	if l > t {
		return Result{Status: StatusUncorrectable}
	}

	// Chien search over the full 255-position mother codeword. Roots that
	// map to positions >= n fall in the vacant region: uncorrectable.
	var positions []int
	for p := 0; p < gf256.Order; p++ {
		// sigma(alpha^{-p}) == 0 <=> error at position p.
		x := gf256.Exp(-p)
		var acc byte
		for j := len(sigma) - 1; j >= 0; j-- {
			acc = gf256.Mul(acc, x) ^ sigma[j]
		}
		if acc == 0 {
			if p >= c.n {
				return Result{Status: StatusUncorrectable}
			}
			positions = append(positions, p)
		}
	}
	if len(positions) != l {
		// Locator degree does not match root count: >t errors.
		return Result{Status: StatusUncorrectable}
	}

	// Forney: Omega(x) = S(x) * sigma(x) mod x^nparity (lowest first).
	omega := make([]byte, c.nparity)
	for i := 0; i < c.nparity; i++ {
		for j := 0; j < len(sigma) && j <= i; j++ {
			omega[i] ^= gf256.Mul(synd[i-j], sigma[j])
		}
	}
	// sigma'(x): formal derivative; over GF(2^8) even-power terms vanish.
	for _, p := range positions {
		xInv := gf256.Exp(-p)
		var om byte
		for i := len(omega) - 1; i >= 0; i-- {
			om = gf256.Mul(om, xInv) ^ omega[i]
		}
		var sp byte
		for j := 1; j < len(sigma); j += 2 {
			sp ^= gf256.Mul(sigma[j], gf256.Pow(xInv, j-1))
		}
		if sp == 0 {
			return Result{Status: StatusUncorrectable}
		}
		// b=0 convention: e_p = X_p * Omega(X_p^{-1}) / sigma'(X_p^{-1}).
		mag := gf256.Mul(gf256.Exp(p), gf256.Div(om, sp))
		if mag == 0 {
			return Result{Status: StatusUncorrectable}
		}
		c.applyCorrection(data, parity, p, mag)
	}

	// Safety recheck: corrected word must be a codeword.
	recheck := make([]byte, c.nparity)
	if !c.syndromes(data, parity, recheck) {
		return Result{Status: StatusUncorrectable}
	}
	return Result{Status: StatusCorrected, Corrected: len(positions)}
}

// polyAddShift returns a + coef * x^shift * b, with polynomials stored
// lowest-degree-first.
func polyAddShift(a, b []byte, coef byte, shift int) []byte {
	size := len(a)
	if len(b)+shift > size {
		size = len(b) + shift
	}
	out := make([]byte, size)
	copy(out, a)
	for i, bc := range b {
		out[i+shift] ^= gf256.Mul(bc, coef)
	}
	return out
}
