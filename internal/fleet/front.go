package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

// FrontConfig parameterizes a Front.
type FrontConfig struct {
	// Peers are the daemons' base URLs (e.g. "http://127.0.0.1:8081").
	Peers []string
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	// Must match the daemons' fetcher rings.
	VNodes int
	// HotThreshold is the decayed request count at which a key is
	// promoted to its replica set (0 = 32; < 0 disables promotion).
	HotThreshold int
	// HotReplicas is how many distinct owners a promoted key's requests
	// spread over (0 = 2; clamped to the fleet size).
	HotReplicas int
	// HotEpoch is the decay half-life of the hot tracker (0 = 10s).
	HotEpoch time.Duration
	// RetryDead is how long a peer that failed a forward is skipped
	// before being retried (0 = 3s).
	RetryDead time.Duration
}

// Front is the fleet router: a stateless http.Handler speaking the same
// /v1 surface as a daemon. Each submission is normalized, keyed, and
// forwarded to the key's ring owner — or, for hot keys, spread over the
// key's replica set — and job handles are forwarded to the daemon that
// issued them via an ID prefix ("p2~j000017-4c1ea3b0" lives on peer 2).
//
// The front holds no results and runs no engines; it can be restarted
// freely, and N fronts over the same peer list route identically
// (placement is a pure function of key and peer set).
type Front struct {
	cfg   FrontConfig
	ring  *Ring
	peers []*frontPeer // indexed by position in ring.Peers() order
	hot   *hotTracker
	mux   *http.ServeMux
	hc    *http.Client // raw forwards (GET/DELETE/events)
	start time.Time

	mu         sync.Mutex
	forwards   uint64
	failovers  uint64
	promotions uint64
}

// frontPeer is one routed-to daemon plus its passive health state.
type frontPeer struct {
	index  int
	url    string
	client *service.Client

	mu        sync.Mutex
	downUntil time.Time
	routed    uint64
	errors    uint64
}

// NewFront validates the configuration and builds the router.
func NewFront(cfg FrontConfig) (*Front, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = 32
	}
	if cfg.HotReplicas <= 0 {
		cfg.HotReplicas = 2
	}
	if n := len(ring.Peers()); cfg.HotReplicas > n {
		cfg.HotReplicas = n
	}
	if cfg.RetryDead <= 0 {
		cfg.RetryDead = 3 * time.Second
	}
	f := &Front{
		cfg:   cfg,
		ring:  ring,
		hot:   newHotTracker(cfg.HotEpoch, 0),
		hc:    &http.Client{},
		start: time.Now(),
	}
	for i, u := range ring.Peers() {
		f.peers = append(f.peers, &frontPeer{index: i, url: u, client: service.NewClient(u)})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", f.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", f.handleForward)
	mux.HandleFunc("DELETE /v1/jobs/{id}", f.handleForward)
	mux.HandleFunc("GET /v1/jobs/{id}/events", f.handleEvents)
	mux.HandleFunc("GET /v1/healthz", f.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", f.handleStatsz)
	f.mux = mux
	return f, nil
}

// ServeHTTP implements http.Handler.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mux.ServeHTTP(w, r)
}

// Ring exposes the routing ring.
func (f *Front) Ring() *Ring { return f.ring }

// peerByURL returns the frontPeer for a ring peer name.
func (f *Front) peerByURL(url string) *frontPeer {
	for _, p := range f.peers {
		if p.url == url {
			return p
		}
	}
	return nil
}

// up reports whether the peer is not currently marked down.
func (p *frontPeer) up(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return now.After(p.downUntil)
}

// markDown records a transport failure.
func (p *frontPeer) markDown(until time.Time) {
	p.mu.Lock()
	p.errors++
	p.downUntil = until
	p.mu.Unlock()
}

// markRouted records a successful forward (and clears down state).
func (p *frontPeer) markRouted() {
	p.mu.Lock()
	p.routed++
	p.downUntil = time.Time{}
	p.mu.Unlock()
}

// writeJSON mirrors the daemon's compact encoder: result documents are
// raw messages and must pass through byte-identically.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// handleSubmit routes a submission to its owner (or replica set).
func (f *Front) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec service.JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decode spec: " + err.Error()})
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	key := norm.Key()

	// Candidate order: the full ring ownership sequence, rotated for hot
	// keys so a promoted key's requests spread over its first
	// HotReplicas owners. Everything after the preferred target stays in
	// ring order — it is the failover sequence.
	now := time.Now()
	candidates := f.ring.Owners(key, len(f.peers))
	n := f.hot.bump(key, now)
	promoted := f.cfg.HotThreshold > 0 && n >= uint64(f.cfg.HotThreshold) && f.cfg.HotReplicas > 1
	if promoted {
		k := f.cfg.HotReplicas
		pick := int(n) % k
		candidates[0], candidates[pick] = candidates[pick], candidates[0]
		f.mu.Lock()
		f.promotions++
		f.mu.Unlock()
	}

	v, peer, err := f.forwardSubmit(r.Context(), candidates, norm, now)
	if err != nil {
		if code, ok := service.StatusCode(err); ok {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, code, apiError{Error: strings.TrimPrefix(err.Error(), "service: ")})
			return
		}
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: no reachable owner: " + err.Error()})
		return
	}
	v.ID = fmt.Sprintf("p%d~%s", peer.index, v.ID)
	status := http.StatusAccepted
	if v.Status.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

// forwardSubmit tries candidates in order, skipping peers marked down
// (unless every candidate is down — then it tries them all anyway: a
// wrong "down" mark must not black-hole traffic). Transport errors fail
// over to the next owner; daemon HTTP errors (400, 429, ...) are the
// daemon's answer and propagate immediately. Failover is safe precisely
// because results are location-independent: any owner computes the same
// bytes, so retrying elsewhere can change latency, never content.
func (f *Front) forwardSubmit(ctx context.Context, candidates []string, norm service.JobSpec, now time.Time) (service.JobView, *frontPeer, error) {
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for i, url := range candidates {
			p := f.peerByURL(url)
			if pass == 0 && !p.up(now) {
				continue
			}
			v, err := p.client.Submit(ctx, norm)
			if err == nil {
				p.markRouted()
				f.mu.Lock()
				f.forwards++
				if i > 0 {
					f.failovers++
				}
				f.mu.Unlock()
				return v, p, nil
			}
			if _, isHTTP := service.StatusCode(err); isHTTP {
				// The daemon answered; its answer stands.
				p.markRouted()
				return service.JobView{}, nil, err
			}
			p.markDown(now.Add(f.cfg.RetryDead))
			lastErr = err
			if ctx.Err() != nil {
				return service.JobView{}, nil, lastErr
			}
		}
		// Second pass only if the first skipped everything as down.
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no candidates")
	}
	return service.JobView{}, nil, lastErr
}

// resolveJobID splits a front job ID ("p2~j000017-...") into its peer
// and the daemon-local ID.
func (f *Front) resolveJobID(id string) (*frontPeer, string, bool) {
	prefix, rest, ok := strings.Cut(id, "~")
	if !ok || len(prefix) < 2 || prefix[0] != 'p' {
		return nil, "", false
	}
	idx, err := strconv.Atoi(prefix[1:])
	if err != nil || idx < 0 || idx >= len(f.peers) {
		return nil, "", false
	}
	return f.peers[idx], rest, true
}

// handleForward proxies GET/DELETE /v1/jobs/{id} to the issuing daemon,
// rewriting the job ID in the response and passing the query string
// (?wait=) and conditional headers through untouched.
func (f *Front) handleForward(w http.ResponseWriter, r *http.Request) {
	p, localID, ok := f.resolveJobID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job (fleet IDs look like p0~j000001-...)"})
		return
	}
	path := p.url + "/v1/jobs/" + localID
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, path, nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		p.markDown(time.Now().Add(f.cfg.RetryDead))
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: peer unreachable: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	p.markRouted()

	if et := resp.Header.Get("ETag"); et != "" {
		w.Header().Set("ETag", et)
	}
	if resp.StatusCode == http.StatusNotModified {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if resp.StatusCode >= 300 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: bad peer response: " + err.Error()})
		return
	}
	v.ID = fmt.Sprintf("p%d~%s", p.index, v.ID)
	writeJSON(w, resp.StatusCode, v)
}

// handleEvents streams a job's SSE feed through from the issuing
// daemon. Event payloads carry no job IDs, so the bytes pass through
// verbatim, flushed as they arrive.
func (f *Front) handleEvents(w http.ResponseWriter, r *http.Request) {
	p, localID, ok := f.resolveJobID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.url+"/v1/jobs/"+localID+"/events", nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		p.markDown(time.Now().Add(f.cfg.RetryDead))
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: peer unreachable: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	p.markRouted()
	if resp.StatusCode != http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			flusher.Flush()
		}
		if err != nil {
			return
		}
	}
}

// FrontPeerHealth is one peer's entry in the front's /v1/healthz.
type FrontPeerHealth struct {
	URL string `json:"url"`
	// Up is passive state: true unless a recent forward failed at the
	// transport level. The front probes nothing in the background.
	Up bool `json:"up"`
}

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	peers := make([]FrontPeerHealth, len(f.peers))
	anyUp := false
	for i, p := range f.peers {
		up := p.up(now)
		peers[i] = FrontPeerHealth{URL: p.url, Up: up}
		anyUp = anyUp || up
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        anyUp,
		"role":      "front",
		"uptime_ms": time.Since(f.start).Milliseconds(),
		"peers":     peers,
	})
}

// FrontPeerStats is one peer's routing counters.
type FrontPeerStats struct {
	URL    string `json:"url"`
	Up     bool   `json:"up"`
	Routed uint64 `json:"routed"`
	Errors uint64 `json:"errors"`
}

// FrontStats is the front's /v1/statsz document.
type FrontStats struct {
	Role          string           `json:"role"`
	UptimeMS      int64            `json:"uptime_ms"`
	RingSize      int              `json:"ring_size"`
	VNodes        int              `json:"vnodes"`
	HotThreshold  int              `json:"hot_threshold"`
	HotReplicas   int              `json:"hot_replicas"`
	HotTracked    int              `json:"hot_tracked"`
	HotPromotions uint64           `json:"hot_promotions"`
	Forwards      uint64           `json:"forwards"`
	Failovers     uint64           `json:"failovers"`
	Peers         []FrontPeerStats `json:"peers"`
}

// Stats snapshots the front.
func (f *Front) Stats() FrontStats {
	now := time.Now()
	st := FrontStats{
		Role:         "front",
		UptimeMS:     time.Since(f.start).Milliseconds(),
		RingSize:     f.ring.Size(),
		VNodes:       f.ring.VNodes(),
		HotThreshold: f.cfg.HotThreshold,
		HotReplicas:  f.cfg.HotReplicas,
		HotTracked:   f.hot.size(),
	}
	f.mu.Lock()
	st.HotPromotions = f.promotions
	st.Forwards = f.forwards
	st.Failovers = f.failovers
	f.mu.Unlock()
	for _, p := range f.peers {
		p.mu.Lock()
		st.Peers = append(st.Peers, FrontPeerStats{
			URL:    p.url,
			Up:     now.After(p.downUntil),
			Routed: p.routed,
			Errors: p.errors,
		})
		p.mu.Unlock()
	}
	return st
}

func (f *Front) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Stats())
}
