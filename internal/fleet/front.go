package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// FrontConfig parameterizes a Front.
type FrontConfig struct {
	// Peers are the daemons' base URLs (e.g. "http://127.0.0.1:8081").
	Peers []string
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	// Must match the daemons' fetcher rings.
	VNodes int
	// HotThreshold is the decayed request count at which a key is
	// promoted to its replica set (0 = 32; < 0 disables promotion).
	HotThreshold int
	// HotReplicas is how many distinct owners a promoted key's requests
	// spread over (0 = 2; clamped to the fleet size).
	HotReplicas int
	// HotEpoch is the decay half-life of the hot tracker (0 = 10s).
	HotEpoch time.Duration
	// RetryDead is how long a peer that failed a forward is skipped
	// before being retried (0 = 3s).
	RetryDead time.Duration
	// ProbeInterval is the active health-probe period: the front probes
	// every peer's /v1/healthz in the background and routes around peers
	// whose probes fail, independent of forward traffic (0 = 2s; < 0
	// disables probing, leaving only the passive down-marks).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0 = 1s).
	ProbeTimeout time.Duration
}

// Front is the fleet router: a stateless http.Handler speaking the same
// /v1 surface as a daemon. Each submission is normalized, keyed, and
// forwarded to the key's ring owner — or, for hot keys, spread over the
// key's replica set — and job handles are forwarded to the daemon that
// issued them via an ID prefix ("p2~j000017-4c1ea3b0" lives on peer 2).
//
// The front holds no results and runs no engines; it can be restarted
// freely, and N fronts over the same peer list route identically
// (placement is a pure function of key and peer set).
type Front struct {
	cfg   FrontConfig
	ring  *Ring
	peers []*frontPeer // indexed by position in ring.Peers() order
	hot   *hotTracker
	mux   *http.ServeMux
	hc    *http.Client // raw forwards (GET/DELETE/events)
	start time.Time

	metrics    *obs.Registry
	subSeconds map[string]*obs.Histogram // outcome label → submit latency
	tracer     *obs.Tracer

	stop      chan struct{}
	closeOnce sync.Once
	probeWG   sync.WaitGroup

	mu         sync.Mutex
	forwards   uint64
	failovers  uint64
	promotions uint64
}

// frontPeer is one routed-to daemon plus its health state: the passive
// down-mark forwards leave behind, and the active probe verdict the
// background health loop maintains.
type frontPeer struct {
	index  int
	url    string
	client *service.Client

	mu        sync.Mutex
	downUntil time.Time
	routed    uint64
	errors    uint64
	// Active probe state. probeChecked stays false until the first probe
	// completes, so a just-started front routes normally instead of
	// treating the whole fleet as unverified.
	probeChecked bool
	probeOK      bool
	probes       uint64
	probeFails   uint64
}

// NewFront validates the configuration and builds the router.
func NewFront(cfg FrontConfig) (*Front, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = 32
	}
	if cfg.HotReplicas <= 0 {
		cfg.HotReplicas = 2
	}
	if n := len(ring.Peers()); cfg.HotReplicas > n {
		cfg.HotReplicas = n
	}
	if cfg.RetryDead <= 0 {
		cfg.RetryDead = 3 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	f := &Front{
		cfg:    cfg,
		ring:   ring,
		hot:    newHotTracker(cfg.HotEpoch, 0),
		hc:     &http.Client{},
		start:  time.Now(),
		tracer: obs.NewTracer("front", "front"),
		stop:   make(chan struct{}),
	}
	for i, u := range ring.Peers() {
		f.peers = append(f.peers, &frontPeer{index: i, url: u, client: service.NewClient(u)})
	}
	f.wireMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", f.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", f.handleForward)
	mux.HandleFunc("DELETE /v1/jobs/{id}", f.handleForward)
	mux.HandleFunc("GET /v1/jobs/{id}/events", f.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", f.handleJobTrace)
	mux.HandleFunc("GET /v1/trace/{rid}", f.handleTrace)
	mux.HandleFunc("GET /v1/healthz", f.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", f.handleStatsz)
	mux.Handle("GET /metrics", f.metrics.Handler())
	f.mux = mux

	if cfg.ProbeInterval > 0 {
		f.probeWG.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// ServeHTTP implements http.Handler. Like the daemon, the front stamps
// every request with a propagated-or-fresh request ID, so the spans it
// records (forwarding decisions, failovers) and the spans the owner and
// peers record all land under the one ID the client saw.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := r.Header.Get(obs.HeaderRequestID)
	if rid == "" {
		rid = obs.NewRequestID()
	}
	w.Header().Set(obs.HeaderRequestID, rid)
	r = r.WithContext(obs.WithTrace(r.Context(), f.tracer, rid))
	f.mux.ServeHTTP(w, r)
}

// Close stops the background health prober. Safe to call more than once;
// a front is otherwise stateless and needs no other teardown.
func (f *Front) Close() {
	f.closeOnce.Do(func() { close(f.stop) })
	f.probeWG.Wait()
}

// probeLoop actively probes every peer's /v1/healthz on the configured
// interval — once immediately at start, so a front never routes blind
// longer than one probe round. Active probing is the primary health
// signal: it finds dead peers with no forward traffic to trip the
// passive marks, and it revives wrongly-marked peers the moment they
// answer, instead of after RetryDead expires.
func (f *Front) probeLoop() {
	defer f.probeWG.Done()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		f.probeAll()
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
	}
}

// probeAll probes peers concurrently so one hung peer cannot starve the
// round past its own timeout.
func (f *Front) probeAll() {
	var wg sync.WaitGroup
	for _, p := range f.peers {
		wg.Add(1)
		go func(p *frontPeer) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
			err := p.client.Health(ctx)
			cancel()
			p.mu.Lock()
			p.probeChecked = true
			p.probeOK = err == nil
			p.probes++
			if err != nil {
				p.probeFails++
			} else {
				// A live answer overrides any passive down-mark.
				p.downUntil = time.Time{}
			}
			p.mu.Unlock()
		}(p)
	}
	wg.Wait()
}

// Ring exposes the routing ring.
func (f *Front) Ring() *Ring { return f.ring }

// peerByURL returns the frontPeer for a ring peer name.
func (f *Front) peerByURL(url string) *frontPeer {
	for _, p := range f.peers {
		if p.url == url {
			return p
		}
	}
	return nil
}

// up reports whether the peer is routable: its last active probe (once
// one has run) must have succeeded, and no passive down-mark may be
// live. The probe verdict is primary — a peer failing probes is down
// even with no forward traffic — and the passive mark is the fast path
// that reacts to a failed forward before the next probe round.
func (p *frontPeer) up(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.upLocked(now)
}

func (p *frontPeer) upLocked(now time.Time) bool {
	if p.probeChecked && !p.probeOK {
		return false
	}
	return now.After(p.downUntil)
}

// markDown records a transport failure.
func (p *frontPeer) markDown(until time.Time) {
	p.mu.Lock()
	p.errors++
	p.downUntil = until
	p.mu.Unlock()
}

// markRouted records a successful forward (and clears down state).
func (p *frontPeer) markRouted() {
	p.mu.Lock()
	p.routed++
	p.downUntil = time.Time{}
	p.mu.Unlock()
}

// writeJSON mirrors the daemon's compact encoder: result documents are
// raw messages and must pass through byte-identically.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// handleSubmit routes a submission to its owner (or replica set).
func (f *Front) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec service.JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decode spec: " + err.Error()})
		return
	}
	norm, err := spec.Normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	key := norm.Key()

	// Candidate order: the full ring ownership sequence, rotated for hot
	// keys so a promoted key's requests spread over its first
	// HotReplicas owners. Everything after the preferred target stays in
	// ring order — it is the failover sequence.
	now := time.Now()
	candidates := f.ring.Owners(key, len(f.peers))
	n := f.hot.bump(key, now)
	promoted := f.cfg.HotThreshold > 0 && n >= uint64(f.cfg.HotThreshold) && f.cfg.HotReplicas > 1
	if promoted {
		k := f.cfg.HotReplicas
		pick := int(n) % k
		candidates[0], candidates[pick] = candidates[pick], candidates[0]
		f.mu.Lock()
		f.promotions++
		f.mu.Unlock()
		obs.Record(r.Context(), "hot_promote", now, map[string]string{
			"key": key[:8], "target": candidates[0],
		})
	}

	v, peer, err := f.forwardSubmit(r.Context(), candidates, norm, now)
	if err != nil {
		f.subSeconds[outcomeError].Observe(time.Since(now).Seconds())
		if code, ok := service.StatusCode(err); ok {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, code, apiError{Error: strings.TrimPrefix(err.Error(), "service: ")})
			return
		}
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: no reachable owner: " + err.Error()})
		return
	}
	f.subSeconds[submitOutcome(v)].Observe(time.Since(now).Seconds())
	v.ID = fmt.Sprintf("p%d~%s", peer.index, v.ID)
	status := http.StatusAccepted
	if v.Status.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

// submitOutcome classifies a forwarded submit's response for the front's
// latency histogram: where the owner got (or will get) the bytes.
func submitOutcome(v service.JobView) string {
	switch {
	case v.Status == service.StatusFailed || v.Status == service.StatusCanceled:
		return outcomeError
	case v.Cached:
		return outcomeHit
	case v.PeerFetched:
		return outcomePeerFetched
	case v.Dedup:
		return outcomeInflightJoin
	default:
		// Accepted and still running: the submit itself was a miss at
		// forward time (terminal outcome lands on the owner's histogram).
		return outcomeMiss
	}
}

// forwardSubmit tries candidates in order, skipping peers marked down
// (unless every candidate is down — then it tries them all anyway: a
// wrong "down" mark must not black-hole traffic). Transport errors fail
// over to the next owner; daemon HTTP errors (400, 429, ...) are the
// daemon's answer and propagate immediately. Failover is safe precisely
// because results are location-independent: any owner computes the same
// bytes, so retrying elsewhere can change latency, never content.
func (f *Front) forwardSubmit(ctx context.Context, candidates []string, norm service.JobSpec, now time.Time) (service.JobView, *frontPeer, error) {
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for i, url := range candidates {
			p := f.peerByURL(url)
			if pass == 0 && !p.up(now) {
				continue
			}
			attempt := time.Now()
			v, err := p.client.Submit(ctx, norm)
			if err == nil {
				obs.Record(ctx, "forward", attempt, map[string]string{
					"peer": url, "failover": strconv.FormatBool(i > 0),
				})
				p.markRouted()
				f.mu.Lock()
				f.forwards++
				if i > 0 {
					f.failovers++
				}
				f.mu.Unlock()
				return v, p, nil
			}
			if _, isHTTP := service.StatusCode(err); isHTTP {
				// The daemon answered; its answer stands.
				p.markRouted()
				return service.JobView{}, nil, err
			}
			obs.Record(ctx, "forward_failed", attempt, map[string]string{"peer": url})
			p.markDown(now.Add(f.cfg.RetryDead))
			lastErr = err
			if ctx.Err() != nil {
				return service.JobView{}, nil, lastErr
			}
		}
		// Second pass only if the first skipped everything as down.
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no candidates")
	}
	return service.JobView{}, nil, lastErr
}

// resolveJobID splits a front job ID ("p2~j000017-...") into its peer
// and the daemon-local ID.
func (f *Front) resolveJobID(id string) (*frontPeer, string, bool) {
	prefix, rest, ok := strings.Cut(id, "~")
	if !ok || len(prefix) < 2 || prefix[0] != 'p' {
		return nil, "", false
	}
	idx, err := strconv.Atoi(prefix[1:])
	if err != nil || idx < 0 || idx >= len(f.peers) {
		return nil, "", false
	}
	return f.peers[idx], rest, true
}

// handleForward proxies GET/DELETE /v1/jobs/{id} to the issuing daemon,
// rewriting the job ID in the response and passing the query string
// (?wait=) and conditional headers through untouched.
func (f *Front) handleForward(w http.ResponseWriter, r *http.Request) {
	p, localID, ok := f.resolveJobID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job (fleet IDs look like p0~j000001-...)"})
		return
	}
	path := p.url + "/v1/jobs/" + localID
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, path, nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		p.markDown(time.Now().Add(f.cfg.RetryDead))
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: peer unreachable: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	p.markRouted()

	if et := resp.Header.Get("ETag"); et != "" {
		w.Header().Set("ETag", et)
	}
	if resp.StatusCode == http.StatusNotModified {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if resp.StatusCode >= 300 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: bad peer response: " + err.Error()})
		return
	}
	v.ID = fmt.Sprintf("p%d~%s", p.index, v.ID)
	writeJSON(w, resp.StatusCode, v)
}

// handleEvents streams a job's SSE feed through from the issuing
// daemon. Event payloads carry no job IDs, so the bytes pass through
// verbatim, flushed as they arrive.
func (f *Front) handleEvents(w http.ResponseWriter, r *http.Request) {
	p, localID, ok := f.resolveJobID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.url+"/v1/jobs/"+localID+"/events", nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		p.markDown(time.Now().Add(f.cfg.RetryDead))
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: peer unreachable: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	p.markRouted()
	if resp.StatusCode != http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			flusher.Flush()
		}
		if err != nil {
			return
		}
	}
}

// FrontPeerHealth is one peer's entry in the front's /v1/healthz.
type FrontPeerHealth struct {
	URL string `json:"url"`
	// Up combines the active probe verdict (primary) with the passive
	// forward down-marks (fast path).
	Up bool `json:"up"`
	// Probed is false until the background prober has reached this peer
	// at least once (or probing is disabled); ProbeOK is meaningless
	// until then.
	Probed  bool `json:"probed"`
	ProbeOK bool `json:"probe_ok"`
}

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	peers := make([]FrontPeerHealth, len(f.peers))
	anyUp := false
	for i, p := range f.peers {
		p.mu.Lock()
		up := p.upLocked(now)
		peers[i] = FrontPeerHealth{URL: p.url, Up: up, Probed: p.probeChecked, ProbeOK: p.probeOK}
		p.mu.Unlock()
		anyUp = anyUp || up
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        anyUp,
		"role":      "front",
		"uptime_ms": time.Since(f.start).Milliseconds(),
		"peers":     peers,
	})
}

// FrontPeerStats is one peer's routing counters.
type FrontPeerStats struct {
	URL    string `json:"url"`
	Up     bool   `json:"up"`
	Routed uint64 `json:"routed"`
	Errors uint64 `json:"errors"`
	// Probes/ProbeFails count the background health probes sent to this
	// peer and how many failed.
	Probes     uint64 `json:"probes"`
	ProbeFails uint64 `json:"probe_fails"`
}

// FrontStats is the front's /v1/statsz document.
type FrontStats struct {
	Role          string           `json:"role"`
	UptimeMS      int64            `json:"uptime_ms"`
	RingSize      int              `json:"ring_size"`
	VNodes        int              `json:"vnodes"`
	HotThreshold  int              `json:"hot_threshold"`
	HotReplicas   int              `json:"hot_replicas"`
	HotTracked    int              `json:"hot_tracked"`
	HotPromotions uint64           `json:"hot_promotions"`
	Forwards      uint64           `json:"forwards"`
	Failovers     uint64           `json:"failovers"`
	Peers         []FrontPeerStats `json:"peers"`
}

// Stats snapshots the front.
func (f *Front) Stats() FrontStats {
	now := time.Now()
	st := FrontStats{
		Role:         "front",
		UptimeMS:     time.Since(f.start).Milliseconds(),
		RingSize:     f.ring.Size(),
		VNodes:       f.ring.VNodes(),
		HotThreshold: f.cfg.HotThreshold,
		HotReplicas:  f.cfg.HotReplicas,
		HotTracked:   f.hot.size(),
	}
	f.mu.Lock()
	st.HotPromotions = f.promotions
	st.Forwards = f.forwards
	st.Failovers = f.failovers
	f.mu.Unlock()
	for _, p := range f.peers {
		p.mu.Lock()
		st.Peers = append(st.Peers, FrontPeerStats{
			URL:        p.url,
			Up:         p.upLocked(now),
			Routed:     p.routed,
			Errors:     p.errors,
			Probes:     p.probes,
			ProbeFails: p.probeFails,
		})
		p.mu.Unlock()
	}
	return st
}

func (f *Front) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Stats())
}
