package fleet

import (
	"context"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// FetchConfig parameterizes a daemon's peer fetcher.
type FetchConfig struct {
	// Self is this daemon's own base URL as it appears in Peers; the
	// fetcher never asks itself.
	Self string
	// Peers is the full fleet membership (base URLs), self included.
	Peers []string
	// VNodes is the ring's virtual-node count per peer (0 =
	// DefaultVNodes). Every fleet member must agree on it.
	VNodes int
	// Candidates is how many distinct non-self owners to try before
	// giving up (0 = 2: the owner plus one fallback for when the owner
	// is down).
	Candidates int
	// Wait is the in-flight join budget per probe: how long a probe may
	// block on a peer that is computing the key right now (0 = 10s).
	// Probes of peers that neither hold nor are computing the key
	// return immediately regardless.
	Wait time.Duration
}

// Fetcher resolves cache misses from fleet peers: on a miss for a key
// this daemon does not own, ask the ring owner (then a fallback owner)
// for the bytes before computing locally. It is the value wired into
// service.Config.PeerFetch by cmd/rxld.
type Fetcher struct {
	ring    *Ring
	self    string
	cands   int
	wait    time.Duration
	clients map[string]*service.Client
}

// NewFetcher validates the configuration and builds the ring.
func NewFetcher(cfg FetchConfig) (*Fetcher, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = 2
	}
	if cfg.Wait <= 0 {
		cfg.Wait = 10 * time.Second
	}
	f := &Fetcher{
		ring:    ring,
		self:    cfg.Self,
		cands:   cfg.Candidates,
		wait:    cfg.Wait,
		clients: make(map[string]*service.Client, len(ring.peers)),
	}
	for _, p := range ring.Peers() {
		if p != cfg.Self {
			f.clients[p] = service.NewClient(p)
		}
	}
	return f, nil
}

// Fetch implements service.Config.PeerFetch. The decision table:
//
//   - Self owns the key: return immediately — the owner is the
//     authoritative computer of its keys; peers fill *from* it, so
//     probing them would mostly pay a round trip to hear "no".
//   - Otherwise: probe the owner, joining its in-flight computation if
//     one is running, then (owner down or empty) the next distinct
//     owner on the ring. Any bytes found are the answer — every daemon
//     computes identical bytes for a spec, so a fallback owner's copy
//     is the owner's copy.
//
// Errors are deliberately swallowed into ok=false: a dead peer must
// degrade to a local compute, never fail the job.
func (f *Fetcher) Fetch(ctx context.Context, key string) ([]byte, bool) {
	owners := f.ring.Owners(key, f.cands+1)
	if len(owners) > 0 && owners[0] == f.self {
		return nil, false
	}
	tried := 0
	for _, o := range owners {
		if o == f.self || tried >= f.cands {
			continue
		}
		tried++
		start := time.Now()
		b, ok, err := f.clients[o].FetchCached(ctx, key, f.wait)
		// The job's context carries the submitting request's trace (and
		// FetchCached forwards its ID), so each probe — and the serve it
		// triggers on the peer — lands in the request's fleet-wide trace.
		obs.Record(ctx, "peer_probe", start, map[string]string{
			"peer": o, "hit": strconv.FormatBool(err == nil && ok),
		})
		if err == nil && ok {
			return b, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
	}
	return nil, false
}

// Ring exposes the fetcher's ring (for statsz wiring and tests).
func (f *Fetcher) Ring() *Ring { return f.ring }

// Candidates returns the fetch candidate budget (statsz "replicas").
func (f *Fetcher) Candidates() int { return f.cands }
