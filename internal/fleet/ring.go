// Package fleet turns N independent rxld daemons into one logical
// service. The repository's cache key is already location-independent —
// the SHA-256 of a normalized job spec names the result bytes, not the
// machine that computed them — so distribution reduces to three pieces
// of wiring, all in this package:
//
//   - Ring (ring.go): an immutable consistent-hash ring mapping every
//     cache key to an owner daemon (and an ordered list of fallback
//     owners). Placement is a pure function of (key, peer set): every
//     front, every daemon, and every client-side router that builds a
//     ring over the same peer list computes the same owner with no
//     coordination, and adding or removing a peer moves only ~1/N of
//     the key space.
//
//   - Fetcher (fetch.go): daemon-side peer fetch. A daemon that misses
//     its local cache asks the key's owner for the bytes (joining the
//     owner's in-flight computation if one is running) before falling
//     back to computing locally. Replicas therefore fill from the owner
//     instead of re-running engines.
//
//   - Front (front.go): a stateless router speaking the same HTTP
//     surface as a daemon. It normalizes each submission, computes its
//     key, and forwards it to the ring owner — promoting keys that
//     repeat above a threshold to a replica set of K owners so hot
//     zipf-skewed traffic spreads across daemons.
//
// None of this wiring can change a result: every daemon computes
// byte-identical documents for a given spec (the runner's determinism
// contract), so routing, failover, and replication only decide which
// machine serves bytes that are fixed by the spec alone. See DESIGN.md
// §14 for the full argument.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per peer. 128 points per peer
// keeps the max/mean load imbalance under ~30% for small fleets while
// the ring stays a few KB.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over a set of peer names
// (base URLs, in this repository). Construct with NewRing; methods are
// safe for concurrent use.
type Ring struct {
	peers  []string // sorted, unique
	vnodes int
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the 64-bit hash circle
// claimed by a peer.
type ringPoint struct {
	hash uint64
	peer int32 // index into peers
}

// NewRing builds a ring with vnodes virtual nodes per peer (<= 0 selects
// DefaultVNodes). The peer list is deduplicated and sorted first, so
// placement depends only on the *set* of peers, never the order they
// were listed in a flag or config file.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("fleet: empty peer name")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one peer")
	}
	sort.Strings(uniq)

	r := &Ring{
		peers:  uniq,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for i, p := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(p, v), peer: int32(i)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions between distinct peers' points are vanishingly
		// rare but must still order deterministically.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// MustNewRing is NewRing panicking on error, for tests and examples.
func MustNewRing(peers []string, vnodes int) *Ring {
	r, err := NewRing(peers, vnodes)
	if err != nil {
		panic(err)
	}
	return r
}

// pointHash positions virtual node v of a peer on the circle: the first
// 8 bytes of SHA-256(peer || 0x00 || v). SHA-256 keeps point placement
// uniform regardless of how peer names are structured (URLs share long
// prefixes, which weaker multiplicative hashes cluster).
func pointHash(peer string, v int) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(v)))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// keyHash positions a cache key on the circle. Keys are already hex
// SHA-256 content addresses, but re-hashing costs nothing at serving
// rates and keeps the ring correct for any key shape.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the peer that owns key: the peer whose first virtual
// node clockwise of the key's hash position claims it.
func (r *Ring) Owner(key string) string {
	return r.peers[r.points[r.successor(keyHash(key))].peer]
}

// Owners returns up to n distinct peers in ownership order: the owner
// first, then each subsequent distinct peer walking clockwise. This is
// both the replica set of a hot key (first K entries) and the failover
// order when the owner is unreachable — every ring over the same peer
// set agrees on it.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.peers) {
		n = len(r.peers)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	i := r.successor(keyHash(key))
	for len(out) < n {
		p := r.points[i].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, r.peers[p])
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// successor returns the index of the first point at or clockwise of h.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Peers returns the sorted peer set.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// Size returns the number of virtual nodes on the ring (peers × vnodes)
// — the ring_size reported by /v1/statsz.
func (r *Ring) Size() int { return len(r.points) }

// VNodes returns the virtual-node count per peer.
func (r *Ring) VNodes() int { return r.vnodes }
