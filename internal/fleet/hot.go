package fleet

import (
	"sync"
	"time"
)

// hotTracker counts per-key request arrivals with periodic exponential
// decay, so "hot" means *recently* hot: a key that stops repeating
// halves toward zero every epoch and loses its promotion instead of
// pinning replicas forever. The map is bounded — when it overflows,
// entries below the running median are dropped (a key that cannot stay
// above the crowd is not hot).
type hotTracker struct {
	mu     sync.Mutex
	epoch  time.Duration
	limit  int
	last   time.Time
	counts map[string]uint64
}

func newHotTracker(epoch time.Duration, limit int) *hotTracker {
	if epoch <= 0 {
		epoch = 10 * time.Second
	}
	if limit <= 0 {
		limit = 8192
	}
	return &hotTracker{
		epoch:  epoch,
		limit:  limit,
		counts: make(map[string]uint64),
	}
}

// bump records one arrival for key and returns its decayed count, the
// number promotion thresholds compare against.
func (h *hotTracker) bump(key string, now time.Time) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.last.IsZero() {
		h.last = now
	}
	// Lazy decay: halve every elapsed epoch. The map is bounded, so the
	// sweep is O(limit) at worst and runs at most once per epoch.
	for now.Sub(h.last) >= h.epoch {
		h.last = h.last.Add(h.epoch)
		for k, c := range h.counts {
			if c >>= 1; c == 0 {
				delete(h.counts, k)
			} else {
				h.counts[k] = c
			}
		}
	}
	h.counts[key]++
	n := h.counts[key]
	if len(h.counts) > h.limit {
		h.evictColdLocked()
	}
	return n
}

// evictColdLocked halves the map by dropping the colder half: keys with
// counts at or below an approximate median leave first.
func (h *hotTracker) evictColdLocked() {
	// Approximate median by sampling is overkill at this size; a single
	// pass computing the mean is a good-enough pivot for "colder half".
	var sum uint64
	for _, c := range h.counts {
		sum += c
	}
	pivot := sum / uint64(len(h.counts))
	if pivot == 0 {
		pivot = 1
	}
	for k, c := range h.counts {
		if c <= pivot && len(h.counts) > h.limit/2 {
			delete(h.counts, k)
		}
	}
}

// size reports the tracked key count (statsz).
func (h *hotTracker) size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.counts)
}
