package fleet

import (
	"fmt"
	"testing"
)

// testKeys returns n distinct synthetic cache keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
	}
	return keys
}

// TestRingPlacementPure pins that ownership is a pure function of
// (key, peer set): rebuilding the ring — including from a shuffled,
// duplicated peer list — maps every key to the same owner.
func TestRingPlacementPure(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	shuffled := []string{"http://c:1", "http://a:1", "http://d:1", "http://b:1", "http://a:1"}

	r1 := MustNewRing(peers, 0)
	r2 := MustNewRing(shuffled, 0)
	r3 := MustNewRing(peers, 0)

	for _, k := range testKeys(5000) {
		o := r1.Owner(k)
		if got := r2.Owner(k); got != o {
			t.Fatalf("key %q: shuffled ring owner %q != %q", k, got, o)
		}
		if got := r3.Owner(k); got != o {
			t.Fatalf("key %q: rebuilt ring owner %q != %q", k, got, o)
		}
	}
	if r1.Size() != 4*DefaultVNodes {
		t.Fatalf("ring size %d, want %d", r1.Size(), 4*DefaultVNodes)
	}
	if len(r2.Peers()) != 4 {
		t.Fatalf("shuffled+duplicated peer list kept %d peers, want 4", len(r2.Peers()))
	}
}

// TestRingBalance asserts no peer's share of the key space strays far
// from fair: with 128 vnodes each of 5 peers must hold between half and
// double its fair share of 20k keys. Deterministic (fixed hash, fixed
// keys), so the bounds cannot flake.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://p0:8080", "http://p1:8080", "http://p2:8080", "http://p3:8080", "http://p4:8080"}
	r := MustNewRing(peers, 0)
	keys := testKeys(20000)

	load := make(map[string]int)
	for _, k := range keys {
		load[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(peers))
	for p, n := range load {
		if ratio := float64(n) / fair; ratio < 0.5 || ratio > 2.0 {
			t.Errorf("peer %s holds %d keys (%.2fx fair share %g)", p, n, ratio, fair)
		}
	}
	if len(load) != len(peers) {
		t.Errorf("only %d of %d peers own any keys", len(load), len(peers))
	}
}

// TestRingMinimalMovement pins the consistent-hashing contract: adding
// one peer to an N-peer ring reassigns roughly 1/(N+1) of the keys —
// and every key that moves, moves *to the new peer*. Removing the peer
// restores the original placement exactly.
func TestRingMinimalMovement(t *testing.T) {
	base := []string{"http://p0:1", "http://p1:1", "http://p2:1", "http://p3:1", "http://p4:1"}
	grown := append(append([]string{}, base...), "http://p5:1")
	keys := testKeys(20000)

	before := MustNewRing(base, 0)
	after := MustNewRing(grown, 0)

	moved := 0
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		moved++
		if oa != "http://p5:1" {
			t.Fatalf("key %q moved %q -> %q, not to the new peer", k, ob, oa)
		}
	}
	expect := float64(len(keys)) / float64(len(grown)) // 1/(N+1) of the space
	if f := float64(moved); f < 0.5*expect || f > 2.0*expect {
		t.Errorf("adding a peer moved %d keys, want within [%.0f, %.0f] (~1/(N+1) = %.0f)",
			moved, 0.5*expect, 2.0*expect, expect)
	}

	// Removal is the exact inverse: shrinking back must restore the
	// original owner for every key.
	shrunk := MustNewRing(grown[:len(base)], 0)
	for _, k := range keys {
		if shrunk.Owner(k) != before.Owner(k) {
			t.Fatalf("key %q: owner changed after add+remove round trip", k)
		}
	}
}

// TestRingOwners pins the replica-set contract: Owners returns distinct
// peers, the first is the owner, the order is stable across rebuilds,
// and requesting more owners than peers returns all peers.
func TestRingOwners(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := MustNewRing(peers, 0)

	for _, k := range testKeys(1000) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("key %q: got %d owners, want 2", k, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %q: Owners[0] %q != Owner %q", k, owners[0], r.Owner(k))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %q: duplicate peer in replica set", k)
		}
		all := r.Owners(k, 10)
		if len(all) != len(peers) {
			t.Fatalf("key %q: Owners(10) returned %d peers, want %d", k, len(all), len(peers))
		}
	}

	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(k, 0) = %v, want nil", got)
	}
}

// TestNewRingRejectsBadInput covers the error paths.
func TestNewRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://a:1", ""}, 0); err == nil {
		t.Error("empty peer name accepted")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := MustNewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}, 0)
	keys := testKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i&1023])
	}
}
