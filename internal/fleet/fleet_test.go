package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/runner"
	"repro/internal/service"
)

// gridSpec is the standard small job used across the fleet tests: a
// one-cell RXL grid that computes in tens of milliseconds.
func gridSpec(seed uint64) service.JobSpec {
	return service.JobSpec{
		Kind: service.KindGrid,
		Seed: seed,
		Grid: &core.Grid{
			Base: core.Config{Protocol: link.ProtocolRXL, Levels: 1, BER: 1e-5, BurstProb: 0.4, Seed: 7},
			N:    500,
		},
	}
}

// testFleet is N daemons with peer fetch wired among them plus a front.
type testFleet struct {
	servers []*service.Server
	urls    []string
	daemons []*httptest.Server
	front   *Front
	frontTS *httptest.Server
}

// startFleet boots n daemons and a front. Peer URLs are only known
// after the httptest listeners start, so each daemon's PeerFetch is a
// late-bound closure over a fetcher slot filled once all URLs exist —
// exactly the ordering cmd/rxld avoids by taking URLs from flags.
func startFleet(t *testing.T, n int, frontCfg FrontConfig) *testFleet {
	t.Helper()
	tf := &testFleet{}
	fetchers := make([]*Fetcher, n)
	infos := make([]*service.FleetInfo, n)
	for i := 0; i < n; i++ {
		i := i
		infos[i] = &service.FleetInfo{}
		srv, err := service.New(service.Config{
			ShardBudget: 4,
			PeerFetch: func(ctx context.Context, key string) ([]byte, bool) {
				if fetchers[i] == nil {
					return nil, false
				}
				return fetchers[i].Fetch(ctx, key)
			},
			FleetInfo: infos[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		tf.servers = append(tf.servers, srv)
		ts := httptest.NewServer(srv)
		tf.daemons = append(tf.daemons, ts)
		tf.urls = append(tf.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		f, err := NewFetcher(FetchConfig{Self: tf.urls[i], Peers: tf.urls, Wait: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		fetchers[i] = f
		*infos[i] = service.FleetInfo{
			Self:     tf.urls[i],
			Peers:    n,
			RingSize: f.Ring().Size(),
			Replicas: f.Candidates(),
		}
	}
	frontCfg.Peers = tf.urls
	front, err := NewFront(frontCfg)
	if err != nil {
		t.Fatal(err)
	}
	tf.front = front
	tf.frontTS = httptest.NewServer(front)
	t.Cleanup(func() {
		tf.front.Close()
		tf.frontTS.Close()
		for i, ts := range tf.daemons {
			ts.Close()
			tf.servers[i].Close()
		}
	})
	return tf
}

// directBytes computes the spec's result document the way a daemon
// would, straight on the library — the reference the fleet must match
// byte for byte.
func directBytes(t *testing.T, spec service.JobSpec) []byte {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunGrid(context.Background(), runner.Pool{Workers: 4, BaseSeed: norm.Seed}, *norm.Grid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetByteIdentity is the acceptance pin: a job submitted through
// the front returns bytes identical to the same spec on a standalone
// single daemon and to the direct library run.
func TestFleetByteIdentity(t *testing.T) {
	tf := startFleet(t, 3, FrontConfig{})
	ctx := context.Background()
	spec := gridSpec(11)

	fc := service.NewClient(tf.frontTS.URL)
	viaFront, err := fc.Run(ctx, spec)
	if err != nil {
		t.Fatalf("front run: %v", err)
	}

	standalone := service.MustNew(service.Config{ShardBudget: 4})
	defer standalone.Close()
	sts := httptest.NewServer(standalone)
	defer sts.Close()
	viaSingle, err := service.NewClient(sts.URL).Run(ctx, spec)
	if err != nil {
		t.Fatalf("single-daemon run: %v", err)
	}

	direct := directBytes(t, spec)
	if string(viaFront) != string(viaSingle) {
		t.Fatalf("front bytes != single-daemon bytes\nfront:  %.120s\nsingle: %.120s", viaFront, viaSingle)
	}
	if string(viaFront) != string(direct) {
		t.Fatalf("front bytes != direct library bytes\nfront:  %.120s\ndirect: %.120s", viaFront, direct)
	}

	// The repeat must be a cache hit at the same owner.
	v, err := fc.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached || v.Status != service.StatusDone {
		t.Fatalf("repeat through front: cached=%v status=%s, want cached hit", v.Cached, v.Status)
	}
	if string(v.Result) != string(direct) {
		t.Fatalf("cached repeat bytes differ from direct bytes")
	}
}

// TestFleetPeerFetch pins the peer-fetch protocol: after the owner has
// computed a key, submitting the same spec directly to every daemon
// serves identical bytes, with the non-owners marked peer_fetched — and
// the fleet computed the document exactly once.
func TestFleetPeerFetch(t *testing.T) {
	tf := startFleet(t, 3, FrontConfig{})
	ctx := context.Background()
	spec := gridSpec(23)
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key := norm.Key()
	owner := tf.front.Ring().Owner(key)

	// Compute once at the owner, via the front.
	ref, err := service.NewClient(tf.frontTS.URL).Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	computes, peerFetched := 0, 0
	for i, url := range tf.urls {
		v, err := service.NewClient(url).Submit(ctx, spec)
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		if !v.Status.Terminal() {
			if v, err = service.NewClient(url).Wait(ctx, v.ID); err != nil {
				t.Fatalf("daemon %d wait: %v", i, err)
			}
		}
		if v.Status != service.StatusDone {
			t.Fatalf("daemon %d: status %s (%s)", i, v.Status, v.Error)
		}
		if string(v.Result) != string(ref) {
			t.Fatalf("daemon %d bytes differ from reference", i)
		}
		switch {
		case v.PeerFetched:
			peerFetched++
			if url == owner {
				t.Fatalf("owner %s peer-fetched its own key", url)
			}
		case v.Cached:
			if url != owner {
				t.Fatalf("non-owner %s had a local cache hit before ever seeing the key", url)
			}
		default:
			computes++
		}
	}
	if computes != 0 {
		t.Fatalf("%d daemons recomputed a key the owner already held", computes)
	}
	if peerFetched != 2 {
		t.Fatalf("peer-fetched count %d, want 2 (both non-owners)", peerFetched)
	}

	// statsz accounting: the two non-owners report peer hits; someone
	// served the probes.
	var hits, served uint64
	for _, srv := range tf.servers {
		st := srv.Stats()
		if st.Fleet == nil {
			t.Fatal("fleet member missing fleet stats")
		}
		hits += st.Fleet.PeerHits
		served += st.Fleet.PeerServed
	}
	if hits != 2 || served < 2 {
		t.Fatalf("fleet stats: peer_hits=%d (want 2), peer_served=%d (want >= 2)", hits, served)
	}
}

// TestFrontHotPromotion drives one key past the promotion threshold and
// asserts its bytes end up replicated: at least HotReplicas daemons
// hold the key locally, and every response stayed byte-identical.
func TestFrontHotPromotion(t *testing.T) {
	tf := startFleet(t, 3, FrontConfig{HotThreshold: 3, HotReplicas: 2})
	ctx := context.Background()
	spec := gridSpec(31)
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key := norm.Key()

	fc := service.NewClient(tf.frontTS.URL)
	var ref []byte
	for i := 0; i < 12; i++ {
		res, err := fc.Run(ctx, spec)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if ref == nil {
			ref = res
		} else if string(res) != string(ref) {
			t.Fatalf("request %d bytes diverged under replication", i)
		}
	}

	holders := 0
	for _, url := range tf.urls {
		if _, ok, err := service.NewClient(url).FetchCached(ctx, key, 0); err == nil && ok {
			holders++
		}
	}
	if holders < 2 {
		t.Fatalf("hot key held by %d daemons, want >= 2 after promotion", holders)
	}
	st := tf.front.Stats()
	if st.HotPromotions == 0 {
		t.Fatal("front recorded no hot promotions")
	}
}

// TestFrontFailover kills a key's owner and asserts the front still
// serves the job — computed by the next owner on the ring, with
// identical bytes — and reports the dead peer.
func TestFrontFailover(t *testing.T) {
	tf := startFleet(t, 3, FrontConfig{})
	ctx := context.Background()

	// Find a spec owned by daemon 0 (vary the seed until placement
	// lands there), then kill daemon 0.
	var spec service.JobSpec
	found := false
	for seed := uint64(100); seed < 200; seed++ {
		s := gridSpec(seed)
		n, err := s.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if tf.front.Ring().Owner(n.Key()) == tf.urls[0] {
			spec, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("no test seed owned by daemon 0")
	}
	direct := directBytes(t, spec)
	tf.daemons[0].Close()

	res, err := service.NewClient(tf.frontTS.URL).Run(ctx, spec)
	if err != nil {
		t.Fatalf("run with dead owner: %v", err)
	}
	if string(res) != string(direct) {
		t.Fatal("failover changed result bytes")
	}
	st := tf.front.Stats()
	if st.Failovers == 0 {
		t.Fatal("front recorded no failover")
	}
	downSeen := false
	for _, p := range st.Peers {
		if p.URL == tf.urls[0] && !p.Up {
			downSeen = true
		}
	}
	if !downSeen {
		t.Fatal("dead peer not marked down in front stats")
	}
}

// TestFrontJobHandles pins the prefixed-ID protocol: GET/wait, events
// streaming, conditional GET, and the 404s for malformed handles.
func TestFrontJobHandles(t *testing.T) {
	tf := startFleet(t, 3, FrontConfig{})
	ctx := context.Background()
	fc := service.NewClient(tf.frontTS.URL)

	v, err := fc.Submit(ctx, gridSpec(41))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.ID[0] != 'p' {
		t.Fatalf("front job ID %q lacks a peer prefix", v.ID)
	}
	done, err := fc.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != service.StatusDone || done.ID != v.ID {
		t.Fatalf("wait through front: status=%s id=%q (submitted %q)", done.Status, done.ID, v.ID)
	}

	// SSE stream proxies through, replay included, ending in the result.
	var last service.Event
	if err := fc.Stream(ctx, v.ID, func(e service.Event) error { last = e; return nil }); err != nil {
		t.Fatalf("stream through front: %v", err)
	}
	if last.Type != "result" {
		t.Fatalf("stream ended on %q, want result", last.Type)
	}

	// Conditional GET: the front relays ETag/304 from the daemon.
	_, etag, notMod, err := fc.GetConditional(ctx, v.ID, "")
	if err != nil || notMod || etag == "" {
		t.Fatalf("first conditional get: etag=%q notMod=%v err=%v", etag, notMod, err)
	}
	_, _, notMod, err = fc.GetConditional(ctx, v.ID, etag)
	if err != nil || !notMod {
		t.Fatalf("revalidation: notMod=%v err=%v, want 304", notMod, err)
	}

	for _, bad := range []string{"nope", "p9~j000001-deadbeef", "px~j1", v.ID[1:]} {
		if _, err := fc.Get(ctx, bad); err == nil {
			t.Errorf("GET %q through front succeeded, want 404", bad)
		}
	}
}

// TestFetcherSkipsSelfOwnedKeys pins the fetcher decision table: when
// this daemon is the ring owner, Fetch returns immediately without any
// network traffic (the owner computes; peers fill from it).
func TestFetcherSkipsSelfOwnedKeys(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	f, err := NewFetcher(FetchConfig{Self: "http://a:1", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	// Clients point at unroutable names, so any network attempt would
	// error slowly; self-owned keys must return instantly false.
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("%064d", i)
		if f.Ring().Owner(key) != "http://a:1" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		if b, ok := f.Fetch(ctx, key); ok || b != nil {
			cancel()
			t.Fatalf("self-owned key %q fetched from a peer", key)
		}
		cancel()
		return
	}
	t.Fatal("no self-owned key found")
}
