package fleet

import (
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// Outcome labels for the front's submit-latency histogram. They mirror
// the daemon's rxld_request_seconds labels, with one difference: a
// forwarded miss is observed here at submit-accept time (the terminal
// latency lands on the owner's histogram), so the front's "miss" series
// measures routing cost, not compute cost.
const (
	outcomeHit          = "hit"
	outcomeMiss         = "miss"
	outcomePeerFetched  = "peer_fetched"
	outcomeInflightJoin = "inflight_join"
	outcomeError        = "error"
)

var submitOutcomes = []string{
	outcomeHit, outcomeMiss, outcomePeerFetched, outcomeInflightJoin, outcomeError,
}

// wireMetrics builds the front's /metrics registry. Same design as the
// daemon's: histograms are observed on the request path, everything the
// front already counts under a lock is sampled at scrape time.
func (f *Front) wireMetrics() {
	reg := obs.NewRegistry()
	f.metrics = reg

	f.subSeconds = make(map[string]*obs.Histogram, len(submitOutcomes))
	for _, oc := range submitOutcomes {
		f.subSeconds[oc] = reg.Histogram("rxlfront_submit_seconds",
			"Submit forwarding latency in seconds, by response outcome.",
			nil, "outcome", oc)
	}

	reg.GaugeFunc("rxlfront_uptime_seconds", "Seconds since front start.",
		func() float64 { return time.Since(f.start).Seconds() })
	reg.GaugeFunc("rxlfront_ring_size", "Virtual nodes on the routing ring.",
		func() float64 { return float64(f.ring.Size()) })
	reg.GaugeFunc("rxlfront_hot_tracked", "Keys currently tracked by the hot-key counter.",
		func() float64 { return float64(f.hot.size()) })

	locked := func(read func() uint64) func() float64 {
		return func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(read())
		}
	}
	reg.CounterFunc("rxlfront_forwards_total", "Submissions forwarded to an owner.",
		locked(func() uint64 { return f.forwards }))
	reg.CounterFunc("rxlfront_failovers_total", "Forwards that skipped at least one dead owner.",
		locked(func() uint64 { return f.failovers }))
	reg.CounterFunc("rxlfront_hot_promotions_total", "Submissions routed via a hot key's replica set.",
		locked(func() uint64 { return f.promotions }))

	// Per-peer health and traffic, labelled by the peer's base URL — the
	// series rxltop renders as the fleet map.
	for _, p := range f.peers {
		p := p
		peerRead := func(read func() float64) func() float64 {
			return func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				return read()
			}
		}
		reg.GaugeFunc("rxlfront_peer_up", "1 when the peer is routable (probe verdict AND passive marks).",
			func() float64 {
				if p.up(time.Now()) {
					return 1
				}
				return 0
			}, "peer", p.url)
		reg.GaugeFunc("rxlfront_peer_probe_ok", "1 when the peer's last active health probe succeeded.",
			peerRead(func() float64 {
				if p.probeOK {
					return 1
				}
				return 0
			}), "peer", p.url)
		reg.CounterFunc("rxlfront_peer_routed_total", "Successful forwards to the peer.",
			peerRead(func() float64 { return float64(p.routed) }), "peer", p.url)
		reg.CounterFunc("rxlfront_peer_errors_total", "Transport failures forwarding to the peer.",
			peerRead(func() float64 { return float64(p.errors) }), "peer", p.url)
		reg.CounterFunc("rxlfront_peer_probes_total", "Active health probes sent to the peer.",
			peerRead(func() float64 { return float64(p.probes) }), "peer", p.url)
		reg.CounterFunc("rxlfront_peer_probe_failures_total", "Active health probes the peer failed.",
			peerRead(func() float64 { return float64(p.probeFails) }), "peer", p.url)
	}

	reg.GaugeFunc("rxlfront_traces_live", "Request IDs with spans in the front's trace buffer.",
		func() float64 { return float64(f.tracer.Size()) })
}

// handleJobTrace assembles the cross-process trace of a fleet job: the
// owner's spans (which carry the request ID), the front's own spans, and
// whatever every other member recorded under that ID — the peer that
// served a cache fetch, a fallback owner that was probed. One traced
// hot-key miss therefore shows the full front → owner → peer path under
// a single propagated request ID.
func (f *Front) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	p, localID, ok := f.resolveJobID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job (fleet IDs look like p0~j000001-...)"})
		return
	}
	tv, err := p.client.JobTrace(r.Context(), localID)
	if err != nil {
		if code, ok := service.StatusCode(err); ok {
			writeJSON(w, code, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadGateway, apiError{Error: "fleet: peer unreachable: " + err.Error()})
		return
	}
	spans := f.assembleTrace(r, tv.RequestID, p)
	spans = append(tv.Spans, spans...)
	obs.SortSpans(spans)
	writeJSON(w, http.StatusOK, service.TraceView{
		RequestID: tv.RequestID,
		JobID:     r.PathValue("id"),
		Spans:     spans,
	})
}

// handleTrace is the request-ID-addressed variant: merge the front's and
// every member's spans for the ID, 404 when nobody recorded anything.
func (f *Front) handleTrace(w http.ResponseWriter, r *http.Request) {
	rid := r.PathValue("rid")
	spans := f.assembleTrace(r, rid, nil)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no trace for request id"})
		return
	}
	obs.SortSpans(spans)
	writeJSON(w, http.StatusOK, service.TraceView{RequestID: rid, Spans: spans})
}

// assembleTrace gathers the front's own spans for rid plus every
// member's (excluding skip, whose spans the caller already has). Peers
// without spans answer 404; unreachable peers are skipped — a trace is
// best-effort by nature.
func (f *Front) assembleTrace(r *http.Request, rid string, skip *frontPeer) []obs.Span {
	spans := f.tracer.Spans(rid)
	if rid == "" {
		return spans
	}
	for _, q := range f.peers {
		if q == skip {
			continue
		}
		qtv, err := q.client.TraceByRequestID(r.Context(), rid)
		if err == nil {
			spans = append(spans, qtv.Spans...)
		}
	}
	return spans
}
