package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// TestFleetTraceAssembly is the tracing acceptance pin: a traced hot-key
// miss that lands on a replica shows the whole fleet path — the front's
// forwarding span, the replica's lifecycle and peer-probe spans, and the
// owner's cache-serve span — merged under the one request ID the client
// sent.
func TestFleetTraceAssembly(t *testing.T) {
	tf := startFleet(t, 3, FrontConfig{HotThreshold: 2, HotReplicas: 2})
	ctx := context.Background()
	spec := gridSpec(53)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	fc := service.NewClient(tf.frontTS.URL)

	// Warm the owner so later replica-routed repeats peer-fetch.
	if _, err := fc.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}

	var traced service.JobView
	var rid string
	for i := 0; i < 20 && !traced.PeerFetched; i++ {
		rid = fmt.Sprintf("trace%011d", i)
		req, err := http.NewRequest(http.MethodPost, tf.frontTS.URL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(obs.HeaderRequestID, rid)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get(obs.HeaderRequestID); got != rid {
			t.Fatalf("front did not echo request id: got %q want %q", got, rid)
		}
		var v service.JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			resp.Body.Close()
			t.Fatal(err)
		}
		resp.Body.Close()
		if !v.Status.Terminal() {
			if v, err = fc.Wait(ctx, v.ID); err != nil {
				t.Fatal(err)
			}
		}
		traced = v
	}
	if !traced.PeerFetched {
		t.Fatal("no request was ever replica-routed into a peer fetch")
	}

	tv, err := fc.JobTrace(ctx, traced.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tv.RequestID != rid {
		t.Fatalf("assembled trace request id %q, want the propagated %q", tv.RequestID, rid)
	}
	services := map[string]bool{}
	names := map[string]bool{}
	for _, sp := range tv.Spans {
		services[sp.Service] = true
		names[sp.Name] = true
	}
	if !services["front"] || !services["daemon"] {
		t.Fatalf("trace services = %v, want spans from both front and daemons", services)
	}
	for _, want := range []string{"forward", "submit", "peer_fetch", "peer_probe", "peer_serve", "finish"} {
		if !names[want] {
			t.Errorf("fleet trace missing %s span (got %v)", want, names)
		}
	}
	if names["run"] {
		t.Error("peer-fetched job traced an engine run")
	}
	for i := 1; i < len(tv.Spans); i++ {
		if tv.Spans[i].StartUS < tv.Spans[i-1].StartUS {
			t.Fatal("assembled trace not sorted by start time")
		}
	}

	// The rid-addressed route assembles the same picture.
	byRID, err := fc.TraceByRequestID(ctx, rid)
	if err != nil {
		t.Fatal(err)
	}
	if len(byRID.Spans) != len(tv.Spans) {
		t.Fatalf("trace by rid has %d spans, job trace has %d", len(byRID.Spans), len(tv.Spans))
	}
}

// TestFrontActiveProbing pins the probe loop as the primary health
// signal: a peer that dies with zero forward traffic is marked down
// within a few probe rounds, and a peer wrongly passive-marked down is
// revived by its next successful probe instead of waiting out RetryDead.
func TestFrontActiveProbing(t *testing.T) {
	tf := startFleet(t, 2, FrontConfig{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  300 * time.Millisecond,
		RetryDead:     time.Hour, // passive marks alone would never recover in-test
	})

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s", desc)
	}
	peerStat := func(url string) FrontPeerStats {
		for _, p := range tf.front.Stats().Peers {
			if p.URL == url {
				return p
			}
		}
		t.Fatalf("peer %s missing from front stats", url)
		return FrontPeerStats{}
	}

	waitFor("first probe round", func() bool {
		a, b := peerStat(tf.urls[0]), peerStat(tf.urls[1])
		return a.Probes > 0 && b.Probes > 0 && a.Up && b.Up
	})

	// Kill member 0. No requests flow, so only the prober can notice.
	tf.daemons[0].Close()
	waitFor("probe to mark dead peer down", func() bool {
		p := peerStat(tf.urls[0])
		return !p.Up && p.ProbeFails > 0
	})
	if !peerStat(tf.urls[1]).Up {
		t.Fatal("live peer collaterally marked down")
	}

	// A stale passive mark on the live peer is erased by the next probe.
	p1 := tf.front.peerByURL(tf.urls[1])
	p1.markDown(time.Now().Add(time.Hour))
	waitFor("probe to revive wrongly-marked peer", func() bool {
		return p1.up(time.Now())
	})

	// The probe verdicts are exported for rxltop and Prometheus.
	resp, err := http.Get(tf.frontTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SumSamples(samples, "rxlfront_peer_up", "peer", tf.urls[0]); got != 0 {
		t.Errorf("rxlfront_peer_up for dead peer = %g, want 0", got)
	}
	if got := obs.SumSamples(samples, "rxlfront_peer_up", "peer", tf.urls[1]); got != 1 {
		t.Errorf("rxlfront_peer_up for live peer = %g, want 1", got)
	}
	if obs.SumSamples(samples, "rxlfront_peer_probe_failures_total", "peer", tf.urls[0]) == 0 {
		t.Error("probe failures not exported")
	}

	// Front healthz reports the probe verdicts too.
	hresp, err := http.Get(tf.frontTS.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Peers []FrontPeerHealth `json:"peers"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		hresp.Body.Close()
		t.Fatal(err)
	}
	hresp.Body.Close()
	for _, p := range health.Peers {
		if !p.Probed {
			t.Errorf("peer %s reported unprobed with probing active", p.URL)
		}
		if p.URL == tf.urls[0] && (p.Up || p.ProbeOK) {
			t.Errorf("dead peer %s reported up in healthz", p.URL)
		}
	}
}

// TestFrontMetricsFamilies pins the front's documented /metrics surface
// after real traffic: forwarding counters, the submit-latency histogram
// split by outcome, and a per-peer series for every ring member.
func TestFrontMetricsFamilies(t *testing.T) {
	tf := startFleet(t, 3, FrontConfig{})
	ctx := context.Background()
	fc := service.NewClient(tf.frontTS.URL)
	spec := gridSpec(61)
	if _, err := fc.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if v, err := fc.Submit(ctx, spec); err != nil || !v.Cached {
		t.Fatalf("repeat: cached=%v err=%v", v.Cached, err)
	}

	resp, err := http.Get(tf.frontTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.SumSamples(samples, "rxlfront_forwards_total"); got < 2 {
		t.Errorf("rxlfront_forwards_total = %g, want >= 2", got)
	}
	if got := obs.SumSamples(samples, "rxlfront_submit_seconds_count", "outcome", "hit"); got != 1 {
		t.Errorf("front hit-submit histogram count = %g, want 1", got)
	}
	if got := obs.SumSamples(samples, "rxlfront_submit_seconds_count"); got < 2 {
		t.Errorf("front submit histogram total = %g, want >= 2", got)
	}
	for _, u := range tf.urls {
		if got := obs.SumSamples(samples, "rxlfront_peer_routed_total", "peer", u); got < 0 {
			t.Errorf("missing per-peer series for %s", u)
		}
	}
}
