package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FlowRecord is one line of a replay trace: a (src,dst) node pair and the
// number of payloads offered on it.
type FlowRecord struct {
	Src, Dst int
	N        int
}

// Replay-trace size guards. Traces come from files (possibly attacker- or
// fuzzer-shaped), so the parser bounds everything it accumulates: records
// per trace, payloads per record, and bytes per line.
const (
	MaxReplayRecords = 1 << 16
	MaxReplayCount   = 1 << 20
	maxReplayLine    = 1 << 16
)

// ErrEmptyTrace is returned by ParseReplay for traces with no records.
var ErrEmptyTrace = errors.New("trace: replay trace has no records")

// ParseReplay reads a replay trace: one "src dst [count]" record per
// line, node IDs as decimal integers, count defaulting to 1. Blank lines
// and lines starting with '#' are ignored, as is a trailing '#' comment
// on a record line. Malformed input — non-integer fields, wrong field
// counts, negative IDs, non-positive counts, oversized traces — returns a
// descriptive error naming the offending line; the parser never panics.
//
// Interpretation of the node IDs (row-major grid position, arbitrary
// labels, …) is the caller's business: the parser only requires them
// non-negative, so one trace can replay onto any topology large enough
// to contain its IDs.
func ParseReplay(r io.Reader) ([]FlowRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256), maxReplayLine)
	var recs []FlowRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("trace: replay line %d: want \"src dst [count]\", got %d fields", lineNo, len(fields))
		}
		src, err := parseID(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: replay line %d: src: %v", lineNo, err)
		}
		dst, err := parseID(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: replay line %d: dst: %v", lineNo, err)
		}
		n := 1
		if len(fields) == 3 {
			n, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: replay line %d: count %q is not an integer", lineNo, fields[2])
			}
			if n <= 0 {
				return nil, fmt.Errorf("trace: replay line %d: count %d is not positive", lineNo, n)
			}
			if n > MaxReplayCount {
				return nil, fmt.Errorf("trace: replay line %d: count %d exceeds limit %d", lineNo, n, MaxReplayCount)
			}
		}
		recs = append(recs, FlowRecord{Src: src, Dst: dst, N: n})
		if len(recs) > MaxReplayRecords {
			return nil, fmt.Errorf("trace: replay trace exceeds %d records", MaxReplayRecords)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: replay line %d: %v", lineNo+1, err)
	}
	if len(recs) == 0 {
		return nil, ErrEmptyTrace
	}
	return recs, nil
}

// ParseReplayString parses an in-memory replay trace.
func ParseReplayString(s string) ([]FlowRecord, error) {
	return ParseReplay(strings.NewReader(s))
}

func parseID(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("node ID %q is not an integer", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("node ID %d is negative", v)
	}
	return v, nil
}
