package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestParseReplay(t *testing.T) {
	recs, err := ParseReplayString(`
# AI training shard: hot parameter server at node 0
1 0 40
2 0 40
3 0     # dominant reducer, default count
0 3 5
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []FlowRecord{{1, 0, 40}, {2, 0, 40}, {3, 0, 1}, {0, 3, 5}}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestParseReplayErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "no records"},
		{"comments only", "# nothing\n\n  \n", "no records"},
		{"one field", "3\n", "fields"},
		{"four fields", "1 2 3 4\n", "fields"},
		{"bad src", "x 2\n", "src"},
		{"bad dst", "1 y\n", "dst"},
		{"negative id", "-1 2\n", "negative"},
		{"bad count", "1 2 many\n", "not an integer"},
		{"zero count", "1 2 0\n", "not positive"},
		{"negative count", "1 2 -5\n", "not positive"},
		{"huge count", "1 2 99999999\n", "exceeds"},
		{"float id", "1.5 2\n", "not an integer"},
		{"hex id", "0x10 2\n", "not an integer"},
		{"line number", "1 2\nbroken\n", "line 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseReplayString(c.in)
			if err == nil {
				t.Fatalf("parsed %q without error", c.in)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}

	if _, err := ParseReplayString("# only\n"); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty trace error = %v, want ErrEmptyTrace", err)
	}
}

func TestParseReplayOversized(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= MaxReplayRecords; i++ {
		sb.WriteString("1 2\n")
	}
	if _, err := ParseReplayString(sb.String()); err == nil || !strings.Contains(err.Error(), "records") {
		t.Errorf("oversized trace error = %v", err)
	}

	// A single line longer than the scanner buffer errors instead of
	// silently truncating.
	long := "1 2 " + strings.Repeat("9", maxReplayLine)
	if _, err := ParseReplayString(long); err == nil {
		t.Error("overlong line parsed without error")
	}
}

// FuzzParseReplay asserts the malformed-trace contract: arbitrary input
// either parses into in-bounds records or returns an error — never a
// panic, never out-of-contract values.
func FuzzParseReplay(f *testing.F) {
	f.Add("1 2 3\n")
	f.Add("# comment\n0 0\n")
	f.Add("1 2\n3 4 5\n")
	f.Add("255 0 1048576\n")
	f.Add("-1 2\n")
	f.Add("1 2 0\n")
	f.Add("a b c\n")
	f.Add("1\t2\t3 # trailing\n")
	f.Add("9999999999999999999 2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ParseReplayString(in)
		if err != nil {
			if recs != nil {
				t.Fatal("error with non-nil records")
			}
			return
		}
		if len(recs) == 0 || len(recs) > MaxReplayRecords {
			t.Fatalf("parsed %d records outside contract", len(recs))
		}
		for _, r := range recs {
			if r.Src < 0 || r.Dst < 0 || r.N <= 0 || r.N > MaxReplayCount {
				t.Fatalf("out-of-contract record %+v", r)
			}
		}
	})
}
