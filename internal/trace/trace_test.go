package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/sim"
)

func TestTagPayloadRoundTrip(t *testing.T) {
	f := func(tag uint64) bool {
		return TagOf(TagPayload(tag, 16)) == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagPayloadMinimumSize(t *testing.T) {
	p := TagPayload(1, 0)
	if len(p) != 8 {
		t.Fatalf("len = %d, want 8", len(p))
	}
}

func TestTagPayloadPanicsOnOversize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TagPayload(0, flit.PayloadSize+1)
}

func TestUniformSchedule(t *testing.T) {
	u := Uniform{N: 5, Interval: 2 * sim.Nanosecond, Start: 10 * sim.Nanosecond, Size: 16}
	items := u.Generate()
	if len(items) != 5 {
		t.Fatalf("%d items", len(items))
	}
	for i, it := range items {
		wantAt := 10*sim.Nanosecond + sim.Time(i)*2*sim.Nanosecond
		if it.At != wantAt {
			t.Errorf("item %d at %d, want %d", i, it.At, wantAt)
		}
		if it.Tag != uint64(i) || TagOf(it.Payload) != uint64(i) {
			t.Errorf("item %d tag mismatch", i)
		}
	}
	if u.Name() == "" {
		t.Error("empty name")
	}
}

func TestUniformNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Uniform{N: -1}.Generate()
}

func TestBurstyScheduleStructure(t *testing.T) {
	b := Bursty{N: 40, BurstLen: 4, Interval: sim.Nanosecond, MeanGap: 10 * sim.Nanosecond, Size: 16, Seed: 9}
	items := b.Generate()
	if len(items) != 40 {
		t.Fatalf("%d items", len(items))
	}
	// Within a burst, spacing is exactly the interval; at burst
	// boundaries it is at least the interval (geometric gaps can be one
	// interval) and larger on average.
	gaps := 0
	var gapSum sim.Time
	for i := 1; i < len(items); i++ {
		d := items[i].At - items[i-1].At
		if i%4 == 0 {
			if d < sim.Nanosecond {
				t.Errorf("burst boundary %d has gap %d, want >= interval", i, d)
			}
			gapSum += d
			gaps++
		} else if d != sim.Nanosecond {
			t.Errorf("intra-burst gap %d at %d", d, i)
		}
	}
	if gaps != 9 {
		t.Fatalf("%d burst boundaries, want 9", gaps)
	}
	if gapSum <= sim.Time(gaps)*sim.Nanosecond {
		t.Error("burst gaps never exceeded the interval; MeanGap ignored?")
	}
	if b.Name() == "" {
		t.Error("empty name")
	}
}

func TestBurstyDeterminism(t *testing.T) {
	b := Bursty{N: 30, BurstLen: 3, Interval: sim.Nanosecond, MeanGap: 5 * sim.Nanosecond, Seed: 4}
	a1, a2 := b.Generate(), b.Generate()
	for i := range a1 {
		if a1[i].At != a2[i].At {
			t.Fatal("bursty schedule not deterministic")
		}
	}
}

func TestBurstyPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Bursty{N: 10, BurstLen: 0, Interval: sim.Nanosecond}.Generate()
}

func TestMemoryStreamAddresses(t *testing.T) {
	m := MemoryStream{N: 8, Base: 0x1000, Stride: 64, Interval: 2 * sim.Nanosecond}
	items := m.Generate()
	for i, it := range items {
		if got := AddressOf(it.Payload); got != 0x1000+uint64(i)*64 {
			t.Errorf("item %d address %#x", i, got)
		}
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestPoissonMeanInterval(t *testing.T) {
	p := Poisson{N: 5000, MeanInterval: 20 * sim.Nanosecond, Size: 16, Seed: 11}
	items := p.Generate()
	total := items[len(items)-1].At - items[0].At
	mean := float64(total) / float64(len(items)-1)
	want := float64(20 * sim.Nanosecond)
	if mean < want*0.8 || mean > want*1.2 {
		t.Fatalf("mean interval %.0fps, want ≈%.0fps", mean, want)
	}
	// Monotone non-decreasing times.
	for i := 1; i < len(items); i++ {
		if items[i].At < items[i-1].At {
			t.Fatal("times not sorted")
		}
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestPoissonPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Poisson{N: 1, MeanInterval: 0}.Generate()
}

func TestCheckerCleanSequence(t *testing.T) {
	c := NewChecker()
	for i := uint64(0); i < 10; i++ {
		c.Deliver(TagPayload(i, 16))
	}
	if !c.Clean() || c.Delivered != 10 || c.Next != 10 {
		t.Fatalf("checker state: %+v", c)
	}
}

func TestCheckerDetectsDuplicate(t *testing.T) {
	c := NewChecker()
	c.Deliver(TagPayload(0, 16))
	c.Deliver(TagPayload(0, 16))
	if c.Duplicates != 1 || c.Clean() {
		t.Fatalf("duplicates = %d", c.Duplicates)
	}
}

func TestCheckerDetectsSkip(t *testing.T) {
	c := NewChecker()
	c.Deliver(TagPayload(0, 16))
	c.Deliver(TagPayload(2, 16)) // tag 1 missing
	if c.OutOfOrder != 1 || c.Clean() {
		t.Fatalf("out of order = %d", c.OutOfOrder)
	}
	// Resumes at the new high-water mark.
	c.Deliver(TagPayload(3, 16))
	if c.OutOfOrder != 1 {
		t.Fatalf("checker did not resync: %+v", c)
	}
}

func TestCheckerDetectsReorder(t *testing.T) {
	c := NewChecker()
	c.Deliver(TagPayload(1, 16))
	c.Deliver(TagPayload(0, 16))
	if c.OutOfOrder < 1 {
		t.Fatal("reorder not flagged")
	}
}

// TestInjectDrivesLink runs a uniform workload through a real simulated
// link and verifies exactly-once in-order delivery end to end.
func TestInjectDrivesLink(t *testing.T) {
	eng := sim.NewEngine()
	a := link.NewPeer("A", eng, link.DefaultConfig(link.ProtocolRXL))
	b := link.NewPeer("B", eng, link.DefaultConfig(link.ProtocolRXL))
	link.ConnectDirect(eng, a, b, sim.FlitTime, 10*sim.Nanosecond)

	c := NewChecker()
	b.Deliver = c.Deliver

	items := Uniform{N: 300, Interval: sim.FlitTime, Size: 16}.Generate()
	if n := Inject(eng, items, a.Submit); n != 300 {
		t.Fatalf("scheduled %d", n)
	}
	eng.Run()
	if !c.Clean() || c.Delivered != 300 {
		t.Fatalf("delivery not clean: %+v", c)
	}
}
