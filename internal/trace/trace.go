// Package trace generates the synthetic workloads that drive the
// simulation experiments: streams of tagged payloads and transaction
// messages with controllable arrival processes.
//
// The paper motivates its reliability analysis with AI training traffic —
// cache-line-granularity exchanges between thousands of processors. No
// public flit-level traces of such systems exist, so this package supplies
// the standard synthetic stand-ins used by interconnect studies: open-loop
// uniform injection, bursty on/off sources, request/response echo loops,
// and sequential memory streams. Every generator is seeded and
// deterministic, so experiments are exactly reproducible.
package trace

import (
	"encoding/binary"
	"fmt"

	"repro/internal/flit"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Item is one generated unit of offered load.
type Item struct {
	// At is the injection time.
	At sim.Time
	// Payload is the flit payload image (at most flit.PayloadSize bytes).
	Payload []byte
	// Tag is the sequential identity embedded in the payload, used by
	// delivery checkers.
	Tag uint64
}

// Generator produces a finite schedule of offered load.
type Generator interface {
	// Generate returns the injection schedule, sorted by time.
	Generate() []Item
	// Name identifies the workload in reports.
	Name() string
}

// TagPayload builds a payload carrying tag in its first eight bytes,
// padding to size bytes (minimum 8).
func TagPayload(tag uint64, size int) []byte {
	if size < 8 {
		size = 8
	}
	if size > flit.PayloadSize {
		panic(fmt.Sprintf("trace: payload size %d exceeds flit payload %d", size, flit.PayloadSize))
	}
	p := make([]byte, size)
	binary.BigEndian.PutUint64(p, tag)
	return p
}

// TagOf recovers the tag from a delivered payload.
func TagOf(payload []byte) uint64 {
	return binary.BigEndian.Uint64(payload)
}

// Uniform is an open-loop source injecting one payload every Interval,
// starting at Start — the steady full-rate traffic of the Section 7.2
// bandwidth analysis.
type Uniform struct {
	N        int      // number of payloads
	Interval sim.Time // injection period (use sim.FlitTime for line rate)
	Start    sim.Time
	Size     int // payload bytes (tag header included)
}

// Name implements Generator.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(n=%d,T=%dps)", u.N, u.Interval) }

// Generate implements Generator.
func (u Uniform) Generate() []Item {
	if u.N < 0 {
		panic("trace: negative N")
	}
	items := make([]Item, u.N)
	for i := range items {
		items[i] = Item{
			At:      u.Start + sim.Time(i)*u.Interval,
			Payload: TagPayload(uint64(i), u.Size),
			Tag:     uint64(i),
		}
	}
	return items
}

// Bursty is an on/off source: bursts of BurstLen back-to-back payloads
// (one per Interval) separated by exponential-ish idle gaps with mean
// MeanGap. It models the clustered all-reduce phases of training traffic.
type Bursty struct {
	N        int
	BurstLen int
	Interval sim.Time
	MeanGap  sim.Time
	Size     int
	Seed     uint64
}

// Name implements Generator.
func (b Bursty) Name() string {
	return fmt.Sprintf("bursty(n=%d,burst=%d,gap=%dps)", b.N, b.BurstLen, b.MeanGap)
}

// Generate implements Generator.
func (b Bursty) Generate() []Item {
	if b.N < 0 || b.BurstLen <= 0 || b.Interval <= 0 {
		panic("trace: bad bursty parameters")
	}
	rng := phy.NewRNG(b.Seed)
	// Idle gaps are geometric in units of the injection interval, with
	// mean MeanGap (at least one interval).
	meanUnits := float64(b.MeanGap) / float64(b.Interval)
	if meanUnits < 1 {
		meanUnits = 1
	}
	items := make([]Item, b.N)
	t := sim.Time(0)
	for i := range items {
		items[i] = Item{At: t, Payload: TagPayload(uint64(i), b.Size), Tag: uint64(i)}
		if (i+1)%b.BurstLen == 0 {
			t += b.Interval * sim.Time(1+rng.Geometric(1/meanUnits))
		} else {
			t += b.Interval
		}
	}
	return items
}

// MemoryStream models a sequential memory reader: reads of Stride-spaced
// addresses at line rate, encoded as transaction-style payloads. The
// address is carried after the tag so transaction layers can decode it.
type MemoryStream struct {
	N        int
	Base     uint64
	Stride   uint64
	Interval sim.Time
	Size     int
}

// Name implements Generator.
func (m MemoryStream) Name() string {
	return fmt.Sprintf("memstream(n=%d,stride=%d)", m.N, m.Stride)
}

// Generate implements Generator.
func (m MemoryStream) Generate() []Item {
	if m.N < 0 {
		panic("trace: negative N")
	}
	size := m.Size
	if size < 16 {
		size = 16
	}
	items := make([]Item, m.N)
	for i := range items {
		p := TagPayload(uint64(i), size)
		binary.BigEndian.PutUint64(p[8:], m.Base+uint64(i)*m.Stride)
		items[i] = Item{At: sim.Time(i) * m.Interval, Payload: p, Tag: uint64(i)}
	}
	return items
}

// AddressOf recovers the address of a MemoryStream payload.
func AddressOf(payload []byte) uint64 {
	return binary.BigEndian.Uint64(payload[8:])
}

// Poisson is an open-loop source with geometric (discretized exponential)
// inter-arrival times of mean MeanInterval — the classic random-traffic
// model for interconnect evaluation.
type Poisson struct {
	N            int
	MeanInterval sim.Time
	Size         int
	Seed         uint64
}

// Name implements Generator.
func (p Poisson) Name() string {
	return fmt.Sprintf("poisson(n=%d,mean=%dps)", p.N, p.MeanInterval)
}

// Generate implements Generator.
func (p Poisson) Generate() []Item {
	if p.N < 0 || p.MeanInterval <= 0 {
		panic("trace: bad poisson parameters")
	}
	rng := phy.NewRNG(p.Seed)
	items := make([]Item, p.N)
	t := sim.Time(0)
	for i := range items {
		items[i] = Item{At: t, Payload: TagPayload(uint64(i), p.Size), Tag: uint64(i)}
		// Geometric with success probability 1/mean (in picosecond steps,
		// quantized to nanoseconds to keep event counts sane).
		step := sim.Time(rng.Geometric(float64(sim.Nanosecond)/float64(p.MeanInterval))) * sim.Nanosecond
		t += sim.Nanosecond + step
	}
	return items
}

// Inject schedules every item of a generated workload onto an engine,
// calling submit for each at its injection time. It returns the number of
// items scheduled.
func Inject(eng *sim.Engine, items []Item, submit func([]byte)) int {
	for _, it := range items {
		payload := it.Payload
		eng.At(it.At, func() { submit(payload) })
	}
	return len(items)
}

// Checker validates delivered payloads against the tag sequence: exactly
// once, in order.
type Checker struct {
	// Next is the next expected tag.
	Next uint64
	// OutOfOrder counts deliveries whose tag was not the expected one.
	OutOfOrder int
	// Duplicates counts deliveries of tags already seen.
	Duplicates int
	// Delivered counts all deliveries.
	Delivered int

	seen map[uint64]bool
}

// NewChecker returns a checker expecting tags 0,1,2,…
func NewChecker() *Checker {
	return &Checker{seen: make(map[uint64]bool)}
}

// Deliver is the delivery callback: feed it every payload the endpoint
// hands up.
func (c *Checker) Deliver(payload []byte) {
	tag := TagOf(payload)
	c.Delivered++
	if c.seen[tag] {
		c.Duplicates++
	}
	c.seen[tag] = true
	if tag != c.Next {
		c.OutOfOrder++
		if tag > c.Next {
			c.Next = tag + 1
		}
		return
	}
	c.Next++
}

// Clean reports whether every delivery was exactly-once and in order.
func (c *Checker) Clean() bool {
	return c.OutOfOrder == 0 && c.Duplicates == 0
}
