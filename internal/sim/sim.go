// Package sim is a small discrete-event simulation engine with picosecond
// resolution, used to drive the link-layer and fabric models. It provides a
// deterministic event queue (stable FIFO ordering among same-time events)
// and a Pipe primitive modeling a unidirectional wire with serialization
// and propagation delay — the substrate on which flits move.
//
// The engine is single-threaded by design: determinism matters more than
// parallel speedup for protocol-correctness experiments, and a 256B flit
// every 2 ns means a single core simulates hundreds of thousands of flits
// per second of wall time, ample for every experiment in the paper.
package sim

import "container/heap"

// Time is a simulation timestamp in picoseconds.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// FlitTime is the serialization time of a 256B flit on a full-speed x16
// CXL 3.0 link (Section 7.2: "a ×16 link transmitting 256B flits every
// 2ns").
const FlitTime = 2 * Nanosecond

type event struct {
	at  Time
	seq uint64 // tie-break: schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	// Executed counts dispatched events, a cheap progress metric.
	Executed uint64
}

// NewEngine returns an engine at time 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay (>= 0) simulation time. Events scheduled for
// the same instant run in schedule order.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil dispatches events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled at t are executed.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= t {
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.Executed++
	ev.fn()
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Pipe models a unidirectional wire: each Send occupies the wire for
// SerializationDelay (back-to-back sends queue behind each other, FIFO) and
// then propagates for PropagationDelay before Sink is invoked with the
// payload. Busy time is accumulated for utilization/bandwidth accounting.
type Pipe struct {
	Engine             *Engine
	SerializationDelay Time
	PropagationDelay   Time
	// Sink receives each payload at its arrival time.
	Sink func(payload interface{})

	busyUntil Time
	// BusyTime is the cumulative serialization occupancy, the numerator
	// of link utilization.
	BusyTime Time
	// Sent counts payloads accepted.
	Sent uint64
}

// Send enqueues payload for transmission. It returns the time at which the
// wire becomes free again (end of serialization), letting senders model
// back-pressure.
func (p *Pipe) Send(payload interface{}) Time {
	start := p.Engine.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	end := start + p.SerializationDelay
	p.busyUntil = end
	p.BusyTime += p.SerializationDelay
	p.Sent++
	arrival := end + p.PropagationDelay
	sink := p.Sink
	pl := payload
	p.Engine.At(arrival, func() { sink(pl) })
	return end
}

// FreeAt returns the earliest time a new Send would start serializing.
func (p *Pipe) FreeAt() Time {
	if p.busyUntil > p.Engine.Now() {
		return p.busyUntil
	}
	return p.Engine.Now()
}

// Utilization returns BusyTime divided by elapsed simulation time.
func (p *Pipe) Utilization() float64 {
	if p.Engine.Now() == 0 {
		return 0
	}
	return float64(p.BusyTime) / float64(p.Engine.Now())
}
