// Package sim is a small discrete-event simulation engine with picosecond
// resolution, used to drive the link-layer and fabric models. It provides a
// deterministic event queue (stable FIFO ordering among same-time events)
// and a Pipe primitive modeling a unidirectional wire with serialization
// and propagation delay — the substrate on which flits move.
//
// The engine is single-threaded by design: determinism matters more than
// parallel speedup for protocol-correctness experiments, and a 256B flit
// every 2 ns means a single core simulates hundreds of thousands of flits
// per second of wall time, ample for every experiment in the paper.
package sim

import (
	"math"

	"repro/internal/headq"
)

// Time is a simulation timestamp in picoseconds.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// FlitTime is the serialization time of a 256B flit on a full-speed x16
// CXL 3.0 link (Section 7.2: "a ×16 link transmitting 256B flits every
// 2ns").
const FlitTime = 2 * Nanosecond

type event struct {
	at  Time
	seq uint64 // tie-break: schedule order
	fn  func()
	// Payload form: when fn is nil, sink(arg) runs instead. Senders with a
	// long-lived sink function (pipes) use this to avoid a closure
	// allocation per scheduled delivery.
	sink func(interface{})
	arg  interface{}
}

func (ev *event) dispatch() {
	if ev.fn != nil {
		ev.fn()
		return
	}
	ev.sink(ev.arg)
}

// before reports the strict (at, seq) ordering between events.
func (ev *event) before(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

// eventHeap is a hand-rolled binary min-heap on (at, seq). container/heap
// would box every event through interface{} on Push/Pop — one allocation
// per scheduled event — so the sift operations are written out instead.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release references for GC
	q = q[:n]
	*h = q
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q[r].before(&q[child]) {
			child = r
		}
		if !q[child].before(&q[i]) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// NewEngine.
//
// The queue is a two-lane structure tuned for the simulator's dominant
// pattern — long stretches of near-monotone schedule times (every flit
// delivery and pump wakeup lands at or just under the previously
// scheduled tail). Those events live in a sorted ring dispatched by a
// bulk pump in O(1) per event, with pushes landing slightly below the
// tail accepted by bounded insertion; genuinely out-of-order schedules
// (scripted scenario events, deep reorders) fall back to a binary heap.
// Dispatch merges the two lanes under the strict (time, schedule-order)
// total order, so the hybrid is observationally identical to a single
// priority queue.
type Engine struct {
	now     Time
	events  eventHeap // out-of-order lane
	fifo    []event   // sorted lane: times non-decreasing from fifoPos
	fifoPos int       // index of the sorted lane's head
	seq     uint64
	stopped bool
	// Executed counts dispatched events, a cheap progress metric.
	Executed uint64
}

// NewEngine returns an engine at time 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay (>= 0) simulation time. Events scheduled for
// the same instant run in schedule order.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+delay, fn)
}

// ScheduleArg is Schedule for a long-lived sink function and a payload,
// avoiding the per-event closure allocation.
func (e *Engine) ScheduleArg(delay Time, sink func(interface{}), arg interface{}) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.AtArg(e.now+delay, sink, arg)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// AtArg runs sink(arg) at absolute time t (>= Now). Pipes use this form on
// the per-flit delivery path: sink is one stable function per pipe, so no
// closure is allocated per send.
func (e *Engine) AtArg(t Time, sink func(interface{}), arg interface{}) {
	e.push(event{at: t, seq: e.seq, sink: sink, arg: arg})
}

func (e *Engine) push(ev event) {
	if ev.at < e.now {
		panic("sim: scheduling into the past")
	}
	e.seq++
	e.fifo, e.fifoPos = headq.Compact(e.fifo, e.fifoPos)
	n := len(e.fifo)
	if n == e.fifoPos || ev.at >= e.fifo[n-1].at {
		e.fifo = append(e.fifo, ev)
		return
	}
	// The new event lands below the sorted lane's tail. The dominant
	// patterns land *just* below it: pump wakeups scheduled a couple of
	// nanoseconds under in-flight deliveries, and stream events pushed
	// beneath a standing backstop timer (link retry, ACK timeout) parked
	// at the tail. Deflecting those to the heap would make every flit
	// delivery pay a sift, so the tail accepts them by bounded insertion:
	// scan back a few slots for the insertion point and shift the tail
	// right. Equal times insert after — the new event carries the largest
	// seq, preserving FIFO order. Past the window the order really is
	// mixed, and the event goes to the heap.
	lo := n - fifoInsertWindow
	if lo < e.fifoPos {
		lo = e.fifoPos
	}
	j := n
	for j > lo && ev.at < e.fifo[j-1].at {
		j--
	}
	if j > lo || j == e.fifoPos || ev.at >= e.fifo[j-1].at {
		e.fifo = append(e.fifo, event{})
		copy(e.fifo[j+1:], e.fifo[j:n])
		e.fifo[j] = ev
		return
	}
	e.events.push(ev)
}

// fifoInsertWindow bounds how far below the sorted lane's tail a push may
// insert. It needs to cover the few distinct schedule offsets live at
// once (pump wakeup, per-hop delivery, a standing timer or two); past
// that, heap order is genuinely cheaper than shifting.
const fifoInsertWindow = 8

// Stop makes the current Run/RunUntil/AdvanceTo/RunSpans call return after
// the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// maxTime is the unbounded dispatch horizon.
const maxTime = Time(math.MaxInt64)

// Run dispatches events until the queue is empty or Stop is called.
func (e *Engine) Run() { e.run(maxTime) }

// RunUntil dispatches events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled at t are executed. It is AdvanceTo under
// its historical name.
func (e *Engine) RunUntil(t Time) { e.AdvanceTo(t) }

// AdvanceTo is the bulk-advance pump: it dispatches every event with a
// timestamp <= t in strict (time, schedule-order) order, then jumps the
// clock to exactly t. Stretches with no pending events are crossed in one
// assignment — the clock is driven by the schedule, not ticked — and runs
// of monotone events (the dominant pattern: flit deliveries and pump
// wakeups land at or after the previously scheduled tail) dispatch in a
// tight loop with no per-event lane merge.
func (e *Engine) AdvanceTo(t Time) {
	e.run(t)
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunSpans drains the queue like Run, advancing the clock in spans of at
// most `span` per pump iteration and jumping idle stretches directly to
// the next scheduled event. The dispatch trajectory — event order, times,
// everything observable — is identical for every span size (proven by
// TestRunSpansTrajectoryInvariant); span only bounds how far a single
// AdvanceTo call reaches, for callers that interleave simulation with
// periodic outside work.
func (e *Engine) RunSpans(span Time) {
	if span <= 0 {
		panic("sim: non-positive span")
	}
	e.stopped = false
	for !e.stopped {
		next, ok := e.NextTime()
		if !ok {
			return
		}
		target := e.now + span
		if next > target {
			// Nothing scheduled inside the span: jump the empty stretch
			// in one step instead of iterating span by span.
			target = next
		}
		e.AdvanceTo(target)
	}
}

// NextTime returns the timestamp of the next pending event, or ok=false
// when the queue is empty.
func (e *Engine) NextTime() (t Time, ok bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// run dispatches events with timestamps <= limit until the queue is
// exhausted past the limit or Stop is called.
func (e *Engine) run(limit Time) {
	e.stopped = false
	for !e.stopped {
		// Bulk pump: dispatch the monotone lane in a tight loop for as
		// long as it precedes the heap head — one compare per event, no
		// heap traffic. A dispatched handler can push into either lane
		// (and compact the FIFO), so every loop state is re-read per
		// iteration rather than cached.
		for e.fifoPos < len(e.fifo) && !e.stopped {
			ev := e.fifo[e.fifoPos]
			// Past the limit or behind the heap head: leave the merged
			// path below to decide — the heap may still hold earlier
			// events within the limit.
			if ev.at > limit {
				break
			}
			if len(e.events) > 0 && !ev.before(&e.events[0]) {
				break
			}
			e.fifo[e.fifoPos] = event{} // release references for GC
			e.fifoPos++
			e.now = ev.at
			e.Executed++
			ev.dispatch()
		}
		if e.stopped {
			return
		}
		ev := e.peek()
		if ev == nil || ev.at > limit {
			return
		}
		e.step()
	}
}

// peek returns the next event in (time, schedule-order) without removing
// it, or nil when both lanes are empty.
func (e *Engine) peek() *event {
	var f, h *event
	if e.fifoPos < len(e.fifo) {
		f = &e.fifo[e.fifoPos]
	}
	if len(e.events) > 0 {
		h = &e.events[0]
	}
	switch {
	case f == nil:
		return h
	case h == nil:
		return f
	case f.before(h):
		return f
	default:
		return h
	}
}

func (e *Engine) step() {
	var ev event
	if next := e.peek(); e.fifoPos < len(e.fifo) && next == &e.fifo[e.fifoPos] {
		ev = *next
		e.fifo[e.fifoPos] = event{} // release references for GC
		e.fifoPos++
	} else {
		ev = e.events.pop()
	}
	e.now = ev.at
	e.Executed++
	ev.dispatch()
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) + len(e.fifo) - e.fifoPos }

// Pipe models a unidirectional wire: each Send occupies the wire for
// SerializationDelay (back-to-back sends queue behind each other, FIFO) and
// then propagates for PropagationDelay before Sink is invoked with the
// payload. Busy time is accumulated for utilization/bandwidth accounting.
type Pipe struct {
	Engine             *Engine
	SerializationDelay Time
	PropagationDelay   Time
	// Sink receives each payload at its arrival time.
	Sink func(payload interface{})

	busyUntil Time
	// BusyTime is the cumulative serialization occupancy, the numerator
	// of link utilization.
	BusyTime Time
	// Sent counts payloads accepted (event-carried sends and reservations).
	Sent uint64
	// QueuePeak is the high-water mark of the serialization queue: the
	// largest number of payloads simultaneously waiting for or occupying
	// the wire, observed at claim time (the claiming payload included).
	// Back-to-back claims each occupy exactly SerializationDelay, so the
	// depth is the waiting time ahead of the claim divided by the
	// serialization delay, rounded up, plus one.
	QueuePeak uint64

	inFlight int
	// dispatchFn is the stable bound method delivering event-carried
	// payloads (built lazily, one allocation per pipe) so every SendAt can
	// decrement the in-flight count without a per-send closure.
	dispatchFn func(interface{})
}

// Send enqueues payload for transmission. It returns the time at which the
// wire becomes free again (end of serialization), letting senders model
// back-pressure.
func (p *Pipe) Send(payload interface{}) Time { return p.SendAt(payload, 0) }

// claim performs the wire-occupancy bookkeeping shared by SendAt and
// Reserve: serialization starts at max(now, earliest, wire-free) and the
// wire is busy until start+SerializationDelay. Returns the serialization
// end time.
func (p *Pipe) claim(earliest Time) Time {
	floor := p.Engine.Now()
	if earliest > floor {
		floor = earliest
	}
	start := floor
	if p.busyUntil > start {
		start = p.busyUntil
	}
	depth := uint64(1)
	if wait := p.busyUntil - floor; wait > 0 && p.SerializationDelay > 0 {
		depth += uint64((wait + p.SerializationDelay - 1) / p.SerializationDelay)
	}
	if depth > p.QueuePeak {
		p.QueuePeak = depth
	}
	end := start + p.SerializationDelay
	p.busyUntil = end
	p.BusyTime += p.SerializationDelay
	p.Sent++
	return end
}

// SendAt is Send with an earliest serialization start: the payload begins
// serializing at max(now, earliest, wire-free). Switches use it to fold
// their ingress-to-egress latency into the wire claim — the payload's
// arrival time is identical to scheduling a separate forward event at
// `earliest` and Sending then, without paying that event.
func (p *Pipe) SendAt(payload interface{}, earliest Time) Time {
	end := p.claim(earliest)
	p.inFlight++
	if p.dispatchFn == nil {
		p.dispatchFn = p.dispatch
	}
	p.Engine.AtArg(end+p.PropagationDelay, p.dispatchFn, payload)
	return end
}

func (p *Pipe) dispatch(payload interface{}) {
	p.inFlight--
	p.Sink(payload)
}

// Reserve claims the wire for one payload without carrying it through an
// event: identical occupancy accounting to SendAt (busy window, BusyTime,
// Sent, QueuePeak) but no delivery is scheduled and the payload never
// counts as in flight. It returns the arrival time a SendAt at `earliest`
// would have delivered at — the primitive behind express traversal, where
// a whole route's wires are claimed up front and only the final arrival
// becomes an engine event.
func (p *Pipe) Reserve(earliest Time) (arrival Time) {
	return p.claim(earliest) + p.PropagationDelay
}

// InFlight returns the number of payloads sent but not yet delivered to
// the sink. Reservations are not counted: an express claim is timing-only,
// while an in-flight payload is one whose downstream fate (forward, drop,
// fall back) is still undecided — the distinction express eligibility is
// built on.
func (p *Pipe) InFlight() int { return p.inFlight }

// FreeAt returns the earliest time a new Send would start serializing.
func (p *Pipe) FreeAt() Time {
	if p.busyUntil > p.Engine.Now() {
		return p.busyUntil
	}
	return p.Engine.Now()
}

// Utilization returns BusyTime divided by elapsed simulation time.
func (p *Pipe) Utilization() float64 {
	if p.Engine.Now() == 0 {
		return 0
	}
	return float64(p.BusyTime) / float64(p.Engine.Now())
}
